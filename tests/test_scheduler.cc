/**
 * @file
 * Behavioral tests of the SAVE scheduler policies: coalescing reduces
 * VPU operations, rotation breaks shared-pattern lane conflicts,
 * lane-wise dependence removes false dependences, HC pays its
 * latency, and all of it stays bitwise-correct.
 */

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace save {
namespace {

MachineConfig
oneCore()
{
    MachineConfig m;
    m.cores = 1;
    return m;
}

SaveConfig
policy(SchedPolicy p, bool lwd)
{
    SaveConfig s;
    s.policy = p;
    s.laneWiseDep = lwd;
    return s;
}

/** Run one slice; return the result. */
KernelResult
runOne(const SaveConfig &s, const GemmConfig &g, int vpus = 2)
{
    Engine e(oneCore(), s);
    return e.runGemm(g, 1, vpus);
}

GemmConfig
nbsKernel(double nbs, int mr = 28, int nr = 1)
{
    GemmConfig g;
    g.mr = mr;
    g.nrVecs = nr;
    g.kSteps = 64;
    g.tiles = 2;
    g.pattern = BroadcastPattern::Embedded;
    g.nbsSparsity = nbs;
    g.seed = 5;
    return g;
}

TEST(Scheduler, CoalescingReducesVpuOps)
{
    GemmConfig g = nbsKernel(0.5);
    auto base = runOne(SaveConfig::baseline(), g);
    auto vc = runOne(policy(SchedPolicy::VC, false), g);
    EXPECT_LT(vc.stats.get("vpu_ops"), base.stats.get("vpu_ops"));
}

TEST(Scheduler, RotationImprovesSharedPatternPacking)
{
    // mr=28, nr=1: all 28 VFMAs of a k-step share one B register, so
    // their sparsity patterns are identical and plain VC conflicts on
    // every lane (paper Fig. 7a). Rotation must reduce VPU ops.
    GemmConfig g = nbsKernel(0.5);
    auto vc = runOne(policy(SchedPolicy::VC, false), g);
    auto rvc = runOne(policy(SchedPolicy::RVC, false), g);
    EXPECT_LT(rvc.stats.get("vpu_ops") * 1.05, vc.stats.get("vpu_ops"));
    EXPECT_LE(rvc.cycles, vc.cycles);
}

TEST(Scheduler, LaneWiseDependenceHelpsShortChains)
{
    // Short dependence distance (few accumulators): vector-wise
    // dependences serialize; LWD must not be slower.
    GemmConfig g = nbsKernel(0.6, 4, 1);
    g.pattern = BroadcastPattern::Embedded;
    auto vw = runOne(policy(SchedPolicy::RVC, false), g, 1);
    auto lw = runOne(policy(SchedPolicy::RVC, true), g, 1);
    EXPECT_LE(lw.cycles, vw.cycles);
}

TEST(Scheduler, HcPacksAtLeastAsTightAsVc)
{
    GemmConfig g = nbsKernel(0.5);
    auto vc = runOne(policy(SchedPolicy::VC, true), g);
    auto hc = runOne(policy(SchedPolicy::HC, true), g);
    EXPECT_LE(hc.stats.get("vpu_ops"), vc.stats.get("vpu_ops"));
}

TEST(Scheduler, HcPaysLatencyWhenDense)
{
    // Dense inputs: nothing to compact, but HC still pays +6 cycles
    // per op on the dependent accumulator chains.
    GemmConfig g = nbsKernel(0.0, 2, 1);
    g.kSteps = 128;
    auto rvc = runOne(policy(SchedPolicy::RVC, true), g, 1);
    auto hc = runOne(policy(SchedPolicy::HC, true), g, 1);
    EXPECT_GT(hc.cycles, rvc.cycles);
}

TEST(Scheduler, AllPoliciesBitwiseCorrect)
{
    GemmConfig g = nbsKernel(0.4, 7, 3);
    g.bsSparsity = 0.3;
    for (SchedPolicy p :
         {SchedPolicy::VC, SchedPolicy::RVC, SchedPolicy::HC}) {
        for (bool lwd : {false, true}) {
            Engine e(oneCore(), policy(p, lwd));
            std::string why;
            EXPECT_TRUE(e.verifyGemm(g, 2, &why))
                << "policy " << static_cast<int>(p) << " lwd " << lwd
                << ": " << why;
        }
    }
}

TEST(Scheduler, BsSkipAblationExecutesEverything)
{
    // With bsSkip disabled, fully-ineffectual VFMAs still occupy VPU
    // lanes; the skip counter must stay zero.
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 32;
    g.bsSparsity = 1.0; // every broadcast is zero
    SaveConfig s;
    s.bsSkip = false;
    auto r = runOne(s, g);
    EXPECT_EQ(r.stats.get("bs_skipped_vfmas"), 0.0);
    EXPECT_GT(r.stats.get("vpu_ops"), 0.0);

    SaveConfig skip;
    auto r2 = runOne(skip, g);
    EXPECT_GT(r2.stats.get("bs_skipped_vfmas"), 0.0);
    EXPECT_LT(r2.cycles, r.cycles);
}

TEST(Scheduler, SpeedupGrowsWithNbsThenSaturates)
{
    std::vector<double> speedups;
    GemmConfig g = nbsKernel(0.0, 7, 3);
    g.kSteps = 96;
    g.tiles = 3;
    auto base = runOne(SaveConfig::baseline(), g);
    for (double nbs : {0.0, 0.3, 0.6, 0.9}) {
        GemmConfig gi = g;
        gi.nbsSparsity = nbs;
        auto r = runOne(SaveConfig{}, gi);
        speedups.push_back(base.timeNs / r.timeNs);
    }
    // Dense: no coalescing gain, but no losses either. The broadcast
    // cache alone may help an embedded kernel whose load count
    // exceeds the L1 read ports, so allow a small uplift.
    EXPECT_GE(speedups[0], 0.97);
    EXPECT_LE(speedups[0], 1.25);
    EXPECT_GT(speedups[1], speedups[0]);
    EXPECT_GT(speedups[2], speedups[1] * 1.02);
    EXPECT_GE(speedups[3], speedups[2] * 0.95); // saturating cap
}

TEST(Scheduler, OneVpuBoostCrossoverAtHighSparsity)
{
    // Dense work prefers 2 VPUs; at very high sparsity a single VPU
    // at 2.1 GHz wins (paper SecVII-B).
    GemmConfig dense = nbsKernel(0.0, 7, 3);
    dense.kSteps = 96;
    auto d2 = runOne(SaveConfig{}, dense, 2);
    auto d1 = runOne(SaveConfig{}, dense, 1);
    EXPECT_LT(d2.timeNs, d1.timeNs);

    GemmConfig sparse = dense;
    sparse.nbsSparsity = 0.9;
    sparse.bsSparsity = 0.5;
    auto s2 = runOne(SaveConfig{}, sparse, 2);
    auto s1 = runOne(SaveConfig{}, sparse, 1);
    EXPECT_LT(s1.timeNs, s2.timeNs);
}

TEST(Scheduler, WriteMaskedLanesAreSkipped)
{
    // Enough accumulator chains (28) that the masked kernel is
    // throughput- rather than latency-bound.
    GemmConfig g = nbsKernel(0.0, 14, 2);
    g.useWriteMask = true;
    g.writeMask = 0x0003; // only two effectual lanes per VFMA
    auto masked = runOne(SaveConfig{}, g);
    GemmConfig full = g;
    full.useWriteMask = false;
    auto dense = runOne(SaveConfig{}, full);
    // Exactly the two unmasked lanes per VFMA are issued...
    EXPECT_DOUBLE_EQ(masked.stats.get("coalesced_lanes"),
                     masked.stats.get("vfmas") * 2);
    // ...and skipping 14 of 16 lanes buys substantial time.
    EXPECT_LT(masked.cycles, dense.cycles * 3 / 4);

    Engine e(oneCore(), SaveConfig{});
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
}

TEST(Scheduler, TempFillNeverExceedsLaneCount)
{
    GemmConfig g = nbsKernel(0.5, 7, 3);
    auto r = runOne(SaveConfig{}, g);
    double temps = r.stats.get("temps_issued");
    double fill = r.stats.get("temp_fill");
    ASSERT_GT(temps, 0.0);
    EXPECT_LE(fill / temps, 16.0);
    EXPECT_GE(fill / temps, 1.0);
}

} // namespace
} // namespace save
