/**
 * @file
 * Direct-convolution kernel tests: the emitted trace must compute a
 * true convolution (checked against an independent direct
 * computation, not just trace replay), the padding halo must behave
 * as real zero broadcasts, and SAVE must accelerate it like any
 * other sparse vector workload.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "kernels/directconv.h"
#include "sim/multicore.h"

namespace save {
namespace {

DirectConvConfig
smallConv(double act, double wsp)
{
    DirectConvConfig c;
    c.layer = ConvLayer{"t", 8, 48, 3, 3, 12, 12, 1};
    c.owBlock = 7;
    c.ocBlocks = 3;
    c.ohRows = 2;
    c.actSparsity = act;
    c.weightSparsity = wsp;
    c.seed = 17;
    return c;
}

/** Simulate and return cycles; output lands in `image`. */
uint64_t
simulate(const SaveConfig &scfg, const DirectConvWorkload &w,
         MemoryImage &image, int vpus = 2)
{
    MachineConfig m;
    m.cores = 1;
    Multicore mc(m, scfg, vpus, &image);
    w.warmup(mc.hierarchy());
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    return mc.run(50'000'000);
}

void
checkOutputs(const DirectConvWorkload &w, const MemoryImage &image)
{
    const ConvLayer &l = w.cfg.layer;
    for (int oy = 0; oy < w.cfg.ohRows; ++oy)
        for (int ox = 0; ox < l.ow(); ++ox)
            for (int oc = 0; oc < w.cfg.ocBlocks * kVecLanes; ++oc) {
                float got =
                    image.readLine(w.outAddr(oc / kVecLanes, oy, ox))
                        .f32(oc % kVecLanes);
                float want = referenceConvOutput(w, image, oc, oy, ox);
                ASSERT_EQ(got, want)
                    << "oc=" << oc << " oy=" << oy << " ox=" << ox;
            }
}

TEST(DirectConv, DenseConvolutionBitwiseCorrect)
{
    MemoryImage image;
    DirectConvWorkload w = buildDirectConv(smallConv(0.0, 0.0), image);
    simulate(SaveConfig{}, w, image);
    checkOutputs(w, image);
}

TEST(DirectConv, SparseConvolutionBitwiseCorrect)
{
    for (auto [a, ws] : {std::pair{0.6, 0.0}, {0.0, 0.7}, {0.5, 0.5}}) {
        MemoryImage image;
        DirectConvWorkload w =
            buildDirectConv(smallConv(a, ws), image);
        simulate(SaveConfig{}, w, image);
        checkOutputs(w, image);
    }
}

TEST(DirectConv, BaselinePipelineAlsoCorrect)
{
    MemoryImage image;
    DirectConvWorkload w = buildDirectConv(smallConv(0.4, 0.4), image);
    simulate(SaveConfig::baseline(), w, image);
    checkOutputs(w, image);
}

TEST(DirectConv, PaddingHaloYieldsZeroBroadcastSkips)
{
    // Dense interior, dense weights: the only zeros are the padding
    // halo, and the first output row reads it -> BS-skipped VFMAs.
    MemoryImage image;
    DirectConvWorkload w = buildDirectConv(smallConv(0.0, 0.0), image);
    MachineConfig m;
    m.cores = 1;
    Multicore mc(m, SaveConfig{}, 2, &image);
    w.warmup(mc.hierarchy());
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    mc.run(50'000'000);
    EXPECT_GT(mc.core(0).stats().get("bs_skipped_vfmas"), 0.0);
}

TEST(DirectConv, SaveSpeedsUpSparseActivations)
{
    DirectConvConfig cfg = smallConv(0.7, 0.0);
    cfg.layer.inC = 16;
    cfg.ohRows = 3;
    MemoryImage i1, i2;
    DirectConvWorkload w1 = buildDirectConv(cfg, i1);
    DirectConvWorkload w2 = buildDirectConv(cfg, i2);
    uint64_t base = simulate(SaveConfig::baseline(), w1, i1);
    uint64_t sv = simulate(SaveConfig{}, w2, i2);
    EXPECT_LT(sv, base * 4 / 5);
}

TEST(DirectConv, MacCountMatchesGeometry)
{
    DirectConvConfig cfg = smallConv(0.0, 0.0);
    MemoryImage image;
    DirectConvWorkload w = buildDirectConv(cfg, image);
    // ohRows x ow x (ocBlocks*16) x inC x kh x kw
    EXPECT_EQ(w.macs(), 2ull * 12 * 48 * 8 * 9);
    size_t vfmas = 0;
    for (const Uop &u : w.trace)
        vfmas += u.isVfma();
    EXPECT_EQ(vfmas * kVecLanes, w.macs());
}

TEST(DirectConv, RaggedOwBlockHandled)
{
    // ow = 12 with owBlock 7: second block covers only 5 columns.
    MemoryImage image;
    DirectConvWorkload w = buildDirectConv(smallConv(0.3, 0.3), image);
    simulate(SaveConfig{}, w, image);
    checkOutputs(w, image); // includes columns 7..11
}

TEST(DirectConvDeathTest, StrideUnsupported)
{
    DirectConvConfig cfg = smallConv(0, 0);
    cfg.layer.stride = 2;
    MemoryImage image;
    EXPECT_DEATH(buildDirectConv(cfg, image), "stride");
}

} // namespace
} // namespace save
