/**
 * @file
 * Unit tests for the OoO pipeline building blocks: physical register
 * file, renamer, ROB, reservation stations, MGU, and VPU pipeline —
 * plus whole-pipeline squash regressions driven through the fuzzer's
 * differential checker (sim/fuzz.h).
 */

#include <gtest/gtest.h>

#include "sim/fuzz.h"
#include "sim/mgu.h"
#include "sim/regfile.h"
#include "sim/renamer.h"
#include "sim/rob.h"
#include "sim/rs.h"
#include "sim/vpu.h"

namespace save {
namespace {

TEST(PhysRegFile, AllocExhaustRelease)
{
    PhysRegFile prf(4);
    int a = prf.alloc(), b = prf.alloc(), c = prf.alloc(),
        d = prf.alloc();
    EXPECT_NE(a, kNoReg);
    EXPECT_NE(d, kNoReg);
    EXPECT_EQ(prf.alloc(), kNoReg);
    prf.release(b);
    EXPECT_EQ(prf.alloc(), b);
    (void)a;
    (void)c;
}

TEST(PhysRegFile, LaneReadiness)
{
    PhysRegFile prf(2);
    int r = prf.alloc();
    EXPECT_FALSE(prf.fullyReady(r));
    for (int lane = 0; lane < kVecLanes; ++lane)
        prf.publishLane(r, lane, static_cast<float>(lane));
    EXPECT_TRUE(prf.fullyReady(r));
    EXPECT_EQ(prf.value(r).f32(7), 7.0f);
}

TEST(PhysRegFile, PartialLaneMask)
{
    PhysRegFile prf(2);
    int r = prf.alloc();
    prf.publishLane(r, 3, 1.0f);
    prf.publishLane(r, 9, 2.0f);
    EXPECT_EQ(prf.laneReady(r), (1u << 3) | (1u << 9));
    EXPECT_TRUE(prf.laneIsReady(r, 3));
    EXPECT_FALSE(prf.laneIsReady(r, 4));
}

TEST(PhysRegFile, AllocResetsReadiness)
{
    PhysRegFile prf(1);
    int r = prf.alloc();
    prf.setAllReady(r);
    prf.release(r);
    int r2 = prf.alloc();
    EXPECT_EQ(r2, r);
    EXPECT_FALSE(prf.fullyReady(r2));
}

TEST(Renamer, InitialMappingIsReadyZero)
{
    PhysRegFile prf(64);
    Renamer ren(&prf);
    for (int l = 0; l < kLogicalVecRegs; ++l) {
        int p = ren.mapOf(l);
        EXPECT_TRUE(prf.fullyReady(p));
        EXPECT_EQ(prf.value(p).f32(0), 0.0f);
    }
}

TEST(Renamer, RenameDstTracksOld)
{
    PhysRegFile prf(64);
    Renamer ren(&prf);
    int old = ren.mapOf(5);
    auto r = ren.renameDst(5);
    EXPECT_EQ(r.oldPhys, old);
    EXPECT_EQ(ren.mapOf(5), r.newPhys);
    EXPECT_NE(r.newPhys, old);
}

TEST(Renamer, ExhaustionReturnsNoRegWithoutCorruption)
{
    PhysRegFile prf(kLogicalVecRegs); // exactly the architectural set
    Renamer ren(&prf);
    int before = ren.mapOf(0);
    auto r = ren.renameDst(0);
    EXPECT_EQ(r.newPhys, kNoReg);
    EXPECT_EQ(ren.mapOf(0), before);
}

TEST(Renamer, ArchValueAndMasks)
{
    PhysRegFile prf(64);
    Renamer ren(&prf);
    ren.setArchValue(3, VecReg::broadcastF32(2.0f));
    EXPECT_EQ(ren.archValue(3).f32(15), 2.0f);
    EXPECT_EQ(ren.mask(0), 0xffffu); // default: unmasked
    ren.setMask(2, 0x00ff);
    EXPECT_EQ(ren.mask(2), 0x00ffu);
}

TEST(Rob, InOrderCommit)
{
    Rob rob(4);
    RobEntry e;
    e.lanesPending = 0;
    e.done = false;
    int a = rob.push(e);
    int b = rob.push(e);
    rob.markDone(b);
    EXPECT_FALSE(rob.at(rob.head()).done); // head (a) not done yet
    rob.markDone(a);
    EXPECT_EQ(rob.pop().seq, rob.at(b).seq); // pops a first
    rob.pop();
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, LaneCountdown)
{
    Rob rob(2);
    RobEntry e;
    e.lanesPending = 3;
    int i = rob.push(e);
    rob.laneDone(i);
    rob.laneDone(i);
    EXPECT_FALSE(rob.at(i).done);
    rob.laneDone(i);
    EXPECT_TRUE(rob.at(i).done);
}

TEST(Rob, WrapsAround)
{
    Rob rob(2);
    for (int i = 0; i < 5; ++i) {
        RobEntry e;
        e.seq = static_cast<uint64_t>(i);
        int idx = rob.push(e);
        rob.markDone(idx);
        EXPECT_EQ(rob.pop().seq, static_cast<uint64_t>(i));
    }
}

TEST(RobDeathTest, PopUndonePanics)
{
    Rob rob(2);
    rob.push(RobEntry{});
    EXPECT_DEATH(rob.pop(), "incomplete");
}

TEST(Rs, AgeOrderMaintained)
{
    Rs rs(4);
    RsEntry e;
    e.seq = 1;
    int a = rs.push(e);
    e.seq = 2;
    int b = rs.push(e);
    e.seq = 3;
    int c = rs.push(e);
    rs.release(b);
    ASSERT_EQ(rs.order().size(), 2u);
    EXPECT_EQ(rs.order()[0], a);
    EXPECT_EQ(rs.order()[1], c);
    // Freed slot is reused but lands at the back of the age order.
    e.seq = 4;
    int d = rs.push(e);
    EXPECT_EQ(rs.order().back(), d);
}

TEST(Rs, FullAndCapacity)
{
    Rs rs(2);
    rs.push(RsEntry{});
    EXPECT_FALSE(rs.full());
    rs.push(RsEntry{});
    EXPECT_TRUE(rs.full());
    EXPECT_EQ(rs.capacity(), 2);
}

TEST(Mgu, F32BothOperandsNonZero)
{
    VecReg a = VecReg::broadcastF32(1.0f);
    VecReg b = VecReg::broadcastF32(2.0f);
    b.setF32(5, 0.0f);
    a.setF32(9, 0.0f);
    uint16_t elm = elmF32(a, b, 0xffff);
    EXPECT_EQ(elm, 0xffffu & ~(1u << 5) & ~(1u << 9));
}

TEST(Mgu, F32WriteMaskClearsLanes)
{
    VecReg a = VecReg::broadcastF32(1.0f);
    VecReg b = VecReg::broadcastF32(1.0f);
    EXPECT_EQ(elmF32(a, b, 0x00ff), 0x00ffu);
}

TEST(Mgu, NegativeZeroCountsAsZero)
{
    VecReg a = VecReg::broadcastF32(-0.0f);
    VecReg b = VecReg::broadcastF32(1.0f);
    EXPECT_EQ(elmF32(a, b, 0xffff), 0u);
}

TEST(Mgu, MpPerMlGranularity)
{
    VecReg a = VecReg::broadcastBf16Pair(f32ToBf16(1.0f), 0);
    VecReg b = VecReg::broadcastBf16Pair(f32ToBf16(1.0f),
                                         f32ToBf16(1.0f));
    uint32_t elm = elmMp(a, b, 0xffff);
    // Only even MLs are effectual (odd A lanes are zero).
    EXPECT_EQ(elm, 0x55555555u);
    EXPECT_EQ(mpAlMask(elm), 0xffffu);
}

TEST(Mgu, MpWriteMaskPerAl)
{
    VecReg a = VecReg::broadcastBf16Pair(f32ToBf16(1.0f),
                                         f32ToBf16(1.0f));
    uint32_t elm = elmMp(a, a, 0x0001);
    EXPECT_EQ(elm, 0x3u); // only AL 0's two MLs
    EXPECT_EQ(mpAlMask(elm), 0x1u);
}

TEST(Mgu, MpAlMaskCollapsesPairs)
{
    EXPECT_EQ(mpAlMask(0x0), 0u);
    EXPECT_EQ(mpAlMask(0x2), 0x1u);      // ML 1 -> AL 0
    EXPECT_EQ(mpAlMask(0x4), 0x2u);      // ML 2 -> AL 1
    EXPECT_EQ(mpAlMask(0xC0000000u), 0x8000u);
}

TEST(Vpu, PipelinedCompletion)
{
    VpuPipeline v;
    v.issue({{0, 0, 1.0f, 0}}, 4);
    v.tick();
    v.issue({{1, 1, 2.0f, 1}}, 5);
    EXPECT_TRUE(v.drainCompleted(3).empty());
    auto w4 = v.drainCompleted(4);
    ASSERT_EQ(w4.size(), 1u);
    EXPECT_EQ(w4[0].dstPhys, 0);
    auto w5 = v.drainCompleted(5);
    ASSERT_EQ(w5.size(), 1u);
    EXPECT_FALSE(v.idle() && false);
    EXPECT_TRUE(v.idle());
}

TEST(Vpu, CountsOpsAndLanes)
{
    VpuPipeline v;
    v.issue({{0, 0, 1.0f, 0}, {0, 1, 2.0f, 0}}, 4);
    EXPECT_EQ(v.opsIssued(), 1u);
    EXPECT_EQ(v.lanesIssued(), 2u);
}

TEST(VpuDeathTest, DoubleIssueSameCycle)
{
    VpuPipeline v;
    v.issue({}, 4);
    EXPECT_DEATH(v.issue({}, 4), "double issue");
}

TEST(Vpu, MixedLatencyCompletesOutOfIssueOrder)
{
    // A fully pipelined unit fed a 6-cycle VDPBF16PS and then a
    // 4-cycle FP32 FMA completes the later-issued op first. The ring
    // pops from the head assuming it holds the earliest completion,
    // so issue() must insert sorted by done cycle (fuzzer-found:
    // "VPU completion order violated" panic).
    VpuPipeline v;
    v.issue({{0, 0, 1.0f, 0}}, 8); // issued at 2, done at 2+6
    v.tick();
    v.issue({{1, 1, 2.0f, 1}}, 7); // issued at 3, done at 3+4
    EXPECT_EQ(v.nextCompletion(), 7u);
    auto w7 = v.drainCompleted(7);
    ASSERT_EQ(w7.size(), 1u);
    EXPECT_EQ(w7[0].dstPhys, 1);
    EXPECT_EQ(v.nextCompletion(), 8u);
    auto w8 = v.drainCompleted(8);
    ASSERT_EQ(w8.size(), 1u);
    EXPECT_EQ(w8[0].dstPhys, 0);
    EXPECT_TRUE(v.idle());
}

TEST(PipelineSquash, MidStreamFaultRestoresArchState)
{
    // A squash-heavy generated program: rotation-prone VFMAs, MP
    // chains, store->load line reuse, and a mid-stream fault. The
    // differential checker runs it through every policy x fast-forward
    // mode against the in-order oracle and verifies the drained
    // machine leaks nothing (free list full, ROB/RS empty) — failing
    // if the squash leaves stale lane waiters, rotated-copy links, or
    // in-flight store lines behind.
    FuzzProgram p = fuzzGenerate(57);
    ASSERT_GE(p.faultIndex, 0) << "seed 57 must carry a fault";
    EXPECT_EQ(fuzzCheck(p), "");
}

TEST(PipelineSquash, SquashHeavySweep)
{
    // Sweep the first generator seeds that carry an injected fault so
    // the squash path is exercised across several profiles (different
    // sparsity, precision mixes, and mask styles).
    int squashy = 0;
    for (uint64_t seed = 0; seed < 64 && squashy < 8; ++seed) {
        FuzzProgram p = fuzzGenerate(seed);
        if (p.faultIndex < 0)
            continue;
        ++squashy;
        EXPECT_EQ(fuzzCheck(p), "") << "seed " << seed;
    }
    EXPECT_GE(squashy, 8);
}

} // namespace
} // namespace save
