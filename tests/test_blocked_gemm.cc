/**
 * @file
 * Tests for the full cache-blocked GEMM builder used by the
 * methodology-validation bench.
 */

#include <gtest/gtest.h>

#include <memory>

#include "kernels/gemm.h"
#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

GemmConfig
cfg()
{
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 8;
    g.tiles = 3;
    g.bsSparsity = 0.3;
    g.nbsSparsity = 0.4;
    g.seed = 31;
    return g;
}

TEST(BlockedGemm, UopCountScalesWithPanels)
{
    MemoryImage m1, m2;
    GemmWorkload one = buildBlockedGemm(cfg(), 1, m1);
    GemmWorkload four = buildBlockedGemm(cfg(), 4, m2);
    EXPECT_EQ(four.trace.size(), 4 * one.trace.size());
    EXPECT_EQ(four.bBytes, 4 * one.bBytes);
    EXPECT_EQ(four.cBytes, 4 * one.cBytes);
}

TEST(BlockedGemm, SinglePanelMatchesBuildGemm)
{
    MemoryImage m1, m2;
    GemmWorkload a = buildGemm(cfg(), m1);
    GemmWorkload b = buildBlockedGemm(cfg(), 1, m2);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].op, b.trace[i].op) << i;
        EXPECT_EQ(a.trace[i].dst, b.trace[i].dst) << i;
    }
}

TEST(BlockedGemm, PanelsTouchDisjointBandC)
{
    MemoryImage m;
    GemmWorkload w = buildBlockedGemm(cfg(), 3, m);
    // Every B load and C store address must be unique per (panel,
    // position): collect and count.
    std::vector<uint64_t> stores;
    for (const Uop &u : w.trace)
        if (u.op == Opcode::StoreVec)
            stores.push_back(u.addr);
    std::sort(stores.begin(), stores.end());
    EXPECT_TRUE(std::adjacent_find(stores.begin(), stores.end()) ==
                stores.end());
    EXPECT_EQ(stores.size(),
              3u * cfg().tiles * cfg().mr * cfg().nrVecs);
}

TEST(BlockedGemm, BitwiseCorrectThroughThePipeline)
{
    GemmConfig g = cfg();
    MemoryImage image;
    GemmWorkload w = buildBlockedGemm(g, 3, image);

    MachineConfig m;
    m.cores = 1;
    Multicore mc(m, SaveConfig{}, 2, &image);
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    mc.run(10'000'000);

    MemoryImage ref_image;
    GemmWorkload ref_w = buildBlockedGemm(g, 3, ref_image);
    ArchExecutor ref(&ref_image);
    ref.run(ref_w.trace);
    for (uint64_t off = 0; off < w.cBytes; off += 4)
        ASSERT_EQ(image.readU32(w.cBase + off),
                  ref_image.readU32(ref_w.cBase + off));
}

} // namespace
} // namespace save
