/**
 * @file
 * Unit tests for the workload generators: sparsity injection, GEMM
 * trace structure, conv-to-GEMM lowering, micro-kernel shape choice,
 * LSTM cells, and multicore sharding.
 */

#include <gtest/gtest.h>

#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "kernels/lstm.h"
#include "kernels/sparsity.h"
#include "util/error.h"

namespace save {
namespace {

TEST(Sparsity, FillRateF32)
{
    MemoryImage m;
    uint64_t base = m.allocRegion(4 * 20000);
    Rng rng(3);
    fillF32(m, base, 20000, 0.6, rng);
    EXPECT_NEAR(measuredSparsityF32(m, base, 20000), 0.6, 0.02);
}

TEST(Sparsity, FillRateBf16)
{
    MemoryImage m;
    uint64_t base = m.allocRegion(2 * 20000);
    Rng rng(4);
    fillBf16(m, base, 20000, 0.3, rng);
    EXPECT_NEAR(measuredSparsityBf16(m, base, 20000), 0.3, 0.02);
}

TEST(Sparsity, DenseFillHasNoZeros)
{
    MemoryImage m;
    uint64_t base = m.allocRegion(4 * 1000);
    Rng rng(5);
    fillF32(m, base, 1000, 0.0, rng);
    EXPECT_EQ(measuredSparsityF32(m, base, 1000), 0.0);
}

TEST(GemmGen, MacCount)
{
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 10;
    g.tiles = 3;
    EXPECT_EQ(g.macs(), 4ull * 2 * 16 * 10 * 3);
    g.precision = Precision::Bf16;
    EXPECT_EQ(g.macs(), 4ull * 2 * 16 * 10 * 3 * 2);
}

TEST(GemmGen, TraceStructureExplicit)
{
    MemoryImage m;
    GemmConfig g;
    g.mr = 3;
    g.nrVecs = 2;
    g.kSteps = 5;
    g.tiles = 2;
    GemmWorkload w = buildGemm(g, m);
    size_t vfmas = 0, bcasts = 0, loads = 0, stores = 0, alus = 0;
    for (const Uop &u : w.trace) {
        if (u.op == Opcode::VfmaPs) ++vfmas;
        if (u.op == Opcode::BroadcastLoad) ++bcasts;
        if (u.op == Opcode::LoadVec) ++loads;
        if (u.op == Opcode::StoreVec) ++stores;
        if (u.op == Opcode::Alu) ++alus;
    }
    EXPECT_EQ(vfmas, 2u * 5 * 3 * 2);       // tiles*k*mr*nr
    EXPECT_EQ(bcasts, 2u * 5 * 3);          // tiles*k*mr
    EXPECT_EQ(loads, 2u * (5 * 2 + 3 * 2)); // B per k + C tile loads
    EXPECT_EQ(stores, 2u * 3 * 2);
    EXPECT_EQ(alus, 2u * 5);
}

TEST(GemmGen, TraceStructureEmbedded)
{
    MemoryImage m;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 1;
    g.kSteps = 3;
    g.pattern = BroadcastPattern::Embedded;
    GemmWorkload w = buildGemm(g, m);
    size_t vfmas = 0, bcasts = 0;
    for (const Uop &u : w.trace) {
        if (u.op == Opcode::VfmaPsBcast) ++vfmas;
        if (u.op == Opcode::BroadcastLoad) ++bcasts;
    }
    EXPECT_EQ(vfmas, 3u * 4);
    EXPECT_EQ(bcasts, 0u); // embedded: no explicit broadcast uops
}

TEST(GemmGen, PackedAPanelIsKMajor)
{
    // One k step's broadcasts must be contiguous (B$ locality).
    MemoryImage m;
    GemmConfig g;
    g.mr = 8;
    g.nrVecs = 1;
    g.kSteps = 4;
    g.pattern = BroadcastPattern::Embedded;
    GemmWorkload w = buildGemm(g, m);
    std::vector<uint64_t> step0_addrs;
    for (const Uop &u : w.trace)
        if (u.op == Opcode::VfmaPsBcast)
            step0_addrs.push_back(u.addr);
    ASSERT_GE(step0_addrs.size(), 8u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(step0_addrs[static_cast<size_t>(i + 1)] -
                      step0_addrs[static_cast<size_t>(i)],
                  4u);
}

TEST(GemmGen, RegisterBudgetEnforced)
{
    MemoryImage m;
    GemmConfig g;
    g.mr = 28;
    g.nrVecs = 1;
    g.pattern = BroadcastPattern::Embedded;
    EXPECT_NO_THROW(buildGemm(g, m)); // 29 regs: fits
    GemmConfig bad = g;
    bad.mr = 32;
    try {
        buildGemm(bad, m);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("register tile too big"),
                  std::string::npos)
            << e.what();
    }
}

TEST(GemmGen, ShardedSharesAPanel)
{
    MemoryImage m;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 8;
    auto shards = buildShardedGemm(g, m, 3);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].aBase, shards[1].aBase);
    EXPECT_EQ(shards[1].aBase, shards[2].aBase);
    EXPECT_NE(shards[0].bBase, shards[1].bBase);
    EXPECT_NE(shards[0].cBase, shards[1].cBase);
}

TEST(ConvDims, ForwardGemm)
{
    ConvLayer l{"x", 256, 512, 3, 3, 28, 28, 1};
    GemmDims d = convGemmDims(l, Phase::Forward, 32);
    EXPECT_EQ(d.m, 28 * 28 * 32);
    EXPECT_EQ(d.n, 512);
    EXPECT_EQ(d.k, 256 * 9);
    EXPECT_EQ(d.macs(), l.macsPerImage() * 32);
}

TEST(ConvDims, BackwardGemms)
{
    ConvLayer l{"x", 64, 128, 3, 3, 56, 56, 1};
    GemmDims di = convGemmDims(l, Phase::BwdInput, 8);
    EXPECT_EQ(di.n, 64);
    EXPECT_EQ(di.k, 128 * 9);
    GemmDims dw = convGemmDims(l, Phase::BwdWeights, 8);
    EXPECT_EQ(dw.m, 64 * 9);
    EXPECT_EQ(dw.n, 128);
    EXPECT_EQ(dw.k, 56 * 56 * 8);
    // All three phases move the same MAC volume.
    EXPECT_EQ(di.macs(), dw.macs());
}

TEST(ConvDims, StridedOutput)
{
    ConvLayer l{"x", 3, 64, 7, 7, 224, 224, 2};
    EXPECT_EQ(l.oh(), 112);
    EXPECT_EQ(l.ow(), 112);
}

TEST(ShapeChooser, ForwardExplicitScalesWithN)
{
    KernelShape s64 = chooseShape(Phase::Forward, 64);
    EXPECT_EQ(s64.pattern, BroadcastPattern::Explicit);
    EXPECT_EQ(s64.nrVecs, 4);
    KernelShape s512 = chooseShape(Phase::Forward, 512);
    EXPECT_EQ(s512.nrVecs, 6);
    EXPECT_EQ(s512.mr, 4);
    // Register budget always respected.
    for (int64_t n : {16, 48, 64, 128, 512}) {
        KernelShape s = chooseShape(Phase::Forward, n);
        EXPECT_LE(s.mr * s.nrVecs + s.nrVecs + 2, kLogicalVecRegs);
    }
}

TEST(ShapeChooser, BackwardMatchesPaperKernels)
{
    // SecVII-D: narrow-N backward kernels use 28 accumulators with
    // full B reuse; wide-N use 21 accumulators (7x3).
    KernelShape narrow = chooseShape(Phase::BwdInput, 128);
    EXPECT_EQ(narrow.mr, 28);
    EXPECT_EQ(narrow.nrVecs, 1);
    EXPECT_EQ(narrow.pattern, BroadcastPattern::Embedded);
    KernelShape wide = chooseShape(Phase::BwdInput, 512);
    EXPECT_EQ(wide.mr, 7);
    EXPECT_EQ(wide.nrVecs, 3);
}

TEST(KernelSpec, SliceClampsToProblemK)
{
    ConvLayer l{"x", 3, 64, 3, 3, 224, 224, 1}; // K = 27
    KernelSpec spec = makeConvKernel(l, Phase::Forward, 32);
    GemmConfig slice = spec.slice(Precision::Fp32, 0, 0, 128);
    EXPECT_LE(slice.kSteps, 27);
    EXPECT_GE(slice.kSteps, 8);
}

TEST(KernelSpec, MacScaleConsistency)
{
    ConvLayer l{"x", 256, 256, 3, 3, 28, 28, 1};
    KernelSpec spec = makeConvKernel(l, Phase::Forward, 32);
    GemmConfig slice = spec.slice(Precision::Fp32, 0, 0, 128);
    double scale = spec.macScale(slice);
    EXPECT_NEAR(scale * static_cast<double>(slice.macs()),
                static_cast<double>(spec.dims.macs()), 1.0);
    EXPECT_GT(scale, 1.0);
}

TEST(KernelSpec, MpSliceCoversSameKWithHalfSteps)
{
    ConvLayer l{"x", 256, 256, 3, 3, 28, 28, 1};
    KernelSpec spec = makeConvKernel(l, Phase::Forward, 32);
    GemmConfig f32 = spec.slice(Precision::Fp32, 0, 0, 64);
    GemmConfig mp = spec.slice(Precision::Bf16, 0, 0, 64);
    EXPECT_EQ(f32.macs(), 64ull * f32.mr * f32.nrVecs * 16);
    EXPECT_EQ(mp.macs(), f32.macs() * 2 / 1); // same steps, 2 MACs/lane
}

TEST(Lstm, GemmShape)
{
    LstmCell c;
    c.name = "cell";
    c.inputDim = 1024;
    c.hiddenDim = 1024;
    c.batch = 64;
    c.timeSteps = 16;
    KernelSpec spec = makeLstmKernel(c, Phase::Forward);
    EXPECT_EQ(spec.dims.m, 64 * 16);
    EXPECT_EQ(spec.dims.n, 4096);
    EXPECT_EQ(spec.dims.k, 2048);
    EXPECT_EQ(spec.dims.macs(), c.macs());
    EXPECT_EQ(spec.shape.pattern, BroadcastPattern::Explicit);
}

TEST(LstmDeathTest, NoSeparateWeightPhase)
{
    LstmCell c;
    c.name = "cell";
    try {
        makeLstmKernel(c, Phase::BwdWeights);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("merged"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace save
