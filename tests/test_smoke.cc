/**
 * @file
 * End-to-end smoke tests: small GEMM slices run through every policy
 * and verify bitwise functional equivalence plus basic speedup sanity.
 */

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "util/logging.h"

namespace save {
namespace {

MachineConfig
smallMachine()
{
    MachineConfig m;
    m.cores = 2;
    return m;
}

GemmConfig
smallGemm(double bs, double nbs)
{
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 4;
    g.kSteps = 32;
    g.bsSparsity = bs;
    g.nbsSparsity = nbs;
    g.seed = 42;
    return g;
}

TEST(Smoke, BaselineRunsAndVerifies)
{
    Engine e(smallMachine(), SaveConfig::baseline());
    std::string why;
    EXPECT_TRUE(e.verifyGemm(smallGemm(0.0, 0.0), 2, &why)) << why;
    EXPECT_TRUE(e.verifyGemm(smallGemm(0.5, 0.5), 2, &why)) << why;
}

TEST(Smoke, SaveRvcVerifies)
{
    Engine e(smallMachine(), SaveConfig{});
    std::string why;
    EXPECT_TRUE(e.verifyGemm(smallGemm(0.0, 0.0), 2, &why)) << why;
    EXPECT_TRUE(e.verifyGemm(smallGemm(0.4, 0.6), 2, &why)) << why;
    EXPECT_TRUE(e.verifyGemm(smallGemm(0.9, 0.9), 1, &why)) << why;
}

TEST(Smoke, SaveSpeedsUpSparseKernel)
{
    GemmConfig g = smallGemm(0.0, 0.6);
    g.kSteps = 96;
    Engine base(smallMachine(), SaveConfig::baseline());
    Engine sv(smallMachine(), SaveConfig{});
    auto rb = base.runGemm(g, 1, 2);
    auto rs = sv.runGemm(g, 1, 2);
    EXPECT_GT(rb.cycles, 0u);
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_GT(speedup(rb, rs), 1.1) << "SAVE should beat baseline at "
                                       "60% NBS";
}

TEST(Smoke, MixedPrecisionVerifies)
{
    GemmConfig g = smallGemm(0.3, 0.5);
    g.precision = Precision::Bf16;
    Engine sv(smallMachine(), SaveConfig{});
    std::string why;
    EXPECT_TRUE(sv.verifyGemm(g, 2, &why)) << why;

    SaveConfig no_mp;
    no_mp.mpCompress = false;
    Engine sv2(smallMachine(), no_mp);
    EXPECT_TRUE(sv2.verifyGemm(g, 2, &why)) << why;
}

TEST(Smoke, EmbeddedBroadcastVerifies)
{
    GemmConfig g = smallGemm(0.4, 0.4);
    g.pattern = BroadcastPattern::Embedded;
    g.mr = 14;
    g.nrVecs = 2;
    Engine sv(smallMachine(), SaveConfig{});
    std::string why;
    EXPECT_TRUE(sv.verifyGemm(g, 2, &why)) << why;
}

} // namespace
} // namespace save
