/**
 * @file
 * Unit tests for the DNN model layer: pruning schedules, activation
 * profiles, network tables, sparsity surfaces, and the estimator.
 */

#include <gtest/gtest.h>

#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "dnn/surface.h"

namespace save {
namespace {

TEST(Pruning, ZhuGuptaEndpoints)
{
    PruningSchedule p = PruningSchedule::resnet50();
    EXPECT_EQ(p.sparsityAt(0), 0.0);
    EXPECT_EQ(p.sparsityAt(31), 0.0);
    EXPECT_EQ(p.sparsityAt(60), 0.80);
    EXPECT_EQ(p.sparsityAt(101), 0.80);
    EXPECT_DOUBLE_EQ(p.finalSparsity(), 0.80);
}

TEST(Pruning, CubicRampIsMonotoneAndFrontLoaded)
{
    PruningSchedule p = PruningSchedule::resnet50();
    double prev = -1;
    for (int64_t e = 0; e < p.totalSteps; ++e) {
        double s = p.sparsityAt(e);
        EXPECT_GE(s, prev);
        prev = s;
    }
    // Cubic: more than half the target reached before the midpoint.
    double mid = p.sparsityAt((p.startStep + p.endStep) / 2);
    EXPECT_GT(mid, 0.5 * p.targetSparsity);
}

TEST(Pruning, GnmtSchedule)
{
    PruningSchedule p = PruningSchedule::gnmt();
    EXPECT_EQ(p.sparsityAt(3), 0.0);
    EXPECT_DOUBLE_EQ(p.sparsityAt(19), 0.90);
    EXPECT_EQ(p.totalSteps, 34);
}

TEST(Pruning, NoneStaysDense)
{
    PruningSchedule p = PruningSchedule::none(90);
    EXPECT_FALSE(p.prunes());
    EXPECT_EQ(p.sparsityAt(89), 0.0);
}

TEST(ActivationProfile, FirstLayerAlwaysDense)
{
    for (auto kind :
         {ActivationProfile::Kind::Vgg16,
          ActivationProfile::Kind::Resnet50Dense,
          ActivationProfile::Kind::Gnmt}) {
        ActivationProfile p(kind, 13, 90);
        EXPECT_EQ(p.at(0, 0), 0.0);
        EXPECT_EQ(p.at(0, 89), 0.0);
    }
}

TEST(ActivationProfile, VggHighAndDeepening)
{
    ActivationProfile p(ActivationProfile::Kind::Vgg16, 13, 90);
    EXPECT_GT(p.at(12, 89), p.at(1, 89));
    EXPECT_GT(p.at(12, 89), 0.7);
    EXPECT_LT(p.at(12, 89), 0.95);
    // Rises over training.
    EXPECT_GT(p.at(6, 89), p.at(6, 0));
}

TEST(ActivationProfile, ResnetLowerThanVgg)
{
    ActivationProfile v(ActivationProfile::Kind::Vgg16, 13, 90);
    ActivationProfile r(ActivationProfile::Kind::Resnet50Dense, 53, 90);
    double v_avg = 0, r_avg = 0;
    for (int l = 1; l < 13; ++l)
        v_avg += v.at(l, 89) / 12;
    for (int l = 1; l < 53; ++l)
        r_avg += r.at(l, 89) / 52;
    EXPECT_GT(v_avg, r_avg);
    // All values stay in [0, 1).
    for (int l = 0; l < 53; ++l)
        for (int64_t e : {int64_t{0}, int64_t{45}, int64_t{89}}) {
            EXPECT_GE(r.at(l, e), 0.0);
            EXPECT_LT(r.at(l, e), 1.0);
        }
}

TEST(ActivationProfile, GnmtConstantDropout)
{
    ActivationProfile p(ActivationProfile::Kind::Gnmt, 27, 34);
    EXPECT_EQ(p.at(5, 0), 0.20);
    EXPECT_EQ(p.at(20, 33), 0.20);
}

TEST(Networks, LayerCounts)
{
    EXPECT_EQ(vgg16Dense().convLayers.size(), 13u);
    EXPECT_EQ(resnet50Dense().convLayers.size(), 53u);
    EXPECT_EQ(gnmtPruned().cells.size(), 27u);
    EXPECT_EQ(allStudiedKernels().size(), 93u);
}

TEST(Networks, Resnet50Structure)
{
    NetworkModel n = resnet50Dense();
    const ConvLayer &stem = n.convLayers[0];
    EXPECT_EQ(stem.inC, 3);
    EXPECT_EQ(stem.outC, 64);
    EXPECT_EQ(stem.kh, 7);
    const ConvLayer &l22b = findConvLayer(n, "resnet2_2b");
    EXPECT_EQ(l22b.inC, 64);
    EXPECT_EQ(l22b.outC, 64);
    EXPECT_EQ(l22b.kh, 3);
    const ConvLayer &l51a = findConvLayer(n, "resnet5_1a");
    EXPECT_EQ(l51a.inC, 1024);
    EXPECT_EQ(l51a.outC, 512);
    EXPECT_EQ(l51a.kh, 1);
}

TEST(Networks, PaperNamedKernelsExist)
{
    NetworkModel n = resnet50Pruned();
    for (const char *name :
         {"resnet2_2b", "resnet3_2b", "resnet4_1a", "resnet5_1a"})
        EXPECT_NO_FATAL_FAILURE(findConvLayer(n, name));
}

TEST(Networks, PrunedVariantsConfigured)
{
    EXPECT_FALSE(resnet50Dense().pruned);
    EXPECT_TRUE(resnet50Pruned().pruned);
    EXPECT_TRUE(resnet50Pruned().schedule.prunes());
    EXPECT_FALSE(vgg16Dense().schedule.prunes());
    EXPECT_TRUE(vgg16Dense().sparseGradients);
    EXPECT_FALSE(resnet50Dense().sparseGradients);
}

TEST(Surface, ExactAtGridPoints)
{
    SparsitySurface s = buildSurface(
        [](double w, double a) { return 100 + 50 * w + 10 * a; });
    EXPECT_TRUE(s.complete());
    EXPECT_DOUBLE_EQ(s.timeAt(0.0, 0.0), 100.0);
    EXPECT_NEAR(s.timeAt(0.5, 0.3), 100 + 25 + 3, 1e-9);
}

TEST(Surface, BilinearBetweenPoints)
{
    SparsitySurface s = buildSurface(
        [](double w, double a) { return w * 100 + a * 10; });
    // Linear functions are reproduced exactly by bilinear interp.
    EXPECT_NEAR(s.timeAt(0.35, 0.15), 35 + 1.5, 1e-9);
}

TEST(Surface, ClampsBeyondSampledRange)
{
    SparsitySurface s =
        buildSurface([](double w, double a) { return w + a; });
    EXPECT_NEAR(s.timeAt(0.95, 0.99), s.timeAt(0.9, 0.9), 1e-12);
}

TEST(SurfaceDeathTest, UnsampledBinPanics)
{
    SparsitySurface s;
    s.set(0, 0, 1.0);
    EXPECT_DEATH(s.at(1, 1), "not sampled");
}

class EstimatorTest : public ::testing::Test
{
  protected:
    EstimatorTest()
    {
        opt_.kSteps = 24;
        opt_.tiles = 1;
        opt_.gridStep = 9; // only 0% and 90% bins: fast
        est_ = std::make_unique<TrainingEstimator>(MachineConfig{},
                                                   SaveConfig{}, opt_);
    }

    EstimatorOptions opt_;
    std::unique_ptr<TrainingEstimator> est_;
};

TEST_F(EstimatorTest, BaselineIgnoresSparsity)
{
    KernelSpec spec = makeConvKernel(
        vgg16Dense().convLayers[4], Phase::Forward, 8);
    double t1 = est_->kernelTime(spec, Precision::Fp32, 0.0, 0.0,
                                 false, 2);
    uint64_t sims_after_first = est_->simulations();
    double t2 = est_->kernelTime(spec, Precision::Fp32, 0.7, 0.5,
                                 false, 2);
    EXPECT_DOUBLE_EQ(t1, t2);
    // And the second call must be fully cached.
    EXPECT_EQ(est_->simulations(), sims_after_first);
}

TEST_F(EstimatorTest, SaveTimeDecreasesWithSparsity)
{
    KernelSpec spec = makeConvKernel(
        vgg16Dense().convLayers[4], Phase::Forward, 8);
    double dense = est_->kernelTime(spec, Precision::Fp32, 0.0, 0.0,
                                    true, 2);
    double sparse = est_->kernelTime(spec, Precision::Fp32, 0.0, 0.9,
                                     true, 2);
    EXPECT_LT(sparse, dense);
}

TEST_F(EstimatorTest, InterpolationBetweenBins)
{
    KernelSpec spec = makeConvKernel(
        vgg16Dense().convLayers[4], Phase::Forward, 8);
    double lo = est_->kernelTime(spec, Precision::Fp32, 0.0, 0.0,
                                 true, 2);
    double hi = est_->kernelTime(spec, Precision::Fp32, 0.0, 0.9,
                                 true, 2);
    double mid = est_->kernelTime(spec, Precision::Fp32, 0.0, 0.45,
                                  true, 2);
    EXPECT_NEAR(mid, (lo + hi) / 2, 1e-6);
}

TEST_F(EstimatorTest, DynamicIsBestPerKernel)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(3); // keep the test fast
    NetResult r = est_->inference(net, Precision::Fp32);
    EXPECT_LE(r.saveDynamic.total(),
              std::min(r.save2.total(), r.save1.total()) + 1e-6);
    EXPECT_LE(r.saveStatic.total(),
              std::min(r.save2.total(), r.save1.total()) + 1e-6);
    EXPECT_LE(r.saveDynamic.total(), r.saveStatic.total() + 1e-6);
    EXPECT_GT(r.baseline2.total(), 0.0);
}

TEST_F(EstimatorTest, FirstLayerSeparatedInBreakdown)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(2);
    NetResult r = est_->inference(net, Precision::Fp32);
    EXPECT_GT(r.baseline2.firstLayer, 0.0);
    EXPECT_GT(r.baseline2.forward, 0.0);
    EXPECT_EQ(r.baseline2.bwdInput, 0.0); // inference: no backward
}

TEST_F(EstimatorTest, TrainingHasBackwardPhases)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(2);
    net.schedule = PruningSchedule::none(3); // 3 epochs for speed
    NetResult r = est_->training(net, Precision::Fp32);
    EXPECT_GT(r.baseline2.bwdInput, 0.0);
    EXPECT_GT(r.baseline2.bwdWeights, 0.0);
}

TEST_F(EstimatorTest, CacheSharedAcrossLayersWithSameShape)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(4);
    est_->inference(net, Precision::Fp32);
    uint64_t sims1 = est_->simulations();
    est_->inference(net, Precision::Fp32);
    EXPECT_EQ(est_->simulations(), sims1); // fully cached second time
}

} // namespace
} // namespace save
