/**
 * @file
 * Host-SIMD backend tests (util/simd.h).
 *
 * The dispatch contract is that every backend — generic scalar, AVX2,
 * AVX-512 — is bit-exact with the scalar helpers in isa/bf16.h. This
 * suite pins that down directly:
 *
 *  - exhaustive 2^16 BF16 widen/narrow round-trip (the only values
 *    that may change are signaling NaNs, which pick up the quiet bit);
 *  - round-to-nearest-even boundaries of f32ToBf16, including the
 *    overflow-to-infinity edge;
 *  - NaN canonicalization: computed NaNs collapse to 0x7fc00000 on
 *    every backend, pass-through NaNs keep their payload bit-exactly;
 *  - randomized VecRegs (zeros, denormals, infinities, NaN payloads)
 *    through every primitive of every host-supported backend, compared
 *    word-for-word against the scalar model;
 *  - the differential fuzzer corpus replayed under each backend.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "isa/bf16.h"
#include "isa/vec.h"
#include "sim/fuzz.h"
#include "util/simd.h"

namespace save {
namespace {

namespace fs = std::filesystem;

/** Restores the entry backend on scope exit. */
class BackendGuard
{
  public:
    BackendGuard() : prev_(simd::activeBackend()) {}
    ~BackendGuard() { simd::forceBackend(prev_); }

  private:
    simd::Backend prev_;
};

std::vector<simd::Backend>
supportedBackends()
{
    std::vector<simd::Backend> out;
    for (simd::Backend b : {simd::Backend::Generic, simd::Backend::Avx2,
                            simd::Backend::Avx512})
        if (simd::backendSupported(b))
            out.push_back(b);
    return out;
}

TEST(SimdDispatch, GenericAlwaysSupported)
{
    EXPECT_TRUE(simd::backendSupported(simd::Backend::Generic));
    // The resolved backend must be one the host can actually run.
    EXPECT_TRUE(simd::backendSupported(simd::activeBackend()));
}

TEST(SimdDispatch, ParseBackendNames)
{
    simd::Backend b;
    EXPECT_TRUE(simd::parseBackend("generic", b));
    EXPECT_EQ(b, simd::Backend::Generic);
    EXPECT_TRUE(simd::parseBackend("avx2", b));
    EXPECT_EQ(b, simd::Backend::Avx2);
    EXPECT_TRUE(simd::parseBackend("avx512", b));
    EXPECT_EQ(b, simd::Backend::Avx512);
    EXPECT_FALSE(simd::parseBackend("sse9", b));
    EXPECT_FALSE(simd::parseBackend("", b));
}

TEST(SimdDispatch, ForceBackendRoundTrips)
{
    BackendGuard guard;
    for (simd::Backend b : supportedBackends()) {
        ASSERT_TRUE(simd::forceBackend(b));
        EXPECT_EQ(simd::activeBackend(), b);
        EXPECT_STREQ(simd::backendName(), simd::backendName(b));
    }
}

TEST(Bf16, RoundTripExhaustive)
{
    // Widen-then-narrow is the identity for every BF16 value except
    // signaling NaNs, which f32ToBf16 quiets (payload kept, quiet bit
    // forced) exactly as the hardware conversion does.
    for (uint32_t v = 0; v <= 0xffffu; ++v) {
        Bf16 in = static_cast<Bf16>(v);
        Bf16 out = f32ToBf16(bf16ToF32(in));
        bool is_nan = (v & 0x7f80u) == 0x7f80u && (v & 0x007fu);
        Bf16 expect = is_nan ? static_cast<Bf16>(v | 0x0040u) : in;
        ASSERT_EQ(out, expect) << "bf16 0x" << std::hex << v;
    }
}

TEST(Bf16, RoundToNearestEvenBoundaries)
{
    struct Case
    {
        uint32_t f32Bits;
        Bf16 expect;
    };
    // Guard/round/sticky boundaries around 1.0 + n ULPs, negative
    // ties, and the overflow-to-infinity edge at FLT_MAX.
    const Case cases[] = {
        {0x3f808000u, 0x3f80}, // exact tie, even lane: stays
        {0x3f818000u, 0x3f82}, // exact tie, odd lane: up to even
        {0x3f808001u, 0x3f81}, // just above the tie: up
        {0x3f807fffu, 0x3f80}, // just below the tie: down
        {0x3f80ffffu, 0x3f81}, // top of the interval: up
        {0xbf808000u, 0xbf80}, // negative tie, even: stays
        {0xbf818000u, 0xbf82}, // negative tie, odd: away from zero
        {0x7f7fffffu, 0x7f80}, // FLT_MAX rounds to +inf
        {0xff7fffffu, 0xff80}, // -FLT_MAX rounds to -inf
        {0x00008000u, 0x0000}, // denormal tie at zero: stays +0
        {0x00018000u, 0x0002}, // denormal tie, odd: up to even
    };
    for (const Case &c : cases)
        EXPECT_EQ(f32ToBf16(std::bit_cast<float>(c.f32Bits)), c.expect)
            << "f32 0x" << std::hex << c.f32Bits;
}

TEST(SimdOps, NanCanonicalizationPerBackend)
{
    BackendGuard guard;
    const uint32_t payload = 0x7fc12345u; // non-canonical quiet NaN
    for (simd::Backend b : supportedBackends()) {
        ASSERT_TRUE(simd::forceBackend(b));
        const simd::Ops &o = simd::ops();
        SCOPED_TRACE(simd::backendName(b));

        // Computed NaN (NaN operand on an effectual lane, and
        // Inf + -Inf from the accumulate) collapses to 0x7fc00000.
        VecReg a, bb, c;
        a.setWord(0, payload);
        bb.setF32(0, 1.0f);
        c.setF32(0, 2.0f);
        a.setF32(1, std::bit_cast<float>(0x7f800000u)); // +inf
        bb.setF32(1, 1.0f);
        c.setF32(1, std::bit_cast<float>(0xff800000u)); // -inf
        VecReg r = o.macSkipF32Vec(a, bb, c, 0x0003u);
        EXPECT_EQ(r.word(0), 0x7fc00000u);
        EXPECT_EQ(r.word(1), 0x7fc00000u);

        // Pass-through NaN: a zero multiplicand skips the MAC, and a
        // masked-off lane never executes; both keep the accumulator's
        // payload untouched.
        VecReg az, bz, cz;
        cz.setWord(0, payload);
        az.setWord(0, payload);          // a is NaN but b is +0: skip
        cz.setWord(1, payload);
        az.setF32(1, 3.0f);
        bz.setF32(1, 3.0f);              // effectual but masked off
        VecReg rz = o.macSkipF32Vec(az, bz, cz, 0x0001u);
        EXPECT_EQ(rz.word(0), payload);
        EXPECT_EQ(rz.word(1), payload);

        // BF16: a computed NaN result is canonical too.
        VecReg am, bm, cm;
        am.setBf16(0, 0x7fc1);           // quiet NaN multiplicand
        bm.setBf16(0, 0x3f80);           // 1.0
        cm.setF32(0, 1.0f);
        VecReg rm = o.bf16MacSkipVec(am, bm, cm, 0x00000001u);
        EXPECT_EQ(rm.word(0), 0x7fc00000u);
    }
}

/** One word drawn from a special-value-heavy distribution. */
uint32_t
randomWord(std::mt19937_64 &rng)
{
    switch (rng() % 8) {
    case 0:
        return 0x00000000u; // +0
    case 1:
        return 0x80000000u; // -0
    case 2:
        return 0x7f800000u | (rng() & 1 ? 0x80000000u : 0); // +-inf
    case 3:
        return 0x7f800000u | (rng() % 0x007fffffu) |
               (rng() & 1 ? 0x80000000u : 0); // NaN, random payload
    case 4:
        return static_cast<uint32_t>(rng()) & 0x007fffffu; // denormal
    case 5:
        return (rng() & 1 ? 0x00000000u : 0x80000000u) |
               (static_cast<uint32_t>(rng()) & 0x0000ffffu) << 16 |
               (rng() & 1 ? 0x00008000u : 0); // bf16-ish halves
    default:
        return static_cast<uint32_t>(rng()); // anything
    }
}

VecReg
randomVec(std::mt19937_64 &rng)
{
    VecReg v;
    for (int i = 0; i < kVecLanes; ++i)
        v.setWord(i, randomWord(rng));
    return v;
}

/** Scalar model of the whole Ops table, built on isa/bf16.h. */
struct ScalarModel
{
    static VecReg
    macSkipF32Vec(const VecReg &a, const VecReg &b, const VecReg &c,
                  uint16_t wm)
    {
        VecReg r = c;
        for (int i = 0; i < kVecLanes; ++i)
            if ((wm >> i) & 1)
                r.setF32(i, macSkipF32(c.f32(i), a.f32(i), b.f32(i)));
        return r;
    }

    static VecReg
    bf16MacSkipVec(const VecReg &a, const VecReg &b, const VecReg &c,
                   uint32_t ml_mask)
    {
        VecReg r = c;
        for (int al = 0; al < kVecLanes; ++al) {
            float acc = c.f32(al);
            bool touched = false;
            for (int half = 0; half < kMlPerAl; ++half) {
                int ml = kMlPerAl * al + half;
                if ((ml_mask >> ml) & 1) {
                    acc = bf16MacSkip(acc, a.bf16(ml), b.bf16(ml));
                    touched = true;
                }
            }
            if (touched)
                r.setF32(al, acc);
        }
        return r;
    }

    static uint16_t
    elmF32(const VecReg &a, const VecReg &b, uint16_t wm)
    {
        uint16_t m = 0;
        for (int i = 0; i < kVecLanes; ++i)
            if (((wm >> i) & 1) && !f32BitsAreZero(a.word(i)) &&
                !f32BitsAreZero(b.word(i)))
                m |= static_cast<uint16_t>(1u << i);
        return m;
    }

    static uint32_t
    elmMp(const VecReg &a, const VecReg &b, uint16_t wm)
    {
        uint32_t m = 0;
        for (int ml = 0; ml < kMlLanes; ++ml)
            if (((wm >> (ml / kMlPerAl)) & 1) &&
                !bf16IsZero(a.bf16(ml)) && !bf16IsZero(b.bf16(ml)))
                m |= 1u << ml;
        return m;
    }

    static uint16_t
    zeroMaskF32(const VecReg &v)
    {
        uint16_t m = 0;
        for (int i = 0; i < kVecLanes; ++i)
            if (f32BitsAreZero(v.word(i)))
                m |= static_cast<uint16_t>(1u << i);
        return m;
    }

    static uint32_t
    zeroMaskBf16(const VecReg &v)
    {
        uint32_t m = 0;
        for (int ml = 0; ml < kMlLanes; ++ml)
            if (bf16IsZero(v.bf16(ml)))
                m |= 1u << ml;
        return m;
    }
};

TEST(SimdOps, BackendsMatchScalarModelOnRandomVecRegs)
{
    BackendGuard guard;
    std::mt19937_64 rng(20260808);
    constexpr int kIters = 500;

    for (int it = 0; it < kIters; ++it) {
        VecReg a = randomVec(rng);
        VecReg b = randomVec(rng);
        VecReg c = randomVec(rng);
        uint16_t wm = static_cast<uint16_t>(rng());
        uint32_t mlm = static_cast<uint32_t>(rng());

        VecReg exp_mac = ScalarModel::macSkipF32Vec(a, b, c, wm);
        VecReg exp_dp = ScalarModel::bf16MacSkipVec(a, b, c, mlm);
        uint16_t exp_elm = ScalarModel::elmF32(a, b, wm);
        uint32_t exp_elmmp = ScalarModel::elmMp(a, b, wm);
        uint16_t exp_zf = ScalarModel::zeroMaskF32(a);
        uint32_t exp_zb = ScalarModel::zeroMaskBf16(b);

        for (simd::Backend back : supportedBackends()) {
            ASSERT_TRUE(simd::forceBackend(back));
            const simd::Ops &o = simd::ops();
            SCOPED_TRACE(std::string(simd::backendName(back)) +
                         " iter " + std::to_string(it));

            EXPECT_EQ(o.macSkipF32Vec(a, b, c, wm), exp_mac);
            EXPECT_EQ(o.bf16MacSkipVec(a, b, c, mlm), exp_dp);
            EXPECT_EQ(o.elmF32(a, b, wm), exp_elm);
            EXPECT_EQ(o.elmMp(a, b, wm), exp_elmmp);
            EXPECT_EQ(o.zeroMaskF32(a), exp_zf);
            EXPECT_EQ(o.zeroMaskBf16(b), exp_zb);
        }
    }
}

/** Strip '#' comment lines, as save-fuzz --run does. */
std::string
readEntry(const fs::path &p)
{
    std::ifstream f(p);
    EXPECT_TRUE(f.is_open()) << p;
    std::ostringstream text;
    std::string line;
    while (std::getline(f, line))
        if (line.empty() || line[0] != '#')
            text << line << "\n";
    return text.str();
}

TEST(SimdOps, FuzzCorpusCleanPerBackend)
{
    // The differential matrix (every policy x fast-forward mode vs the
    // ArchExecutor oracle) must stay clean whichever backend computes
    // the functional math — the pipeline and the oracle share it, so a
    // bit-difference between backends would surface as a value
    // divergence here.
    std::vector<fs::path> entries;
    for (const auto &de : fs::directory_iterator(SAVE_CORPUS_DIR))
        if (de.path().extension() == ".txt")
            entries.push_back(de.path());
    std::sort(entries.begin(), entries.end());
    ASSERT_FALSE(entries.empty());

    BackendGuard guard;
    for (simd::Backend b : supportedBackends()) {
        ASSERT_TRUE(simd::forceBackend(b));
        for (const fs::path &path : entries) {
            SCOPED_TRACE(std::string(simd::backendName(b)) + " " +
                         path.filename().string());
            FuzzProgram p;
            ASSERT_NO_THROW(p = fuzzParse(readEntry(path)));
            EXPECT_EQ(fuzzCheck(p), "");
        }
    }
}

} // namespace
} // namespace save
