/**
 * @file
 * Property tests (parameterized sweeps): SAVE's software-transparency
 * invariant — every policy, precision, pattern, VPU count, and
 * sparsity mix produces results bitwise identical to in-order
 * execution — plus structural invariants on the issued work.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "engine/engine.h"

namespace save {
namespace {

MachineConfig
oneCore()
{
    MachineConfig m;
    m.cores = 1;
    return m;
}

using TransparencyParam =
    std::tuple<SchedPolicy, bool /*lwd*/, BroadcastPattern, Precision,
               int /*vpus*/, int /*sparsity pair index*/>;

class Transparency : public ::testing::TestWithParam<TransparencyParam>
{
};

TEST_P(Transparency, BitwiseEqualToInOrderExecution)
{
    auto [pol, lwd, pattern, prec, vpus, sp] = GetParam();
    static const double kBs[] = {0.0, 0.5, 0.8, 0.2, 0.9};
    static const double kNbs[] = {0.0, 0.5, 0.2, 0.8, 0.9};

    SaveConfig s;
    s.policy = pol;
    s.laneWiseDep = lwd;

    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 24;
    g.tiles = 2;
    g.pattern = pattern;
    g.precision = prec;
    g.bsSparsity = kBs[sp];
    g.nbsSparsity = kNbs[sp];
    g.seed = 1234 + static_cast<uint64_t>(sp);

    Engine e(oneCore(), s);
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, vpus, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Transparency,
    ::testing::Combine(
        ::testing::Values(SchedPolicy::VC, SchedPolicy::RVC,
                          SchedPolicy::HC),
        ::testing::Values(false, true),
        ::testing::Values(BroadcastPattern::Explicit,
                          BroadcastPattern::Embedded),
        ::testing::Values(Precision::Fp32, Precision::Bf16),
        ::testing::Values(1, 2), ::testing::Values(0, 1, 2, 3, 4)));

using WorkParam = std::tuple<int /*sparsity*/, int /*vpus*/>;

class WorkConservation : public ::testing::TestWithParam<WorkParam>
{
};

TEST_P(WorkConservation, EffectualLanesMatchDataSparsity)
{
    auto [sp, vpus] = GetParam();
    double nbs = sp * 0.1;

    GemmConfig g;
    g.mr = 14;
    g.nrVecs = 2;
    g.kSteps = 64;
    g.tiles = 2;
    g.pattern = BroadcastPattern::Embedded;
    g.nbsSparsity = nbs;
    g.seed = 99 + static_cast<uint64_t>(sp);

    Engine e(oneCore(), SaveConfig{});
    auto r = e.runGemm(g, 1, vpus);
    double lanes = r.stats.get("coalesced_lanes");
    double total_lanes = static_cast<double>(g.macs()) / 16.0 * 16.0;
    // Issued effectual lanes track the density of B.
    EXPECT_NEAR(lanes / total_lanes, 1.0 - nbs, 0.05);
    // Pass-through covers exactly the rest.
    double pass = r.stats.get("passthrough_lanes");
    EXPECT_DOUBLE_EQ(lanes + pass, total_lanes);
}

TEST_P(WorkConservation, SaveNeverIssuesMoreVpuOpsThanBaseline)
{
    auto [sp, vpus] = GetParam();
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 48;
    g.tiles = 2;
    g.nbsSparsity = sp * 0.1;
    g.bsSparsity = 0.2;
    g.seed = 7;

    Engine base(oneCore(), SaveConfig::baseline());
    Engine sv(oneCore(), SaveConfig{});
    auto rb = base.runGemm(g, 1, vpus);
    auto rs = sv.runGemm(g, 1, vpus);
    EXPECT_LE(rs.stats.get("vpu_ops"), rb.stats.get("vpu_ops"));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkConservation,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(1, 2)));

class SeedStability : public ::testing::TestWithParam<int>
{
};

TEST_P(SeedStability, TimingIsDeterministic)
{
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 4;
    g.kSteps = 32;
    g.nbsSparsity = 0.5;
    g.bsSparsity = 0.3;
    g.seed = static_cast<uint64_t>(GetParam());

    Engine e(oneCore(), SaveConfig{});
    auto r1 = e.runGemm(g, 1, 2);
    auto r2 = e.runGemm(g, 1, 2);
    EXPECT_EQ(r1.cycles, r2.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStability, ::testing::Range(1, 6));

} // namespace
} // namespace save
