/**
 * @file
 * Register-cost accounting for rotate-vertical coalescing (paper
 * SecIV-B): only the non-broadcasted multiplicand needs per-R-state
 * copies (the broadcast operand is rotation-invariant and same-
 * accumulator chains share one R-state), and the resulting extra
 * register consumption is small — a few percent for embedded-
 * broadcast kernels, tens of percent for explicit ones.
 */

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace save {
namespace {

double
rotatedCopyRatio(BroadcastPattern pattern, int mr, int nr)
{
    MachineConfig m;
    m.cores = 1;
    GemmConfig g;
    g.mr = mr;
    g.nrVecs = nr;
    g.kSteps = 96;
    g.tiles = 2;
    g.pattern = pattern;
    g.nbsSparsity = 0.5;
    Engine e(m, SaveConfig{});
    auto r = e.runGemm(g, 1, 2);
    double allocs =
        r.stats.get("vfmas") + r.stats.get("loads_issued");
    return r.stats.get("rotated_copies") / allocs;
}

TEST(RotatedCopies, EmbeddedKernelsUnderFivePercent)
{
    // Paper SecIV-B: "much lower, less than 5%, when running a
    // typical embedded broadcast kernel".
    EXPECT_LT(rotatedCopyRatio(BroadcastPattern::Embedded, 28, 1),
              0.05);
    // Wider-N embedded tiles amortize less B reuse per copy but stay
    // well below the explicit pattern.
    EXPECT_LT(rotatedCopyRatio(BroadcastPattern::Embedded, 7, 3),
              0.16);
}

TEST(RotatedCopies, ExplicitKernelsModerate)
{
    // Paper: "less than 25% additional registers" for a typical
    // explicit kernel; our explicit tiling lands in the same tens-of-
    // percent regime and far above the embedded case.
    double explicit_ratio =
        rotatedCopyRatio(BroadcastPattern::Explicit, 4, 6);
    double embedded_ratio =
        rotatedCopyRatio(BroadcastPattern::Embedded, 28, 1);
    EXPECT_LT(explicit_ratio, 0.45);
    EXPECT_GT(explicit_ratio, 4 * embedded_ratio);
}

TEST(RotatedCopies, NoCopiesWithoutRotation)
{
    MachineConfig m;
    m.cores = 1;
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 32;
    g.nbsSparsity = 0.5;
    SaveConfig vc;
    vc.policy = SchedPolicy::VC;
    Engine e(m, vc);
    auto r = e.runGemm(g, 1, 2);
    EXPECT_EQ(r.stats.get("rotated_copies"), 0.0);
}

TEST(RotatedCopies, BaselineHasNone)
{
    MachineConfig m;
    m.cores = 1;
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 32;
    Engine e(m, SaveConfig::baseline());
    auto r = e.runGemm(g, 1, 2);
    EXPECT_EQ(r.stats.get("rotated_copies"), 0.0);
}

} // namespace
} // namespace save
