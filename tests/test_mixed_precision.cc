/**
 * @file
 * Mixed-precision (VDPBF16PS) tests: chain compression correctness,
 * accumulation-order preservation (bitwise reproducibility), partial-
 * result forwarding timing, and the squared-sparsity effect without
 * the SecV technique.
 */

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

MachineConfig
oneCore()
{
    MachineConfig m;
    m.cores = 1;
    return m;
}

GemmConfig
mpKernel(double bs, double nbs, int mr = 7, int nr = 3)
{
    GemmConfig g;
    g.mr = mr;
    g.nrVecs = nr;
    g.kSteps = 48;
    g.tiles = 2;
    g.precision = Precision::Bf16;
    g.pattern = BroadcastPattern::Embedded;
    g.bsSparsity = bs;
    g.nbsSparsity = nbs;
    g.seed = 11;
    return g;
}

TEST(MixedPrecision, CompressionBitwiseEqualsReference)
{
    for (double nbs : {0.0, 0.3, 0.6, 0.9}) {
        SaveConfig s;
        ASSERT_TRUE(s.mpCompress);
        Engine e(oneCore(), s);
        std::string why;
        EXPECT_TRUE(e.verifyGemm(mpKernel(0.2, nbs), 2, &why))
            << "nbs=" << nbs << ": " << why;
    }
}

TEST(MixedPrecision, NoCompressionBitwiseEqualsReference)
{
    SaveConfig s;
    s.mpCompress = false;
    Engine e(oneCore(), s);
    std::string why;
    EXPECT_TRUE(e.verifyGemm(mpKernel(0.3, 0.5), 2, &why)) << why;
}

TEST(MixedPrecision, CompressionReducesVpuOps)
{
    // Per-ML sparsity 50% -> without compression only ~25% of ALs can
    // be skipped (both MLs zero); with compression ~50% of MLs are
    // skipped (paper SecV intro).
    GemmConfig g = mpKernel(0.0, 0.5);
    SaveConfig with;
    SaveConfig without;
    without.mpCompress = false;
    Engine ew(oneCore(), with), eo(oneCore(), without);
    auto rw = ew.runGemm(g, 1, 1);
    auto ro = eo.runGemm(g, 1, 1);
    EXPECT_LT(rw.cycles, ro.cycles);
}

TEST(MixedPrecision, SquaredSparsityWithoutTechnique)
{
    // Without compression, skippable ALs ~ sparsity^2. At 50% ML
    // sparsity, vpu lanes should be ~75% of dense; with compression
    // the ML work itself halves.
    GemmConfig dense = mpKernel(0.0, 0.0);
    GemmConfig sparse = mpKernel(0.0, 0.5);
    SaveConfig without;
    without.mpCompress = false;
    Engine e(oneCore(), without);
    auto rd = e.runGemm(dense, 1, 2);
    auto rs = e.runGemm(sparse, 1, 2);
    double ratio =
        rs.stats.get("coalesced_lanes") / rd.stats.get("coalesced_lanes");
    EXPECT_NEAR(ratio, 0.75, 0.06);
}

TEST(MixedPrecision, MlThroughputAccounting)
{
    SaveConfig s;
    Engine e(oneCore(), s);
    GemmConfig g = mpKernel(0.0, 0.5);
    auto r = e.runGemm(g, 1, 2);
    double mls = r.stats.get("mp_mls_issued");
    // Total effectual MLs ~ 50% of all MLs.
    double total_mls =
        static_cast<double>(g.macs()); // one ML per BF16 MAC
    EXPECT_NEAR(mls / total_mls, 0.5, 0.06);
}

TEST(MixedPrecision, ChainOrderPreservedUnderExtremeSparsity)
{
    // Alternating-zero patterns exercise cross-VFMA ML packing; the
    // result must still be bitwise equal to in-order execution.
    SaveConfig s;
    Engine e(oneCore(), s);
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        GemmConfig g = mpKernel(0.5, 0.7, 4, 1);
        g.seed = seed;
        std::string why;
        EXPECT_TRUE(e.verifyGemm(g, 1, &why)) << "seed " << seed << ": "
                                              << why;
    }
}

TEST(MixedPrecision, ExplicitBroadcastPatternVerifies)
{
    GemmConfig g = mpKernel(0.3, 0.4, 4, 4);
    g.pattern = BroadcastPattern::Explicit;
    SaveConfig s;
    Engine e(oneCore(), s);
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
}

TEST(MixedPrecision, WriteMasksComposeWithChains)
{
    GemmConfig g = mpKernel(0.2, 0.4, 4, 2);
    g.useWriteMask = true;
    g.writeMask = 0x0f0f;
    SaveConfig s;
    Engine e(oneCore(), s);
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
}

TEST(MixedPrecision, MpLatencyLongerThanFp32)
{
    // A dependent chain of MP VFMAs is paced by the 6-cycle latency
    // (vs 4 for FP32), visible in total cycles.
    MachineConfig m = oneCore();
    GemmConfig mp = mpKernel(0.0, 0.0, 1, 1);
    mp.kSteps = 128;
    mp.tiles = 1;
    GemmConfig fp = mp;
    fp.precision = Precision::Fp32;
    Engine e(m, SaveConfig::baseline());
    auto rmp = e.runGemm(mp, 1, 2);
    auto rfp = e.runGemm(fp, 1, 2);
    EXPECT_GT(rmp.cycles, rfp.cycles);
}

TEST(MixedPrecision, BsSkipStillAppliesToMp)
{
    GemmConfig g = mpKernel(1.0, 0.0, 4, 1); // all broadcasts zero
    SaveConfig s;
    Engine e(oneCore(), s);
    auto r = e.runGemm(g, 1, 2);
    EXPECT_EQ(r.stats.get("mp_mls_issued"), 0.0);
    EXPECT_GT(r.stats.get("bs_skipped_vfmas"), 0.0);
}

} // namespace
} // namespace save
