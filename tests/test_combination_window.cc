/**
 * @file
 * Combination-window measurements (paper SecIII): the number of ready
 * VFMAs the scheduler can coalesce from is bounded by the number of
 * accumulator registers ("the CW is often 24-28" for a large GEMM
 * with 32 ISA vector registers), and register reuse of the vector
 * multiplicand divides the *effective* window.
 */

#include <gtest/gtest.h>

#include "engine/engine.h"

namespace save {
namespace {

double
avgCw(int mr, int nr, BroadcastPattern pattern, double nbs)
{
    MachineConfig m;
    m.cores = 1;
    GemmConfig g;
    g.mr = mr;
    g.nrVecs = nr;
    g.kSteps = 96;
    g.tiles = 2;
    g.pattern = pattern;
    g.nbsSparsity = nbs;
    Engine e(m, SaveConfig{});
    auto r = e.runGemm(g, 1, 2);
    double cycles = r.stats.get("cw_cycles");
    return cycles > 0 ? r.stats.get("cw_sum") / cycles : 0.0;
}

TEST(CombinationWindow, LargeGemmSitsNearAccumulatorCount)
{
    // 28 accumulators: the paper quotes a window of 24-28.
    double cw = avgCw(28, 1, BroadcastPattern::Embedded, 0.5);
    EXPECT_GE(cw, 15.0);
    EXPECT_LE(cw, 28.0);
}

TEST(CombinationWindow, BoundedByAccumulators)
{
    // Fewer accumulator registers shrink the window accordingly.
    double small = avgCw(4, 1, BroadcastPattern::Embedded, 0.5);
    double large = avgCw(28, 1, BroadcastPattern::Embedded, 0.5);
    EXPECT_LE(small, 4.05);
    EXPECT_GT(large, 2.0 * small);
}

TEST(CombinationWindow, GrowsWithTileSize)
{
    double t21 = avgCw(7, 3, BroadcastPattern::Embedded, 0.5);
    double t28 = avgCw(28, 1, BroadcastPattern::Embedded, 0.5);
    EXPECT_GT(t28, t21 * 0.9); // both sizeable; 28 >= ~21-range
    EXPECT_GT(t21, 8.0);
}

} // namespace
} // namespace save
