/**
 * @file
 * Cross-validation of the network layer tables against the published
 * FLOP counts: VGG16 ~15.3 GFLOPs and ResNet-50 ~3.9-4.1 GFLOPs of
 * conv work per 224x224 image (1 MAC = 2 FLOPs), plus structural
 * spot-checks of every stage, and GNMT estimator coverage.
 */

#include <gtest/gtest.h>

#include "dnn/estimator.h"
#include "dnn/networks.h"

namespace save {
namespace {

double
convGmacs(const NetworkModel &net)
{
    uint64_t macs = 0;
    for (const ConvLayer &l : net.convLayers)
        macs += l.macsPerImage();
    return static_cast<double>(macs) / 1e9;
}

TEST(NetworkFlops, Vgg16MatchesPublished)
{
    // Published conv multiply-accumulates for VGG16 at 224x224:
    // ~15.3G (the commonly quoted "15.3 GFLOPs").
    EXPECT_NEAR(convGmacs(vgg16Dense()), 15.3, 0.5);
}

TEST(NetworkFlops, Resnet50MatchesPublished)
{
    // Published conv MACs for ResNet-50: ~3.86G ("3.9/4.1 GFLOPs").
    EXPECT_NEAR(convGmacs(resnet50Dense()), 3.86, 0.25);
}

TEST(NetworkFlops, GnmtCellMacs)
{
    // One 1024-hidden LSTM cell step: (1024+1024) x 4096 MACs per
    // token; our cells fold batch*timeSteps tokens.
    NetworkModel net = gnmtPruned();
    const LstmCell &enc2 = net.cells[3]; // gnmt_enc2: 1024 input
    EXPECT_EQ(enc2.macs(), static_cast<uint64_t>(enc2.batch) *
                               enc2.timeSteps * 2048ull * 4096ull);
}

TEST(NetworkStructure, Resnet50StageShapes)
{
    NetworkModel n = resnet50Dense();
    // Stage spatial sizes: conv2 56, conv3 28, conv4 14, conv5 7
    // (checked via the 3x3 "b" conv of the last block per stage).
    EXPECT_EQ(findConvLayer(n, "resnet2_3b").ih, 56);
    EXPECT_EQ(findConvLayer(n, "resnet3_4b").ih, 28);
    EXPECT_EQ(findConvLayer(n, "resnet4_6b").ih, 14);
    EXPECT_EQ(findConvLayer(n, "resnet5_3b").ih, 7);
    // Channel progression of the expand convs.
    EXPECT_EQ(findConvLayer(n, "resnet2_1c").outC, 256);
    EXPECT_EQ(findConvLayer(n, "resnet3_1c").outC, 512);
    EXPECT_EQ(findConvLayer(n, "resnet4_1c").outC, 1024);
    EXPECT_EQ(findConvLayer(n, "resnet5_1c").outC, 2048);
    // Downsample convs only at stage entries.
    int ds = 0;
    for (const ConvLayer &l : n.convLayers)
        if (l.name.size() > 2 &&
            l.name.substr(l.name.size() - 2) == "ds")
            ++ds;
    EXPECT_EQ(ds, 4);
}

TEST(NetworkStructure, Vgg16ChannelDoubling)
{
    NetworkModel n = vgg16Dense();
    EXPECT_EQ(findConvLayer(n, "vgg1_1").outC, 64);
    EXPECT_EQ(findConvLayer(n, "vgg2_1").outC, 128);
    EXPECT_EQ(findConvLayer(n, "vgg3_1").outC, 256);
    EXPECT_EQ(findConvLayer(n, "vgg4_1").outC, 512);
    EXPECT_EQ(findConvLayer(n, "vgg5_3").ih, 14);
}

TEST(NetworkStructure, GnmtEncoderDecoderWidths)
{
    NetworkModel n = gnmtPruned();
    EXPECT_EQ(n.cells[0].name, "gnmt_enc0_fwd");
    EXPECT_EQ(n.cells[2].inputDim, 2048); // bidir concat into enc1
    int dec = 0;
    for (const LstmCell &c : n.cells)
        if (c.name.rfind("gnmt_dec", 0) == 0) {
            EXPECT_EQ(c.inputDim, 2048); // input + attention context
            ++dec;
        }
    EXPECT_EQ(dec, 8);
}

TEST(EstimatorGnmt, TrainingStaticBeatsBothFixedConfigs)
{
    EstimatorOptions opt;
    opt.kSteps = 24;
    opt.tiles = 1;
    opt.gridStep = 9;
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, opt);

    NetworkModel net = gnmtPruned();
    net.cells.resize(3);
    net.schedule.totalSteps = 8;
    net.schedule.startStep = 2;
    net.schedule.endStep = 5;
    NetResult r = est.training(net, Precision::Fp32);
    // Pruning ramps mid-training: early epochs favor 2 VPUs, late
    // ones favor 1, so the per-epoch static choice beats both fixed
    // configurations.
    EXPECT_LE(r.saveStatic.total(),
              std::min(r.save2.total(), r.save1.total()) + 1e-6);
    EXPECT_LE(r.saveDynamic.total(),
              r.saveStatic.total() * (1 + 1e-9));
    // LSTM backward is the merged phase and carries 2x the MACs.
    EXPECT_NEAR(r.baseline2.bwdInput, 2 * r.baseline2.forward,
                0.2 * r.baseline2.bwdInput);
    EXPECT_EQ(r.baseline2.bwdWeights, 0.0);
}

TEST(EstimatorGnmt, InferenceSpeedupGrowsWithPruning)
{
    EstimatorOptions opt;
    opt.kSteps = 24;
    opt.tiles = 1;
    opt.gridStep = 9;
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, opt);

    NetworkModel net = gnmtPruned();
    net.cells.resize(2);
    NetResult pruned = est.inference(net, Precision::Fp32);
    net.schedule.targetSparsity = 0.0;
    NetResult dense = est.inference(net, Precision::Fp32);
    double sp_pruned =
        pruned.baseline2.total() / pruned.saveDynamic.total();
    double sp_dense =
        dense.baseline2.total() / dense.saveDynamic.total();
    EXPECT_GT(sp_pruned, sp_dense);
}

} // namespace
} // namespace save
