/**
 * @file
 * Regression corpus for the differential uop-stream fuzzer.
 *
 * tests/corpus/ holds shrunken repros of every bug the fuzzer has
 * found (each header comment names the bug and the fix) plus a few
 * generated programs chosen for coverage (squash faults, degenerate
 * masks, long streams). Every entry must pass the full differential
 * matrix — all scheduler policies × fast-forward modes against the
 * ArchExecutor oracle, with leak checks — both with the invariant
 * auditor enabled and disabled (SAVE_AUDIT is read per Core
 * construction, so toggling the environment between checks covers
 * both; in a build without -DSAVE_AUDIT=ON the variable is inert and
 * both passes run unaudited).
 *
 * The corpus directory is baked in at compile time (SAVE_CORPUS_DIR)
 * so the test runs from any working directory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/fuzz.h"
#include "util/error.h"

namespace save {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path>
corpusEntries()
{
    std::vector<fs::path> entries;
    for (const auto &de : fs::directory_iterator(SAVE_CORPUS_DIR))
        if (de.path().extension() == ".txt")
            entries.push_back(de.path());
    std::sort(entries.begin(), entries.end());
    return entries;
}

/** Strip '#' comment lines, as save-fuzz --run does. */
std::string
readEntry(const fs::path &p)
{
    std::ifstream f(p);
    EXPECT_TRUE(f.is_open()) << p;
    std::ostringstream text;
    std::string line;
    while (std::getline(f, line))
        if (line.empty() || line[0] != '#')
            text << line << "\n";
    return text.str();
}

/** Restores the previous SAVE_AUDIT value on scope exit. */
class AuditEnvGuard
{
  public:
    AuditEnvGuard()
    {
        const char *v = std::getenv("SAVE_AUDIT");
        had_ = v != nullptr;
        if (had_)
            prev_ = v;
    }
    ~AuditEnvGuard()
    {
        if (had_)
            setenv("SAVE_AUDIT", prev_.c_str(), 1);
        else
            unsetenv("SAVE_AUDIT");
    }

  private:
    bool had_ = false;
    std::string prev_;
};

TEST(FuzzCorpus, HasRegressionEntries)
{
    // The corpus must keep at least the documented set of shrunken
    // fuzzer repros; losing entries silently would gut the regression
    // coverage this suite exists for.
    EXPECT_GE(corpusEntries().size(), 10u);
}

TEST(FuzzCorpus, EveryEntryCleanAuditedAndUnaudited)
{
    AuditEnvGuard guard;
    for (const fs::path &path : corpusEntries()) {
        SCOPED_TRACE(path.filename().string());
        FuzzProgram p;
        ASSERT_NO_THROW(p = fuzzParse(readEntry(path)));
        setenv("SAVE_AUDIT", "1", 1);
        EXPECT_EQ(fuzzCheck(p), "") << path << " (audit on)";
        setenv("SAVE_AUDIT", "0", 1);
        EXPECT_EQ(fuzzCheck(p), "") << path << " (audit off)";
    }
}

TEST(FuzzCorpus, SerializeRoundTrips)
{
    for (const fs::path &path : corpusEntries()) {
        SCOPED_TRACE(path.filename().string());
        std::string text = readEntry(path);
        FuzzProgram p = fuzzParse(text);
        // Parse -> serialize -> parse must be a fixed point.
        std::string ser = fuzzSerialize(p);
        FuzzProgram q = fuzzParse(ser);
        EXPECT_EQ(fuzzSerialize(q), ser);
        EXPECT_EQ(q.uops.size(), p.uops.size());
        EXPECT_EQ(q.faultIndex, p.faultIndex);
        EXPECT_EQ(q.words, p.words);
    }
}

TEST(FuzzCorpus, GeneratorIsDeterministic)
{
    for (uint64_t seed : {0ull, 7ull, 181ull}) {
        FuzzProgram a = fuzzGenerate(seed);
        FuzzProgram b = fuzzGenerate(seed);
        EXPECT_EQ(fuzzSerialize(a), fuzzSerialize(b)) << seed;
        EXPECT_FALSE(a.uops.empty()) << seed;
    }
}

TEST(FuzzCorpus, ParseRejectsMalformedInput)
{
    EXPECT_THROW(fuzzParse(""), TraceError);
    EXPECT_THROW(fuzzParse("not-savefuzz v1\nend\n"), TraceError);
    // Missing the end marker (truncated file).
    EXPECT_THROW(fuzzParse("savefuzz v1\nbase 65536\nbytes 4096\n"),
                 TraceError);
    // Word index outside the region.
    EXPECT_THROW(fuzzParse("savefuzz v1\nbase 65536\nbytes 64\n"
                           "word 999 0x1\nend\n"),
                 TraceError);
    // Opcode out of range.
    EXPECT_THROW(fuzzParse("savefuzz v1\nbase 65536\nbytes 64\n"
                           "uop 99 0 1 2 0 -1 0 0\nend\n"),
                 TraceError);
}

} // namespace
} // namespace save
