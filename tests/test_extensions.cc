/**
 * @file
 * Tests for the extension features (rotation-state ablation knob,
 * counter-driven VPU selection, A-panel layouts, power model) and
 * whole-pipeline hygiene invariants (no physical-register leaks, no
 * stat anomalies across a full run).
 */

#include <gtest/gtest.h>

#include "save/frequency.h"
#include "sim/multicore.h"

namespace save {
namespace {

MachineConfig
oneCore()
{
    MachineConfig m;
    m.cores = 1;
    return m;
}

TEST(RotationStates, OneStateEqualsPlainVc)
{
    GemmConfig g;
    g.mr = 28;
    g.nrVecs = 1;
    g.kSteps = 48;
    g.pattern = BroadcastPattern::Embedded;
    g.nbsSparsity = 0.6;

    SaveConfig one;
    one.rotationStates = 1;
    SaveConfig vc;
    vc.policy = SchedPolicy::VC;

    Engine e1(oneCore(), one), evc(oneCore(), vc);
    EXPECT_EQ(e1.runGemm(g, 1, 1).cycles, evc.runGemm(g, 1, 1).cycles);
}

TEST(RotationStates, MoreStatesNeverSlower)
{
    GemmConfig g;
    g.mr = 28;
    g.nrVecs = 1;
    g.kSteps = 64;
    g.tiles = 2;
    g.pattern = BroadcastPattern::Embedded;
    g.nbsSparsity = 0.7;

    uint64_t prev = ~0ull;
    for (int states : {1, 3, 5}) {
        SaveConfig s;
        s.rotationStates = states;
        Engine e(oneCore(), s);
        uint64_t cycles = e.runGemm(g, 1, 1).cycles;
        EXPECT_LE(cycles, prev + prev / 50) << states << " states";
        prev = cycles;
    }
}

TEST(RotationStates, WideRotationStaysBitwiseCorrect)
{
    GemmConfig g;
    g.mr = 14;
    g.nrVecs = 2;
    g.kSteps = 24;
    g.nbsSparsity = 0.5;
    g.bsSparsity = 0.3;
    SaveConfig s;
    s.rotationStates = 7;
    Engine e(oneCore(), s);
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
}

TEST(VpuSelection, PrefersTwoVpusWhenDense)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 96;
    g.tiles = 4;
    g.pattern = BroadcastPattern::Embedded;
    Engine e(oneCore(), SaveConfig{});
    VpuChoice c = chooseVpusByCounters(e, g);
    EXPECT_EQ(c.vpus, 2);
    EXPECT_NEAR(c.effectualFraction, 1.0, 0.05);
}

TEST(VpuSelection, PrefersOneVpuAtHighSparsity)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 96;
    g.tiles = 4;
    g.pattern = BroadcastPattern::Embedded;
    g.nbsSparsity = 0.9;
    g.bsSparsity = 0.5;
    Engine e(oneCore(), SaveConfig{});
    VpuChoice c = chooseVpusByCounters(e, g);
    EXPECT_EQ(c.vpus, 1);
    EXPECT_LT(c.vpuUtilization, 0.5);
    EXPECT_LT(c.effectualFraction, 0.2);
}

TEST(VpuSelection, PowerModelChargesOpsAndLeakage)
{
    VpuPowerModel pm;
    KernelResult r;
    r.cycles = 1000;
    r.stats.set("vpu_ops", 500);
    EXPECT_DOUBLE_EQ(pm.energy(r, 2),
                     500 * pm.opEnergy + 2000 * pm.leakPerVpuCycle);
    EXPECT_LT(pm.energy(r, 1), pm.energy(r, 2));
}

TEST(ALayout, RowMajorStaysBitwiseCorrect)
{
    GemmConfig g;
    g.mr = 14;
    g.nrVecs = 1;
    g.kSteps = 32;
    g.pattern = BroadcastPattern::Embedded;
    g.aLayout = ALayout::RowMajor;
    g.bsSparsity = 0.4;
    g.nbsSparsity = 0.4;
    Engine e(oneCore(), SaveConfig{});
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
}

TEST(ALayout, PackedPanelHitsBcacheBetter)
{
    GemmConfig g;
    g.mr = 28;
    g.nrVecs = 1;
    g.kSteps = 64;
    g.tiles = 2;
    g.pattern = BroadcastPattern::Embedded;
    Engine e(oneCore(), SaveConfig{});

    auto packed = e.runGemm(g, 1, 2);
    g.aLayout = ALayout::RowMajor;
    auto rowmaj = e.runGemm(g, 1, 2);
    EXPECT_GT(packed.stats.get("bcache_hit_rate"),
              rowmaj.stats.get("bcache_hit_rate") + 0.3);
}

/** After a run fully drains, exactly the 32 architectural registers
 *  remain mapped: anything else is a physical-register leak. */
TEST(PipelineHygiene, NoPhysRegLeakAfterDrain)
{
    MemoryImage image;
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 48;
    g.nbsSparsity = 0.5;
    g.bsSparsity = 0.3;
    GemmWorkload w = buildGemm(g, image);

    for (SaveConfig s : {SaveConfig{}, SaveConfig::baseline()}) {
        MachineConfig m = oneCore();
        Multicore mc(m, s, 2, &image);
        VectorTrace t(w.trace);
        mc.bindTraces({&t});
        mc.run(10'000'000);
        Core &c = mc.core(0);
        EXPECT_EQ(c.prf.numFree(),
                  c.prf.numRegs() - kLogicalVecRegs);
        EXPECT_TRUE(c.rob.empty());
        EXPECT_EQ(c.rs.size(), 0);
    }
}

TEST(PipelineHygiene, LaneAccountingConserved)
{
    // Every VFMA publishes exactly 16 accumulator lanes: the sum of
    // VPU lanes and pass-through lanes equals 16 * #VFMAs for any
    // SAVE policy without write masks.
    GemmConfig g;
    g.mr = 14;
    g.nrVecs = 2;
    g.kSteps = 48;
    g.nbsSparsity = 0.6;
    g.bsSparsity = 0.2;
    for (SchedPolicy p :
         {SchedPolicy::VC, SchedPolicy::RVC, SchedPolicy::HC}) {
        SaveConfig s;
        s.policy = p;
        Engine e(oneCore(), s);
        auto r = e.runGemm(g, 1, 2);
        double lanes = r.stats.get("vpu_lanes") +
                       r.stats.get("passthrough_lanes");
        EXPECT_DOUBLE_EQ(lanes, 16.0 * r.stats.get("vfmas"))
            << "policy " << static_cast<int>(p);
    }
}

/** Uop count of a slice (for the accounting test below). */
double
traceUops(const GemmConfig &g)
{
    MemoryImage img;
    return static_cast<double>(buildGemm(g, img).trace.size());
}

TEST(PipelineHygiene, MpLaneAccountingConserved)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 32;
    g.precision = Precision::Bf16;
    g.nbsSparsity = 0.5;
    g.bsSparsity = 0.3;
    for (bool compress : {true, false}) {
        SaveConfig s;
        s.mpCompress = compress;
        Engine e(oneCore(), s);
        auto r = e.runGemm(g, 1, 2);
        double lanes = r.stats.get("vpu_lanes") +
                       r.stats.get("passthrough_lanes");
        // Chain-compressed ALs publish via events, not VPU lane
        // writes; count them through the committed-lane identity
        // instead: every VFMA retires with 16 lanes done.
        EXPECT_LE(lanes, 16.0 * r.stats.get("vfmas"));
        EXPECT_EQ(r.stats.get("committed"), traceUops(g));
    }
}

} // namespace
} // namespace save
