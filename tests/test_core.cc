/**
 * @file
 * Integration tests of a single core: functional correctness of every
 * uop kind through the full OoO pipeline, timing sanity, BS skipping,
 * pass-through semantics, and write-mask behavior.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

class CoreHarness
{
  public:
    explicit CoreHarness(SaveConfig scfg = SaveConfig{}, int vpus = 2)
    {
        mcfg_.cores = 1;
        scfg_ = scfg;
        vpus_ = vpus;
    }

    MemoryImage &image() { return image_; }

    /** Run a trace; machine is built lazily so regions registered
     *  before run() are visible. */
    uint64_t
    run(const std::vector<Uop> &uops)
    {
        mc_ = std::make_unique<Multicore>(mcfg_, scfg_, vpus_, &image_);
        trace_ = std::make_unique<VectorTrace>(uops);
        mc_->bindTraces({trace_.get()});
        return mc_->run(10'000'000);
    }

    Core &core() { return mc_->core(0); }

    MachineConfig mcfg_;

  private:
    SaveConfig scfg_;
    int vpus_ = 2;
    MemoryImage image_;
    std::unique_ptr<Multicore> mc_;
    std::unique_ptr<VectorTrace> trace_;
};

VecReg
pattern(float base)
{
    VecReg v;
    for (int i = 0; i < kVecLanes; ++i)
        v.setF32(i, base + static_cast<float>(i));
    return v;
}

TEST(CoreTrace, LoadStoreRoundTrip)
{
    CoreHarness h;
    uint64_t src = h.image().allocRegion(64);
    uint64_t dst = h.image().allocRegion(64);
    h.image().writeLine(src, pattern(1.0f));

    h.run({Uop::loadVec(0, src), Uop::storeVec(0, dst)});
    EXPECT_TRUE(h.image().readLine(dst) == pattern(1.0f));
}

TEST(CoreTrace, BroadcastLoadFillsAllLanes)
{
    CoreHarness h;
    uint64_t src = h.image().allocRegion(64);
    uint64_t dst = h.image().allocRegion(64);
    h.image().writeF32(src + 8, 7.5f);

    h.run({Uop::broadcastLoad(1, src + 8), Uop::storeVec(1, dst)});
    for (int i = 0; i < kVecLanes; ++i)
        EXPECT_EQ(h.image().readLine(dst).f32(i), 7.5f);
}

TEST(CoreTrace, DenseVfmaComputesPerLane)
{
    CoreHarness h;
    uint64_t a = h.image().allocRegion(64);
    uint64_t b = h.image().allocRegion(64);
    uint64_t c = h.image().allocRegion(64);
    h.image().writeLine(a, pattern(1.0f));
    h.image().writeLine(b, pattern(2.0f));
    h.image().writeLine(c, pattern(100.0f));

    h.run({Uop::loadVec(0, a), Uop::loadVec(1, b), Uop::loadVec(2, c),
           Uop::vfma(2, 0, 1), Uop::storeVec(2, c)});
    VecReg out = h.image().readLine(c);
    for (int i = 0; i < kVecLanes; ++i) {
        float fi = static_cast<float>(i);
        EXPECT_EQ(out.f32(i), (100.0f + fi) + (1.0f + fi) * (2.0f + fi));
    }
}

TEST(CoreTrace, WriteMaskPreservesAccumulator)
{
    CoreHarness h;
    uint64_t a = h.image().allocRegion(64);
    uint64_t c = h.image().allocRegion(64);
    h.image().writeLine(a, VecReg::broadcastF32(1.0f));
    h.image().writeLine(c, pattern(0.0f));

    h.run({Uop::setMask(1, 0x00ff), Uop::loadVec(0, a),
           Uop::loadVec(2, c), Uop::vfma(2, 0, 0, 1),
           Uop::storeVec(2, c)});
    VecReg out = h.image().readLine(c);
    for (int i = 0; i < kVecLanes; ++i) {
        float expect = static_cast<float>(i) + (i < 8 ? 1.0f : 0.0f);
        EXPECT_EQ(out.f32(i), expect) << "lane " << i;
    }
}

TEST(CoreTrace, MaskCaptureIsInProgramOrder)
{
    CoreHarness h;
    uint64_t a = h.image().allocRegion(64);
    uint64_t c = h.image().allocRegion(64);
    h.image().writeLine(a, VecReg::broadcastF32(1.0f));

    // Same mask register rewritten between two VFMAs: each VFMA must
    // see the in-order value.
    h.run({Uop::loadVec(0, a), Uop::loadVec(2, c),
           Uop::setMask(1, 0x0001), Uop::vfma(2, 0, 0, 1),
           Uop::setMask(1, 0x8000), Uop::vfma(2, 0, 0, 1),
           Uop::storeVec(2, c)});
    VecReg out = h.image().readLine(c);
    EXPECT_EQ(out.f32(0), 1.0f);
    EXPECT_EQ(out.f32(15), 1.0f);
    EXPECT_EQ(out.f32(7), 0.0f);
}

TEST(CoreTrace, FullyIneffectualVfmaUsesNoVpu)
{
    CoreHarness h;
    uint64_t a = h.image().allocRegion(64); // stays all-zero
    uint64_t c = h.image().allocRegion(64);
    h.image().writeLine(c, pattern(5.0f));

    h.run({Uop::loadVec(0, a), Uop::loadVec(2, c), Uop::vfma(2, 0, 0),
           Uop::vfma(2, 0, 0), Uop::vfma(2, 0, 0),
           Uop::storeVec(2, c)});
    EXPECT_TRUE(h.image().readLine(c) == pattern(5.0f));
    EXPECT_EQ(h.core().stats().get("vpu_ops"), 0.0);
    EXPECT_EQ(h.core().stats().get("bs_skipped_vfmas"), 3.0);
}

TEST(CoreTrace, BaselineExecutesIneffectualWork)
{
    CoreHarness h(SaveConfig::baseline());
    uint64_t a = h.image().allocRegion(64);
    uint64_t c = h.image().allocRegion(64);

    h.run({Uop::loadVec(0, a), Uop::loadVec(2, c), Uop::vfma(2, 0, 0),
           Uop::storeVec(2, c)});
    EXPECT_EQ(h.core().stats().get("vpu_ops"), 1.0);
}

TEST(CoreTrace, DependentChainHonorsLatency)
{
    // A chain of n dense VFMAs on one accumulator is serialized by
    // the 4-cycle FMA latency.
    CoreHarness h(SaveConfig::baseline());
    uint64_t a = h.image().allocRegion(64);
    uint64_t c = h.image().allocRegion(64);
    h.image().writeLine(a, VecReg::broadcastF32(1.0f));

    std::vector<Uop> uops{Uop::loadVec(0, a), Uop::loadVec(2, c)};
    const int n = 32;
    for (int i = 0; i < n; ++i)
        uops.push_back(Uop::vfma(2, 0, 0));
    uint64_t cycles = h.run(uops);
    EXPECT_GE(cycles, static_cast<uint64_t>(
        n * h.mcfg_.fp32FmaLatency));
    EXPECT_LT(cycles, static_cast<uint64_t>(
        n * h.mcfg_.fp32FmaLatency + 160));
}

TEST(CoreTrace, IndependentVfmasPipelinePerVpu)
{
    // Independent dense VFMAs should sustain ~2 per cycle on 2 VPUs.
    CoreHarness h(SaveConfig::baseline());
    uint64_t a = h.image().allocRegion(64);
    h.image().writeLine(a, VecReg::broadcastF32(1.0f));

    std::vector<Uop> uops{Uop::loadVec(0, a)};
    const int n = 256;
    for (int i = 0; i < n; ++i)
        uops.push_back(Uop::vfma(1 + (i % 24), 0, 0));
    uint64_t cycles = h.run(uops);
    EXPECT_LT(cycles, static_cast<uint64_t>(n / 2 + 160));
    EXPECT_GT(cycles, static_cast<uint64_t>(n / 2 - 32));
}

TEST(CoreTrace, EmbeddedBroadcastReadsMemoryOperand)
{
    CoreHarness h;
    uint64_t a = h.image().allocRegion(64);
    uint64_t b = h.image().allocRegion(64);
    uint64_t c = h.image().allocRegion(64);
    h.image().writeF32(a + 12, 3.0f);
    h.image().writeLine(b, pattern(1.0f));

    h.run({Uop::loadVec(1, b), Uop::loadVec(2, c),
           Uop::vfmaBcast(2, a + 12, 1), Uop::storeVec(2, c)});
    VecReg out = h.image().readLine(c);
    for (int i = 0; i < kVecLanes; ++i)
        EXPECT_EQ(out.f32(i), 3.0f * (1.0f + static_cast<float>(i)));
}

TEST(CoreTrace, AluAndSetMaskRetireWithoutResources)
{
    CoreHarness h;
    std::vector<Uop> uops;
    for (int i = 0; i < 100; ++i)
        uops.push_back(Uop::alu());
    uint64_t cycles = h.run(uops);
    // 5-wide allocation: 100 ALU uops need ~20 cycles.
    EXPECT_LT(cycles, 40u);
    EXPECT_EQ(h.core().stats().get("committed"), 100.0);
}

TEST(CoreTrace, DrainedAfterRun)
{
    CoreHarness h;
    h.run({Uop::alu()});
    EXPECT_TRUE(h.core().drained());
    EXPECT_FALSE(h.core().step()); // stepping a drained core is a no-op
}

TEST(CoreTrace, BcacheServesRepeatedBroadcasts)
{
    CoreHarness h; // default SAVE: data-design B$
    uint64_t a = h.image().allocRegion(64);
    for (int i = 0; i < 16; ++i)
        h.image().writeF32(a + 4 * static_cast<uint64_t>(i), 1.0f);

    std::vector<Uop> uops;
    for (int i = 0; i < 16; ++i)
        uops.push_back(
            Uop::broadcastLoad(i % 8, a + 4 * static_cast<uint64_t>(i)));
    h.run(uops);
    ASSERT_NE(h.core().bcache(), nullptr);
    // One miss fills the line; 15 broadcasts hit.
    EXPECT_NEAR(h.core().stats().get("bcache_hit_rate"), 15.0 / 16.0,
                1e-9);
}

TEST(CoreTrace, ReferenceExecutorAgreesOnMixedTrace)
{
    CoreHarness h;
    MemoryImage &m = h.image();
    uint64_t a = m.allocRegion(64), b = m.allocRegion(64),
             c = m.allocRegion(64), out = m.allocRegion(64);
    m.writeLine(a, pattern(0.5f));
    m.writeLine(b, pattern(-3.0f)); // lane 3 becomes zero
    m.writeLine(c, pattern(10.0f));

    std::vector<Uop> uops{
        Uop::loadVec(0, a), Uop::loadVec(1, b), Uop::loadVec(2, c),
        Uop::vfma(2, 0, 1), Uop::vfma(2, 0, 1), Uop::storeVec(2, out),
    };

    MemoryImage ref_m;
    ref_m.addRegion(a, 64);
    ref_m.addRegion(b, 64);
    ref_m.addRegion(c, 64);
    ref_m.addRegion(out, 64);
    ref_m.writeLine(a, pattern(0.5f));
    ref_m.writeLine(b, pattern(-3.0f));
    ref_m.writeLine(c, pattern(10.0f));
    ArchExecutor ref(&ref_m);
    ref.run(uops);

    h.run(uops);
    EXPECT_TRUE(h.image().readLine(out) == ref_m.readLine(out));
}

} // namespace
} // namespace save
