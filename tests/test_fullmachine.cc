/**
 * @file
 * Full-machine integration: the paper's 28-core configuration running
 * a sharded layer slice end to end, with per-core bitwise
 * verification, NUCA/NoC sanity, and scaling behavior.
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.h"
#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

TEST(FullMachine, TwentyEightCoresRunAndVerify)
{
    MachineConfig m; // 28 cores, paper Table I
    MemoryImage image;
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 24;
    g.pattern = BroadcastPattern::Embedded;
    g.bsSparsity = 0.3;
    g.nbsSparsity = 0.5;
    auto shards = buildShardedGemm(g, image, 28);

    MemoryImage ref_image;
    auto ref_shards = buildShardedGemm(g, ref_image, 28);

    Multicore mc(m, SaveConfig{}, 2, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (auto &w : shards) {
        w.warmup(mc.hierarchy());
        traces.push_back(std::make_unique<VectorTrace>(w.trace));
        srcs.push_back(traces.back().get());
    }
    mc.bindTraces(srcs);
    uint64_t cycles = mc.run(10'000'000);
    EXPECT_GT(cycles, 0u);

    for (auto &w : ref_shards) {
        ArchExecutor ref(&ref_image);
        ref.run(w.trace);
    }
    for (size_t s = 0; s < shards.size(); ++s)
        for (uint64_t off = 0; off < shards[s].cBytes; off += 4)
            ASSERT_EQ(image.readU32(shards[s].cBase + off),
                      ref_image.readU32(ref_shards[s].cBase + off))
                << "core " << s;

    // Every core did comparable work (data-parallel shards).
    double min_c = 1e18, max_c = 0;
    for (int c = 0; c < 28; ++c) {
        double cyc = mc.core(c).stats().get("cycles");
        min_c = std::min(min_c, cyc);
        max_c = std::max(max_c, cyc);
    }
    EXPECT_LT(max_c, 1.5 * min_c);
}

TEST(FullMachine, SpeedupSurvivesSharedContention)
{
    // SAVE's relative benefit must persist when all 28 cores contend
    // for L3/NoC/DRAM, not just in single-core slices.
    auto run = [](const SaveConfig &s) {
        MachineConfig m;
        MemoryImage image;
        GemmConfig g;
        g.mr = 7;
        g.nrVecs = 3;
        g.kSteps = 32;
        g.pattern = BroadcastPattern::Embedded;
        g.nbsSparsity = 0.7;
        auto shards = buildShardedGemm(g, image, 28);
        Multicore mc(m, s, 2, &image);
        std::vector<std::unique_ptr<VectorTrace>> traces;
        std::vector<TraceSource *> srcs;
        for (auto &w : shards) {
            w.warmup(mc.hierarchy());
            traces.push_back(std::make_unique<VectorTrace>(w.trace));
            srcs.push_back(traces.back().get());
        }
        mc.bindTraces(srcs);
        return mc.run(10'000'000);
    };
    uint64_t base = run(SaveConfig::baseline());
    uint64_t sv = run(SaveConfig{});
    EXPECT_LT(sv, base * 9 / 10);
}

TEST(FullMachine, FaultOnOneCoreDoesNotPerturbOthers)
{
    MachineConfig m;
    m.cores = 4;
    MemoryImage image;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 3;
    g.kSteps = 24;
    g.bsSparsity = 0.2;
    g.nbsSparsity = 0.4;
    auto shards = buildShardedGemm(g, image, 4);

    MemoryImage ref_image;
    auto ref_shards = buildShardedGemm(g, ref_image, 4);

    Multicore mc(m, SaveConfig{}, 2, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (auto &w : shards) {
        traces.push_back(std::make_unique<VectorTrace>(w.trace));
        srcs.push_back(traces.back().get());
    }
    mc.bindTraces(srcs);
    mc.core(2).injectFaultAtSeq(150);
    mc.run(10'000'000);
    EXPECT_EQ(mc.core(2).stats().get("exceptions_serviced"), 1.0);

    for (auto &w : ref_shards) {
        ArchExecutor ref(&ref_image);
        ref.run(w.trace);
    }
    for (size_t s = 0; s < shards.size(); ++s)
        for (uint64_t off = 0; off < shards[s].cBytes; off += 4)
            ASSERT_EQ(image.readU32(shards[s].cBase + off),
                      ref_image.readU32(ref_shards[s].cBase + off))
                << "core " << s;
}

} // namespace
} // namespace save
