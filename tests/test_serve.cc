/**
 * @file
 * save-serve end-to-end tests: protocol round-trip and corruption
 * rejection, daemon lifecycle (spawned from the real binary),
 * admission control and load shedding, client disconnect mid-sweep,
 * graceful drain with in-flight work, SIGHUP config reload, stale
 * socket reclamation, and the acceptance bar — a served Fig. 14
 * sweep byte-identical to the in-process report across isolation
 * modes, with warm repeats answered from the shared CAS store.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dnn/fig14_report.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/posix_io.h"

using namespace save;

namespace {

std::string
tmpDir(const char *tag)
{
    std::string t = "/tmp/save_serve_test_" + std::string(tag) + "_" +
                    std::to_string(::getpid()) + "_XXXXXX";
    std::vector<char> buf(t.begin(), t.end());
    buf.push_back('\0');
    const char *d = ::mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

std::string
socketPath(const char *tag)
{
    static std::atomic<int> counter{0};
    return "/tmp/ss_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** The quick sweep knobs every test uses (the CI smoke config). */
Fig14Knobs
quickKnobs()
{
    Fig14Knobs k;
    k.gridStep = 9;
    k.kSteps = 8;
    k.tiles = 1;
    return k;
}

/** In-process reference report for the quick knobs. */
std::string
inprocReport(const std::string &cache_dir)
{
    EstimatorOptions eo;
    eo.gridStep = 9;
    eo.kSteps = 8;
    eo.tiles = 1;
    eo.cacheDir = cache_dir.empty() ? "none" : cache_dir;
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, eo);
    return fig14Report([&](const std::string &, const Fig14Entry &e,
                           bool training) {
        return training ? est.training(e.net, e.prec)
                        : est.inference(e.net, e.prec);
    });
}

/** Spawns the real save-serve binary and manages its lifetime. */
class DaemonProc
{
  public:
    void
    start(const std::string &socket,
          const std::vector<std::string> &extra_args = {})
    {
        socket_ = socket;
        std::vector<std::string> args;
        args.push_back(SAVE_SERVE_BIN_PATH);
        args.push_back("--socket=" + socket);
        for (const std::string &a : extra_args)
            args.push_back(a);
        pid_ = ::fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            std::vector<char *> argv;
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(SAVE_SERVE_BIN_PATH, argv.data());
            ::_exit(127);
        }
    }

    bool
    waitReady(int timeout_ms = 15000)
    {
        ServeClient client(socket_);
        ServeRequest ping;
        ping.kind = ServeKind::Ping;
        for (int waited = 0; waited < timeout_ms; waited += 50) {
            try {
                client.call(ping, nullptr, 2000);
                return true;
            } catch (const SimError &) {
                ::usleep(50 * 1000);
            }
        }
        return false;
    }

    /** waitpid with a deadline; returns the exit code, or -1 on
     *  timeout / abnormal death. */
    int
    waitExit(int timeout_ms = 60000)
    {
        for (int waited = 0; waited <= timeout_ms; waited += 50) {
            int status = 0;
            pid_t r = ::waitpid(pid_, &status, WNOHANG);
            if (r == pid_) {
                pid_ = -1;
                return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
            }
            ::usleep(50 * 1000);
        }
        return -1;
    }

    void
    signal(int sig)
    {
        if (pid_ > 0)
            ::kill(pid_, sig);
    }

    pid_t pid() const { return pid_; }

    ~DaemonProc()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            int status;
            ::waitpid(pid_, &status, 0);
        }
        if (!socket_.empty())
            ::unlink(socket_.c_str());
    }

  private:
    pid_t pid_ = -1;
    std::string socket_;
};

ServeStatus
getStatus(ServeClient &client)
{
    ServeRequest req;
    req.kind = ServeKind::Status;
    ServeClient::Reply r = client.call(req, nullptr, 5000);
    EXPECT_EQ(r.kind, ServeClient::Reply::Kind::Ok);
    return r.status;
}

/**
 * Counters are updated by the worker after the reply frame is
 * written, so a client that races straight to Status can observe the
 * pre-increment value; poll until `pred` holds (or the deadline
 * passes) and return the last snapshot.
 */
template <typename Pred>
ServeStatus
pollStatus(ServeClient &client, Pred pred, int timeout_ms = 30000)
{
    ServeStatus s = getStatus(client);
    for (int waited = 0; !pred(s) && waited < timeout_ms;
         waited += 50) {
        ::usleep(50 * 1000);
        s = getStatus(client);
    }
    return s;
}

} // namespace

// ---------------------------------------------------------------
// Protocol codec
// ---------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripAllKinds)
{
    ServeRequest g;
    g.kind = ServeKind::Gemm;
    g.priority = ServePriority::High;
    g.deadlineMs = 1234;
    g.gemm.mr = 2;
    g.gemm.nrVecs = 3;
    g.gemm.kSteps = 77;
    g.gemm.bsSparsity = 0.4;
    g.cores = 3;
    g.vpus = 1;
    ServeRequest g2 =
        serveDecodeRequest(kServeVersion, serveEncodeRequest(g));
    EXPECT_EQ(g2.kind, ServeKind::Gemm);
    EXPECT_EQ(g2.priority, ServePriority::High);
    EXPECT_EQ(g2.deadlineMs, 1234u);
    EXPECT_EQ(g2.gemm.mr, 2);
    EXPECT_EQ(g2.gemm.kSteps, 77);
    EXPECT_DOUBLE_EQ(g2.gemm.bsSparsity, 0.4);
    EXPECT_EQ(g2.cores, 3);
    EXPECT_EQ(g2.vpus, 1);

    ServeRequest f;
    f.kind = ServeKind::Fig14;
    f.priority = ServePriority::Low;
    f.fig14.gridStep = 9;
    f.fig14.kSteps = 8;
    f.fig14.seed = 42;
    f.fig14.isolation = fig14IsolationCode("process");
    ServeRequest f2 =
        serveDecodeRequest(kServeVersion, serveEncodeRequest(f));
    EXPECT_EQ(f2.kind, ServeKind::Fig14);
    EXPECT_EQ(f2.fig14.gridStep, 9);
    EXPECT_EQ(f2.fig14.seed, 42u);
    EXPECT_EQ(fig14IsolationName(f2.fig14.isolation), "process");

    for (ServeKind k :
         {ServeKind::Ping, ServeKind::Status, ServeKind::Drain}) {
        ServeRequest c;
        c.kind = k;
        EXPECT_EQ(
            serveDecodeRequest(kServeVersion, serveEncodeRequest(c))
                .kind,
            k);
    }
}

TEST(ServeProtocol, RejectsVersionSkewTruncationAndTrailingBytes)
{
    ServeRequest r;
    r.kind = ServeKind::Gemm;
    std::vector<uint8_t> p = serveEncodeRequest(r);

    EXPECT_THROW(serveDecodeRequest(kServeVersion + 1, p), TraceError);

    std::vector<uint8_t> trunc(p.begin(), p.begin() + p.size() / 2);
    EXPECT_THROW(serveDecodeRequest(kServeVersion, trunc), TraceError);

    std::vector<uint8_t> trail = p;
    trail.push_back(0);
    EXPECT_THROW(serveDecodeRequest(kServeVersion, trail), TraceError);
}

TEST(ServeProtocol, StatusProgressBusyRoundTrip)
{
    ServeStatus s;
    s.accepted = 7;
    s.shed = 3;
    s.reloads = 2;
    ServeStatus s2 = serveDecodeStatus(serveEncodeStatus(s));
    EXPECT_EQ(s2.accepted, 7u);
    EXPECT_EQ(s2.shed, 3u);
    EXPECT_EQ(s2.reloads, 2u);

    ServeProgress pr;
    pr.done = 3;
    pr.total = 16;
    pr.key = "train/VGG16 FP32 dense";
    ServeProgress pr2 = serveDecodeProgress(serveEncodeProgress(pr));
    EXPECT_EQ(pr2.done, 3u);
    EXPECT_EQ(pr2.total, 16u);
    EXPECT_EQ(pr2.key, pr.key);

    ServeBusyInfo b;
    b.reason = "admission queue full (4/4)";
    b.queued = 4;
    b.queueCap = 4;
    ServeBusyInfo b2 = serveDecodeBusy(serveEncodeBusy(b));
    EXPECT_EQ(b2.reason, b.reason);
    EXPECT_EQ(b2.queued, 4u);
}

TEST(ServeProtocol, FrameReadRejectsBitFlipAndTruncation)
{
    ServeRequest r;
    r.kind = ServeKind::Fig14;
    std::vector<uint8_t> payload = serveEncodeRequest(r);
    std::vector<uint8_t> frame =
        frameEncode(kServeRequest, kServeVersion, payload);

    // Flipped payload bit: the CRC catches it.
    {
        std::vector<uint8_t> bad = frame;
        bad[kFrameHeaderBytes + 2] ^= 0x10;
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(writeFull(fds[1], bad.data(), bad.size()),
                  static_cast<ssize_t>(bad.size()));
        ::close(fds[1]);
        Frame f;
        EXPECT_THROW(frameReadFd(fds[0], f, 1000, serveKnownFourcc,
                                 kServeMaxPayload, "serve"),
                     TraceError);
        ::close(fds[0]);
    }

    // Truncated mid-frame: EOF inside the payload is corruption, not
    // a clean EOF.
    {
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(writeFull(fds[1], frame.data(), frame.size() - 3),
                  static_cast<ssize_t>(frame.size() - 3));
        ::close(fds[1]);
        Frame f;
        EXPECT_THROW(frameReadFd(fds[0], f, 1000, serveKnownFourcc,
                                 kServeMaxPayload, "serve"),
                     TraceError);
        ::close(fds[0]);
    }

    // Unknown fourcc is rejected before the payload is read.
    {
        std::vector<uint8_t> bad =
            frameEncode(frameFourcc('J', 'U', 'N', 'K'), 0, payload);
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(writeFull(fds[1], bad.data(), bad.size()),
                  static_cast<ssize_t>(bad.size()));
        ::close(fds[1]);
        Frame f;
        EXPECT_THROW(frameReadFd(fds[0], f, 1000, serveKnownFourcc,
                                 kServeMaxPayload, "serve"),
                     TraceError);
        ::close(fds[0]);
    }
}

// ---------------------------------------------------------------
// Daemon end-to-end
// ---------------------------------------------------------------

TEST(ServeDaemon, PingStatusAndGracefulDrain)
{
    std::string sock = socketPath("basic");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=2", "--cache-dir=none"});
    ASSERT_TRUE(d.waitReady());

    ServeClient client(sock);
    ServeStatus s = getStatus(client);
    EXPECT_EQ(s.version, kServeVersion);
    EXPECT_EQ(s.workers, 1u);
    EXPECT_EQ(s.queueCap, 2u);
    EXPECT_EQ(s.draining, 0u);

    ServeRequest drain;
    drain.kind = ServeKind::Drain;
    ServeClient::Reply r = client.call(drain, nullptr, 5000);
    EXPECT_EQ(r.kind, ServeClient::Reply::Kind::Ok);
    EXPECT_EQ(d.waitExit(), 0);
}

TEST(ServeDaemon, GemmServedAndWarmRepeatHitsCas)
{
    std::string cache = tmpDir("gemmcas");
    std::string sock = socketPath("gemm");
    DaemonProc d;
    d.start(sock,
            {"--workers=2", "--queue-cap=4", "--cache-dir=" + cache});
    ASSERT_TRUE(d.waitReady());

    ServeClient client(sock);
    ServeRequest req;
    req.kind = ServeKind::Gemm;
    req.gemm.kSteps = 24;
    req.gemm.tiles = 1;
    req.gemm.bsSparsity = 0.3;
    req.gemm.seed = 11;

    ServeClient::Reply first = client.call(req, nullptr, 60000);
    ASSERT_EQ(first.kind, ServeClient::Reply::Kind::Ok);
    EXPECT_GT(first.gemm.timeNs, 0.0);
    EXPECT_GT(first.gemm.cycles, 0u);

    // The warm repeat must answer from the content-addressed store
    // (O(1)) and be bit-identical to the simulation it replaces.
    ServeClient::Reply second = client.call(req, nullptr, 60000);
    ASSERT_EQ(second.kind, ServeClient::Reply::Kind::Ok);
    EXPECT_EQ(std::memcmp(&first.gemm.timeNs, &second.gemm.timeNs,
                          sizeof(double)),
              0);
    EXPECT_EQ(first.gemm.cycles, second.gemm.cycles);
    EXPECT_EQ(first.gemm.stats, second.gemm.stats);

    ServeStatus s = pollStatus(
        client, [](const ServeStatus &st) { return st.completed >= 2; });
    EXPECT_GE(s.casHits, 1u);
    EXPECT_GE(s.casInserts, 1u);
    EXPECT_EQ(s.completed, 2u);
}

TEST(ServeDaemon, ConcurrentClients)
{
    std::string sock = socketPath("conc");
    DaemonProc d;
    d.start(sock, {"--workers=2", "--queue-cap=16", "--cache-dir=none"});
    ASSERT_TRUE(d.waitReady());

    constexpr int kClients = 4;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            ServeClient client(sock);
            ServeRequest req;
            req.kind = ServeKind::Gemm;
            req.gemm.kSteps = 16;
            req.gemm.tiles = 1;
            req.gemm.seed = static_cast<uint64_t>(100 + i);
            ServeClient::Reply r = client.call(req, nullptr, 120000);
            if (r.kind == ServeClient::Reply::Kind::Ok &&
                r.gemm.timeNs > 0)
                ok.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(ok.load(), kClients);
}

TEST(ServeDaemon, QueueFullShedsWithTypedBusy)
{
    std::string sock = socketPath("shed");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=1", "--cache-dir=none"});
    ASSERT_TRUE(d.waitReady());

    // Occupy the single worker with a multi-second sweep.
    std::thread blocker([&] {
        ServeClient client(sock);
        ServeRequest req;
        req.kind = ServeKind::Fig14;
        req.fig14 = quickKnobs();
        req.fig14.gridStep = 3;
        req.fig14.kSteps = 64;
        req.fig14.tiles = 4;
        client.call(req, nullptr, 300000);
    });

    ServeClient client(sock);
    ASSERT_GE(pollStatus(client,
                         [](const ServeStatus &s) {
                             return s.active >= 1;
                         })
                  .active,
              1u);

    ServeRequest req;
    req.kind = ServeKind::Gemm;
    req.gemm.kSteps = 16;
    req.gemm.tiles = 1;

    // Fill the single queue slot, and wait until the daemon reports
    // it occupied...
    std::thread queued([&] {
        ServeClient c2(sock);
        ServeRequest q = req;
        q.gemm.seed = 200;
        c2.call(q, nullptr, 300000);
    });
    ASSERT_GE(pollStatus(client,
                         [](const ServeStatus &s) {
                             return s.queued >= 1;
                         })
                  .queued,
              1u);

    // ...so further submissions must be shed with a typed BUSY
    // reply, never a hang.
    int busy = 0;
    for (int i = 0; i < 20 && busy == 0; ++i) {
        ServeRequest q = req;
        q.gemm.seed = static_cast<uint64_t>(300 + i);
        ServeClient::Reply r = client.call(q, nullptr, 300000);
        if (r.kind == ServeClient::Reply::Kind::Busy) {
            ++busy;
            EXPECT_NE(r.busy.reason.find("queue full"),
                      std::string::npos);
            EXPECT_GE(r.busy.queueCap, 1u);
        }
    }
    blocker.join();
    queued.join();
    EXPECT_GE(busy, 1);
    EXPECT_GE(getStatus(client).shed, 1u);
}

TEST(ServeDaemon, MidSweepClientDisconnectKeepsServing)
{
    std::string sock = socketPath("disc");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=4", "--cache-dir=none"});
    ASSERT_TRUE(d.waitReady());

    // Raw client: submit a sweep, then vanish without reading.
    {
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, sock.c_str(),
                     sizeof(addr.sun_path) - 1);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(::connect(fd,
                            reinterpret_cast<struct sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        ServeRequest req;
        req.kind = ServeKind::Fig14;
        req.fig14 = quickKnobs();
        ASSERT_TRUE(frameWriteFd(fd, kServeRequest, kServeVersion,
                                 serveEncodeRequest(req)));
        ::close(fd);
    }

    // The daemon must notice (pre-execution probe or the first
    // progress write) and move on to the next client.
    ServeClient client(sock);
    for (int waited = 0; waited < 120000; waited += 100) {
        if (getStatus(client).errors >= 1)
            break;
        ::usleep(100 * 1000);
    }
    EXPECT_GE(getStatus(client).errors, 1u);

    ServeRequest gemm;
    gemm.kind = ServeKind::Gemm;
    gemm.gemm.kSteps = 16;
    gemm.gemm.tiles = 1;
    ServeClient::Reply r = client.call(gemm, nullptr, 120000);
    EXPECT_EQ(r.kind, ServeClient::Reply::Kind::Ok);
}

TEST(ServeDaemon, DrainWaitsForInflightWork)
{
    std::string sock = socketPath("drain");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=4", "--cache-dir=none"});
    ASSERT_TRUE(d.waitReady());

    std::atomic<bool> sweep_ok{false};
    std::thread inflight([&] {
        ServeClient client(sock);
        ServeRequest req;
        req.kind = ServeKind::Fig14;
        req.fig14 = quickKnobs();
        req.fig14.kSteps = 64; // slow enough to still be in flight
        req.fig14.tiles = 2;
        ServeClient::Reply r = client.call(req, nullptr, 300000);
        if (r.kind == ServeClient::Reply::Kind::Ok &&
            !r.text.empty())
            sweep_ok.store(true);
    });

    ServeClient client(sock);
    ASSERT_GE(pollStatus(client,
                         [](const ServeStatus &s) {
                             return s.active >= 1;
                         })
                  .active,
              1u);

    ServeRequest drain;
    drain.kind = ServeKind::Drain;
    EXPECT_EQ(client.call(drain, nullptr, 5000).kind,
              ServeClient::Reply::Kind::Ok);

    // Drain must let the in-flight sweep finish, then exit 0.
    EXPECT_EQ(d.waitExit(300000), 0);
    inflight.join();
    EXPECT_TRUE(sweep_ok.load());
}

TEST(ServeDaemon, SighupReloadsConfig)
{
    std::string dir = tmpDir("cfg");
    std::string cfg = dir + "/serve.conf";
    {
        FILE *f = std::fopen(cfg.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("# serve config\nqueue_cap=5\n", f);
        std::fclose(f);
    }
    std::string sock = socketPath("hup");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=2", "--cache-dir=none",
                   "--config=" + cfg});
    ASSERT_TRUE(d.waitReady());

    ServeClient client(sock);
    EXPECT_EQ(getStatus(client).queueCap, 2u);
    d.signal(SIGHUP);
    for (int waited = 0; waited < 30000; waited += 50) {
        if (getStatus(client).reloads >= 1)
            break;
        ::usleep(50 * 1000);
    }
    ServeStatus s = getStatus(client);
    EXPECT_GE(s.reloads, 1u);
    EXPECT_EQ(s.queueCap, 5u);
}

TEST(ServeDaemon, StaleSocketIsReclaimed)
{
    std::string sock = socketPath("stale");
    DaemonProc d1;
    d1.start(sock, {"--workers=1", "--cache-dir=none"});
    ASSERT_TRUE(d1.waitReady());
    d1.signal(SIGKILL);
    d1.waitExit(30000); // reap; SIGKILL leaves the socket file behind

    struct stat st;
    ASSERT_EQ(::stat(sock.c_str(), &st), 0)
        << "SIGKILL should leave the socket file";

    DaemonProc d2;
    d2.start(sock, {"--workers=1", "--cache-dir=none"});
    EXPECT_TRUE(d2.waitReady())
        << "second daemon should reclaim the stale socket";
}

// ---------------------------------------------------------------
// Acceptance: served == in-process, byte for byte
// ---------------------------------------------------------------

TEST(ServeFig14, ServedReportIsByteIdenticalAndWarmFromCas)
{
    std::string cache = tmpDir("fig14cas");
    std::string sock = socketPath("fig14");
    DaemonProc d;
    d.start(sock,
            {"--workers=1", "--queue-cap=4", "--cache-dir=" + cache});
    ASSERT_TRUE(d.waitReady());

    // Served first (cold: populates the shared store).
    ServeClient client(sock);
    ServeRequest req;
    req.kind = ServeKind::Fig14;
    req.fig14 = quickKnobs();
    int progress_frames = 0;
    ServeClient::Reply served = client.call(
        req,
        [&](const ServeProgress &p) {
            ++progress_frames;
            EXPECT_EQ(p.total, 16u);
        },
        300000);
    ASSERT_EQ(served.kind, ServeClient::Reply::Kind::Ok);
    EXPECT_EQ(progress_frames, 16);

    // In-process reference over the SAME store: warm, and the bytes
    // must match exactly.
    std::string ref = inprocReport(cache);
    EXPECT_EQ(served.text, ref);

    // save-ctl must print the identical bytes to stdout.
    std::string cmd = std::string(SAVE_CTL_BIN_PATH) +
                      " fig14 --socket=" + sock +
                      " --grid=9 --ksteps=8 --tiles=1 2>/dev/null";
    FILE *p = ::popen(cmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    std::string ctl_out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), p)) > 0)
        ctl_out.append(buf, n);
    EXPECT_EQ(::pclose(p), 0);
    EXPECT_EQ(ctl_out, ref);

    // The cold sweep populated the shared store.
    ServeStatus s = getStatus(client);
    EXPECT_GE(s.casInserts, 1u);

    // A FRESH daemon on the same cache dir has a cold in-memory
    // estimator but a warm store: the repeat sweep must be answered
    // from the CAS (hits, not re-simulation) and still byte-match.
    ServeRequest drain;
    drain.kind = ServeKind::Drain;
    EXPECT_EQ(client.call(drain, nullptr, 5000).kind,
              ServeClient::Reply::Kind::Ok);
    EXPECT_EQ(d.waitExit(60000), 0);

    std::string sock2 = socketPath("fig14b");
    DaemonProc d2;
    d2.start(sock2,
             {"--workers=1", "--queue-cap=4", "--cache-dir=" + cache});
    ASSERT_TRUE(d2.waitReady());
    ServeClient client2(sock2);
    ServeClient::Reply warm = client2.call(req, nullptr, 300000);
    ASSERT_EQ(warm.kind, ServeClient::Reply::Kind::Ok);
    EXPECT_EQ(warm.text, ref);
    ServeStatus s2 = getStatus(client2);
    EXPECT_GE(s2.casHits, 1u);
}

TEST(ServeFig14, ByteIdenticalAcrossIsolationNoneAndProcess)
{
    std::string ref = inprocReport("");

    std::string sock = socketPath("iso");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=4", "--cache-dir=none",
                   "--worker-bin=" SAVE_WORKER_BIN_PATH});
    ASSERT_TRUE(d.waitReady());

    ServeClient client(sock);
    for (const char *iso : {"none", "process"}) {
        ServeRequest req;
        req.kind = ServeKind::Fig14;
        req.fig14 = quickKnobs();
        req.fig14.isolation = fig14IsolationCode(iso);
        ServeClient::Reply r = client.call(req, nullptr, 600000);
        ASSERT_EQ(r.kind, ServeClient::Reply::Kind::Ok)
            << "isolation=" << iso << ": " << r.error.what;
        EXPECT_EQ(r.text, ref) << "isolation=" << iso;
    }
}

TEST(ServeDaemon, DeadlineExceededReturnsTypedError)
{
    std::string sock = socketPath("deadline");
    DaemonProc d;
    d.start(sock, {"--workers=1", "--queue-cap=4", "--cache-dir=none"});
    ASSERT_TRUE(d.waitReady());

    ServeClient client(sock);
    ServeRequest req;
    req.kind = ServeKind::Fig14;
    req.fig14 = quickKnobs();
    req.deadlineMs = 1; // expires before the sweep can finish
    ServeClient::Reply r = client.call(req, nullptr, 300000);
    EXPECT_EQ(r.kind, ServeClient::Reply::Kind::Error);
    EXPECT_NE(r.error.what.find("deadline"), std::string::npos);

    // The daemon survives and keeps serving.
    ServeRequest ping;
    ping.kind = ServeKind::Ping;
    EXPECT_EQ(client.call(ping, nullptr, 5000).kind,
              ServeClient::Reply::Kind::Ok);
}
