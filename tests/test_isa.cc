/**
 * @file
 * Unit tests for the ISA layer: BF16 arithmetic, the 512-bit register
 * value with its dual FP32/BF16 views, and micro-op construction.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "isa/bf16.h"
#include "isa/uop.h"
#include "isa/vec.h"

namespace save {
namespace {

TEST(Bf16, ExactValuesRoundTrip)
{
    // Values with <= 8 significant mantissa bits survive exactly.
    for (float f : {0.0f, 1.0f, -2.0f, 0.5f, 1.5f, 96.0f, -0.15625f}) {
        EXPECT_EQ(bf16ToF32(f32ToBf16(f)), f) << f;
    }
}

TEST(Bf16, RoundToNearestEven)
{
    // 1.0 + 2^-8 is exactly between bf16(1.0) and the next value;
    // RNE picks the even mantissa (1.0).
    float halfway = std::bit_cast<float>(0x3f808000u);
    EXPECT_EQ(f32ToBf16(halfway), f32ToBf16(1.0f));
    // Just above the halfway point must round up.
    float above = std::bit_cast<float>(0x3f808001u);
    EXPECT_EQ(bf16ToF32(f32ToBf16(above)),
              std::bit_cast<float>(0x3f810000u));
}

TEST(Bf16, ZeroDetection)
{
    EXPECT_TRUE(bf16IsZero(f32ToBf16(0.0f)));
    EXPECT_TRUE(bf16IsZero(f32ToBf16(-0.0f)));
    EXPECT_FALSE(bf16IsZero(f32ToBf16(1.0f)));
    // Denormal-ish tiny value is not a zero bit pattern.
    EXPECT_FALSE(bf16IsZero(Bf16{1}));
}

TEST(Bf16, NanPreserved)
{
    Bf16 nan = f32ToBf16(std::nanf(""));
    EXPECT_TRUE(std::isnan(bf16ToF32(nan)));
}

TEST(Bf16, MacMatchesWidenedArithmetic)
{
    Bf16 a = f32ToBf16(1.5f), b = f32ToBf16(-2.0f);
    EXPECT_EQ(bf16Mac(10.0f, a, b), 10.0f + 1.5f * -2.0f);
}

TEST(VecReg, F32Lanes)
{
    VecReg v;
    for (int i = 0; i < kVecLanes; ++i)
        v.setF32(i, static_cast<float>(i) + 0.5f);
    for (int i = 0; i < kVecLanes; ++i)
        EXPECT_EQ(v.f32(i), static_cast<float>(i) + 0.5f);
}

TEST(VecReg, Bf16LanesMapToWordHalves)
{
    VecReg v;
    v.setBf16(0, 0x1111);
    v.setBf16(1, 0x2222);
    EXPECT_EQ(v.word(0), 0x22221111u);
    EXPECT_EQ(v.bf16(0), 0x1111);
    EXPECT_EQ(v.bf16(1), 0x2222);
    // Writing one half must not clobber the other.
    v.setBf16(0, 0x3333);
    EXPECT_EQ(v.bf16(1), 0x2222);
}

TEST(VecReg, BroadcastF32)
{
    VecReg v = VecReg::broadcastF32(3.25f);
    for (int i = 0; i < kVecLanes; ++i)
        EXPECT_EQ(v.f32(i), 3.25f);
}

TEST(VecReg, BroadcastWordCoversBothViews)
{
    Bf16 lo = f32ToBf16(1.0f), hi = f32ToBf16(2.0f);
    uint32_t w = static_cast<uint32_t>(hi) << 16 | lo;
    VecReg v = VecReg::broadcastWord(w);
    for (int i = 0; i < kVecLanes; ++i) {
        EXPECT_EQ(v.bf16(2 * i), lo);
        EXPECT_EQ(v.bf16(2 * i + 1), hi);
    }
    EXPECT_EQ(v, VecReg::broadcastBf16Pair(lo, hi));
}

TEST(VecReg, Equality)
{
    VecReg a = VecReg::broadcastF32(1.0f);
    VecReg b = VecReg::broadcastF32(1.0f);
    EXPECT_TRUE(a == b);
    b.setF32(7, 2.0f);
    EXPECT_FALSE(a == b);
}

TEST(Uop, VfmaShape)
{
    Uop u = Uop::vfma(5, 30, 12);
    EXPECT_TRUE(u.isVfma());
    EXPECT_FALSE(u.isMixedPrecision());
    EXPECT_FALSE(u.isLoad());
    EXPECT_EQ(u.dst, 5);
    EXPECT_EQ(u.srcC, 5); // accumulator reads its own destination
    EXPECT_EQ(u.srcA, 30);
    EXPECT_EQ(u.srcB, 12);
    EXPECT_EQ(u.wmask, -1);
}

TEST(Uop, EmbeddedBroadcastIsLoad)
{
    Uop u = Uop::vfmaBcast(3, 0x1000, 9);
    EXPECT_TRUE(u.isVfma());
    EXPECT_TRUE(u.isLoad());
    EXPECT_TRUE(u.hasEmbeddedBroadcast());
    EXPECT_EQ(u.srcA, -1);
    EXPECT_EQ(u.addr, 0x1000u);
}

TEST(Uop, MixedPrecisionForms)
{
    EXPECT_TRUE(Uop::vdp(0, 1, 2).isMixedPrecision());
    EXPECT_TRUE(Uop::vdpBcast(0, 0x40, 2).isMixedPrecision());
    EXPECT_TRUE(Uop::vdpBcast(0, 0x40, 2).hasEmbeddedBroadcast());
}

TEST(Uop, LoadsAndStores)
{
    EXPECT_TRUE(Uop::broadcastLoad(1, 0x40).isLoad());
    EXPECT_TRUE(Uop::loadVec(1, 0x40).isLoad());
    EXPECT_FALSE(Uop::storeVec(1, 0x40).isLoad());
    EXPECT_EQ(Uop::storeVec(7, 0x80).srcC, 7);
}

TEST(Uop, SetMaskCarriesImmediate)
{
    Uop u = Uop::setMask(2, 0xbeef);
    EXPECT_EQ(u.op, Opcode::SetMask);
    EXPECT_EQ(u.wmask, 2);
    EXPECT_EQ(u.maskImm, 0xbeef);
}

TEST(Uop, ToStringNames)
{
    EXPECT_NE(Uop::vfma(1, 2, 3).toString().find("vfmaps"),
              std::string::npos);
    EXPECT_NE(Uop::vdp(1, 2, 3).toString().find("vdpbf16ps"),
              std::string::npos);
    EXPECT_NE(Uop::vfma(1, 2, 3, 4).toString().find("{k4}"),
              std::string::npos);
}

} // namespace
} // namespace save
