/**
 * @file
 * Tests for the parallel simulation layer: the work-stealing thread
 * pool, the estimator's concurrent slice fan-out (results must be
 * bit-identical to the serial path for every thread count), and the
 * persistent surface cache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <unistd.h>

#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "dnn/surface_cache.h"
#include "util/thread_pool.h"

namespace save {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](int64_t i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1);
}

TEST(ThreadPool, UsesMultipleThreads)
{
    ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> ids;
    // Enough chunky tasks that helpers wake up and participate.
    pool.parallelFor(64, [&](int64_t) {
        volatile uint64_t x = 0;
        for (int k = 0; k < 2'000'000; ++k)
            x = x + static_cast<uint64_t>(k);
        std::lock_guard<std::mutex> lk(mu);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](int64_t) {
        pool.parallelFor(8, [&](int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](int64_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneSizedLoops)
{
    ThreadPool pool(2);
    int runs = 0;
    pool.parallelFor(0, [&](int64_t) { ++runs; });
    EXPECT_EQ(runs, 0);
    pool.parallelFor(1, [&](int64_t) { ++runs; });
    EXPECT_EQ(runs, 1);
}

// ----------------------------------------------- estimator determinism

EstimatorOptions
fastOptions(int threads)
{
    EstimatorOptions o;
    o.kSteps = 24;
    o.tiles = 1;
    o.gridStep = 9; // only 0% and 90% bins: fast
    o.threads = threads;
    o.cacheDir = "none"; // never mix persistent state into this test
    return o;
}

/** Byte-wise equality: "bit-identical" in the strictest sense. */
bool
bytesEqual(const NetResult &a, const NetResult &b)
{
    return std::memcmp(&a, &b, sizeof(NetResult)) == 0;
}

TEST(ParallelEstimator, BitIdenticalAcrossThreadCounts)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(4);
    net.schedule = PruningSchedule::none(3);

    TrainingEstimator serial(MachineConfig{}, SaveConfig{},
                             fastOptions(1));
    EXPECT_EQ(serial.threads(), 1);
    NetResult want_inf = serial.inference(net, Precision::Fp32);
    NetResult want_train = serial.training(net, Precision::Bf16);

    for (int threads : {2, 8}) {
        TrainingEstimator par(MachineConfig{}, SaveConfig{},
                              fastOptions(threads));
        EXPECT_EQ(par.threads(), threads);
        NetResult inf = par.inference(net, Precision::Fp32);
        NetResult train = par.training(net, Precision::Bf16);
        EXPECT_TRUE(bytesEqual(want_inf, inf))
            << "inference differs with " << threads << " threads";
        EXPECT_TRUE(bytesEqual(want_train, train))
            << "training differs with " << threads << " threads";
    }
}

TEST(ParallelEstimator, FanOutMatchesSerialSimulationCount)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(3);

    TrainingEstimator serial(MachineConfig{}, SaveConfig{},
                             fastOptions(1));
    TrainingEstimator par(MachineConfig{}, SaveConfig{},
                          fastOptions(4));
    serial.inference(net, Precision::Fp32);
    par.inference(net, Precision::Fp32);
    // Single-flight dedup: the concurrent fan-out must not simulate
    // any surface point twice.
    EXPECT_EQ(par.simulations(), serial.simulations());
}

TEST(ParallelEstimator, PrefetchCoversEvaluation)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(3);

    TrainingEstimator est(MachineConfig{}, SaveConfig{},
                          fastOptions(2));
    est.prefetch(net, Precision::Fp32, true);
    uint64_t after_prefetch = est.simulations();
    EXPECT_GT(after_prefetch, 0u);
    est.inference(net, Precision::Fp32);
    // The evaluation itself must be fully served from cache.
    EXPECT_EQ(est.simulations(), after_prefetch);
}

// -------------------------------------------------------- surface cache

class SurfaceCacheTest : public ::testing::Test
{
  protected:
    SurfaceCacheTest()
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("save-cache-test-" +
                std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }

    ~SurfaceCacheTest() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
};

TEST_F(SurfaceCacheTest, SaveLoadRoundTrip)
{
    SurfaceCache cache(dir_.string(), 0x1234abcd);
    std::vector<SurfaceRecord> in;
    for (int i = 0; i < 5; ++i) {
        SurfaceRecord r;
        r.mr = 7 + i;
        r.nr = 3;
        r.kSteps = 192;
        r.pattern = static_cast<uint8_t>(i % 2);
        r.precision = static_cast<uint8_t>(i % 2);
        r.saveOn = 1;
        r.vpus = 2;
        r.wBin = static_cast<uint8_t>(i);
        r.aBin = static_cast<uint8_t>(9 - i);
        r.timeNs = 1000.5 * (i + 1);
        in.push_back(r);
    }
    ASSERT_TRUE(cache.save(in));

    std::vector<SurfaceRecord> out;
    std::string why;
    ASSERT_TRUE(cache.load(out, &why)) << why;
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].mr, in[i].mr);
        EXPECT_EQ(out[i].wBin, in[i].wBin);
        EXPECT_EQ(out[i].aBin, in[i].aBin);
        EXPECT_EQ(out[i].timeNs, in[i].timeNs); // exact, not approx
    }
}

TEST_F(SurfaceCacheTest, RejectsConfigHashMismatch)
{
    SurfaceCache writer(dir_.string(), 1);
    ASSERT_TRUE(writer.save({SurfaceRecord{}}));

    // Same directory, same file *name* only if the hash matched — a
    // different hash reads a different file and finds nothing...
    SurfaceCache other(dir_.string(), 2);
    std::vector<SurfaceRecord> out;
    std::string why;
    EXPECT_FALSE(other.load(out, &why));
    EXPECT_TRUE(out.empty());

    // ...and even a forged file under the expected name is rejected
    // when the stored hash disagrees.
    std::filesystem::copy_file(writer.path(), other.path());
    EXPECT_FALSE(other.load(out, &why));
    EXPECT_NE(why.find("config-hash mismatch"), std::string::npos)
        << why;
    EXPECT_TRUE(out.empty());
}

TEST_F(SurfaceCacheTest, RejectsVersionSkewAndGarbage)
{
    SurfaceCache cache(dir_.string(), 7);
    ASSERT_TRUE(cache.save({SurfaceRecord{}}));

    // Corrupt the version field (offset 8, after the u64 magic).
    {
        std::fstream f(cache.path(),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(8);
        uint32_t bad_version = SurfaceCache::kVersion + 1;
        f.write(reinterpret_cast<const char *>(&bad_version),
                sizeof(bad_version));
    }
    std::vector<SurfaceRecord> out;
    std::string why;
    EXPECT_FALSE(cache.load(out, &why));
    EXPECT_NE(why.find("version"), std::string::npos) << why;

    // Garbage magic.
    {
        std::ofstream f(cache.path(),
                        std::ios::binary | std::ios::trunc);
        f << "this is not a surface cache";
    }
    EXPECT_FALSE(cache.load(out, &why));
    EXPECT_TRUE(out.empty());
}

TEST_F(SurfaceCacheTest, TruncatedRecordsRejected)
{
    SurfaceCache cache(dir_.string(), 7);
    std::vector<SurfaceRecord> in(3);
    ASSERT_TRUE(cache.save(in));
    auto size = std::filesystem::file_size(cache.path());
    std::filesystem::resize_file(cache.path(), size - 4);

    std::vector<SurfaceRecord> out;
    std::string why;
    EXPECT_FALSE(cache.load(out, &why));
    EXPECT_NE(why.find("truncated"), std::string::npos) << why;
    EXPECT_TRUE(out.empty());
}

TEST_F(SurfaceCacheTest, DisabledCacheIsInert)
{
    SurfaceCache cache("", 7);
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.save({SurfaceRecord{}}));
    std::vector<SurfaceRecord> out;
    EXPECT_FALSE(cache.load(out));
}

TEST_F(SurfaceCacheTest, HashSensitivity)
{
    MachineConfig m;
    SaveConfig s;
    uint64_t base = SurfaceCache::hashConfig(m, s, 0);
    EXPECT_EQ(base, SurfaceCache::hashConfig(m, s, 0)); // stable

    MachineConfig m2 = m;
    m2.dramGBps += 1.0;
    EXPECT_NE(base, SurfaceCache::hashConfig(m2, s, 0));

    SaveConfig s2 = s;
    s2.policy = SchedPolicy::VC;
    EXPECT_NE(base, SurfaceCache::hashConfig(m, s2, 0));

    EXPECT_NE(base, SurfaceCache::hashConfig(m, s, 1));
}

TEST_F(SurfaceCacheTest, EstimatorPersistsAndReloadsSurfaces)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(2);

    EstimatorOptions o;
    o.kSteps = 24;
    o.tiles = 1;
    o.gridStep = 9;
    o.threads = 2;
    o.cacheDir = dir_.string();

    NetResult cold, warm;
    uint64_t cold_sims;
    {
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        EXPECT_EQ(est.persistentHits(), 0u);
        cold = est.inference(net, Precision::Fp32);
        cold_sims = est.simulations();
        EXPECT_GT(cold_sims, 0u);
        // Every simulated point was persisted as it completed.
        ASSERT_NE(est.resultStore(), nullptr);
        EXPECT_EQ(est.resultStore()->inserts(), cold_sims);
    }

    {
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        warm = est.inference(net, Precision::Fp32);
        // Warm run: every point served from the store (lookups are
        // lazy, so hits accrue during evaluation), zero new
        // simulations, bit-identical result.
        EXPECT_EQ(est.persistentHits(), cold_sims);
        EXPECT_EQ(est.simulations(), 0u);
        EXPECT_EQ(std::memcmp(&cold, &warm, sizeof cold), 0);
    }

    // A different machine config must miss the store for every point.
    MachineConfig other;
    other.dramGBps *= 2;
    TrainingEstimator est(other, SaveConfig{}, o);
    est.inference(net, Precision::Fp32);
    EXPECT_EQ(est.persistentHits(), 0u);
    EXPECT_GT(est.simulations(), 0u);
}

} // namespace
} // namespace save
