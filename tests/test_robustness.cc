/**
 * @file
 * Hardened-harness coverage: error taxonomy and validate() rejection
 * messages, the retirement watchdog (via forced fault injection), the
 * estimator's retry/fault-isolation policy, cache corruption recovery
 * and quarantine, and sweep-journal checkpoint/resume.
 *
 * Every fault here is injected deterministically (FaultInjector), so
 * the recovery paths run on every CI invocation, not just when
 * something happens to break.
 */

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include "../bench/bench_util.h"
#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "dnn/surface_cache.h"
#include "engine/engine.h"
#include "kernels/gemm.h"
#include "kernels/lstm.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/frame.h"
#include "util/journal.h"
#include "util/posix_io.h"

namespace save {
namespace {

/** Fast estimator knobs shared by the fault-injection tests. */
EstimatorOptions
fastOptions(int threads = 2)
{
    EstimatorOptions o;
    o.kSteps = 24;
    o.tiles = 1;
    o.gridStep = 9;
    o.threads = threads;
    o.cacheDir = "none";
    return o;
}

NetworkModel
tinyNet()
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(3);
    return net;
}

bool
bytesEqual(const NetResult &a, const NetResult &b)
{
    return std::memcmp(&a, &b, sizeof(NetResult)) == 0;
}

/** Resets the global injector around every test and provides a scratch
 *  directory for cache/journal artifacts. */
class RobustnessTest : public ::testing::Test
{
  protected:
    RobustnessTest()
    {
        FaultInjector::global().reset();
        dir_ = std::filesystem::temp_directory_path() /
               ("save-robust-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    ~RobustnessTest() override
    {
        FaultInjector::global().reset();
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
};

// ------------------------------------------------------ error taxonomy

TEST_F(RobustnessTest, ContextFormatsOnlySetFields)
{
    SimError::Context ctx;
    EXPECT_EQ(ctx.toString(), "");
    ctx.coreId = 3;
    ctx.cycle = 1024;
    std::string s = ctx.toString();
    EXPECT_NE(s.find("core 3"), std::string::npos) << s;
    EXPECT_NE(s.find("cycle 1024"), std::string::npos) << s;
    EXPECT_EQ(s.find("uop"), std::string::npos) << s;
}

TEST_F(RobustnessTest, MachineConfigValidateNamesTheField)
{
    MachineConfig m;
    m.cores = 0;
    try {
        m.validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("cores"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("got 0"),
                  std::string::npos)
            << e.what();
    }

    MachineConfig bad_freq;
    bad_freq.freq2VpuGhz = -1.0;
    EXPECT_THROW(bad_freq.validate(), ConfigError);
    EXPECT_NO_THROW(MachineConfig{}.validate());
}

TEST_F(RobustnessTest, SaveConfigValidateRejectsBadRotationStates)
{
    SaveConfig s;
    s.rotationStates = 0;
    EXPECT_THROW(s.validate(), ConfigError);
    EXPECT_NO_THROW(SaveConfig{}.validate());
    EXPECT_NO_THROW(SaveConfig::baseline().validate());
}

TEST_F(RobustnessTest, GemmConfigValidateRejectsBadShapes)
{
    GemmConfig g;
    g.mr = 0;
    EXPECT_THROW(g.validate(), ConfigError);

    GemmConfig frac;
    frac.bsSparsity = 1.5;
    EXPECT_THROW(frac.validate(), ConfigError);

    GemmConfig big;
    big.mr = 32;
    big.nrVecs = 1;
    big.pattern = BroadcastPattern::Embedded;
    EXPECT_THROW(big.validate(), ConfigError);
    EXPECT_NO_THROW(GemmConfig{}.validate());
}

TEST_F(RobustnessTest, LstmCellValidateNamesTheCell)
{
    LstmCell c;
    c.name = "enc0";
    c.batch = 0;
    try {
        c.validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("enc0"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(RobustnessTest, EstimatorOptionsValidateRejectsBadKnobs)
{
    EstimatorOptions o;
    o.threads = -1;
    EXPECT_THROW(o.validate(), ConfigError);
    o = EstimatorOptions{};
    o.maxRetries = -1;
    EXPECT_THROW(o.validate(), ConfigError);
    EXPECT_NO_THROW(EstimatorOptions{}.validate());
}

TEST_F(RobustnessTest, EngineRejectsOutOfRangeResources)
{
    Engine eng(MachineConfig{}, SaveConfig{});
    GemmConfig g;
    g.kSteps = 8;
    g.tiles = 1;
    EXPECT_THROW(eng.runGemm(g, 99, 2), ConfigError);
    EXPECT_THROW(eng.runGemm(g, 1, 0), ConfigError);
}

// ------------------------------------------------------------ watchdog

TEST_F(RobustnessTest, ForcedWatchdogNamesCoreAndDumpsPipeline)
{
    FaultPlan plan;
    plan.watchdogCore = 0;
    plan.watchdogAfterCycles = 50;
    FaultInjector::global().configure(plan);

    Engine eng(MachineConfig{}, SaveConfig{});
    GemmConfig g;
    g.kSteps = 64;
    g.tiles = 2;
    try {
        eng.runGemm(g, 1, 2);
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_EQ(e.context().coreId, 0);
        EXPECT_GE(e.context().cycle, 50);
        std::string what = e.what();
        EXPECT_NE(what.find("core 0"), std::string::npos) << what;
        EXPECT_NE(e.snapshot().find("rob:"), std::string::npos)
            << e.snapshot();
        EXPECT_NE(e.snapshot().find("vpu0:"), std::string::npos)
            << e.snapshot();
    }

    // Injection off: the same kernel completes.
    FaultInjector::global().reset();
    EXPECT_NO_THROW(eng.runGemm(g, 1, 2));
}

// ----------------------------------------- retry and fault isolation

TEST_F(RobustnessTest, InjectedSliceFaultsRetryToBitIdenticalResult)
{
    NetworkModel net = tinyNet();

    EstimatorOptions opt = fastOptions();
    TrainingEstimator clean(MachineConfig{}, SaveConfig{}, opt);
    NetResult want = clean.inference(net, Precision::Fp32);

    // Every slice throws once; one retry recovers each.
    FaultPlan plan;
    plan.sliceProb = 1.0;
    plan.sliceTimes = 1;
    plan.seed = 42;
    FaultInjector::global().configure(plan);
    setQuietLogging(true);
    TrainingEstimator faulty(MachineConfig{}, SaveConfig{}, opt);
    NetResult got = faulty.inference(net, Precision::Fp32);
    setQuietLogging(false);

    EXPECT_TRUE(bytesEqual(want, got));
    EXPECT_EQ(faulty.simulations(), clean.simulations());
    EXPECT_TRUE(faulty.failures().empty());
    EXPECT_EQ(faulty.failureReport(), "");
}

TEST_F(RobustnessTest, ExhaustedRetriesYieldNanAndFailureReport)
{
    NetworkModel net = tinyNet();

    FaultPlan plan;
    plan.sliceProb = 1.0;
    plan.sliceTimes = 1000; // never recovers
    FaultInjector::global().configure(plan);

    EstimatorOptions opt = fastOptions();
    opt.maxRetries = 1;
    setQuietLogging(true);
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, opt);
    NetResult r = est.inference(net, Precision::Fp32);
    setQuietLogging(false);

    EXPECT_TRUE(std::isnan(r.baseline2.total()));
    // failures() returns a snapshot copy; keep it alive while we poke
    // at the front element.
    std::vector<SliceFailure> fails = est.failures();
    ASSERT_FALSE(fails.empty());
    const SliceFailure &f = fails.front();
    EXPECT_EQ(f.attempts, 2);
    EXPECT_NE(f.reason.find("injected slice fault"), std::string::npos)
        << f.reason;
    EXPECT_NE(est.failureReport().find("failed permanently"),
              std::string::npos);
    EXPECT_EQ(est.simulations(), 0u);
}

TEST_F(RobustnessTest, FailFastRethrowsTheSliceFault)
{
    FaultPlan plan;
    plan.sliceProb = 1.0;
    plan.sliceTimes = 1000;
    FaultInjector::global().configure(plan);

    EstimatorOptions opt = fastOptions(1);
    opt.maxRetries = 0;
    opt.failFast = true;
    setQuietLogging(true);
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, opt);
    EXPECT_THROW(est.inference(tinyNet(), Precision::Fp32), TraceError);
    setQuietLogging(false);
}

TEST_F(RobustnessTest, FaultSelectionIsDeterministic)
{
    FaultPlan plan;
    plan.sliceProb = 0.5;
    plan.seed = 7;
    plan.sliceTimes = 1;

    auto selected = [&](uint64_t key) {
        FaultInjector::global().configure(plan);
        bool threw = false;
        try {
            FaultInjector::global().maybeFailSlice(key);
        } catch (const TraceError &) {
            threw = true;
        }
        return threw;
    };
    int hits = 0;
    for (uint64_t k = 0; k < 64; ++k) {
        bool first = selected(k);
        EXPECT_EQ(first, selected(k)) << "key " << k;
        hits += first ? 1 : 0;
    }
    // ~50% of keys selected; generous determinism-friendly bounds.
    EXPECT_GT(hits, 16);
    EXPECT_LT(hits, 48);
}

TEST_F(RobustnessTest, ParsePlanAcceptsSpecAndRejectsGarbage)
{
    FaultPlan p = FaultInjector::parsePlan(
        "slice=0.25,times=3,seed=9,watchdog-core=1,watchdog-after=77");
    EXPECT_DOUBLE_EQ(p.sliceProb, 0.25);
    EXPECT_EQ(p.sliceTimes, 3);
    EXPECT_EQ(p.seed, 9u);
    EXPECT_EQ(p.watchdogCore, 1);
    EXPECT_EQ(p.watchdogAfterCycles, 77u);

    EXPECT_THROW(FaultInjector::parsePlan("slice=2.0"), ConfigError);
    EXPECT_THROW(FaultInjector::parsePlan("slice=abc"), ConfigError);
    EXPECT_THROW(FaultInjector::parsePlan("times=0"), ConfigError);
    EXPECT_THROW(FaultInjector::parsePlan("nonsense=1"), ConfigError);
}

// -------------------------------------------- cache corruption recovery

TEST_F(RobustnessTest, TamperedCacheIsQuarantinedAndRebuilt)
{
    for (const char *mode : {"truncate", "bitflip"}) {
        SurfaceCache cache((dir_ / mode).string(), 0xfeed);
        std::vector<SurfaceRecord> in(3);
        in[0].mr = 4;
        in[1].mr = 8;
        in[2].mr = 12;

        FaultPlan plan;
        if (std::string(mode) == "truncate")
            plan.cacheTruncateProb = 1.0;
        else
            plan.cacheBitflipProb = 1.0;
        FaultInjector::global().configure(plan);
        setQuietLogging(true);
        ASSERT_TRUE(cache.save(in));
        FaultInjector::global().reset();

        // The tampered file fails validation and is quarantined, so
        // the failure is visible, non-destructive, and non-repeating.
        std::vector<SurfaceRecord> out;
        std::string why;
        EXPECT_FALSE(cache.load(out, &why)) << mode;
        EXPECT_TRUE(out.empty());
        EXPECT_TRUE(
            std::filesystem::exists(cache.path() + ".corrupt"))
            << mode;
        EXPECT_FALSE(std::filesystem::exists(cache.path())) << mode;

        // A clean rewrite fully recovers.
        ASSERT_TRUE(cache.save(in));
        EXPECT_TRUE(cache.load(out, &why)) << why;
        setQuietLogging(false);
        ASSERT_EQ(out.size(), in.size());
        EXPECT_EQ(out[2].mr, 12);
    }
}

TEST_F(RobustnessTest, NoStrayTempFilesAfterSave)
{
    SurfaceCache cache(dir_.string(), 0xbeef);
    ASSERT_TRUE(cache.save({SurfaceRecord{}}));
    size_t files = 0;
    for (const auto &ent :
         std::filesystem::directory_iterator(dir_))
        files += ent.is_regular_file() ? 1 : 0;
    EXPECT_EQ(files, 1u);
}

// ------------------------------------------------------- sweep journal

TEST_F(RobustnessTest, JournalRoundTripAndDuplicateKeys)
{
    std::string path = (dir_ / "sweep.jrnl").string();
    {
        SweepJournal j(path, 0xabc);
        EXPECT_EQ(j.size(), 0u);
        j.record("p1", SweepJournal::encode(1.5));
        j.record("p2", SweepJournal::encode(2.5));
        // Re-recording with a different payload supersedes (last
        // wins): this is how a resumed sweep upgrades a journaled
        // failure marker to a real value.
        j.record("p1", SweepJournal::encode(99.0));
        EXPECT_THROW(j.record("bad\tkey", "00"), ConfigError);
        EXPECT_THROW(j.record("", "00"), ConfigError);
    }
    SweepJournal j(path, 0xabc);
    EXPECT_EQ(j.size(), 2u);
    std::string hex;
    ASSERT_TRUE(j.lookup("p1", &hex));
    double v = 0;
    ASSERT_TRUE(SweepJournal::decode(hex, v));
    EXPECT_DOUBLE_EQ(v, 99.0); // last record wins
    EXPECT_FALSE(j.lookup("p3"));
}

TEST_F(RobustnessTest, JournalIgnoresTornTailLine)
{
    std::string path = (dir_ / "torn.jrnl").string();
    {
        SweepJournal j(path, 1);
        j.record("done", SweepJournal::encode(4.0));
    }
    // Simulate a SIGKILL mid-append: an unterminated tail line.
    {
        std::ofstream os(path, std::ios::app | std::ios::binary);
        os << "half-written\t00ff";
    }
    setQuietLogging(true);
    SweepJournal j(path, 1);
    setQuietLogging(false);
    EXPECT_EQ(j.size(), 1u);
    EXPECT_TRUE(j.lookup("done"));
    EXPECT_FALSE(j.lookup("half-written"));
    // The reopened journal keeps accepting records.
    j.record("next", SweepJournal::encode(5.0));
    SweepJournal again(path, 1);
    EXPECT_EQ(again.size(), 2u);
}

TEST_F(RobustnessTest, JournalWithStaleHashRotatesAndStartsFresh)
{
    std::string path = (dir_ / "stale.jrnl").string();
    {
        SweepJournal j(path, 111);
        j.record("old", SweepJournal::encode(1.0));
    }
    setQuietLogging(true);
    SweepJournal j(path, 222); // flags changed between runs
    setQuietLogging(false);
    EXPECT_EQ(j.size(), 0u);
    EXPECT_FALSE(j.lookup("old"));
    EXPECT_TRUE(std::filesystem::exists(path + ".stale"));
}

TEST_F(RobustnessTest, SweepRunnerResumesWithoutRecomputing)
{
    SweepOptions opt;
    opt.journalPath = (dir_ / "runner.jrnl").string();

    int calls = 0;
    auto work = [&calls] {
        ++calls;
        return 3.25;
    };
    {
        SweepRunner r(opt);
        EXPECT_DOUBLE_EQ(r.point<double>("a", work), 3.25);
        EXPECT_DOUBLE_EQ(r.point<double>("b", work), 3.25);
        EXPECT_EQ(r.computedPoints(), 2u);
        EXPECT_EQ(r.resumedPoints(), 0u);
    }
    EXPECT_EQ(calls, 2);

    // A rerun (same config) replays the journal: zero recomputation.
    SweepRunner r(opt);
    EXPECT_DOUBLE_EQ(r.point<double>("a", work), 3.25);
    EXPECT_DOUBLE_EQ(r.point<double>("b", work), 3.25);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(r.resumedPoints(), 2u);
    EXPECT_EQ(r.computedPoints(), 0u);
    EXPECT_EQ(r.finish(), 0);
}

TEST_F(RobustnessTest, SweepRunnerIsolatesAndReportsFailures)
{
    SweepOptions opt;
    opt.maxRetries = 1;

    int attempts = 0;
    setQuietLogging(true);
    SweepRunner r(opt);
    // Fails on the first attempt, succeeds on the retry.
    double ok = r.point<double>("flaky", [&attempts] {
        if (++attempts == 1)
            throw TraceError("transient");
        return 7.0;
    });
    EXPECT_DOUBLE_EQ(ok, 7.0);
    EXPECT_EQ(attempts, 2);

    // Exhausts retries: NaN result, sweep continues, finish() fails.
    double bad = r.point<double>("doomed", []() -> double {
        throw TraceError("permanent");
    });
    setQuietLogging(false);
    EXPECT_TRUE(std::isnan(bad));
    EXPECT_EQ(r.finish(), 1);
}

TEST_F(RobustnessTest, SweepRunnerFailFastRethrows)
{
    SweepOptions opt;
    opt.maxRetries = 0;
    opt.failFast = true;
    SweepRunner r(opt);
    EXPECT_THROW(r.point<double>(
                     "x", []() -> double { throw TraceError("boom"); }),
                 TraceError);
}

TEST_F(RobustnessTest, SweepRunnerHonorsMaxFailures)
{
    SweepOptions opt;
    opt.maxRetries = 0;
    opt.maxFailures = 1;
    setQuietLogging(true);
    SweepRunner r(opt);
    r.point<double>("one", []() -> double { throw TraceError("x"); });
    EXPECT_EQ(r.finish(), 0); // one failure tolerated
    r.point<double>("two", []() -> double { throw TraceError("y"); });
    EXPECT_EQ(r.finish(), 1); // threshold exceeded
    setQuietLogging(false);
}

TEST_F(RobustnessTest, JournalCompactsDuplicateHeavyFileOnOpen)
{
    std::string path = (dir_ / "fat.jrnl").string();
    setQuietLogging(true);
    {
        SweepJournal j(path, 7);
        // Two full passes over 10 keys: 20 appended records, 10 of
        // them superseded (a sweep retried from scratch).
        for (int pass = 0; pass < 2; ++pass)
            for (int i = 0; i < 10; ++i)
                j.record("p" + std::to_string(i),
                         SweepJournal::encode(pass * 100.0 + i));
        EXPECT_FALSE(j.compactedAtOpen());
    }
    // A SIGKILL mid-append on top of the fat file: compaction must
    // still drop the torn tail, exactly like a plain reopen.
    {
        std::ofstream os(path, std::ios::app | std::ios::binary);
        os << "half-written\t00ff";
    }
    SweepJournal j(path, 7);
    EXPECT_TRUE(j.compactedAtOpen());
    EXPECT_EQ(j.loadedRecords(), 20u);
    EXPECT_EQ(j.size(), 10u);
    EXPECT_FALSE(j.lookup("half-written"));

    // Surviving records are the last-written values.
    std::string hex;
    double v = 0;
    ASSERT_TRUE(j.lookup("p3", &hex));
    ASSERT_TRUE(SweepJournal::decode(hex, v));
    EXPECT_DOUBLE_EQ(v, 103.0);

    // The rewritten file is exactly header + one line per live key.
    std::ifstream is(path);
    size_t lines = 0;
    std::string line;
    while (std::getline(is, line))
        ++lines;
    EXPECT_EQ(lines, 11u);

    // The compact image reloads without re-compacting and keeps
    // accepting appends.
    j.record("p10", SweepJournal::encode(42.0));
    SweepJournal again(path, 7);
    EXPECT_FALSE(again.compactedAtOpen());
    EXPECT_EQ(again.loadedRecords(), 11u);
    EXPECT_EQ(again.size(), 11u);
    setQuietLogging(false);
}

TEST_F(RobustnessTest, JournalSkipsCompactionBelowThresholds)
{
    setQuietLogging(true);
    // 10 loaded records is under the 16-record floor, even at a 50%
    // duplicate ratio: rewriting a tiny file buys nothing.
    std::string small = (dir_ / "small.jrnl").string();
    {
        SweepJournal j(small, 7);
        for (int pass = 0; pass < 2; ++pass)
            for (int i = 0; i < 5; ++i)
                j.record("p" + std::to_string(i),
                         SweepJournal::encode(pass * 100.0 + i));
    }
    SweepJournal j1(small, 7);
    EXPECT_FALSE(j1.compactedAtOpen());
    EXPECT_EQ(j1.loadedRecords(), 10u);

    // 20 records with only 4 superseded (20% < 50%): mostly-live
    // journals are left alone too.
    std::string lean = (dir_ / "lean.jrnl").string();
    {
        SweepJournal j(lean, 7);
        for (int i = 0; i < 16; ++i)
            j.record("p" + std::to_string(i),
                     SweepJournal::encode(1.0 * i));
        for (int i = 0; i < 4; ++i)
            j.record("p" + std::to_string(i),
                     SweepJournal::encode(100.0 + i));
    }
    SweepJournal j2(lean, 7);
    EXPECT_FALSE(j2.compactedAtOpen());
    EXPECT_EQ(j2.loadedRecords(), 20u);
    EXPECT_EQ(j2.size(), 16u);
    setQuietLogging(false);
}

// ------------------------------------------- deadline-bounded reads

namespace {
void
sigusr1Noop(int)
{
}
} // namespace

/** RAII SIGUSR1 handler WITHOUT SA_RESTART (every delivery interrupts
 *  poll/read with EINTR) plus a thread hammering this thread with it. */
class SignalStorm
{
  public:
    SignalStorm()
    {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = sigusr1Noop;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0; // no SA_RESTART
        sigaction(SIGUSR1, &sa, &old_);
        pthread_t victim = pthread_self();
        storm_ = std::thread([this, victim] {
            while (!stop_.load()) {
                ::pthread_kill(victim, SIGUSR1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }

    ~SignalStorm()
    {
        stop_.store(true);
        storm_.join();
        sigaction(SIGUSR1, &old_, nullptr);
    }

  private:
    struct sigaction old_;
    std::atomic<bool> stop_{false};
    std::thread storm_;
};

TEST_F(RobustnessTest, PollReadableKeepsDeadlineUnderSignalStorm)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    // With ~1ms EINTR wakeups, a poll that restarted with the FULL
    // timeout after each interruption would never expire. The fix
    // recomputes the remaining budget, so 200ms means about 200ms.
    const auto t0 = std::chrono::steady_clock::now();
    int r;
    {
        SignalStorm storm;
        r = pollReadable(fds[0], 200);
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(r, 0) << "empty pipe must time out, not spuriously wake";
    EXPECT_GE(elapsed, 180) << "deadline shaved short";
    EXPECT_LT(elapsed, 2000) << "deadline extended by EINTR restarts";

    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_F(RobustnessTest, FrameReadCompletesUnderSignalStormWithSlowPeer)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    std::vector<uint8_t> bytes;
    frameAppend(bytes, frameFourcc('T', 'E', 'S', 'T'), 7,
                std::vector<uint8_t>{1, 2, 3, 4});

    // A peer trickling one byte every 2ms while signals hammer the
    // reader: every partial read gets EINTR'd and retried, and the
    // overall deadline still holds.
    std::thread writer([&] {
        for (uint8_t b : bytes) {
            (void)!::write(fds[1], &b, 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        ::close(fds[1]);
    });

    Frame frame;
    FrameRead rr;
    {
        SignalStorm storm;
        rr = frameReadFd(
            fds[0], frame, 10000, [](uint32_t) { return true; },
            1 << 20, "test");
    }
    writer.join();
    ASSERT_EQ(rr, FrameRead::Ok);
    EXPECT_EQ(frame.fourcc, frameFourcc('T', 'E', 'S', 'T'));
    EXPECT_EQ(frame.arg, 7u);
    EXPECT_EQ(frame.payload, (std::vector<uint8_t>{1, 2, 3, 4}));

    ::close(fds[0]);
}

// --------------------------------------------------- flag parsing

TEST_F(RobustnessTest, FlagsRejectMalformedIntegers)
{
    const char *argv_bad[] = {"bench", "--threads=abc"};
    Flags bad(2, const_cast<char **>(argv_bad));
    EXPECT_THROW(bad.getInt("threads", 0), ConfigError);

    const char *argv_tail[] = {"bench", "--grid=3x"};
    Flags tail(2, const_cast<char **>(argv_tail));
    EXPECT_THROW(tail.getInt("grid", 1), ConfigError);

    const char *argv_ok[] = {"bench", "--grid=3", "--threads=-1"};
    Flags ok(3, const_cast<char **>(argv_ok));
    EXPECT_EQ(ok.getInt("grid", 1), 3);
    // -1 parses, but estimatorOptions() validation rejects it with an
    // actionable message instead of the old assert-abort.
    EXPECT_THROW(estimatorOptions(ok), ConfigError);
}

} // namespace
} // namespace save
