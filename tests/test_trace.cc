/**
 * @file
 * Trace subsystem tests (src/trace, DESIGN.md §9).
 *
 * - uop codec and writer/reader round-trips over real kernel streams
 * - corruption rejection: bad magic, truncation, a flipped bit
 *   anywhere in the file (header or payload) must raise TraceError
 * - record -> replay bit-identity: cycles and the whole stat map match
 *   the live run across SAVE policies and precisions, for GEMM, conv-
 *   lowered, and LSTM-lowered slices, single- and multi-core
 * - pipeline event tracer: attaching it must not change a single stat,
 *   and its output must be loadable Chrome-trace JSON
 * - SAVE_FAULT_INJECT cache-bitflip tampering of a freshly recorded
 *   trace file is caught at open time
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "kernels/lstm.h"
#include "mem/memory_image.h"
#include "sim/multicore.h"
#include "sim/reference.h"
#include "trace/event_trace.h"
#include "trace/replay.h"
#include "trace/trace_format.h"
#include "trace/trace_reader.h"
#include "trace/trace_writer.h"
#include "util/error.h"
#include "util/fault_injection.h"

namespace save {
namespace {

/** Fresh scratch dir per test; removed on teardown. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("save_trace_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override
    {
        FaultInjector::global().reset();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

/** Small slice that still exercises loads, broadcasts, and stores. */
GemmConfig
tinySlice(Precision prec = Precision::Fp32, double bs = 0.5,
          double nbs = 0.5)
{
    GemmConfig g;
    g.mr = 2;
    g.nrVecs = 2;
    g.kSteps = 16;
    g.tiles = 2;
    g.precision = prec;
    g.bsSparsity = bs;
    g.nbsSparsity = nbs;
    g.seed = 11;
    return g;
}

// ------------------------------------------------------------- codec

TEST(TraceCodec, VarintRoundTrip)
{
    std::vector<uint64_t> values = {0,      1,          127,
                                    128,    16383,      16384,
                                    ~0ull,  1ull << 32, (1ull << 63) + 5};
    std::vector<uint8_t> buf;
    for (uint64_t v : values)
        tracePutVarint(buf, v);
    const uint8_t *p = buf.data();
    const uint8_t *end = p + buf.size();
    for (uint64_t v : values)
        EXPECT_EQ(traceGetVarint(p, end), v);
    EXPECT_EQ(p, end);
}

TEST(TraceCodec, VarintRejectsShortBuffer)
{
    std::vector<uint8_t> buf;
    tracePutVarint(buf, 1ull << 40);
    const uint8_t *p = buf.data();
    const uint8_t *end = p + buf.size() - 1;
    EXPECT_THROW(traceGetVarint(p, end), TraceError);
}

TEST(TraceCodec, ZigzagRoundTrip)
{
    for (int64_t v : {0ll, 1ll, -1ll, 63ll, -64ll, 1ll << 40,
                      -(1ll << 40)})
        EXPECT_EQ(traceUnzigzag(traceZigzag(v)), v);
}

TEST(TraceCodec, UopStreamRoundTrip)
{
    MemoryImage image;
    GemmConfig g = tinySlice();
    std::vector<GemmWorkload> work = buildShardedGemm(g, image, 2);

    for (const auto &w : work) {
        std::vector<uint8_t> buf;
        uint64_t prev = 0;
        for (const Uop &u : w.trace)
            traceEncodeUop(u, prev, buf);

        const uint8_t *p = buf.data();
        const uint8_t *end = p + buf.size();
        prev = 0;
        for (const Uop &want : w.trace) {
            Uop got = traceDecodeUop(p, end, prev);
            EXPECT_EQ(static_cast<int>(got.op),
                      static_cast<int>(want.op));
            EXPECT_EQ(got.dst, want.dst);
            EXPECT_EQ(got.srcA, want.srcA);
            EXPECT_EQ(got.srcB, want.srcB);
            EXPECT_EQ(got.srcC, want.srcC);
            EXPECT_EQ(got.wmask, want.wmask);
            EXPECT_EQ(got.addr, want.addr);
            EXPECT_EQ(got.maskImm, want.maskImm);
        }
        EXPECT_EQ(p, end);
    }
}

TEST(TraceCodec, UopAddrDeltaBackwardAndExtremeRoundTrip)
{
    // Squash-replayed streams revisit lower addresses after higher
    // ones, and synthetic streams can jump across most of the address
    // space; the delta codec must wrap (unsigned two's complement) in
    // both directions, never overflow signed arithmetic.
    const std::vector<uint64_t> addrs = {
        0x1000,
        0x40, // backward
        0xffffffffffffffffull,
        0x0, // maximal backward jump
        0x8000000000000000ull,
        0x7fffffffffffffffull,
        0x40,
        0xfffffffffffffff0ull,
        0x1000,
    };
    std::vector<Uop> uops;
    for (uint64_t a : addrs)
        uops.push_back(Uop::loadVec(3, a));
    uops.push_back(Uop::storeVec(4, 0x123456789abcdef0ull));
    uops.push_back(Uop::broadcastLoad(5, 0x8ull));

    std::vector<uint8_t> buf;
    uint64_t prev = 0;
    for (const Uop &u : uops)
        traceEncodeUop(u, prev, buf);
    const uint8_t *p = buf.data();
    const uint8_t *end = p + buf.size();
    prev = 0;
    for (const Uop &want : uops) {
        Uop got = traceDecodeUop(p, end, prev);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(static_cast<int>(got.op), static_cast<int>(want.op));
    }
    EXPECT_EQ(p, end);
}

// ------------------------------------------------- file round trips

TEST_F(TraceTest, MemRegionZeroRleBoundaries)
{
    // The MEMR zero-run RLE must round-trip regions whose zero runs
    // end exactly at the region (= chunk payload) boundary, in every
    // alignment relative to the writer's minimum-run threshold of 16.
    MemoryImage image;
    auto fill = [&](uint64_t base, const std::vector<uint8_t> &bytes) {
        image.addRegion(base, bytes.size());
        if (!bytes.empty())
            image.writeBytes(base, bytes.data(), bytes.size());
    };
    auto pattern = [](std::initializer_list<std::pair<int, uint8_t>>
                          runs) {
        std::vector<uint8_t> v;
        for (auto [n, b] : runs)
            v.insert(v.end(), static_cast<size_t>(n), b);
        return v;
    };
    fill(0x0000, std::vector<uint8_t>(64, 0)); // all zero
    fill(0x1000, pattern({{1, 7}, {15, 0}}));  // short trailing run
    fill(0x2000, pattern({{1, 7}, {16, 0}}));  // run == threshold
    fill(0x3000, pattern({{1, 7}, {17, 0}}));  // run == threshold + 1
    fill(0x4000, pattern({{1, 7}, {40, 0}}));  // long trailing run
    fill(0x5000, pattern({{16, 0}, {1, 7}}));  // leading run only
    fill(0x6000, pattern({{1, 7}, {15, 0}, {1, 9}, {16, 0}, {1, 3}}));
    fill(0x7000, pattern({{16, 0}, {1, 7}, {16, 0}, {1, 9}, {16, 0}}));
    fill(0x8000, std::vector<uint8_t>(48, 0xab)); // no zeros at all

    std::string f = path("rle.savtrc");
    {
        TraceWriter w(f, 1);
        MachineConfig mcfg;
        mcfg.cores = 1;
        w.writeConfig(traceConfigText(mcfg, SaveConfig{}, 2, "rle"));
        w.writeImage(image);
        w.writeUops(0, {Uop::loadVec(0, 0x0)}); // reader needs a stream
        w.finish();
    }
    TraceReader r(f);
    MemoryImage rebuilt = r.buildImage();
    ASSERT_EQ(rebuilt.numRegions(), image.numRegions());
    for (size_t i = 0; i < image.numRegions(); ++i) {
        EXPECT_EQ(rebuilt.regionBase(i), image.regionBase(i));
        EXPECT_EQ(rebuilt.regionData(i), image.regionData(i)) <<
            "region " << i;
    }
}

TEST_F(TraceTest, RecordedFileRoundTrips)
{
    GemmConfig g = tinySlice();
    Engine engine(MachineConfig{}, SaveConfig{});
    std::string f = path("t.savtrc");
    KernelResult live = engine.recordGemm(g, f, "tiny-gemm", 2, 2);

    TraceReader r(f);
    EXPECT_EQ(r.version(), kTraceVersion);
    EXPECT_EQ(r.kernelName(), "tiny-gemm");
    EXPECT_EQ(r.cores(), 2);
    EXPECT_EQ(r.vpus(), 2);
    EXPECT_TRUE(r.hasElms());
    ASSERT_TRUE(r.hasResult());
    EXPECT_EQ(r.recordedCycles(), live.cycles);
    EXPECT_EQ(r.recordedStats(), live.stats.all());

    // The decoded streams equal the generator's.
    MemoryImage image;
    std::vector<GemmWorkload> work = buildShardedGemm(g, image, 2);
    for (int c = 0; c < 2; ++c) {
        const auto &want = work[static_cast<size_t>(c)].trace;
        ASSERT_EQ(r.uopCount(c), want.size());
        std::vector<Uop> got = r.uops(c);
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i].toString(), want[i].toString());
        EXPECT_EQ(r.warmRanges(c),
                  (std::vector<std::pair<uint64_t, uint64_t>>{
                      {work[static_cast<size_t>(c)].aBase,
                       work[static_cast<size_t>(c)].aBytes},
                      {work[static_cast<size_t>(c)].bBase,
                       work[static_cast<size_t>(c)].bBytes}}));
    }

    // The rebuilt image matches the generator's initial image.
    MemoryImage rebuilt = r.buildImage();
    ASSERT_EQ(rebuilt.numRegions(), image.numRegions());
    for (size_t i = 0; i < image.numRegions(); ++i) {
        EXPECT_EQ(rebuilt.regionBase(i), image.regionBase(i));
        EXPECT_EQ(rebuilt.regionData(i), image.regionData(i));
    }
}

TEST_F(TraceTest, StreamingSourceMatchesBulkDecode)
{
    std::string f = path("t.savtrc");
    Engine(MachineConfig{}, SaveConfig{})
        .recordGemm(tinySlice(), f, "gemm", 1, 2);

    TraceReader r(f);
    std::vector<Uop> bulk = r.uops(0);
    TraceFileSource src(r, 0);
    EXPECT_EQ(src.remaining(), bulk.size());
    Uop u;
    size_t i = 0;
    while (src.next(u)) {
        ASSERT_LT(i, bulk.size());
        EXPECT_EQ(u.toString(), bulk[i].toString());
        ++i;
    }
    EXPECT_EQ(i, bulk.size());
    EXPECT_EQ(src.remaining(), 0u);

    src.reset();
    EXPECT_EQ(src.remaining(), bulk.size());
    EXPECT_TRUE(src.next(u));
    EXPECT_EQ(u.toString(), bulk[0].toString());
}

// ------------------------------------------------------- corruption

TEST_F(TraceTest, RejectsBadMagic)
{
    std::string f = path("bad.savtrc");
    std::ofstream(f) << "definitely not a trace file";
    EXPECT_THROW(TraceReader r(f), TraceError);
}

TEST_F(TraceTest, RejectsTruncation)
{
    std::string f = path("t.savtrc");
    Engine(MachineConfig{}, SaveConfig{})
        .recordGemm(tinySlice(), f, "gemm", 1, 2);

    // Chop anywhere: mid-payload and mid-chunk-header both reject.
    auto size = std::filesystem::file_size(f);
    for (auto keep : {size - 4, size / 2, kTraceHeaderBytes + 3}) {
        std::string copy = path("trunc" + std::to_string(keep));
        std::filesystem::copy_file(f, copy);
        std::filesystem::resize_file(copy, keep);
        EXPECT_THROW(TraceReader r(copy), TraceError)
            << "kept " << keep << " of " << size << " bytes";
    }

    // A writer that never finish()ed (no END chunk) is truncated too.
    std::string unfinished = path("unfinished.savtrc");
    {
        TraceWriter w(unfinished, 42);
        w.writeConfig(
            traceConfigText(MachineConfig{}, SaveConfig{}, 2, "x"));
        // no finish()
    }
    EXPECT_THROW(TraceReader r(unfinished), TraceError);
}

TEST_F(TraceTest, RejectsAnySingleBitFlip)
{
    std::string f = path("t.savtrc");
    Engine(MachineConfig{}, SaveConfig{})
        .recordGemm(tinySlice(), f, "gemm", 1, 2);

    auto size = std::filesystem::file_size(f);
    // Flip one bit at a spread of offsets: header magic, header hash,
    // first chunk, middle, last byte.
    for (uint64_t off : {uint64_t(1), uint64_t(17),
                         uint64_t(kTraceHeaderBytes + 2), size / 2,
                         size - 1}) {
        std::string copy = path("flip" + std::to_string(off));
        std::filesystem::copy_file(f, copy);
        std::fstream fs(copy, std::ios::in | std::ios::out |
                                  std::ios::binary);
        fs.seekg(static_cast<std::streamoff>(off));
        char b = 0;
        fs.get(b);
        fs.seekp(static_cast<std::streamoff>(off));
        fs.put(static_cast<char>(b ^ 0x10));
        fs.close();
        EXPECT_THROW(TraceReader r(copy), TraceError)
            << "bit flip at offset " << off << " not detected";
    }
}

TEST_F(TraceTest, FaultInjectedBitflipOnTraceFileIsCaught)
{
    // The writer runs the same post-save tamper hook as the surface
    // cache, so SAVE_FAULT_INJECT=cache-bitflip corrupts the freshly
    // recorded trace — and the reader must refuse it.
    FaultPlan plan;
    plan.seed = 3;
    plan.cacheBitflipProb = 1.0;
    FaultInjector::global().configure(plan);

    std::string f = path("tampered.savtrc");
    Engine(MachineConfig{}, SaveConfig{})
        .recordGemm(tinySlice(), f, "gemm", 1, 2);
    FaultInjector::global().reset();

    EXPECT_THROW(TraceReader r(f), TraceError);
}

// ------------------------------------------------- replay identity

void
expectReplayIdentical(const KernelResult &live,
                      const ReplayOutcome &replay)
{
    EXPECT_EQ(replay.cycles, live.cycles);
    ASSERT_TRUE(replay.hasRecorded);
    EXPECT_TRUE(replayCheck(replay).empty()) << replayCheck(replay);
    // Belt and braces: the replayed machine's stat map itself equals
    // the live one (replayCheck compares against the RES chunk).
    EXPECT_EQ(replay.stats.all(), live.stats.all());
}

TEST_F(TraceTest, ReplayBitIdenticalAcrossPoliciesAndPrecisions)
{
    struct Case
    {
        const char *name;
        SaveConfig scfg;
        Precision prec;
    };
    SaveConfig vc;
    vc.policy = SchedPolicy::VC;
    std::vector<Case> cases = {
        {"baseline_fp32", SaveConfig::baseline(), Precision::Fp32},
        {"vc_fp32", vc, Precision::Fp32},
        {"rvc_fp32", SaveConfig{}, Precision::Fp32},
        {"rvc_bf16", SaveConfig{}, Precision::Bf16},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        GemmConfig g = tinySlice(c.prec);
        Engine engine(MachineConfig{}, c.scfg);
        std::string f = path(std::string(c.name) + ".savtrc");
        KernelResult live = engine.recordGemm(g, f, c.name, 1, 2);
        expectReplayIdentical(live, replayTrace(f));
    }
}

TEST_F(TraceTest, ReplayBitIdenticalMulticore)
{
    GemmConfig g = tinySlice();
    Engine engine(MachineConfig{}, SaveConfig{});
    std::string f = path("mc.savtrc");
    KernelResult live = engine.recordGemm(g, f, "mc-gemm", 3, 2);
    expectReplayIdentical(live, replayTrace(f));
}

TEST_F(TraceTest, ReplayBitIdenticalConvAndLstmSlices)
{
    // Conv- and LSTM-lowered slices (the acceptance-criteria trio).
    ConvLayer layer;
    layer.name = "c128";
    layer.inC = 128;
    layer.outC = 128;
    layer.ih = 28;
    layer.iw = 28;
    GemmConfig conv = makeConvKernel(layer, Phase::Forward, 32)
                          .slice(Precision::Fp32, 0.4, 0.4, 16, 5);
    conv.tiles = 2;

    LstmCell cell;
    cell.name = "l256";
    cell.inputDim = 256;
    cell.hiddenDim = 256;
    GemmConfig lstm = makeLstmKernel(cell, Phase::Forward)
                          .slice(Precision::Bf16, 0.3, 0.6, 16, 9);
    lstm.tiles = 2;

    Engine engine(MachineConfig{}, SaveConfig{});
    for (const auto &[name, cfg] :
         {std::pair<const char *, GemmConfig>{"conv", conv},
          std::pair<const char *, GemmConfig>{"lstm", lstm}}) {
        SCOPED_TRACE(name);
        std::string f = path(std::string(name) + ".savtrc");
        KernelResult live = engine.recordGemm(cfg, f, name, 1, 2);
        expectReplayIdentical(live, replayTrace(f));
    }
}

TEST_F(TraceTest, ReplayIsFunctionallyCorrect)
{
    // The replayed pipeline's memory writes match in-order execution
    // of the recorded stream over the recorded image.
    GemmConfig g = tinySlice();
    Engine engine(MachineConfig{}, SaveConfig{});
    std::string f = path("t.savtrc");
    engine.recordGemm(g, f, "gemm", 1, 2);

    TraceReader r(f);
    MemoryImage final_image;
    replayTrace(r, nullptr, &final_image);

    MemoryImage ref_image = r.buildImage();
    ArchExecutor ref(&ref_image);
    ref.run(r.uops(0));

    ASSERT_EQ(final_image.numRegions(), ref_image.numRegions());
    for (size_t i = 0; i < ref_image.numRegions(); ++i)
        EXPECT_EQ(final_image.regionData(i), ref_image.regionData(i))
            << "region " << i;
}

TEST_F(TraceTest, ReplayCheckCatchesStatDrift)
{
    std::string f = path("t.savtrc");
    Engine(MachineConfig{}, SaveConfig{})
        .recordGemm(tinySlice(), f, "gemm", 1, 2);
    ReplayOutcome out = replayTrace(f);
    ASSERT_TRUE(replayCheck(out).empty());
    out.stats.add("uops_committed", 1);
    EXPECT_FALSE(replayCheck(out).empty());
    out.stats.add("uops_committed", -1);
    out.recordedCycles += 1;
    EXPECT_FALSE(replayCheck(out).empty());
}

// ---------------------------------------------------- event tracer

TEST_F(TraceTest, EventTracerDoesNotChangeStats)
{
    GemmConfig g = tinySlice();
    Engine engine(MachineConfig{}, SaveConfig{});
    std::string f = path("t.savtrc");
    engine.recordGemm(g, f, "gemm", 2, 2);

    ReplayOutcome plain = replayTrace(f);

    std::string json = path("events.json");
    {
        EventTraceSession session(json);
        ReplayOutcome traced = replayTrace(f, &session);
        EXPECT_EQ(traced.cycles, plain.cycles);
        EXPECT_EQ(traced.stats.all(), plain.stats.all());
        session.finalize();
        EXPECT_GT(session.summary().get("uops_retired"), 0.0);
    }

    // The output is Chrome-trace JSON with the summary footer.
    std::ifstream in(json);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("coalescing_efficiency_pct"),
              std::string::npos);
    EXPECT_EQ(text.back(), '\n');
    EXPECT_EQ(text[text.size() - 2], '}');
}

TEST_F(TraceTest, EventTracerEnvAutoAttaches)
{
    std::string json = path("env_events.json");
    setenv("SAVE_TRACE_EVENTS", json.c_str(), 1);
    Engine(MachineConfig{}, SaveConfig{}).runGemm(tinySlice(), 1, 2);
    unsetenv("SAVE_TRACE_EVENTS");
    // The Multicore destructor finalized the session on run exit.
    std::ifstream in(json);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

// ----------------------------------------------------------- stats

TEST(StatsJson, StableOrderAndRoundTrip)
{
    StatGroup g;
    g.set("zeta", 1.5);
    g.set("alpha", 3);
    g.set("mid", -7.25);
    EXPECT_EQ(g.toJson(),
              "{\"alpha\": 3,\"mid\": -7.25,\"zeta\": 1.5}");
    // Large integral counters stay integral; doubles keep full
    // precision.
    StatGroup h;
    h.set("big", 9.0e15);
    h.set("pi", 3.141592653589793);
    std::string json = h.toJson();
    EXPECT_NE(json.find("\"big\": 9000000000000000"),
              std::string::npos);
    EXPECT_NE(json.find("3.141592653589793"), std::string::npos);
    // Indented form is one key per line.
    EXPECT_EQ(g.toJson("  "),
              "{\n  \"alpha\": 3,\n  \"mid\": -7.25,\n  \"zeta\": "
              "1.5\n}");
}

} // namespace
} // namespace save
