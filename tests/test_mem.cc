/**
 * @file
 * Unit tests for the memory subsystem: functional memory image, cache
 * tag arrays and replacement, the broadcast cache designs, the mesh
 * NoC, the DRAM bandwidth model, and the full hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/broadcast_cache.h"
#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/hierarchy.h"
#include "mem/memory_image.h"
#include "mem/mesh.h"

namespace save {
namespace {

TEST(MemoryImage, ScalarRoundTrip)
{
    MemoryImage m;
    uint64_t base = m.allocRegion(256);
    m.writeF32(base + 4, 1.5f);
    EXPECT_EQ(m.readF32(base + 4), 1.5f);
    m.writeU32(base + 8, 0xdeadbeef);
    EXPECT_EQ(m.readU32(base + 8), 0xdeadbeefu);
    m.writeBf16(base + 12, 0x3f80);
    EXPECT_EQ(m.readBf16(base + 12), 0x3f80);
}

TEST(MemoryImage, LineRoundTrip)
{
    MemoryImage m;
    uint64_t base = m.allocRegion(128);
    VecReg v;
    for (int i = 0; i < kVecLanes; ++i)
        v.setF32(i, static_cast<float>(i));
    m.writeLine(base + 64, v);
    EXPECT_TRUE(m.readLine(base + 64) == v);
    // readLine aligns down to the line start.
    EXPECT_TRUE(m.readLine(base + 64 + 12) == v);
}

TEST(MemoryImage, ZeroMask)
{
    MemoryImage m;
    uint64_t base = m.allocRegion(64);
    // Freshly allocated memory is all zero.
    EXPECT_EQ(m.lineZeroMaskF32(base), 0xffffu);
    m.writeF32(base + 4 * 3, 2.0f);
    EXPECT_EQ(m.lineZeroMaskF32(base),
              static_cast<uint16_t>(0xffffu & ~(1u << 3)));
}

TEST(MemoryImage, MultipleRegionsAndContains)
{
    MemoryImage m;
    uint64_t a = m.addRegion(0x1000, 64);
    uint64_t b = m.allocRegion(64);
    EXPECT_NE(a, b);
    EXPECT_TRUE(m.contains(a));
    EXPECT_TRUE(m.contains(b));
    EXPECT_FALSE(m.contains(0x1));
}

TEST(MemoryImageDeathTest, OverlapPanics)
{
    MemoryImage m;
    m.addRegion(0x1000, 128);
    EXPECT_DEATH(m.addRegion(0x1040, 64), "overlap");
}

TEST(MemoryImageDeathTest, OutOfBoundsRead)
{
    MemoryImage m;
    m.addRegion(0x1000, 64);
    EXPECT_DEATH(m.readU32(0x2000), "outside");
}

TEST(Cache, HitAfterFill)
{
    SetAssocCache c(4096, 4);
    EXPECT_FALSE(c.access(0x100));
    c.fill(0x100);
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13c)); // same 64B line
}

TEST(Cache, LruEvictsOldest)
{
    // 4 sets x 2 ways; lines mapping to set 0 are multiples of 256.
    SetAssocCache c(512, 2, ReplPolicy::Lru);
    EXPECT_EQ(c.numSets(), 4);
    c.fill(0);
    c.fill(256);
    c.access(0); // make line 0 most recent
    uint64_t evicted = c.fill(512);
    EXPECT_EQ(evicted, 256u);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(256));
}

TEST(Cache, SrripScansAndInserts)
{
    SetAssocCache c(512, 2, ReplPolicy::Srrip);
    c.fill(0);
    c.fill(256);
    // Promote line 0 to RRPV 0, line 256 stays at insert RRPV.
    c.access(0);
    uint64_t evicted = c.fill(512);
    EXPECT_EQ(evicted, 256u);
}

TEST(Cache, NonPowerOfTwoWays)
{
    // The paper's L3 slice: 2.375 MB, 19 ways.
    SetAssocCache c(static_cast<uint64_t>(2432) * 1024, 19,
                    ReplPolicy::Srrip);
    EXPECT_EQ(c.numWays(), 19);
    EXPECT_GT(c.numSets(), 0);
    c.fill(0x12345);
    EXPECT_TRUE(c.probe(0x12345));
}

TEST(Cache, Invalidate)
{
    SetAssocCache c(4096, 4);
    c.fill(0x100);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.invalidate(0x100));
}

TEST(Cache, StatsCount)
{
    SetAssocCache c(4096, 4);
    c.access(0x100);
    c.fill(0x100);
    c.access(0x100);
    EXPECT_EQ(c.stats().get("misses"), 1);
    EXPECT_EQ(c.stats().get("hits"), 1);
}

class BcastCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = mem_.allocRegion(64 * 64);
        // Element pattern: every 4th FP32 element is zero.
        for (int i = 0; i < 64 * 16; ++i)
            mem_.writeF32(base_ + 4 * static_cast<uint64_t>(i),
                          i % 4 == 0 ? 0.0f : 1.0f);
    }

    MemoryImage mem_;
    uint64_t base_ = 0;
};

TEST_F(BcastCacheTest, DataDesignServesHitsWithoutL1)
{
    BroadcastCache bc(BcastCacheKind::Data, 32, &mem_);
    auto r0 = bc.access(base_);
    EXPECT_FALSE(r0.hit);
    EXPECT_TRUE(r0.needsL1);
    EXPECT_TRUE(r0.filled);
    // Second access to the same line: served entirely from the B$.
    auto r1 = bc.access(base_ + 8);
    EXPECT_TRUE(r1.hit);
    EXPECT_FALSE(r1.needsL1);
}

TEST_F(BcastCacheTest, MaskDesignShortCircuitsOnlyZeros)
{
    BroadcastCache bc(BcastCacheKind::Mask, 32, &mem_);
    bc.access(base_); // fill
    auto zero = bc.access(base_); // element 0 is zero
    EXPECT_TRUE(zero.hit);
    EXPECT_FALSE(zero.needsL1);
    auto nonzero = bc.access(base_ + 4); // element 1 is non-zero
    EXPECT_TRUE(nonzero.hit);
    EXPECT_TRUE(nonzero.needsL1);
}

TEST_F(BcastCacheTest, ProbeOnlyDoesNotFill)
{
    BroadcastCache bc(BcastCacheKind::Data, 32, &mem_);
    auto p = bc.probeOnly(base_);
    EXPECT_FALSE(p.hit);
    // Still a miss: probeOnly must not have installed the line.
    EXPECT_FALSE(bc.probeOnly(base_).hit);
    bc.access(base_);
    EXPECT_TRUE(bc.probeOnly(base_).hit);
}

TEST_F(BcastCacheTest, InvalidateOnL1Eviction)
{
    BroadcastCache bc(BcastCacheKind::Data, 32, &mem_);
    bc.access(base_);
    bc.invalidate(base_);
    EXPECT_FALSE(bc.probeOnly(base_).hit);
}

TEST_F(BcastCacheTest, DirectMappedConflict)
{
    BroadcastCache bc(BcastCacheKind::Data, 32, &mem_);
    bc.access(base_);
    bc.access(base_ + 32 * 64); // same index, different tag
    EXPECT_FALSE(bc.probeOnly(base_).hit);
}

TEST_F(BcastCacheTest, HitRateTracksAccesses)
{
    BroadcastCache bc(BcastCacheKind::Data, 32, &mem_);
    bc.access(base_);
    bc.access(base_ + 4);
    bc.access(base_ + 8);
    EXPECT_NEAR(bc.hitRate(), 2.0 / 3.0, 1e-9);
}

TEST_F(BcastCacheTest, StorageBytesTableII)
{
    BroadcastCache data(BcastCacheKind::Data, 32, &mem_);
    BroadcastCache mask(BcastCacheKind::Mask, 32, &mem_);
    // Paper Table II: ~2260B with data, ~276-340B with masks.
    EXPECT_GT(data.storageBytes(), 2000u);
    EXPECT_LT(data.storageBytes(), 2600u);
    EXPECT_GT(mask.storageBytes(), 150u);
    EXPECT_LT(mask.storageBytes(), 400u);
}

TEST_F(BcastCacheTest, NoneKindAlwaysL1)
{
    BroadcastCache bc(BcastCacheKind::None, 32, &mem_);
    auto r = bc.access(base_);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.needsL1);
    EXPECT_EQ(bc.storageBytes(), 0u);
}

TEST(Mesh, GridShape28Cores)
{
    MeshNoc mesh(28, 2);
    EXPECT_EQ(mesh.rows() * mesh.cols(), 28);
    EXPECT_GE(mesh.cols(), mesh.rows());
}

TEST(Mesh, XyHopCount)
{
    MeshNoc mesh(28, 2); // 7x4
    EXPECT_EQ(mesh.hops(0, 0), 0);
    EXPECT_EQ(mesh.hops(0, 6), 6);      // same row
    EXPECT_EQ(mesh.hops(0, 21), 3);     // same column
    EXPECT_EQ(mesh.hops(0, 27), 9);     // opposite corner
    EXPECT_EQ(mesh.hops(27, 0), 9);     // symmetric
    EXPECT_EQ(mesh.latencyCycles(0, 27), 18);
}

TEST(Mesh, SliceHashCoversAllSlices)
{
    MeshNoc mesh(28, 2);
    std::vector<int> counts(28, 0);
    for (uint64_t line = 0; line < 28 * 64; ++line)
        ++counts[static_cast<size_t>(mesh.sliceOf(line * 64))];
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Dram, UnloadedLatency)
{
    Dram d(119.2, 6, 50.0);
    EXPECT_DOUBLE_EQ(d.request(0, 100.0), 150.0);
}

TEST(Dram, BandwidthQueuesSameChannel)
{
    Dram d(119.2, 6, 50.0);
    double per_line = 64.0 / (119.2 / 6); // channel service time
    double t1 = d.request(0, 0.0);
    double t2 = d.request(0, 0.0); // same address -> same channel
    EXPECT_DOUBLE_EQ(t1, 50.0);
    EXPECT_NEAR(t2 - t1, per_line, 1e-9);
}

TEST(Dram, ChannelsServeInParallel)
{
    Dram d(119.2, 6, 50.0);
    // Different addresses spread across channels; most should not
    // queue behind each other.
    int unqueued = 0;
    for (uint64_t i = 0; i < 6; ++i)
        if (d.request(i * 64, 0.0) == 50.0)
            ++unqueued;
    EXPECT_GE(unqueued, 3);
}

TEST(Dram, ResetClearsOccupancy)
{
    Dram d(10.0, 1, 50.0);
    d.request(0, 0.0);
    d.reset();
    EXPECT_DOUBLE_EQ(d.request(0, 0.0), 50.0);
}

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
    {
        cfg_.cores = 4;
        mem_ = std::make_unique<MemHierarchy>(cfg_);
    }

    MachineConfig cfg_;
    std::unique_ptr<MemHierarchy> mem_;
};

TEST_F(HierarchyTest, L1HitLatency)
{
    mem_->warmAll(0, 0x1000);
    double t = mem_->load(0, 0x1000, 0.0, 1.7);
    EXPECT_EQ(mem_->lastLevel(), HitLevel::L1);
    EXPECT_NEAR(t, cfg_.l1LatCycles / 1.7, 1e-9);
}

TEST_F(HierarchyTest, L3WarmThenL2Fill)
{
    mem_->warmL3(0x2000);
    mem_->load(0, 0x2000, 0.0, 1.7);
    EXPECT_EQ(mem_->lastLevel(), HitLevel::L3);
    // The line was pulled into the private levels.
    mem_->load(0, 0x2000, 100.0, 1.7);
    EXPECT_EQ(mem_->lastLevel(), HitLevel::L1);
}

TEST_F(HierarchyTest, ColdMissGoesToDram)
{
    double t = mem_->load(0, 0x9000, 0.0, 1.7);
    EXPECT_EQ(mem_->lastLevel(), HitLevel::Dram);
    EXPECT_GT(t, cfg_.dramLatNs);
}

TEST_F(HierarchyTest, PrefetchMergesNextLines)
{
    mem_->load(0, 0x10000, 0.0, 1.7);
    EXPECT_GT(mem_->stats().get("prefetches"), 0.0);
    // The next line is in flight; a demand access merges with it.
    mem_->load(0, 0x10040, 10.0, 1.7);
    EXPECT_EQ(mem_->lastLevel(), HitLevel::Inflight);
    EXPECT_GT(mem_->stats().get("mshr_merges"), 0.0);
}

TEST_F(HierarchyTest, L1EvictListenerFires)
{
    int evictions = 0;
    mem_->setL1EvictListener(0, [&](uint64_t) { ++evictions; });
    // Stream far more than 32KB through core 0's L1.
    for (uint64_t i = 0; i < 2048; ++i)
        mem_->warmAll(0, 0x100000 + i * 64);
    EXPECT_GT(evictions, 0);
}

TEST_F(HierarchyTest, PrivateCachesAreIsolated)
{
    mem_->warmAll(0, 0x3000);
    mem_->load(1, 0x3000, 0.0, 1.7);
    // Core 1 did not have the line privately; it hits in shared L3.
    EXPECT_EQ(mem_->lastLevel(), HitLevel::L3);
}

TEST_F(HierarchyTest, StoreAllocatesIntoL1)
{
    mem_->store(0, 0x4000, 0.0, 1.7);
    mem_->load(0, 0x4000, 100.0, 1.7);
    EXPECT_EQ(mem_->lastLevel(), HitLevel::L1);
}

} // namespace
} // namespace save
