/**
 * @file
 * Unit tests for util (bit helpers, RNG) and the stats package.
 */

#include <gtest/gtest.h>

#include "stats/stats.h"
#include "util/bitutil.h"
#include "util/logging.h"
#include "util/random.h"

namespace save {
namespace {

TEST(BitUtil, Popcount)
{
    EXPECT_EQ(popcount(0u), 0);
    EXPECT_EQ(popcount(0xffffu), 16);
    EXPECT_EQ(popcount(0x80000001u), 2);
}

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(64), 6);
    EXPECT_EQ(floorLog2(97), 6);
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(97), 7);
    EXPECT_EQ(ceilLog2(128), 7);
}

TEST(BitUtil, LowestSetBit)
{
    EXPECT_EQ(lowestSetBit(0), -1);
    EXPECT_EQ(lowestSetBit(0b1000), 3);
    EXPECT_EQ(lowestSetBit(1), 0);
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
    EXPECT_EQ(divCeil(1, 64), 1);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.range(0, 1000000), b.range(0, 1000000));
}

TEST(Rng, ChanceRateApproximatesP)
{
    Rng r(7);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, NonZeroValueNeverZero)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        float v = r.nonZeroValue();
        EXPECT_NE(v, 0.0f);
        EXPECT_GE(std::abs(v), 0.5f);
        EXPECT_LT(std::abs(v), 2.0f);
    }
}

TEST(StatGroup, AddSetGet)
{
    StatGroup g;
    EXPECT_EQ(g.get("x"), 0.0);
    EXPECT_FALSE(g.has("x"));
    g.add("x");
    g.add("x", 2.5);
    EXPECT_DOUBLE_EQ(g.get("x"), 3.5);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_TRUE(g.has("x"));
}

TEST(StatGroup, MergeSums)
{
    StatGroup a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3);
    EXPECT_DOUBLE_EQ(a.get("y"), 5);
}

TEST(StatGroup, DumpSortedWithPrefix)
{
    StatGroup g;
    g.add("b", 2);
    g.add("a", 1);
    EXPECT_EQ(g.dump("p."), "p.a 1\np.b 2\n");
}

TEST(Histogram, BucketsAndSaturation)
{
    Histogram h({0.0, 1.0, 2.0, 3.0});
    h.sample(0.5);
    h.sample(1.0);
    h.sample(2.9);
    h.sample(-5.0); // below: saturates into first bucket
    h.sample(99.0); // above: saturates into last bucket
    EXPECT_EQ(h.bucketCount(), 3);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Histogram, Labels)
{
    Histogram h({1.0, 1.2, 1.4});
    EXPECT_EQ(h.bucketLabel(0), "1.0-1.2");
    EXPECT_EQ(h.bucketLabel(1), "1.2-1.4");
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "v"});
    t.addRow({"x", "1.00"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("x"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, Fmt)
{
    EXPECT_EQ(TextTable::fmt(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(Logging, QuietSuppressesInform)
{
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    SAVE_INFORM("this should not print");
    setQuietLogging(false);
    EXPECT_FALSE(quietLogging());
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(SAVE_PANIC("boom"), "boom");
}

TEST(LoggingDeathTest, AssertFires)
{
    EXPECT_DEATH(SAVE_ASSERT(1 == 2, "math broke"), "assertion failed");
}

} // namespace
} // namespace save
