/**
 * @file
 * Miscellaneous edge cases: BF16 rounding carries, exponent
 * boundaries, engine behavior across core/VPU combinations, and
 * precision-relative timing sanity.
 */

#include <gtest/gtest.h>

#include <bit>

#include "engine/engine.h"
#include "isa/bf16.h"

namespace save {
namespace {

TEST(Bf16Edge, MantissaCarryPropagatesToExponent)
{
    // 0x3F7FFFFF (just under 1.0) rounds up across the exponent
    // boundary to exactly 1.0.
    float just_under_one = std::bit_cast<float>(0x3f7fffffu);
    EXPECT_EQ(bf16ToF32(f32ToBf16(just_under_one)), 1.0f);
}

TEST(Bf16Edge, LargeMagnitudeRoundsToInfinity)
{
    // FLT_MAX has all-ones mantissa: rounding up overflows to inf.
    float big = std::bit_cast<float>(0x7f7fffffu);
    EXPECT_TRUE(std::isinf(bf16ToF32(f32ToBf16(big))));
}

TEST(Bf16Edge, NegativeZeroRoundTrip)
{
    Bf16 nz = f32ToBf16(-0.0f);
    EXPECT_TRUE(bf16IsZero(nz));
    EXPECT_TRUE(std::signbit(bf16ToF32(nz)));
}

TEST(Bf16Edge, InfinityPreserved)
{
    float inf = std::bit_cast<float>(0x7f800000u);
    EXPECT_TRUE(std::isinf(bf16ToF32(f32ToBf16(inf))));
    EXPECT_FALSE(bf16IsZero(f32ToBf16(inf)));
}

TEST(EngineEdge, MultiCoreWithOneVpu)
{
    MachineConfig m;
    m.cores = 4;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 16;
    g.nbsSparsity = 0.5;
    Engine e(m, SaveConfig{});
    auto r = e.runGemm(g, 3, 1);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_DOUBLE_EQ(r.coreGhz, m.freq1VpuGhz);
    // Three cores each ran the slice.
    EXPECT_DOUBLE_EQ(r.stats.get("vfmas"),
                     3.0 * 16 * 4 * 2);
}

TEST(EngineEdge, MinimalKernelShapes)
{
    MachineConfig m;
    m.cores = 1;
    Engine e(m, SaveConfig{});
    // 1x1 tile, 1 K step: the degenerate-but-legal extreme.
    GemmConfig g;
    g.mr = 1;
    g.nrVecs = 1;
    g.kSteps = 1;
    g.tiles = 1;
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 1, &why)) << why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
}

TEST(EngineEdge, FullySparseBothOperands)
{
    MachineConfig m;
    m.cores = 1;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 24;
    g.bsSparsity = 1.0;
    g.nbsSparsity = 1.0;
    Engine e(m, SaveConfig{});
    std::string why;
    EXPECT_TRUE(e.verifyGemm(g, 2, &why)) << why;
    auto r = e.runGemm(g, 1, 2);
    EXPECT_EQ(r.stats.get("vpu_ops"), 0.0);
}

TEST(PrecisionEdge, MpMovesTwiceTheMacsPerVfma)
{
    // At equal kSteps, a BF16 kernel covers 2x the K elements with
    // the same VFMA count, so the baseline runs it in comparable
    // cycles while doing double the MAC work.
    MachineConfig m;
    m.cores = 1;
    GemmConfig fp;
    fp.mr = 7;
    fp.nrVecs = 3;
    fp.kSteps = 64;
    GemmConfig mp = fp;
    mp.precision = Precision::Bf16;
    EXPECT_EQ(mp.macs(), 2 * fp.macs());

    Engine e(m, SaveConfig::baseline());
    auto rf = e.runGemm(fp, 1, 2);
    auto rm = e.runGemm(mp, 1, 2);
    EXPECT_DOUBLE_EQ(rf.stats.get("vfmas"), rm.stats.get("vfmas"));
    EXPECT_LT(rm.cycles, 2 * rf.cycles);
}

TEST(PrecisionEdge, SeedChangesDataNotStructure)
{
    MemoryImage m1, m2;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 8;
    g.nbsSparsity = 0.5;
    GemmWorkload a = buildGemm(g, m1);
    g.seed = 999;
    GemmWorkload b = buildGemm(g, m2);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    bool any_diff = false;
    for (uint64_t off = 0; off < a.bBytes; off += 4)
        any_diff |= m1.readU32(a.bBase + off) !=
                    m2.readU32(b.bBase + off);
    EXPECT_TRUE(any_diff);
}

} // namespace
} // namespace save
