/**
 * @file
 * Precise-exception tests (paper SecIII end + SecV-B): inject a fault
 * mid-kernel, let the core squash and replay, and require the final
 * architectural state to be bitwise identical to an uninterrupted
 * in-order run — for every policy, both precisions, and with partial
 * mixed-precision results in flight at the squash point.
 */

#include <gtest/gtest.h>

#include <memory>

#include "kernels/gemm.h"
#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

struct FaultRun
{
    uint64_t cycles = 0;
    double exceptions = 0;
    double squashed = 0;
};

GemmConfig
kernel(Precision prec)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 32;
    g.tiles = 2;
    g.precision = prec;
    g.bsSparsity = 0.3;
    g.nbsSparsity = 0.5;
    g.seed = 77;
    return g;
}

/** Run with an optional fault; returns stats. C memory is checked
 *  against the in-order reference. */
FaultRun
runWithFault(const SaveConfig &scfg, const GemmConfig &g,
             int64_t fault_seq)
{
    MemoryImage image;
    GemmWorkload w = buildGemm(g, image);

    MachineConfig m;
    m.cores = 1;
    Multicore mc(m, scfg, 2, &image);
    w.warmup(mc.hierarchy());
    if (fault_seq >= 0)
        mc.core(0).injectFaultAtSeq(static_cast<uint64_t>(fault_seq));
    VectorTrace t(w.trace);
    mc.bindTraces({&t});

    FaultRun r;
    r.cycles = mc.run(10'000'000);
    r.exceptions = mc.core(0).stats().get("exceptions_serviced");
    r.squashed = mc.core(0).stats().get("uops_squashed");

    MemoryImage ref_image;
    GemmWorkload ref_w = buildGemm(g, ref_image);
    ArchExecutor ref(&ref_image);
    ref.run(ref_w.trace);
    for (uint64_t off = 0; off < w.cBytes; off += 4) {
        EXPECT_EQ(image.readU32(w.cBase + off),
                  ref_image.readU32(ref_w.cBase + off))
            << "offset " << off << " fault_seq " << fault_seq;
        if (image.readU32(w.cBase + off) !=
            ref_image.readU32(ref_w.cBase + off))
            break;
    }
    // No leaks after squash + replay + drain.
    Core &c = mc.core(0);
    EXPECT_EQ(c.prf.numFree(), c.prf.numRegs() - kLogicalVecRegs);
    EXPECT_TRUE(c.rob.empty());
    EXPECT_EQ(c.rs.size(), 0);
    return r;
}

TEST(Exceptions, Fp32SquashReplayIsTransparent)
{
    for (int64_t seq : {5, 100, 333, 700}) {
        FaultRun r = runWithFault(SaveConfig{}, kernel(Precision::Fp32),
                                  seq);
        EXPECT_EQ(r.exceptions, 1.0) << seq;
        EXPECT_GT(r.squashed, 0.0) << seq;
    }
}

TEST(Exceptions, BaselinePipelineAlsoSquashes)
{
    FaultRun r = runWithFault(SaveConfig::baseline(),
                              kernel(Precision::Fp32), 200);
    EXPECT_EQ(r.exceptions, 1.0);
}

TEST(Exceptions, HcPolicySquashes)
{
    SaveConfig s;
    s.policy = SchedPolicy::HC;
    FaultRun r = runWithFault(s, kernel(Precision::Fp32), 200);
    EXPECT_EQ(r.exceptions, 1.0);
}

TEST(Exceptions, MixedPrecisionPartialResultsDiscarded)
{
    // Faults land while chain compression has partial results in
    // flight; SecV-B requires them to be discarded and recomputed.
    for (int64_t seq : {50, 150, 400, 650}) {
        FaultRun r = runWithFault(SaveConfig{},
                                  kernel(Precision::Bf16), seq);
        EXPECT_EQ(r.exceptions, 1.0) << seq;
    }
}

TEST(Exceptions, MixedPrecisionWithoutCompression)
{
    SaveConfig s;
    s.mpCompress = false;
    FaultRun r = runWithFault(s, kernel(Precision::Bf16), 300);
    EXPECT_EQ(r.exceptions, 1.0);
}

TEST(Exceptions, FaultCostsHandlerLatencyAndReplay)
{
    GemmConfig g = kernel(Precision::Fp32);
    FaultRun clean = runWithFault(SaveConfig{}, g, -1);
    FaultRun faulted = runWithFault(SaveConfig{}, g, 300);
    EXPECT_EQ(clean.exceptions, 0.0);
    MachineConfig m;
    EXPECT_GE(faulted.cycles,
              clean.cycles + static_cast<uint64_t>(
                                 m.exceptionServiceCycles));
}

TEST(Exceptions, FaultOnSetMaskRestoresMaskState)
{
    // A write-masked kernel whose SetMask gets squashed and replayed:
    // mask state must be restored so the replay recomputes it.
    GemmConfig g = kernel(Precision::Fp32);
    g.useWriteMask = true;
    g.writeMask = 0x0ff0;
    // Seq 0 is the SetMask uop; fault right on it.
    FaultRun r = runWithFault(SaveConfig{}, g, 0);
    EXPECT_EQ(r.exceptions, 1.0);
    // And somewhere later, with the mask long applied.
    FaultRun r2 = runWithFault(SaveConfig{}, g, 250);
    EXPECT_EQ(r2.exceptions, 1.0);
}

TEST(Exceptions, WriteMaskedMpFault)
{
    GemmConfig g = kernel(Precision::Bf16);
    g.useWriteMask = true;
    g.writeMask = 0x3c3c;
    FaultRun r = runWithFault(SaveConfig{}, g, 320);
    EXPECT_EQ(r.exceptions, 1.0);
}

using FaultParam = std::tuple<SchedPolicy, int /*precision*/,
                              int /*fault seq step*/>;

class FaultSweep : public ::testing::TestWithParam<FaultParam>
{
};

TEST_P(FaultSweep, TransparentAcrossPoliciesAndPositions)
{
    auto [pol, prec, pos] = GetParam();
    SaveConfig s;
    s.policy = pol;
    GemmConfig g =
        kernel(prec ? Precision::Bf16 : Precision::Fp32);
    g.kSteps = 16; // keep the sweep quick
    FaultRun r = runWithFault(s, g, 40 + 90 * pos);
    EXPECT_EQ(r.exceptions, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultSweep,
    ::testing::Combine(::testing::Values(SchedPolicy::VC,
                                         SchedPolicy::RVC,
                                         SchedPolicy::HC),
                       ::testing::Values(0, 1),
                       ::testing::Range(0, 4)));

} // namespace
} // namespace save
