/**
 * @file
 * Shard coordinator tests: protocol-v2 frame round-trips and version
 * windows, the canonical point enumeration, and the coordinator
 * fault matrix — shard-count invariance, daemon crash mid-batch,
 * straggler rebalance, protocol version skew against a v1-emulating
 * daemon, and coordinator SIGKILL + journal resume recomputing zero
 * already-merged points. The acceptance bar throughout is that the
 * merged report is byte-identical to the single-host sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dnn/fig14_report.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "shard/coordinator.h"
#include "util/error.h"
#include "util/journal.h"
#include "util/posix_io.h"

using namespace save;

namespace {

std::string
tmpDir(const char *tag)
{
    std::string t = "/tmp/save_shard_test_" + std::string(tag) + "_" +
                    std::to_string(::getpid()) + "_XXXXXX";
    std::vector<char> buf(t.begin(), t.end());
    buf.push_back('\0');
    const char *d = ::mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

std::string
socketPath(const char *tag)
{
    static std::atomic<int> counter{0};
    return "/tmp/sh_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** The quick sweep knobs every test uses (the CI smoke config). */
Fig14Knobs
quickKnobs()
{
    Fig14Knobs k;
    k.gridStep = 9;
    k.kSteps = 8;
    k.tiles = 1;
    return k;
}

/** Single-host reference report for the quick knobs. */
const std::string &
referenceReport()
{
    static const std::string report = [] {
        EstimatorOptions eo;
        eo.gridStep = 9;
        eo.kSteps = 8;
        eo.tiles = 1;
        eo.cacheDir = "none";
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, eo);
        return fig14Report([&](const std::string &,
                               const Fig14Entry &e, bool training) {
            return training ? est.training(e.net, e.prec)
                            : est.inference(e.net, e.prec);
        });
    }();
    return report;
}

ShardCoordinator::Options
quickOptions()
{
    ShardCoordinator::Options o;
    o.knobs = quickKnobs();
    o.runtime.cacheDir = "none";
    o.runtime.threads = 2;
    return o;
}

/** Spawns the real save-serve binary and manages its lifetime. */
class DaemonProc
{
  public:
    void
    start(const std::string &socket,
          const std::vector<std::string> &extra_args = {})
    {
        socket_ = socket;
        std::vector<std::string> args;
        args.push_back(SAVE_SERVE_BIN_PATH);
        args.push_back("--socket=" + socket);
        args.push_back("--cache-dir=none");
        for (const std::string &a : extra_args)
            args.push_back(a);
        pid_ = ::fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            std::vector<char *> argv;
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(SAVE_SERVE_BIN_PATH, argv.data());
            ::_exit(127);
        }
    }

    bool
    waitReady(int timeout_ms = 15000)
    {
        ServeClient client(socket_);
        ServeRequest ping;
        ping.kind = ServeKind::Ping;
        for (int waited = 0; waited < timeout_ms; waited += 50) {
            try {
                client.call(ping, nullptr, 2000);
                return true;
            } catch (const SimError &) {
                ::usleep(50 * 1000);
            }
        }
        return false;
    }

    void
    kill9()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            int status;
            ::waitpid(pid_, &status, 0);
            pid_ = -1;
        }
    }

    ~DaemonProc()
    {
        kill9();
        if (!socket_.empty())
            ::unlink(socket_.c_str());
    }

  private:
    pid_t pid_ = -1;
    std::string socket_;
};

/** Run the save-shard binary with stdout/stderr captured to files;
 *  returns the pid (caller waits or kills). */
pid_t
spawnShard(const std::vector<std::string> &extra_args,
           const std::string &out_path, const std::string &err_path)
{
    std::vector<std::string> args;
    args.push_back(SAVE_SHARD_BIN_PATH);
    args.push_back("--grid=9");
    args.push_back("--ksteps=8");
    args.push_back("--tiles=1");
    args.push_back("--cache-dir=none");
    args.push_back("--threads=2");
    for (const std::string &a : extra_args)
        args.push_back(a);
    pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
        int out = ::open(out_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
        int err = ::open(err_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (out < 0 || err < 0)
            ::_exit(126);
        ::dup2(out, 1);
        ::dup2(err, 2);
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(SAVE_SHARD_BIN_PATH, argv.data());
        ::_exit(127);
    }
    return pid;
}

int
waitExit(pid_t pid, int timeout_ms = 120000)
{
    for (int waited = 0; waited <= timeout_ms; waited += 50) {
        int status = 0;
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid)
            return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        ::usleep(50 * 1000);
    }
    return -2;
}

std::string
slurp(const std::string &path)
{
    std::string text;
    readFileBytes(path, text, nullptr);
    return text;
}

} // namespace

// ---------------------------------------------------------------------
// Protocol v2 frames
// ---------------------------------------------------------------------

TEST(ShardProtocol, JobRoundtrip)
{
    ServeShardJob j;
    j.priority = ServePriority::High;
    j.deadlineMs = 4500;
    j.knobs = quickKnobs();
    j.points = {0, 3, 15};
    std::vector<uint8_t> p = serveEncodeShardJob(j);

    ServeShardJob d = serveDecodeShardJob(kServeVersion, p);
    EXPECT_EQ(d.priority, ServePriority::High);
    EXPECT_EQ(d.deadlineMs, 4500u);
    EXPECT_EQ(d.knobs.gridStep, 9);
    EXPECT_EQ(d.knobs.kSteps, 8);
    EXPECT_EQ(d.points, (std::vector<uint32_t>{0, 3, 15}));
}

TEST(ShardProtocol, JobRejectsBadVersions)
{
    ServeShardJob j;
    j.points = {1};
    std::vector<uint8_t> p = serveEncodeShardJob(j);
    // A v1 peer can never legally carry SSHD...
    EXPECT_THROW(serveDecodeShardJob(1, p), TraceError);
    // ...and a future version is a skew, not a guess.
    EXPECT_THROW(serveDecodeShardJob(kServeVersion + 1, p), TraceError);
}

TEST(ShardProtocol, JobRejectsTruncatedPointList)
{
    ServeShardJob j;
    j.points = {1, 2, 3};
    std::vector<uint8_t> p = serveEncodeShardJob(j);
    p.resize(p.size() - 4); // drop the last index
    EXPECT_THROW(serveDecodeShardJob(kServeVersion, p), TraceError);
}

TEST(ShardProtocol, AckRoundtrip)
{
    ServeShardAck a;
    a.index = 7;
    a.key = "train/GNMT MP pruned";
    a.result.baseline2.forward = 123.5;
    a.result.saveDynamic.bwdWeights = 9.25;
    std::vector<uint8_t> p = serveEncodeShardAck(a);

    ServeShardAck d = serveDecodeShardAck(p);
    EXPECT_EQ(d.index, 7u);
    EXPECT_EQ(d.key, "train/GNMT MP pruned");
    EXPECT_EQ(d.result.baseline2.forward, 123.5);
    EXPECT_EQ(d.result.saveDynamic.bwdWeights, 9.25);
}

TEST(ShardProtocol, RequestVersionWindow)
{
    ServeRequest r;
    r.kind = ServeKind::Ping;
    std::vector<uint8_t> p = serveEncodeRequest(r);
    // v1 requests must keep decoding on a v2 build (old clients).
    EXPECT_NO_THROW(serveDecodeRequest(1, p));
    EXPECT_NO_THROW(serveDecodeRequest(kServeVersion, p));
    EXPECT_THROW(serveDecodeRequest(0, p), TraceError);
    EXPECT_THROW(serveDecodeRequest(kServeVersion + 1, p), TraceError);
}

TEST(ShardProtocol, V1PredicateRejectsShardFrames)
{
    EXPECT_TRUE(serveKnownFourcc(kServeShardJob));
    EXPECT_FALSE(serveKnownFourccV1(kServeShardJob));
    EXPECT_TRUE(serveKnownFourccV1(kServeRequest));
}

TEST(ShardProtocol, PointEnumerationMatchesReportWalk)
{
    const std::vector<Fig14Point> &pts = fig14Points();
    ASSERT_EQ(static_cast<int>(pts.size()), fig14PointCount());

    // The renderer must ask for keys in exactly the enumeration
    // order — that equality is what makes index-addressed dispatch
    // and key-ordered merging the same thing.
    std::vector<std::string> walk;
    fig14Report([&](const std::string &key, const Fig14Entry &,
                    bool) -> NetResult {
        walk.push_back(key);
        return NetResult{};
    });
    ASSERT_EQ(walk.size(), pts.size());
    for (size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(walk[i], pts[i].key) << "index " << i;
}

TEST(ShardProtocol, SocketListParsing)
{
    EXPECT_TRUE(shardParseSockets("").empty());
    EXPECT_EQ(shardParseSockets("a.sock"),
              (std::vector<std::string>{"a.sock"}));
    EXPECT_EQ(shardParseSockets("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(shardParseSockets(",a,,b,"),
              (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------------
// Coordinator fault matrix
// ---------------------------------------------------------------------

TEST(ShardCoordinator, RejectsEmptyBackendSet)
{
    ShardCoordinator::Options o = quickOptions();
    o.inprocLanes = 0;
    EXPECT_THROW(ShardCoordinator{std::move(o)}, ConfigError);
}

TEST(ShardCoordinator, ShardCountInvariance)
{
    // 1, 2, and 8 backends must all merge to the identical report.
    for (int lanes : {1, 2, 8}) {
        ShardCoordinator::Options o = quickOptions();
        o.inprocLanes = lanes;
        ShardCoordinator coord(std::move(o));
        EXPECT_EQ(coord.run(), referenceReport())
            << lanes << " in-process lanes";
    }
}

TEST(ShardCoordinator, MixedBackendIdentity)
{
    std::string s1 = socketPath("mixed1");
    std::string s2 = socketPath("mixed2");
    DaemonProc d1, d2;
    d1.start(s1, {"--workers=1"});
    d2.start(s2, {"--workers=1"});
    ASSERT_TRUE(d1.waitReady());
    ASSERT_TRUE(d2.waitReady());

    ShardCoordinator::Options o = quickOptions();
    o.inprocLanes = 2;
    o.sockets = {s1, s2};
    o.batch = 3;
    ShardCoordinator coord(std::move(o));
    EXPECT_EQ(coord.run(), referenceReport());
    EXPECT_EQ(coord.stats().backendsExcluded, 0u);
    EXPECT_EQ(coord.stats().computed, fig14Points().size());
}

TEST(ShardCoordinator, DaemonCrashMidBatchDegradesGracefully)
{
    std::string s = socketPath("crash");
    // Slow the daemon down so the kill is guaranteed mid-batch.
    ::setenv("SAVE_SERVE_TEST_POINT_DELAY_MS", "300", 1);
    DaemonProc d;
    d.start(s, {"--workers=1"});
    ::unsetenv("SAVE_SERVE_TEST_POINT_DELAY_MS");
    ASSERT_TRUE(d.waitReady());

    ShardCoordinator::Options o = quickOptions();
    o.inprocLanes = 1;
    o.sockets = {s};
    o.batch = 8;
    o.rpcTimeoutMs = 10000;
    ShardCoordinator coord(std::move(o));

    std::thread killer([&] {
        ::usleep(700 * 1000);
        d.kill9();
    });
    std::string report = coord.run();
    killer.join();

    // The crash re-queued the daemon's claimed points and the
    // in-process lane finished them: same bytes, no hang.
    EXPECT_EQ(report, referenceReport());
    EXPECT_GE(coord.stats().requeues, 1u);
}

TEST(ShardCoordinator, StragglerRebalance)
{
    std::string s = socketPath("slow");
    ::setenv("SAVE_SERVE_TEST_POINT_DELAY_MS", "1500", 1);
    DaemonProc d;
    d.start(s, {"--workers=1"});
    ::unsetenv("SAVE_SERVE_TEST_POINT_DELAY_MS");
    ASSERT_TRUE(d.waitReady());

    ShardCoordinator::Options o = quickOptions();
    o.inprocLanes = 1;
    o.sockets = {s};
    o.batch = 2;
    o.stragglerMs = 100;
    o.rpcTimeoutMs = 30000;
    ShardCoordinator coord(std::move(o));
    std::string report = coord.run();

    // The fast in-process lane stole the slow daemon's in-flight
    // points; the first completion won and the merge is unchanged.
    EXPECT_EQ(report, referenceReport());
    EXPECT_GE(coord.stats().speculative, 1u);
}

TEST(ShardCoordinator, VersionSkewExcludesV1Daemon)
{
    std::string s = socketPath("v1");
    DaemonProc d;
    d.start(s, {"--workers=1", "--v1-compat"});
    ASSERT_TRUE(d.waitReady());

    // The emulated old daemon advertises v1 and still answers v1
    // single requests...
    ServeClient client(s);
    ServeRequest sreq;
    sreq.kind = ServeKind::Status;
    ServeClient::Reply status = client.call(sreq, nullptr, 5000);
    ASSERT_EQ(status.kind, ServeClient::Reply::Kind::Ok);
    EXPECT_EQ(status.status.version, 1u);

    // ...and rejects a batched shard job with a typed Trace error
    // instead of hanging or dying.
    ServeShardJob job;
    job.knobs = quickKnobs();
    job.points = {0};
    ServeClient::Reply shard = client.callShard(job, nullptr, 5000);
    ASSERT_EQ(shard.kind, ServeClient::Reply::Kind::Error);
    EXPECT_EQ(shard.error.kind, WireErrorKind::Trace);

    // The coordinator negotiates, excludes it with a warning, and
    // completes on the remaining backend — bytes unchanged.
    ShardCoordinator::Options o = quickOptions();
    o.inprocLanes = 1;
    o.sockets = {s};
    ShardCoordinator coord(std::move(o));
    EXPECT_EQ(coord.run(), referenceReport());
    EXPECT_EQ(coord.stats().backendsExcluded, 1u);
}

TEST(ShardCoordinator, JournalInterchangesWithBench)
{
    std::string dir = tmpDir("journal");
    std::string jpath = dir + "/sweep.journal";

    // First run journals every point...
    {
        ShardCoordinator::Options o = quickOptions();
        o.inprocLanes = 2;
        o.journalPath = jpath;
        ShardCoordinator coord(std::move(o));
        EXPECT_EQ(coord.run(), referenceReport());
        EXPECT_EQ(coord.stats().resumed, 0u);
        EXPECT_EQ(coord.stats().computed, fig14Points().size());
    }
    // ...and a resumed run recomputes zero points.
    {
        ShardCoordinator::Options o = quickOptions();
        o.inprocLanes = 2;
        o.journalPath = jpath;
        ShardCoordinator coord(std::move(o));
        EXPECT_EQ(coord.run(), referenceReport());
        EXPECT_EQ(coord.stats().resumed, fig14Points().size());
        EXPECT_EQ(coord.stats().computed, 0u);
    }
}

TEST(ShardCoordinator, CoordinatorKillThenJournalResume)
{
    std::string dir = tmpDir("kill");
    std::string jpath = dir + "/sweep.journal";

    // Run the real binary and SIGKILL it once the journal shows
    // progress (a coordinator crash, not a graceful stop).
    pid_t pid = spawnShard({"--inproc=1", "--journal=" + jpath},
                           dir + "/out1", dir + "/err1");
    ASSERT_GT(pid, 0);
    bool progressed = false;
    for (int waited = 0; waited < 120000; waited += 50) {
        std::string text = slurp(jpath);
        size_t lines =
            static_cast<size_t>(std::count(text.begin(), text.end(),
                                           '\n'));
        if (lines >= 4) { // header + >= 3 completed points
            progressed = true;
            break;
        }
        ::usleep(50 * 1000);
    }
    ASSERT_TRUE(progressed) << "first run never journaled 3 points";
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    ASSERT_FALSE(WIFEXITED(status)); // killed, not exited

    // The resumed run must replay every journaled point (recompute
    // zero already-merged points) and still match the reference.
    pid = spawnShard({"--inproc=1", "--journal=" + jpath},
                     dir + "/out2", dir + "/err2");
    ASSERT_GT(pid, 0);
    ASSERT_EQ(waitExit(pid), 0);
    EXPECT_EQ(slurp(dir + "/out2"), referenceReport());

    std::string err = slurp(dir + "/err2");
    std::smatch m;
    ASSERT_TRUE(std::regex_search(
        err, m,
        std::regex(R"((\d+) point\(s\) resumed, (\d+) computed)")))
        << err;
    const int resumed = std::atoi(m[1].str().c_str());
    const int computed = std::atoi(m[2].str().c_str());
    EXPECT_GE(resumed, 3);
    EXPECT_EQ(resumed + computed, fig14PointCount());
}
