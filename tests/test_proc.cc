/**
 * @file
 * Out-of-process slice execution (src/proc): wire-codec framing and
 * corruption handling, worker crash/hang/OOM containment and
 * bit-identical recovery, pool degradation under a crash storm, and
 * journal resume including the poisoned-record upgrade path.
 *
 * Faults are injected deterministically (SAVE_FAULT_INJECT travels to
 * the exec'd save-worker via the environment), so every containment
 * path runs on every CI invocation. Assertions target recovery and
 * bit-identity, not exact signal numbers: sanitizers legitimately turn
 * a SIGSEGV death into a nonzero exit, and both triage as a crash.
 */

#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include "../bench/bench_util.h"
#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "proc/wire_codec.h"
#include "proc/worker.h"
#include "proc/worker_pool.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/journal.h"
#include "util/logging.h"
#include "util/posix_io.h"

#ifndef SAVE_WORKER_BIN_PATH
#error "test_proc requires SAVE_WORKER_BIN_PATH (set by CMake)"
#endif

namespace save {
namespace {

/** Fast estimator knobs; isolation left at the in-process default. */
EstimatorOptions
fastOptions(int threads = 2)
{
    EstimatorOptions o;
    o.kSteps = 24;
    o.tiles = 1;
    o.gridStep = 9;
    o.threads = threads;
    o.cacheDir = "none";
    return o;
}

/** fastOptions running under the sandboxed worker pool. */
EstimatorOptions
procOptions(int threads = 2)
{
    EstimatorOptions o = fastOptions(threads);
    o.isolation = "process";
    o.proc.workerBin = SAVE_WORKER_BIN_PATH;
    o.proc.sliceTimeoutMs = 10000;
    o.proc.backoffBaseMs = 1;
    o.proc.backoffMaxMs = 20;
    return o;
}

NetworkModel
tinyNet()
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(3);
    return net;
}

bool
bytesEqual(const NetResult &a, const NetResult &b)
{
    return std::memcmp(&a, &b, sizeof(NetResult)) == 0;
}

/** The fault-free in-process reference result for tinyNet training.
 *  Computed once; the fixture guarantees injection is off whenever a
 *  test body runs, so the first caller gets a clean run. */
const NetResult &
referenceResult()
{
    static const NetResult ref = [] {
        TrainingEstimator est(MachineConfig{}, SaveConfig{},
                              fastOptions());
        return est.training(tinyNet(), Precision::Fp32);
    }();
    return ref;
}

class ProcTest : public ::testing::Test
{
  protected:
    ProcTest()
    {
        FaultInjector::global().reset();
        ::unsetenv("SAVE_FAULT_INJECT");
        ::unsetenv("SAVE_ISOLATION");
        dir_ = std::filesystem::temp_directory_path() /
               ("save-proc-test-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    ~ProcTest() override
    {
        FaultInjector::global().reset();
        ::unsetenv("SAVE_FAULT_INJECT");
        std::filesystem::remove_all(dir_);
    }

    /** Run tinyNet training under process isolation with the fault
     *  spec exported to the workers (they read SAVE_FAULT_INJECT at
     *  exec; the parent-side injector stays clean). The estimator is
     *  kept alive in est_ so tests can inspect the pool afterwards. */
    NetResult
    faultedProcRun(const char *fault_spec, const EstimatorOptions &o)
    {
        if (fault_spec)
            ::setenv("SAVE_FAULT_INJECT", fault_spec, 1);
        est_ = std::make_unique<TrainingEstimator>(MachineConfig{},
                                                   SaveConfig{}, o);
        NetResult r = est_->training(tinyNet(), Precision::Fp32);
        ::unsetenv("SAVE_FAULT_INJECT");
        return r;
    }

    std::filesystem::path dir_;
    std::unique_ptr<TrainingEstimator> est_;
};

// --------------------------------------------------------- wire codec

TEST_F(ProcTest, WireFrameRoundTripsOverAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<uint8_t> payload = {1, 2, 3, 250, 251, 252};
    ASSERT_TRUE(wireWrite(fds[1], kWireResult, 7, payload));
    WireFrame f;
    ASSERT_EQ(wireRead(fds[0], f, 1000), WireRead::Ok);
    EXPECT_EQ(f.fourcc, kWireResult);
    EXPECT_EQ(f.arg, 7u);
    EXPECT_EQ(f.payload, payload);

    // Empty payloads are legal (HACK/BYE frames).
    ASSERT_TRUE(wireWrite(fds[1], kWireBye, 0, {}));
    ASSERT_EQ(wireRead(fds[0], f, 1000), WireRead::Ok);
    EXPECT_EQ(f.fourcc, kWireBye);
    EXPECT_TRUE(f.payload.empty());

    ::close(fds[1]);
    EXPECT_EQ(wireRead(fds[0], f, 1000), WireRead::Eof);
    ::close(fds[0]);
}

TEST_F(ProcTest, WireReadTimesOutInsteadOfHanging)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    WireFrame f;
    EXPECT_EQ(wireRead(fds[0], f, 50), WireRead::Timeout);

    // A frame truncated mid-payload must also hit the deadline, not
    // block forever waiting for bytes that will never come.
    std::vector<uint8_t> buf;
    tracePutU32(buf, kWireResult);
    tracePutU32(buf, 0);
    tracePutU64(buf, 100); // promises 100 payload bytes
    tracePutU32(buf, 0);
    ASSERT_EQ(writeFull(fds[1], buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
    EXPECT_EQ(wireRead(fds[0], f, 50), WireRead::Timeout);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_F(ProcTest, WireReadRejectsTruncatedFrame)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<uint8_t> buf;
    tracePutU32(buf, kWireResult);
    tracePutU32(buf, 0);
    tracePutU64(buf, 100);
    tracePutU32(buf, 0);
    buf.push_back(0xaa); // 1 of the promised 100 bytes
    ASSERT_EQ(writeFull(fds[1], buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
    ::close(fds[1]); // peer dies mid-frame
    WireFrame f;
    EXPECT_THROW(wireRead(fds[0], f, 1000), TraceError);
    ::close(fds[0]);
}

TEST_F(ProcTest, WireReadRejectsBitFlippedPayload)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<uint8_t> payload(64, 0x5c);
    std::vector<uint8_t> buf;
    tracePutU32(buf, kWireResult);
    tracePutU32(buf, 0);
    tracePutU64(buf, payload.size());
    tracePutU32(buf, traceCrc32(payload.data(), payload.size()));
    buf.insert(buf.end(), payload.begin(), payload.end());
    buf[kTraceChunkHeaderBytes + 13] ^= 0x04; // flip one payload bit
    ASSERT_EQ(writeFull(fds[1], buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
    WireFrame f;
    EXPECT_THROW(wireRead(fds[0], f, 1000), TraceError);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST_F(ProcTest, WireReadRejectsUnknownFourccAndInsaneLength)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<uint8_t> buf;
    tracePutU32(buf, traceFourcc('J', 'U', 'N', 'K'));
    tracePutU32(buf, 0);
    tracePutU64(buf, 0);
    tracePutU32(buf, traceCrc32(nullptr, 0));
    ASSERT_EQ(writeFull(fds[1], buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
    WireFrame f;
    EXPECT_THROW(wireRead(fds[0], f, 1000), TraceError);

    buf.clear();
    tracePutU32(buf, kWireResult);
    tracePutU32(buf, 0);
    tracePutU64(buf, kWireMaxPayload + 1); // corrupt length field
    tracePutU32(buf, 0);
    ASSERT_EQ(writeFull(fds[1], buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
    EXPECT_THROW(wireRead(fds[0], f, 1000), TraceError);
    ::close(fds[0]);
    ::close(fds[1]);
}

/** Seeded single-bit-flip fuzz over a valid frame: every mutation
 *  must resolve quickly as Ok (flip hit the uncovered arg field or
 *  cancelled out) or TraceError — never a hang, never a SimError
 *  escape, never garbage payload passed off as Ok. */
TEST_F(ProcTest, WireCodecFuzzedBitFlipsNeverHang)
{
    WireSliceResult res;
    res.timeNs = 1234.5;
    res.cycles = 99;
    res.coreGhz = 1.7;
    res.stats = {{"cycles", 99.0}, {"vpu.macs", 1e6}};
    std::vector<uint8_t> payload = wireEncodeSliceResult(res);

    std::vector<uint8_t> clean;
    tracePutU32(clean, kWireResult);
    tracePutU32(clean, 3);
    tracePutU64(clean, payload.size());
    tracePutU32(clean, traceCrc32(payload.data(), payload.size()));
    clean.insert(clean.end(), payload.begin(), payload.end());

    uint64_t rng = 0x5eed;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int i = 0; i < 200; ++i) {
        std::vector<uint8_t> fuzzed = clean;
        size_t byte = next() % fuzzed.size();
        fuzzed[byte] ^= static_cast<uint8_t>(1u << (next() % 8));

        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(writeFull(fds[1], fuzzed.data(), fuzzed.size()),
                  static_cast<ssize_t>(fuzzed.size()));
        ::close(fds[1]);
        WireFrame f;
        try {
            WireRead st = wireRead(fds[0], f, 500);
            ASSERT_NE(st, WireRead::Timeout)
                << "flip at byte " << byte << " stalled the reader";
            if (st == WireRead::Ok && byte >= 8) {
                // Any flip outside fourcc/arg is CRC- or
                // length-covered; Ok means the payload is intact.
                EXPECT_EQ(f.payload, payload);
            }
        } catch (const TraceError &) {
            // Detected corruption: the intended outcome.
        }
        ::close(fds[0]);
    }
}

TEST_F(ProcTest, SessionInitAndErrorPayloadsRoundTrip)
{
    WireSessionInit init;
    init.mcfg = MachineConfig{};
    init.scfg = SaveConfig{};
    init.tiles = 3;
    init.cores = 2;
    init.seed = 77;
    init.rssCapMb = 512;
    init.configHash = 0xdeadbeef;
    WireSessionInit back =
        wireDecodeSessionInit(wireEncodeSessionInit(init));
    EXPECT_EQ(back.tiles, 3);
    EXPECT_EQ(back.cores, 2);
    EXPECT_EQ(back.seed, 77u);
    EXPECT_EQ(back.rssCapMb, 512);
    EXPECT_EQ(back.configHash, 0xdeadbeefull);
    // Field comparison, not whole-struct memcmp: assignment need not
    // copy padding bytes, and padding carries no protocol meaning.
    EXPECT_EQ(back.mcfg.cores, init.mcfg.cores);
    EXPECT_EQ(back.mcfg.numVpus, init.mcfg.numVpus);
    EXPECT_DOUBLE_EQ(back.mcfg.freq2VpuGhz, init.mcfg.freq2VpuGhz);
    EXPECT_DOUBLE_EQ(back.mcfg.dramGBps, init.mcfg.dramGBps);
    EXPECT_EQ(back.scfg.enabled, init.scfg.enabled);
    EXPECT_EQ(back.scfg.rotationStates, init.scfg.rotationStates);

    WireErrorInfo err;
    err.kind = WireErrorKind::Deadlock;
    err.what = "no retirement progress";
    WireErrorInfo eback = wireDecodeError(wireEncodeError(err));
    EXPECT_THROW(wireThrowError(eback), DeadlockError);

    err.kind = WireErrorKind::Config;
    EXPECT_THROW(wireThrowError(wireDecodeError(wireEncodeError(err))),
                 ConfigError);
}

// ---------------------------------------------- worker-binary lookup

TEST_F(ProcTest, ResolveWorkerBinRejectsMissingPaths)
{
    EXPECT_THROW(resolveWorkerBin("/nonexistent/save-worker"),
                 ConfigError);
    ::setenv("SAVE_WORKER_BIN", "/nonexistent/save-worker", 1);
    EXPECT_THROW(resolveWorkerBin(""), ConfigError);
    ::unsetenv("SAVE_WORKER_BIN");
    EXPECT_EQ(resolveWorkerBin(SAVE_WORKER_BIN_PATH),
              SAVE_WORKER_BIN_PATH);
}

TEST_F(ProcTest, PoolCtorRejectsBadKnobsAndMissingBinary)
{
    ProcOptions p;
    p.workerBin = SAVE_WORKER_BIN_PATH;
    p.sliceTimeoutMs = 0;
    EXPECT_THROW(WorkerPool(p, WireSessionInit{}), ConfigError);
    p = ProcOptions{};
    p.workerBin = "/nonexistent/save-worker";
    EXPECT_THROW(WorkerPool(p, WireSessionInit{}), ConfigError);
    EstimatorOptions o = procOptions();
    o.proc.maxWorkerCrashes = 0;
    EXPECT_THROW(TrainingEstimator(MachineConfig{}, SaveConfig{}, o),
                 ConfigError);
    o = procOptions();
    o.isolation = "container"; // not a mode
    EXPECT_THROW(TrainingEstimator(MachineConfig{}, SaveConfig{}, o),
                 ConfigError);
}

// ------------------------------------------------- bit-identity paths

TEST_F(ProcTest, ProcessIsolationIsBitIdenticalToInProcess)
{
    NetResult ref = referenceResult();

    TrainingEstimator proc_est(MachineConfig{}, SaveConfig{},
                               procOptions());
    EXPECT_EQ(proc_est.isolation(), "process");
    ASSERT_NE(proc_est.processPool(), nullptr);
    NetResult proc = proc_est.training(tinyNet(), Precision::Fp32);
    EXPECT_TRUE(bytesEqual(ref, proc));
    EXPECT_GT(proc_est.processPool()->slicesRun(), 0u);
    EXPECT_EQ(proc_est.processPool()->crashes(), 0);
    EXPECT_TRUE(proc_est.failures().empty());

    EstimatorOptions none = fastOptions();
    none.isolation = "none";
    TrainingEstimator serial_est(MachineConfig{}, SaveConfig{}, none);
    EXPECT_EQ(serial_est.isolation(), "none");
    EXPECT_EQ(serial_est.threads(), 1); // none forces strictly serial
    NetResult serial = serial_est.training(tinyNet(), Precision::Fp32);
    EXPECT_TRUE(bytesEqual(ref, serial));
}

TEST_F(ProcTest, WorkerCountDoesNotChangeResults)
{
    NetResult ref = referenceResult();
    for (int workers : {1, 4}) {
        EstimatorOptions o = procOptions();
        o.proc.workers = workers;
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        EXPECT_EQ(est.processPool()->workerCount(), workers);
        EXPECT_TRUE(bytesEqual(
            ref, est.training(tinyNet(), Precision::Fp32)));
    }
}

TEST_F(ProcTest, WorkerRecyclingRespawnsAndStaysBitIdentical)
{
    NetResult ref = referenceResult();
    EstimatorOptions o = procOptions();
    o.proc.maxSlicesPerWorker = 1; // recycle after every slice
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
    setQuietLogging(true);
    NetResult r = est.training(tinyNet(), Precision::Fp32);
    setQuietLogging(false);
    EXPECT_TRUE(bytesEqual(ref, r));
    EXPECT_GT(est.processPool()->respawns(), 0);
    EXPECT_EQ(est.processPool()->crashes(), 0);
}

// --------------------------------------- injected process-level faults

TEST_F(ProcTest, InjectedCrashRecoversBitIdentically)
{
    const NetResult &ref = referenceResult();
    setQuietLogging(true);
    EstimatorOptions o = procOptions();
    o.proc.maxWorkerCrashes = 1000;
    NetResult r = faultedProcRun("crash=0.4,times=1,seed=3", o);
    setQuietLogging(false);
    EXPECT_TRUE(bytesEqual(ref, r));
    EXPECT_TRUE(est_->failures().empty()) << est_->failureReport();
    EXPECT_GT(est_->processPool()->crashes(), 0); // faults did fire
    EXPECT_FALSE(est_->processPool()->degraded());
}

TEST_F(ProcTest, InjectedAbortRecoversBitIdentically)
{
    const NetResult &ref = referenceResult();
    setQuietLogging(true);
    EstimatorOptions o = procOptions();
    o.proc.maxWorkerCrashes = 1000;
    NetResult r = faultedProcRun("abort=0.4,times=1,seed=4", o);
    setQuietLogging(false);
    EXPECT_TRUE(bytesEqual(ref, r));
    EXPECT_TRUE(est_->failures().empty()) << est_->failureReport();
    EXPECT_GT(est_->processPool()->crashes(), 0);
}

TEST_F(ProcTest, InjectedOomRecoversBitIdentically)
{
    const NetResult &ref = referenceResult();
    setQuietLogging(true);
    EstimatorOptions o = procOptions();
    o.proc.maxWorkerCrashes = 1000;
    NetResult r = faultedProcRun("oom=0.4,times=1,seed=5", o);
    setQuietLogging(false);
    EXPECT_TRUE(bytesEqual(ref, r));
    EXPECT_TRUE(est_->failures().empty()) << est_->failureReport();
}

TEST_F(ProcTest, InjectedHangIsKilledAtTheDeadlineAndRecovers)
{
    const NetResult &ref = referenceResult();
    setQuietLogging(true);
    EstimatorOptions o = procOptions();
    o.proc.sliceTimeoutMs = 400; // hangs cost 0.4 s each, not forever
    o.proc.maxWorkerCrashes = 1000;
    NetResult r = faultedProcRun("hang=0.15,times=1,seed=6", o);
    setQuietLogging(false);
    EXPECT_TRUE(bytesEqual(ref, r));
    EXPECT_TRUE(est_->failures().empty()) << est_->failureReport();
    EXPECT_GT(est_->processPool()->crashes(), 0); // deadline kills
}

/** The ISSUE's acceptance scenario: all four fault modes at once,
 *  recovered within the retry budget, bit-identical to fault-free. */
TEST_F(ProcTest, AllFourFaultModesRecoverBitIdentically)
{
    const NetResult &ref = referenceResult();
    setQuietLogging(true);
    EstimatorOptions o = procOptions();
    o.proc.sliceTimeoutMs = 400;
    o.proc.maxWorkerCrashes = 1000;
    NetResult r = faultedProcRun(
        "crash=0.2,abort=0.1,hang=0.1,oom=0.1,times=1,seed=7", o);
    setQuietLogging(false);
    EXPECT_TRUE(bytesEqual(ref, r));
    EXPECT_TRUE(est_->failures().empty()) << est_->failureReport();
}

TEST_F(ProcTest, CrashStormDegradesToInProcessGracefully)
{
    const NetResult &ref = referenceResult();
    setQuietLogging(true);
    EstimatorOptions o = procOptions();
    o.proc.maxWorkerCrashes = 4;
    // Every attempt of every slice crashes the worker: the pool must
    // spend its budget, drain, and finish the sweep in-process.
    NetResult r = faultedProcRun("crash=1,times=999,seed=8", o);
    setQuietLogging(false);
    EXPECT_TRUE(est_->processPool()->degraded());
    // In-flight slices on other workers may crash concurrently with
    // the one that spends the last budget unit, so >= not ==.
    EXPECT_GE(est_->processPool()->crashes(), 4);
    // Post-degradation slices run in-process (where the injector's
    // process faults never fire), so the sweep completes and the
    // fallback values match the reference bit-for-bit.
    EXPECT_TRUE(bytesEqual(ref, r));
    std::string report = est_->failureReport();
    EXPECT_NE(report.find("DEGRADED"), std::string::npos) << report;
}

TEST_F(ProcTest, InProcessIsolationRefusesProcessFaultModes)
{
    FaultInjector::global().configure(
        FaultInjector::parsePlan("crash=0.5"));
    EXPECT_THROW(
        TrainingEstimator(MachineConfig{}, SaveConfig{}, fastOptions()),
        ConfigError);
    EstimatorOptions none = fastOptions();
    none.isolation = "none";
    EXPECT_THROW(
        TrainingEstimator(MachineConfig{}, SaveConfig{}, none),
        ConfigError);
    // The same plan is accepted under process isolation.
    FaultInjector::global().configure(
        FaultInjector::parsePlan("hang=0.5"));
    EXPECT_NO_THROW(
        TrainingEstimator(MachineConfig{}, SaveConfig{}, procOptions()));
    FaultInjector::global().reset();
}

// ------------------------------------------------------ journal resume

TEST_F(ProcTest, PoisonedJournalRecordsAreReattemptedOnResume)
{
    std::string path = (dir_ / "poison.jrnl").string();
    NetResult poisoned{};
    poisoned.save2.forward = std::numeric_limits<double>::quiet_NaN();
    NetResult good{};
    good.save2.forward = 42.0;
    ASSERT_TRUE(sweepResultPoisoned(poisoned));
    ASSERT_FALSE(sweepResultPoisoned(good));

    // An older run journaled a poisoned result (the pre-fix behavior).
    {
        SweepJournal j(path, 0);
        j.record("p", SweepJournal::encode(poisoned));
    }

    SweepOptions so;
    so.journalPath = path;
    {
        SweepRunner runner(so);
        // The poisoned record must read as a miss and recompute...
        NetResult r = runner.point<NetResult>(
            "p", [&] { return good; });
        EXPECT_TRUE(bytesEqual(r, good));
        EXPECT_EQ(runner.resumedPoints(), 0u);
        EXPECT_EQ(runner.computedPoints(), 1u);
    }
    {
        // ...and the recomputed value supersedes it for future resumes.
        SweepRunner runner(so);
        NetResult r = runner.point<NetResult>("p", [&]() -> NetResult {
            ADD_FAILURE() << "resumed point must not recompute";
            return NetResult{};
        });
        EXPECT_TRUE(bytesEqual(r, good));
        EXPECT_EQ(runner.resumedPoints(), 1u);
    }
}

TEST_F(ProcTest, PoisonedResultsAreNeverJournaledAsSuccesses)
{
    std::string path = (dir_ / "nopoison.jrnl").string();
    NetResult poisoned{};
    poisoned.baseline2.firstLayer =
        std::numeric_limits<double>::quiet_NaN();

    SweepOptions so;
    so.journalPath = path;
    {
        SweepRunner runner(so);
        NetResult r =
            runner.point<NetResult>("p", [&] { return poisoned; });
        EXPECT_TRUE(sweepResultPoisoned(r)); // caller still sees it
    }
    SweepJournal j(path, 0);
    EXPECT_FALSE(j.lookup("p")); // but it never reached the journal
}

TEST_F(ProcTest, JournalResumesAfterParentKilledMidSweep)
{
    std::string path = (dir_ / "killed.jrnl").string();

    // Child: journal 2 of 4 points, then die the way SIGKILL would —
    // no destructors, no flush beyond record()'s own write.
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        SweepOptions so;
        so.journalPath = path;
        SweepRunner runner(so);
        runner.point<double>("p0", [] { return 10.0; });
        runner.point<double>("p1", [] { return 11.0; });
        ::_exit(9);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 9);

    // Parent: the resumed sweep replays the journaled points and
    // computes only the missing ones.
    setQuietLogging(true);
    SweepOptions so;
    so.journalPath = path;
    SweepRunner runner(so);
    int computed = 0;
    for (int i = 0; i < 4; ++i) {
        double v = runner.point<double>(
            "p" + std::to_string(i), [&] {
                ++computed;
                return 10.0 + i;
            });
        EXPECT_DOUBLE_EQ(v, 10.0 + i);
    }
    setQuietLogging(false);
    EXPECT_EQ(runner.resumedPoints(), 2u);
    EXPECT_EQ(computed, 2);
}

} // namespace
} // namespace save
