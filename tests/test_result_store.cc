/**
 * @file
 * Content-addressed result store (cache/result_store.h) tests: key
 * derivation and delegation, bit-exact record round-trips, corruption
 * quarantine (manual tampering and SAVE_FAULT_INJECT cache modes),
 * LRU eviction under a byte cap, cross-process single-flight (forked
 * writers), v1 surface-cache migration, and cold/warm estimator
 * bit-identity across every isolation mode.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "cache/cas_key.h"
#include "cache/result_store.h"
#include "dnn/estimator.h"
#include "dnn/networks.h"
#include "dnn/surface_cache.h"
#include "util/fault_injection.h"

#ifndef SAVE_WORKER_BIN_PATH
#error "test_result_store requires SAVE_WORKER_BIN_PATH (set by CMake)"
#endif

namespace save {
namespace {

namespace fs = std::filesystem;

/** Bit-exact double comparison (distinguishes -0.0, NaN payloads). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

class ResultStoreTest : public ::testing::Test
{
  protected:
    ResultStoreTest()
    {
        FaultInjector::global().reset();
        dir_ = fs::temp_directory_path() /
               ("save-cas-test-" + std::to_string(::getpid()));
        std::error_code ec;
        fs::remove_all(dir_, ec);
        fs::create_directories(dir_);
    }

    ~ResultStoreTest() override
    {
        FaultInjector::global().reset();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    ResultStore::Options
    opts(uint64_t max_bytes = 0) const
    {
        ResultStore::Options o;
        o.dir = dir_.string();
        o.maxBytes = max_bytes;
        return o;
    }

    /** Flip one bit inside the first record frame header of a file. */
    static void
    flipBit(const std::string &path, std::streamoff offset)
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good()) << path;
        f.seekg(offset);
        char byte = 0;
        f.read(&byte, 1);
        byte ^= 0x01;
        f.seekp(offset);
        f.write(&byte, 1);
    }

    fs::path dir_;
};

CasValue
makeValue(double time_ns, uint64_t cycles = 100, double ghz = 1.7)
{
    CasValue v;
    v.timeNs = time_ns;
    v.cycles = cycles;
    v.coreGhz = ghz;
    return v;
}

// --------------------------------------------------------------------
// Key derivation

TEST_F(ResultStoreTest, ConfigDigestIsStableAndDelegated)
{
    MachineConfig m;
    SaveConfig s;
    uint64_t base = casHashConfig(m, s, 0);
    EXPECT_EQ(base, casHashConfig(m, s, 0));
    // SurfaceCache::hashConfig delegates to casHashConfig: the trace
    // header, the v1 cache, and the CAS must agree forever.
    EXPECT_EQ(base, SurfaceCache::hashConfig(m, s, 0));

    MachineConfig m2 = m;
    m2.dramGBps += 1.0;
    EXPECT_NE(base, casHashConfig(m2, s, 0));
    SaveConfig s2 = s;
    s2.policy = SchedPolicy::VC;
    EXPECT_NE(base, casHashConfig(m, s2, 0));
    EXPECT_NE(base, casHashConfig(m, s, 1));
}

TEST_F(ResultStoreTest, WorkloadDigestsCoverEveryField)
{
    const SliceKey base{4, 6, 192, 0, 0, 1, 2, 3, 5};
    const uint64_t h = casSliceWorkload(base);
    EXPECT_EQ(h, casSliceWorkload(base)); // stable

    // Every field must shift the digest: two distinct surface points
    // colliding would silently serve one's time as the other's.
    SliceKey k = base;
    k.mr = 5;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.nr = 7;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.kSteps = 24;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.pattern = 1;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.precision = 1;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.saveOn = 0;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.vpus = 1;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.wBin = 4;
    EXPECT_NE(h, casSliceWorkload(k));
    k = base;
    k.aBin = 6;
    EXPECT_NE(h, casSliceWorkload(k));

    GemmConfig g;
    const uint64_t gh = casGemmWorkload(g, 1, 2);
    EXPECT_EQ(gh, casGemmWorkload(g, 1, 2));
    GemmConfig g2 = g;
    g2.bsSparsity = 0.5;
    EXPECT_NE(gh, casGemmWorkload(g2, 1, 2));
    g2 = g;
    g2.seed = 99;
    EXPECT_NE(gh, casGemmWorkload(g2, 1, 2));
    EXPECT_NE(gh, casGemmWorkload(g, 2, 2));
    EXPECT_NE(gh, casGemmWorkload(g, 1, 1));

    // A slice key and a gemm config never share a digest: the two
    // serializations carry distinct leading domain tags.
    EXPECT_NE(casSliceWorkload(base), casGemmWorkload(g, 1, 2));
}

// --------------------------------------------------------------------
// Record round-trip

TEST_F(ResultStoreTest, RoundTripIsBitExactAcrossReopen)
{
    const CasKey key{0xdeadbeefcafef00dull, 0x0123456789abcdefull};
    CasValue in;
    in.timeNs = 1.0 / 3.0; // not representable exactly: bit fidelity
    in.cycles = 0xffffffffffffffffull;
    in.coreGhz = 2.1;
    in.stats = {
        {"denormal", 4.9406564584124654e-324},
        {"huge", 1.7976931348623157e308},
        {"negzero", -0.0},
        {"uops", 123456.0},
        {"", 42.0}, // empty stat name must survive framing
    };
    {
        ResultStore store(opts());
        ASSERT_TRUE(store.enabled());
        EXPECT_TRUE(store.insert(key, in));
        EXPECT_EQ(store.inserts(), 1u);
        EXPECT_EQ(store.records(), 1u);
        EXPECT_GT(store.bytes(), 0u);
    }

    ResultStore store(opts());
    EXPECT_EQ(store.records(), 1u);
    CasValue out;
    ASSERT_TRUE(store.lookup(key, &out));
    EXPECT_TRUE(sameBits(in.timeNs, out.timeNs));
    EXPECT_EQ(in.cycles, out.cycles);
    EXPECT_TRUE(sameBits(in.coreGhz, out.coreGhz));
    ASSERT_EQ(in.stats.size(), out.stats.size());
    for (size_t i = 0; i < in.stats.size(); ++i) {
        EXPECT_EQ(in.stats[i].first, out.stats[i].first);
        EXPECT_TRUE(sameBits(in.stats[i].second, out.stats[i].second))
            << in.stats[i].first;
    }
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_FALSE(store.lookup(CasKey{1, 2}, nullptr));
    EXPECT_EQ(store.misses(), 1u);
}

TEST_F(ResultStoreTest, InsertRefusesPoisonAndDeduplicates)
{
    ResultStore store(opts());
    const CasKey key{7, 9};

    // NaN-poisoned results (exhausted retries) must never persist.
    EXPECT_FALSE(
        store.insert(key, makeValue(std::nan(""))));
    EXPECT_FALSE(store.insert(
        key, makeValue(std::numeric_limits<double>::infinity())));
    EXPECT_EQ(store.records(), 0u);
    EXPECT_EQ(store.inserts(), 0u);

    EXPECT_TRUE(store.insert(key, makeValue(5.0)));
    const uint64_t bytes = store.bytes();
    // A duplicate insert is an idempotent success: results land once.
    EXPECT_TRUE(store.insert(key, makeValue(999.0)));
    EXPECT_EQ(store.inserts(), 1u);
    EXPECT_EQ(store.bytes(), bytes);
    CasValue out;
    ASSERT_TRUE(store.lookup(key, &out));
    EXPECT_EQ(out.timeNs, 5.0); // first value wins
}

TEST_F(ResultStoreTest, DisabledStoreIsInert)
{
    ResultStore store(ResultStore::Options{});
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.insert(CasKey{1, 2}, makeValue(1.0)));
    EXPECT_FALSE(store.lookup(CasKey{1, 2}, nullptr));
    // A disabled store hands every caller flight ownership so the
    // single-flight wrapper degrades to "just compute".
    EXPECT_TRUE(store.beginFlight(CasKey{1, 2}).owner());
    CasValue v;
    EXPECT_FALSE(store.waitForResult(CasKey{1, 2}, &v, 10));
}

TEST_F(ResultStoreTest, ResolveHelpersHonourEnvironment)
{
    EXPECT_EQ(ResultStore::resolveDir("none"), "");
    EXPECT_EQ(ResultStore::resolveDir("-"), "");
    EXPECT_EQ(ResultStore::resolveDir("/x/y"), "/x/y");
    ::setenv("SAVE_CACHE_DIR", "/env/cache", 1);
    EXPECT_EQ(ResultStore::resolveDir(""), "/env/cache");
    EXPECT_EQ(ResultStore::resolveDir("none"), ""); // "none" beats env
    ::unsetenv("SAVE_CACHE_DIR");
    EXPECT_EQ(ResultStore::resolveDir(""), "");

    EXPECT_EQ(ResultStore::resolveMaxBytes(3), 3ull << 20);
    ::setenv("SAVE_CACHE_MAX_MB", "2", 1);
    EXPECT_EQ(ResultStore::resolveMaxBytes(0), 2ull << 20);
    ::setenv("SAVE_CACHE_MAX_MB", "banana", 1);
    EXPECT_EQ(ResultStore::resolveMaxBytes(0), 0u);
    ::unsetenv("SAVE_CACHE_MAX_MB");
    EXPECT_EQ(ResultStore::resolveMaxBytes(0), 0u);
    EXPECT_EQ(ResultStore::resolveMaxBytes(-1), 0u);
}

// --------------------------------------------------------------------
// Corruption quarantine

TEST_F(ResultStoreTest, TornTailQuarantinesButKeepsValidatedPrefix)
{
    // Two keys in the same shard: shard = (cfg ^ wl) & 15.
    const CasKey k1{1, 0};
    const CasKey k2{17, 0};
    std::string shard;
    {
        ResultStore store(opts());
        ASSERT_TRUE(store.insert(k1, makeValue(1.5)));
        ASSERT_TRUE(store.insert(k2, makeValue(2.5)));
        shard = store.shardPath(1);
        ASSERT_TRUE(fs::exists(shard));
    }
    // Tear the second record's payload (a crash mid-append).
    const auto size = fs::file_size(shard);
    fs::resize_file(shard, size - 5);

    ResultStore store(opts());
    EXPECT_EQ(store.quarantines(), 1u);
    EXPECT_TRUE(fs::exists(shard + ".corrupt"));
    // The record validated before the tear survives (re-appended to a
    // fresh shard file); the torn one is gone.
    CasValue out;
    ASSERT_TRUE(store.lookup(k1, &out));
    EXPECT_TRUE(sameBits(out.timeNs, 1.5));
    EXPECT_FALSE(store.lookup(k2, nullptr));
    EXPECT_EQ(store.records(), 1u);

    // The store stays fully usable after quarantine.
    EXPECT_TRUE(store.insert(k2, makeValue(2.5)));
    EXPECT_TRUE(store.lookup(k2, &out));
}

TEST_F(ResultStoreTest, BitflipQuarantinesShard)
{
    const CasKey key{3, 0};
    std::string shard;
    {
        ResultStore store(opts());
        ASSERT_TRUE(store.insert(key, makeValue(9.0)));
        shard = store.shardPath(3);
    }
    flipBit(shard, 1); // inside the frame fourcc

    ResultStore store(opts());
    EXPECT_EQ(store.quarantines(), 1u);
    EXPECT_TRUE(fs::exists(shard + ".corrupt"));
    EXPECT_FALSE(store.lookup(key, nullptr));
    // Fresh inserts land in a clean replacement file.
    EXPECT_TRUE(store.insert(key, makeValue(9.0)));
    {
        ResultStore reread(opts());
        CasValue out;
        EXPECT_TRUE(reread.lookup(key, &out));
        EXPECT_TRUE(sameBits(out.timeNs, 9.0));
    }
}

TEST_F(ResultStoreTest, CrcCatchesPayloadCorruption)
{
    const CasKey key{5, 0};
    std::string shard;
    {
        ResultStore store(opts());
        ASSERT_TRUE(store.insert(key, makeValue(4.0)));
        shard = store.shardPath(5);
    }
    // Flip a payload byte (past the 20-byte frame header): the header
    // still parses, so only the CRC can catch this.
    flipBit(shard, 28);

    ResultStore store(opts());
    EXPECT_EQ(store.quarantines(), 1u);
    EXPECT_FALSE(store.lookup(key, nullptr));
}

TEST_F(ResultStoreTest, FaultInjectedTamperingAtOpenQuarantines)
{
    const CasKey key{6, 0};
    {
        ResultStore store(opts());
        ASSERT_TRUE(store.insert(key, makeValue(7.0)));
    }
    // SAVE_FAULT_INJECT cache-bitflip corrupts existing shards before
    // the warm open parses them — the CI cache-smoke recovery drill.
    FaultInjector::global().configure(
        FaultInjector::parsePlan("cache-bitflip=1.0,seed=5"));
    {
        ResultStore store(opts());
        EXPECT_GE(store.quarantines(), 1u);
        EXPECT_FALSE(store.lookup(key, nullptr));
    }
    FaultInjector::global().reset();

    // A warm run after the drill starts from the quarantined state and
    // repopulates cleanly.
    ResultStore store(opts());
    EXPECT_TRUE(store.insert(key, makeValue(7.0)));
    CasValue out;
    EXPECT_TRUE(store.lookup(key, &out));
}

TEST_F(ResultStoreTest, FaultInjectedTamperingAfterInsert)
{
    const CasKey key{8, 0};
    FaultInjector::global().configure(
        FaultInjector::parsePlan("cache-truncate=1.0,seed=11"));
    {
        ResultStore store(opts());
        ASSERT_TRUE(store.insert(key, makeValue(3.0)));
        // The in-memory index is unaffected by the at-rest damage.
        CasValue out;
        EXPECT_TRUE(store.lookup(key, &out));
        EXPECT_TRUE(sameBits(out.timeNs, 3.0));
    }
    FaultInjector::global().reset();

    // The next open finds the truncated file, quarantines it, and
    // reports a miss instead of serving garbage.
    ResultStore store(opts());
    EXPECT_EQ(store.quarantines(), 1u);
    EXPECT_FALSE(store.lookup(key, nullptr));
    EXPECT_TRUE(fs::exists(store.shardPath(8) + ".corrupt"));
}

// --------------------------------------------------------------------
// Eviction

TEST_F(ResultStoreTest, LruEvictionUnderTinyCap)
{
    // A stat-less record frame is 64 bytes; cap at 4 of them.
    const uint64_t cap = 256;
    ResultStore store(opts(cap));
    const int n = 12;
    for (int i = 1; i <= n; ++i)
        ASSERT_TRUE(
            store.insert(CasKey{static_cast<uint64_t>(i), 0},
                         makeValue(static_cast<double>(i))));

    EXPECT_GT(store.evictions(), 0u);
    EXPECT_LT(store.records(), static_cast<uint64_t>(n));
    EXPECT_LE(store.bytes(), cap);
    // The most recently inserted record always survives.
    CasValue out;
    EXPECT_TRUE(
        store.lookup(CasKey{static_cast<uint64_t>(n), 0}, &out));
    EXPECT_TRUE(sameBits(out.timeNs, static_cast<double>(n)));

    // Compaction left only valid frames behind: a reopen sees exactly
    // the survivors, bit-identical.
    const uint64_t survivors = store.records();
    ResultStore reread(opts());
    EXPECT_EQ(reread.records(), survivors);
    EXPECT_EQ(reread.quarantines(), 0u);
    EXPECT_TRUE(
        reread.lookup(CasKey{static_cast<uint64_t>(n), 0}, &out));
    EXPECT_TRUE(sameBits(out.timeNs, static_cast<double>(n)));
}

TEST_F(ResultStoreTest, RefreshSeesOtherHandlesAppends)
{
    // Two handles on one directory model two processes: appends by
    // one become visible to the other after refresh() (the mechanism
    // waitForResult polls through).
    ResultStore reader(opts());
    ResultStore writer(opts());
    const CasKey key{0xabc, 0xdef};
    EXPECT_FALSE(reader.lookup(key, nullptr));
    ASSERT_TRUE(writer.insert(key, makeValue(6.25)));
    EXPECT_FALSE(reader.lookup(key, nullptr)); // index is a snapshot
    reader.refresh();
    CasValue out;
    ASSERT_TRUE(reader.lookup(key, &out));
    EXPECT_TRUE(sameBits(out.timeNs, 6.25));
}

// --------------------------------------------------------------------
// Single-flight

TEST_F(ResultStoreTest, FlightOwnershipAndRelease)
{
    ResultStore store(opts());
    const CasKey key{21, 42};

    ResultStore::Flight f1 = store.beginFlight(key);
    EXPECT_TRUE(f1.owner());
    EXPECT_TRUE(fs::exists(store.flightPath(key)));
    // The lock is held by a live pid (ours): followers must wait.
    ResultStore::Flight f2 = store.beginFlight(key);
    EXPECT_FALSE(f2.owner());

    // A follower whose owner never lands a result times out...
    CasValue v;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(store.waitForResult(key, &v, 150));
    EXPECT_GE(std::chrono::steady_clock::now() - t0,
              std::chrono::milliseconds(100));

    // ...and an owner that inserts before releasing hands followers
    // the result immediately.
    ASSERT_TRUE(store.insert(key, makeValue(11.0)));
    f1.release();
    EXPECT_FALSE(fs::exists(store.flightPath(key)));
    ASSERT_TRUE(store.waitForResult(key, &v, 5000));
    EXPECT_TRUE(sameBits(v.timeNs, 11.0));

    // With the lock gone, the next claimant owns the flight again.
    ResultStore::Flight f3 = store.beginFlight(key);
    EXPECT_TRUE(f3.owner());
}

TEST_F(ResultStoreTest, WaitReturnsEarlyWhenOwnerVanishes)
{
    ResultStore store(opts());
    const CasKey key{33, 44};
    // No flight lock, no record: the wait must return well before the
    // timeout so the caller can simulate the point itself.
    CasValue v;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(store.waitForResult(key, &v, 30000));
    EXPECT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(5));
}

/** Set a file's mtime (and atime) `sec` seconds into the past. */
void
backdate(const std::string &path, long sec)
{
    struct timespec times[2];
    times[0].tv_sec = ::time(nullptr) - sec;
    times[0].tv_nsec = 0;
    times[1] = times[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
}

long
mtimeOf(const std::string &path)
{
    struct stat st;
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return static_cast<long>(st.st_mtime);
}

/** Fork-and-reap: a pid that is provably dead. */
pid_t
deadPid()
{
    pid_t dead = ::fork();
    EXPECT_GE(dead, 0);
    if (dead == 0)
        ::_exit(0);
    int st = 0;
    EXPECT_EQ(::waitpid(dead, &st, 0), dead);
    return dead;
}

TEST_F(ResultStoreTest, FlightLockBreakNeedsDeadPidAndStaleMtime)
{
    ResultStore store(opts());
    const CasKey key{55, 66};
    const std::string lock = store.flightPath(key);

    // Dead pid, fresh mtime: NOT broken. This is the pid-reuse hazard
    // — the kernel may have recycled the owner's pid, but a fresh
    // heartbeat proves somebody is still working the point.
    {
        std::ofstream f(lock);
        f << static_cast<long>(deadPid()) << "\n";
    }
    EXPECT_FALSE(store.beginFlight(key).owner());

    // Live pid (ours), stale mtime: NOT broken either — a provably
    // live holder is just slow.
    {
        std::ofstream f(lock);
        f << static_cast<long>(::getpid()) << "\n";
    }
    backdate(lock, 600);
    EXPECT_FALSE(store.beginFlight(key).owner());

    // Dead pid AND stale mtime: the owner crashed long ago — break
    // the lock and claim ownership so the sweep never wedges.
    {
        std::ofstream f(lock);
        f << static_cast<long>(deadPid()) << "\n";
    }
    backdate(lock, 600);
    EXPECT_TRUE(store.beginFlight(key).owner());
}

TEST_F(ResultStoreTest, UnparseableFlightLockBreaksOnlyWhenStale)
{
    ResultStore store(opts());
    const CasKey key{57, 68};
    const std::string lock = store.flightPath(key);

    // A lock whose pid cannot be parsed (another host, torn write)
    // cannot vouch for liveness via the pid probe; only its heartbeat
    // protects it.
    {
        std::ofstream f(lock);
        f << "not-a-pid\n";
    }
    EXPECT_FALSE(store.beginFlight(key).owner()); // fresh: follower
    backdate(lock, 600);
    EXPECT_TRUE(store.beginFlight(key).owner()); // stale: broken
}

TEST_F(ResultStoreTest, OwnerHeartbeatRefreshesLockMtime)
{
    ResultStore store(opts());
    const CasKey key{59, 70};

    ResultStore::Flight f = store.beginFlight(key);
    ASSERT_TRUE(f.owner());
    const std::string lock = store.flightPath(key);

    // Simulate a long-running owner: age the lock past the staleness
    // window, then force one heartbeat pass (the background thread
    // does the same every few seconds).
    backdate(lock, 600);
    store.touchActiveFlights();
    EXPECT_GT(mtimeOf(lock), ::time(nullptr) - 60);

    // With the heartbeat landed, a second store cannot break the lock
    // even though the pid half alone would not save an aged lock
    // against e.g. a reused-pid false positive.
    ResultStore other(opts());
    EXPECT_FALSE(other.beginFlight(key).owner());

    // After release the heartbeat set shrinks and a beat recreates
    // nothing.
    f.release();
    store.touchActiveFlights();
    EXPECT_FALSE(fs::exists(lock));
}

TEST_F(ResultStoreTest, ForkedWritersSingleFlight)
{
    const CasKey key{0x5eed, 0xf00d};
    const std::string marker = (dir_ / "sims.txt").string();
    constexpr int kProcs = 4;

    std::vector<pid_t> kids;
    for (int i = 0; i < kProcs; ++i) {
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: one independent process racing for the key. The
            // marker file counts actual "simulations" via O_APPEND
            // one-line writes.
            ResultStore store(
                ResultStore::Options{dir_.string(), 0});
            CasValue v;
            if (store.lookup(key, &v))
                ::_exit(sameBits(v.timeNs, 42.0) ? 0 : 2);
            ResultStore::Flight fl = store.beginFlight(key);
            if (!fl.owner()) {
                bool ok = store.waitForResult(key, &v, 20000);
                ::_exit(ok && sameBits(v.timeNs, 42.0) ? 0 : 3);
            }
            // Owner: re-check after winning the lock — a previous
            // owner may have landed the result and released already.
            store.refresh();
            if (store.lookup(key, &v))
                ::_exit(sameBits(v.timeNs, 42.0) ? 0 : 4);
            int fd = ::open(marker.c_str(),
                            O_WRONLY | O_APPEND | O_CREAT, 0644);
            if (fd < 0)
                ::_exit(5);
            char line[32];
            int len = std::snprintf(line, sizeof line, "%ld\n",
                                    static_cast<long>(::getpid()));
            if (::write(fd, line, static_cast<size_t>(len)) != len)
                ::_exit(5);
            ::close(fd);
            // Hold the flight long enough that every sibling has had
            // to choose follower before the result lands.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            if (!store.insert(key, makeValue(42.0)))
                ::_exit(6);
            ::_exit(0);
        }
        kids.push_back(pid);
    }

    for (pid_t pid : kids) {
        int st = 0;
        ASSERT_EQ(::waitpid(pid, &st, 0), pid);
        EXPECT_TRUE(WIFEXITED(st));
        EXPECT_EQ(WEXITSTATUS(st), 0);
    }

    // Exactly one process simulated; everyone else hit or waited.
    std::ifstream in(marker);
    int owners = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++owners;
    EXPECT_EQ(owners, 1);

    ResultStore store(opts());
    CasValue v;
    ASSERT_TRUE(store.lookup(key, &v));
    EXPECT_TRUE(sameBits(v.timeNs, 42.0));
}

// --------------------------------------------------------------------
// Estimator integration

EstimatorOptions
fastOptions(const std::string &cache_dir)
{
    EstimatorOptions o;
    o.kSteps = 24;
    o.tiles = 1;
    o.gridStep = 9;
    o.threads = 2;
    o.cacheDir = cache_dir;
    return o;
}

/** Mirror of the estimator's private optionSalt (seed, tiles, cores):
 *  keeps the v1-migration test honest about the config digest. */
uint64_t
optionSaltOf(const EstimatorOptions &o)
{
    uint64_t salt = o.seed;
    salt = salt * 1000003ull + static_cast<uint64_t>(o.tiles);
    salt = salt * 1000003ull + static_cast<uint64_t>(o.cores);
    return salt;
}

TEST_F(ResultStoreTest, WarmRunsAreBitIdenticalAcrossIsolationModes)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(2);

    const std::string cache = (dir_ / "cas").string();
    NetResult cold;
    uint64_t cold_sims = 0;
    {
        EstimatorOptions o = fastOptions(cache);
        o.isolation = "none";
        o.threads = 1;
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        cold = est.inference(net, Precision::Fp32);
        cold_sims = est.simulations();
        ASSERT_GT(cold_sims, 0u);
    }

    for (const char *iso : {"none", "thread", "process"}) {
        EstimatorOptions o = fastOptions(cache);
        o.isolation = iso;
        if (o.isolation == "process") {
            o.proc.workerBin = SAVE_WORKER_BIN_PATH;
            o.proc.workers = 2;
        }
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        NetResult warm = est.inference(net, Precision::Fp32);
        EXPECT_EQ(est.simulations(), 0u) << iso;
        EXPECT_EQ(est.persistentHits(), cold_sims) << iso;
        EXPECT_EQ(std::memcmp(&cold, &warm, sizeof cold), 0) << iso;
    }
}

TEST_F(ResultStoreTest, WorkerProcessesPersistTheirOwnResults)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(2);
    const std::string serial_dir = (dir_ / "serial").string();
    const std::string worker_dir = (dir_ / "workers").string();

    NetResult serial;
    {
        EstimatorOptions o = fastOptions(serial_dir);
        o.isolation = "none";
        o.threads = 1;
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        serial = est.inference(net, Precision::Fp32);
    }

    // Cold run under process isolation: every slice simulates inside
    // a sandboxed worker, and the *worker* persists it before
    // replying — the parent must not append duplicates.
    {
        EstimatorOptions o = fastOptions(worker_dir);
        o.isolation = "process";
        o.proc.workerBin = SAVE_WORKER_BIN_PATH;
        o.proc.workers = 2;
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        NetResult out = est.inference(net, Precision::Fp32);
        EXPECT_EQ(std::memcmp(&serial, &out, sizeof out), 0);
        EXPECT_GT(est.simulations(), 0u);
        ASSERT_NE(est.resultStore(), nullptr);
        EXPECT_EQ(est.resultStore()->inserts(), 0u)
            << "parent duplicated worker-persisted records";
    }

    // The worker-written store warms an in-process run completely.
    {
        EstimatorOptions o = fastOptions(worker_dir);
        o.isolation = "none";
        o.threads = 1;
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        NetResult warm = est.inference(net, Precision::Fp32);
        EXPECT_EQ(est.simulations(), 0u);
        EXPECT_GT(est.persistentHits(), 0u);
        EXPECT_EQ(std::memcmp(&serial, &warm, sizeof warm), 0);
    }
}

TEST_F(ResultStoreTest, V1SurfaceFilesMigrateIntoTheStore)
{
    EstimatorOptions o = fastOptions(dir_.string());
    const uint64_t hash = SurfaceCache::hashConfig(
        MachineConfig{}, SaveConfig{}, optionSaltOf(o));

    SurfaceCache v1(dir_.string(), hash);
    std::vector<SurfaceRecord> recs(3);
    for (int i = 0; i < 3; ++i) {
        recs[static_cast<size_t>(i)] = SurfaceRecord{
            4, 6, 24, 0, 0, 1, 2, static_cast<uint8_t>(i), 0, 100.0 + i};
    }
    ASSERT_TRUE(v1.save(recs));
    ASSERT_TRUE(fs::exists(v1.path()));

    {
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        // The ctor folded the v1 records into the CAS and renamed the
        // old file so it is migrated exactly once.
        ASSERT_NE(est.resultStore(), nullptr);
        EXPECT_EQ(est.resultStore()->records(), 3u);
        EXPECT_FALSE(fs::exists(v1.path()));
        EXPECT_TRUE(fs::exists(v1.path() + ".migrated"));

        // The migrated records answer real surface lookups.
        const uint64_t cfg =
            casHashConfig(MachineConfig{}, SaveConfig{},
                          optionSaltOf(o));
        ResultStore reread(opts());
        CasValue out;
        ASSERT_TRUE(reread.lookup(
            CasKey{cfg, casSliceWorkload(
                            SliceKey{4, 6, 24, 0, 0, 1, 2, 1, 0})},
            &out));
        EXPECT_TRUE(sameBits(out.timeNs, 101.0));
    }

    // A second estimator must not re-migrate (or double-count).
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
    EXPECT_EQ(est.resultStore()->records(), 3u);
}

TEST_F(ResultStoreTest, PoisonedSlicesNeverReachTheStore)
{
    NetworkModel net = vgg16Dense();
    net.convLayers.resize(1);

    // Every slice fails more times than the retry budget allows: the
    // whole surface is NaN-poisoned.
    FaultInjector::global().configure(
        FaultInjector::parsePlan("slice=1.0,times=99,seed=3"));
    {
        EstimatorOptions o = fastOptions(dir_.string());
        o.isolation = "none";
        o.threads = 1;
        o.maxRetries = 0;
        TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
        NetResult out = est.inference(net, Precision::Fp32);
        EXPECT_TRUE(sweepResultPoisoned(out));
        EXPECT_FALSE(est.failures().empty());
        ASSERT_NE(est.resultStore(), nullptr);
        EXPECT_EQ(est.resultStore()->inserts(), 0u);
        EXPECT_EQ(est.resultStore()->records(), 0u);
    }
    FaultInjector::global().reset();

    // With the fault gone, a resumed run on the same directory finds
    // no poison: it simulates cleanly and persists finite results.
    EstimatorOptions o = fastOptions(dir_.string());
    o.isolation = "none";
    o.threads = 1;
    TrainingEstimator est(MachineConfig{}, SaveConfig{}, o);
    NetResult out = est.inference(net, Precision::Fp32);
    EXPECT_FALSE(sweepResultPoisoned(out));
    EXPECT_GT(est.simulations(), 0u);
    EXPECT_GT(est.resultStore()->records(), 0u);
}

} // namespace
} // namespace save
