/**
 * @file
 * Stall fast-forward equivalence (SAVE_FASTFORWARD).
 *
 * The fast-forward jumps the clock over quiescent stretches instead of
 * ticking through them, so it must be a pure host-time optimization:
 * every run here executes the same workload with SAVE_FASTFORWARD=0
 * and =1 and requires the final cycle count and the *entire* stat map
 * to be bit-identical (exact double equality, not a tolerance).
 * Coverage: both scheduler policies, FP32 and BF16, dense and 80%
 * sparse, GEMM / conv-lowered / LSTM-lowered slices, a sharded
 * multicore run, and a fault-injected forced-watchdog run (the error
 * path must fire at the same cycle either way).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "kernels/lstm.h"
#include "mem/memory_image.h"
#include "sim/multicore.h"
#include "util/error.h"
#include "util/fault_injection.h"

namespace save {
namespace {

struct FfRun
{
    uint64_t cycles = 0;
    std::map<std::string, double> stats;
    uint64_t ffJumps = 0;
    uint64_t ffSkipped = 0;
};

/** One run with the given fast-forward setting. SAVE_FASTFORWARD is
 *  read per Core construction, so toggling the environment between
 *  machine builds is sufficient. */
FfRun
runGemm(bool ff, const SaveConfig &scfg, const GemmConfig &g,
        int cores = 1)
{
    setenv("SAVE_FASTFORWARD", ff ? "1" : "0", 1);
    MachineConfig m;
    m.cores = cores;
    MemoryImage image;
    auto shards = buildShardedGemm(g, image, cores);
    Multicore mc(m, scfg, 2, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (auto &w : shards) {
        w.warmup(mc.hierarchy());
        traces.push_back(std::make_unique<VectorTrace>(w.trace));
        srcs.push_back(traces.back().get());
    }
    mc.bindTraces(srcs);

    FfRun r;
    r.cycles = mc.run();
    r.stats = mc.aggregateStats().all();
    for (int c = 0; c < cores; ++c) {
        r.ffJumps += mc.core(c).ffJumps();
        r.ffSkipped += mc.core(c).ffCyclesSkipped();
    }
    unsetenv("SAVE_FASTFORWARD");
    return r;
}

void
expectIdentical(const FfRun &off, const FfRun &on)
{
    EXPECT_EQ(off.ffJumps, 0u) << "FF=0 run must not jump";
    EXPECT_EQ(off.cycles, on.cycles);
    ASSERT_EQ(off.stats.size(), on.stats.size());
    auto a = off.stats.begin();
    auto b = on.stats.begin();
    for (; a != off.stats.end(); ++a, ++b) {
        ASSERT_EQ(a->first, b->first);
        // Exact: stats must be bit-identical, not merely close.
        EXPECT_EQ(a->second, b->second) << a->first;
    }
}

GemmConfig
slice(double bs, double nbs, Precision prec)
{
    GemmConfig g;
    g.mr = 7;
    g.nrVecs = 3;
    g.kSteps = 96;
    g.tiles = 3;
    g.pattern = BroadcastPattern::Embedded;
    g.precision = prec;
    g.bsSparsity = bs;
    g.nbsSparsity = nbs;
    g.seed = 11;
    return g;
}

TEST(FastForward, GemmPoliciesPrecisionsSparsities)
{
    struct Case
    {
        const char *name;
        SaveConfig scfg;
        GemmConfig g;
    };
    const Case cases[] = {
        {"baseline_fp32_dense", SaveConfig::baseline(),
         slice(0.0, 0.0, Precision::Fp32)},
        {"baseline_fp32_sparse80", SaveConfig::baseline(),
         slice(0.8, 0.8, Precision::Fp32)},
        {"rvc_fp32_dense", SaveConfig{}, slice(0.0, 0.0, Precision::Fp32)},
        {"rvc_fp32_sparse50", SaveConfig{},
         slice(0.5, 0.5, Precision::Fp32)},
        {"rvc_fp32_sparse80", SaveConfig{},
         slice(0.8, 0.8, Precision::Fp32)},
        {"rvc_bf16_sparse80", SaveConfig{},
         slice(0.8, 0.8, Precision::Bf16)},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        FfRun off = runGemm(false, c.scfg, c.g);
        FfRun on = runGemm(true, c.scfg, c.g);
        expectIdentical(off, on);
    }
}

TEST(FastForward, ActuallyJumps)
{
    // The equivalence tests above would pass trivially if fast-forward
    // never engaged; pin that it does real work on a plain slice.
    FfRun on = runGemm(true, SaveConfig{}, slice(0.0, 0.0, Precision::Fp32));
    EXPECT_GT(on.ffJumps, 0u);
    EXPECT_GT(on.ffSkipped, 0u);
}

TEST(FastForward, ConvLoweredSlice)
{
    ConvLayer layer;
    layer.name = "conv3x3";
    layer.inC = 64;
    layer.outC = 64;
    layer.ih = 28;
    layer.iw = 28;
    KernelSpec spec = makeConvKernel(layer, Phase::Forward, 8);
    GemmConfig g = spec.slice(Precision::Fp32, 0.4, 0.6, 64, 5);

    FfRun off = runGemm(false, SaveConfig{}, g);
    FfRun on = runGemm(true, SaveConfig{}, g);
    expectIdentical(off, on);
}

TEST(FastForward, LstmLoweredSlice)
{
    LstmCell cell;
    cell.name = "gnmt";
    cell.inputDim = 512;
    cell.hiddenDim = 512;
    cell.batch = 32;
    cell.timeSteps = 4;
    KernelSpec spec = makeLstmKernel(cell, Phase::Forward);
    GemmConfig g = spec.slice(Precision::Bf16, 0.6, 0.3, 64, 5);

    FfRun off = runGemm(false, SaveConfig{}, g);
    FfRun on = runGemm(true, SaveConfig{}, g);
    expectIdentical(off, on);
}

TEST(FastForward, MulticoreSharded)
{
    // Lock-step fast-forward: all cores must agree on quiescence, and
    // the aggregate stats must still match cycle-accurate stepping.
    GemmConfig g = slice(0.5, 0.5, Precision::Fp32);
    FfRun off = runGemm(false, SaveConfig{}, g, 4);
    FfRun on = runGemm(true, SaveConfig{}, g, 4);
    expectIdentical(off, on);
}

TEST(FastForward, ForcedWatchdogFiresAtSameCycle)
{
    FaultPlan plan;
    plan.watchdogCore = 0;
    plan.watchdogAfterCycles = 200;
    FaultInjector::global().configure(plan);

    auto firing_cycle = [](bool ff) -> uint64_t {
        setenv("SAVE_FASTFORWARD", ff ? "1" : "0", 1);
        MachineConfig m;
        m.cores = 1;
        MemoryImage image;
        GemmConfig g = slice(0.3, 0.3, Precision::Fp32);
        auto shards = buildShardedGemm(g, image, 1);
        Multicore mc(m, SaveConfig{}, 2, &image);
        shards[0].warmup(mc.hierarchy());
        VectorTrace trace(shards[0].trace);
        mc.bindTraces({&trace});
        uint64_t at = 0;
        try {
            mc.run();
            ADD_FAILURE() << "expected DeadlockError";
        } catch (const DeadlockError &e) {
            at = e.context().cycle;
        }
        unsetenv("SAVE_FASTFORWARD");
        return at;
    };

    uint64_t off = firing_cycle(false);
    uint64_t on = firing_cycle(true);
    FaultInjector::global().reset();

    EXPECT_GE(off, 200u);
    EXPECT_EQ(off, on);
}

} // namespace
} // namespace save
