/**
 * @file
 * Tests for the SparseTrain-style software-skipping baseline: the
 * transformed trace must compute the same result, drop exactly the
 * zero-broadcast VFMA groups, and be insensitive to non-broadcasted
 * sparsity.
 */

#include <gtest/gtest.h>

#include <memory>

#include "kernels/sparsetrain.h"
#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

GemmConfig
cfgWith(double bs, double nbs)
{
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 3;
    g.kSteps = 32;
    g.tiles = 2;
    g.bsSparsity = bs;
    g.nbsSparsity = nbs;
    g.seed = 21;
    return g;
}

TEST(SparseTrain, ResultMatchesDenseTrace)
{
    // Same seed -> same data; the software-skipped trace must leave
    // the same final C as the unmodified trace, both run in-order.
    GemmConfig g = cfgWith(0.5, 0.3);
    MemoryImage m1, m2;
    GemmWorkload plain = buildGemm(g, m1);
    GemmWorkload sw = buildSparseTrainGemm(g, m2);

    ArchExecutor e1(&m1), e2(&m2);
    e1.run(plain.trace);
    e2.run(sw.trace);
    for (uint64_t off = 0; off < plain.cBytes; off += 4)
        ASSERT_EQ(m1.readU32(plain.cBase + off),
                  m2.readU32(sw.cBase + off));
}

TEST(SparseTrain, SkipsExactlyZeroBroadcastGroups)
{
    GemmConfig g = cfgWith(1.0, 0.0); // every broadcast zero
    MemoryImage m;
    GemmWorkload w = buildSparseTrainGemm(g, m);
    for (const Uop &u : w.trace)
        EXPECT_FALSE(u.isVfma()) << "all VFMAs should be skipped";

    GemmConfig d = cfgWith(0.0, 0.0); // dense: nothing skipped
    MemoryImage md;
    GemmWorkload wd = buildSparseTrainGemm(d, md);
    size_t vfmas = 0;
    for (const Uop &u : wd.trace)
        vfmas += u.isVfma();
    EXPECT_EQ(vfmas, static_cast<size_t>(d.tiles) * d.kSteps * d.mr *
                         d.nrVecs);
}

TEST(SparseTrain, AddsCheckOverheadPerBroadcast)
{
    GemmConfig g = cfgWith(0.0, 0.0);
    MemoryImage m1, m2;
    GemmWorkload plain = buildGemm(g, m1);
    GemmWorkload sw = buildSparseTrainGemm(g, m2, 2);
    size_t bcasts = static_cast<size_t>(g.tiles) * g.kSteps * g.mr;
    EXPECT_EQ(sw.trace.size(), plain.trace.size() + 2 * bcasts);
}

TEST(SparseTrain, EmbeddedConfigsRewrittenToExplicit)
{
    GemmConfig g = cfgWith(0.3, 0.0);
    g.pattern = BroadcastPattern::Embedded;
    MemoryImage m;
    GemmWorkload w = buildSparseTrainGemm(g, m);
    EXPECT_EQ(w.cfg.pattern, BroadcastPattern::Explicit);
    for (const Uop &u : w.trace)
        EXPECT_FALSE(u.hasEmbeddedBroadcast());
}

TEST(SparseTrain, InsensitiveToNbsButHelpedByBs)
{
    auto cycles = [](const GemmConfig &g, bool sw) {
        MemoryImage img;
        GemmWorkload w =
            sw ? buildSparseTrainGemm(g, img) : buildGemm(g, img);
        MachineConfig m;
        m.cores = 1;
        Multicore mc(m, SaveConfig::baseline(), 2, &img);
        w.warmup(mc.hierarchy());
        VectorTrace t(w.trace);
        mc.bindTraces({&t});
        return mc.run(10'000'000);
    };

    GemmConfig dense = cfgWith(0.0, 0.0);
    dense.nrVecs = 6; // VPU-bound baseline so skipping is visible
    dense.kSteps = 64;
    GemmConfig bs = dense;
    bs.bsSparsity = 0.7;
    GemmConfig nbs = dense;
    nbs.nbsSparsity = 0.7;

    uint64_t t_dense = cycles(dense, true);
    uint64_t t_bs = cycles(bs, true);
    uint64_t t_nbs = cycles(nbs, true);
    EXPECT_LT(t_bs, t_dense * 17 / 20); // BS exploited in software
    EXPECT_NEAR(static_cast<double>(t_nbs),
                static_cast<double>(t_dense),
                0.05 * static_cast<double>(t_dense)); // NBS not
}

TEST(SparseTrain, MixedPrecisionPairSkipsOnlyWhenBothZero)
{
    GemmConfig g = cfgWith(0.6, 0.0);
    g.precision = Precision::Bf16;
    MemoryImage m1, m2;
    GemmWorkload plain = buildGemm(g, m1);
    GemmWorkload sw = buildSparseTrainGemm(g, m2);
    // Per-element sparsity 0.6 -> pair-zero probability 0.36: fewer
    // skips than the FP32 case at the same rate.
    size_t plain_vfmas = 0, sw_vfmas = 0;
    for (const Uop &u : plain.trace)
        plain_vfmas += u.isVfma();
    for (const Uop &u : sw.trace)
        sw_vfmas += u.isVfma();
    double kept = static_cast<double>(sw_vfmas) /
                  static_cast<double>(plain_vfmas);
    EXPECT_NEAR(kept, 1 - 0.36, 0.06);

    ArchExecutor e1(&m1), e2(&m2);
    e1.run(plain.trace);
    e2.run(sw.trace);
    for (uint64_t off = 0; off < plain.cBytes; off += 4)
        ASSERT_EQ(m1.readU32(plain.cBase + off),
                  m2.readU32(sw.cBase + off));
}

TEST(SparseTrain, ComposesWithSaveHardware)
{
    GemmConfig g = cfgWith(0.5, 0.5);
    g.kSteps = 48;
    MemoryImage img;
    GemmWorkload w = buildSparseTrainGemm(g, img);
    MachineConfig m;
    m.cores = 1;
    Multicore mc(m, SaveConfig{}, 2, &img);
    w.warmup(mc.hierarchy());
    VectorTrace t(w.trace);
    mc.bindTraces({&t});
    mc.run(10'000'000);

    MemoryImage ref_img;
    GemmWorkload ref_w = buildSparseTrainGemm(g, ref_img);
    ArchExecutor ref(&ref_img);
    ref.run(ref_w.trace);
    for (uint64_t off = 0; off < w.cBytes; off += 4)
        ASSERT_EQ(img.readU32(w.cBase + off),
                  ref_img.readU32(ref_w.cBase + off));
}

} // namespace
} // namespace save
