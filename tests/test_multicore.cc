/**
 * @file
 * Multicore integration tests: all cores complete, private state is
 * isolated, shared-resource contention is visible, and per-core
 * results stay bitwise correct.
 */

#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.h"
#include "sim/multicore.h"
#include "sim/reference.h"

namespace save {
namespace {

TEST(Multicore, AllCoresDrain)
{
    MachineConfig m;
    m.cores = 4;
    MemoryImage image;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 16;
    auto shards = buildShardedGemm(g, image, 4);

    Multicore mc(m, SaveConfig{}, 2, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (auto &w : shards) {
        traces.push_back(std::make_unique<VectorTrace>(w.trace));
        srcs.push_back(traces.back().get());
    }
    mc.bindTraces(srcs);
    uint64_t cycles = mc.run(1'000'000);
    EXPECT_GT(cycles, 0u);
    for (int c = 0; c < 4; ++c) {
        EXPECT_TRUE(mc.core(c).drained());
        EXPECT_GT(mc.core(c).stats().get("committed"), 0.0);
    }
}

TEST(Multicore, PerCoreResultsBitwiseCorrect)
{
    MachineConfig m;
    m.cores = 3;
    MemoryImage image;
    GemmConfig g;
    g.mr = 4;
    g.nrVecs = 2;
    g.kSteps = 24;
    g.bsSparsity = 0.3;
    g.nbsSparsity = 0.5;
    auto shards = buildShardedGemm(g, image, 3);

    // Reference memory with identical contents.
    MemoryImage ref_image;
    auto ref_shards = buildShardedGemm(g, ref_image, 3);

    Multicore mc(m, SaveConfig{}, 2, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (auto &w : shards) {
        traces.push_back(std::make_unique<VectorTrace>(w.trace));
        srcs.push_back(traces.back().get());
    }
    mc.bindTraces(srcs);
    mc.run(1'000'000);

    for (size_t s = 0; s < ref_shards.size(); ++s) {
        ArchExecutor ref(&ref_image);
        ref.run(ref_shards[s].trace);
    }
    for (size_t s = 0; s < shards.size(); ++s) {
        for (uint64_t off = 0; off < shards[s].cBytes; off += 4) {
            ASSERT_EQ(image.readU32(shards[s].cBase + off),
                      ref_image.readU32(ref_shards[s].cBase + off))
                << "core " << s << " offset " << off;
        }
    }
}

TEST(Multicore, SharedBandwidthContentionSlowsCores)
{
    // The same per-core workload, alone vs with three bandwidth-hungry
    // neighbors, must take longer when sharing DRAM channels.
    auto run_with = [](int cores) {
        MachineConfig m;
        m.cores = cores;
        m.dramGBps = 8.0; // scarce bandwidth to force contention
        m.prefetchDegree = 0;
        MemoryImage image;
        GemmConfig g;
        g.mr = 2;
        g.nrVecs = 6;
        g.kSteps = 256;
        auto shards = buildShardedGemm(g, image, cores);
        Multicore mc(m, SaveConfig::baseline(), 2, &image);
        std::vector<std::unique_ptr<VectorTrace>> traces;
        std::vector<TraceSource *> srcs;
        for (auto &w : shards) {
            traces.push_back(std::make_unique<VectorTrace>(w.trace));
            srcs.push_back(traces.back().get());
        }
        mc.bindTraces(srcs);
        // No warmup: everything streams from DRAM.
        return mc.run(10'000'000);
    };
    uint64_t alone = run_with(1);
    uint64_t crowded = run_with(4);
    EXPECT_GT(crowded, alone + alone / 10);
}

TEST(Multicore, AggregateStatsSumCores)
{
    MachineConfig m;
    m.cores = 2;
    MemoryImage image;
    GemmConfig g;
    g.mr = 2;
    g.nrVecs = 2;
    g.kSteps = 8;
    auto shards = buildShardedGemm(g, image, 2);
    Multicore mc(m, SaveConfig{}, 2, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (auto &w : shards) {
        traces.push_back(std::make_unique<VectorTrace>(w.trace));
        srcs.push_back(traces.back().get());
    }
    mc.bindTraces(srcs);
    mc.run(1'000'000);
    StatGroup agg = mc.aggregateStats();
    EXPECT_DOUBLE_EQ(agg.get("vfmas"),
                     mc.core(0).stats().get("vfmas") +
                         mc.core(1).stats().get("vfmas"));
}

TEST(Engine, ProRatedBandwidthScalesWithCores)
{
    // Running 1 of 28 cores gets 1/28th of the DRAM bandwidth; this
    // is observable on a cold streaming workload.
    MachineConfig m; // 28 cores
    GemmConfig g;
    g.mr = 2;
    g.nrVecs = 6;
    g.kSteps = 192;
    Engine e(m, SaveConfig::baseline());
    auto one = e.runGemm(g, 1, 2);

    MachineConfig small = m;
    small.cores = 2;
    Engine e2(small, SaveConfig::baseline());
    auto half = e2.runGemm(g, 1, 2); // 1 of 2 cores: half the BW
    EXPECT_LT(half.cycles, one.cycles);
}

TEST(Engine, VerifyReportsDetailOnSuccess)
{
    Engine e(MachineConfig{}, SaveConfig{});
    GemmConfig g;
    g.mr = 2;
    g.nrVecs = 2;
    g.kSteps = 8;
    std::string detail = "unchanged";
    EXPECT_TRUE(e.verifyGemm(g, 2, &detail));
    EXPECT_EQ(detail, "unchanged"); // only written on mismatch
}

TEST(Engine, SpeedupHelper)
{
    KernelResult a, b;
    a.timeNs = 200;
    b.timeNs = 100;
    EXPECT_DOUBLE_EQ(speedup(a, b), 2.0);
}

} // namespace
} // namespace save
