#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include <time.h>

#include "dnn/fig14_report.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/logging.h"

namespace save {

namespace {

uint64_t
nowNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

} // namespace

std::vector<std::string>
shardParseSockets(const std::string &list)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string s = list.substr(pos, comma - pos);
        if (!s.empty())
            out.push_back(std::move(s));
        pos = comma + 1;
    }
    return out;
}

ShardCoordinator::ShardCoordinator(Options opt) : opt_(std::move(opt))
{
    if (opt_.inprocLanes < 0)
        throw ConfigError("--inproc must be >= 0 (got " +
                          std::to_string(opt_.inprocLanes) + ")");
    if (opt_.inprocLanes == 0 && opt_.sockets.empty())
        throw ConfigError("no backends: need --inproc >= 1 or at "
                          "least one --sockets entry");
    if (opt_.batch < 1)
        throw ConfigError("--batch must be >= 1 (got " +
                          std::to_string(opt_.batch) + ")");
    if (opt_.maxAttempts < 1)
        throw ConfigError("--max-attempts must be >= 1 (got " +
                          std::to_string(opt_.maxAttempts) + ")");
    if (opt_.stragglerMs < 0)
        throw ConfigError("--straggler-ms must be >= 0 (got " +
                          std::to_string(opt_.stragglerMs) + ")");

    if (!opt_.journalPath.empty()) {
        // The exact hash/keys/payloads bench_fig14 writes: a
        // single-host journal resumes a distributed run and back.
        const Fig14Knobs &k = opt_.knobs;
        journal_ = std::make_unique<SweepJournal>(
            opt_.journalPath,
            sweepHash("fig14", {k.gridStep, k.kSteps, k.tiles, k.cores,
                                static_cast<int64_t>(k.seed)}));
    }

    if (opt_.inprocLanes > 0) {
        SimSession::Options so;
        so.mcfg = opt_.mcfg;
        so.scfg = opt_.scfg;
        so.runtime = opt_.runtime;
        session_ = std::make_unique<SimSession>(std::move(so));
    }
}

ShardCoordinator::~ShardCoordinator() = default;

const ResultStore *
ShardCoordinator::resultStore() const
{
    return session_ ? session_->resultStore() : nullptr;
}

std::vector<uint32_t>
ShardCoordinator::claim(int max)
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (fatal_ || remaining_ == 0)
            return {};
        std::vector<uint32_t> got;
        for (uint32_t i = 0;
             i < points_.size() &&
             got.size() < static_cast<size_t>(max);
             ++i) {
            Point &p = points_[i];
            if (p.phase != PointPhase::Pending)
                continue;
            p.phase = PointPhase::InFlight;
            ++p.attempts;
            p.dispatchNs = nowNs();
            got.push_back(i);
        }
        if (got.empty() && opt_.stragglerMs > 0) {
            // Nothing pending but work still in flight: steal the
            // oldest straggler(s). First completion wins; results are
            // bit-identical, so the duplicate is merely wasted work.
            const uint64_t now = nowNs();
            const uint64_t limit =
                static_cast<uint64_t>(opt_.stragglerMs) * 1000000ull;
            for (uint32_t i = 0;
                 i < points_.size() &&
                 got.size() < static_cast<size_t>(max);
                 ++i) {
                Point &p = points_[i];
                if (p.phase != PointPhase::InFlight ||
                    now - p.dispatchNs <= limit)
                    continue;
                ++p.attempts;
                p.dispatchNs = now;
                ++stats_.speculative;
                got.push_back(i);
            }
        }
        if (!got.empty()) {
            ++stats_.dispatches;
            return got;
        }
        // Timed wait so straggler ages are re-examined periodically.
        cv_.wait_for(lk, std::chrono::milliseconds(50));
    }
}

void
ShardCoordinator::complete(uint32_t idx, const NetResult &r)
{
    std::lock_guard<std::mutex> lk(mu_);
    Point &p = points_[idx];
    if (p.phase == PointPhase::Done)
        return; // a speculative duplicate lost the race
    p.phase = PointPhase::Done;
    p.result = r;
    --remaining_;
    ++stats_.computed;
    if (journal_ && !sweepResultPoisoned(r)) {
        try {
            journal_->record(fig14Points()[idx].key,
                             SweepJournal::encode(r));
        } catch (const std::exception &e) {
            // A dead journal costs resume, not correctness.
            SAVE_WARN("journal write for '", fig14Points()[idx].key,
                      "' failed: ", e.what());
        }
    }
    cv_.notify_all();
}

void
ShardCoordinator::requeue(uint32_t idx)
{
    std::lock_guard<std::mutex> lk(mu_);
    Point &p = points_[idx];
    if (p.phase == PointPhase::Done)
        return;
    // Undo the claim's attempt charge: the point was never tried
    // (load-shed or returned unworked), only deferred.
    --p.attempts;
    p.phase = PointPhase::Pending;
    cv_.notify_all();
}

void
ShardCoordinator::requeueFailure(uint32_t idx, const std::string &reason)
{
    std::lock_guard<std::mutex> lk(mu_);
    Point &p = points_[idx];
    if (p.phase == PointPhase::Done)
        return;
    ++stats_.requeues;
    if (p.attempts >= opt_.maxAttempts) {
        // Budget exhausted: finish the point as a permanent failure
        // with a value-initialized result — the SweepRunner contract,
        // so the rest of the sweep (and the report) still completes.
        p.phase = PointPhase::Done;
        p.failed = true;
        p.result = NetResult{};
        --remaining_;
        stats_.failures.push_back(
            {fig14Points()[idx].key, reason, p.attempts});
        SAVE_WARN("shard point '", fig14Points()[idx].key,
                  "' failed permanently after ", p.attempts,
                  " dispatch(es): ", reason);
    } else {
        SAVE_WARN("shard point '", fig14Points()[idx].key,
                  "' dispatch ", p.attempts, "/", opt_.maxAttempts,
                  " failed: ", reason, "; re-queuing");
        p.phase = PointPhase::Pending;
    }
    cv_.notify_all();
}

void
ShardCoordinator::setFatal(const std::string &msg)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (!fatal_) {
        fatal_ = true;
        fatalIsConfig_ = true;
        fatalMsg_ = msg;
    }
    cv_.notify_all();
}

void
ShardCoordinator::backendLost(const std::string &who,
                              const std::string &why)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.backendsExcluded;
    --activeBackends_;
    SAVE_WARN("backend ", who, " excluded: ", why, " (",
              activeBackends_, " backend(s) remain)");
    if (activeBackends_ <= 0 && remaining_ > 0 && !fatal_) {
        fatal_ = true;
        fatalIsConfig_ = false;
        fatalMsg_ = "every backend was lost with " +
                    std::to_string(remaining_) +
                    " point(s) outstanding (last: " + who + ": " + why +
                    ")";
    }
    cv_.notify_all();
}

void
ShardCoordinator::inprocLane(int lane)
{
    (void)lane;
    for (;;) {
        std::vector<uint32_t> got = claim(1);
        if (got.empty())
            return;
        const uint32_t idx = got[0];
        try {
            complete(idx, session_->runFig14Point(
                              opt_.knobs, static_cast<int>(idx)));
        } catch (const ConfigError &e) {
            // Triage: a config fault would fail identically on every
            // backend — abort the run instead of burning the budget.
            setFatal(e.what());
            return;
        } catch (const std::exception &e) {
            requeueFailure(idx, e.what());
        }
    }
}

void
ShardCoordinator::daemonLane(const std::string &socket)
{
    ServeClient client(socket);

    // Version negotiation: only a daemon that speaks the shard
    // version gets batches; an old one keeps serving its v1 kinds
    // for other clients, we just leave it alone.
    try {
        ServeRequest sreq;
        sreq.kind = ServeKind::Status;
        ServeClient::Reply reply =
            client.call(sreq, nullptr, opt_.rpcTimeoutMs);
        if (reply.kind != ServeClient::Reply::Kind::Ok)
            throw SimError("status probe not answered");
        if (reply.status.version < kServeShardVersion) {
            backendLost(socket,
                        "speaks protocol v" +
                            std::to_string(reply.status.version) +
                            " (batched shard jobs need v" +
                            std::to_string(kServeShardVersion) + ")");
            return;
        }
    } catch (const std::exception &e) {
        backendLost(socket, e.what());
        return;
    }

    int consecutive = 0;
    for (;;) {
        std::vector<uint32_t> got = claim(opt_.batch);
        if (got.empty())
            return;

        ServeShardJob job;
        job.knobs = opt_.knobs;
        job.deadlineMs = 0;
        job.points = got;

        std::set<uint32_t> acked;
        bool faulted = false;
        std::string fault;
        try {
            ServeClient::Reply reply = client.callShard(
                job,
                [&](const ServeShardAck &ack) {
                    complete(ack.index, ack.result);
                    acked.insert(ack.index);
                },
                opt_.rpcTimeoutMs);
            if (reply.kind == ServeClient::Reply::Kind::Busy) {
                // Load-shed is an answer, not a fault — hand the
                // points back unworked and back off.
                for (uint32_t idx : got)
                    if (acked.find(idx) == acked.end())
                        requeue(idx);
                ++consecutive;
                fault.clear();
            } else if (reply.kind == ServeClient::Reply::Kind::Error) {
                if (reply.error.kind == WireErrorKind::Config) {
                    setFatal(socket + ": " + reply.error.what);
                    return;
                }
                faulted = true;
                fault = socket + ": " + reply.error.what;
            } else {
                consecutive = 0;
                // Every claimed point should have acked; re-queue
                // stragglers defensively.
                for (uint32_t idx : got)
                    if (acked.find(idx) == acked.end())
                        requeue(idx);
            }
        } catch (const std::exception &e) {
            faulted = true;
            fault = socket + ": " + e.what();
        }

        if (faulted) {
            for (uint32_t idx : got)
                if (acked.find(idx) == acked.end())
                    requeueFailure(idx, fault);
            ++consecutive;
        }
        if (consecutive >= kMaxBackendFaults) {
            backendLost(socket,
                        std::to_string(consecutive) +
                            " consecutive failed dispatch(es)" +
                            (fault.empty() ? "" : " (last: " + fault +
                                                      ")"));
            return;
        }
        if (consecutive > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100 * consecutive));
    }
}

std::string
ShardCoordinator::run()
{
    const std::vector<Fig14Point> &pts = fig14Points();
    points_.assign(pts.size(), Point{});
    remaining_ = pts.size();
    stats_ = Stats{};

    if (journal_) {
        for (uint32_t i = 0; i < pts.size(); ++i) {
            std::string hex;
            NetResult v;
            // Same resume rule as SweepRunner::point: a NaN-poisoned
            // record is a miss, so the resumed run re-attempts it.
            if (journal_->lookup(pts[i].key, &hex) &&
                SweepJournal::decode(hex, v) &&
                !sweepResultPoisoned(v)) {
                points_[i].phase = PointPhase::Done;
                points_[i].result = v;
                --remaining_;
                ++stats_.resumed;
            }
        }
    }

    if (remaining_ > 0) {
        // The in-process lanes count as ONE backend: they share a
        // session and never exit on point faults, so they live or
        // die together (a ConfigError kills the whole run anyway).
        activeBackends_ = (opt_.inprocLanes > 0 ? 1 : 0) +
                          static_cast<int>(opt_.sockets.size());

        std::vector<std::thread> lanes;
        lanes.reserve(static_cast<size_t>(opt_.inprocLanes) +
                      opt_.sockets.size());
        for (int i = 0; i < opt_.inprocLanes; ++i)
            lanes.emplace_back(&ShardCoordinator::inprocLane, this, i);
        for (const std::string &s : opt_.sockets)
            lanes.emplace_back(&ShardCoordinator::daemonLane, this, s);
        for (std::thread &t : lanes)
            t.join();

        std::lock_guard<std::mutex> lk(mu_);
        if (fatal_) {
            if (fatalIsConfig_)
                throw ConfigError(fatalMsg_);
            throw SimError(fatalMsg_);
        }
    }

    // Merge in config-key order, never arrival order: the one shared
    // renderer walks the canonical enumeration and pulls each result
    // from the completed map — byte-identical to bench_fig14 by
    // construction.
    uint32_t next = 0;
    Fig14Eval eval = [&](const std::string &key, const Fig14Entry &,
                         bool) -> NetResult {
        const uint32_t idx = next++;
        if (idx >= pts.size() || pts[idx].key != key)
            throw SimError("fig14 report walk diverged from "
                           "fig14Points() at '" +
                           key + "'");
        return points_[idx].result;
    };
    return fig14Report(eval);
}

} // namespace save
