/**
 * @file
 * ShardCoordinator: distributed Fig. 14 sweeps over a mixed backend
 * set (DESIGN.md §15).
 *
 * The coordinator carves the canonical fig14Points() enumeration into
 * point jobs and dispatches them across every backend it is given:
 *
 *  - in-process lanes: N threads over ONE shared SimSession (shared
 *    ThreadPool + content-addressed ResultStore), each claiming one
 *    point at a time;
 *  - remote save-serve daemons: one dialer thread per socket,
 *    claiming up to `batch` points and shipping them as a protocol-v2
 *    SSHD batch; per-point SPRG acks complete points as they land.
 *
 * Correctness invariant — the merged report is byte-identical to
 * `bench_fig14` stdout for any shard count, backend mix, and fault
 * schedule — holds by construction, not by care:
 *
 *  - every backend computes a point with the same arithmetic (the
 *    same estimator pipeline behind SimSession::runFig14Point, seeded
 *    workloads, -ffp-contract=off everywhere), so WHO computes a
 *    point cannot change its value;
 *  - the report is rendered by the one shared dnn/fig14_report.h
 *    renderer, which walks points in config-key order and pulls each
 *    result from the coordinator's completed map — arrival order
 *    never touches the output.
 *
 * Fault policy (the PR-7 triage taxonomy, applied at batch
 * granularity):
 *  - ConfigError (local or a remote Config-kind SERR) is fatal: the
 *    sweep itself is misconfigured, every backend would fail alike;
 *  - any other failure re-queues the unfinished points, with a
 *    bounded per-point dispatch budget (`maxAttempts`); past it the
 *    point is recorded as a permanent failure and yields a
 *    value-initialized result, exactly like the single-host
 *    SweepRunner, so the rest of the sweep still completes;
 *  - a daemon that fails `kMaxBackendFaults` consecutive dispatches
 *    (or speaks protocol v1 — no SSHD) is excluded with a warning:
 *    graceful degradation to the remaining backends;
 *  - a straggler (a dispatched point older than `stragglerMs`) is
 *    speculatively re-dispatched to any idle backend; the first
 *    completion wins and the duplicate is discarded (results are
 *    bit-identical, so the race is benign).
 *
 * Crash resume: completed points are recorded in the same
 * SweepJournal (`sweepHash("fig14", ...)`, same keys, same NetResult
 * payloads) the single-host bench writes, as they complete — a
 * coordinator killed mid-sweep resumes from the journal recomputing
 * nothing already merged, and the journal is interchangeable with
 * bench_fig14's.
 */

#ifndef SAVE_SHARD_COORDINATOR_H
#define SAVE_SHARD_COORDINATOR_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/result_store.h"
#include "serve/session.h"
#include "util/journal.h"
#include "util/runtime_options.h"
#include "util/thread_pool.h"

namespace save {

class ShardCoordinator
{
  public:
    /** Consecutive failed dispatches before a daemon is excluded. */
    static constexpr int kMaxBackendFaults = 3;

    struct Options
    {
        /** Remote save-serve sockets (may be empty). */
        std::vector<std::string> sockets;
        /** In-process lanes over one shared SimSession; with 0 the
         *  run depends entirely on the daemons. */
        int inprocLanes = 1;
        /** Max points per daemon dispatch (SSHD batch size). */
        int batch = 4;
        /** Per-point dispatch budget before a permanent failure. */
        int maxAttempts = 3;
        /** Speculatively re-dispatch a point in flight longer than
         *  this; 0 disables straggler rebalance. */
        int stragglerMs = 0;
        /** Per-frame RPC read deadline (resets at each ack). */
        int rpcTimeoutMs = 120000;
        /** Sweep journal; empty disables checkpoint/resume. */
        std::string journalPath;

        Fig14Knobs knobs{};
        MachineConfig mcfg{};
        SaveConfig scfg{};
        /** Environment snapshot (threads, cache dir, worker bin). */
        RuntimeOptions runtime{};
    };

    struct PermanentFailure
    {
        std::string key;
        std::string reason;
        int attempts = 0;
    };

    struct Stats
    {
        size_t resumed = 0;    ///< points replayed from the journal
        size_t computed = 0;   ///< points computed by backends
        size_t dispatches = 0; ///< batches shipped (all backends)
        size_t requeues = 0;   ///< points re-queued after a fault
        size_t speculative = 0; ///< straggler re-dispatches
        size_t backendsExcluded = 0;
        std::vector<PermanentFailure> failures;
    };

    explicit ShardCoordinator(Options opt);
    ~ShardCoordinator();

    ShardCoordinator(const ShardCoordinator &) = delete;
    ShardCoordinator &operator=(const ShardCoordinator &) = delete;

    /**
     * Run the sweep to completion and return the merged report —
     * byte-identical to `bench_fig14` stdout for the same knobs.
     * Throws ConfigError for a misconfigured sweep, SimError when
     * every backend is lost with points outstanding.
     */
    std::string run();

    const Stats &stats() const { return stats_; }

    /** The in-process store (for --cache-stats); null when the run
     *  has no in-process lanes. */
    const ResultStore *resultStore() const;

  private:
    enum class PointPhase : uint8_t
    {
        Pending,
        InFlight,
        Done,
    };

    struct Point
    {
        PointPhase phase = PointPhase::Pending;
        int attempts = 0;
        uint64_t dispatchNs = 0;
        bool failed = false;
        NetResult result{};
    };

    /** Claim up to `max` points (pending first, then stragglers).
     *  Blocks until something is claimable, every point is done, or
     *  the run turned fatal; an empty result means "stop". */
    std::vector<uint32_t> claim(int max);
    void complete(uint32_t idx, const NetResult &r);
    /** Re-queue after a fault; past the attempt budget the point is
     *  finished as a permanent failure. */
    void requeueFailure(uint32_t idx, const std::string &reason);
    void requeue(uint32_t idx);
    void setFatal(const std::string &msg);
    /** A backend is gone; with none left and work outstanding the
     *  run turns fatal instead of hanging. */
    void backendLost(const std::string &who, const std::string &why);

    void inprocLane(int lane);
    void daemonLane(const std::string &socket);

    Options opt_;
    std::unique_ptr<SweepJournal> journal_;

    /** One shared session for every in-process lane (it is reentrant
     *  and owns the pool + store); null when inprocLanes == 0. */
    std::unique_ptr<SimSession> session_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Point> points_;
    size_t remaining_ = 0;
    int activeBackends_ = 0;
    bool fatal_ = false;
    bool fatalIsConfig_ = false;
    std::string fatalMsg_;

    Stats stats_;
};

/** Parse a comma-separated socket list ("a.sock,b.sock"). */
std::vector<std::string> shardParseSockets(const std::string &list);

} // namespace save

#endif // SAVE_SHARD_COORDINATOR_H
