#include "kernels/sparsetrain.h"

#include <array>

#include "isa/bf16.h"
#include "util/logging.h"

namespace save {

namespace {

/** True if the 32-bit broadcast word is (signed-)zero in every
 *  element it carries: one FP32 scalar, or a BF16 pair (shared
 *  zero-test helpers from isa/bf16.h, same tests the SIMD backends
 *  implement). */
bool
broadcastIsZero(uint32_t word, Precision prec)
{
    if (prec == Precision::Bf16)
        return bf16PairIsZero(word);
    return f32BitsAreZero(word);
}

} // namespace

GemmWorkload
buildSparseTrainGemm(const GemmConfig &cfg, MemoryImage &mem,
                     int check_uops)
{
    GemmConfig g = cfg;
    // The software scheme tests the scalar in a register, so the
    // kernel must use the explicit-broadcast pattern.
    g.pattern = BroadcastPattern::Explicit;
    GemmWorkload w = buildGemm(g, mem);

    std::array<bool, kLogicalVecRegs> reg_is_zero{};
    std::vector<Uop> out;
    out.reserve(w.trace.size());
    for (const Uop &u : w.trace) {
        if (u.op == Opcode::BroadcastLoad) {
            out.push_back(u);
            // Compare + conditional branch (perfectly predicted).
            for (int i = 0; i < check_uops; ++i)
                out.push_back(Uop::alu());
            reg_is_zero[static_cast<size_t>(u.dst)] =
                broadcastIsZero(mem.readU32(u.addr), g.precision);
            continue;
        }
        if (u.isVfma() && u.srcA >= 0 &&
            reg_is_zero[static_cast<size_t>(u.srcA)]) {
            continue; // branched around in software
        }
        out.push_back(u);
    }
    w.trace = std::move(out);
    w.cfg = g;
    return w;
}

} // namespace save
