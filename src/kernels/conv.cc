#include "kernels/conv.h"

#include <algorithm>

#include "util/logging.h"

namespace save {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Forward:    return "forward";
      case Phase::BwdInput:   return "bwd_input";
      case Phase::BwdWeights: return "bwd_weights";
    }
    return "?";
}

uint64_t
ConvLayer::macsPerImage() const
{
    return static_cast<uint64_t>(oh()) * static_cast<uint64_t>(ow()) *
           static_cast<uint64_t>(outC) * static_cast<uint64_t>(inC) *
           static_cast<uint64_t>(kh) * static_cast<uint64_t>(kw);
}

GemmDims
convGemmDims(const ConvLayer &l, Phase phase, int batch)
{
    GemmDims d;
    int64_t spatial = static_cast<int64_t>(l.oh()) * l.ow() * batch;
    switch (phase) {
      case Phase::Forward:
        // Y[M=spatial, N=outC] = X_im2col[M, K] * W[K=inC*kh*kw, N].
        d.m = spatial;
        d.n = l.outC;
        d.k = static_cast<int64_t>(l.inC) * l.kh * l.kw;
        break;
      case Phase::BwdInput:
        // dX[M=spatial, N=inC] = dY[M, K] * W^T[K=outC*kh*kw, N].
        d.m = spatial;
        d.n = l.inC;
        d.k = static_cast<int64_t>(l.outC) * l.kh * l.kw;
        break;
      case Phase::BwdWeights:
        // dW[M=inC*kh*kw, N=outC] = X^T[M, K] * dY[K=spatial, N].
        d.m = static_cast<int64_t>(l.inC) * l.kh * l.kw;
        d.n = l.outC;
        d.k = spatial;
        break;
    }
    return d;
}

KernelShape
chooseShape(Phase phase, int64_t n_dim)
{
    KernelShape s;
    if (phase == Phase::Forward) {
        // Explicit-broadcast forward kernels: wide N tiles when the
        // output-channel dimension allows it.
        s.pattern = BroadcastPattern::Explicit;
        int nr = static_cast<int>(
            std::clamp<int64_t>(n_dim / kVecLanes, 1, 6));
        static const int mr_for_nr[] = {0, 28, 14, 7, 6, 5, 4};
        s.nrVecs = nr;
        s.mr = mr_for_nr[nr];
        // Explicit pattern needs two broadcast registers.
        while (s.mr * s.nrVecs + s.nrVecs + 2 > kLogicalVecRegs)
            --s.mr;
        return s;
    }
    // Backward kernels follow the paper's SecVII-D examples: embedded
    // broadcast, 28 accumulators with full B reuse for narrow N, or 21
    // accumulators (7x3, B reuse 7) for wide N.
    s.pattern = BroadcastPattern::Embedded;
    if (n_dim >= 256) {
        s.mr = 7;
        s.nrVecs = 3;
    } else {
        s.mr = 28;
        s.nrVecs = 1;
    }
    return s;
}

GemmConfig
KernelSpec::slice(Precision precision, double bs, double nbs, int k_steps,
                  uint64_t seed) const
{
    GemmConfig cfg;
    cfg.mr = shape.mr;
    cfg.nrVecs = shape.nrVecs;
    cfg.pattern = shape.pattern;
    cfg.precision = precision;
    cfg.bsSparsity = bs;
    cfg.nbsSparsity = nbs;
    cfg.seed = seed;
    int64_t k_avail = dims.k / (precision == Precision::Bf16 ? 2 : 1);
    cfg.kSteps = static_cast<int>(
        std::clamp<int64_t>(k_avail, 8, k_steps));
    cfg.tiles = 1;
    return cfg;
}

double
KernelSpec::macScale(const GemmConfig &slice_cfg) const
{
    return static_cast<double>(dims.macs()) /
           static_cast<double>(slice_cfg.macs());
}

KernelSpec
makeConvKernel(const ConvLayer &layer, Phase phase, int batch)
{
    KernelSpec spec;
    spec.name = layer.name + ":" + phaseName(phase);
    spec.phase = phase;
    spec.dims = convGemmDims(layer, phase, batch);
    spec.shape = chooseShape(phase, spec.dims.n);
    return spec;
}

} // namespace save
