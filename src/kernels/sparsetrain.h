/**
 * @file
 * SparseTrain-style software baseline (paper SecVIII, related work
 * [20]): a pure-software scheme that exploits *broadcasted* sparsity
 * only. The kernel loads each broadcast scalar, compares it to zero,
 * and branches around the dependent VFMA group when it is zero. No
 * hardware support is required, so it runs on the baseline pipeline —
 * but it cannot touch non-broadcasted sparsity, and it pays a check
 * overhead per broadcast scalar.
 *
 * The check is modeled optimistically as `checkUops` single-cycle ALU
 * uops per broadcast (compare + branch, perfectly predicted); the
 * broadcast load itself is reused by the compute path, as the
 * software scheme does.
 */

#ifndef SAVE_KERNELS_SPARSETRAIN_H
#define SAVE_KERNELS_SPARSETRAIN_H

#include "kernels/gemm.h"

namespace save {

/**
 * Build a GEMM slice whose trace skips, in software, every broadcast
 * group whose scalar is zero. Same data layout and sparsity semantics
 * as buildGemm (identical final C for identical seeds).
 *
 * Only the explicit-broadcast pattern is meaningful here (the scheme
 * needs the scalar in a register to test it); embedded-broadcast
 * configs are rewritten to explicit.
 */
GemmWorkload buildSparseTrainGemm(const GemmConfig &cfg,
                                  MemoryImage &mem, int check_uops = 2);

} // namespace save

#endif // SAVE_KERNELS_SPARSETRAIN_H
