/**
 * @file
 * Convolution layers lowered to GEMM (SecII-A), DNNL-style: the layer
 * geometry fixes the GEMM dimensions per training phase, and a
 * micro-kernel shape (register tiling + broadcast pattern) is chosen
 * the way the paper's kernels are described (SecVII-D: embedded-
 * broadcast back-propagation kernels with 28 accumulators / B reuse 28
 * or 21 accumulators / B reuse 7).
 */

#ifndef SAVE_KERNELS_CONV_H
#define SAVE_KERNELS_CONV_H

#include <cstdint>
#include <string>

#include "kernels/gemm.h"

namespace save {

/** DNN kernel phase. */
enum class Phase : uint8_t { Forward, BwdInput, BwdWeights };

const char *phaseName(Phase p);

/** Full-problem GEMM dimensions. */
struct GemmDims
{
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;

    uint64_t
    macs() const
    {
        return static_cast<uint64_t>(m) * static_cast<uint64_t>(n) *
               static_cast<uint64_t>(k);
    }
};

/** Register tiling + instruction pattern of a micro-kernel. */
struct KernelShape
{
    int mr = 4;
    int nrVecs = 6;
    BroadcastPattern pattern = BroadcastPattern::Explicit;

    bool
    operator==(const KernelShape &o) const
    {
        return mr == o.mr && nrVecs == o.nrVecs && pattern == o.pattern;
    }
};

/** One simulate-able kernel: a named GEMM with a chosen micro-kernel. */
struct KernelSpec
{
    std::string name;
    Phase phase = Phase::Forward;
    KernelShape shape;
    GemmDims dims;

    /**
     * Slice configuration for simulation: a steady-state stretch of
     * the micro-kernel's K loop. Layer time = slice time * macScale.
     */
    GemmConfig slice(Precision precision, double bs, double nbs,
                     int k_steps = 128, uint64_t seed = 1) const;

    /** Full-layer MACs divided by slice MACs. */
    double macScale(const GemmConfig &slice_cfg) const;
};

/** A convolution layer's geometry. */
struct ConvLayer
{
    std::string name;
    int inC = 0;
    int outC = 0;
    int kh = 3;
    int kw = 3;
    int ih = 0;
    int iw = 0;
    int stride = 1;

    int oh() const { return (ih - 1) / stride + 1; }
    int ow() const { return (iw - 1) / stride + 1; }

    /** MACs for one image. */
    uint64_t macsPerImage() const;
};

/** GEMM dimensions of a conv layer in the given phase (im2col view). */
GemmDims convGemmDims(const ConvLayer &layer, Phase phase, int batch);

/** DNNL-style micro-kernel choice for a phase and output width. */
KernelShape chooseShape(Phase phase, int64_t n_dim);

/** Build the KernelSpec for one conv layer + phase. */
KernelSpec makeConvKernel(const ConvLayer &layer, Phase phase, int batch);

} // namespace save

#endif // SAVE_KERNELS_CONV_H
