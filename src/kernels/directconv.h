/**
 * @file
 * Direct convolution kernels in the DNNL style the paper evaluates
 * (SecII-A cites direct convolution as a series of small GEMMs [18]).
 *
 * Layout: NCHW-like with output channels in vector lanes. The
 * micro-kernel holds an owBlock x ocBlocks tile of output pixels in
 * accumulators (7x3 = the paper's 21-accumulator kernel) and walks
 * the kh x kw x ic reduction: per step it loads ocBlocks weight
 * vectors and broadcasts one input pixel per output column.
 *
 * Activation sparsity (ReLU) appears in the broadcast operand (BS);
 * weight pruning appears in the vector operand (NBS). The input is
 * zero-padded, so halo reads are real zero broadcasts — border
 * micro-kernels get extra BS skipping for free, exactly as a real
 * padded convolution would.
 */

#ifndef SAVE_KERNELS_DIRECTCONV_H
#define SAVE_KERNELS_DIRECTCONV_H

#include <cstdint>
#include <vector>

#include "isa/uop.h"
#include "kernels/conv.h"
#include "mem/memory_image.h"
#include "util/random.h"

namespace save {

class MemHierarchy;

/** Direct-convolution slice configuration. */
struct DirectConvConfig
{
    ConvLayer layer;
    /** Output pixels per micro-kernel row (accumulator columns). */
    int owBlock = 7;
    /** Output-channel vectors per micro-kernel (16 lanes each). */
    int ocBlocks = 3;
    /** Output rows simulated (slice size; the full layer scales). */
    int ohRows = 1;
    double actSparsity = 0.0;
    double weightSparsity = 0.0;
    uint64_t seed = 1;
};

/** A generated direct-convolution slice. */
struct DirectConvWorkload
{
    DirectConvConfig cfg;
    std::vector<Uop> trace;
    uint64_t inBase = 0;
    uint64_t inBytes = 0;
    uint64_t wBase = 0;
    uint64_t wBytes = 0;
    uint64_t outBase = 0;
    uint64_t outBytes = 0;

    /** Padded input plane width/height. */
    int padW = 0;
    int padH = 0;
    /** Output-channel count rounded to the vector width. */
    int ocPadded = 0;

    /** MACs encoded in the slice. */
    uint64_t macs() const;

    /** Address of output pixel (oc lane base ocb, oy, ox). */
    uint64_t outAddr(int ocb, int oy, int ox) const;

    /** Warm activations (the previous layer's output) into L3; the
     *  weight tensor is also warmed, as with the GEMM slices. */
    void warmup(MemHierarchy &mem) const;
};

/** Build the slice: register tensors, fill them, emit the trace. */
DirectConvWorkload buildDirectConv(const DirectConvConfig &cfg,
                                   MemoryImage &mem);

/**
 * Independent reference: compute the same output region directly
 * from the tensors in `mem` with the MGU's zero-skip semantics and
 * the trace's accumulation order. Returns the expected FP32 value of
 * output (oc, oy, ox).
 */
float referenceConvOutput(const DirectConvWorkload &w,
                          const MemoryImage &mem, int oc, int oy,
                          int ox);

} // namespace save

#endif // SAVE_KERNELS_DIRECTCONV_H
