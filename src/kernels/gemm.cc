#include "kernels/gemm.h"

#include "kernels/sparsity.h"
#include "mem/hierarchy.h"
#include "util/error.h"
#include "util/logging.h"

namespace save {

namespace {

/**
 * A-panel geometry. The panel is stored packed and k-major, as DNNL
 * packs the broadcast operand: the mr scalars (32-bit words: one FP32
 * value or one BF16 pair) broadcast within one k step are contiguous.
 * This is the spatial locality the Broadcast Cache exploits (paper
 * SecIV-A: "different scalar values in the same cache line are
 * broadcasted nearby in time").
 */
uint64_t
aWords(const GemmConfig &cfg)
{
    return static_cast<uint64_t>(cfg.tiles) *
           static_cast<uint64_t>(cfg.kSteps) *
           static_cast<uint64_t>(cfg.mr);
}

/**
 * Register plan. Column-major accumulator numbering: VFMAs sharing a
 * B register (same n, varying m) get consecutive accumulator numbers,
 * so their R-states (dst mod 3) differ and rotate-vertical coalescing
 * can break their identical sparsity patterns apart (paper SecIV-B).
 */
struct RegPlan
{
    int mr;
    int nr;
    int cReg(int m, int n) const { return n * mr + m; }
    int bReg(int n) const { return mr * nr + n; }
    int aReg(int m) const { return mr * nr + nr + (m & 1); }
};

void
emitTile(const GemmConfig &cfg, const GemmWorkload &w, int panel,
         int tile, std::vector<Uop> &out)
{
    const int mr = cfg.mr;
    const int nr = cfg.nrVecs;
    RegPlan plan{mr, nr};
    const bool mp = cfg.precision == Precision::Bf16;
    const int wm = cfg.useWriteMask ? 1 : -1;

    auto a_addr = [&](int m, int step) {
        uint64_t word;
        if (cfg.aLayout == ALayout::PackedKMajor) {
            word = (static_cast<uint64_t>(tile) *
                        static_cast<uint64_t>(cfg.kSteps) +
                    static_cast<uint64_t>(step)) *
                       static_cast<uint64_t>(mr) +
                   static_cast<uint64_t>(m);
        } else {
            // Row-major: row (tile*mr + m), column step.
            word = (static_cast<uint64_t>(tile) *
                        static_cast<uint64_t>(mr) +
                    static_cast<uint64_t>(m)) *
                       static_cast<uint64_t>(cfg.kSteps) +
                   static_cast<uint64_t>(step);
        }
        return w.aBase + word * 4;
    };
    auto b_addr = [&](int step, int n) {
        uint64_t vec = (static_cast<uint64_t>(panel) *
                            static_cast<uint64_t>(cfg.kSteps) +
                        static_cast<uint64_t>(step)) *
                           static_cast<uint64_t>(nr) +
                       static_cast<uint64_t>(n);
        return w.bBase + vec * kLineBytes;
    };
    auto c_addr = [&](int m, int n) {
        uint64_t row = (static_cast<uint64_t>(panel) *
                            static_cast<uint64_t>(cfg.tiles) +
                        static_cast<uint64_t>(tile)) *
                           static_cast<uint64_t>(mr) +
                       static_cast<uint64_t>(m);
        return w.cBase +
               (row * static_cast<uint64_t>(nr) +
                static_cast<uint64_t>(n)) *
                   kLineBytes;
    };

    // Load the C tile into the accumulator registers.
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            out.push_back(Uop::loadVec(plan.cReg(m, n), c_addr(m, n)));

    for (int step = 0; step < cfg.kSteps; ++step) {
        for (int n = 0; n < nr; ++n)
            out.push_back(
                Uop::loadVec(plan.bReg(n), b_addr(step, n)));

        if (cfg.pattern == BroadcastPattern::Explicit) {
            for (int m = 0; m < mr; ++m) {
                int areg = plan.aReg(m);
                out.push_back(Uop::broadcastLoad(areg, a_addr(m, step)));
                for (int n = 0; n < nr; ++n) {
                    int c = plan.cReg(m, n);
                    int b = plan.bReg(n);
                    out.push_back(mp ? Uop::vdp(c, areg, b, wm)
                                     : Uop::vfma(c, areg, b, wm));
                }
            }
        } else {
            for (int m = 0; m < mr; ++m) {
                for (int n = 0; n < nr; ++n) {
                    int c = plan.cReg(m, n);
                    int b = plan.bReg(n);
                    uint64_t addr = a_addr(m, step);
                    out.push_back(mp ? Uop::vdpBcast(c, addr, b, wm)
                                     : Uop::vfmaBcast(c, addr, b, wm));
                }
            }
        }
        out.push_back(Uop::alu()); // loop bookkeeping
    }

    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            out.push_back(
                Uop::storeVec(plan.cReg(m, n), c_addr(m, n)));
}

GemmWorkload
buildWith(const GemmConfig &cfg, MemoryImage &mem, uint64_t a_base,
          uint64_t a_bytes, Rng &rng, int n_panels = 1)
{
    const int mr = cfg.mr;
    const int nr = cfg.nrVecs;
    cfg.validate();
    if (n_panels < 1)
        throw ConfigError("GEMM panel count must be >= 1 (got " +
                          std::to_string(n_panels) + ")");

    GemmWorkload w;
    w.cfg = cfg;
    w.aBase = a_base;
    w.aBytes = a_bytes;

    const bool mp = cfg.precision == Precision::Bf16;
    uint64_t b_vecs = static_cast<uint64_t>(n_panels) *
                      static_cast<uint64_t>(cfg.kSteps) *
                      static_cast<uint64_t>(nr);
    w.bBytes = b_vecs * kLineBytes;
    w.bBase = mem.allocRegion(w.bBytes);
    uint64_t c_vecs = static_cast<uint64_t>(n_panels) *
                      static_cast<uint64_t>(cfg.tiles) *
                      static_cast<uint64_t>(mr) *
                      static_cast<uint64_t>(nr);
    w.cBytes = c_vecs * kLineBytes;
    w.cBase = mem.allocRegion(w.cBytes);

    if (mp) {
        fillBf16(mem, w.bBase, b_vecs * kMlLanes, cfg.nbsSparsity, rng);
    } else {
        fillF32(mem, w.bBase, b_vecs * kVecLanes, cfg.nbsSparsity, rng);
    }
    // Dense random C so accumulation bugs cannot hide behind zeros.
    fillF32(mem, w.cBase, c_vecs * kVecLanes, 0.0, rng);

    if (cfg.useWriteMask)
        w.trace.push_back(Uop::setMask(1, cfg.writeMask));
    for (int p = 0; p < n_panels; ++p)
        for (int t = 0; t < cfg.tiles; ++t)
            emitTile(cfg, w, p, t, w.trace);
    return w;
}

} // namespace

void
GemmConfig::validate() const
{
    auto at_least = [](const char *field, int value, int min) {
        if (value < min)
            throw ConfigError(std::string("GemmConfig.") + field +
                              " must be >= " + std::to_string(min) +
                              " (got " + std::to_string(value) + ")");
    };
    at_least("mr", mr, 1);
    at_least("nrVecs", nrVecs, 1);
    at_least("kSteps", kSteps, 1);
    at_least("tiles", tiles, 1);
    auto fraction = [](const char *field, double value) {
        if (!(value >= 0.0 && value <= 1.0))
            throw ConfigError(std::string("GemmConfig.") + field +
                              " must be in [0, 1] (got " +
                              std::to_string(value) + ")");
    };
    fraction("bsSparsity", bsSparsity);
    fraction("nbsSparsity", nbsSparsity);
    // The register plan needs mr*nr accumulators, nr B registers, and
    // two A rotation slots for the explicit-broadcast pattern.
    int regs_needed =
        mr * nrVecs + nrVecs +
        (pattern == BroadcastPattern::Explicit ? 2 : 0);
    if (regs_needed > kLogicalVecRegs)
        throw ConfigError(
            "GemmConfig register tile too big: " + std::to_string(mr) +
            "x" + std::to_string(nrVecs) + " needs " +
            std::to_string(regs_needed) + " of " +
            std::to_string(kLogicalVecRegs) +
            " logical vector registers; shrink mr or nrVecs");
    if (useWriteMask && writeMask == 0)
        throw ConfigError("GemmConfig.writeMask must be non-zero when "
                          "useWriteMask is set (an all-masked kernel "
                          "does no work)");
}

namespace {

/** Allocate and fill the packed A panel. */
uint64_t
buildAPanel(const GemmConfig &cfg, MemoryImage &mem, Rng &rng,
            uint64_t &a_bytes)
{
    uint64_t words = aWords(cfg);
    a_bytes = words * 4;
    uint64_t a_base = mem.allocRegion((a_bytes + kLineBytes - 1) /
                                      kLineBytes * kLineBytes);
    if (cfg.precision == Precision::Bf16)
        fillBf16(mem, a_base, 2 * words, cfg.bsSparsity, rng);
    else
        fillF32(mem, a_base, words, cfg.bsSparsity, rng);
    return a_base;
}

} // namespace

GemmWorkload
buildGemm(const GemmConfig &cfg, MemoryImage &mem)
{
    Rng rng(cfg.seed);
    uint64_t a_bytes = 0;
    uint64_t a_base = buildAPanel(cfg, mem, rng, a_bytes);

    return buildWith(cfg, mem, a_base, a_bytes, rng);
}

GemmWorkload
buildBlockedGemm(const GemmConfig &cfg, int n_panels, MemoryImage &mem)
{
    Rng rng(cfg.seed);
    uint64_t a_bytes = 0;
    uint64_t a_base = buildAPanel(cfg, mem, rng, a_bytes);

    return buildWith(cfg, mem, a_base, a_bytes, rng, n_panels);
}

std::vector<GemmWorkload>
buildShardedGemm(const GemmConfig &cfg, MemoryImage &mem, int cores)
{
    // All cores broadcast from the same A panel (the GEMM's shared
    // operand); each owns a private B panel and C tile.
    Rng rng(cfg.seed);
    uint64_t a_bytes = 0;
    uint64_t a_base = buildAPanel(cfg, mem, rng, a_bytes);

    std::vector<GemmWorkload> out;
    for (int c = 0; c < cores; ++c) {
        GemmConfig per = cfg;
        per.seed = cfg.seed + 77770 + static_cast<uint64_t>(c);
        Rng core_rng(per.seed);
        out.push_back(buildWith(per, mem, a_base, a_bytes, core_rng));
    }
    return out;
}

void
GemmWorkload::warmup(MemHierarchy &mem) const
{
    // Activations (A) are warm in L3 per the paper's protocol (the
    // previous operation produced them). The B panel is also placed in
    // L3: a slice models the steady state of the layer's M loop, where
    // the panel has been touched by earlier register tiles and its
    // cold DRAM transfer is amortized over the whole M dimension
    // (DESIGN.md substitution 5). C (the layer's output) stays cold.
    for (uint64_t off = 0; off < aBytes; off += kLineBytes)
        mem.warmL3(aBase + off);
    for (uint64_t off = 0; off < bBytes; off += kLineBytes)
        mem.warmL3(bBase + off);
}

} // namespace save
