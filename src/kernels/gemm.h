/**
 * @file
 * Register-tiled GEMM micro-kernel generator in the style of the
 * Intel DNNL kernels the paper evaluates (SecII-A/B).
 *
 * The micro-kernel keeps an mr x nrVecs tile of C in accumulator
 * registers and walks the K dimension. Operand roles follow the paper:
 * A is the broadcasted multiplicand (source of broadcasted sparsity,
 * BS); B is the vector multiplicand (source of non-broadcasted
 * sparsity, NBS).
 *
 * Two instruction patterns (SecII-B):
 *  - Explicit broadcast: VBROADCASTSS fills a register that several
 *    VFMAs reuse. High A reuse, more register pressure.
 *  - Embedded broadcast: each VFMA carries a broadcast memory operand.
 *    Denser code, but every VFMA costs an L1/B$ read.
 */

#ifndef SAVE_KERNELS_GEMM_H
#define SAVE_KERNELS_GEMM_H

#include <cstdint>
#include <vector>

#include "isa/uop.h"
#include "mem/memory_image.h"
#include "util/random.h"

namespace save {

class MemHierarchy;

/** Broadcast style of the inner loop (SecII-B). */
enum class BroadcastPattern : uint8_t { Explicit, Embedded };

/** Element precision of the multiplicands. */
enum class Precision : uint8_t { Fp32, Bf16 };

/** Layout of the broadcast (A) panel. */
enum class ALayout : uint8_t
{
    /** DNNL-style packed panel: the mr scalars of one k step are
     *  contiguous. The broadcast cache's friendly case. */
    PackedKMajor,
    /** Plain row-major A[m][k]: each row's broadcasts live in a
     *  different line, so up to mr lines are hot at once — stresses
     *  B$ capacity/conflicts (used by ablations). */
    RowMajor,
};

/** Micro-kernel and data configuration. */
struct GemmConfig
{
    /** Register-tile rows (broadcast side). */
    int mr = 4;
    /** Register-tile vector columns (16 FP32 lanes each). */
    int nrVecs = 6;
    /** K steps in the generated slice (one B row load per step;
     *  covers 2 K-elements per step for BF16). */
    int kSteps = 128;
    /** Number of register tiles walked (the M/N loop of the slice). */
    int tiles = 1;
    BroadcastPattern pattern = BroadcastPattern::Explicit;
    Precision precision = Precision::Fp32;
    ALayout aLayout = ALayout::PackedKMajor;
    /** Zero probability of A elements (broadcasted sparsity). */
    double bsSparsity = 0.0;
    /** Zero probability of B elements (non-broadcasted sparsity). */
    double nbsSparsity = 0.0;
    uint64_t seed = 1;
    /** Express A-side pruning through an AVX-512 write mask register
     *  instead of zero data (exercises the WM path; tests only). */
    bool useWriteMask = false;
    uint16_t writeMask = 0xffffu;

    /** FP32 lanes of MAC work per VFMA. */
    int lanesPerVfma() const { return 16; }

    /**
     * Check the configuration is buildable: positive tile/slice
     * dimensions, sparsities in [0,1], and a register tile that fits
     * the 32 logical vector registers. Throws ConfigError with the
     * offending field; called by the workload builders.
     */
    void validate() const;

    /** Total multiply-accumulates encoded in the slice. */
    uint64_t
    macs() const
    {
        uint64_t per_step = static_cast<uint64_t>(mr) *
                            static_cast<uint64_t>(nrVecs) * 16 *
                            (precision == Precision::Bf16 ? 2 : 1);
        return per_step * static_cast<uint64_t>(kSteps) *
               static_cast<uint64_t>(tiles);
    }
};

/** A generated slice: trace plus data placement. */
struct GemmWorkload
{
    GemmConfig cfg;
    std::vector<Uop> trace;
    uint64_t aBase = 0;
    uint64_t bBase = 0;
    uint64_t cBase = 0;
    uint64_t aBytes = 0;
    uint64_t bBytes = 0;
    uint64_t cBytes = 0;

    /** Pre-load the A (broadcast) operand into L3, per the paper's
     *  warm-up protocol (activations warm, weights and outputs cold). */
    void warmup(MemHierarchy &mem) const;
};

/**
 * Build a GEMM slice: registers matrices in `mem`, fills them with
 * the configured sparsity, and emits the uop trace.
 */
GemmWorkload buildGemm(const GemmConfig &cfg, MemoryImage &mem);

/**
 * Build one slice per core for a data-parallel layer: cores share the
 * broadcast operand A and own disjoint B/C tiles.
 */
std::vector<GemmWorkload> buildShardedGemm(const GemmConfig &cfg,
                                           MemoryImage &mem, int cores);

/**
 * Build a complete cache-blocked GEMM: an outer loop over `n_panels`
 * panels of B/C (each nrVecs vectors wide) around the usual M-tile and
 * K loops. Unlike the steady-state slices, nothing is pre-warmed by
 * construction: the cold streaming of B amortizes over the M loop the
 * way a real layer's does. Used to validate the slice-extrapolation
 * methodology (DESIGN.md substitution 5).
 */
GemmWorkload buildBlockedGemm(const GemmConfig &cfg, int n_panels,
                              MemoryImage &mem);

} // namespace save

#endif // SAVE_KERNELS_GEMM_H
