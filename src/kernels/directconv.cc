#include "kernels/directconv.h"

#include <algorithm>

#include "kernels/sparsity.h"
#include "mem/hierarchy.h"
#include "util/bitutil.h"
#include "util/logging.h"

namespace save {

namespace {

/** Padding for a 'same' convolution. */
int
padOf(const ConvLayer &l)
{
    return l.kh / 2;
}

uint64_t
inAddr(const DirectConvWorkload &w, int ic, int y, int x)
{
    // Padded [IC][padH][padW] FP32 plane; (y, x) are padded coords.
    uint64_t idx = (static_cast<uint64_t>(ic) *
                        static_cast<uint64_t>(w.padH) +
                    static_cast<uint64_t>(y)) *
                       static_cast<uint64_t>(w.padW) +
                   static_cast<uint64_t>(x);
    return w.inBase + 4 * idx;
}

uint64_t
wAddr(const DirectConvWorkload &w, int kh, int kw, int ic, int oc)
{
    // [KH][KW][IC][OCpadded] FP32, OC innermost: a 16-lane weight
    // vector is one contiguous, 64B-aligned run.
    const ConvLayer &l = w.cfg.layer;
    uint64_t idx = ((static_cast<uint64_t>(kh) *
                         static_cast<uint64_t>(l.kw) +
                     static_cast<uint64_t>(kw)) *
                        static_cast<uint64_t>(l.inC) +
                    static_cast<uint64_t>(ic)) *
                       static_cast<uint64_t>(w.ocPadded) +
                   static_cast<uint64_t>(oc);
    return w.wBase + 4 * idx;
}

} // namespace

uint64_t
DirectConvWorkload::outAddr(int ocb, int oy, int ox) const
{
    // [OC/16][OH][OW] of 16-lane vectors.
    const ConvLayer &l = cfg.layer;
    uint64_t idx = (static_cast<uint64_t>(ocb) *
                        static_cast<uint64_t>(l.oh()) +
                    static_cast<uint64_t>(oy)) *
                       static_cast<uint64_t>(l.ow()) +
                   static_cast<uint64_t>(ox);
    return outBase + kLineBytes * idx;
}

uint64_t
DirectConvWorkload::macs() const
{
    const ConvLayer &l = cfg.layer;
    return static_cast<uint64_t>(cfg.ohRows) *
           static_cast<uint64_t>(l.ow()) *
           static_cast<uint64_t>(cfg.ocBlocks) * kVecLanes *
           static_cast<uint64_t>(l.inC) *
           static_cast<uint64_t>(l.kh) * static_cast<uint64_t>(l.kw);
}

void
DirectConvWorkload::warmup(MemHierarchy &mem) const
{
    for (uint64_t off = 0; off < inBytes; off += kLineBytes)
        mem.warmL3(inBase + off);
    for (uint64_t off = 0; off < wBytes; off += kLineBytes)
        mem.warmL3(wBase + off);
}

DirectConvWorkload
buildDirectConv(const DirectConvConfig &cfg, MemoryImage &mem)
{
    const ConvLayer &l = cfg.layer;
    SAVE_ASSERT(cfg.owBlock >= 1 && cfg.ocBlocks >= 1 &&
                cfg.ohRows >= 1, "degenerate direct-conv config");
    SAVE_ASSERT(cfg.owBlock * cfg.ocBlocks + cfg.ocBlocks + 2 <=
                kLogicalVecRegs, "register tile too big");
    SAVE_ASSERT(l.stride == 1, "direct-conv slice models stride 1");

    DirectConvWorkload w;
    w.cfg = cfg;
    int pad = padOf(l);
    w.padW = l.iw + 2 * pad;
    w.padH = l.ih + 2 * pad;
    w.ocPadded = static_cast<int>(
        divCeil<uint64_t>(static_cast<uint64_t>(
            cfg.ocBlocks * kVecLanes), kVecLanes) * kVecLanes);

    Rng rng(cfg.seed);

    // Padded input: interior filled at the activation sparsity,
    // borders zero (the padding halo).
    uint64_t in_elems = static_cast<uint64_t>(l.inC) *
                        static_cast<uint64_t>(w.padH) *
                        static_cast<uint64_t>(w.padW);
    w.inBytes = 4 * in_elems;
    w.inBase = mem.allocRegion((w.inBytes + kLineBytes - 1) /
                               kLineBytes * kLineBytes);
    for (int ic = 0; ic < l.inC; ++ic)
        for (int y = pad; y < pad + l.ih; ++y)
            for (int x = pad; x < pad + l.iw; ++x) {
                float v = rng.chance(cfg.actSparsity)
                    ? 0.0f
                    : rng.nonZeroValue();
                mem.writeF32(inAddr(w, ic, y, x), v);
            }

    uint64_t w_elems = static_cast<uint64_t>(l.kh) *
                       static_cast<uint64_t>(l.kw) *
                       static_cast<uint64_t>(l.inC) *
                       static_cast<uint64_t>(w.ocPadded);
    w.wBytes = 4 * w_elems;
    w.wBase = mem.allocRegion((w.wBytes + kLineBytes - 1) /
                              kLineBytes * kLineBytes);
    fillF32(mem, w.wBase, w_elems, cfg.weightSparsity, rng);

    uint64_t out_vecs = static_cast<uint64_t>(cfg.ocBlocks) *
                        static_cast<uint64_t>(l.oh()) *
                        static_cast<uint64_t>(l.ow());
    w.outBytes = out_vecs * kLineBytes;
    w.outBase = mem.allocRegion(w.outBytes);

    // Register plan: accumulators 0..owBlock*ocBlocks-1 column-major
    // (rotation-friendly, as with the GEMM kernels), then weight
    // vectors, then 2 broadcast registers.
    const int acc_regs = cfg.owBlock * cfg.ocBlocks;
    auto acc = [&](int ow, int n) { return n * cfg.owBlock + ow; };
    auto wreg = [&](int n) { return acc_regs + n; };
    auto xreg = [&](int ow) { return acc_regs + cfg.ocBlocks +
                                     (ow & 1); };

    std::vector<Uop> &out = w.trace;
    for (int oy = 0; oy < cfg.ohRows; ++oy) {
        for (int owb = 0; owb * cfg.owBlock < l.ow(); ++owb) {
            int ow0 = owb * cfg.owBlock;
            int cols = std::min(cfg.owBlock, l.ow() - ow0);
            // Zero accumulators by loading the (zero) output tile.
            for (int c = 0; c < cols; ++c)
                for (int n = 0; n < cfg.ocBlocks; ++n)
                    out.push_back(Uop::loadVec(
                        acc(c, n), w.outAddr(n, oy, ow0 + c)));

            for (int kh = 0; kh < l.kh; ++kh) {
                for (int kw = 0; kw < l.kw; ++kw) {
                    for (int ic = 0; ic < l.inC; ++ic) {
                        for (int n = 0; n < cfg.ocBlocks; ++n)
                            out.push_back(Uop::loadVec(
                                wreg(n), wAddr(w, kh, kw, ic,
                                               n * kVecLanes)));
                        for (int c = 0; c < cols; ++c) {
                            // Padded coords: oy+kh, ow+kw.
                            out.push_back(Uop::broadcastLoad(
                                xreg(c),
                                inAddr(w, ic, oy + kh,
                                       ow0 + c + kw)));
                            for (int n = 0; n < cfg.ocBlocks; ++n)
                                out.push_back(Uop::vfma(
                                    acc(c, n), xreg(c), wreg(n)));
                        }
                        out.push_back(Uop::alu());
                    }
                }
            }
            for (int c = 0; c < cols; ++c)
                for (int n = 0; n < cfg.ocBlocks; ++n)
                    out.push_back(Uop::storeVec(
                        acc(c, n), w.outAddr(n, oy, ow0 + c)));
        }
    }
    return w;
}

float
referenceConvOutput(const DirectConvWorkload &w, const MemoryImage &mem,
                    int oc, int oy, int ox)
{
    const ConvLayer &l = w.cfg.layer;
    float acc = 0.0f;
    for (int kh = 0; kh < l.kh; ++kh)
        for (int kw = 0; kw < l.kw; ++kw)
            for (int ic = 0; ic < l.inC; ++ic) {
                float x =
                    mem.readF32(inAddr(w, ic, oy + kh, ox + kw));
                float ww = mem.readF32(wAddr(w, kh, kw, ic, oc));
                if (x != 0.0f && ww != 0.0f)
                    acc += x * ww;
            }
    return acc;
}

} // namespace save
