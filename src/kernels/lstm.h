/**
 * @file
 * LSTM cells as GEMM workloads (SecII-A: "LSTMs use GEMM as a
 * building block"). One cell step computes the four gate
 * pre-activations: Gates[batch, 4H] = [x_t, h_{t-1}] * W[D+H, 4H].
 * The concatenated input is the broadcasted operand (activation /
 * dropout sparsity -> BS); the weights are the vector operand
 * (pruning -> NBS). GNMT's backward pass is a merged single phase
 * (Table III).
 */

#ifndef SAVE_KERNELS_LSTM_H
#define SAVE_KERNELS_LSTM_H

#include <string>

#include "kernels/conv.h"

namespace save {

/** One LSTM cell's GEMM geometry. */
struct LstmCell
{
    std::string name;
    /** Input feature dimension (embedding or lower-layer hidden). */
    int inputDim = 1024;
    int hiddenDim = 1024;
    int batch = 64;
    /** Time steps folded into the GEMM's M dimension. */
    int timeSteps = 16;

    uint64_t macs() const;

    /** Throws ConfigError on non-positive dimensions; called by
     *  makeLstmKernel(). */
    void validate() const;
};

/** Build the KernelSpec for a cell. Phase::BwdInput stands for the
 *  merged LSTM backward phase. */
KernelSpec makeLstmKernel(const LstmCell &cell, Phase phase);

} // namespace save

#endif // SAVE_KERNELS_LSTM_H
