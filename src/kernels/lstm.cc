#include "kernels/lstm.h"

#include "util/logging.h"

namespace save {

uint64_t
LstmCell::macs() const
{
    uint64_t m = static_cast<uint64_t>(batch) *
                 static_cast<uint64_t>(timeSteps);
    uint64_t k = static_cast<uint64_t>(inputDim) +
                 static_cast<uint64_t>(hiddenDim);
    uint64_t n = 4ull * static_cast<uint64_t>(hiddenDim);
    return m * k * n;
}

KernelSpec
makeLstmKernel(const LstmCell &cell, Phase phase)
{
    SAVE_ASSERT(phase != Phase::BwdWeights,
                "LSTM backward is a single merged phase");
    KernelSpec spec;
    spec.name = cell.name + ":" +
                (phase == Phase::Forward ? "forward" : "backward");
    spec.phase = phase;
    spec.dims.m = static_cast<int64_t>(cell.batch) * cell.timeSteps;
    spec.dims.n = 4ll * cell.hiddenDim;
    spec.dims.k = static_cast<int64_t>(cell.inputDim) + cell.hiddenDim;
    // LSTM GEMMs are large and square-ish: the explicit-broadcast
    // pattern with a wide N tile, as DNNL's RNN kernels use.
    spec.shape.pattern = BroadcastPattern::Explicit;
    spec.shape.nrVecs = 6;
    spec.shape.mr = 4;
    return spec;
}

} // namespace save
