#include "kernels/lstm.h"

#include "util/error.h"
#include "util/logging.h"

namespace save {

void
LstmCell::validate() const
{
    auto at_least = [this](const char *field, int value, int min) {
        if (value < min)
            throw ConfigError("LstmCell '" + name + "': " + field +
                              " must be >= " + std::to_string(min) +
                              " (got " + std::to_string(value) + ")");
    };
    at_least("inputDim", inputDim, 1);
    at_least("hiddenDim", hiddenDim, 1);
    at_least("batch", batch, 1);
    at_least("timeSteps", timeSteps, 1);
}

uint64_t
LstmCell::macs() const
{
    uint64_t m = static_cast<uint64_t>(batch) *
                 static_cast<uint64_t>(timeSteps);
    uint64_t k = static_cast<uint64_t>(inputDim) +
                 static_cast<uint64_t>(hiddenDim);
    uint64_t n = 4ull * static_cast<uint64_t>(hiddenDim);
    return m * k * n;
}

KernelSpec
makeLstmKernel(const LstmCell &cell, Phase phase)
{
    cell.validate();
    if (phase == Phase::BwdWeights)
        throw ConfigError("LSTM backward is a single merged phase; use "
                          "Phase::BwdInput for cell '" + cell.name +
                          "'");
    KernelSpec spec;
    spec.name = cell.name + ":" +
                (phase == Phase::Forward ? "forward" : "backward");
    spec.phase = phase;
    spec.dims.m = static_cast<int64_t>(cell.batch) * cell.timeSteps;
    spec.dims.n = 4ll * cell.hiddenDim;
    spec.dims.k = static_cast<int64_t>(cell.inputDim) + cell.hiddenDim;
    // LSTM GEMMs are large and square-ish: the explicit-broadcast
    // pattern with a wide N tile, as DNNL's RNN kernels use.
    spec.shape.pattern = BroadcastPattern::Explicit;
    spec.shape.nrVecs = 6;
    spec.shape.mr = 4;
    return spec;
}

} // namespace save
