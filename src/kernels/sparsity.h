/**
 * @file
 * Sparsity injection: fills matrix regions with uniformly-random zero
 * placement at a target rate, as the paper's evaluation does (SecVI:
 * "we simulate ... weight and activation sparsities of 0%-90% at 10%
 * intervals, using a uniform random distribution").
 */

#ifndef SAVE_KERNELS_SPARSITY_H
#define SAVE_KERNELS_SPARSITY_H

#include <cstdint>

#include "mem/memory_image.h"
#include "util/random.h"

namespace save {

/** Fill `count` FP32 elements at base; each is zero w.p. sparsity. */
void fillF32(MemoryImage &mem, uint64_t base, uint64_t count,
             double sparsity, Rng &rng);

/** Fill `count` BF16 elements at base; each is zero w.p. sparsity. */
void fillBf16(MemoryImage &mem, uint64_t base, uint64_t count,
              double sparsity, Rng &rng);

/** Fraction of zero FP32 elements in [base, base+4*count). */
double measuredSparsityF32(const MemoryImage &mem, uint64_t base,
                           uint64_t count);

/** Fraction of zero BF16 elements in [base, base+2*count). */
double measuredSparsityBf16(const MemoryImage &mem, uint64_t base,
                            uint64_t count);

} // namespace save

#endif // SAVE_KERNELS_SPARSITY_H
