#include "kernels/sparsity.h"

#include "isa/bf16.h"
#include "util/bitutil.h"
#include "util/simd.h"

namespace save {

void
fillF32(MemoryImage &mem, uint64_t base, uint64_t count, double sparsity,
        Rng &rng)
{
    for (uint64_t i = 0; i < count; ++i) {
        float v = rng.chance(sparsity) ? 0.0f : rng.nonZeroValue();
        mem.writeF32(base + 4 * i, v);
    }
}

void
fillBf16(MemoryImage &mem, uint64_t base, uint64_t count, double sparsity,
         Rng &rng)
{
    for (uint64_t i = 0; i < count; ++i) {
        Bf16 v = rng.chance(sparsity) ? Bf16{0}
                                      : f32ToBf16(rng.nonZeroValue());
        mem.writeBf16(base + 2 * i, v);
    }
}

double
measuredSparsityF32(const MemoryImage &mem, uint64_t base, uint64_t count)
{
    // Whole 64B lines go through the host-SIMD zero test (one vector
    // compare per line); ragged head/tail elements fall back to the
    // scalar read. Both sides count exactly ±0.0f, so the split is
    // invisible in the result.
    uint64_t zeros = 0;
    uint64_t i = 0;
    for (; i < count && (base + 4 * i) % kLineBytes != 0; ++i)
        if (mem.readF32(base + 4 * i) == 0.0f)
            ++zeros;
    for (; i + kVecLanes <= count; i += kVecLanes)
        zeros += popcount(
            simd::ops().zeroMaskF32(mem.readLine(base + 4 * i)));
    for (; i < count; ++i)
        if (mem.readF32(base + 4 * i) == 0.0f)
            ++zeros;
    return count == 0 ? 0.0
                      : static_cast<double>(zeros) /
                            static_cast<double>(count);
}

double
measuredSparsityBf16(const MemoryImage &mem, uint64_t base, uint64_t count)
{
    constexpr uint64_t kBf16PerLine = kLineBytes / 2;
    uint64_t zeros = 0;
    uint64_t i = 0;
    for (; i < count && (base + 2 * i) % kLineBytes != 0; ++i)
        if (bf16IsZero(mem.readBf16(base + 2 * i)))
            ++zeros;
    for (; i + kBf16PerLine <= count; i += kBf16PerLine)
        zeros += popcount(
            simd::ops().zeroMaskBf16(mem.readLine(base + 2 * i)));
    for (; i < count; ++i)
        if (bf16IsZero(mem.readBf16(base + 2 * i)))
            ++zeros;
    return count == 0 ? 0.0
                      : static_cast<double>(zeros) /
                            static_cast<double>(count);
}

} // namespace save
