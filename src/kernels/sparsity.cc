#include "kernels/sparsity.h"

#include "isa/bf16.h"

namespace save {

void
fillF32(MemoryImage &mem, uint64_t base, uint64_t count, double sparsity,
        Rng &rng)
{
    for (uint64_t i = 0; i < count; ++i) {
        float v = rng.chance(sparsity) ? 0.0f : rng.nonZeroValue();
        mem.writeF32(base + 4 * i, v);
    }
}

void
fillBf16(MemoryImage &mem, uint64_t base, uint64_t count, double sparsity,
         Rng &rng)
{
    for (uint64_t i = 0; i < count; ++i) {
        Bf16 v = rng.chance(sparsity) ? Bf16{0}
                                      : f32ToBf16(rng.nonZeroValue());
        mem.writeBf16(base + 2 * i, v);
    }
}

double
measuredSparsityF32(const MemoryImage &mem, uint64_t base, uint64_t count)
{
    uint64_t zeros = 0;
    for (uint64_t i = 0; i < count; ++i)
        if (mem.readF32(base + 4 * i) == 0.0f)
            ++zeros;
    return count == 0 ? 0.0
                      : static_cast<double>(zeros) /
                            static_cast<double>(count);
}

double
measuredSparsityBf16(const MemoryImage &mem, uint64_t base, uint64_t count)
{
    uint64_t zeros = 0;
    for (uint64_t i = 0; i < count; ++i)
        if (bf16IsZero(mem.readBf16(base + 2 * i)))
            ++zeros;
    return count == 0 ? 0.0
                      : static_cast<double>(zeros) /
                            static_cast<double>(count);
}

} // namespace save
