/**
 * @file
 * The save-serve daemon: simulation-as-a-service over a Unix-domain
 * socket (DESIGN.md §14).
 *
 * One accept loop + N worker threads, each worker owning its own
 * SimSession while all sessions share one ThreadPool and one
 * content-addressed ResultStore:
 *
 *   accept -> read SREQ (2s deadline) -> control kinds answered
 *   inline; work kinds pass admission control: a bounded queue with
 *   three priority classes. A full queue sheds the request with a
 *   typed SBSY reply — the client never hangs on an overloaded
 *   daemon.
 *
 * Fault and lifetime policy:
 *  - per-request deadlines (ServeRequest::deadlineMs) checked between
 *    queue pop and sweep points (coarse: a single network evaluation
 *    is never interrupted mid-flight);
 *  - client disconnect aborts an in-flight sweep at the next progress
 *    point (EPIPE on the SPRG write, or a zero-byte MSG_PEEK);
 *  - slice-level faults stay contained by the estimator's retry /
 *    NaN-poisoning / worker-sandbox machinery — a crashing slice
 *    storm degrades that one request, not the daemon;
 *  - SIGTERM/SIGINT (or a Drain request) drains gracefully: stop
 *    accepting, finish queued + in-flight work, exit 0;
 *  - SIGHUP re-reads the optional config file (queue_cap=N) and bumps
 *    the `reloads` status counter.
 *
 * A stale socket file (daemon died without unlinking) is detected by
 * probing it with connect(2): ECONNREFUSED means no listener owns it,
 * so it is unlinked and rebound; a live listener is a hard error.
 */

#ifndef SAVE_SERVE_SERVER_H
#define SAVE_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/session.h"

namespace save {

class ServeServer
{
  public:
    struct Options
    {
        /** Socket path; length-limited by sockaddr_un (~107 bytes). */
        std::string socketPath;
        /** Serve worker threads (each owns a SimSession). */
        int workers = 2;
        /** Admission-queue bound across all priority classes. */
        int queueCap = 8;
        MachineConfig mcfg{};
        SaveConfig scfg{};
        /** Environment snapshot taken by the caller (main). */
        RuntimeOptions runtime{};
        /** Optional key=value config file re-read on SIGHUP. */
        std::string configPath;
        /** Emulate a protocol-v1 daemon: advertise version 1 in
         *  Status and reject SSHD frames exactly as a real v1 build
         *  would (unknown-fourcc TraceError -> typed SERR). Lets the
         *  version-skew tests run against this binary. */
        bool v1Compat = false;
        /** Test hook: sleep this long before every shard point, to
         *  fake a straggler backend (SAVE_SERVE_TEST_POINT_DELAY_MS).
         */
        int testPointDelayMs = 0;
    };

    explicit ServeServer(Options opt);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Bind, listen, serve until drained. Returns the process exit
     * code: 0 after a graceful drain (SIGTERM/SIGINT/Drain request).
     * Throws ConfigError for an unusable socket path or a live
     * daemon already bound to it.
     */
    int run();

    /** Ask the accept loop to drain (thread-safe; used by tests). */
    void requestDrain();

  private:
    struct Job
    {
        int fd = -1;
        ServeRequest req;
        /** CLOCK_MONOTONIC ns admission stamp; 0 deadline = none. */
        uint64_t admittedNs = 0;
        /** v2 batched shard job (SSHD); req then only carries the
         *  mirrored priority/deadline for the queue machinery. */
        bool isShard = false;
        ServeShardJob shard;
    };

    int bindSocket();
    void acceptLoop(int listen_fd, int sig_fd);
    void handleConnection(int fd);
    void controlReply(int fd, const ServeRequest &req);
    ServeStatus statusSnapshot();
    void reloadConfig();

    void workerLoop(int index);
    void executeJob(SimSession &session, Job &job);
    void sendErrorReply(int fd, const std::exception &e);

    /** Pop the highest-priority job; blocks until one arrives or the
     *  drain completes (returns false). */
    bool popJob(Job &out);

    Options opt_;

    std::shared_ptr<ThreadPool> pool_;
    std::unique_ptr<ResultStore> store_;

    std::mutex qmu_;
    std::condition_variable qcv_;
    std::deque<Job> queues_[3]; ///< indexed by ServePriority
    int queuedTotal_ = 0;

    std::atomic<bool> draining_{false};
    std::atomic<int> queueCap_{0};
    std::atomic<uint32_t> reloads_{0};
    std::atomic<uint32_t> active_{0};
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> errors_{0};

    std::vector<std::thread> workers_;
};

} // namespace save

#endif // SAVE_SERVE_SERVER_H
