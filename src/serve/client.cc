#include "serve/client.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.h"

namespace save {

ServeClient::ServeClient(std::string socketPath)
    : path_(std::move(socketPath))
{
    // A daemon that dies mid-reply must surface as EPIPE on our next
    // write, not kill the client process.
    std::signal(SIGPIPE, SIG_IGN);
}

ServeClient::Reply
ServeClient::call(const ServeRequest &req, const ProgressFn &progress,
                  int timeout_ms)
{
    struct sockaddr_un addr;
    if (path_.size() >= sizeof(addr.sun_path))
        throw ConfigError("socket path too long: " + path_);
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw SimError(std::string("cannot create socket: ") +
                       std::strerror(errno));
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int e = errno;
        ::close(fd);
        std::string hint =
            (e == ECONNREFUSED || e == ENOENT)
                ? " (is save-serve running on this socket?)"
                : "";
        throw SimError("cannot connect to " + path_ + ": " +
                       std::strerror(e) + hint);
    }

    Reply reply;
    try {
        if (!frameWriteFd(fd, kServeRequest, kServeVersion,
                          serveEncodeRequest(req)))
            throw SimError(std::string("request write failed: ") +
                           std::strerror(errno));
        for (;;) {
            Frame f;
            FrameRead r = frameReadFd(fd, f, timeout_ms,
                                      serveKnownFourcc,
                                      kServeMaxPayload, "serve");
            if (r == FrameRead::Eof)
                throw SimError(
                    "daemon closed the connection without a reply "
                    "(request " +
                    std::string(serveKindName(req.kind)) + ")");
            if (r == FrameRead::Timeout)
                throw SimError(
                    "no reply from " + path_ + " within " +
                    std::to_string(timeout_ms) + "ms");
            if (f.fourcc == kServeProgress) {
                if (progress)
                    progress(serveDecodeProgress(f.payload));
                continue;
            }
            if (f.fourcc == kServeResult) {
                reply.kind = Reply::Kind::Ok;
                switch (req.kind) {
                case ServeKind::Status:
                    reply.status = serveDecodeStatus(f.payload);
                    break;
                case ServeKind::Gemm:
                    reply.gemm = wireDecodeSliceResult(f.payload);
                    break;
                case ServeKind::Fig14:
                    reply.text.assign(f.payload.begin(),
                                      f.payload.end());
                    break;
                case ServeKind::Ping:
                case ServeKind::Drain:
                    break;
                }
                break;
            }
            if (f.fourcc == kServeError) {
                reply.kind = Reply::Kind::Error;
                reply.error = wireDecodeError(f.payload);
                break;
            }
            if (f.fourcc == kServeBusy) {
                reply.kind = Reply::Kind::Busy;
                reply.busy = serveDecodeBusy(f.payload);
                break;
            }
            throw TraceError("serve: unexpected reply frame " +
                             frameFourccName(f.fourcc));
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return reply;
}

ServeClient::Reply
ServeClient::callShard(const ServeShardJob &job, const AckFn &onAck,
                       int timeout_ms)
{
    struct sockaddr_un addr;
    if (path_.size() >= sizeof(addr.sun_path))
        throw ConfigError("socket path too long: " + path_);
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw SimError(std::string("cannot create socket: ") +
                       std::strerror(errno));
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int e = errno;
        ::close(fd);
        std::string hint =
            (e == ECONNREFUSED || e == ENOENT)
                ? " (is save-serve running on this socket?)"
                : "";
        throw SimError("cannot connect to " + path_ + ": " +
                       std::strerror(e) + hint);
    }

    Reply reply;
    try {
        if (!frameWriteFd(fd, kServeShardJob, kServeVersion,
                          serveEncodeShardJob(job)))
            throw SimError(std::string("shard job write failed: ") +
                           std::strerror(errno));
        for (;;) {
            Frame f;
            FrameRead r = frameReadFd(fd, f, timeout_ms,
                                      serveKnownFourcc,
                                      kServeMaxPayload, "serve");
            if (r == FrameRead::Eof)
                throw SimError(
                    "daemon closed the connection mid-batch");
            if (r == FrameRead::Timeout)
                throw SimError(
                    "no shard ack from " + path_ + " within " +
                    std::to_string(timeout_ms) + "ms");
            if (f.fourcc == kServeProgress) {
                ServeShardAck ack = serveDecodeShardAck(f.payload);
                if (onAck)
                    onAck(ack);
                continue;
            }
            if (f.fourcc == kServeResult) {
                reply.kind = Reply::Kind::Ok;
                break;
            }
            if (f.fourcc == kServeError) {
                reply.kind = Reply::Kind::Error;
                reply.error = wireDecodeError(f.payload);
                break;
            }
            if (f.fourcc == kServeBusy) {
                reply.kind = Reply::Kind::Busy;
                reply.busy = serveDecodeBusy(f.payload);
                break;
            }
            throw TraceError("serve: unexpected reply frame " +
                             frameFourccName(f.fourcc));
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return reply;
}

} // namespace save
