/**
 * @file
 * ServeClient: the client side of the save-serve protocol. One
 * request per connection: connect, send SREQ, consume streamed SPRG
 * progress frames, and return the terminal SRES/SERR/SBSY as a typed
 * Reply. `save-ctl` and the serve tests are the two users.
 *
 * Failure policy mirrors the rest of the harness: connection refusal,
 * timeouts, and protocol corruption throw SimError/TraceError with
 * actionable messages (never a hang — every read is
 * deadline-bounded); an overloaded daemon is NOT an exception but a
 * Reply::Kind::Busy, because load-shedding is an expected answer.
 */

#ifndef SAVE_SERVE_CLIENT_H
#define SAVE_SERVE_CLIENT_H

#include <functional>
#include <string>

#include "serve/protocol.h"

namespace save {

class ServeClient
{
  public:
    /** Progress callback for streamed sweeps. */
    using ProgressFn = std::function<void(const ServeProgress &)>;

    struct Reply
    {
        enum class Kind
        {
            Ok,
            Busy,
            Error,
        };
        Kind kind = Kind::Ok;
        /** Kind::Error: the daemon-side failure, taxonomy-mapped. */
        WireErrorInfo error;
        /** Kind::Busy: why admission shed the request. */
        ServeBusyInfo busy;
        /** Ok replies, by request kind. */
        ServeStatus status;         ///< Status
        WireSliceResult gemm;       ///< Gemm
        std::string text;           ///< Fig14 report
    };

    /** Does not connect; every call() opens its own connection. */
    explicit ServeClient(std::string socketPath);

    /**
     * Send one request and wait for the terminal reply. `timeout_ms`
     * bounds every frame read (< 0 waits forever); a sweep that
     * streams progress resets the clock at each frame. Throws
     * SimError when the daemon is unreachable or times out,
     * TraceError on protocol corruption.
     */
    Reply call(const ServeRequest &req,
               const ProgressFn &progress = nullptr,
               int timeout_ms = -1);

    /** Per-point ack callback for batched shard jobs (v2). */
    using AckFn = std::function<void(const ServeShardAck &)>;

    /**
     * Send one batched SSHD shard job (protocol v2) and stream every
     * per-point ack through `onAck`; the terminal frame becomes the
     * Reply exactly as in call(). A v1 daemon answers SSHD with a
     * typed Trace SERR (unknown fourcc), which surfaces here as
     * Reply::Kind::Error — the coordinator's cue to stop sending this
     * backend batches. `timeout_ms` bounds every frame read and
     * resets at each ack.
     */
    Reply callShard(const ServeShardJob &job,
                    const AckFn &onAck = nullptr,
                    int timeout_ms = -1);

    const std::string &socketPath() const { return path_; }

  private:
    std::string path_;
};

} // namespace save

#endif // SAVE_SERVE_CLIENT_H
