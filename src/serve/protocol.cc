#include "serve/protocol.h"

#include "util/error.h"

namespace save {

const char *
serveKindName(ServeKind k)
{
    switch (k) {
    case ServeKind::Ping:
        return "ping";
    case ServeKind::Status:
        return "status";
    case ServeKind::Drain:
        return "drain";
    case ServeKind::Gemm:
        return "gemm";
    case ServeKind::Fig14:
        return "fig14";
    }
    return "?";
}

const char *
servePriorityName(ServePriority p)
{
    switch (p) {
    case ServePriority::High:
        return "high";
    case ServePriority::Normal:
        return "normal";
    case ServePriority::Low:
        return "low";
    }
    return "?";
}

std::vector<uint8_t>
serveEncodeRequest(const ServeRequest &r)
{
    std::vector<uint8_t> p;
    framePutU32(p, static_cast<uint32_t>(r.kind));
    framePutU32(p, static_cast<uint32_t>(r.priority));
    framePutU32(p, r.deadlineMs);
    switch (r.kind) {
    case ServeKind::Ping:
    case ServeKind::Status:
    case ServeKind::Drain:
        break;
    case ServeKind::Gemm:
        framePutStruct(p, r.gemm);
        framePutU32(p, static_cast<uint32_t>(r.cores));
        framePutU32(p, static_cast<uint32_t>(r.vpus));
        break;
    case ServeKind::Fig14:
        framePutStruct(p, r.fig14);
        break;
    }
    return p;
}

ServeRequest
serveDecodeRequest(uint32_t version, const std::vector<uint8_t> &p)
{
    if (version < kServeMinVersion || version > kServeVersion)
        throw TraceError("serve protocol version mismatch: peer speaks v" +
                         std::to_string(version) + ", this build is v" +
                         std::to_string(kServeVersion) + " (oldest v" +
                         std::to_string(kServeMinVersion) + ")");
    const uint8_t *q = p.data();
    const uint8_t *end = q + p.size();
    ServeRequest r;
    uint32_t kind = frameGetU32(q, end);
    if (kind > static_cast<uint32_t>(ServeKind::Fig14))
        throw TraceError("serve request: unknown kind " +
                         std::to_string(kind));
    r.kind = static_cast<ServeKind>(kind);
    uint32_t prio = frameGetU32(q, end);
    if (prio > static_cast<uint32_t>(ServePriority::Low))
        throw TraceError("serve request: unknown priority " +
                         std::to_string(prio));
    r.priority = static_cast<ServePriority>(prio);
    r.deadlineMs = frameGetU32(q, end);
    switch (r.kind) {
    case ServeKind::Ping:
    case ServeKind::Status:
    case ServeKind::Drain:
        break;
    case ServeKind::Gemm:
        r.gemm = frameGetStruct<GemmConfig>(q, end, "GemmConfig");
        r.cores = static_cast<int32_t>(frameGetU32(q, end));
        r.vpus = static_cast<int32_t>(frameGetU32(q, end));
        break;
    case ServeKind::Fig14:
        r.fig14 = frameGetStruct<Fig14Knobs>(q, end, "Fig14Knobs");
        break;
    }
    if (q != end)
        throw TraceError("serve request: " +
                         std::to_string(end - q) +
                         " trailing byte(s) after payload");
    return r;
}

std::vector<uint8_t>
serveEncodeStatus(const ServeStatus &s)
{
    std::vector<uint8_t> p;
    framePutStruct(p, s);
    return p;
}

ServeStatus
serveDecodeStatus(const std::vector<uint8_t> &p)
{
    const uint8_t *q = p.data();
    const uint8_t *end = q + p.size();
    return frameGetStruct<ServeStatus>(q, end, "ServeStatus");
}

std::vector<uint8_t>
serveEncodeProgress(const ServeProgress &pr)
{
    std::vector<uint8_t> p;
    framePutU32(p, pr.done);
    framePutU32(p, pr.total);
    framePutString(p, pr.key);
    return p;
}

ServeProgress
serveDecodeProgress(const std::vector<uint8_t> &p)
{
    const uint8_t *q = p.data();
    const uint8_t *end = q + p.size();
    ServeProgress pr;
    pr.done = frameGetU32(q, end);
    pr.total = frameGetU32(q, end);
    pr.key = frameGetString(q, end);
    return pr;
}

std::vector<uint8_t>
serveEncodeBusy(const ServeBusyInfo &b)
{
    std::vector<uint8_t> p;
    framePutString(p, b.reason);
    framePutU32(p, b.queued);
    framePutU32(p, b.queueCap);
    return p;
}

ServeBusyInfo
serveDecodeBusy(const std::vector<uint8_t> &p)
{
    const uint8_t *q = p.data();
    const uint8_t *end = q + p.size();
    ServeBusyInfo b;
    b.reason = frameGetString(q, end);
    b.queued = frameGetU32(q, end);
    b.queueCap = frameGetU32(q, end);
    return b;
}

std::vector<uint8_t>
serveEncodeShardJob(const ServeShardJob &j)
{
    std::vector<uint8_t> p;
    framePutU32(p, static_cast<uint32_t>(j.priority));
    framePutU32(p, j.deadlineMs);
    framePutStruct(p, j.knobs);
    framePutU32(p, static_cast<uint32_t>(j.points.size()));
    for (uint32_t idx : j.points)
        framePutU32(p, idx);
    return p;
}

ServeShardJob
serveDecodeShardJob(uint32_t version, const std::vector<uint8_t> &p)
{
    if (version < kServeShardVersion || version > kServeVersion)
        throw TraceError("serve shard job needs protocol v" +
                         std::to_string(kServeShardVersion) +
                         ", peer speaks v" + std::to_string(version) +
                         ", this build is v" +
                         std::to_string(kServeVersion));
    const uint8_t *q = p.data();
    const uint8_t *end = q + p.size();
    ServeShardJob j;
    uint32_t prio = frameGetU32(q, end);
    if (prio > static_cast<uint32_t>(ServePriority::Low))
        throw TraceError("serve shard job: unknown priority " +
                         std::to_string(prio));
    j.priority = static_cast<ServePriority>(prio);
    j.deadlineMs = frameGetU32(q, end);
    j.knobs = frameGetStruct<Fig14Knobs>(q, end, "Fig14Knobs");
    uint32_t n = frameGetU32(q, end);
    // Each index needs 4 payload bytes, so a count that outruns the
    // remaining payload is corruption, not a huge allocation.
    if (n > static_cast<uint32_t>((end - q) / 4))
        throw TraceError("serve shard job: point count " +
                         std::to_string(n) + " exceeds payload");
    j.points.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        j.points.push_back(frameGetU32(q, end));
    if (q != end)
        throw TraceError("serve shard job: " +
                         std::to_string(end - q) +
                         " trailing byte(s) after payload");
    return j;
}

std::vector<uint8_t>
serveEncodeShardAck(const ServeShardAck &a)
{
    std::vector<uint8_t> p;
    framePutU32(p, a.index);
    framePutString(p, a.key);
    framePutStruct(p, a.result);
    return p;
}

ServeShardAck
serveDecodeShardAck(const std::vector<uint8_t> &p)
{
    const uint8_t *q = p.data();
    const uint8_t *end = q + p.size();
    ServeShardAck a;
    a.index = frameGetU32(q, end);
    a.key = frameGetString(q, end);
    a.result = frameGetStruct<NetResult>(q, end, "NetResult");
    if (q != end)
        throw TraceError("serve shard ack: " +
                         std::to_string(end - q) +
                         " trailing byte(s) after payload");
    return a;
}

bool
serveKnownFourcc(uint32_t fourcc)
{
    return fourcc == kServeRequest || fourcc == kServeResult ||
           fourcc == kServeError || fourcc == kServeBusy ||
           fourcc == kServeProgress || fourcc == kServeShardJob;
}

bool
serveKnownFourccV1(uint32_t fourcc)
{
    return fourcc == kServeRequest || fourcc == kServeResult ||
           fourcc == kServeError || fourcc == kServeBusy ||
           fourcc == kServeProgress;
}

} // namespace save
