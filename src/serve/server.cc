#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "util/error.h"
#include "util/logging.h"
#include "util/posix_io.h"

namespace save {

namespace {

/** Self-pipe write end for the async-signal-safe handler. */
std::atomic<int> g_signal_wfd{-1};

void
onSignal(int sig)
{
    int fd = g_signal_wfd.load(std::memory_order_relaxed);
    if (fd < 0)
        return;
    unsigned char b = (sig == SIGHUP) ? 'H' : 'T';
    // Nonblocking pipe: a full pipe just drops the byte (the pending
    // one already wakes the accept loop).
    ssize_t r = ::write(fd, &b, 1);
    (void)r;
}

uint64_t
nowNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

/** True when the peer closed its end (a zero-byte MSG_PEEK). */
bool
clientGone(int fd)
{
    char b;
    ssize_t r = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
    return r == 0;
}

WireErrorInfo
classifyError(const std::exception &e)
{
    WireErrorInfo info;
    info.what = e.what();
    if (dynamic_cast<const ConfigError *>(&e) != nullptr)
        info.kind = WireErrorKind::Config;
    else if (dynamic_cast<const TraceError *>(&e) != nullptr)
        info.kind = WireErrorKind::Trace;
    else if (dynamic_cast<const DeadlockError *>(&e) != nullptr)
        info.kind = WireErrorKind::Deadlock;
    else if (dynamic_cast<const CacheError *>(&e) != nullptr)
        info.kind = WireErrorKind::Cache;
    else if (dynamic_cast<const AuditError *>(&e) != nullptr)
        info.kind = WireErrorKind::Audit;
    else if (dynamic_cast<const std::bad_alloc *>(&e) != nullptr)
        info.kind = WireErrorKind::Oom;
    else
        info.kind = WireErrorKind::Generic;
    return info;
}

} // namespace

ServeServer::ServeServer(Options opt) : opt_(std::move(opt))
{
    if (opt_.socketPath.empty())
        throw ConfigError("save-serve needs a socket path (--socket)");
    struct sockaddr_un addr;
    if (opt_.socketPath.size() >= sizeof(addr.sun_path))
        throw ConfigError("socket path too long (" +
                          std::to_string(opt_.socketPath.size()) +
                          " bytes; the sockaddr_un limit is " +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          "): " + opt_.socketPath);
    if (opt_.workers < 1)
        throw ConfigError("--workers must be >= 1 (got " +
                          std::to_string(opt_.workers) + ")");
    if (opt_.queueCap < 1)
        throw ConfigError("--queue-cap must be >= 1 (got " +
                          std::to_string(opt_.queueCap) + ")");
    queueCap_.store(opt_.queueCap);

    pool_ = std::make_shared<ThreadPool>(
        std::max(1, opt_.runtime.resolveThreads()));
    ResultStore::Options so;
    if (opt_.runtime.cacheDir != "none" && opt_.runtime.cacheDir != "-")
        so.dir = opt_.runtime.cacheDir;
    so.maxBytes = opt_.runtime.cacheMaxBytes();
    store_ = std::make_unique<ResultStore>(so);
}

ServeServer::~ServeServer() = default;

int
ServeServer::bindSocket()
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opt_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw ConfigError(std::string("cannot create socket: ") +
                          std::strerror(errno));
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int bind_errno = errno;
        if (bind_errno == EADDRINUSE) {
            // Stale-socket detection: probe the path. ECONNREFUSED
            // means the file exists but nothing listens (a daemon
            // died without unlinking) — reclaim it. A successful
            // connect means a live daemon owns it.
            int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if (probe >= 0) {
                int rc = ::connect(
                    probe, reinterpret_cast<struct sockaddr *>(&addr),
                    sizeof(addr));
                int probe_errno = errno;
                ::close(probe);
                if (rc == 0) {
                    ::close(fd);
                    throw ConfigError(
                        "a live save-serve daemon already listens on " +
                        opt_.socketPath);
                }
                if (probe_errno == ECONNREFUSED) {
                    SAVE_WARN("reclaiming stale socket ",
                              opt_.socketPath);
                    ::unlink(opt_.socketPath.c_str());
                    if (::bind(fd,
                               reinterpret_cast<struct sockaddr *>(
                                   &addr),
                               sizeof(addr)) == 0)
                        bind_errno = 0;
                    else
                        bind_errno = errno;
                }
            }
        }
        if (bind_errno != 0) {
            ::close(fd);
            throw ConfigError("cannot bind " + opt_.socketPath + ": " +
                              std::strerror(bind_errno));
        }
    }
    if (::listen(fd, 64) != 0) {
        int e = errno;
        ::close(fd);
        ::unlink(opt_.socketPath.c_str());
        throw ConfigError("cannot listen on " + opt_.socketPath + ": " +
                          std::strerror(e));
    }
    return fd;
}

int
ServeServer::run()
{
    int listen_fd = bindSocket();

    int sig_pipe[2];
    if (::pipe2(sig_pipe, O_CLOEXEC | O_NONBLOCK) != 0) {
        int e = errno;
        ::close(listen_fd);
        ::unlink(opt_.socketPath.c_str());
        throw ConfigError(std::string("cannot create signal pipe: ") +
                          std::strerror(e));
    }
    g_signal_wfd.store(sig_pipe[1]);

    // EPIPE from a dead client must surface as a write error, not
    // kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGHUP, &sa, nullptr);

    SAVE_INFORM("save-serve listening on ", opt_.socketPath, " (",
              opt_.workers, " worker(s), queue cap ", queueCap_.load(),
              ", pool ", pool_->size(), " thread(s), cache ",
              store_->enabled() ? store_->dir() : "disabled", ")");

    workers_.reserve(static_cast<size_t>(opt_.workers));
    for (int i = 0; i < opt_.workers; ++i)
        workers_.emplace_back(&ServeServer::workerLoop, this, i);

    acceptLoop(listen_fd, sig_pipe[0]);

    // Graceful drain: no new connections; queued + in-flight work
    // finishes before the workers exit.
    ::close(listen_fd);
    qcv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();

    g_signal_wfd.store(-1);
    ::close(sig_pipe[0]);
    ::close(sig_pipe[1]);
    ::unlink(opt_.socketPath.c_str());
    SAVE_INFORM("save-serve drained: ", completed_.load(),
              " completed, ", shed_.load(), " shed, ", errors_.load(),
              " error(s)");
    return 0;
}

void
ServeServer::requestDrain()
{
    draining_.store(true);
    qcv_.notify_all();
    int fd = g_signal_wfd.load();
    if (fd >= 0) {
        unsigned char b = 'T';
        ssize_t r = ::write(fd, &b, 1);
        (void)r;
    }
}

void
ServeServer::acceptLoop(int listen_fd, int sig_fd)
{
    while (!draining_.load()) {
        struct pollfd pfds[2];
        pfds[0].fd = listen_fd;
        pfds[0].events = POLLIN;
        pfds[0].revents = 0;
        pfds[1].fd = sig_fd;
        pfds[1].events = POLLIN;
        pfds[1].revents = 0;
        int r = ::poll(pfds, 2, -1);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            SAVE_WARN("accept poll failed: ", std::strerror(errno),
                      "; draining");
            draining_.store(true);
            break;
        }
        if (pfds[1].revents != 0) {
            unsigned char b;
            while (::read(sig_fd, &b, 1) == 1) {
                if (b == 'H')
                    reloadConfig();
                else
                    draining_.store(true);
            }
        }
        if (draining_.load())
            break;
        if (pfds[0].revents != 0) {
            int cfd = ::accept4(listen_fd, nullptr, nullptr,
                                SOCK_CLOEXEC);
            if (cfd < 0) {
                if (errno != EINTR && errno != ECONNABORTED)
                    SAVE_WARN("accept failed: ", std::strerror(errno));
                continue;
            }
            handleConnection(cfd);
        }
    }
}

void
ServeServer::handleConnection(int fd)
{
    Frame f;
    ServeRequest req;
    ServeShardJob shard;
    bool is_shard = false;
    try {
        // A client that connects and dawdles must not wedge the
        // accept loop: the whole request has 2s to arrive. In
        // --v1-compat mode the v1 predicate rejects SSHD with the
        // same unknown-fourcc TraceError a real v1 build raises.
        FrameRead r = frameReadFd(
            fd, f, 2000,
            opt_.v1Compat ? serveKnownFourccV1 : serveKnownFourcc,
            kServeMaxPayload, "serve");
        if (r != FrameRead::Ok) {
            if (r == FrameRead::Timeout)
                SAVE_WARN("dropping client: no request within 2s");
            ::close(fd);
            return;
        }
        if (f.fourcc == kServeShardJob) {
            shard = serveDecodeShardJob(f.arg, f.payload);
            is_shard = true;
        } else if (f.fourcc == kServeRequest) {
            req = serveDecodeRequest(f.arg, f.payload);
        } else {
            throw TraceError("serve: expected SREQ or SSHD, got " +
                             frameFourccName(f.fourcc));
        }
    } catch (const std::exception &e) {
        // Corrupt or mismatched request: typed reply, then drop the
        // connection. Never let one bad client kill the daemon.
        errors_.fetch_add(1);
        sendErrorReply(fd, e);
        ::close(fd);
        return;
    }

    if (!is_shard &&
        (req.kind == ServeKind::Ping || req.kind == ServeKind::Status ||
         req.kind == ServeKind::Drain)) {
        controlReply(fd, req);
        ::close(fd);
        return;
    }

    Job job;
    job.fd = fd;
    job.req = req;
    job.isShard = is_shard;
    job.shard = std::move(shard);
    if (is_shard) {
        // Mirror the batch's class/budget so admission and deadline
        // bookkeeping below need no shard-specific paths.
        job.req.priority = job.shard.priority;
        job.req.deadlineMs = job.shard.deadlineMs;
    }
    job.admittedNs = nowNs();
    {
        std::lock_guard<std::mutex> lk(qmu_);
        int cap = queueCap_.load();
        if (draining_.load() || queuedTotal_ >= cap) {
            ServeBusyInfo busy;
            busy.queued = static_cast<uint32_t>(queuedTotal_);
            busy.queueCap = static_cast<uint32_t>(cap);
            busy.reason =
                draining_.load()
                    ? "daemon is draining"
                    : "admission queue full (" +
                          std::to_string(queuedTotal_) + "/" +
                          std::to_string(cap) + ")";
            shed_.fetch_add(1);
            frameWriteFd(fd, kServeBusy, kServeVersion,
                         serveEncodeBusy(busy));
            ::close(fd);
            return;
        }
        queues_[static_cast<size_t>(req.priority)].push_back(
            std::move(job));
        ++queuedTotal_;
        accepted_.fetch_add(1);
    }
    qcv_.notify_one();
}

void
ServeServer::controlReply(int fd, const ServeRequest &req)
{
    std::vector<uint8_t> payload;
    if (req.kind == ServeKind::Status)
        payload = serveEncodeStatus(statusSnapshot());
    frameWriteFd(fd, kServeResult, static_cast<uint32_t>(req.kind),
                 payload);
    if (req.kind == ServeKind::Drain) {
        SAVE_INFORM("drain requested by client");
        draining_.store(true);
        qcv_.notify_all();
    }
}

ServeStatus
ServeServer::statusSnapshot()
{
    ServeStatus s;
    s.version = opt_.v1Compat ? 1 : kServeVersion;
    s.workers = static_cast<uint32_t>(opt_.workers);
    s.queueCap = static_cast<uint32_t>(queueCap_.load());
    {
        std::lock_guard<std::mutex> lk(qmu_);
        s.queued = static_cast<uint32_t>(queuedTotal_);
    }
    s.active = active_.load();
    s.draining = draining_.load() ? 1 : 0;
    s.reloads = reloads_.load();
    s.accepted = accepted_.load();
    s.completed = completed_.load();
    s.shed = shed_.load();
    s.errors = errors_.load();
    s.casHits = store_->hits();
    s.casMisses = store_->misses();
    s.casInserts = store_->inserts();
    return s;
}

void
ServeServer::reloadConfig()
{
    reloads_.fetch_add(1);
    if (opt_.configPath.empty()) {
        SAVE_INFORM("SIGHUP: no --config file to reload");
        return;
    }
    std::string text, why;
    if (!readFileBytes(opt_.configPath, text, &why)) {
        SAVE_WARN("SIGHUP: ", why, "; keeping current settings");
        return;
    }
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos) {
            SAVE_WARN("config ", opt_.configPath, ": ignoring line '",
                      line, "' (expected key=value)");
            continue;
        }
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        if (key == "queue_cap") {
            int cap = std::atoi(val.c_str());
            if (cap >= 1) {
                queueCap_.store(cap);
                SAVE_INFORM("SIGHUP: queue_cap -> ", cap);
            } else {
                SAVE_WARN("config queue_cap must be >= 1 (got '", val,
                          "')");
            }
        } else {
            SAVE_WARN("config ", opt_.configPath,
                      ": unknown key '", key, "' ignored");
        }
    }
}

bool
ServeServer::popJob(Job &out)
{
    std::unique_lock<std::mutex> lk(qmu_);
    for (;;) {
        qcv_.wait(lk, [&] {
            return queuedTotal_ > 0 || draining_.load();
        });
        for (std::deque<Job> &q : queues_) {
            if (!q.empty()) {
                out = std::move(q.front());
                q.pop_front();
                --queuedTotal_;
                return true;
            }
        }
        if (draining_.load())
            return false;
    }
}

void
ServeServer::workerLoop(int index)
{
    SimSession::Options so;
    so.mcfg = opt_.mcfg;
    so.scfg = opt_.scfg;
    so.runtime = opt_.runtime;
    so.sharedPool = pool_.get();
    so.sharedStore = store_.get();
    SimSession session(std::move(so));
    (void)index;

    Job job;
    while (popJob(job))
        executeJob(session, job);
}

void
ServeServer::executeJob(SimSession &session, Job &job)
{
    const int fd = job.fd;
    active_.fetch_add(1);
    const uint64_t deadline_ns =
        job.req.deadlineMs == 0
            ? 0
            : job.admittedNs +
                  static_cast<uint64_t>(job.req.deadlineMs) * 1000000ull;
    try {
        if (clientGone(fd)) {
            // The client gave up while the job sat in the queue; do
            // not burn a sweep on a reply nobody will read.
            errors_.fetch_add(1);
            ::close(fd);
            active_.fetch_sub(1);
            return;
        }
        if (deadline_ns != 0 && nowNs() > deadline_ns)
            throw SimError("deadline of " +
                           std::to_string(job.req.deadlineMs) +
                           "ms exceeded while queued");

        if (job.isShard) {
            const std::vector<Fig14Point> &pts = fig14Points();
            for (uint32_t idx : job.shard.points) {
                if (deadline_ns != 0 && nowNs() > deadline_ns)
                    throw SimError(
                        "deadline of " +
                        std::to_string(job.shard.deadlineMs) +
                        "ms exceeded mid-batch");
                if (clientGone(fd))
                    throw SimError("client disconnected mid-batch");
                if (idx >= pts.size())
                    throw ConfigError(
                        "shard point index " + std::to_string(idx) +
                        " out of range [0, " +
                        std::to_string(pts.size()) + ")");
                if (opt_.testPointDelayMs > 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            opt_.testPointDelayMs));
                ServeShardAck ack;
                ack.index = idx;
                ack.key = pts[idx].key;
                ack.result = session.runFig14Point(
                    job.shard.knobs, static_cast<int>(idx));
                if (!frameWriteFd(fd, kServeProgress, idx,
                                  serveEncodeShardAck(ack)))
                    throw SimError(
                        std::string(
                            "client disconnected (ack write: ") +
                        std::strerror(errno) + ")");
            }
            if (!frameWriteFd(fd, kServeResult, kServeVersion, {}))
                throw SimError(
                    std::string("result write failed: ") +
                    std::strerror(errno));
        } else if (job.req.kind == ServeKind::Gemm) {
            KernelResult kr =
                session.runGemm(job.req.gemm, job.req.cores,
                                job.req.vpus);
            WireSliceResult res;
            res.timeNs = kr.timeNs;
            res.cycles = kr.cycles;
            res.coreGhz = kr.coreGhz;
            for (const auto &[name, value] : kr.stats.all())
                res.stats.emplace_back(name, value);
            if (!frameWriteFd(fd, kServeResult,
                              static_cast<uint32_t>(job.req.kind),
                              wireEncodeSliceResult(res)))
                throw SimError(
                    std::string("result write failed: ") +
                    std::strerror(errno));
        } else {
            Fig14Progress progress = [&](int done, int total,
                                         const std::string &key) {
                if (deadline_ns != 0 && nowNs() > deadline_ns)
                    throw SimError(
                        "deadline of " +
                        std::to_string(job.req.deadlineMs) +
                        "ms exceeded mid-sweep (after " +
                        std::to_string(done) + "/" +
                        std::to_string(total) + " points)");
                if (clientGone(fd))
                    throw SimError("client disconnected mid-sweep");
                ServeProgress pr;
                pr.done = static_cast<uint32_t>(done);
                pr.total = static_cast<uint32_t>(total);
                pr.key = key;
                if (!frameWriteFd(fd, kServeProgress, kServeVersion,
                                  serveEncodeProgress(pr)))
                    throw SimError(
                        std::string(
                            "client disconnected (progress write: ") +
                        std::strerror(errno) + ")");
            };
            std::string report =
                session.runFig14(job.req.fig14, progress);
            std::vector<uint8_t> payload(report.begin(), report.end());
            if (!frameWriteFd(fd, kServeResult,
                              static_cast<uint32_t>(job.req.kind),
                              payload))
                throw SimError(
                    std::string("result write failed: ") +
                    std::strerror(errno));
        }
        completed_.fetch_add(1);
    } catch (const std::exception &e) {
        errors_.fetch_add(1);
        SAVE_WARN("request ",
                  job.isShard ? "shard" : serveKindName(job.req.kind),
                  " failed: ", e.what());
        sendErrorReply(fd, e);
    }
    ::close(fd);
    active_.fetch_sub(1);
}

void
ServeServer::sendErrorReply(int fd, const std::exception &e)
{
    // Best-effort: the client may already be gone (EPIPE is the very
    // thing that aborted the job).
    frameWriteFd(fd, kServeError, kServeVersion,
                 wireEncodeError(classifyError(e)));
}

} // namespace save
