#include "serve/session.h"

#include <algorithm>
#include <cmath>

#include "cache/cas_key.h"
#include "util/error.h"

namespace save {

std::string
fig14IsolationName(int32_t code)
{
    switch (code) {
    case 0:
        return "";
    case 1:
        return "none";
    case 2:
        return "thread";
    case 3:
        return "process";
    default:
        throw ConfigError("unknown isolation code " +
                          std::to_string(code));
    }
}

int32_t
fig14IsolationCode(const std::string &name)
{
    if (name.empty())
        return 0;
    if (name == "none")
        return 1;
    if (name == "thread")
        return 2;
    if (name == "process")
        return 3;
    throw ConfigError("unknown isolation mode '" + name +
                      "' (expected none, thread, or process)");
}

SimSession::SimSession(Options opt) : opt_(std::move(opt))
{
    if (opt_.sharedPool != nullptr) {
        pool_ = opt_.sharedPool;
    } else {
        owned_pool_ = std::make_unique<ThreadPool>(
            std::max(1, opt_.runtime.resolveThreads()));
        pool_ = owned_pool_.get();
    }
    if (opt_.sharedStore != nullptr) {
        store_ = opt_.sharedStore;
    } else {
        // The snapshot is authoritative: resolve "none"/"-" here
        // instead of via ResultStore::resolveDir, which would consult
        // the environment again.
        ResultStore::Options so;
        if (opt_.runtime.cacheDir != "none" &&
            opt_.runtime.cacheDir != "-")
            so.dir = opt_.runtime.cacheDir;
        so.maxBytes = opt_.runtime.cacheMaxBytes();
        owned_store_ = std::make_unique<ResultStore>(so);
        store_ = owned_store_.get();
    }
}

SimSession::~SimSession() = default;

KernelResult
SimSession::runGemm(const GemmConfig &g, int cores, int vpus)
{
    // Exactly BenchResultCache's key (bench/bench_util.h): salt 0 for
    // raw Engine runs, so served and benched repeats share entries.
    const CasKey key{casHashConfig(opt_.mcfg, opt_.scfg, 0),
                     casGemmWorkload(g, cores, vpus)};
    CasValue v;
    if (store_->lookup(key, &v)) {
        KernelResult kr;
        kr.timeNs = v.timeNs;
        kr.cycles = v.cycles;
        kr.coreGhz = v.coreGhz;
        for (const auto &[name, value] : v.stats)
            kr.stats.set(name, value);
        return kr;
    }
    Engine eng(opt_.mcfg, opt_.scfg);
    KernelResult kr = eng.runGemm(g, cores, vpus);
    if (std::isfinite(kr.timeNs)) {
        v = CasValue{};
        v.timeNs = kr.timeNs;
        v.cycles = kr.cycles;
        v.coreGhz = kr.coreGhz;
        for (const auto &[name, value] : kr.stats.all())
            v.stats.emplace_back(name, value);
        store_->insert(key, v);
    }
    return kr;
}

TrainingEstimator &
SimSession::estimatorFor(const Fig14Knobs &k)
{
    const std::string id =
        std::to_string(k.gridStep) + "/" + std::to_string(k.kSteps) +
        "/" + std::to_string(k.tiles) + "/" + std::to_string(k.cores) +
        "/" + std::to_string(k.seed) + "/" + std::to_string(k.threads) +
        "/" + std::to_string(k.isolation);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = estimators_.find(id);
    if (it != estimators_.end())
        return *it->second;

    EstimatorOptions eo;
    eo.gridStep = k.gridStep;
    eo.kSteps = k.kSteps;
    eo.tiles = k.tiles;
    eo.cores = k.cores;
    eo.seed = k.seed;
    std::string iso = fig14IsolationName(k.isolation);
    eo.isolation = iso.empty()
                       ? opt_.runtime.resolveIsolation()
                       : RuntimeOptions{.isolation = iso}
                             .resolveIsolation();
    eo.proc.workerBin = opt_.runtime.workerBin;
    eo.validate();

    // threads == 0 fans out over the session pool; an explicit
    // per-request count gets a dedicated estimator-owned pool (the
    // estimator handles threads <= 1 as its serial path).
    ThreadPool *pool = nullptr;
    if (k.threads == 0)
        pool = pool_;
    else
        eo.threads = k.threads;

    auto est = std::make_unique<TrainingEstimator>(
        opt_.mcfg, opt_.scfg, eo, pool, store_);
    TrainingEstimator &ref = *est;
    estimators_.emplace(id, std::move(est));
    return ref;
}

std::string
SimSession::runFig14(const Fig14Knobs &knobs,
                     const Fig14Progress &progress)
{
    TrainingEstimator &est = estimatorFor(knobs);
    Fig14Eval eval = [&est](const std::string &, const Fig14Entry &e,
                            bool training) {
        return training ? est.training(e.net, e.prec)
                        : est.inference(e.net, e.prec);
    };
    return fig14Report(eval, progress);
}

NetResult
SimSession::runFig14Point(const Fig14Knobs &knobs, int index)
{
    const std::vector<Fig14Point> &pts = fig14Points();
    if (index < 0 || index >= static_cast<int>(pts.size()))
        throw ConfigError("fig14 point index " + std::to_string(index) +
                          " out of range [0, " +
                          std::to_string(pts.size()) + ")");
    const Fig14Point &p = pts[static_cast<size_t>(index)];
    TrainingEstimator &est = estimatorFor(knobs);
    return p.training ? est.training(p.entry.net, p.entry.prec)
                      : est.inference(p.entry.net, p.entry.prec);
}

uint64_t
SimSession::simulations() const
{
    uint64_t n = 0;
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &[id, est] : estimators_)
        n += est->simulations();
    return n;
}

uint64_t
SimSession::sliceFailures() const
{
    uint64_t n = 0;
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &[id, est] : estimators_)
        n += est->failures().size();
    return n;
}

} // namespace save
