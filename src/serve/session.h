/**
 * @file
 * SimSession: the reentrant library facade over the simulation engine
 * and the whole-network estimator (DESIGN.md §14).
 *
 * A session owns everything one independent simulation context needs
 * — machine/feature configs, a RuntimeOptions snapshot, a thread-pool
 * handle, and a ResultStore handle — and touches no mutable process
 * globals: every environment knob is read exactly once, into the
 * RuntimeOptions snapshot captured at session creation (or injected
 * by the caller). That makes N sessions in one process safe to drive
 * concurrently with different settings, which is exactly what the
 * save-serve daemon does: one session per serve worker, all sharing
 * one ThreadPool and one content-addressed store.
 *
 * Results are bit-identical to the standalone benches by
 * construction:
 *  - runGemm uses the same CasKey as BenchResultCache
 *    (bench/bench_util.h), so a repeat slice — served or benched — is
 *    answered from the shared store in O(1) without re-simulating;
 *  - runFig14 renders through the shared dnn/fig14_report.h renderer
 *    over TrainingEstimator, so a served sweep's text matches
 *    `bench_fig14` stdout to the byte.
 */

#ifndef SAVE_SERVE_SESSION_H
#define SAVE_SERVE_SESSION_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cache/result_store.h"
#include "dnn/estimator.h"
#include "dnn/fig14_report.h"
#include "engine/engine.h"
#include "util/runtime_options.h"
#include "util/thread_pool.h"

namespace save {

/** Fig. 14 sweep knobs a session caller can vary per request.
 *  Defaults match bench_fig14 (grid=3 quick sampling). Trivially
 *  copyable: travels as raw bytes in the serve protocol. */
struct Fig14Knobs
{
    int32_t gridStep = 3;
    int32_t kSteps = 192;
    int32_t tiles = 6;
    int32_t cores = 1;
    uint64_t seed = 7;
    /** Fan-out threads; 0 = the session's shared pool. */
    int32_t threads = 0;
    /** Isolation override: 0 = session default ("" in RuntimeOptions
     *  terms), 1 = none, 2 = thread, 3 = process. An enum-as-int so
     *  the struct stays trivially copyable. */
    int32_t isolation = 0;
};

/** Fig14Knobs::isolation codes <-> resolveIsolation strings. */
std::string fig14IsolationName(int32_t code);
int32_t fig14IsolationCode(const std::string &name);

class SimSession
{
  public:
    struct Options
    {
        MachineConfig mcfg{};
        SaveConfig scfg{};
        /** Environment snapshot; callers override fields explicitly.
         *  The session never consults getenv after construction. */
        RuntimeOptions runtime{};
        /** Borrowed handles (must outlive the session); null = the
         *  session creates its own from `runtime`. */
        ThreadPool *sharedPool = nullptr;
        ResultStore *sharedStore = nullptr;
    };

    explicit SimSession(Options opt);
    ~SimSession();

    SimSession(const SimSession &) = delete;
    SimSession &operator=(const SimSession &) = delete;

    const MachineConfig &machine() const { return opt_.mcfg; }
    const SaveConfig &save() const { return opt_.scfg; }
    const RuntimeOptions &runtime() const { return opt_.runtime; }

    /**
     * One GEMM slice simulation, memoized in the content-addressed
     * store under the exact key BenchResultCache uses: a slice the
     * benches (or a previous request) already ran is answered from
     * the store without re-simulating.
     */
    KernelResult runGemm(const GemmConfig &g, int cores, int vpus);

    /**
     * The full Fig. 14 sweep; returns the report text (byte-identical
     * to bench_fig14 stdout for the same knobs). `progress` fires
     * after each of the 16 network evaluations and may throw to abort
     * the sweep. Estimators are cached per knob tuple, so repeat
     * sweeps reuse warm in-memory surfaces on top of the persistent
     * store.
     */
    std::string runFig14(const Fig14Knobs &knobs,
                         const Fig14Progress &progress = nullptr);

    /**
     * One Fig. 14 sweep point by canonical index (fig14Points()
     * order) — the shard-job unit of work. Identical arithmetic to
     * the same point inside runFig14: same estimator cache, same
     * store, so a shard-computed point is bit-identical to the
     * single-host bench's. Throws ConfigError on a bad index.
     */
    NetResult runFig14Point(const Fig14Knobs &knobs, int index);

    /** Slice simulations actually executed across all estimators this
     *  session created (store misses). */
    uint64_t simulations() const;

    /** Permanently failed slice points across all estimators. */
    uint64_t sliceFailures() const;

    /** The session's store (shared or owned; never null). */
    const ResultStore *resultStore() const { return store_; }

  private:
    TrainingEstimator &estimatorFor(const Fig14Knobs &k);

    Options opt_;

    std::unique_ptr<ThreadPool> owned_pool_;
    ThreadPool *pool_ = nullptr;

    std::unique_ptr<ResultStore> owned_store_;
    ResultStore *store_ = nullptr;

    /** Estimators keyed by the sweep-knob tuple; guarded by mu_. */
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<TrainingEstimator>> estimators_;
};

} // namespace save

#endif // SAVE_SERVE_SESSION_H
