/**
 * @file
 * The save-serve RPC protocol (DESIGN.md §14): length-prefixed,
 * CRC-framed request/reply frames over a Unix-domain stream socket,
 * the fourth user of the shared util/frame.h codec (after `.savtrc`
 * trace chunks, the worker pipe protocol, and CAS shard records).
 *
 * Connection shape — one request per connection:
 *
 *   client -> daemon   SREQ  (arg = protocol version; kind + priority
 *                             + deadline + kind-specific payload)
 *   daemon -> client   SPRG* (streamed progress, long sweeps only)
 *   daemon -> client   SRES  (arg = echoed kind; kind-specific payload)
 *                   or SERR  (SimError-taxonomy kind + message)
 *                   or SBSY  (admission queue full: typed load-shed,
 *                             never a hang — resubmit later)
 *
 * Protocol v2 adds the batched shard-job frame for the save-shard
 * coordinator (DESIGN.md §15):
 *
 *   client -> daemon   SSHD  (arg = version >= 2; priority + deadline
 *                             + Fig14Knobs + a list of sweep-point
 *                             indices into fig14Points())
 *   daemon -> client   SPRG* (arg = point index; ServeShardAck
 *                             payload: index + key + NetResult, one
 *                             per completed point — the coordinator
 *                             merges these in config-key order)
 *   daemon -> client   SRES  (empty: batch complete) or SERR / SBSY
 *
 * Version negotiation is one-sided and safe in both directions: a v2
 * client first reads ServeStatus.version and only sends SSHD to a v2
 * daemon; a v1 daemon that is sent SSHD anyway rejects the unknown
 * fourcc with a typed SERR (TraceError) and keeps serving its v1
 * single-request kinds, which a v2 daemon also still accepts (SREQ
 * frames with arg = 1 decode unchanged).
 *
 * Every frame is `u32 fourcc, u32 arg, u64 payloadBytes, u32
 * crc32(payload), payload`; any corruption (truncated frame, flipped
 * bit, unknown fourcc, oversized length, version skew) surfaces as
 * TraceError on the reading side. Config structs travel as raw bytes
 * of the trivially-copyable types guarded by struct-size fields —
 * daemon and client are built from one source tree, and a size or
 * version mismatch is rejected cleanly.
 *
 * Result payloads reuse the worker wire encodings (WireSliceResult,
 * WireErrorInfo) so a served GEMM result round-trips exactly the
 * bytes a sandboxed worker would ship.
 */

#ifndef SAVE_SERVE_PROTOCOL_H
#define SAVE_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/gemm.h"
#include "proc/wire_codec.h"
#include "serve/session.h"
#include "sim/config.h"
#include "util/frame.h"

namespace save {

/** Protocol version; bumped on any frame-layout change. Rides in the
 *  SREQ/SSHD `arg` slot and is echoed in ServeStatus. v2 adds the
 *  batched SSHD shard-job frame; v1 requests decode unchanged. */
constexpr uint32_t kServeVersion = 2;
/** Oldest request version this build still decodes. */
constexpr uint32_t kServeMinVersion = 1;
/** First version that understands SSHD shard jobs. */
constexpr uint32_t kServeShardVersion = 2;

/** Frame kinds. */
constexpr uint32_t kServeRequest = frameFourcc('S', 'R', 'E', 'Q');
constexpr uint32_t kServeResult = frameFourcc('S', 'R', 'E', 'S');
constexpr uint32_t kServeError = frameFourcc('S', 'E', 'R', 'R');
constexpr uint32_t kServeBusy = frameFourcc('S', 'B', 'S', 'Y');
constexpr uint32_t kServeProgress = frameFourcc('S', 'P', 'R', 'G');
constexpr uint32_t kServeShardJob = frameFourcc('S', 'S', 'H', 'D');

/** Upper bound on a frame payload; larger lengths are corruption. */
constexpr uint64_t kServeMaxPayload = 64ull << 20;

/** Request kinds. Ping/Status/Drain are control requests answered
 *  inline by the accept loop; Gemm/Fig14 are work requests that pass
 *  through admission control. */
enum class ServeKind : uint8_t
{
    Ping = 0,
    Status = 1,
    Drain = 2,
    Gemm = 3,
    Fig14 = 4,
};

/** Admission priority classes: the queue is drained High before
 *  Normal before Low; shedding applies to whatever cannot fit. */
enum class ServePriority : uint8_t
{
    High = 0,
    Normal = 1,
    Low = 2,
};

const char *serveKindName(ServeKind k);
const char *servePriorityName(ServePriority p);

/** One decoded request. Only the fields for `kind` are meaningful.
 *  The machine/feature configs are daemon-level (fixed at launch,
 *  like a model server pinned to one model), so requests carry only
 *  the workload. */
struct ServeRequest
{
    ServeKind kind = ServeKind::Ping;
    ServePriority priority = ServePriority::Normal;
    /** Wall-clock budget from admission to final frame, ms; 0 = none.
     *  Checked between queue pop / sweep points (coarse-grained). */
    uint32_t deadlineMs = 0;

    /** Gemm: the slice workload to simulate. */
    GemmConfig gemm{};
    int32_t cores = 1;
    int32_t vpus = 2;

    /** Fig14: sweep knobs (defaults match bench_fig14). */
    Fig14Knobs fig14{};
};

std::vector<uint8_t> serveEncodeRequest(const ServeRequest &r);
/** Throws TraceError on malformed payload, size or version mismatch
 *  (`version` is the frame's arg slot). */
ServeRequest serveDecodeRequest(uint32_t version,
                                const std::vector<uint8_t> &p);

/** Daemon counters, the Status reply payload. Trivially copyable. */
struct ServeStatus
{
    uint32_t version = kServeVersion;
    uint32_t workers = 0;
    uint32_t queueCap = 0;
    uint32_t queued = 0;
    uint32_t active = 0;
    uint32_t draining = 0;
    /** SIGHUP config reloads applied since start. */
    uint32_t reloads = 0;
    uint32_t pad_ = 0;
    uint64_t accepted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t errors = 0;
    uint64_t casHits = 0;
    uint64_t casMisses = 0;
    uint64_t casInserts = 0;
};

std::vector<uint8_t> serveEncodeStatus(const ServeStatus &s);
ServeStatus serveDecodeStatus(const std::vector<uint8_t> &p);

/** SPRG payload: sweep progress, one frame per completed point. */
struct ServeProgress
{
    uint32_t done = 0;
    uint32_t total = 0;
    std::string key;
};

std::vector<uint8_t> serveEncodeProgress(const ServeProgress &p);
ServeProgress serveDecodeProgress(const std::vector<uint8_t> &p);

/** SBSY payload: why admission shed the request. */
struct ServeBusyInfo
{
    std::string reason;
    uint32_t queued = 0;
    uint32_t queueCap = 0;
};

std::vector<uint8_t> serveEncodeBusy(const ServeBusyInfo &b);
ServeBusyInfo serveDecodeBusy(const std::vector<uint8_t> &p);

/**
 * SSHD payload (protocol v2): a batched shard job — one subset of the
 * Fig. 14 sweep, named by indices into fig14Points(). The coordinator
 * carves the sweep into these and fans them across backends.
 */
struct ServeShardJob
{
    ServePriority priority = ServePriority::Normal;
    /** Wall-clock budget for the whole batch, ms; 0 = none. */
    uint32_t deadlineMs = 0;
    Fig14Knobs knobs{};
    /** Indices into fig14Points(); validated against the enumeration
     *  size on the serving side. */
    std::vector<uint32_t> points;
};

std::vector<uint8_t> serveEncodeShardJob(const ServeShardJob &j);
/** Throws TraceError on malformed payload or a version below
 *  kServeShardVersion (`version` is the frame's arg slot). */
ServeShardJob serveDecodeShardJob(uint32_t version,
                                  const std::vector<uint8_t> &p);

/** Per-point SPRG ack for a shard job: the completed point's index,
 *  config key, and full result, streamed as soon as it finishes so
 *  the coordinator can re-dispatch only what is still outstanding. */
struct ServeShardAck
{
    uint32_t index = 0;
    std::string key;
    NetResult result{};
};

std::vector<uint8_t> serveEncodeShardAck(const ServeShardAck &a);
ServeShardAck serveDecodeShardAck(const std::vector<uint8_t> &p);

/** frameReadFd acceptance predicate for serve-protocol fourccs. */
bool serveKnownFourcc(uint32_t fourcc);
/** The v1 predicate (no SSHD) — used by the --v1-compat daemon mode
 *  so protocol-skew tests exercise a faithful old-daemon rejection. */
bool serveKnownFourccV1(uint32_t fourcc);

} // namespace save

#endif // SAVE_SERVE_PROTOCOL_H
