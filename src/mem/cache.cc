#include "mem/cache.h"

#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

namespace {
/** SRRIP parameters for a 2-bit RRPV (Jaleel et al., via gem5). */
constexpr uint8_t kRrpvMax = 3;
constexpr uint8_t kRrpvInsert = 2; // long re-reference on insert
} // namespace

SetAssocCache::SetAssocCache(uint64_t size_bytes, int ways,
                             ReplPolicy policy)
    : ways_(ways), policy_(policy)
{
    SAVE_ASSERT(ways >= 1, "cache needs at least one way");
    uint64_t lines = size_bytes / kLineBytes;
    num_sets_ = static_cast<int>(lines / static_cast<uint64_t>(ways));
    if (num_sets_ < 1)
        num_sets_ = 1;
    ways_store_.assign(static_cast<size_t>(num_sets_) *
                       static_cast<size_t>(ways_), Way{});
}

int
SetAssocCache::setIndex(uint64_t line) const
{
    return static_cast<int>((line / kLineBytes) %
                            static_cast<uint64_t>(num_sets_));
}

SetAssocCache::Way *
SetAssocCache::lookup(uint64_t line)
{
    int set = setIndex(line);
    Way *base = &ways_store_[static_cast<size_t>(set) *
                             static_cast<size_t>(ways_)];
    for (int w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].line == line)
            return &base[w];
    return nullptr;
}

const SetAssocCache::Way *
SetAssocCache::lookup(uint64_t line) const
{
    return const_cast<SetAssocCache *>(this)->lookup(line);
}

void
SetAssocCache::touch(Way &w)
{
    w.lru = ++lru_clock_;
    w.rrpv = 0; // SRRIP: promote to near-immediate re-reference
}

bool
SetAssocCache::access(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    Way *w = lookup(line);
    if (w) {
        touch(*w);
        st_hits_.add();
        return true;
    }
    st_misses_.add();
    return false;
}

bool
SetAssocCache::probe(uint64_t addr) const
{
    return lookup(lineOf(addr)) != nullptr;
}

int
SetAssocCache::victimWay(int set)
{
    Way *base = &ways_store_[static_cast<size_t>(set) *
                             static_cast<size_t>(ways_)];
    for (int w = 0; w < ways_; ++w)
        if (!base[w].valid)
            return w;

    if (policy_ == ReplPolicy::Lru) {
        int victim = 0;
        for (int w = 1; w < ways_; ++w)
            if (base[w].lru < base[victim].lru)
                victim = w;
        return victim;
    }

    // SRRIP: find an RRPV==max way, aging the whole set until one shows.
    for (;;) {
        for (int w = 0; w < ways_; ++w)
            if (base[w].rrpv >= kRrpvMax)
                return w;
        for (int w = 0; w < ways_; ++w)
            ++base[w].rrpv;
    }
}

uint64_t
SetAssocCache::fill(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    if (Way *w = lookup(line)) {
        touch(*w);
        return kNoEviction;
    }
    int set = setIndex(line);
    int victim = victimWay(set);
    Way &w = ways_store_[static_cast<size_t>(set) *
                         static_cast<size_t>(ways_) +
                         static_cast<size_t>(victim)];
    uint64_t evicted = w.valid ? w.line : kNoEviction;
    if (w.valid)
        st_evictions_.add();
    w.valid = true;
    w.line = line;
    w.lru = ++lru_clock_;
    w.rrpv = kRrpvInsert;
    return evicted;
}

bool
SetAssocCache::invalidate(uint64_t addr)
{
    Way *w = lookup(lineOf(addr));
    if (!w)
        return false;
    w->valid = false;
    st_invalidations_.add();
    return true;
}

} // namespace save
