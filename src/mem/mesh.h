/**
 * @file
 * 2D-mesh network-on-chip model with XY (dimension-ordered) routing
 * and a fixed per-hop latency, as in the paper's Table I. One tile per
 * core; L3 slice i is co-located with core i (NUCA).
 */

#ifndef SAVE_MEM_MESH_H
#define SAVE_MEM_MESH_H

#include <cstdint>

namespace save {

/** Mesh geometry and routing-latency helper. */
class MeshNoc
{
  public:
    /**
     * @param tiles Number of tiles (== cores). The mesh is laid out as
     *              the most-square grid with cols >= rows, e.g. 28
     *              tiles -> 7x4.
     * @param hop_cycles Uncore cycles per hop (link + router).
     */
    MeshNoc(int tiles, int hop_cycles);

    int cols() const { return cols_; }
    int rows() const { return rows_; }

    /** Manhattan hop count between two tiles under XY routing. */
    int hops(int src_tile, int dst_tile) const;

    /** One-way latency in uncore cycles. */
    int latencyCycles(int src_tile, int dst_tile) const;

    /** Home L3 slice tile for a line address (static hash). */
    int sliceOf(uint64_t line_addr) const;

  private:
    int tiles_;
    int cols_;
    int rows_;
    int hop_cycles_;
};

} // namespace save

#endif // SAVE_MEM_MESH_H
