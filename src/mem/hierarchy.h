/**
 * @file
 * The full memory hierarchy: private L1-D and L2 per core, a shared
 * NUCA L3 (one slice per tile, SRRIP) reached over the 2D-mesh NoC,
 * and bandwidth-limited DRAM behind it. Matches the paper's Table I.
 *
 * Timing is kept in nanoseconds internally so that the core clock can
 * change (1 VPU @ 2.1GHz vs 2 VPUs @ 1.7GHz) without touching uncore
 * latencies: L1/L2 hit latencies are core cycles (they scale with the
 * core clock); L3, NoC and DRAM are in the fixed uncore domain.
 *
 * A stream prefetcher with configurable degree runs on L2 misses;
 * in-flight lines are tracked MSHR-style so demand requests merge with
 * outstanding prefetches instead of re-paying DRAM.
 */

#ifndef SAVE_MEM_HIERARCHY_H
#define SAVE_MEM_HIERARCHY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.h"
#include "mem/dram.h"
#include "mem/mesh.h"
#include "sim/config.h"
#include "stats/stats.h"

namespace save {

/** Which level serviced an access (for stats). */
enum class HitLevel : uint8_t { L1, L2, L3, Dram, Inflight };

/** The shared memory system. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MachineConfig &cfg);

    /**
     * Demand load of the line containing addr.
     * @param core Requesting core id.
     * @param now_ns Absolute issue time.
     * @param core_ghz Active core frequency (scales L1/L2 latency).
     * @return completion time in ns.
     */
    double load(int core, uint64_t addr, double now_ns, double core_ghz);

    /** Store: allocates into L1; off the critical path timing-wise. */
    void store(int core, uint64_t addr, double now_ns, double core_ghz);

    /** Pre-load the line into L3 only (paper SecVI warm-up protocol). */
    void warmL3(uint64_t addr);
    /** Pre-load the line into this core's whole private path + L3. */
    void warmAll(int core, uint64_t addr);

    /**
     * Subscribe to L1-D line evictions/invalidations on one core
     * (used for broadcast-cache coherence).
     */
    void setL1EvictListener(int core, std::function<void(uint64_t)> fn);

    HitLevel lastLevel() const { return last_level_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    SetAssocCache &l1(int core) { return *l1_[static_cast<size_t>(core)]; }
    SetAssocCache &l2(int core) { return *l2_[static_cast<size_t>(core)]; }

  private:
    /** Fill one core's L1, honoring inclusion listeners. */
    void fillL1(int core, uint64_t line);
    void fillL2(int core, uint64_t line);
    /** Fill L3; evictions back-invalidate every core (inclusive). */
    void fillL3(uint64_t line);

    /**
     * Time at which the line is available at this core's L2 boundary,
     * walking L3/DRAM as needed. Shared-resource contention (slice
     * serialization, DRAM channels) is applied here.
     */
    double fetchToL2(int core, uint64_t line, double start_ns);

    void maybePrefetch(int core, uint64_t line, double now_ns);

    const MachineConfig cfg_;
    MeshNoc mesh_;
    Dram dram_;
    std::vector<std::unique_ptr<SetAssocCache>> l1_;
    std::vector<std::unique_ptr<SetAssocCache>> l2_;
    std::vector<std::unique_ptr<SetAssocCache>> l3_;
    std::vector<double> slice_free_ns_;
    /** Per-core in-flight fills: line -> ready time (MSHR + prefetch). */
    std::vector<std::unordered_map<uint64_t, double>> inflight_;
    std::vector<std::function<void(uint64_t)>> l1_listeners_;
    HitLevel last_level_ = HitLevel::L1;
    StatGroup stats_;
    /** Hot-path counters: resolved handles, no per-access map lookup. */
    StatRef st_loads_;
    StatRef st_stores_;
    StatRef st_l1_hits_;
    StatRef st_l2_hits_;
    StatRef st_l3_hits_;
    StatRef st_l3_misses_;
    StatRef st_prefetches_;
    StatRef st_mshr_merges_;
};

} // namespace save

#endif // SAVE_MEM_HIERARCHY_H
