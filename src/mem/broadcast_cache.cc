#include "mem/broadcast_cache.h"

#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

BroadcastCache::BroadcastCache(BcastCacheKind kind, int entries,
                               const MemoryImage *mem)
    : kind_(kind), entries_(entries), mem_(mem)
{
    SAVE_ASSERT(entries_ > 0, "B$ needs entries");
    table_.assign(static_cast<size_t>(entries_), Entry{});
}

int
BroadcastCache::indexOf(uint64_t line) const
{
    return static_cast<int>((line / kLineBytes) %
                            static_cast<uint64_t>(entries_));
}

BcastResult
BroadcastCache::access(uint64_t addr)
{
    BcastResult res;
    if (kind_ == BcastCacheKind::None) {
        res.needsL1 = true;
        return res;
    }

    uint64_t line = lineOf(addr);
    Entry &e = table_[static_cast<size_t>(indexOf(line))];

    if (e.valid && e.line == line) {
        res.hit = true;
        st_hits_.add();
        if (kind_ == BcastCacheKind::Data) {
            // Data design: the element is served from the B$ whether it
            // is zero or not (paper Fig.6c/6e).
            res.needsL1 = false;
        } else {
            // Mask design: zero elements broadcast zero without an L1
            // read; non-zero elements still fetch data (Fig.6d/6f).
            int elem = static_cast<int>((addr - line) / 4);
            bool is_zero = (e.zero_mask >> elem) & 1;
            res.needsL1 = !is_zero;
            if (is_zero)
                st_zero_short_circuits_.add();
        }
        return res;
    }

    // Miss: fetch the line through the L1-D and install it (Fig.6a/6b).
    st_misses_.add();
    e.valid = true;
    e.line = line;
    e.zero_mask = mem_->contains(line) ? mem_->lineZeroMaskF32(line) : 0;
    res.hit = false;
    res.needsL1 = true;
    res.filled = true;
    return res;
}

BcastResult
BroadcastCache::probeOnly(uint64_t addr) const
{
    BcastResult res;
    if (kind_ == BcastCacheKind::None)
        return res;
    uint64_t line = lineOf(addr);
    const Entry &e = table_[static_cast<size_t>(indexOf(line))];
    if (e.valid && e.line == line) {
        res.hit = true;
        if (kind_ == BcastCacheKind::Data) {
            res.needsL1 = false;
        } else {
            int elem = static_cast<int>((addr - line) / 4);
            res.needsL1 = !((e.zero_mask >> elem) & 1);
        }
        return res;
    }
    res.needsL1 = true;
    res.filled = true;
    return res;
}

void
BroadcastCache::invalidate(uint64_t line_addr)
{
    if (kind_ == BcastCacheKind::None)
        return;
    uint64_t line = lineOf(line_addr);
    Entry &e = table_[static_cast<size_t>(indexOf(line))];
    if (e.valid && e.line == line) {
        e.valid = false;
        st_invalidations_.add();
    }
}

void
BroadcastCache::invalidateAll()
{
    for (auto &e : table_)
        e.valid = false;
}

double
BroadcastCache::hitRate() const
{
    double h = stats_.get("hits");
    double m = stats_.get("misses");
    return (h + m) == 0 ? 0.0 : h / (h + m);
}

uint64_t
BroadcastCache::storageBytes() const
{
    // Tag: 64-bit line address is pessimistic; the paper's Table II
    // models ~42-bit tags. Payload: 64B data line or 16-bit mask.
    uint64_t tag_bits = 42;
    uint64_t payload_bits =
        kind_ == BcastCacheKind::Data ? kLineBytes * 8 : 16;
    if (kind_ == BcastCacheKind::None)
        return 0;
    return static_cast<uint64_t>(entries_) * (tag_bits + payload_bits + 1)
           / 8;
}

} // namespace save
