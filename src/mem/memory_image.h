/**
 * @file
 * Sparse functional memory: a set of registered regions backed by host
 * buffers. Kernels register their matrices here; loads in the simulator
 * read real data from it, which is what makes sparsity functional
 * (the MGU checks actual operand values).
 */

#ifndef SAVE_MEM_MEMORY_IMAGE_H
#define SAVE_MEM_MEMORY_IMAGE_H

#include <cstdint>
#include <vector>

#include "isa/vec.h"

namespace save {

/** Cache line size in bytes, fixed at 64 throughout the model. */
constexpr uint64_t kLineBytes = 64;

/** Line-aligned address of the line containing addr. */
inline uint64_t
lineOf(uint64_t addr)
{
    return addr & ~(kLineBytes - 1);
}

/** Functional memory image. */
class MemoryImage
{
  public:
    /**
     * Register a region of `bytes` bytes at `base`. Returns the base.
     * Regions must not overlap. Contents are zero-initialized.
     */
    uint64_t addRegion(uint64_t base, uint64_t bytes);

    /** Allocate a region after all existing ones (64B aligned). */
    uint64_t allocRegion(uint64_t bytes);

    float readF32(uint64_t addr) const;
    void writeF32(uint64_t addr, float v);

    uint32_t readU32(uint64_t addr) const;
    void writeU32(uint64_t addr, uint32_t v);

    Bf16 readBf16(uint64_t addr) const;
    void writeBf16(uint64_t addr, Bf16 v);

    /** Raw byte store into a registered region (trace replay). */
    void writeBytes(uint64_t addr, const uint8_t *src, uint64_t n);

    /** Read the 64B line containing addr as a vector register value. */
    VecReg readLine(uint64_t addr) const;
    void writeLine(uint64_t addr, const VecReg &v);

    /** True if every FP32 element of the 64B line at addr is zero. */
    uint16_t lineZeroMaskF32(uint64_t addr) const;

    bool contains(uint64_t addr) const;

    /** Region enumeration, in registration order (trace capture). */
    size_t numRegions() const { return regions_.size(); }
    uint64_t regionBase(size_t i) const { return regions_[i].base; }
    const std::vector<uint8_t> &regionData(size_t i) const
    {
        return regions_[i].data;
    }

  private:
    struct Region
    {
        uint64_t base;
        std::vector<uint8_t> data;
    };

    const Region *find(uint64_t addr) const;
    Region *find(uint64_t addr);

    std::vector<Region> regions_;
    uint64_t next_base_ = 0x10000;
};

} // namespace save

#endif // SAVE_MEM_MEMORY_IMAGE_H
