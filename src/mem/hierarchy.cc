#include "mem/hierarchy.h"

#include <algorithm>

#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

MemHierarchy::MemHierarchy(const MachineConfig &cfg)
    : cfg_(cfg), mesh_(cfg.cores, cfg.nocHopCycles),
      dram_(cfg.dramGBps, cfg.dramChannels, cfg.dramLatNs),
      st_loads_(&stats_, "loads"), st_stores_(&stats_, "stores"),
      st_l1_hits_(&stats_, "l1_hits"), st_l2_hits_(&stats_, "l2_hits"),
      st_l3_hits_(&stats_, "l3_hits"),
      st_l3_misses_(&stats_, "l3_misses"),
      st_prefetches_(&stats_, "prefetches"),
      st_mshr_merges_(&stats_, "mshr_merges")
{
    for (int c = 0; c < cfg.cores; ++c) {
        l1_.push_back(std::make_unique<SetAssocCache>(
            static_cast<uint64_t>(cfg.l1SizeKb) * 1024, cfg.l1Ways,
            ReplPolicy::Lru));
        l2_.push_back(std::make_unique<SetAssocCache>(
            static_cast<uint64_t>(cfg.l2SizeKb) * 1024, cfg.l2Ways,
            ReplPolicy::Lru));
        l3_.push_back(std::make_unique<SetAssocCache>(
            static_cast<uint64_t>(cfg.l3SizeKbPerCore * 1024.0),
            cfg.l3Ways, ReplPolicy::Srrip));
    }
    slice_free_ns_.assign(static_cast<size_t>(cfg.cores), 0.0);
    inflight_.resize(static_cast<size_t>(cfg.cores));
    l1_listeners_.resize(static_cast<size_t>(cfg.cores));
}

void
MemHierarchy::setL1EvictListener(int core, std::function<void(uint64_t)> fn)
{
    l1_listeners_[static_cast<size_t>(core)] = std::move(fn);
}

void
MemHierarchy::fillL1(int core, uint64_t line)
{
    uint64_t evicted = l1_[static_cast<size_t>(core)]->fill(line);
    if (evicted != SetAssocCache::kNoEviction &&
        l1_listeners_[static_cast<size_t>(core)]) {
        l1_listeners_[static_cast<size_t>(core)](evicted);
    }
}

void
MemHierarchy::fillL2(int core, uint64_t line)
{
    l2_[static_cast<size_t>(core)]->fill(line);
}

void
MemHierarchy::fillL3(uint64_t line)
{
    int slice = mesh_.sliceOf(line);
    uint64_t evicted = l3_[static_cast<size_t>(slice)]->fill(line);
    if (evicted == SetAssocCache::kNoEviction)
        return;
    // Inclusive L3: evicting a line removes it from every private level.
    for (int c = 0; c < cfg_.cores; ++c) {
        if (l2_[static_cast<size_t>(c)]->invalidate(evicted) ||
            l1_[static_cast<size_t>(c)]->probe(evicted)) {
            if (l1_[static_cast<size_t>(c)]->invalidate(evicted) &&
                l1_listeners_[static_cast<size_t>(c)]) {
                l1_listeners_[static_cast<size_t>(c)](evicted);
            }
        }
    }
}

double
MemHierarchy::fetchToL2(int core, uint64_t line, double start_ns)
{
    int slice = mesh_.sliceOf(line);
    double noc_ns =
        mesh_.latencyCycles(core, slice) / cfg_.uncoreGhz;

    double arrive = start_ns + noc_ns;
    double slice_service = 1.0 / cfg_.uncoreGhz;
    double slice_start =
        std::max(arrive, slice_free_ns_[static_cast<size_t>(slice)]);
    slice_free_ns_[static_cast<size_t>(slice)] =
        slice_start + slice_service;

    double tag_done = slice_start + cfg_.l3LatNs;
    double data_ready;
    if (l3_[static_cast<size_t>(slice)]->access(line)) {
        st_l3_hits_.add();
        data_ready = tag_done;
        last_level_ = HitLevel::L3;
    } else {
        st_l3_misses_.add();
        data_ready = dram_.request(line, tag_done);
        fillL3(line);
        last_level_ = HitLevel::Dram;
    }
    return data_ready + noc_ns;
}

void
MemHierarchy::maybePrefetch(int core, uint64_t line, double now_ns)
{
    // Prefetch walks fetchToL2 too; don't let it clobber the level
    // the demand access was served from.
    HitLevel demand_level = last_level_;
    auto &mshr = inflight_[static_cast<size_t>(core)];
    for (int d = 1; d <= cfg_.prefetchDegree; ++d) {
        uint64_t next = line + static_cast<uint64_t>(d) * kLineBytes;
        if (l2_[static_cast<size_t>(core)]->probe(next))
            continue;
        if (mshr.count(next))
            continue;
        double ready = fetchToL2(core, next, now_ns);
        mshr.emplace(next, ready);
        st_prefetches_.add();
    }
    last_level_ = demand_level;
}

double
MemHierarchy::load(int core, uint64_t addr, double now_ns, double core_ghz)
{
    uint64_t line = lineOf(addr);
    st_loads_.add();

    double l1_lat_ns = cfg_.l1LatCycles / core_ghz;
    if (l1_[static_cast<size_t>(core)]->access(line)) {
        st_l1_hits_.add();
        last_level_ = HitLevel::L1;
        return now_ns + l1_lat_ns;
    }

    double l2_lat_ns = cfg_.l2LatCycles / core_ghz;
    auto &mshr = inflight_[static_cast<size_t>(core)];
    auto it = mshr.find(line);
    if (it != mshr.end()) {
        // Demand request merges with an in-flight (pre)fetch.
        double ready = std::max(it->second, now_ns + l2_lat_ns);
        mshr.erase(it);
        fillL2(core, line);
        fillL1(core, line);
        st_mshr_merges_.add();
        last_level_ = HitLevel::Inflight;
        maybePrefetch(core, line, now_ns);
        return ready;
    }

    if (l2_[static_cast<size_t>(core)]->access(line)) {
        st_l2_hits_.add();
        fillL1(core, line);
        last_level_ = HitLevel::L2;
        return now_ns + l2_lat_ns;
    }

    // L2 miss: go over the NoC to the home slice (and maybe DRAM).
    double ready = fetchToL2(core, line, now_ns + l2_lat_ns);
    fillL2(core, line);
    fillL1(core, line);
    maybePrefetch(core, line, now_ns);
    return std::max(ready, now_ns + l2_lat_ns) + l1_lat_ns;
}

void
MemHierarchy::store(int core, uint64_t addr, double now_ns, double core_ghz)
{
    uint64_t line = lineOf(addr);
    st_stores_.add();
    if (l1_[static_cast<size_t>(core)]->access(line))
        return;
    // Write-allocate: bring the line in off the critical path, still
    // consuming shared bandwidth.
    if (!l2_[static_cast<size_t>(core)]->access(line))
        fetchToL2(core, line, now_ns + cfg_.l2LatCycles / core_ghz);
    fillL2(core, line);
    fillL1(core, line);
}

void
MemHierarchy::warmL3(uint64_t addr)
{
    fillL3(lineOf(addr));
}

void
MemHierarchy::warmAll(int core, uint64_t addr)
{
    uint64_t line = lineOf(addr);
    fillL3(line);
    fillL2(core, line);
    fillL1(core, line);
}

} // namespace save
