#include "mem/memory_image.h"

#include <cstring>

#include "util/logging.h"
#include "util/simd.h"

namespace save {

uint64_t
MemoryImage::addRegion(uint64_t base, uint64_t bytes)
{
    for (const auto &r : regions_) {
        bool overlap = base < r.base + r.data.size() &&
                       r.base < base + bytes;
        SAVE_ASSERT(!overlap, "overlapping memory regions");
    }
    regions_.push_back({base, std::vector<uint8_t>(bytes, 0)});
    if (base + bytes > next_base_)
        next_base_ = (base + bytes + kLineBytes - 1) & ~(kLineBytes - 1);
    return base;
}

uint64_t
MemoryImage::allocRegion(uint64_t bytes)
{
    return addRegion(next_base_, bytes);
}

const MemoryImage::Region *
MemoryImage::find(uint64_t addr) const
{
    for (const auto &r : regions_)
        if (addr >= r.base && addr < r.base + r.data.size())
            return &r;
    return nullptr;
}

MemoryImage::Region *
MemoryImage::find(uint64_t addr)
{
    return const_cast<Region *>(
        static_cast<const MemoryImage *>(this)->find(addr));
}

bool
MemoryImage::contains(uint64_t addr) const
{
    return find(addr) != nullptr;
}

float
MemoryImage::readF32(uint64_t addr) const
{
    uint32_t u = readU32(addr);
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

void
MemoryImage::writeF32(uint64_t addr, float v)
{
    uint32_t u;
    std::memcpy(&u, &v, 4);
    writeU32(addr, u);
}

uint32_t
MemoryImage::readU32(uint64_t addr) const
{
    const Region *r = find(addr);
    SAVE_ASSERT(r && addr + 4 <= r->base + r->data.size(),
                "read outside registered memory at 0x", std::hex, addr);
    uint32_t u;
    std::memcpy(&u, r->data.data() + (addr - r->base), 4);
    return u;
}

void
MemoryImage::writeU32(uint64_t addr, uint32_t v)
{
    Region *r = find(addr);
    SAVE_ASSERT(r && addr + 4 <= r->base + r->data.size(),
                "write outside registered memory at 0x", std::hex, addr);
    std::memcpy(r->data.data() + (addr - r->base), &v, 4);
}

void
MemoryImage::writeBytes(uint64_t addr, const uint8_t *src, uint64_t n)
{
    if (n == 0)
        return;
    Region *r = find(addr);
    SAVE_ASSERT(r && addr + n <= r->base + r->data.size(),
                "write outside registered memory at 0x", std::hex, addr);
    std::memcpy(r->data.data() + (addr - r->base), src, n);
}

Bf16
MemoryImage::readBf16(uint64_t addr) const
{
    const Region *r = find(addr);
    SAVE_ASSERT(r && addr + 2 <= r->base + r->data.size(),
                "read outside registered memory at 0x", std::hex, addr);
    Bf16 v;
    std::memcpy(&v, r->data.data() + (addr - r->base), 2);
    return v;
}

void
MemoryImage::writeBf16(uint64_t addr, Bf16 v)
{
    Region *r = find(addr);
    SAVE_ASSERT(r && addr + 2 <= r->base + r->data.size(),
                "write outside registered memory at 0x", std::hex, addr);
    std::memcpy(r->data.data() + (addr - r->base), &v, 2);
}

VecReg
MemoryImage::readLine(uint64_t addr) const
{
    uint64_t base = lineOf(addr);
    VecReg v;
    for (int i = 0; i < kVecLanes; ++i)
        v.setWord(i, readU32(base + 4 * static_cast<uint64_t>(i)));
    return v;
}

void
MemoryImage::writeLine(uint64_t addr, const VecReg &v)
{
    uint64_t base = lineOf(addr);
    for (int i = 0; i < kVecLanes; ++i)
        writeU32(base + 4 * static_cast<uint64_t>(i), v.word(i));
}

uint16_t
MemoryImage::lineZeroMaskF32(uint64_t addr) const
{
    return simd::ops().zeroMaskF32(readLine(addr));
}

} // namespace save
