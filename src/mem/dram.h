/**
 * @file
 * DRAM model: fixed access latency plus a per-channel bandwidth
 * limiter (Table I: 119.2 GB/s over 6 channels, 50ns latency).
 *
 * Each channel is a server with an earliest-free time; a request picks
 * its channel by address hash, waits for the channel, occupies it for
 * lineBytes/channelBandwidth, and completes one access latency later.
 */

#ifndef SAVE_MEM_DRAM_H
#define SAVE_MEM_DRAM_H

#include <cstdint>
#include <vector>

#include "stats/stats.h"

namespace save {

/** Bandwidth-limited DRAM timing model. All times in nanoseconds. */
class Dram
{
  public:
    Dram(double total_gbps, int channels, double latency_ns);

    /**
     * Schedule a 64B line transfer issued at now_ns.
     * @return completion time in ns.
     */
    double request(uint64_t line_addr, double now_ns);

    /** Reset channel occupancy (between independent simulations). */
    void reset();

    double latencyNs() const { return latency_ns_; }

    StatGroup &stats() { return stats_; }

  private:
    double service_ns_; // per-64B-line occupancy of one channel
    double latency_ns_;
    std::vector<double> channel_free_ns_;
    StatGroup stats_;
    /** Hot-path counters: resolved handles, no per-access map lookup. */
    StatRef st_requests_{&stats_, "requests"};
    StatRef st_bytes_{&stats_, "bytes"};
    StatRef st_queue_ns_{&stats_, "queue_ns"};
};

} // namespace save

#endif // SAVE_MEM_DRAM_H
