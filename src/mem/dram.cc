#include "mem/dram.h"

#include <algorithm>

#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

Dram::Dram(double total_gbps, int channels, double latency_ns)
    : latency_ns_(latency_ns)
{
    SAVE_ASSERT(channels >= 1, "DRAM needs channels");
    SAVE_ASSERT(total_gbps > 0, "DRAM needs bandwidth");
    double per_channel_gbps = total_gbps / channels;
    service_ns_ = static_cast<double>(kLineBytes) / per_channel_gbps;
    channel_free_ns_.assign(static_cast<size_t>(channels), 0.0);
}

double
Dram::request(uint64_t line_addr, double now_ns)
{
    uint64_t line = line_addr / kLineBytes;
    line ^= line >> 5;
    size_t ch = static_cast<size_t>(line % channel_free_ns_.size());

    double start = std::max(now_ns, channel_free_ns_[ch]);
    channel_free_ns_[ch] = start + service_ns_;
    st_requests_.add();
    st_bytes_.add(static_cast<double>(kLineBytes));
    st_queue_ns_.add(start - now_ns);
    return start + latency_ns_;
}

void
Dram::reset()
{
    std::fill(channel_free_ns_.begin(), channel_free_ns_.end(), 0.0);
}

} // namespace save
