#include "mem/mesh.h"

#include <cmath>
#include <cstdlib>

#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

MeshNoc::MeshNoc(int tiles, int hop_cycles)
    : tiles_(tiles), hop_cycles_(hop_cycles)
{
    SAVE_ASSERT(tiles >= 1, "mesh needs tiles");
    rows_ = static_cast<int>(std::sqrt(static_cast<double>(tiles)));
    while (rows_ > 1 && tiles % rows_ != 0)
        --rows_;
    cols_ = tiles / rows_;
}

int
MeshNoc::hops(int src_tile, int dst_tile) const
{
    SAVE_ASSERT(src_tile >= 0 && src_tile < tiles_, "bad src tile");
    SAVE_ASSERT(dst_tile >= 0 && dst_tile < tiles_, "bad dst tile");
    int sx = src_tile % cols_, sy = src_tile / cols_;
    int dx = dst_tile % cols_, dy = dst_tile / cols_;
    // XY routing: walk X first, then Y; hop count is Manhattan distance.
    return std::abs(sx - dx) + std::abs(sy - dy);
}

int
MeshNoc::latencyCycles(int src_tile, int dst_tile) const
{
    return hops(src_tile, dst_tile) * hop_cycles_;
}

int
MeshNoc::sliceOf(uint64_t line_addr) const
{
    // Static line-interleaved hash across slices, with a simple bit mix
    // so strided streams spread evenly.
    uint64_t line = line_addr / kLineBytes;
    line ^= line >> 7;
    return static_cast<int>(line % static_cast<uint64_t>(tiles_));
}

} // namespace save
