/**
 * @file
 * Set-associative cache tag model with LRU and SRRIP replacement.
 *
 * Tags-only: data lives in the MemoryImage. The hierarchy uses these
 * for hit/miss decisions; an eviction callback lets inclusive outer
 * levels back-invalidate inner levels (and the broadcast cache).
 */

#ifndef SAVE_MEM_CACHE_H
#define SAVE_MEM_CACHE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/stats.h"

namespace save {

/** Replacement policy selection. */
enum class ReplPolicy : uint8_t { Lru, Srrip };

/** Set-associative tag array. */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param ways Associativity (sets = size / (ways * 64) rounded
     *             down to at least 1; non-power-of-two set counts are
     *             allowed and indexed by modulo, as with the paper's
     *             19-way 2.375MB L3 slices).
     */
    SetAssocCache(uint64_t size_bytes, int ways,
                  ReplPolicy policy = ReplPolicy::Lru);

    /** True if the line containing addr is present; updates recency. */
    bool access(uint64_t addr);

    /** True if present, without touching replacement state. */
    bool probe(uint64_t addr) const;

    /**
     * Insert the line containing addr, evicting if needed.
     * @return evicted line address, or kNoEviction.
     */
    uint64_t fill(uint64_t addr);

    /** Remove the line if present (back-invalidation). */
    bool invalidate(uint64_t addr);

    static constexpr uint64_t kNoEviction = ~0ull;

    int numSets() const { return num_sets_; }
    int numWays() const { return ways_; }

    StatGroup &stats() { return stats_; }

  private:
    struct Way
    {
        uint64_t line = ~0ull;
        bool valid = false;
        uint32_t lru = 0;   // higher == more recently used
        uint8_t rrpv = 3;   // SRRIP re-reference prediction value
    };

    int setIndex(uint64_t line) const;
    Way *lookup(uint64_t line);
    const Way *lookup(uint64_t line) const;
    int victimWay(int set);
    void touch(Way &w);

    int num_sets_;
    int ways_;
    ReplPolicy policy_;
    uint32_t lru_clock_ = 0;
    std::vector<Way> ways_store_;
    StatGroup stats_;
    /** Hot-path counters: resolved handles, no per-access map lookup. */
    StatRef st_hits_{&stats_, "hits"};
    StatRef st_misses_{&stats_, "misses"};
    StatRef st_evictions_{&stats_, "evictions"};
    StatRef st_invalidations_{&stats_, "invalidations"};
};

} // namespace save

#endif // SAVE_MEM_CACHE_H
