/**
 * @file
 * Broadcast Cache (B$) — paper SecIV-A.
 *
 * A small direct-mapped, read-only cache that exclusively serves
 * broadcast load requests, exploiting the spatial locality of GEMM's
 * broadcasted scalars. Two designs:
 *
 *  - Data: a line holds the broadcasted values from the L1-D line. A
 *    hit serves the element without touching the L1-D at all.
 *  - Mask: a line holds one bit per FP32 element saying whether it is
 *    zero. A hit on a zero element broadcasts zero without touching
 *    the L1-D; a hit on a non-zero element must still read the L1-D.
 *
 * The B$ is kept coherent with the L1-D by invalidation on L1 line
 * eviction/invalidation.
 */

#ifndef SAVE_MEM_BROADCAST_CACHE_H
#define SAVE_MEM_BROADCAST_CACHE_H

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "stats/stats.h"

namespace save {

class MemoryImage;

/** Outcome of a broadcast lookup. */
struct BcastResult
{
    /** Tag matched. */
    bool hit = false;
    /** The requested element must still be read through the L1-D port. */
    bool needsL1 = true;
    /** On a miss, the fetched line is installed (costs an L1 access). */
    bool filled = false;
};

/** The Broadcast Cache model. */
class BroadcastCache
{
  public:
    BroadcastCache(BcastCacheKind kind, int entries,
                   const MemoryImage *mem);

    /**
     * Look up a broadcast of the FP32/BF16-pair element at addr.
     * Misses fill the entry from the (functional) memory image.
     */
    BcastResult access(uint64_t addr);

    /** Same decision as access() without mutating the cache (used by
     *  the load unit to check port needs before committing). */
    BcastResult probeOnly(uint64_t addr) const;

    /** Back-invalidate on L1-D eviction of the line at addr. */
    void invalidate(uint64_t line_addr);

    void invalidateAll();

    BcastCacheKind kind() const { return kind_; }
    double hitRate() const;

    /** Storage cost in bytes of the tag+payload arrays (Table II). */
    uint64_t storageBytes() const;

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t line = 0;
        uint16_t zero_mask = 0; // Mask design payload
    };

    int indexOf(uint64_t line) const;

    BcastCacheKind kind_;
    int entries_;
    const MemoryImage *mem_;
    std::vector<Entry> table_;
    StatGroup stats_;
    /** Hot-path counters: resolved handles, no per-access map lookup. */
    StatRef st_hits_{&stats_, "hits"};
    StatRef st_misses_{&stats_, "misses"};
    StatRef st_zero_short_circuits_{&stats_, "zero_short_circuits"};
    StatRef st_invalidations_{&stats_, "invalidations"};
};

} // namespace save

#endif // SAVE_MEM_BROADCAST_CACHE_H
