/**
 * @file
 * save::Engine — the library's public facade.
 *
 * Wraps machine construction, workload placement, cache warm-up, and
 * simulation into a few calls:
 *
 *   save::Engine engine(machine_cfg, save_cfg);
 *   auto r = engine.runGemm(gemm_cfg);
 *   std::cout << r.timeNs << "\n";
 *
 * Also exposes the functional-equivalence checker used throughout the
 * test suite (SAVE is architecturally transparent: any policy must
 * produce bitwise-identical results to in-order execution).
 */

#ifndef SAVE_ENGINE_ENGINE_H
#define SAVE_ENGINE_ENGINE_H

#include <cstdint>
#include <string>

#include "kernels/gemm.h"
#include "sim/config.h"
#include "stats/stats.h"

namespace save {

/** Outcome of one simulated kernel run. */
struct KernelResult
{
    uint64_t cycles = 0;
    /** Wall time at the active core frequency. */
    double timeNs = 0.0;
    double coreGhz = 0.0;
    /** Aggregated core + hierarchy statistics. */
    StatGroup stats;
};

/** Simulation façade. Holds only configuration: each run builds its
 *  own machine, so one Engine (or copies of it) may simulate from many
 *  host threads concurrently. */
class Engine
{
  public:
    Engine(MachineConfig mcfg, SaveConfig scfg);

    /**
     * Simulate a GEMM slice on `cores` cores (sharded data-parallel)
     * with `vpus` active VPUs per core. cores <= mcfg.cores.
     * The machine's DRAM bandwidth is pro-rated to the active cores so
     * a small run models those cores' share of the full machine.
     */
    KernelResult runGemm(const GemmConfig &cfg, int cores = 1,
                         int vpus = 2) const;

    /**
     * runGemm, additionally recording the run into a trace file at
     * `trace_path` (format: src/trace, DESIGN.md §9): effective
     * configuration, initial memory image, per-core warm ranges and
     * uop streams, the functional ELM sidecar, and the run's outcome.
     * `kernel_name` labels the trace (shown by `save-trace inspect`).
     */
    KernelResult recordGemm(const GemmConfig &cfg,
                            const std::string &trace_path,
                            const std::string &kernel_name = "gemm",
                            int cores = 1, int vpus = 2) const;

    /**
     * Run the trace through the OoO pipeline and through the in-order
     * reference; true iff final C-matrix memory is bitwise identical.
     */
    bool verifyGemm(const GemmConfig &cfg, int vpus = 2,
                    std::string *detail = nullptr) const;

    const MachineConfig &machine() const { return mcfg_; }
    const SaveConfig &save() const { return scfg_; }

  private:
    KernelResult runGemmImpl(const GemmConfig &cfg, int cores, int vpus,
                             const std::string *trace_path,
                             const std::string &kernel_name) const;

    MachineConfig mcfg_;
    SaveConfig scfg_;
};

/** Speedup of `other` over `base` by wall time. */
inline double
speedup(const KernelResult &base, const KernelResult &other)
{
    return base.timeNs / other.timeNs;
}

} // namespace save

#endif // SAVE_ENGINE_ENGINE_H
