#include "engine/engine.h"

#include <sstream>

#include "dnn/surface_cache.h"
#include "sim/multicore.h"
#include "sim/reference.h"
#include "trace/trace_writer.h"
#include "util/error.h"
#include "util/logging.h"

namespace save {

Engine::Engine(MachineConfig mcfg, SaveConfig scfg)
    : mcfg_(mcfg), scfg_(scfg)
{
    mcfg_.validate();
    scfg_.validate();
}

KernelResult
Engine::runGemm(const GemmConfig &cfg, int cores, int vpus) const
{
    return runGemmImpl(cfg, cores, vpus, nullptr, std::string());
}

KernelResult
Engine::recordGemm(const GemmConfig &cfg, const std::string &trace_path,
                   const std::string &kernel_name, int cores,
                   int vpus) const
{
    return runGemmImpl(cfg, cores, vpus, &trace_path, kernel_name);
}

KernelResult
Engine::runGemmImpl(const GemmConfig &cfg, int cores, int vpus,
                    const std::string *trace_path,
                    const std::string &kernel_name) const
{
    if (cores < 1 || cores > mcfg_.cores)
        throw ConfigError("core count must be in [1, " +
                          std::to_string(mcfg_.cores) + "] (got " +
                          std::to_string(cores) + ")");
    if (vpus < 1 || vpus > mcfg_.numVpus)
        throw ConfigError("VPU count must be in [1, " +
                          std::to_string(mcfg_.numVpus) + "] (got " +
                          std::to_string(vpus) + ")");
    cfg.validate();

    MachineConfig mc = mcfg_;
    // Model `cores` cores' share of the full machine: private
    // resources stay per-core, shared DRAM bandwidth is pro-rated.
    mc.dramGBps = mcfg_.dramGBps * cores / mcfg_.cores;
    mc.cores = cores;

    MemoryImage image;
    std::vector<GemmWorkload> work = buildShardedGemm(cfg, image, cores);

    // Everything the replay needs to rebuild this run is written
    // before the simulation mutates the image; the RES chunk follows
    // after the run. The hash is over the *effective* configuration
    // (post core/DRAM adjustment), salted with the active VPU count.
    std::unique_ptr<TraceWriter> writer;
    if (trace_path) {
        writer = std::make_unique<TraceWriter>(
            *trace_path, SurfaceCache::hashConfig(
                             mc, scfg_, static_cast<uint64_t>(vpus)));
        writer->writeConfig(
            traceConfigText(mc, scfg_, vpus, kernel_name));
        writer->writeImage(image);
        for (int c = 0; c < cores; ++c) {
            const GemmWorkload &w = work[static_cast<size_t>(c)];
            writer->writeWarmRanges(
                c, {{w.aBase, w.aBytes}, {w.bBase, w.bBytes}});
            writer->writeUops(c, w.trace);
            writer->writeElms(c, computeElmSidecar(w.trace, image));
        }
    }

    Multicore machine(mc, scfg_, vpus, &image);
    std::vector<std::unique_ptr<VectorTrace>> traces;
    std::vector<TraceSource *> srcs;
    for (int c = 0; c < cores; ++c) {
        work[static_cast<size_t>(c)].warmup(machine.hierarchy());
        traces.push_back(std::make_unique<VectorTrace>(
            work[static_cast<size_t>(c)].trace));
        srcs.push_back(traces.back().get());
    }
    machine.bindTraces(srcs);

    KernelResult r;
    r.cycles = machine.run();
    r.coreGhz = mc.coreFreqGhz(vpus);
    r.timeNs = static_cast<double>(r.cycles) / r.coreGhz;
    r.stats = machine.aggregateStats();

    if (writer) {
        writer->writeResult(r.cycles, r.coreGhz, r.stats);
        writer->finish();
    }
    return r;
}

bool
Engine::verifyGemm(const GemmConfig &cfg, int vpus,
                   std::string *detail) const
{
    // Simulated machine state.
    MemoryImage sim_image;
    GemmWorkload w = buildGemm(cfg, sim_image);

    MachineConfig mc = mcfg_;
    mc.cores = 1;
    Multicore machine(mc, scfg_, vpus, &sim_image);
    VectorTrace trace(w.trace);
    machine.bindTraces({&trace});
    machine.run();

    // Reference state: same seed rebuilds identical inputs.
    MemoryImage ref_image;
    GemmWorkload ref_w = buildGemm(cfg, ref_image);
    ArchExecutor ref(&ref_image);
    ref.run(ref_w.trace);

    for (uint64_t off = 0; off < w.cBytes; off += 4) {
        uint32_t got = sim_image.readU32(w.cBase + off);
        uint32_t want = ref_image.readU32(ref_w.cBase + off);
        if (got != want) {
            if (detail) {
                std::ostringstream os;
                os << "C mismatch at byte " << off << ": got 0x"
                   << std::hex << got << " want 0x" << want;
                *detail = os.str();
            }
            return false;
        }
    }
    return true;
}

} // namespace save
