/**
 * @file
 * The vector scheduler — SAVE's core contribution (paper SecIII-V).
 *
 * Each cycle the scheduler builds up to N "temp" operations (one per
 * active VPU) out of the effectual lanes pending in the reservation
 * stations:
 *
 *  - Baseline: conventional select; one whole VFMA per VPU per cycle.
 *  - VC: vertical coalescing (Algorithm 1) — an effectual lane may
 *    only move to the same lane position of the temp.
 *  - RVC: VC plus per-instruction rotation by -1/0/+1 lanes keyed on
 *    the accumulator's logical register number mod 3 (SecIV-B).
 *  - HC: horizontal compression reference — lanes may take any temp
 *    position, at +hcExtraLatency cycles for collapse/expand (SecIII).
 *
 * Lane-wise dependence (SecIV-C) is a flag orthogonal to the policy.
 * Mixed-precision VFMAs under SecV compression are handled by the
 * chain machinery in mp_scheduler.cc: per (accumulator-chain, AL)
 * queues of effectual multiplicand lanes, packed two per temp AL slot
 * in program order, with partial results forwarded at half latency.
 *
 * Select scans only the RS sublist it needs — the post-ELM issuable
 * list (or, under the baseline policy, the pending list, which is
 * then the full age order) — and operand readiness comes from the
 * writeback-wakeup flags, so no per-cycle full-RS polling remains.
 * The per-cycle temps are fixed-capacity members: steady-state
 * scheduling performs no heap allocation.
 */

#ifndef SAVE_SAVE_SCHEDULER_H
#define SAVE_SAVE_SCHEDULER_H

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isa/vec.h"
#include "sim/vpu.h"
#include "stats/stats.h"

namespace save {

class Auditor;
class Core;
struct RsEntry;

/** Per-cycle vector select/issue logic. */
class VectorScheduler
{
  public:
    explicit VectorScheduler(Core &core);

    /** Run one cycle of pass-through, selection, and VPU issue. */
    void step();

    /** Hook: a VFMA entered the RS (links mixed-precision chains). */
    void onVfmaAllocated(int rs_idx);

    /** Hook: an RS slot was released. */
    void onEntryReleased(int rs_idx);

    /** True when no chain work remains (drain check). */
    bool idle() const { return chains_.empty(); }

    /**
     * Earliest cycle after now at which a blocked mixed-precision
     * chain forward becomes available (chain ALs waiting out the
     * half-latency partial-result forward are the only scheduler state
     * that wakes by time alone); kNeverCycle if none. Feeds the core's
     * stall fast-forward horizon.
     */
    uint64_t nextTimeWake(uint64_t now) const;

    /**
     * Exception support (paper SecV-B): discard partial results of
     * surviving mixed-precision VFMAs (restore the pending-ML state
     * of any accumulator lane whose final value was not yet scheduled
     * for writeback) and rebuild the chain structures over the
     * surviving RS contents. Called by the core after a squash.
     */
    void rebuildAfterSquash();

  private:
    /** One VPU's in-flight temp being assembled this cycle. */
    struct Temp
    {
        uint16_t lanesUsed = 0;
        int count = 0;
        int type = -1; // -1 free, 0 fp32, 1 mixed-precision
        bool hc = false;
        LaneWriteVec writes;
        /** Whole-register result (baseline select / dense fast path):
         *  all sixteen lanes of one entry, issued as a single VecWrite.
         *  Such a temp is always claimed whole, so writes stays empty
         *  while vecValid is set. */
        bool vecValid = false;
        VecWrite vec;
    };

    /**
     * Claim a temp slot. For positional policies lane is the temp lane
     * position; for HC pass -1 to take any free slot.
     * @return VPU index, or -1 if no capacity.
     */
    int claimSlot(int lane, int type, bool hc);

    /** Would claimSlot(lane, type, false) succeed right now? Pure
     *  probe: no temp state is touched. */
    bool slotAvailable(int lane, int type) const;

    /** True while any temp could still take a positional
     *  mixed-precision lane this cycle (free temp, or a non-full
     *  type-1 temp). */
    bool mpCapacityLeft() const;

    /** True while any temp could still take a positional lane of some
     *  type (free temp, or any non-full non-HC temp). */
    bool positionalCapacityLeft() const;

    void passThrough();
    void scheduleBaseline();
    void scheduleCoalesced();
    void scheduleHc();
    void issueTemps();
    /** Lanes of e that may legally issue this cycle. */
    uint16_t schedulableAls(const RsEntry &e) const;
    void maybeRelease(int rs_idx);

    /** Mixed-precision chain path (mp_scheduler.cc). ---------------- */

    struct ChainAl
    {
        float value = 0.0f;
        uint64_t readyCycle = 0;
        bool init = false;
    };

    struct ChainNode
    {
        int rsIdx;
        uint64_t seq;
    };

    struct Chain
    {
        std::deque<ChainNode> nodes;
        std::array<ChainAl, kVecLanes> al{};
        std::array<int, kVecLanes> cursor{};
        int8_t rot = 0;
        uint64_t frontSeq = 0;
    };

    void scheduleChains();
    void scheduleChainAl(Chain &chain, int al);
    /** Advance an AL cursor over consumed/ineffectual nodes. */
    void advanceCursor(Chain &chain, int al);
    /** Drop fully-passed front nodes; erase exhausted chains. */
    void trimChain(int chain_id);
    bool nodeConsumed(const ChainNode &n, int al) const;

    friend class Auditor;

    Core &c_;
    std::unordered_map<int, Chain> chains_;
    int next_chain_id_ = 0;

    /** Reusable per-cycle scratch (no steady-state allocation). */
    std::vector<Temp> temps_;
    std::vector<std::pair<uint64_t, int>> chain_order_;

    StatRef st_passthrough_lanes_;
    StatRef st_baseline_issues_;
    StatRef st_coalesced_lanes_;
    StatRef st_hc_lanes_;
    StatRef st_temps_issued_;
    StatRef st_temp_fill_;
    StatRef st_mp_mls_issued_;
};

} // namespace save

#endif // SAVE_SAVE_SCHEDULER_H
