#include "save/scheduler.h"

#include "isa/bf16.h"
#include "sim/core.h"
#include "trace/event_trace.h"
#include "util/bitutil.h"
#include "util/logging.h"
#include "util/simd.h"

namespace save {

VectorScheduler::VectorScheduler(Core &core)
    : c_(core), temps_(static_cast<size_t>(core.activeVpus)),
      st_passthrough_lanes_(&core.stats(), "passthrough_lanes"),
      st_baseline_issues_(&core.stats(), "baseline_vfma_issues"),
      st_coalesced_lanes_(&core.stats(), "coalesced_lanes"),
      st_hc_lanes_(&core.stats(), "hc_lanes"),
      st_temps_issued_(&core.stats(), "temps_issued"),
      st_temp_fill_(&core.stats(), "temp_fill"),
      st_mp_mls_issued_(&core.stats(), "mp_mls_issued")
{
}

uint16_t
VectorScheduler::schedulableAls(const RsEntry &e) const
{
    if (!e.elmValid || !e.aReady || !e.bReady)
        return 0;
    uint16_t m = e.pendingAl;
    if (m == 0)
        return 0;
    if (c_.scfg.laneWiseDep)
        return m & c_.prf.laneReady(e.pc);
    return c_.prf.fullyReady(e.pc) ? m : 0;
}

void
VectorScheduler::maybeRelease(int rs_idx)
{
    const RsEntry &e = c_.rs.at(rs_idx);
    if (e.valid && e.pendingAl == 0 && e.passPending == 0)
        c_.releaseEntry(rs_idx);
}

int
VectorScheduler::claimSlot(int lane, int type, bool hc)
{
    for (size_t v = 0; v < temps_.size(); ++v) {
        Temp &t = temps_[v];
        if (t.type != -1 && (t.type != type || t.hc != hc))
            continue;
        if (hc) {
            if (t.count >= kVecLanes)
                continue;
        } else {
            if ((t.lanesUsed >> lane) & 1)
                continue;
            t.lanesUsed |= static_cast<uint16_t>(1u << lane);
        }
        t.type = type;
        t.hc = hc;
        ++t.count;
        return static_cast<int>(v);
    }
    return -1;
}

bool
VectorScheduler::slotAvailable(int lane, int type) const
{
    for (const Temp &t : temps_) {
        if (t.type == -1)
            return true;
        if (t.type != type || t.hc)
            continue;
        if (!((t.lanesUsed >> lane) & 1))
            return true;
    }
    return false;
}

bool
VectorScheduler::mpCapacityLeft() const
{
    for (const Temp &t : temps_) {
        if (t.type == -1)
            return true;
        if (t.type == 1 && !t.hc && t.lanesUsed != 0xffffu)
            return true;
    }
    return false;
}

bool
VectorScheduler::positionalCapacityLeft() const
{
    for (const Temp &t : temps_) {
        if (t.type == -1)
            return true;
        if (!t.hc && t.lanesUsed != 0xffffu)
            return true;
    }
    return false;
}

void
VectorScheduler::passThrough()
{
    // Lanes whose product is ineffectual forward the accumulator input
    // to the destination; modeled as a one-cycle register move without
    // a VPU slot (paper SecIII: fully-ineffectual uops are removed
    // from the RS without issuing).
    // Only post-ELM entries can have pass lanes; capture the list
    // successor first since maybeRelease unlinks the current entry.
    for (int idx = c_.rs.firstIssuable(); idx != Rs::kEnd;) {
        int nxt = c_.rs.nextInList(idx);
        RsEntry &e = c_.rs.at(idx);
        if (!e.passPending) {
            idx = nxt;
            continue;
        }
        uint16_t avail = e.passPending & c_.prf.laneReady(e.pc);
        if (!c_.scfg.laneWiseDep && !c_.prf.fullyReady(e.pc))
            avail = 0;
        if (!avail) {
            idx = nxt;
            continue;
        }
        const VecReg &cval = c_.prf.value(e.pc);
        for (uint16_t m = avail; m;) {
            int lane = lowestSetBit(m);
            m &= static_cast<uint16_t>(m - 1);
            c_.schedulePublish(e.dstPhys, lane, cval.f32(lane), e.robIdx,
                               c_.now() + 1);
        }
        st_passthrough_lanes_.add(popcount(avail));
        if (c_.etrace_)
            c_.etrace_->passLanes(c_.now(), e.seq, avail);
        e.passPending &= static_cast<uint16_t>(~avail);
        maybeRelease(idx);
        idx = nxt;
    }
}

void
VectorScheduler::scheduleBaseline()
{
    // Event-driven select: the core maintains baseline_ready_ as the
    // age-ordered queue of fully-ready unissued VFMAs (readiness flags
    // transition exactly once per entry), so selecting the oldest
    // ready instructions never rescans the RS.
    size_t taken = 0;
    while (taken < c_.baseline_ready_.size()) {
        int idx = c_.baseline_ready_[taken].second;
        RsEntry &e = c_.rs.at(idx);
        SAVE_ASSERT(e.valid && e.seq == c_.baseline_ready_[taken].first,
                    "stale baseline ready-queue entry");

        bool mp = e.uop.isMixedPrecision();
        int vpu = -1;
        for (size_t v = 0; v < temps_.size(); ++v) {
            if (temps_[v].type == -1) {
                vpu = static_cast<int>(v);
                break;
            }
        }
        if (vpu < 0)
            break;
        Temp &t = temps_[static_cast<size_t>(vpu)];
        t.type = mp ? 1 : 0;
        t.lanesUsed = 0xffffu;
        t.count = kVecLanes;

        const VecReg &a = c_.operandA(e);
        const VecReg &b = c_.operandB(e);
        const VecReg &cv = c_.prf.value(e.pc);
        // Zero-skip value semantics even though the baseline policy
        // executes every masked lane (bf16.h); whole-register compute
        // through the host-SIMD backend, whole-register writeback.
        t.vec.dstPhys = e.dstPhys;
        t.vec.robIdx = e.robIdx;
        t.vec.value = mp
            ? simd::ops().bf16MacSkipVec(
                  a, b, cv, simd::expandMask16to32(e.wm))
            : simd::ops().macSkipF32Vec(a, b, cv, e.wm);
        t.vecValid = true;
        e.issued = true;
        if (c_.etrace_)
            c_.etrace_->baselineIssue(c_.now(), e.seq, vpu);
        c_.releaseEntry(idx);
        st_baseline_issues_.add();
        ++taken;
    }
    if (taken > 0)
        c_.baseline_ready_.erase(c_.baseline_ready_.begin(),
                                 c_.baseline_ready_.begin() +
                                     static_cast<long>(taken));
}

void
VectorScheduler::scheduleCoalesced()
{
    // Age-ordered, per-lane oldest-first selection: equivalent to
    // Algorithm 1's lane-major priority select, since walking entries
    // oldest-first hands each temp lane position to the oldest
    // instruction wanting it. Only the post-ELM issuable sublist can
    // have schedulable lanes.
    for (int idx = c_.rs.firstIssuable(); idx != Rs::kEnd;) {
        // Once every temp position is claimed no remaining entry can
        // place a lane; the rest of the walk would only recompute
        // failed claims (entries without claims are never mutated).
        if (!positionalCapacityLeft())
            break;
        int nxt = c_.rs.nextInList(idx);
        RsEntry &e = c_.rs.at(idx);
        if (e.uop.isMixedPrecision() && c_.scfg.mpCompress) {
            idx = nxt; // handled by the chain path
            continue;
        }
        uint16_t avail = schedulableAls(e);
        if (!avail) {
            idx = nxt;
            continue;
        }

        bool mp = e.uop.isMixedPrecision();
        const VecReg &a = c_.operandA(e);
        const VecReg &b = c_.operandB(e);
        const VecReg &cv = c_.prf.value(e.pc);
        int type = mp ? 1 : 0;

        if (avail == 0xffffu) {
            // Dense fast path: a fully-effectual entry fills a whole
            // temp (every rotated position is distinct), so one scan
            // decides what sixteen claimSlot calls would. Only valid
            // when no earlier temp could have absorbed a lane — a
            // partially-filled matching temp falls back to the exact
            // per-lane walk.
            int vpu = -1;
            for (size_t v = 0; v < temps_.size(); ++v) {
                const Temp &t = temps_[v];
                if (t.type != -1 && (t.type != type || t.hc))
                    continue; // never eligible for these lanes
                if (t.type == -1) {
                    vpu = static_cast<int>(v);
                    break;
                }
                if (t.lanesUsed == 0xffffu)
                    continue; // full: cannot take any lane
                vpu = -2;     // partial match: per-lane semantics
                break;
            }
            if (vpu >= 0) {
                Temp &t = temps_[static_cast<size_t>(vpu)];
                t.type = type;
                t.hc = false;
                t.lanesUsed = 0xffffu;
                t.count = kVecLanes;
                t.vec.dstPhys = e.dstPhys;
                t.vec.robIdx = e.robIdx;
                t.vec.value = mp
                    ? simd::ops().bf16MacSkipVec(a, b, cv, e.elm)
                    : simd::ops().macSkipF32Vec(a, b, cv, 0xffffu);
                t.vecValid = true;
                if (mp)
                    e.pendingMl = 0;
                e.pendingAl = 0;
                st_coalesced_lanes_.add(kVecLanes);
                if (c_.etrace_)
                    c_.etrace_->coalesceDense(c_.now(), e.seq, vpu);
                maybeRelease(idx);
                idx = nxt;
                continue;
            }
            if (vpu == -1) {
                // Every temp is full or type-incompatible: no lane can
                // be placed, same outcome as sixteen failed claims.
                idx = nxt;
                continue;
            }
        }

        int claimed = 0;
        for (uint16_t m = avail; m;) {
            int lane = lowestSetBit(m);
            m &= static_cast<uint16_t>(m - 1);
            int temp_lane = (lane + e.rot + kVecLanes) % kVecLanes;
            int vpu = claimSlot(temp_lane, type, false);
            if (vpu < 0)
                continue;

            float r = cv.f32(lane);
            if (mp) {
                // Both multiplicand lanes of the AL execute in the
                // slot; ineffectual ones contribute an exact zero.
                for (int s = 0; s < kMlPerAl; ++s) {
                    int ml = kMlPerAl * lane + s;
                    if ((e.elm >> ml) & 1)
                        r = bf16MacSkip(r, a.bf16(ml), b.bf16(ml));
                }
                e.pendingMl &= ~(0x3u << (kMlPerAl * lane));
            } else {
                r = macSkipF32(r, a.f32(lane), b.f32(lane));
            }
            temps_[static_cast<size_t>(vpu)].writes.push_back(
                {e.dstPhys, static_cast<int8_t>(lane), r, e.robIdx});
            e.pendingAl &= static_cast<uint16_t>(~(1u << lane));
            ++claimed;
            if (c_.etrace_)
                c_.etrace_->coalesceLane(c_.now(), e.seq, lane,
                                         temp_lane, vpu, false);
        }
        if (claimed)
            st_coalesced_lanes_.add(claimed);
        maybeRelease(idx);
        idx = nxt;
    }
}

void
VectorScheduler::scheduleHc()
{
    // Horizontal compression: bubble-collapse each VFMA's effectual
    // lanes and concatenate across instructions; any lane may take any
    // temp slot (paper Fig. 5b), at extra latency for the crossbars.
    for (int idx = c_.rs.firstIssuable(); idx != Rs::kEnd;) {
        int nxt = c_.rs.nextInList(idx);
        RsEntry &e = c_.rs.at(idx);
        if (e.uop.isMixedPrecision() && c_.scfg.mpCompress) {
            idx = nxt;
            continue;
        }
        uint16_t avail = schedulableAls(e);
        if (!avail) {
            idx = nxt;
            continue;
        }

        bool mp = e.uop.isMixedPrecision();
        const VecReg &a = c_.operandA(e);
        const VecReg &b = c_.operandB(e);
        const VecReg &cv = c_.prf.value(e.pc);

        int claimed = 0;
        for (uint16_t m = avail; m;) {
            int lane = lowestSetBit(m);
            m &= static_cast<uint16_t>(m - 1);
            int vpu = claimSlot(-1, mp ? 1 : 0, true);
            if (vpu < 0) {
                // All temps full; account what this entry got first.
                // The failed lane is still pending, so the entry
                // cannot be releasable here.
                if (claimed)
                    st_hc_lanes_.add(claimed);
                return;
            }
            float r = cv.f32(lane);
            if (mp) {
                for (int s = 0; s < kMlPerAl; ++s) {
                    int ml = kMlPerAl * lane + s;
                    if ((e.elm >> ml) & 1)
                        r = bf16MacSkip(r, a.bf16(ml), b.bf16(ml));
                }
                e.pendingMl &= ~(0x3u << (kMlPerAl * lane));
            } else {
                r = macSkipF32(r, a.f32(lane), b.f32(lane));
            }
            temps_[static_cast<size_t>(vpu)].writes.push_back(
                {e.dstPhys, static_cast<int8_t>(lane), r, e.robIdx});
            e.pendingAl &= static_cast<uint16_t>(~(1u << lane));
            ++claimed;
            if (c_.etrace_)
                c_.etrace_->coalesceLane(
                    c_.now(), e.seq, lane,
                    temps_[static_cast<size_t>(vpu)].count - 1, vpu,
                    true);
        }
        if (claimed)
            st_hc_lanes_.add(claimed);
        maybeRelease(idx);
        idx = nxt;
    }
}

void
VectorScheduler::issueTemps()
{
    for (size_t v = 0; v < temps_.size(); ++v) {
        Temp &t = temps_[v];
        if (t.count == 0)
            continue;
        int lat = c_.fmaLatency(t.type == 1);
        if (t.hc)
            lat += c_.scfg.hcExtraLatency;
        if (t.vecValid)
            c_.vpus[v].issueVec(t.vec,
                                c_.now() + static_cast<uint64_t>(lat));
        else
            c_.vpus[v].issue(t.writes,
                             c_.now() + static_cast<uint64_t>(lat));
        c_.activity_ = true;
        st_temps_issued_.add();
        st_temp_fill_.add(t.count);
        if (c_.etrace_)
            c_.etrace_->tempIssue(c_.now(), static_cast<int>(v),
                                  t.count, t.type == 1, lat, t.hc);
    }
}

void
VectorScheduler::step()
{
    for (Temp &t : temps_) {
        t.lanesUsed = 0;
        t.count = 0;
        t.type = -1;
        t.hc = false;
        t.writes.clear();
        t.vecValid = false;
    }

    if (!c_.scfg.enabled || c_.scfg.policy == SchedPolicy::Baseline) {
        scheduleBaseline();
        issueTemps();
        return;
    }

    passThrough();

    // Combination-window size (paper SecIII): the *ready* VFMAs — all
    // operands including the full accumulator available — bounded by
    // the number of accumulator registers, since same-accumulator
    // VFMAs carry a true dependence ("often 24-28" for a large GEMM).
    // Candidates all carry an ELM (readiness implies the MGU ran), so
    // scanning the issuable sublist suffices.
    int cw = 0;
    for (int idx = c_.rs.firstIssuable(); idx != Rs::kEnd;
         idx = c_.rs.nextInList(idx)) {
        const RsEntry &e = c_.rs.at(idx);
        if (e.aReady && e.bReady && (e.pendingAl || e.pendingMl) &&
            c_.prf.fullyReady(e.pc)) {
            ++cw;
        }
    }
    if (cw > 0) {
        c_.st_cw_sum_.add(cw);
        c_.st_cw_cycles_.add();
        c_.fx_cw_ = cw;
    }

    if (c_.scfg.mpCompress)
        scheduleChains();
    if (c_.scfg.policy == SchedPolicy::HC)
        scheduleHc();
    else
        scheduleCoalesced();
    issueTemps();
}

} // namespace save
