#include "save/scheduler.h"

#include "isa/bf16.h"
#include "sim/core.h"
#include "util/bitutil.h"
#include "util/logging.h"

namespace save {

VectorScheduler::VectorScheduler(Core &core) : c_(core) {}

uint16_t
VectorScheduler::schedulableAls(const RsEntry &e) const
{
    if (!e.elmValid || !e.aReady || !e.bReady)
        return 0;
    uint16_t m = e.pendingAl;
    if (m == 0)
        return 0;
    if (c_.scfg.laneWiseDep)
        return m & c_.prf.laneReady(e.pc);
    return c_.prf.fullyReady(e.pc) ? m : 0;
}

void
VectorScheduler::maybeRelease(int rs_idx)
{
    const RsEntry &e = c_.rs.at(rs_idx);
    if (e.valid && e.pendingAl == 0 && e.passPending == 0)
        c_.releaseEntry(rs_idx);
}

int
VectorScheduler::claimSlot(std::vector<Temp> &temps, int lane, int type,
                           bool hc)
{
    for (size_t v = 0; v < temps.size(); ++v) {
        Temp &t = temps[v];
        if (t.type != -1 && (t.type != type || t.hc != hc))
            continue;
        if (hc) {
            if (t.count >= kVecLanes)
                continue;
        } else {
            if ((t.lanesUsed >> lane) & 1)
                continue;
            t.lanesUsed |= static_cast<uint16_t>(1u << lane);
        }
        t.type = type;
        t.hc = hc;
        ++t.count;
        return static_cast<int>(v);
    }
    return -1;
}

void
VectorScheduler::passThrough()
{
    // Lanes whose product is ineffectual forward the accumulator input
    // to the destination; modeled as a one-cycle register move without
    // a VPU slot (paper SecIII: fully-ineffectual uops are removed
    // from the RS without issuing).
    // Iterate over a copy: maybeRelease mutates the order list.
    std::vector<int> order = c_.rs.order();
    for (int idx : order) {
        RsEntry &e = c_.rs.at(idx);
        if (!e.valid || !e.uop.isVfma() || !e.elmValid || !e.passPending)
            continue;
        uint16_t avail = e.passPending & c_.prf.laneReady(e.pc);
        if (!c_.scfg.laneWiseDep && !c_.prf.fullyReady(e.pc))
            avail = 0;
        if (!avail)
            continue;
        const VecReg &cval = c_.prf.value(e.pc);
        for (int lane = 0; lane < kVecLanes; ++lane) {
            if (!((avail >> lane) & 1))
                continue;
            c_.schedulePublish(e.dstPhys, lane, cval.f32(lane), e.robIdx,
                               c_.now() + 1);
            c_.stats().add("passthrough_lanes");
        }
        e.passPending &= static_cast<uint16_t>(~avail);
        maybeRelease(idx);
    }
}

void
VectorScheduler::scheduleBaseline(std::vector<Temp> &temps)
{
    std::vector<int> order = c_.rs.order();
    for (int idx : order) {
        RsEntry &e = c_.rs.at(idx);
        if (!e.valid || !e.uop.isVfma() || e.issued)
            continue;
        c_.refreshReadiness(e);
        if (!e.aReady || !e.bReady || !c_.prf.fullyReady(e.pc))
            continue;

        bool mp = e.uop.isMixedPrecision();
        int vpu = -1;
        for (size_t v = 0; v < temps.size(); ++v) {
            if (temps[v].type == -1) {
                vpu = static_cast<int>(v);
                break;
            }
        }
        if (vpu < 0)
            break;
        Temp &t = temps[static_cast<size_t>(vpu)];
        t.type = mp ? 1 : 0;
        t.lanesUsed = 0xffffu;
        t.count = kVecLanes;

        const VecReg &a = c_.operandA(e);
        const VecReg &b = c_.operandB(e);
        const VecReg &cv = c_.prf.value(e.pc);
        for (int lane = 0; lane < kVecLanes; ++lane) {
            float r = cv.f32(lane);
            if ((e.wm >> lane) & 1) {
                if (mp) {
                    r = bf16Mac(r, a.bf16(2 * lane), b.bf16(2 * lane));
                    r = bf16Mac(r, a.bf16(2 * lane + 1),
                                b.bf16(2 * lane + 1));
                } else {
                    r = r + a.f32(lane) * b.f32(lane);
                }
            }
            t.writes.push_back(
                {e.dstPhys, static_cast<int8_t>(lane), r, e.robIdx});
        }
        e.issued = true;
        c_.releaseEntry(idx);
        c_.stats().add("baseline_vfma_issues");
    }
}

void
VectorScheduler::scheduleCoalesced(std::vector<Temp> &temps)
{
    // Age-ordered, per-lane oldest-first selection: equivalent to
    // Algorithm 1's lane-major priority select, since walking entries
    // oldest-first hands each temp lane position to the oldest
    // instruction wanting it.
    std::vector<int> order = c_.rs.order();
    for (int idx : order) {
        RsEntry &e = c_.rs.at(idx);
        if (!e.valid || !e.uop.isVfma())
            continue;
        if (e.uop.isMixedPrecision() && c_.scfg.mpCompress)
            continue; // handled by the chain path
        uint16_t avail = schedulableAls(e);
        if (!avail)
            continue;

        bool mp = e.uop.isMixedPrecision();
        const VecReg &a = c_.operandA(e);
        const VecReg &b = c_.operandB(e);
        const VecReg &cv = c_.prf.value(e.pc);

        for (int lane = 0; lane < kVecLanes && avail; ++lane) {
            if (!((avail >> lane) & 1))
                continue;
            int temp_lane = (lane + e.rot + kVecLanes) % kVecLanes;
            int vpu = claimSlot(temps, temp_lane, mp ? 1 : 0, false);
            if (vpu < 0)
                continue;

            float r = cv.f32(lane);
            if (mp) {
                // Both multiplicand lanes of the AL execute in the
                // slot; ineffectual ones contribute an exact zero.
                for (int s = 0; s < kMlPerAl; ++s) {
                    int ml = kMlPerAl * lane + s;
                    if ((e.elm >> ml) & 1)
                        r = bf16Mac(r, a.bf16(ml), b.bf16(ml));
                }
                e.pendingMl &= ~(0x3u << (kMlPerAl * lane));
            } else {
                r = r + a.f32(lane) * b.f32(lane);
            }
            temps[static_cast<size_t>(vpu)].writes.push_back(
                {e.dstPhys, static_cast<int8_t>(lane), r, e.robIdx});
            e.pendingAl &= static_cast<uint16_t>(~(1u << lane));
            avail &= static_cast<uint16_t>(~(1u << lane));
            c_.stats().add("coalesced_lanes");
        }
        maybeRelease(idx);
    }
}

void
VectorScheduler::scheduleHc(std::vector<Temp> &temps)
{
    // Horizontal compression: bubble-collapse each VFMA's effectual
    // lanes and concatenate across instructions; any lane may take any
    // temp slot (paper Fig. 5b), at extra latency for the crossbars.
    std::vector<int> order = c_.rs.order();
    for (int idx : order) {
        RsEntry &e = c_.rs.at(idx);
        if (!e.valid || !e.uop.isVfma())
            continue;
        if (e.uop.isMixedPrecision() && c_.scfg.mpCompress)
            continue;
        uint16_t avail = schedulableAls(e);
        if (!avail)
            continue;

        bool mp = e.uop.isMixedPrecision();
        const VecReg &a = c_.operandA(e);
        const VecReg &b = c_.operandB(e);
        const VecReg &cv = c_.prf.value(e.pc);

        for (int lane = 0; lane < kVecLanes && avail; ++lane) {
            if (!((avail >> lane) & 1))
                continue;
            int vpu = claimSlot(temps, -1, mp ? 1 : 0, true);
            if (vpu < 0)
                return; // all temps full
            float r = cv.f32(lane);
            if (mp) {
                for (int s = 0; s < kMlPerAl; ++s) {
                    int ml = kMlPerAl * lane + s;
                    if ((e.elm >> ml) & 1)
                        r = bf16Mac(r, a.bf16(ml), b.bf16(ml));
                }
                e.pendingMl &= ~(0x3u << (kMlPerAl * lane));
            } else {
                r = r + a.f32(lane) * b.f32(lane);
            }
            temps[static_cast<size_t>(vpu)].writes.push_back(
                {e.dstPhys, static_cast<int8_t>(lane), r, e.robIdx});
            e.pendingAl &= static_cast<uint16_t>(~(1u << lane));
            avail &= static_cast<uint16_t>(~(1u << lane));
            c_.stats().add("hc_lanes");
        }
        maybeRelease(idx);
    }
}

void
VectorScheduler::issueTemps(std::vector<Temp> &temps)
{
    for (size_t v = 0; v < temps.size(); ++v) {
        Temp &t = temps[v];
        if (t.count == 0)
            continue;
        int lat = c_.fmaLatency(t.type == 1);
        if (t.hc)
            lat += c_.scfg.hcExtraLatency;
        c_.vpus[v].issue(std::move(t.writes),
                         c_.now() + static_cast<uint64_t>(lat));
        c_.stats().add("temps_issued");
        c_.stats().add("temp_fill", t.count);
    }
}

void
VectorScheduler::step()
{
    std::vector<Temp> temps(static_cast<size_t>(c_.activeVpus));

    if (!c_.scfg.enabled || c_.scfg.policy == SchedPolicy::Baseline) {
        scheduleBaseline(temps);
        issueTemps(temps);
        return;
    }

    passThrough();

    // Combination-window size (paper SecIII): the *ready* VFMAs — all
    // operands including the full accumulator available — bounded by
    // the number of accumulator registers, since same-accumulator
    // VFMAs carry a true dependence ("often 24-28" for a large GEMM).
    int cw = 0;
    for (int idx : c_.rs.order()) {
        const RsEntry &e = c_.rs.at(idx);
        if (e.valid && e.uop.isVfma() && e.elmValid && e.aReady &&
            e.bReady && (e.pendingAl || e.pendingMl) &&
            c_.prf.fullyReady(e.pc)) {
            ++cw;
        }
    }
    if (cw > 0) {
        c_.stats().add("cw_sum", cw);
        c_.stats().add("cw_cycles");
    }

    if (c_.scfg.mpCompress)
        scheduleChains(temps);
    if (c_.scfg.policy == SchedPolicy::HC)
        scheduleHc(temps);
    else
        scheduleCoalesced(temps);
    issueTemps(temps);
}

} // namespace save
