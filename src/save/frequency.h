/**
 * @file
 * Power saving and frequency boosting (paper SecIV-D).
 *
 * At high sparsity there are not enough effectual lanes to keep both
 * VPUs busy, so SAVE can disable one VPU and let the power manager
 * raise the core clock (1.7GHz with 2 VPUs -> 2.1GHz with 1). The
 * paper selects the VPU count "either statically through control
 * registers, or dynamically through heuristics from performance
 * counters"; this module provides that counter heuristic plus a
 * relative VPU energy model.
 */

#ifndef SAVE_SAVE_FREQUENCY_H
#define SAVE_SAVE_FREQUENCY_H

#include "engine/engine.h"

namespace save {

/** Relative VPU energy model (arbitrary units; 1.0 = one 512-bit op). */
struct VpuPowerModel
{
    /** Dynamic energy per issued 512-bit VPU operation. */
    double opEnergy = 1.0;
    /** Static leakage per active VPU per core cycle. */
    double leakPerVpuCycle = 0.02;

    /** Total VPU energy of a finished run. */
    double
    energy(const KernelResult &r, int active_vpus) const
    {
        return r.stats.get("vpu_ops") * opEnergy +
               static_cast<double>(r.cycles) * active_vpus *
                   leakPerVpuCycle;
    }
};

/** Outcome of the performance-counter heuristic. */
struct VpuChoice
{
    /** Chosen VPU count (1 or 2). */
    int vpus = 2;
    /** Measured fraction of cycles each VPU issued an op. */
    double vpuUtilization = 0.0;
    /** Measured effectual-lane density (issued / total MAC lanes). */
    double effectualFraction = 1.0;
};

/**
 * The paper's dynamic selection via performance counters, realized as
 * two-phase sampling: run a shortened probe of the kernel in each VPU
 * configuration (a few microseconds each, as a DVFS governor would),
 * compare wall times, and lock in the faster one. Pure utilization
 * thresholds misfire on kernels whose 1-VPU slowdown comes from
 * halved per-lane coalescing capacity rather than raw op throughput;
 * sampling sees the real effect.
 *
 * The probe runs at `probe_fraction` of the kernel's K depth.
 */
VpuChoice chooseVpusByCounters(Engine &save_engine, const GemmConfig &cfg,
                               int probe_fraction = 4);

} // namespace save

#endif // SAVE_SAVE_FREQUENCY_H
