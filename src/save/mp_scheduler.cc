/**
 * @file
 * Mixed-precision chain scheduling (paper SecV).
 *
 * VDPBF16PS maps two BF16 multiplicand lanes (MLs) onto one FP32
 * accumulator lane (AL), so vertical coalescing alone only skips an AL
 * when both of its MLs are ineffectual. SAVE additionally compresses
 * effectual MLs *horizontally* across VFMAs that share an accumulator
 * chain: up to two queued MLs are packed into each temp AL slot, in
 * program order (which preserves the FP accumulation order and hence
 * bitwise reproducibility, SecV-A), with the partial result forwarded
 * to the next chained operation at half the VFMA latency (SecV-B/C).
 */

#include "isa/bf16.h"
#include "sim/mgu.h"
#include "save/scheduler.h"

#include "sim/core.h"
#include "trace/event_trace.h"
#include "util/bitutil.h"
#include "util/logging.h"

#include <algorithm>

namespace save {

void
VectorScheduler::onVfmaAllocated(int rs_idx)
{
    RsEntry &e = c_.rs.at(rs_idx);
    if (!e.uop.isMixedPrecision() || !c_.scfg.mpCompress ||
        !c_.scfg.enabled || c_.scfg.policy == SchedPolicy::Baseline) {
        return;
    }

    int chain_id = -1;
    int prod_idx = e.pc == kNoReg
        ? -1
        : c_.vfma_dst_to_rs_[static_cast<size_t>(e.pc)];
    if (prod_idx >= 0 && prod_idx != rs_idx) {
        const RsEntry &prod = c_.rs.at(prod_idx);
        if (prod.valid && prod.uop.dst == e.uop.dst &&
            prod.chainId >= 0 && chains_.count(prod.chainId)) {
            chain_id = prod.chainId;
        }
    }
    if (chain_id < 0) {
        chain_id = next_chain_id_++;
        Chain ch;
        ch.rot = e.rot;
        chains_.emplace(chain_id, std::move(ch));
    }
    e.chainId = chain_id;
    Chain &ch = chains_.at(chain_id);
    ch.nodes.push_back({rs_idx, e.seq});
    if (ch.nodes.size() == 1)
        ch.frontSeq = e.seq;
}

void
VectorScheduler::onEntryReleased(int rs_idx)
{
    (void)rs_idx; // chain nodes detect released entries by seq mismatch
}

void
VectorScheduler::rebuildAfterSquash()
{
    if (!c_.scfg.enabled || !c_.scfg.mpCompress) {
        chains_.clear();
        return;
    }
    // Discard partial results: any AL whose final value has not been
    // scheduled for writeback gets all of its effectual MLs back and
    // will be recomputed from the accumulator input (SecV-B).
    for (int idx : c_.rs.order()) {
        RsEntry &e = c_.rs.at(idx);
        if (!e.uop.isMixedPrecision() || !e.elmValid)
            continue;
        for (int al = 0; al < kVecLanes; ++al) {
            if ((e.alScheduled >> al) & 1)
                continue;
            uint32_t al_mls = e.elm & (0x3u << (kMlPerAl * al));
            if (al_mls)
                e.pendingMl |= al_mls;
        }
        e.pendingAl = mpAlMask(e.pendingMl);
        e.chainId = -1;
    }
    // Rebuild the chain structures over the survivors, in age order,
    // using the surviving dst->RS links.
    chains_.clear();
    std::vector<int> order = c_.rs.order();
    for (int idx : order) {
        RsEntry &e = c_.rs.at(idx);
        if (e.uop.isMixedPrecision())
            onVfmaAllocated(idx);
    }
}

bool
VectorScheduler::nodeConsumed(const ChainNode &n, int al) const
{
    const RsEntry &e = c_.rs.at(n.rsIdx);
    if (!e.valid || e.seq != n.seq)
        return true; // released: everything consumed
    if (!e.elmValid)
        return false;
    return (e.pendingMl & (0x3u << (kMlPerAl * al))) == 0;
}

void
VectorScheduler::advanceCursor(Chain &chain, int al)
{
    int &cur = chain.cursor[static_cast<size_t>(al)];
    while (cur < static_cast<int>(chain.nodes.size())) {
        const ChainNode &n = chain.nodes[static_cast<size_t>(cur)];
        const RsEntry &e = c_.rs.at(n.rsIdx);
        bool stale = !e.valid || e.seq != n.seq;
        if (!stale) {
            if (!e.elmValid)
                break; // ELM unknown: cannot prove this node is done
            if (e.pendingMl & (0x3u << (kMlPerAl * al)))
                break; // effectual work remains here
        }
        ++cur;
    }
}

void
VectorScheduler::trimChain(int chain_id)
{
    auto it = chains_.find(chain_id);
    if (it == chains_.end())
        return;
    Chain &ch = it->second;
    while (!ch.nodes.empty()) {
        const ChainNode &n = ch.nodes.front();
        const RsEntry &e = c_.rs.at(n.rsIdx);
        if (e.valid && e.seq == n.seq)
            break;
        ch.nodes.pop_front();
        for (auto &cur : ch.cursor)
            cur = std::max(0, cur - 1);
        if (!ch.nodes.empty())
            ch.frontSeq = ch.nodes.front().seq;
    }
    if (ch.nodes.empty())
        chains_.erase(it);
}

uint64_t
VectorScheduler::nextTimeWake(uint64_t now) const
{
    // A chain AL whose forwarded partial result is still in flight
    // (readyCycle in the future) becomes schedulable purely by time
    // passing; everything else the scheduler waits on arrives through
    // a publish/completion event the core already tracks.
    uint64_t best = kNeverCycle;
    for (const auto &[id, ch] : chains_) {
        (void)id;
        for (const ChainAl &ca : ch.al) {
            // >= not >: wakeHorizon probes with cycle_ already advanced
            // to the next un-executed cycle, so a forwarded result that
            // becomes ready exactly at `now` must pin the horizon here
            // (run() then steps normally instead of jumping past the
            // cycle where this AL schedules).
            if (ca.init && ca.readyCycle >= now && ca.readyCycle < best)
                best = ca.readyCycle;
        }
    }
    return best;
}

void
VectorScheduler::scheduleChainAl(Chain &chain, int al)
{
    ChainAl &ca = chain.al[static_cast<size_t>(al)];
    if (ca.init && ca.readyCycle > c_.now())
        return; // waiting on the forwarded partial result (fast path:
                // skips the cursor walk; advanceCursor is idempotent)

    // Claim-availability precheck: in a saturated cycle most calls die
    // at claimSlot below, after paying for the cursor walk and the
    // readiness probes. The target temp position is known without the
    // cursor, so test it first. Everything the skipped prefix would
    // have updated (cursor advance, chain-base capture) is a pure
    // cache whose deferral is invisible: the accumulator lane value is
    // stable once published, and a cycle with every temp claimed
    // always issues them (activity), so the fast-forward horizon never
    // sees the deferred init.
    int temp_lane = (al + chain.rot + kVecLanes) % kVecLanes;
    if (!slotAvailable(temp_lane, 1))
        return;

    advanceCursor(chain, al);
    int &cursor = chain.cursor[static_cast<size_t>(al)];
    if (cursor >= static_cast<int>(chain.nodes.size()))
        return;

    const ChainNode &front = chain.nodes[static_cast<size_t>(cursor)];
    RsEntry &e = c_.rs.at(front.rsIdx);
    SAVE_ASSERT(e.valid && e.seq == front.seq, "cursor on stale node");
    if (!e.elmValid)
        return;
    if (!e.aReady || !e.bReady)
        return;

    if (!ca.init) {
        // Chain base: the accumulator input of the cursor node, read
        // from the register file once its lane has been published.
        if (!c_.prf.laneIsReady(e.pc, al))
            return;
        ca.value = c_.prf.value(e.pc).f32(al);
        ca.readyCycle = c_.now();
        ca.init = true;
    }

    int vpu = claimSlot(temp_lane, 1, false);
    if (vpu < 0)
        return;

    float v = ca.value;
    int taken = 0;
    int cur = cursor;
    while (taken < kMlPerAl &&
           cur < static_cast<int>(chain.nodes.size())) {
        const ChainNode &n = chain.nodes[static_cast<size_t>(cur)];
        RsEntry &e2 = c_.rs.at(n.rsIdx);
        if (!e2.valid || e2.seq != n.seq) {
            ++cur;
            continue;
        }
        if (!e2.elmValid)
            break;
        if (!e2.aReady || !e2.bReady)
            break;

        uint32_t al_mask = 0x3u << (kMlPerAl * al);
        if ((e2.pendingMl & al_mask) == 0) {
            // No effectual MLs here: the node passes the accumulator
            // through at this AL (handled by the generic pass-through
            // path); the chain value is unchanged.
            ++cur;
            continue;
        }

        const VecReg &a = c_.operandA(e2);
        const VecReg &b = c_.operandB(e2);
        for (int s = 0; s < kMlPerAl && taken < kMlPerAl; ++s) {
            int ml = kMlPerAl * al + s;
            if (!((e2.pendingMl >> ml) & 1))
                continue;
            v = bf16MacSkip(v, a.bf16(ml), b.bf16(ml));
            e2.pendingMl &= ~(1u << ml);
            ++taken;
        }
        if ((e2.pendingMl & al_mask) == 0) {
            // This VFMA's lane is architecturally complete: the running
            // value at this point in the chain is its destination value
            // (SecV-B: intermediate results are written back exactly).
            c_.schedulePublish(
                e2.dstPhys, al, v, e2.robIdx,
                c_.now() + static_cast<uint64_t>(c_.fmaLatency(true)));
            e2.pendingAl &= static_cast<uint16_t>(~(1u << al));
            e2.alScheduled |= static_cast<uint16_t>(1u << al);
            maybeRelease(n.rsIdx);
            ++cur;
        } else {
            break; // slot full with MLs left in this node
        }
    }

    SAVE_ASSERT(taken > 0, "claimed a slot without consuming MLs");
    cursor = cur;
    ca.value = v;
    ca.readyCycle =
        c_.now() +
        static_cast<uint64_t>(std::max(1, c_.fmaLatency(true) / 2));
    st_mp_mls_issued_.add(taken);
    if (c_.etrace_)
        c_.etrace_->chainMl(c_.now(), front.seq, al, vpu, taken);
}

void
VectorScheduler::scheduleChains()
{
    if (chains_.empty())
        return;

    // Oldest chain first (front-entry program order).
    chain_order_.clear();
    for (auto &[id, ch] : chains_)
        chain_order_.emplace_back(ch.frontSeq, id);
    std::sort(chain_order_.begin(), chain_order_.end());

    for (auto &[seq, id] : chain_order_) {
        (void)seq;
        // Once every temp is claimed and type-1 positions are all
        // taken, no remaining chain AL can schedule this cycle; every
        // skipped call would have failed its claim precheck.
        if (!mpCapacityLeft())
            break;
        Chain &ch = chains_.at(id);
        // Union of pending effectual MLs over the chain's live nodes:
        // an AL with no bit anywhere can schedule nothing this cycle
        // (its cursor either runs to the end or parks on a node whose
        // ELM is still unknown — both no-ops), so only ALs in the
        // union pay the per-AL cursor walk. One sequential O(nodes)
        // scan replaces sixteen of them.
        uint32_t pending_union = 0;
        for (const ChainNode &n : ch.nodes) {
            const RsEntry &e = c_.rs.at(n.rsIdx);
            if (e.valid && e.seq == n.seq)
                pending_union |= e.pendingMl;
        }
        for (uint16_t m = mpAlMask(pending_union); m;) {
            int al = lowestSetBit(m);
            m &= static_cast<uint16_t>(m - 1);
            scheduleChainAl(ch, al);
        }
    }
    for (auto &[seq, id] : chain_order_) {
        (void)seq;
        trimChain(id);
    }
}

} // namespace save
