#include "save/frequency.h"

#include <algorithm>

namespace save {

VpuChoice
chooseVpusByCounters(Engine &save_engine, const GemmConfig &cfg,
                     int probe_fraction)
{
    GemmConfig probe = cfg;
    probe.kSteps = std::max(16, cfg.kSteps / probe_fraction);
    probe.tiles = std::max(1, cfg.tiles / 2);

    KernelResult r2 = save_engine.runGemm(probe, 1, 2);
    KernelResult r1 = save_engine.runGemm(probe, 1, 1);

    VpuChoice choice;
    double cycles = static_cast<double>(r2.cycles);
    choice.vpuUtilization =
        cycles > 0 ? r2.stats.get("vpu_ops") / (2.0 * cycles) : 0.0;
    double total_lanes = static_cast<double>(probe.macs()) /
                         (cfg.precision == Precision::Bf16 ? 2.0 : 1.0);
    double issued = r2.stats.get("coalesced_lanes") +
                    r2.stats.get("hc_lanes") +
                    16.0 * r2.stats.get("baseline_vfma_issues");
    choice.effectualFraction =
        total_lanes > 0 ? issued / total_lanes : 1.0;
    choice.vpus = r1.timeNs < r2.timeNs ? 1 : 2;
    return choice;
}

} // namespace save
