/**
 * @file
 * Typed simulation errors.
 *
 * The gem5-style macros in logging.h (SAVE_PANIC / SAVE_FATAL) kill
 * the process, which is right for internal invariant violations but
 * wrong for everything a long-running sweep should survive: bad user
 * configuration, a wedged slice simulation, a corrupt cache file.
 * Those conditions throw a SimError subclass instead, carrying enough
 * context (core id, cycle, uop sequence number, configuration hash)
 * that a failure buried in an hours-long fig14-19 sweep is actionable
 * from the report alone.
 *
 * Taxonomy:
 *   ConfigError   -- the user asked for something impossible; thrown
 *                    by the validate() methods and argument parsing.
 *                    Always actionable: names the field, the value,
 *                    and the accepted range.
 *   TraceError    -- a uop stream is malformed or inconsistent with
 *                    the machine it is bound to (also used for
 *                    injected slice faults, see fault_injection.h).
 *   DeadlockError -- the retirement watchdog detected no forward
 *                    progress; carries a pipeline snapshot.
 *   CacheError    -- a persistent artifact (surface cache, sweep
 *                    journal) cannot be read or written; carries the
 *                    path.
 *   AuditError    -- the cycle-granular invariant auditor (built with
 *                    -DSAVE_AUDIT=ON; src/sim/auditor.h) found the
 *                    pipeline in an inconsistent state; carries the
 *                    same pipeline snapshot as the watchdog.
 *   WorkerError   -- a sandboxed slice worker process (src/proc) died
 *                    or misbehaved: crashed on a signal, overran its
 *                    wall-clock deadline, was killed for memory, or
 *                    broke the wire protocol. kind() carries the
 *                    exit-status triage so the pool's retry/backoff
 *                    and degradation policies can tell a clean
 *                    in-worker error from a dead process.
 */

#ifndef SAVE_UTIL_ERROR_H
#define SAVE_UTIL_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace save {

/** Where an error happened; unset fields are omitted from the
 *  formatted message (core -1, cycle/seq -1, hash 0 = unset). */
struct SimContext
{
    int coreId = -1;
    int64_t cycle = -1;
    int64_t uopSeq = -1;
    uint64_t configHash = 0;

    /** " [core 3, cycle 1024, uop seq 77, config 0xabc...]" or ""
     *  when nothing is set. */
    std::string toString() const;
};

/** Base class for all recoverable simulation errors. */
class SimError : public std::runtime_error
{
  public:
    using Context = SimContext;

    explicit SimError(const std::string &what, Context ctx = Context());

    const Context &context() const { return ctx_; }

  private:
    Context ctx_;
};

/** Invalid user-supplied configuration or arguments. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &what, Context ctx = Context())
        : SimError(what, ctx)
    {
    }
};

/** Malformed or inconsistent uop trace (and injected slice faults). */
class TraceError : public SimError
{
  public:
    explicit TraceError(const std::string &what, Context ctx = Context())
        : SimError(what, ctx)
    {
    }
};

/** The watchdog saw no retirement progress; snapshot() holds the
 *  pipeline state dump taken when it fired. */
class DeadlockError : public SimError
{
  public:
    DeadlockError(const std::string &what, std::string snapshot,
                  Context ctx = Context());

    const std::string &snapshot() const { return snapshot_; }

  private:
    std::string snapshot_;
};

/** The invariant auditor caught a microarchitectural inconsistency;
 *  snapshot() holds the pipeline dump taken at the violation. */
class AuditError : public SimError
{
  public:
    AuditError(const std::string &what, std::string snapshot,
               Context ctx = Context());

    const std::string &snapshot() const { return snapshot_; }

  private:
    std::string snapshot_;
};

/** A sandboxed slice worker process failed at the process level (as
 *  opposed to sending back a clean typed error). Thrown only by the
 *  parent side of src/proc; the pool maps it into respawn/backoff
 *  bookkeeping and, past the crash budget, graceful in-process
 *  fallback. */
class WorkerError : public SimError
{
  public:
    enum class Kind : uint8_t
    {
        /** Killed by a signal (SIGSEGV/SIGBUS/SIGABRT/...). */
        Crash,
        /** Parent-enforced per-slice deadline expired; SIGKILLed. */
        Timeout,
        /** Out of memory: RSS-cap bad_alloc or an OOM-style kill. */
        Oom,
        /** Exited with a nonzero status and no error frame. */
        Exit,
        /** Sent a malformed/corrupt frame or violated the protocol. */
        Protocol,
        /** Could not be spawned (fork/exec/handshake failure). */
        Spawn,
    };

    WorkerError(Kind kind, const std::string &what,
                Context ctx = Context());

    Kind kind() const { return kind_; }

    /** Stable lower-case label ("crash", "timeout", ...). */
    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/** Persistent cache/journal I/O or format failure. */
class CacheError : public SimError
{
  public:
    CacheError(const std::string &what, std::string path,
               Context ctx = Context());

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace save

#endif // SAVE_UTIL_ERROR_H
