#include "util/journal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.h"
#include "util/logging.h"
#include "util/posix_io.h"

namespace save {

namespace {

constexpr const char *kMagic = "SAVEJRNL";
constexpr int kFormatVersion = 1;

/** Compaction threshold: rewrite when at least half the loaded
 *  records are superseded duplicates, but never for small files
 *  where the rewrite costs more than the dead bytes. */
constexpr size_t kCompactMinRecords = 16;

std::string
headerLine(uint64_t hash)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %d %016llx", kMagic,
                  kFormatVersion,
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace

uint64_t
sweepHash(const char *bench, std::initializer_list<int64_t> knobs)
{
    uint64_t h = 1469598103934665603ull;
    auto mix_byte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    for (const char *p = bench; *p; ++p)
        mix_byte(static_cast<unsigned char>(*p));
    for (int64_t v : knobs)
        for (int i = 0; i < 8; ++i)
            mix_byte(static_cast<unsigned char>(
                (static_cast<uint64_t>(v) >> (i * 8)) & 0xffu));
    return h;
}

std::string
SweepJournal::encodeBytes(const char *data, size_t n)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
        unsigned char b = static_cast<unsigned char>(data[i]);
        out.push_back(hex[b >> 4]);
        out.push_back(hex[b & 0xf]);
    }
    return out;
}

bool
SweepJournal::decodeBytes(const std::string &hex, char *out, size_t n)
{
    if (hex.size() != 2 * n)
        return false;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    for (size_t i = 0; i < n; ++i) {
        int hi = nibble(hex[2 * i]);
        int lo = nibble(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out[i] = static_cast<char>((hi << 4) | lo);
    }
    return true;
}

SweepJournal::SweepJournal(const std::string &path, uint64_t config_hash)
    : path_(path)
{
    if (path_.empty())
        return;

    std::error_code ec;
    auto parent = std::filesystem::path(path_).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    load(config_hash);
    maybeCompact(config_hash);

    bool fresh = !std::filesystem::exists(path_);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        throw CacheError(std::string("cannot open sweep journal for "
                                     "append: ") +
                             std::strerror(errno),
                         path_);
    if (fresh)
        appendLine(headerLine(config_hash));
}

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SweepJournal::appendLine(const std::string &line)
{
    std::string rec = line + "\n";
    if (writeFull(fd_, rec.data(), rec.size()) !=
        static_cast<ssize_t>(rec.size()))
        throw CacheError(std::string("cannot append to sweep "
                                     "journal: ") +
                             std::strerror(errno),
                         path_);
}

void
SweepJournal::load(uint64_t config_hash)
{
    std::string text;
    if (!readFileBytes(path_, text, nullptr))
        return; // no journal yet: start fresh

    // A record torn by a mid-append kill lacks its trailing '\n', so
    // only the prefix up to the last newline is trusted.
    size_t trusted = text.rfind('\n');
    bool torn_tail = trusted != std::string::npos &&
                     trusted + 1 != text.size();
    if (trusted == std::string::npos) {
        trusted = 0;
        torn_tail = !text.empty();
    } else {
        trusted += 1; // keep the newline inside the trusted prefix
    }

    size_t pos = 0;
    auto next_line = [&](std::string &line) {
        if (pos >= trusted)
            return false;
        size_t nl = text.find('\n', pos);
        line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };

    std::string line;
    if (!next_line(line) || line != headerLine(config_hash)) {
        // Different configuration (or not a journal at all): set the
        // old file aside so its points are never replayed here.
        std::error_code ec;
        std::filesystem::rename(path_, path_ + ".stale", ec);
        if (ec)
            std::filesystem::remove(path_, ec);
        SAVE_WARN("sweep journal ", path_,
                  " does not match this configuration; moved to ",
                  path_ + ".stale", " and starting fresh");
        return;
    }

    size_t dropped = torn_tail ? 1 : 0;
    while (next_line(line)) {
        size_t tab = line.find('\t');
        if (tab == std::string::npos || tab == 0) {
            ++dropped;
            continue;
        }
        // Last-wins: a later record for the same key supersedes the
        // earlier one (how a resumed run upgrades a failure marker).
        ++loadedRecords_;
        entries_.insert_or_assign(line.substr(0, tab),
                                  line.substr(tab + 1));
    }
    if (dropped > 0)
        SAVE_WARN("sweep journal ", path_, ": dropped ", dropped,
                  " incomplete record(s) (interrupted write)");
    if (!entries_.empty())
        SAVE_INFORM("sweep journal ", path_, ": resuming with ",
                    entries_.size(), " completed point(s)");
}

void
SweepJournal::maybeCompact(uint64_t config_hash)
{
    const size_t dupes = loadedRecords_ - entries_.size();
    if (loadedRecords_ < kCompactMinRecords ||
        dupes * 2 < loadedRecords_)
        return;

    std::string image = headerLine(config_hash) + "\n";
    for (const auto &[key, payload] : entries_)
        image += key + "\t" + payload + "\n";

    const std::string tmp =
        path_ + ".compact." + std::to_string(::getpid());
    std::string why;
    if (!writeFileBytes(tmp, image.data(), image.size(), &why)) {
        // Best-effort: an uncompacted journal is correct, just fat.
        SAVE_WARN("sweep journal compaction skipped: ", why);
        return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    if (ec) {
        SAVE_WARN("sweep journal compaction: cannot move ", tmp,
                  " into place: ", ec.message());
        std::filesystem::remove(tmp, ec);
        return;
    }
    compacted_ = true;
    SAVE_INFORM("sweep journal ", path_, ": compacted ",
                loadedRecords_, " record(s) down to ", entries_.size(),
                " (", dupes, " superseded)");
}

bool
SweepJournal::lookup(const std::string &key, std::string *payload) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    if (payload)
        *payload = it->second;
    return true;
}

void
SweepJournal::record(const std::string &key, const std::string &payload)
{
    if (!enabled())
        return;
    if (key.empty() || key.find('\t') != std::string::npos ||
        key.find('\n') != std::string::npos)
        throw ConfigError("journal key must be non-empty and free of "
                          "tabs/newlines: '" + key + "'");

    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == payload)
        return; // identical record already journaled
    entries_.insert_or_assign(key, payload);
    appendLine(key + "\t" + payload);
}

} // namespace save
