/**
 * @file
 * Status-message and error-reporting helpers in the gem5 tradition.
 *
 * panic()  -- internal invariant violated; a simulator bug. Aborts.
 * fatal()  -- the user asked for something impossible (bad config,
 *             invalid arguments). Exits with status 1.
 * warn()   -- something is modeled approximately; execution continues.
 * inform() -- normal operating status for the user.
 */

#ifndef SAVE_UTIL_LOGGING_H
#define SAVE_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace save {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Format and emit one message; terminates for Fatal/Panic. */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);
void log(LogLevel level, const char *file, int line, const std::string &msg);

/** Stream-concatenate a parameter pack into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Suppress inform()/warn() output (used by tests and benches). */
void setQuietLogging(bool quiet);
bool quietLogging();

} // namespace save

#define SAVE_PANIC(...)                                                     \
    ::save::detail::logAndDie(::save::LogLevel::Panic, __FILE__, __LINE__,  \
                              ::save::detail::concat(__VA_ARGS__))

#define SAVE_FATAL(...)                                                     \
    ::save::detail::logAndDie(::save::LogLevel::Fatal, __FILE__, __LINE__,  \
                              ::save::detail::concat(__VA_ARGS__))

#define SAVE_WARN(...)                                                      \
    ::save::detail::log(::save::LogLevel::Warn, __FILE__, __LINE__,         \
                        ::save::detail::concat(__VA_ARGS__))

#define SAVE_INFORM(...)                                                    \
    ::save::detail::log(::save::LogLevel::Inform, __FILE__, __LINE__,       \
                        ::save::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define SAVE_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            SAVE_PANIC("assertion failed: " #cond " ",                     \
                       ::save::detail::concat("" __VA_ARGS__));             \
        }                                                                   \
    } while (0)

#endif // SAVE_UTIL_LOGGING_H
