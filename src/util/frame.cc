#include "util/frame.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/error.h"
#include "util/posix_io.h"

namespace save {

namespace {

struct Crc32Table
{
    uint32_t t[256];

    constexpr Crc32Table() : t()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

constexpr Crc32Table kCrcTable;

/** Absolute deadline helper: remaining ms, clamped to >= 0. */
int
remainingMs(std::chrono::steady_clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

enum class TimedRead
{
    Ok,
    Eof,
    Timeout
};

/**
 * Read exactly n bytes before the deadline. Eof is only reported at
 * offset 0 when eof_ok; mid-buffer EOF and hard errors throw.
 */
TimedRead
readTimed(int fd, void *buf, size_t n, bool infinite,
          std::chrono::steady_clock::time_point deadline, bool eof_ok,
          const char *who)
{
    size_t done = 0;
    while (done < n) {
        int wait = infinite ? -1 : remainingMs(deadline);
        int ready = pollReadable(fd, wait);
        if (ready < 0)
            throw TraceError(std::string(who) + ": poll failed: " +
                             std::strerror(errno));
        if (ready == 0)
            return TimedRead::Timeout;
        ssize_t r = ::read(fd, static_cast<char *>(buf) + done,
                           n - done);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw TraceError(std::string(who) + ": read failed: " +
                             std::strerror(errno));
        }
        if (r == 0) {
            if (done == 0 && eof_ok)
                return TimedRead::Eof;
            throw TraceError(std::string(who) +
                             ": EOF inside a frame (peer died "
                             "mid-message)");
        }
        done += static_cast<size_t>(r);
    }
    return TimedRead::Ok;
}

} // namespace

std::string
frameFourccName(uint32_t fourcc)
{
    char text[5];
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((fourcc >> (8 * i)) & 0xffu);
        text[i] = std::isprint(static_cast<unsigned char>(c)) ? c : '.';
    }
    text[4] = '\0';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "'%s' (0x%08x)", text, fourcc);
    return buf;
}

uint32_t
frameCrc32(const uint8_t *p, size_t n, uint32_t seed)
{
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < n; ++i)
        c = kCrcTable.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
framePutU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
framePutU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
framePutF64(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    framePutU64(out, bits);
}

uint32_t
frameGetU32(const uint8_t *&p, const uint8_t *end)
{
    if (end - p < 4)
        throw TraceError("u32 runs past the end of its section");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    return v;
}

uint64_t
frameGetU64(const uint8_t *&p, const uint8_t *end)
{
    if (end - p < 8)
        throw TraceError("u64 runs past the end of its section");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
}

double
frameGetF64(const uint8_t *&p, const uint8_t *end)
{
    uint64_t bits = frameGetU64(p, end);
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
}

void
framePutString(std::vector<uint8_t> &out, const std::string &s)
{
    framePutU32(out, static_cast<uint32_t>(s.size()));
    framePutBytes(out, s.data(), s.size());
}

std::string
frameGetString(const uint8_t *&p, const uint8_t *end)
{
    uint32_t n = frameGetU32(p, end);
    if (static_cast<size_t>(end - p) < n)
        throw TraceError("string runs past payload end");
    std::string s(reinterpret_cast<const char *>(p), n);
    p += n;
    return s;
}

void
frameStructSizeError(const char *name, uint32_t got, size_t expected)
{
    throw TraceError(std::string(name) + " size " + std::to_string(got) +
                     " != expected " + std::to_string(expected) +
                     " (peers built from different trees?)");
}

void
frameStructShortError(const char *name)
{
    throw TraceError(std::string(name) + " runs past payload end");
}

void
frameAppendHeader(std::vector<uint8_t> &out, uint32_t fourcc,
                  uint32_t arg, const uint8_t *payload, size_t n)
{
    framePutU32(out, fourcc);
    framePutU32(out, arg);
    framePutU64(out, n);
    framePutU32(out, n == 0 ? frameCrc32(nullptr, 0)
                            : frameCrc32(payload, n));
}

void
frameAppend(std::vector<uint8_t> &out, uint32_t fourcc, uint32_t arg,
            const uint8_t *payload, size_t n)
{
    out.reserve(out.size() + kFrameHeaderBytes + n);
    frameAppendHeader(out, fourcc, arg, payload, n);
    if (n > 0)
        out.insert(out.end(), payload, payload + n);
}

std::vector<uint8_t>
frameEncode(uint32_t fourcc, uint32_t arg,
            const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> out;
    frameAppend(out, fourcc, arg, payload.data(), payload.size());
    return out;
}

bool
frameWriteFd(int fd, uint32_t fourcc, uint32_t arg,
             const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> buf =
        frameEncode(fourcc, arg, payload);
    return writeFull(fd, buf.data(), buf.size()) ==
           static_cast<ssize_t>(buf.size());
}

FrameRead
frameReadFd(int fd, Frame &frame, int timeout_ms, FrameAccept accept,
            uint64_t max_payload, const char *who)
{
    bool infinite = timeout_ms < 0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(infinite ? 0 : timeout_ms);

    uint8_t header[kFrameHeaderBytes];
    switch (readTimed(fd, header, sizeof(header), infinite, deadline,
                      /*eof_ok=*/true, who)) {
    case TimedRead::Eof:
        return FrameRead::Eof;
    case TimedRead::Timeout:
        return FrameRead::Timeout;
    case TimedRead::Ok:
        break;
    }

    const uint8_t *p = header;
    const uint8_t *end = header + sizeof(header);
    frame.fourcc = frameGetU32(p, end);
    frame.arg = frameGetU32(p, end);
    uint64_t len = frameGetU64(p, end);
    uint32_t crc = frameGetU32(p, end);

    if (accept && !accept(frame.fourcc))
        throw TraceError(std::string(who) + ": unknown frame fourcc " +
                         frameFourccName(frame.fourcc) +
                         " (corrupt or misaligned stream)");
    if (len > max_payload)
        throw TraceError(std::string(who) + ": frame payload length " +
                         std::to_string(len) + " exceeds the " +
                         std::to_string(max_payload) +
                         "-byte cap (corrupt length field)");

    frame.payload.resize(len);
    if (len > 0) {
        switch (readTimed(fd, frame.payload.data(), len, infinite,
                          deadline, /*eof_ok=*/false, who)) {
        case TimedRead::Timeout:
            return FrameRead::Timeout;
        default:
            break;
        }
    }
    uint32_t got = frame.payload.empty()
                       ? frameCrc32(nullptr, 0)
                       : frameCrc32(frame.payload.data(),
                                    frame.payload.size());
    if (got != crc)
        throw TraceError(std::string(who) +
                         ": frame payload CRC mismatch (stored 0x" +
                         std::to_string(crc) + ", computed 0x" +
                         std::to_string(got) + ")");
    return FrameRead::Ok;
}

FrameParse
frameParse(const uint8_t *base, uint64_t size, uint64_t &off,
           FrameView &out, uint64_t max_payload, std::string *why)
{
    const uint64_t left = size - off;
    if (left < kFrameHeaderBytes) {
        if (why)
            *why = "torn frame header at offset " + std::to_string(off);
        return FrameParse::Truncated;
    }
    const uint8_t *p = base + off;
    const uint8_t *hend = p + kFrameHeaderBytes;
    out.fourcc = frameGetU32(p, hend);
    out.arg = frameGetU32(p, hend);
    out.len = frameGetU64(p, hend);
    uint32_t crc = frameGetU32(p, hend);
    if (out.len > max_payload) {
        if (why)
            *why = "frame length " + std::to_string(out.len) +
                   " exceeds the " + std::to_string(max_payload) +
                   "-byte cap at offset " + std::to_string(off);
        return FrameParse::Corrupt;
    }
    if (left - kFrameHeaderBytes < out.len) {
        if (why)
            *why = "torn frame payload at offset " + std::to_string(off);
        return FrameParse::Truncated;
    }
    out.payload = base + off + kFrameHeaderBytes;
    uint32_t got = out.len == 0
                       ? frameCrc32(nullptr, 0)
                       : frameCrc32(out.payload,
                                    static_cast<size_t>(out.len));
    if (got != crc) {
        if (why)
            *why = "frame payload CRC mismatch at offset " +
                   std::to_string(off);
        return FrameParse::Corrupt;
    }
    off += kFrameHeaderBytes + out.len;
    return FrameParse::Ok;
}

} // namespace save
