#include "util/simd.h"

#include <cstdlib>
#include <cstring>

#include "isa/bf16.h"
#include "util/logging.h"
#include "util/runtime_options.h"

#if defined(__GNUC__) && defined(__x86_64__)
#define SAVE_SIMD_X86 1
#include <immintrin.h>
#else
#define SAVE_SIMD_X86 0
#endif

namespace save::simd {

namespace {

/** Inverse of expandMask16to32 for the even bits: bit 2i of m becomes
 *  bit i of the result. */
constexpr uint16_t
compressEvenBits(uint32_t m)
{
    uint32_t x = m & 0x55555555u;
    x = (x | (x >> 1)) & 0x33333333u;
    x = (x | (x >> 2)) & 0x0f0f0f0fu;
    x = (x | (x >> 4)) & 0x00ff00ffu;
    x = (x | (x >> 8)) & 0x0000ffffu;
    return static_cast<uint16_t>(x);
}

/* ------------------------------------------------------------------ */
/* Generic backend: the isa/bf16.h scalar helpers, verbatim. This is   */
/* the semantic reference the SIMD backends must match bit-for-bit.    */
/* ------------------------------------------------------------------ */

VecReg
macSkipF32VecGeneric(const VecReg &a, const VecReg &b, const VecReg &c,
                     uint16_t wm)
{
    VecReg r = c;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        if ((wm >> lane) & 1)
            r.setF32(lane,
                     macSkipF32(c.f32(lane), a.f32(lane), b.f32(lane)));
    }
    return r;
}

VecReg
bf16MacSkipVecGeneric(const VecReg &a, const VecReg &b, const VecReg &c,
                      uint32_t ml_mask)
{
    VecReg r = c;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        if (!((ml_mask >> (kMlPerAl * lane)) & 0x3u))
            continue;
        float v = c.f32(lane);
        for (int s = 0; s < kMlPerAl; ++s) {
            int ml = kMlPerAl * lane + s;
            if ((ml_mask >> ml) & 1)
                v = bf16MacSkip(v, a.bf16(ml), b.bf16(ml));
        }
        r.setF32(lane, v);
    }
    return r;
}

uint16_t
elmF32Generic(const VecReg &a, const VecReg &b, uint16_t wm)
{
    uint16_t elm = 0;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        unsigned eff = static_cast<unsigned>(a.f32(lane) != 0.0f) &
                       static_cast<unsigned>(b.f32(lane) != 0.0f);
        elm |= static_cast<uint16_t>(eff << lane);
    }
    return elm & wm;
}

uint32_t
elmMpGeneric(const VecReg &a, const VecReg &b, uint16_t wm)
{
    uint32_t elm = 0;
    for (int ml = 0; ml < kMlLanes; ++ml) {
        if (!((wm >> (ml / kMlPerAl)) & 1))
            continue;
        if (!bf16IsZero(a.bf16(ml)) && !bf16IsZero(b.bf16(ml)))
            elm |= 1u << ml;
    }
    return elm;
}

uint16_t
zeroMaskF32Generic(const VecReg &v)
{
    uint16_t m = 0;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        if (v.f32(lane) == 0.0f)
            m |= static_cast<uint16_t>(1u << lane);
    }
    return m;
}

uint32_t
zeroMaskBf16Generic(const VecReg &v)
{
    uint32_t m = 0;
    for (int ml = 0; ml < kMlLanes; ++ml) {
        if (bf16IsZero(v.bf16(ml)))
            m |= 1u << ml;
    }
    return m;
}

constexpr Ops kGenericOps = {
    macSkipF32VecGeneric, bf16MacSkipVecGeneric, elmF32Generic,
    elmMpGeneric,         zeroMaskF32Generic,    zeroMaskBf16Generic,
};

#if SAVE_SIMD_X86

/* ------------------------------------------------------------------ */
/* AVX2 backend: two 256-bit halves, vector blends. The target         */
/* attribute deliberately omits "fma" so no contraction is possible.   */
/* ------------------------------------------------------------------ */

/** Bits 0..7 of `bits` as full 32-bit lane masks. */
__attribute__((target("avx2"))) inline __m256
laneMask8(uint32_t bits)
{
    const __m256i sel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    __m256i v = _mm256_set1_epi32(static_cast<int>(bits));
    return _mm256_castsi256_ps(
        _mm256_cmpeq_epi32(_mm256_and_si256(v, sel), sel));
}

__attribute__((target("avx2"))) inline __m256
canonNan256()
{
    return _mm256_castsi256_ps(_mm256_set1_epi32(0x7fc00000));
}

__attribute__((target("avx2"))) VecReg
macSkipF32VecAvx2(const VecReg &a, const VecReg &b, const VecReg &c,
                  uint16_t wm)
{
    VecReg out;
    const float *pa = reinterpret_cast<const float *>(a.words());
    const float *pb = reinterpret_cast<const float *>(b.words());
    const float *pc = reinterpret_cast<const float *>(c.words());
    float *po = reinterpret_cast<float *>(out.words());
    for (int h = 0; h < 2; ++h) {
        __m256 va = _mm256_loadu_ps(pa + 8 * h);
        __m256 vb = _mm256_loadu_ps(pb + 8 * h);
        __m256 vc = _mm256_loadu_ps(pc + 8 * h);
        __m256 zero = _mm256_setzero_ps();
        __m256 skip = _mm256_or_ps(_mm256_cmp_ps(va, zero, _CMP_EQ_OQ),
                                   _mm256_cmp_ps(vb, zero, _CMP_EQ_OQ));
        __m256 eff =
            _mm256_andnot_ps(skip, laneMask8((wm >> (8 * h)) & 0xffu));
        __m256 prod = _mm256_mul_ps(va, vb);
        __m256 sum = _mm256_add_ps(vc, prod);
        __m256 nan = _mm256_cmp_ps(sum, sum, _CMP_UNORD_Q);
        sum = _mm256_blendv_ps(sum, canonNan256(), nan);
        _mm256_storeu_ps(po + 8 * h, _mm256_blendv_ps(vc, sum, eff));
    }
    return out;
}

__attribute__((target("avx2"))) VecReg
bf16MacSkipVecAvx2(const VecReg &a, const VecReg &b, const VecReg &c,
                   uint32_t ml_mask)
{
    VecReg out;
    uint16_t m0 = compressEvenBits(ml_mask);
    uint16_t m1 = compressEvenBits(ml_mask >> 1);
    for (int h = 0; h < 2; ++h) {
        __m256i wa = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.words() + 8 * h));
        __m256i wb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.words() + 8 * h));
        __m256 vc = _mm256_loadu_ps(
            reinterpret_cast<const float *>(c.words()) + 8 * h);
        __m256 zero = _mm256_setzero_ps();
        __m256i hi16 = _mm256_set1_epi32(
            static_cast<int>(0xffff0000u));

        // Step 0: even MLs (low word halves), widened exactly by <<16.
        __m256 a0 = _mm256_castsi256_ps(_mm256_slli_epi32(wa, 16));
        __m256 b0 = _mm256_castsi256_ps(_mm256_slli_epi32(wb, 16));
        __m256 skip0 =
            _mm256_or_ps(_mm256_cmp_ps(a0, zero, _CMP_EQ_OQ),
                         _mm256_cmp_ps(b0, zero, _CMP_EQ_OQ));
        __m256 eff0 =
            _mm256_andnot_ps(skip0, laneMask8((m0 >> (8 * h)) & 0xffu));
        __m256 sum0 = _mm256_add_ps(vc, _mm256_mul_ps(a0, b0));
        __m256 nan0 = _mm256_cmp_ps(sum0, sum0, _CMP_UNORD_Q);
        sum0 = _mm256_blendv_ps(sum0, canonNan256(), nan0);
        __m256 r0 = _mm256_blendv_ps(vc, sum0, eff0);

        // Step 1: odd MLs (high halves), widened by masking the lows.
        __m256 a1 = _mm256_castsi256_ps(_mm256_and_si256(wa, hi16));
        __m256 b1 = _mm256_castsi256_ps(_mm256_and_si256(wb, hi16));
        __m256 skip1 =
            _mm256_or_ps(_mm256_cmp_ps(a1, zero, _CMP_EQ_OQ),
                         _mm256_cmp_ps(b1, zero, _CMP_EQ_OQ));
        __m256 eff1 =
            _mm256_andnot_ps(skip1, laneMask8((m1 >> (8 * h)) & 0xffu));
        __m256 sum1 = _mm256_add_ps(r0, _mm256_mul_ps(a1, b1));
        __m256 nan1 = _mm256_cmp_ps(sum1, sum1, _CMP_UNORD_Q);
        sum1 = _mm256_blendv_ps(sum1, canonNan256(), nan1);
        _mm256_storeu_ps(
            reinterpret_cast<float *>(out.words()) + 8 * h,
            _mm256_blendv_ps(r0, sum1, eff1));
    }
    return out;
}

__attribute__((target("avx2"))) uint16_t
elmF32Avx2(const VecReg &a, const VecReg &b, uint16_t wm)
{
    const float *pa = reinterpret_cast<const float *>(a.words());
    const float *pb = reinterpret_cast<const float *>(b.words());
    unsigned res = 0;
    for (int h = 0; h < 2; ++h) {
        __m256 va = _mm256_loadu_ps(pa + 8 * h);
        __m256 vb = _mm256_loadu_ps(pb + 8 * h);
        __m256 zero = _mm256_setzero_ps();
        __m256 nz = _mm256_and_ps(_mm256_cmp_ps(va, zero, _CMP_NEQ_UQ),
                                  _mm256_cmp_ps(vb, zero, _CMP_NEQ_UQ));
        res |= static_cast<unsigned>(_mm256_movemask_ps(nz)) << (8 * h);
    }
    return static_cast<uint16_t>(res) & wm;
}

/** 16-bit-lane signed-zero mask of one 256-bit half (bits 0..15). */
__attribute__((target("avx2"))) inline uint16_t
bf16ZeroHalfAvx2(__m256i w)
{
    __m256i mag = _mm256_and_si256(w, _mm256_set1_epi32(0x7fff7fff));
    __m256i z = _mm256_cmpeq_epi16(mag, _mm256_setzero_si256());
    return compressEvenBits(
        static_cast<uint32_t>(_mm256_movemask_epi8(z)));
}

__attribute__((target("avx2"))) uint32_t
elmMpAvx2(const VecReg &a, const VecReg &b, uint16_t wm)
{
    uint32_t nz = 0;
    for (int h = 0; h < 2; ++h) {
        __m256i wa = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.words() + 8 * h));
        __m256i wb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.words() + 8 * h));
        uint32_t z = static_cast<uint32_t>(bf16ZeroHalfAvx2(wa)) |
                     static_cast<uint32_t>(bf16ZeroHalfAvx2(wb));
        nz |= (~z & 0xffffu) << (16 * h);
    }
    return nz & expandMask16to32(wm);
}

__attribute__((target("avx2"))) uint16_t
zeroMaskF32Avx2(const VecReg &v)
{
    const float *p = reinterpret_cast<const float *>(v.words());
    unsigned res = 0;
    for (int h = 0; h < 2; ++h) {
        __m256 w = _mm256_loadu_ps(p + 8 * h);
        __m256 z = _mm256_cmp_ps(w, _mm256_setzero_ps(), _CMP_EQ_OQ);
        res |= static_cast<unsigned>(_mm256_movemask_ps(z)) << (8 * h);
    }
    return static_cast<uint16_t>(res);
}

__attribute__((target("avx2"))) uint32_t
zeroMaskBf16Avx2(const VecReg &v)
{
    uint32_t res = 0;
    for (int h = 0; h < 2; ++h) {
        __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(v.words() + 8 * h));
        res |= static_cast<uint32_t>(bf16ZeroHalfAvx2(w)) << (16 * h);
    }
    return res;
}

constexpr Ops kAvx2Ops = {
    macSkipF32VecAvx2, bf16MacSkipVecAvx2, elmF32Avx2,
    elmMpAvx2,         zeroMaskF32Avx2,    zeroMaskBf16Avx2,
};

/* ------------------------------------------------------------------ */
/* AVX-512 backend: whole-register ops with native lane masks. Uses    */
/* mul+add (never vfmadd) and emulated VDPBF16PS steps — see simd.h.   */
/* ------------------------------------------------------------------ */

__attribute__((target("avx512f,avx512bw"))) inline __m512
canonNan512()
{
    return _mm512_castsi512_ps(_mm512_set1_epi32(0x7fc00000));
}

__attribute__((target("avx512f,avx512bw"))) VecReg
macSkipF32VecAvx512(const VecReg &a, const VecReg &b, const VecReg &c,
                    uint16_t wm)
{
    __m512 va = _mm512_loadu_ps(a.words());
    __m512 vb = _mm512_loadu_ps(b.words());
    __m512 vc = _mm512_loadu_ps(c.words());
    __m512 zero = _mm512_setzero_ps();
    __mmask16 skip = _mm512_cmp_ps_mask(va, zero, _CMP_EQ_OQ) |
                     _mm512_cmp_ps_mask(vb, zero, _CMP_EQ_OQ);
    __mmask16 eff = wm & static_cast<__mmask16>(~skip);
    __m512 prod = _mm512_mul_ps(va, vb);
    __m512 sum = _mm512_add_ps(vc, prod);
    __mmask16 nan = _mm512_cmp_ps_mask(sum, sum, _CMP_UNORD_Q);
    sum = _mm512_mask_mov_ps(sum, nan, canonNan512());
    VecReg out;
    _mm512_storeu_ps(out.words(), _mm512_mask_mov_ps(vc, eff, sum));
    return out;
}

__attribute__((target("avx512f,avx512bw"))) VecReg
bf16MacSkipVecAvx512(const VecReg &a, const VecReg &b, const VecReg &c,
                     uint32_t ml_mask)
{
    __m512i wa = _mm512_loadu_si512(a.words());
    __m512i wb = _mm512_loadu_si512(b.words());
    __m512 vc = _mm512_loadu_ps(c.words());
    __m512 zero = _mm512_setzero_ps();
    __m512i hi16 = _mm512_set1_epi32(static_cast<int>(0xffff0000u));
    __mmask16 m0 = compressEvenBits(ml_mask);
    __mmask16 m1 = compressEvenBits(ml_mask >> 1);

    __m512 a0 = _mm512_castsi512_ps(_mm512_slli_epi32(wa, 16));
    __m512 b0 = _mm512_castsi512_ps(_mm512_slli_epi32(wb, 16));
    __mmask16 skip0 = _mm512_cmp_ps_mask(a0, zero, _CMP_EQ_OQ) |
                      _mm512_cmp_ps_mask(b0, zero, _CMP_EQ_OQ);
    __mmask16 eff0 = m0 & static_cast<__mmask16>(~skip0);
    __m512 sum0 = _mm512_add_ps(vc, _mm512_mul_ps(a0, b0));
    __mmask16 nan0 = _mm512_cmp_ps_mask(sum0, sum0, _CMP_UNORD_Q);
    sum0 = _mm512_mask_mov_ps(sum0, nan0, canonNan512());
    __m512 r0 = _mm512_mask_mov_ps(vc, eff0, sum0);

    __m512 a1 = _mm512_castsi512_ps(_mm512_and_si512(wa, hi16));
    __m512 b1 = _mm512_castsi512_ps(_mm512_and_si512(wb, hi16));
    __mmask16 skip1 = _mm512_cmp_ps_mask(a1, zero, _CMP_EQ_OQ) |
                      _mm512_cmp_ps_mask(b1, zero, _CMP_EQ_OQ);
    __mmask16 eff1 = m1 & static_cast<__mmask16>(~skip1);
    __m512 sum1 = _mm512_add_ps(r0, _mm512_mul_ps(a1, b1));
    __mmask16 nan1 = _mm512_cmp_ps_mask(sum1, sum1, _CMP_UNORD_Q);
    sum1 = _mm512_mask_mov_ps(sum1, nan1, canonNan512());

    VecReg out;
    _mm512_storeu_ps(out.words(), _mm512_mask_mov_ps(r0, eff1, sum1));
    return out;
}

__attribute__((target("avx512f,avx512bw"))) uint16_t
elmF32Avx512(const VecReg &a, const VecReg &b, uint16_t wm)
{
    __m512 va = _mm512_loadu_ps(a.words());
    __m512 vb = _mm512_loadu_ps(b.words());
    __m512 zero = _mm512_setzero_ps();
    __mmask16 nz = _mm512_cmp_ps_mask(va, zero, _CMP_NEQ_UQ) &
                   _mm512_cmp_ps_mask(vb, zero, _CMP_NEQ_UQ);
    return static_cast<uint16_t>(nz) & wm;
}

__attribute__((target("avx512f,avx512bw"))) inline uint32_t
bf16ZeroMaskAvx512(__m512i w)
{
    __m512i mag = _mm512_and_si512(w, _mm512_set1_epi32(0x7fff7fff));
    return static_cast<uint32_t>(
        _mm512_cmpeq_epi16_mask(mag, _mm512_setzero_si512()));
}

__attribute__((target("avx512f,avx512bw"))) uint32_t
elmMpAvx512(const VecReg &a, const VecReg &b, uint16_t wm)
{
    __m512i wa = _mm512_loadu_si512(a.words());
    __m512i wb = _mm512_loadu_si512(b.words());
    uint32_t z = bf16ZeroMaskAvx512(wa) | bf16ZeroMaskAvx512(wb);
    return ~z & expandMask16to32(wm);
}

__attribute__((target("avx512f,avx512bw"))) uint16_t
zeroMaskF32Avx512(const VecReg &v)
{
    __m512 w = _mm512_loadu_ps(v.words());
    return static_cast<uint16_t>(
        _mm512_cmp_ps_mask(w, _mm512_setzero_ps(), _CMP_EQ_OQ));
}

__attribute__((target("avx512f,avx512bw"))) uint32_t
zeroMaskBf16Avx512(const VecReg &v)
{
    return bf16ZeroMaskAvx512(_mm512_loadu_si512(v.words()));
}

constexpr Ops kAvx512Ops = {
    macSkipF32VecAvx512, bf16MacSkipVecAvx512, elmF32Avx512,
    elmMpAvx512,         zeroMaskF32Avx512,    zeroMaskBf16Avx512,
};

#endif // SAVE_SIMD_X86

const Ops *
tableFor(Backend b)
{
#if SAVE_SIMD_X86
    if (b == Backend::Avx512)
        return &kAvx512Ops;
    if (b == Backend::Avx2)
        return &kAvx2Ops;
#endif
    (void)b;
    return &kGenericOps;
}

Backend
bestSupported()
{
    if (backendSupported(Backend::Avx512))
        return Backend::Avx512;
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    return Backend::Generic;
}

struct State
{
    const Ops *ops;
    Backend backend;
};

State &
state()
{
    static State s = [] {
        Backend b = bestSupported();
        const std::string env_s = RuntimeOptions::fromEnv().simd;
        const char *env = env_s.c_str();
        if (*env) {
            Backend req;
            if (!parseBackend(env, req)) {
                SAVE_WARN("ignoring SAVE_SIMD='", env,
                          "' (expected generic|avx2|avx512); using ",
                          backendName(b));
            } else if (!backendSupported(req)) {
                SAVE_WARN("SAVE_SIMD='", env,
                          "' not supported by this host; using ",
                          backendName(b));
            } else {
                b = req;
            }
        }
        return State{tableFor(b), b};
    }();
    return s;
}

} // namespace

const Ops &
ops()
{
    return *state().ops;
}

Backend
activeBackend()
{
    return state().backend;
}

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Avx512:
        return "avx512";
      case Backend::Avx2:
        return "avx2";
      default:
        return "generic";
    }
}

const char *
backendName()
{
    return backendName(activeBackend());
}

bool
backendSupported(Backend b)
{
    if (b == Backend::Generic)
        return true;
#if SAVE_SIMD_X86
    if (b == Backend::Avx2)
        return __builtin_cpu_supports("avx2");
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw");
#else
    return false;
#endif
}

std::string
hostFeatures()
{
    std::string out;
#if SAVE_SIMD_X86
    struct Feature
    {
        const char *name;
        bool present;
    };
    const Feature feats[] = {
        {"sse4.2", static_cast<bool>(__builtin_cpu_supports("sse4.2"))},
        {"avx", static_cast<bool>(__builtin_cpu_supports("avx"))},
        {"avx2", static_cast<bool>(__builtin_cpu_supports("avx2"))},
        {"fma", static_cast<bool>(__builtin_cpu_supports("fma"))},
        {"avx512f",
         static_cast<bool>(__builtin_cpu_supports("avx512f"))},
        {"avx512bw",
         static_cast<bool>(__builtin_cpu_supports("avx512bw"))},
        {"avx512vl",
         static_cast<bool>(__builtin_cpu_supports("avx512vl"))},
        {"avx512dq",
         static_cast<bool>(__builtin_cpu_supports("avx512dq"))},
        {"avx512bf16",
         static_cast<bool>(__builtin_cpu_supports("avx512bf16"))},
    };
    for (const Feature &f : feats) {
        if (!f.present)
            continue;
        if (!out.empty())
            out += ' ';
        out += f.name;
    }
#else
    out = "non-x86";
#endif
    return out;
}

bool
parseBackend(const char *name, Backend &out)
{
    if (!name)
        return false;
    if (std::strcmp(name, "generic") == 0 ||
        std::strcmp(name, "scalar") == 0) {
        out = Backend::Generic;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        out = Backend::Avx2;
        return true;
    }
    if (std::strcmp(name, "avx512") == 0) {
        out = Backend::Avx512;
        return true;
    }
    return false;
}

bool
forceBackend(Backend b)
{
    if (!backendSupported(b))
        return false;
    State &s = state();
    s.backend = b;
    s.ops = tableFor(b);
    return true;
}

} // namespace save::simd
