/**
 * @file
 * EINTR-safe POSIX I/O helpers.
 *
 * Raw read(2)/write(2) may transfer fewer bytes than asked (signals,
 * pipe buffers) and fail spuriously with EINTR; std::fread/fwrite hide
 * the partial-transfer case but not the interruption semantics of
 * pipes. Every file and pipe transfer in the harness goes through
 * these loops instead: they retry on EINTR, continue after short
 * transfers, and make end-of-file, success, and hard errors
 * distinguishable. Used by the sweep journal, the surface cache, and
 * the out-of-process worker wire codec (src/proc).
 */

#ifndef SAVE_UTIL_POSIX_IO_H
#define SAVE_UTIL_POSIX_IO_H

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

namespace save {

/**
 * Read exactly `n` bytes unless EOF intervenes. Retries EINTR and
 * short reads. Returns the byte count actually read: `n` on success,
 * less on a premature EOF, or -1 with errno set on a hard error.
 */
inline ssize_t
readFull(int fd, void *buf, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t r = ::read(fd, static_cast<char *>(buf) + done,
                           n - done);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (r == 0)
            break; // EOF
        done += static_cast<size_t>(r);
    }
    return static_cast<ssize_t>(done);
}

/**
 * Write exactly `n` bytes. Retries EINTR and short writes. Returns
 * `n` on success or -1 with errno set (EPIPE when the reader is gone
 * and SIGPIPE is ignored).
 */
inline ssize_t
writeFull(int fd, const void *buf, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t r = ::write(fd, static_cast<const char *>(buf) + done,
                            n - done);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        done += static_cast<size_t>(r);
    }
    return static_cast<ssize_t>(n);
}

/**
 * Wait until `fd` is readable. `timeout_ms` < 0 waits forever.
 * Returns 1 when readable (or at EOF/hangup — a read will not block),
 * 0 on timeout, -1 with errno set on a hard error. An EINTR wakeup
 * restarts the poll with the REMAINING budget, not the original one:
 * a signal storm (SIGHUP reloads against a serving daemon) can
 * neither extend the deadline indefinitely nor shave it short.
 */
inline int
pollReadable(int fd, int timeout_ms)
{
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    if (timeout_ms < 0) {
        for (;;) {
            int r = ::poll(&p, 1, -1);
            if (r < 0 && errno == EINTR)
                continue;
            return r < 0 ? -1 : 1;
        }
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    int wait = timeout_ms;
    for (;;) {
        int r = ::poll(&p, 1, wait);
        if (r < 0 && errno == EINTR) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            // A final zero-timeout poll settles "became readable at
            // the deadline" vs "timed out" without blocking again.
            wait = left < 0 ? 0 : static_cast<int>(left);
            continue;
        }
        if (r <= 0)
            return r;
        return 1; // POLLIN, POLLHUP or POLLERR: read() will not block
    }
}

/**
 * Slurp a whole regular file through readFull. Returns false with a
 * human-readable `why` (when non-null) if the file cannot be opened
 * or read; short reads against the initial size (file shrank) are
 * returned as-is.
 */
inline bool
readFileBytes(const std::string &path, std::string &out,
              std::string *why = nullptr)
{
    out.clear();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (why)
            *why = "cannot open " + path + ": " + std::strerror(errno);
        return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        if (why)
            *why = "cannot stat " + path + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    out.resize(static_cast<size_t>(st.st_size));
    ssize_t got = readFull(fd, out.empty() ? nullptr : &out[0],
                           out.size());
    ::close(fd);
    if (got < 0) {
        if (why)
            *why = "cannot read " + path + ": " + std::strerror(errno);
        out.clear();
        return false;
    }
    out.resize(static_cast<size_t>(got));
    return true;
}

/**
 * Write a whole file through writeFull (O_CREAT|O_TRUNC, mode 0644).
 * Returns false with `why` on any failure; the partial file is left
 * for the caller's temp-file/rename protocol to discard.
 */
inline bool
writeFileBytes(const std::string &path, const void *data, size_t n,
               std::string *why = nullptr)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (why)
            *why = "cannot create " + path + ": " + std::strerror(errno);
        return false;
    }
    ssize_t put = writeFull(fd, data, n);
    int close_rc = ::close(fd);
    if (put < 0 || close_rc != 0) {
        if (why)
            *why = "cannot write " + path + ": " + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace save

#endif // SAVE_UTIL_POSIX_IO_H
