/**
 * @file
 * One snapshot of every SAVE_* runtime environment knob.
 *
 * Historically each knob was read by its consumer at some arbitrary
 * point in the process lifetime (`SAVE_THREADS` in the thread pool,
 * `SAVE_ISOLATION` in the estimator constructor, `SAVE_CACHE_DIR` /
 * `SAVE_CACHE_MAX_MB` in the result store, `SAVE_WORKER_BIN` in the
 * worker spawner, `SAVE_JOURNAL` in the bench sweep driver). That is
 * fine for a one-shot bench binary but wrong for a long-lived daemon:
 * two sessions configured differently would have to race on setenv(3),
 * which is undefined behavior in a multithreaded process.
 *
 * RuntimeOptions::fromEnv() performs one fresh, complete read of the
 * environment. Call sites that used to call getenv() now consult a
 * RuntimeOptions value instead:
 *
 *   - one-shot binaries snapshot at startup (or per resolve call,
 *     preserving the historical read-at-call-time semantics),
 *   - SimSession (src/serve/session.h) snapshots once at session
 *     creation and never reads the environment again; the daemon
 *     overrides fields per request by filling them explicitly.
 *
 * Malformed values warn and fall back to the default, matching the
 * historical behavior of each scattered call site.
 */

#ifndef SAVE_UTIL_RUNTIME_OPTIONS_H
#define SAVE_UTIL_RUNTIME_OPTIONS_H

#include <cstdint>
#include <string>

namespace save {

struct RuntimeOptions
{
    /** Worker threads for the estimator pool; 0 = one per hardware
     *  thread. Env: SAVE_THREADS. */
    int threads = 0;

    /** Slice isolation mode: "none", "thread", or "process"; "" picks
     *  the default ("thread"). Env: SAVE_ISOLATION. */
    std::string isolation;

    /** Result-store directory; "" disables the store.
     *  Env: SAVE_CACHE_DIR. */
    std::string cacheDir;

    /** Result-store size cap in MB; 0 = unlimited.
     *  Env: SAVE_CACHE_MAX_MB. */
    int cacheMaxMb = 0;

    /** Sweep journal path; "" = no journal. Env: SAVE_JOURNAL. */
    std::string journalPath;

    /** Explicit save-worker binary; "" = discover next to the current
     *  executable. Env: SAVE_WORKER_BIN. */
    std::string workerBin;

    /** SIMD backend override ("generic", "avx2", "avx512"); "" = best
     *  the host supports. Env: SAVE_SIMD. */
    std::string simd;

    /**
     * Fresh, complete read of the environment. Deliberately NOT a
     * cached singleton: one-shot tools keep their read-at-call-time
     * semantics, and the tests that setenv() then resolve still see
     * the update. Long-lived code must call this once and keep the
     * snapshot.
     */
    static RuntimeOptions fromEnv();

    /** `threads` resolved against the hardware: >= 1 always. */
    int resolveThreads() const;

    /** `isolation` resolved and validated ("" -> "thread"); throws
     *  ConfigError on an unknown mode. */
    std::string resolveIsolation() const;

    /** `cacheMaxMb` as a byte count; 0 = unlimited. */
    uint64_t cacheMaxBytes() const;
};

} // namespace save

#endif // SAVE_UTIL_RUNTIME_OPTIONS_H
