#include "util/error.h"

#include <sstream>

namespace save {

std::string
SimError::Context::toString() const
{
    if (coreId < 0 && cycle < 0 && uopSeq < 0 && configHash == 0)
        return "";
    std::ostringstream os;
    os << " [";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ", ";
        first = false;
    };
    if (coreId >= 0) {
        sep();
        os << "core " << coreId;
    }
    if (cycle >= 0) {
        sep();
        os << "cycle " << cycle;
    }
    if (uopSeq >= 0) {
        sep();
        os << "uop seq " << uopSeq;
    }
    if (configHash != 0) {
        sep();
        os << "config 0x" << std::hex << configHash;
    }
    os << "]";
    return os.str();
}

SimError::SimError(const std::string &what, Context ctx)
    : std::runtime_error(what + ctx.toString()), ctx_(ctx)
{
}

DeadlockError::DeadlockError(const std::string &what,
                             std::string snapshot, Context ctx)
    : SimError(what, ctx), snapshot_(std::move(snapshot))
{
}

AuditError::AuditError(const std::string &what, std::string snapshot,
                       Context ctx)
    : SimError("pipeline invariant violated: " + what, ctx),
      snapshot_(std::move(snapshot))
{
}

WorkerError::WorkerError(Kind kind, const std::string &what,
                         Context ctx)
    : SimError(std::string("worker ") + kindName(kind) + ": " + what,
               ctx),
      kind_(kind)
{
}

const char *
WorkerError::kindName(Kind kind)
{
    switch (kind) {
    case Kind::Crash:
        return "crash";
    case Kind::Timeout:
        return "timeout";
    case Kind::Oom:
        return "oom";
    case Kind::Exit:
        return "exit";
    case Kind::Protocol:
        return "protocol";
    case Kind::Spawn:
        return "spawn";
    }
    return "unknown";
}

CacheError::CacheError(const std::string &what, std::string path,
                       Context ctx)
    : SimError(what + " (" + path + ")", ctx), path_(std::move(path))
{
}

} // namespace save
