/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * Every recovery path in the harness (slice retry, cache-corruption
 * quarantine, watchdog snapshot-and-raise) is dead code unless
 * something actually fails, so this facility makes failures happen on
 * demand, reproducibly:
 *
 *  - Slice faults: a seeded hash selects a fraction of slice keys;
 *    the first `times` simulation attempts of a selected slice throw
 *    TraceError. The selection depends only on (seed, key), never on
 *    scheduling, so a run with injection and max-retries >= times
 *    produces output bit-identical to a fault-free run.
 *  - Cache tampering: after the surface cache atomically writes a
 *    file, truncate it or flip one bit, exercising the corrupt-file
 *    quarantine on the next load.
 *  - Watchdog on demand: force a core's retirement watchdog to fire
 *    at a chosen cycle, exercising the snapshot/DeadlockError path
 *    without constructing a real deadlock.
 *
 * Configuration: programmatic via configure(), or the
 * SAVE_FAULT_INJECT environment variable, a comma-separated key=value
 * list:
 *
 *   SAVE_FAULT_INJECT="slice=0.1,times=1,seed=42"
 *   SAVE_FAULT_INJECT="cache-truncate=1"
 *   SAVE_FAULT_INJECT="watchdog-core=0,watchdog-after=5000"
 *   SAVE_FAULT_INJECT="crash=0.2,hang=0.1,times=1"
 *
 * Keys: slice (probability 0-1), times (failures per selected slice),
 * seed, cache-truncate (probability per save), cache-bitflip
 * (probability per save), watchdog-core (core id, -1 off),
 * watchdog-after (cycle at which the forced watchdog fires).
 *
 * Process-level faults (crash = raise SIGSEGV, abort = std::abort,
 * hang = sleep forever so the parent's deadline fires, oom = a forced
 * std::bad_alloc) exist to test the out-of-process containment layer
 * (src/proc): a slice worker applies them via maybeCrashSlice before
 * simulating. Selection is the same seeded per-slice-key draw as
 * `slice`, but the attempt budget is stateless — the caller passes
 * the attempt number, because the failed-attempt count cannot live in
 * a process that just died. A selected slice misbehaves on attempts
 * 1..times and runs clean from attempt times+1, so an injected run
 * with retries >= times finishes bit-identical to a fault-free run.
 * In-process execution (--isolation=none|thread) refuses these modes
 * with ConfigError — a raised SIGSEGV in-process is not containable.
 */

#ifndef SAVE_UTIL_FAULT_INJECTION_H
#define SAVE_UTIL_FAULT_INJECTION_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace save {

/** What to break, how often, and how hard. All off by default. */
struct FaultPlan
{
    uint64_t seed = 1;
    /** Fraction of slice keys whose simulation throws. */
    double sliceProb = 0.0;
    /** How many attempts of a selected slice fail before succeeding
     *  (1 = fail once, succeed on first retry). */
    int sliceTimes = 1;
    /** Probability that a surface-cache save leaves a truncated file. */
    double cacheTruncateProb = 0.0;
    /** Probability that a surface-cache save leaves a bit-flipped file. */
    double cacheBitflipProb = 0.0;
    /** Core whose watchdog is force-fired (-1 = none). */
    int watchdogCore = -1;
    /** Cycle at which the forced watchdog fires. */
    uint64_t watchdogAfterCycles = 1000;

    /** Process-level faults, applied by slice workers (src/proc) via
     *  maybeCrashSlice. Each is a per-slice-key probability; a
     *  selected slice misbehaves on attempts 1..sliceTimes. */
    double crashProb = 0.0; ///< raise(SIGSEGV)
    double abortProb = 0.0; ///< std::abort()
    double hangProb = 0.0;  ///< sleep until the parent's deadline kill
    double oomProb = 0.0;   ///< throw std::bad_alloc

    /** True when any process-level (worker-only) mode is armed. */
    bool
    anyProcessFaults() const
    {
        return crashProb > 0 || abortProb > 0 || hangProb > 0 ||
               oomProb > 0;
    }

    bool
    any() const
    {
        return sliceProb > 0 || cacheTruncateProb > 0 ||
               cacheBitflipProb > 0 || watchdogCore >= 0 ||
               anyProcessFaults();
    }
};

/** Process-wide fault injector. Thread-safe. */
class FaultInjector
{
  public:
    /** The global instance, initialized once from SAVE_FAULT_INJECT
     *  (malformed specs warn and leave injection off). */
    static FaultInjector &global();

    /** Install a plan and clear per-slice attempt state. */
    void configure(const FaultPlan &plan);

    /** Disable all injection (tests call this in teardown). */
    void reset() { configure(FaultPlan{}); }

    bool enabled() const { return enabled_; }
    const FaultPlan &plan() const { return plan_; }

    /**
     * Throws TraceError iff `key` is selected by (seed, sliceProb)
     * and fewer than sliceTimes attempts for it have already failed.
     * Call once per simulation attempt with a stable per-slice hash.
     */
    void maybeFailSlice(uint64_t key);

    /**
     * Apply any armed process-level fault for `key` on this `attempt`
     * (1-based): raise SIGSEGV, abort, hang, or throw std::bad_alloc.
     * Called by slice worker processes (bench/save_worker.cc) only —
     * never from code that must survive. Stateless on purpose: a
     * selected slice misbehaves iff attempt <= sliceTimes, so the
     * decision survives the death of the process making it.
     */
    void maybeCrashSlice(uint64_t key, int attempt);

    /** Cycle at which core `core` must force-fire its watchdog
     *  (~0ull = never). Cores cache this at construction. */
    uint64_t watchdogFireCycle(int core) const;

    /** Deterministically truncate or bit-flip the file at `path`
     *  (post-rename surface-cache hook); `key` salts the decision so
     *  successive saves differ. */
    void maybeTamperCacheFile(const std::string &path, uint64_t key);

    /** Parse a SAVE_FAULT_INJECT spec. Throws ConfigError on
     *  malformed input. */
    static FaultPlan parsePlan(const std::string &spec);

  private:
    /** Deterministic uniform draw in [0,1) from (seed, site, key). */
    double draw(uint64_t site, uint64_t key) const;

    bool enabled_ = false;
    FaultPlan plan_;
    std::mutex mu_;
    /** Failed-attempt counts per selected slice key. */
    std::unordered_map<uint64_t, int> slice_attempts_;
};

} // namespace save

#endif // SAVE_UTIL_FAULT_INJECTION_H
