#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "util/logging.h"
#include "util/runtime_options.h"

namespace save {

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : defaultThreads();
    queues_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(idle_mu_);
        stop_.store(true, std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    size_t slot = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    {
        std::lock_guard<std::mutex> lk(queues_[slot]->mu);
        queues_[slot]->q.push_back(std::move(fn));
    }
    {
        // Increment under idle_mu_ so a worker checking the predicate
        // can never miss the wakeup (lost-notify race).
        std::lock_guard<std::mutex> lk(idle_mu_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    idle_cv_.notify_one();
}

bool
ThreadPool::tryRunOne(size_t self)
{
    std::function<void()> task;
    size_t n = queues_.size();
    for (size_t k = 0; k < n && !task; ++k) {
        // Own queue first (back = most recently pushed, cache-hot),
        // then steal the oldest task from the other queues in order.
        size_t victim = (self + k) % n;
        std::lock_guard<std::mutex> lk(queues_[victim]->mu);
        if (queues_[victim]->q.empty())
            continue;
        if (victim == self) {
            task = std::move(queues_[victim]->q.back());
            queues_[victim]->q.pop_back();
        } else {
            task = std::move(queues_[victim]->q.front());
            queues_[victim]->q.pop_front();
        }
    }
    if (!task)
        return false;
    pending_.fetch_sub(1, std::memory_order_acquire);
    task();
    return true;
}

void
ThreadPool::workerLoop(size_t id)
{
    for (;;) {
        if (tryRunOne(id))
            continue;
        std::unique_lock<std::mutex> lk(idle_mu_);
        idle_cv_.wait(lk, [this] {
            return stop_.load(std::memory_order_relaxed) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_relaxed) &&
            pending_.load(std::memory_order_acquire) <= 0)
            return;
    }
}

void
ThreadPool::parallelFor(int64_t n,
                        const std::function<void(int64_t)> &body)
{
    if (n <= 0)
        return;

    struct Loop
    {
        std::atomic<int64_t> next{0};
        std::atomic<int64_t> done{0};
        int64_t total;
        std::mutex mu;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto loop = std::make_shared<Loop>();
    loop->total = n;

    auto drain = [loop, &body] {
        int64_t i;
        while ((i = loop->next.fetch_add(1, std::memory_order_relaxed)) <
               loop->total) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(loop->mu);
                if (!loop->error)
                    loop->error = std::current_exception();
            }
            if (loop->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                loop->total) {
                std::lock_guard<std::mutex> lk(loop->mu);
                loop->cv.notify_all();
            }
        }
    };

    // One helper task per worker; each loops over the shared index
    // counter, so helpers that start late (or never) cost nothing.
    int64_t helpers =
        std::min<int64_t>(static_cast<int64_t>(size()), n - 1);
    for (int64_t h = 0; h < helpers; ++h)
        submit(drain);

    drain(); // the caller participates — nested calls cannot deadlock

    std::unique_lock<std::mutex> lk(loop->mu);
    loop->cv.wait(lk, [&] {
        return loop->done.load(std::memory_order_acquire) == loop->total;
    });
    if (loop->error)
        std::rethrow_exception(loop->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreads());
    return pool;
}

int
ThreadPool::defaultThreads()
{
    return RuntimeOptions::fromEnv().resolveThreads();
}

} // namespace save
