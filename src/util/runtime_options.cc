#include "util/runtime_options.h"

#include <cstdlib>
#include <thread>

#include "util/error.h"
#include "util/logging.h"

namespace save {

namespace {

std::string
envStr(const char *name)
{
    const char *v = std::getenv(name);
    return v ? v : "";
}

/** Positive-integer knob: malformed or non-positive values warn and
 *  yield `fallback`, matching the historical per-site behavior. */
int
envPosInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    long n = std::strtol(v, &end, 10);
    if (end && *end == '\0' && n > 0 && n <= INT32_MAX)
        return static_cast<int>(n);
    SAVE_WARN("ignoring bad ", name, " value '", v,
              "' (expects a positive integer)");
    return fallback;
}

} // namespace

RuntimeOptions
RuntimeOptions::fromEnv()
{
    RuntimeOptions o;
    o.threads = envPosInt("SAVE_THREADS", 0);
    o.isolation = envStr("SAVE_ISOLATION");
    o.cacheDir = envStr("SAVE_CACHE_DIR");
    o.cacheMaxMb = envPosInt("SAVE_CACHE_MAX_MB", 0);
    o.journalPath = envStr("SAVE_JOURNAL");
    o.workerBin = envStr("SAVE_WORKER_BIN");
    o.simd = envStr("SAVE_SIMD");
    return o;
}

int
RuntimeOptions::resolveThreads() const
{
    if (threads >= 1)
        return threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::string
RuntimeOptions::resolveIsolation() const
{
    std::string mode = isolation.empty() ? "thread" : isolation;
    if (mode != "none" && mode != "thread" && mode != "process")
        throw ConfigError("isolation mode must be none, thread, or "
                          "process (got '" + mode + "')");
    return mode;
}

uint64_t
RuntimeOptions::cacheMaxBytes() const
{
    return cacheMaxMb > 0 ? static_cast<uint64_t>(cacheMaxMb) << 20 : 0;
}

} // namespace save
