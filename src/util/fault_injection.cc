#include "util/fault_injection.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <new>

#include "util/error.h"
#include "util/logging.h"

namespace save {

namespace {

/** SplitMix64: full-avalanche mix so nearby keys draw independently. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
parseDouble(const std::string &key, const std::string &val)
{
    errno = 0;
    char *end = nullptr;
    double d = std::strtod(val.c_str(), &end);
    if (errno != 0 || end == val.c_str() || *end != '\0')
        throw ConfigError("fault-injection key '" + key +
                          "' expects a number, got '" + val + "'");
    return d;
}

int64_t
parseInt(const std::string &key, const std::string &val)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(val.c_str(), &end, 10);
    if (errno != 0 || end == val.c_str() || *end != '\0')
        throw ConfigError("fault-injection key '" + key +
                          "' expects an integer, got '" + val + "'");
    return v;
}

} // namespace

FaultPlan
FaultInjector::parsePlan(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos)
            throw ConfigError("fault-injection item '" + item +
                              "' is not key=value");
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (key == "slice") {
            plan.sliceProb = parseDouble(key, val);
        } else if (key == "times") {
            plan.sliceTimes = static_cast<int>(parseInt(key, val));
        } else if (key == "seed") {
            plan.seed = static_cast<uint64_t>(parseInt(key, val));
        } else if (key == "cache-truncate") {
            plan.cacheTruncateProb = parseDouble(key, val);
        } else if (key == "cache-bitflip") {
            plan.cacheBitflipProb = parseDouble(key, val);
        } else if (key == "crash") {
            plan.crashProb = parseDouble(key, val);
        } else if (key == "abort") {
            plan.abortProb = parseDouble(key, val);
        } else if (key == "hang") {
            plan.hangProb = parseDouble(key, val);
        } else if (key == "oom") {
            plan.oomProb = parseDouble(key, val);
        } else if (key == "watchdog-core") {
            plan.watchdogCore = static_cast<int>(parseInt(key, val));
        } else if (key == "watchdog-after") {
            plan.watchdogAfterCycles =
                static_cast<uint64_t>(parseInt(key, val));
        } else {
            throw ConfigError("unknown fault-injection key '" + key +
                              "'");
        }
    }
    if (plan.sliceProb < 0 || plan.sliceProb > 1 ||
        plan.cacheTruncateProb < 0 || plan.cacheTruncateProb > 1 ||
        plan.cacheBitflipProb < 0 || plan.cacheBitflipProb > 1 ||
        plan.crashProb < 0 || plan.crashProb > 1 ||
        plan.abortProb < 0 || plan.abortProb > 1 ||
        plan.hangProb < 0 || plan.hangProb > 1 || plan.oomProb < 0 ||
        plan.oomProb > 1)
        throw ConfigError(
            "fault-injection probabilities must be in [0,1]");
    if (plan.sliceTimes < 1)
        throw ConfigError("fault-injection 'times' must be >= 1 (got " +
                          std::to_string(plan.sliceTimes) + ")");
    return plan;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector *inj = [] {
        auto *p = new FaultInjector;
        const char *env = std::getenv("SAVE_FAULT_INJECT");
        if (env && *env) {
            try {
                p->configure(parsePlan(env));
                SAVE_WARN("fault injection active: SAVE_FAULT_INJECT=",
                          env);
            } catch (const ConfigError &e) {
                SAVE_WARN("ignoring SAVE_FAULT_INJECT: ", e.what());
            }
        }
        return p;
    }();
    return *inj;
}

void
FaultInjector::configure(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> lk(mu_);
    plan_ = plan;
    enabled_ = plan.any();
    slice_attempts_.clear();
}

double
FaultInjector::draw(uint64_t site, uint64_t key) const
{
    uint64_t h = mix64(plan_.seed ^ mix64(site * 0x517cc1b727220a95ull ^
                                          key));
    // 53 high bits -> uniform double in [0,1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
FaultInjector::maybeFailSlice(uint64_t key)
{
    if (!enabled_ || plan_.sliceProb <= 0)
        return;
    if (draw(1, key) >= plan_.sliceProb)
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        int &failed = slice_attempts_[key];
        if (failed >= plan_.sliceTimes)
            return; // this slice has failed its quota; let it succeed
        ++failed;
    }
    throw TraceError("injected slice fault (key 0x" +
                     [](uint64_t k) {
                         char buf[32];
                         std::snprintf(buf, sizeof(buf), "%llx",
                                       static_cast<unsigned long long>(k));
                         return std::string(buf);
                     }(key) +
                     ")");
}

void
FaultInjector::maybeCrashSlice(uint64_t key, int attempt)
{
    if (!enabled_ || !plan_.anyProcessFaults())
        return;
    if (attempt > plan_.sliceTimes)
        return; // past the per-slice misbehavior budget: run clean

    if (plan_.crashProb > 0 && draw(4, key) < plan_.crashProb) {
        SAVE_WARN("fault injection: raising SIGSEGV for slice key 0x",
                  std::hex, key, std::dec, " attempt ", attempt);
        ::raise(SIGSEGV);
    }
    if (plan_.abortProb > 0 && draw(5, key) < plan_.abortProb) {
        SAVE_WARN("fault injection: aborting for slice key 0x",
                  std::hex, key, std::dec, " attempt ", attempt);
        std::abort();
    }
    if (plan_.hangProb > 0 && draw(6, key) < plan_.hangProb) {
        SAVE_WARN("fault injection: hanging on slice key 0x", std::hex,
                  key, std::dec, " attempt ", attempt,
                  " (waiting for the deadline kill)");
        for (;;) {
            struct timespec ts = {0, 50 * 1000 * 1000};
            ::nanosleep(&ts, nullptr);
        }
    }
    if (plan_.oomProb > 0 && draw(7, key) < plan_.oomProb) {
        SAVE_WARN("fault injection: forcing bad_alloc for slice key 0x",
                  std::hex, key, std::dec, " attempt ", attempt);
        throw std::bad_alloc();
    }
}

uint64_t
FaultInjector::watchdogFireCycle(int core) const
{
    if (!enabled_ || plan_.watchdogCore != core)
        return ~0ull;
    return plan_.watchdogAfterCycles;
}

void
FaultInjector::maybeTamperCacheFile(const std::string &path,
                                    uint64_t key)
{
    if (!enabled_ ||
        (plan_.cacheTruncateProb <= 0 && plan_.cacheBitflipProb <= 0))
        return;

    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    if (ec || size == 0)
        return;

    if (plan_.cacheTruncateProb > 0 &&
        draw(2, key) < plan_.cacheTruncateProb) {
        // Cut the file roughly in half: models a SIGKILL mid-write.
        std::filesystem::resize_file(path, size / 2, ec);
        SAVE_WARN("fault injection: truncated cache file ", path,
                  " to ", size / 2, " bytes");
        return;
    }
    if (plan_.cacheBitflipProb > 0 &&
        draw(3, key) < plan_.cacheBitflipProb) {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        if (!f)
            return;
        // Flip within the header (magic/version/hash): the surface
        // format carries no per-record checksum, so only header damage
        // is guaranteed to be *detected* — the point of the exercise.
        uint64_t span = size < 20 ? size : 20;
        uint64_t off = mix64(plan_.seed ^ key) % span;
        f.seekg(static_cast<std::streamoff>(off));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x10);
        f.seekp(static_cast<std::streamoff>(off));
        f.write(&byte, 1);
        SAVE_WARN("fault injection: flipped a bit at offset ", off,
                  " of ", path);
    }
}

} // namespace save
