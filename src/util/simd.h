/**
 * @file
 * Runtime-dispatched host-SIMD backends for the simulator's functional
 * lane math. Three backends — generic scalar, AVX2, AVX-512 — implement
 * one table of vector primitives; the best one the host supports is
 * selected once via CPUID, overridable with SAVE_SIMD=generic|avx2|
 * avx512. Every backend is bit-exact with the scalar helpers in
 * isa/bf16.h, which define the FP contract:
 *
 *  - zero-skip MAC: a (signed-)zero multiplicand leaves the
 *    accumulator bit-identical (NaN payloads pass through untouched);
 *  - effectual lanes compute prod = a*b and acc + prod as two separate
 *    IEEE-754 single-precision roundings (-ffp-contract=off semantics:
 *    the SIMD backends use mul+add, never a fused FMA);
 *  - a *computed* NaN result collapses to the canonical quiet NaN
 *    0x7fc00000;
 *  - BF16 lanes widen exactly (<<16) and accumulate in FP32.
 *
 * Deliberately NOT used: the native AVX512-BF16 VDPBF16PS instruction.
 * It contracts the two products into one rounding (and flushes
 * denormal inputs), which is not bit-compatible with the simulator's
 * defined sequential round-to-nearest accumulation — the AVX-512
 * backend instead emulates the two MAC steps with mul+add, preserving
 * bit-exactness. Cross-backend bit-identity is enforced by
 * tests/test_simd and the differential fuzzer.
 */

#ifndef SAVE_UTIL_SIMD_H
#define SAVE_UTIL_SIMD_H

#include <cstdint>
#include <string>

#include "isa/vec.h"

namespace save::simd {

enum class Backend { Generic = 0, Avx2 = 1, Avx512 = 2 };

/** One backend's vector primitives. All operate on whole VecRegs and
 *  reproduce the isa/bf16.h scalar helpers lane-for-lane. */
struct Ops
{
    /** Per-lane macSkipF32(c, a, b) for lanes set in wm; other lanes
     *  keep c bit-exactly. */
    VecReg (*macSkipF32Vec)(const VecReg &a, const VecReg &b,
                            const VecReg &c, uint16_t wm);

    /**
     * Per-AL mixed-precision MAC: for each accumulator lane, apply
     * bf16MacSkip for its even ML then its odd ML (sequential FP32
     * roundings, VDPBF16PS program order), restricted to the MLs set
     * in ml_mask. ALs with no ML selected keep c bit-exactly.
     */
    VecReg (*bf16MacSkipVec)(const VecReg &a, const VecReg &b,
                             const VecReg &c, uint32_t ml_mask);

    /** Effectual-lane mask: bit i set iff a.f32(i) != 0 && b.f32(i)
     *  != 0 (NaN counts as nonzero), ANDed with wm. */
    uint16_t (*elmF32)(const VecReg &a, const VecReg &b, uint16_t wm);

    /** Mixed-precision ELM: bit ml set iff neither bf16 multiplicand
     *  is a signed zero and the AL's wm bit is set. */
    uint32_t (*elmMp)(const VecReg &a, const VecReg &b, uint16_t wm);

    /** Bit i set iff FP32 lane i of v is a (signed) zero. */
    uint16_t (*zeroMaskF32)(const VecReg &v);

    /** Bit ml set iff BF16 lane ml of v is a (signed) zero. */
    uint32_t (*zeroMaskBf16)(const VecReg &v);
};

/** The active backend's primitive table (resolved once: CPUID best,
 *  overridden by SAVE_SIMD if set). */
const Ops &ops();

Backend activeBackend();
const char *backendName(Backend b);
/** Name of the active backend ("generic" | "avx2" | "avx512"). */
const char *backendName();

/** True if the host can execute the given backend. */
bool backendSupported(Backend b);

/** Space-separated host CPUID SIMD feature list (reporting only). */
std::string hostFeatures();

/**
 * Force a specific backend (tests, bench variants). Returns false and
 * leaves the selection unchanged if the host does not support it. Not
 * thread-safe: call only while no simulation is running.
 */
bool forceBackend(Backend b);

/** Parse a SAVE_SIMD-style name; returns false on unknown names. */
bool parseBackend(const char *name, Backend &out);

/** Duplicate each of 16 mask bits into an adjacent pair: bit i of m
 *  sets bits 2i and 2i+1 (AL write mask -> ML mask). */
constexpr uint32_t
expandMask16to32(uint16_t m)
{
    uint32_t x = m;
    x = (x | (x << 8)) & 0x00ff00ffu;
    x = (x | (x << 4)) & 0x0f0f0f0fu;
    x = (x | (x << 2)) & 0x33333333u;
    x = (x | (x << 1)) & 0x55555555u;
    return x | (x << 1);
}

} // namespace save::simd

#endif // SAVE_UTIL_SIMD_H
