/**
 * @file
 * Deterministic random-number helpers.
 *
 * All stochastic inputs in the library (sparsity placement, synthetic
 * data) flow through Rng so experiments are reproducible from a seed.
 */

#ifndef SAVE_UTIL_RANDOM_H
#define SAVE_UTIL_RANDOM_H

#include <cstdint>
#include <random>

namespace save {

/** Thin wrapper over a 64-bit Mersenne engine with convenience draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5a5eull) : engine_(seed) {}

    /** Uniform in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform integer in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
    }

    /** Bernoulli draw: true with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Non-zero FP32 value with magnitude in [0.5, 2), random sign. */
    float
    nonZeroValue()
    {
        float mag = 0.5f + 1.5f * static_cast<float>(uniform());
        return chance(0.5) ? mag : -mag;
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace save

#endif // SAVE_UTIL_RANDOM_H
