#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace save {

namespace {
bool quiet_flag = false;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}
} // namespace

void
setQuietLogging(bool quiet)
{
    quiet_flag = quiet;
}

bool
quietLogging()
{
    return quiet_flag;
}

namespace detail {

void
log(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (quiet_flag && (level == LogLevel::Inform || level == LogLevel::Warn))
        return;
    std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level), msg.c_str(),
                 file, line);
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace save
