/**
 * @file
 * Append-only sweep journal: crash-safe checkpoint/resume for the
 * bench harnesses.
 *
 * A fig14-19 style sweep is a list of independent points, each
 * expensive to compute. The journal records every completed point
 * (key -> serialized payload) as one flushed line, so an interrupted
 * run — SIGKILL included — resumes by replaying the journal and
 * recomputing only the missing points.
 *
 * Crash-safety comes from the format, not from rename tricks: the
 * file is append-only, each record is a single '\n'-terminated line,
 * and load() ignores an unterminated tail line (the only damage a
 * kill mid-append can cause). Payloads are hex-encoded so records
 * never contain separators. All file I/O goes through the EINTR-safe
 * helpers in util/posix_io.h.
 *
 * File format (text):
 *   SAVEJRNL 1 <16-hex config hash>\n
 *   <key>\t<hex payload>\n ...
 *
 * Duplicate keys are legal and the LAST record wins, both in load()
 * and in record(): re-recording a key with a different payload appends
 * a superseding line. This is what lets a resumed sweep upgrade a
 * journaled failure marker (NaN-poisoned point) to a real value once
 * a later run computes it — with first-wins, a permanently-failed
 * point would stay poisoned in every future resume.
 *
 * The config hash covers everything that affects point values; a
 * mismatch (flags changed between runs) moves the stale journal to
 * <path>.stale and starts fresh — stale results are never replayed
 * into a differently-configured sweep.
 *
 * Last-wins duplicates mean a repeatedly-resumed flaky sweep grows
 * the file without bound (every re-attempt appends, nothing ever
 * rewrites). open() therefore compacts: when the loaded file carries
 * enough superseded records (see compactedAtOpen()), the surviving
 * entries are rewritten to a temp file and renamed over the journal
 * before the append fd opens. The rename is atomic, so a crash
 * mid-compaction leaves either the old file or the new one — and the
 * torn-tail-drop rule still governs whichever survives.
 */

#ifndef SAVE_UTIL_JOURNAL_H
#define SAVE_UTIL_JOURNAL_H

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>

namespace save {

/**
 * Stable id for a sweep's journal: FNV-1a over the bench name and
 * every knob value that shifts point results. Shared by the bench
 * harnesses and the shard coordinator so a distributed sweep can
 * resume a single-host journal (and vice versa) — the hash must be
 * computed in exactly one place for that to stay true.
 */
uint64_t sweepHash(const char *bench,
                   std::initializer_list<int64_t> knobs);

/** Crash-tolerant key->payload journal for sweep checkpointing. */
class SweepJournal
{
  public:
    /** Disabled journal: lookup misses, record is a no-op. */
    SweepJournal() = default;

    /**
     * Open (or create) the journal at `path`. Loads every complete
     * record whose header matches `config_hash`. Throws CacheError if
     * the file cannot be created or appended to.
     */
    SweepJournal(const std::string &path, uint64_t config_hash);

    ~SweepJournal();

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }
    size_t size() const { return entries_.size(); }

    /** True iff `key` has a journaled payload; copies it out when
     *  `payload` is non-null. */
    bool lookup(const std::string &key, std::string *payload = nullptr) const;

    /**
     * Append one completed point and flush. Keys must be non-empty
     * and free of tabs/newlines (throws ConfigError otherwise);
     * payload must be hex (use encode()). Re-recording a key with the
     * same payload is a no-op; a different payload appends a
     * superseding record (last-wins on reload). Thread-safe.
     */
    void record(const std::string &key, const std::string &payload);

    /** Hex-encode a trivially-copyable value for record(). */
    template <typename T>
    static std::string
    encode(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return encodeBytes(reinterpret_cast<const char *>(&v),
                           sizeof(T));
    }

    /** Decode an encode()d payload; false on size/format mismatch. */
    template <typename T>
    static bool
    decode(const std::string &hex, T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return decodeBytes(hex, reinterpret_cast<char *>(&v),
                           sizeof(T));
    }

    static std::string encodeBytes(const char *data, size_t n);
    static bool decodeBytes(const std::string &hex, char *out, size_t n);

    /** Complete records the last load() parsed, duplicates included. */
    size_t loadedRecords() const { return loadedRecords_; }
    /** True when open() rewrote the file to drop superseded records. */
    bool compactedAtOpen() const { return compacted_; }

  private:
    void load(uint64_t config_hash);
    void maybeCompact(uint64_t config_hash);
    void appendLine(const std::string &line);

    std::string path_;
    std::map<std::string, std::string> entries_;
    /** O_APPEND fd for record(); -1 when disabled. */
    int fd_ = -1;
    size_t loadedRecords_ = 0;
    bool compacted_ = false;
    mutable std::mutex mu_;
};

} // namespace save

#endif // SAVE_UTIL_JOURNAL_H
