/**
 * @file
 * Small bit-manipulation helpers used by masks and cache indexing.
 */

#ifndef SAVE_UTIL_BITUTIL_H
#define SAVE_UTIL_BITUTIL_H

#include <bit>
#include <cstdint>

namespace save {

/** Number of set bits. */
inline int
popcount(uint32_t x)
{
    return std::popcount(x);
}

/** True if x is a power of two (and non-zero). */
inline bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
inline int
floorLog2(uint64_t x)
{
    return 63 - std::countl_zero(x);
}

/** Ceiling of log2; bits needed to index x entries. */
inline int
ceilLog2(uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** Index of lowest set bit, -1 when mask is zero. */
inline int
lowestSetBit(uint32_t mask)
{
    return mask == 0 ? -1 : std::countr_zero(mask);
}

/** Ceiling integer division. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

} // namespace save

#endif // SAVE_UTIL_BITUTIL_H
