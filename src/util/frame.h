/**
 * @file
 * One CRC-framed record codec for every framed byte stream in the
 * harness.
 *
 * Four subsystems ship length-prefixed, CRC-protected records with the
 * same layout (historically three hand-rolled copies):
 *
 *   - `.savtrc` trace chunks (src/trace/trace_format.h)
 *   - the parent <-> worker pipe protocol (src/proc/wire_codec.h)
 *   - CAS result-store records (src/cache/result_store.h)
 *   - the save-serve RPC protocol (src/serve/protocol.h)
 *
 * A frame is
 *
 *   u32 fourcc, u32 arg, u64 payloadBytes, u32 crc32(payload), payload
 *
 * all little-endian, with CRC-32 (IEEE 802.3, reflected) over every
 * payload byte. `arg` is caller-defined (core id, record version,
 * attempt number, request id). This header provides the primitives:
 *
 *   - little-endian scalar put/get (the get side throws TraceError on
 *     a short buffer, never reads past `end`),
 *   - frameAppend / frameAppendHeader for writers that buffer,
 *   - frameWriteFd: one writeFull(2) of a whole frame,
 *   - frameReadFd: deadline-bounded frame read from a pipe/socket
 *     (poll + EINTR-safe), distinguishing clean EOF / timeout from
 *     corruption (which throws TraceError),
 *   - frameParse: zero-copy parse for mmap'd files, distinguishing a
 *     torn tail (a concurrent append still landing) from corruption.
 *
 * Policy stays with the caller: which fourccs are legal, how `arg` is
 * interpreted, and what to do about corruption (throw, quarantine,
 * drop the connection).
 */

#ifndef SAVE_UTIL_FRAME_H
#define SAVE_UTIL_FRAME_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace save {

/** Frame header size: fourcc + arg + payload length + payload CRC. */
constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 4;

constexpr uint32_t
frameFourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

/** "ABCD" rendering of a fourcc for error messages (non-printable
 *  bytes become '.'), plus the hex value. */
std::string frameFourccName(uint32_t fourcc);

/** CRC-32 (IEEE 802.3, reflected) of n bytes, seedable for chaining. */
uint32_t frameCrc32(const uint8_t *p, size_t n, uint32_t seed = 0);

/** Little-endian scalar append helpers. */
void framePutU32(std::vector<uint8_t> &out, uint32_t v);
void framePutU64(std::vector<uint8_t> &out, uint64_t v);
void framePutF64(std::vector<uint8_t> &out, double v);

/** Little-endian scalar parse helpers; advance p. Throw TraceError on
 *  a short buffer. */
uint32_t frameGetU32(const uint8_t *&p, const uint8_t *end);
uint64_t frameGetU64(const uint8_t *&p, const uint8_t *end);
double frameGetF64(const uint8_t *&p, const uint8_t *end);

/** Raw byte append. */
inline void
framePutBytes(std::vector<uint8_t> &out, const void *data, size_t n)
{
    if (n == 0)
        return;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    out.insert(out.end(), p, p + n);
}

/** Length-prefixed string append/parse. The get side throws TraceError
 *  when the length runs past the payload. */
void framePutString(std::vector<uint8_t> &out, const std::string &s);
std::string frameGetString(const uint8_t *&p, const uint8_t *end);

/** [internal] Throws the struct-shaped TraceError for frameGetStruct. */
[[noreturn]] void frameStructSizeError(const char *name, uint32_t got,
                                       size_t expected);
[[noreturn]] void frameStructShortError(const char *name);

/**
 * Raw bytes of a trivially-copyable struct, guarded by a size field:
 * peers built from different source trees are rejected cleanly instead
 * of misinterpreting each other's layouts.
 */
template <typename T>
void
framePutStruct(std::vector<uint8_t> &out, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "framed structs travel as raw bytes");
    framePutU32(out, static_cast<uint32_t>(sizeof(T)));
    framePutBytes(out, &v, sizeof(T));
}

template <typename T>
T
frameGetStruct(const uint8_t *&p, const uint8_t *end, const char *name)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t n = frameGetU32(p, end);
    if (n != sizeof(T))
        frameStructSizeError(name, n, sizeof(T));
    if (static_cast<size_t>(end - p) < n)
        frameStructShortError(name);
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += n;
    return v;
}

/** One decoded (or to-be-encoded) frame with an owned payload. */
struct Frame
{
    uint32_t fourcc = 0;
    uint32_t arg = 0;
    std::vector<uint8_t> payload;
};

/** Append just the 20-byte header for `n` payload bytes (the caller
 *  writes the payload itself, e.g. straight from an existing buffer). */
void frameAppendHeader(std::vector<uint8_t> &out, uint32_t fourcc,
                       uint32_t arg, const uint8_t *payload, size_t n);

/** Append a complete frame (header + payload copy). */
void frameAppend(std::vector<uint8_t> &out, uint32_t fourcc, uint32_t arg,
                 const uint8_t *payload, size_t n);

inline void
frameAppend(std::vector<uint8_t> &out, uint32_t fourcc, uint32_t arg,
            const std::vector<uint8_t> &payload)
{
    frameAppend(out, fourcc, arg, payload.data(), payload.size());
}

/** A complete frame as one contiguous buffer. */
std::vector<uint8_t> frameEncode(uint32_t fourcc, uint32_t arg,
                                 const std::vector<uint8_t> &payload);

/**
 * Write one frame with a single writeFull(2) — safe for O_APPEND
 * record files and for pipes/sockets shared with a concurrent writer.
 * Returns false with errno preserved on any write failure (EPIPE when
 * the peer is dead and SIGPIPE is ignored).
 */
bool frameWriteFd(int fd, uint32_t fourcc, uint32_t arg,
                  const std::vector<uint8_t> &payload);

/** Outcome of a deadline-bounded frame read. */
enum class FrameRead
{
    Ok,
    /** Clean EOF at a frame boundary (peer closed the stream). */
    Eof,
    /** Deadline expired with no complete frame. */
    Timeout,
};

/**
 * Fourcc acceptance predicate for frameReadFd, checked before the
 * payload is allocated so a corrupt header cannot trigger a bogus
 * multi-megabyte read.
 */
using FrameAccept = bool (*)(uint32_t fourcc);

/**
 * Read one frame within `timeout_ms` (< 0 waits forever). Returns
 * Ok/Eof/Timeout; throws TraceError on corruption: a fourcc `accept`
 * rejects, payload length past `max_payload`, CRC mismatch, EOF inside
 * a frame, or a hard read error. `who` labels error messages
 * ("wire", "serve", ...).
 */
FrameRead frameReadFd(int fd, Frame &frame, int timeout_ms,
                      FrameAccept accept, uint64_t max_payload,
                      const char *who);

/** Zero-copy view of one frame inside a mapped file. */
struct FrameView
{
    uint32_t fourcc = 0;
    uint32_t arg = 0;
    const uint8_t *payload = nullptr;
    uint64_t len = 0;
};

/** Outcome of an in-memory frame parse. */
enum class FrameParse
{
    Ok,
    /** The remaining bytes cannot hold a whole frame: either a torn
     *  tail or a concurrent append still landing — caller's call. */
    Truncated,
    /** Length cap exceeded or payload CRC mismatch; `why` explains. */
    Corrupt,
};

/**
 * Parse the frame at `base + off`. On Ok fills `out` (payload points
 * into the mapped bytes) and advances `off` past the frame. Fourcc
 * and `arg` validation stay with the caller — unknown kinds may be
 * legal (trace forward-compat) or corruption (CAS shards).
 */
FrameParse frameParse(const uint8_t *base, uint64_t size, uint64_t &off,
                      FrameView &out, uint64_t max_payload,
                      std::string *why);

} // namespace save

#endif // SAVE_UTIL_FRAME_H
