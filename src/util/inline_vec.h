/**
 * @file
 * Fixed-capacity inline vector: a std::vector-shaped container whose
 * storage lives inside the object, for per-cycle simulator structures
 * (VPU in-flight lane writes, scheduler temps) that previously
 * heap-allocated every cycle. Capacity overflow is a simulator bug
 * (the bound is architectural, e.g. kVecLanes), so it asserts rather
 * than grows.
 */

#ifndef SAVE_UTIL_INLINE_VEC_H
#define SAVE_UTIL_INLINE_VEC_H

#include <array>
#include <cstddef>

#include "util/logging.h"

namespace save {

template <typename T, size_t N>
class InlineVec
{
  public:
    using value_type = T;

    InlineVec() = default;

    InlineVec(std::initializer_list<T> init)
    {
        for (const T &v : init)
            push_back(v);
    }

    void
    push_back(const T &v)
    {
        SAVE_ASSERT(n_ < N, "InlineVec overflow (capacity ", N, ")");
        buf_[n_++] = v;
    }

    /** Drop elements matching pred, preserving order. */
    template <typename Pred>
    void
    eraseIf(Pred pred)
    {
        size_t w = 0;
        for (size_t r = 0; r < n_; ++r) {
            if (!pred(buf_[r])) {
                if (w != r)
                    buf_[w] = buf_[r];
                ++w;
            }
        }
        n_ = w;
    }

    void clear() { n_ = 0; }
    size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    static constexpr size_t capacity() { return N; }

    T *data() { return buf_.data(); }
    const T *data() const { return buf_.data(); }
    T &operator[](size_t i) { return buf_[i]; }
    const T &operator[](size_t i) const { return buf_[i]; }

    T *begin() { return buf_.data(); }
    T *end() { return buf_.data() + n_; }
    const T *begin() const { return buf_.data(); }
    const T *end() const { return buf_.data() + n_; }

  private:
    std::array<T, N> buf_{};
    size_t n_ = 0;
};

} // namespace save

#endif // SAVE_UTIL_INLINE_VEC_H
