/**
 * @file
 * Work-stealing host thread pool for embarrassingly-parallel
 * simulation fan-out (the estimator's slice sweeps and the bench
 * harnesses' sparsity grids).
 *
 * Design: one mutex-guarded deque per worker. A worker pops from the
 * back of its own deque and steals from the front of a victim's, so
 * related tasks stay hot on one worker while idle workers drain the
 * oldest work. `parallelFor` is the main entry point: the calling
 * thread participates in the index loop, which makes nested use from
 * inside a worker deadlock-free and keeps a size-1 pool exactly
 * serial.
 *
 * Determinism: the pool only decides *where* a task runs, never what
 * it computes. Callers that need bit-identical output across thread
 * counts must make each index's work independent and write results
 * into per-index slots (as the estimator does).
 */

#ifndef SAVE_UTIL_THREAD_POOL_H
#define SAVE_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace save {

/** A fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /** threads == 0 picks defaultThreads(). threads == 1 still spawns
     *  one worker, but parallelFor degrades to a serial loop on the
     *  calling thread plus that worker. */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /** Enqueue one fire-and-forget task (round-robin across worker
     *  deques; an idle worker may steal it). */
    void submit(std::function<void()> fn);

    /**
     * Run body(0..n-1) across the pool and the calling thread; returns
     * when all n indices completed. The first exception thrown by any
     * index is rethrown on the caller after the loop drains. Safe to
     * call from inside a pool task (the nested caller drains its own
     * indices).
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)> &body);

    /** Process-wide shared pool, lazily built with defaultThreads(). */
    static ThreadPool &global();

    /** SAVE_THREADS env override, else std::thread::hardware_concurrency
     *  (min 1). */
    static int defaultThreads();

  private:
    struct WorkQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> q;
    };

    void workerLoop(size_t id);
    /** Pop from own back, else steal from another queue's front. */
    bool tryRunOne(size_t self);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex idle_mu_;
    std::condition_variable idle_cv_;
    std::atomic<bool> stop_{false};
    std::atomic<uint64_t> next_queue_{0};
    std::atomic<int64_t> pending_{0};
};

} // namespace save

#endif // SAVE_UTIL_THREAD_POOL_H
