/**
 * @file
 * Bfloat-16 conversion and arithmetic helpers.
 *
 * BF16 is the top 16 bits of an IEEE-754 FP32 value: 1 sign bit, 8
 * exponent bits, 7 mantissa bits. It shares FP32's dynamic range
 * (paper SecII-B). Conversion from FP32 rounds to nearest-even, as the
 * AVX512_BF16 VCVTNE2PS2BF16 instruction does. Mixed-precision VFMAs
 * (VDPBF16PS) multiply BF16 inputs exactly (a 7x7-bit product fits in
 * FP32) and accumulate in FP32.
 */

#ifndef SAVE_ISA_BF16_H
#define SAVE_ISA_BF16_H

#include <bit>
#include <cstdint>

namespace save {

/** Raw bit pattern of a BF16 value. */
using Bf16 = uint16_t;

/** Widen BF16 to FP32 exactly (append 16 zero mantissa bits). */
inline float
bf16ToF32(Bf16 v)
{
    return std::bit_cast<float>(static_cast<uint32_t>(v) << 16);
}

/** Narrow FP32 to BF16 with round-to-nearest-even; NaN stays NaN. */
inline Bf16
f32ToBf16(float f)
{
    uint32_t bits = std::bit_cast<uint32_t>(f);
    // Quiet NaNs: force a mantissa bit so the payload survives.
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu))
        return static_cast<Bf16>((bits >> 16) | 0x0040u);
    uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
    return static_cast<Bf16>((bits + rounding) >> 16);
}

/** True if the value is a (positive or negative) zero. */
inline bool
bf16IsZero(Bf16 v)
{
    return (v & 0x7fffu) == 0;
}

/** True if the FP32 bit pattern is a (positive or negative) zero. */
inline bool
f32BitsAreZero(uint32_t word)
{
    return (word & 0x7fffffffu) == 0;
}

/** True if both BF16 halves of a 32-bit word are (signed) zeros. */
inline bool
bf16PairIsZero(uint32_t word)
{
    return (word & 0x7fff7fffu) == 0;
}

/**
 * One multiply-accumulate step of VDPBF16PS: acc + a*b with the BF16
 * inputs widened exactly and the product/sum computed in FP32.
 */
inline float
bf16Mac(float acc, Bf16 a, Bf16 b)
{
    return acc + bf16ToF32(a) * bf16ToF32(b);
}

/**
 * Collapse a computed NaN to the canonical quiet NaN (0x7fc00000).
 * Which input NaN payload an FMA propagates depends on the emitted
 * instruction sequence (mulss+addss keeps the destination operand's
 * payload; the fused vfmadd forms pick by their own operand order), so
 * the same inline helper compiled into two translation units can
 * legally produce different NaN bit patterns from identical inputs.
 * The simulator instead defines every *computed* NaN result to be
 * canonical; a NaN that merely passes through untouched (skipped MAC,
 * masked lane, load/store) keeps its payload bit-exactly.
 */
inline float
canonicalizeNan(float v)
{
    uint32_t bits = std::bit_cast<uint32_t>(v);
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu))
        return std::bit_cast<float>(0x7fc00000u);
    return v;
}

/**
 * Zero-skip MAC semantics (paper SecIII software transparency): a MAC
 * whose either multiplicand is a (signed) zero leaves the accumulator
 * bit-identical, as if the lane had been skipped. This is what SAVE's
 * hardware guarantees, and what the in-order ArchExecutor oracle
 * computes — so *every* pipeline value-compute site must use these
 * helpers rather than a raw FMA. A raw `acc + a*b` diverges on
 * NaN/Inf operands paired with a zero (0*NaN = NaN, not 0) and on
 * signed zeros (-0 + 0 = +0), which matters whenever a scheduling path
 * executes a lane the effectual-lane mask would have skipped (the
 * baseline policy, and the bsSkip=false ablation). The product and sum
 * are written as separate statements (and the library builds with
 * -ffp-contract=off) so every call site rounds identically.
 */
inline float
macSkipF32(float acc, float a, float b)
{
    if (a == 0.0f || b == 0.0f)
        return acc;
    float prod = a * b;
    return canonicalizeNan(acc + prod);
}

/** Zero-skip variant of bf16Mac; see macSkipF32. */
inline float
bf16MacSkip(float acc, Bf16 a, Bf16 b)
{
    if (bf16IsZero(a) || bf16IsZero(b))
        return acc;
    return canonicalizeNan(bf16Mac(acc, a, b));
}

} // namespace save

#endif // SAVE_ISA_BF16_H
