/**
 * @file
 * Micro-op definitions for the simulated vector back-end.
 *
 * The trace feeder supplies a stream of these; the core renames and
 * executes them. The ISA is an AVX-512-shaped subset: FP32 VFMAs,
 * BF16/FP32 mixed-precision VFMAs (VDPBF16PS), explicit broadcasts,
 * vector loads/stores, and a generic single-cycle ALU op used for
 * address arithmetic and loop overhead.
 */

#ifndef SAVE_ISA_UOP_H
#define SAVE_ISA_UOP_H

#include <cstdint>
#include <string>

namespace save {

/** Number of logical (architectural) vector registers, as in AVX-512. */
constexpr int kLogicalVecRegs = 32;
/** Number of logical mask registers (k0-k7). */
constexpr int kLogicalMaskRegs = 8;

/** Micro-op kinds. */
enum class Opcode : uint8_t {
    /** FP32 VFMA: dst = srcC + srcA * srcB, all register operands. */
    VfmaPs,
    /** FP32 VFMA with embedded broadcast: srcA = bcast(mem[addr]). */
    VfmaPsBcast,
    /** Mixed-precision VFMA: FP32 dst accumulates BF16 pair dots. */
    Vdpbf16Ps,
    /** Mixed-precision VFMA with 32-bit embedded broadcast operand. */
    Vdpbf16PsBcast,
    /** Explicit broadcast load: dst = bcast(mem[addr]) (VBROADCASTSS). */
    BroadcastLoad,
    /** Full 64B vector load: dst = mem[addr .. addr+63]. */
    LoadVec,
    /** Full 64B vector store: mem[addr .. addr+63] = srcC. */
    StoreVec,
    /** Generic one-cycle scalar/ALU op with no register semantics. */
    Alu,
    /** Write an immediate into a logical mask register (KMOVW imm). */
    SetMask,
};

/** One micro-operation in the trace. */
struct Uop
{
    Opcode op = Opcode::Alu;

    /** Logical destination vector register, -1 if none. */
    int8_t dst = -1;
    /** Multiplicand A register; -1 when it is the memory operand. */
    int8_t srcA = -1;
    /** Multiplicand B register. */
    int8_t srcB = -1;
    /** Accumulator input register (VFMA) or store data (StoreVec). */
    int8_t srcC = -1;
    /** AVX-512 write-mask register, -1 when unmasked. */
    int8_t wmask = -1;

    /** Memory operand address (broadcast element or line start). */
    uint64_t addr = 0;
    /** Immediate for SetMask. */
    uint16_t maskImm = 0;

    bool
    isVfma() const
    {
        return op == Opcode::VfmaPs || op == Opcode::VfmaPsBcast ||
               op == Opcode::Vdpbf16Ps || op == Opcode::Vdpbf16PsBcast;
    }
    /** True for the mixed-precision (BF16) VFMA forms. */
    bool
    isMixedPrecision() const
    {
        return op == Opcode::Vdpbf16Ps || op == Opcode::Vdpbf16PsBcast;
    }
    /** True when the uop reads memory. */
    bool
    isLoad() const
    {
        return op == Opcode::BroadcastLoad || op == Opcode::LoadVec ||
               hasEmbeddedBroadcast();
    }
    /** True when srcA comes from memory via an embedded broadcast. */
    bool
    hasEmbeddedBroadcast() const
    {
        return op == Opcode::VfmaPsBcast || op == Opcode::Vdpbf16PsBcast;
    }

    std::string toString() const;

    /** Convenience constructors ------------------------------------- */

    static Uop vfma(int dst, int a, int b, int wmask = -1);
    static Uop vfmaBcast(int dst, uint64_t addr, int b, int wmask = -1);
    static Uop vdp(int dst, int a, int b, int wmask = -1);
    static Uop vdpBcast(int dst, uint64_t addr, int b, int wmask = -1);
    static Uop broadcastLoad(int dst, uint64_t addr);
    static Uop loadVec(int dst, uint64_t addr);
    static Uop storeVec(int src, uint64_t addr);
    static Uop alu();
    static Uop setMask(int kreg, uint16_t imm);
};

} // namespace save

#endif // SAVE_ISA_UOP_H
