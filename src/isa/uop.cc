#include "isa/uop.h"

#include <sstream>

namespace save {

std::string
Uop::toString() const
{
    static const char *names[] = {
        "vfmaps", "vfmaps.bcast", "vdpbf16ps", "vdpbf16ps.bcast",
        "vbroadcast", "vload", "vstore", "alu", "kmovw",
    };
    std::ostringstream os;
    os << names[static_cast<int>(op)];
    if (dst >= 0)
        os << " zmm" << int(dst);
    if (srcA >= 0)
        os << ", zmm" << int(srcA);
    else if (isLoad())
        os << ", [0x" << std::hex << addr << std::dec << "]";
    if (srcB >= 0)
        os << ", zmm" << int(srcB);
    if (wmask >= 0)
        os << " {k" << int(wmask) << "}";
    return os.str();
}

Uop
Uop::vfma(int dst, int a, int b, int wmask)
{
    Uop u;
    u.op = Opcode::VfmaPs;
    u.dst = static_cast<int8_t>(dst);
    u.srcA = static_cast<int8_t>(a);
    u.srcB = static_cast<int8_t>(b);
    u.srcC = static_cast<int8_t>(dst);
    u.wmask = static_cast<int8_t>(wmask);
    return u;
}

Uop
Uop::vfmaBcast(int dst, uint64_t addr, int b, int wmask)
{
    Uop u;
    u.op = Opcode::VfmaPsBcast;
    u.dst = static_cast<int8_t>(dst);
    u.srcB = static_cast<int8_t>(b);
    u.srcC = static_cast<int8_t>(dst);
    u.wmask = static_cast<int8_t>(wmask);
    u.addr = addr;
    return u;
}

Uop
Uop::vdp(int dst, int a, int b, int wmask)
{
    Uop u = vfma(dst, a, b, wmask);
    u.op = Opcode::Vdpbf16Ps;
    return u;
}

Uop
Uop::vdpBcast(int dst, uint64_t addr, int b, int wmask)
{
    Uop u = vfmaBcast(dst, addr, b, wmask);
    u.op = Opcode::Vdpbf16PsBcast;
    return u;
}

Uop
Uop::broadcastLoad(int dst, uint64_t addr)
{
    Uop u;
    u.op = Opcode::BroadcastLoad;
    u.dst = static_cast<int8_t>(dst);
    u.addr = addr;
    return u;
}

Uop
Uop::loadVec(int dst, uint64_t addr)
{
    Uop u;
    u.op = Opcode::LoadVec;
    u.dst = static_cast<int8_t>(dst);
    u.addr = addr;
    return u;
}

Uop
Uop::storeVec(int src, uint64_t addr)
{
    Uop u;
    u.op = Opcode::StoreVec;
    u.srcC = static_cast<int8_t>(src);
    u.addr = addr;
    return u;
}

Uop
Uop::alu()
{
    return Uop{};
}

Uop
Uop::setMask(int kreg, uint16_t imm)
{
    Uop u;
    u.op = Opcode::SetMask;
    u.wmask = static_cast<int8_t>(kreg);
    u.maskImm = imm;
    return u;
}

} // namespace save
