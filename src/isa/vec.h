/**
 * @file
 * A 512-bit vector register value with FP32-lane and BF16-lane views.
 *
 * The same 64 bytes back both views: FP32 lane i is 32-bit word i;
 * BF16 multiplicand lane j is the low (j even) or high (j odd) half of
 * word j/2. This mirrors the AVX-512 register layout that VDPBF16PS
 * operates on (two adjacent BF16 lanes form the group feeding one FP32
 * accumulator lane).
 */

#ifndef SAVE_ISA_VEC_H
#define SAVE_ISA_VEC_H

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "isa/bf16.h"

namespace save {

/** FP32 lanes in a 512-bit vector. */
constexpr int kVecLanes = 16;
/** BF16 multiplicand lanes in a 512-bit vector. */
constexpr int kMlLanes = 32;
/** BF16 multiplicand lanes per FP32 accumulator lane. */
constexpr int kMlPerAl = 2;

/** 512-bit register value. */
class VecReg
{
  public:
    VecReg() { words_.fill(0); }

    float
    f32(int lane) const
    {
        return std::bit_cast<float>(words_[static_cast<size_t>(lane)]);
    }

    void
    setF32(int lane, float v)
    {
        words_[static_cast<size_t>(lane)] = std::bit_cast<uint32_t>(v);
    }

    Bf16
    bf16(int ml) const
    {
        uint32_t w = words_[static_cast<size_t>(ml / 2)];
        return static_cast<Bf16>((ml & 1) ? (w >> 16) : (w & 0xffffu));
    }

    void
    setBf16(int ml, Bf16 v)
    {
        uint32_t &w = words_[static_cast<size_t>(ml / 2)];
        if (ml & 1)
            w = (w & 0x0000ffffu) | (static_cast<uint32_t>(v) << 16);
        else
            w = (w & 0xffff0000u) | v;
    }

    uint32_t word(int i) const { return words_[static_cast<size_t>(i)]; }
    void setWord(int i, uint32_t v) { words_[static_cast<size_t>(i)] = v; }

    /** Raw 16-word backing store (host-SIMD loads/stores, util/simd). */
    const uint32_t *words() const { return words_.data(); }
    uint32_t *words() { return words_.data(); }

    /** Fill every FP32 lane with the same scalar (broadcast). */
    static VecReg
    broadcastF32(float v)
    {
        VecReg r;
        for (int i = 0; i < kVecLanes; ++i)
            r.setF32(i, v);
        return r;
    }

    /** Fill every 32-bit word with the same bits (embedded broadcast:
     *  one FP32 scalar, or one BF16 pair for VDPBF16PS). */
    static VecReg
    broadcastWord(uint32_t w)
    {
        VecReg r;
        for (int i = 0; i < kVecLanes; ++i)
            r.setWord(i, w);
        return r;
    }

    /** Fill every BF16 pair with the same two scalars (32-bit bcast). */
    static VecReg
    broadcastBf16Pair(Bf16 lo, Bf16 hi)
    {
        VecReg r;
        for (int i = 0; i < kVecLanes; ++i) {
            r.setBf16(2 * i, lo);
            r.setBf16(2 * i + 1, hi);
        }
        return r;
    }

    bool
    operator==(const VecReg &o) const
    {
        return words_ == o.words_;
    }

  private:
    std::array<uint32_t, kVecLanes> words_;
};

} // namespace save

#endif // SAVE_ISA_VEC_H
