/**
 * @file
 * Content-addressed keys for persistent simulation results.
 *
 * A CasKey names one simulation outcome with two 64-bit FNV-1a
 * digests:
 *
 *  - `cfg`: everything *outside* the workload that shifts results —
 *    every MachineConfig and SaveConfig field plus a caller salt
 *    (estimator seed/tiles/cores, or 0 for raw Engine runs). This is
 *    the same digest the `.savtrc` trace header and the v1 surface
 *    cache carry, computed by casHashConfig() (SurfaceCache::
 *    hashConfig delegates here so the two can never drift).
 *  - `wl`: the workload identity — either an estimator surface point
 *    (SliceKey: micro-kernel shape, pattern, precision, SAVE on/off,
 *    VPU count, sparsity bins) or a raw GEMM slice (GemmConfig plus
 *    cores/vpus for Engine-driven benches).
 *
 * Both digests are serialized field-by-field, never via raw structs,
 * so padding bytes and ABI layout can never leak into the key: the
 * same configuration hashes identically across runs, build modes, and
 * SIMD backends.
 */

#ifndef SAVE_CACHE_CAS_KEY_H
#define SAVE_CACHE_CAS_KEY_H

#include <compare>
#include <cstdint>
#include <cstring>

#include "dnn/slice_batch.h"
#include "kernels/gemm.h"
#include "sim/config.h"

namespace save {

/** Identity of one cached simulation result. */
struct CasKey
{
    uint64_t cfg = 0; ///< configuration digest (casHashConfig)
    uint64_t wl = 0;  ///< workload digest (slice/gemm hash below)

    auto operator<=>(const CasKey &) const = default;
};

/** FNV-1a running hash; fed field-by-field, never via raw structs. */
class CasHasher
{
  public:
    template <typename T>
    void
    mix(T value)
    {
        unsigned char bytes[sizeof(T)];
        std::memcpy(bytes, &value, sizeof(T));
        for (unsigned char b : bytes) {
            h_ ^= b;
            h_ *= 0x100000001b3ull;
        }
    }

    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull;
};

/**
 * Digest of every MachineConfig/SaveConfig field plus `salt` (caller
 * knobs outside the structs that shift results). Identical to the
 * historical SurfaceCache::hashConfig — that function now delegates
 * here.
 */
uint64_t casHashConfig(const MachineConfig &mcfg, const SaveConfig &scfg,
                       uint64_t salt);

/** Workload digest of one estimator surface point. */
uint64_t casSliceWorkload(const SliceKey &key);

/** Workload digest of one raw Engine::runGemm invocation. */
uint64_t casGemmWorkload(const GemmConfig &g, int cores, int vpus);

} // namespace save

#endif // SAVE_CACHE_CAS_KEY_H
