/**
 * @file
 * Persistent content-addressed store (CAS) for simulation results.
 *
 * Generalizes the v1 surface cache (dnn/surface_cache.h) from "one
 * record shape, one config, whole-file rewrites" to a store any
 * simulation result can land in exactly once:
 *
 *   key   = CasKey (config digest + workload digest, cache/cas_key.h)
 *   value = CasValue: slice time, cycle count, core frequency, and
 *           the full stat map — the same payload a sandboxed worker
 *           ships over the wire, so a cache hit is bit-identical to a
 *           fresh simulation by construction.
 *
 * On-disk layout: a directory of 16 shard files (`cas-XX.savecas`,
 * shard = low bits of the key) holding append-only, CRC-framed
 * records in the `.savtrc` chunk convention (trace/trace_format.h):
 *
 *   u32 fourcc 'CREC', u32 version, u64 payloadBytes,
 *   u32 crc32(payload), payload
 *
 *   payload: u64 cfg, u64 wl, f64 timeNs, u64 cycles, f64 coreGhz,
 *            u32 nStats, nStats x (u32 nameLen, name, f64 value)
 *
 * There is no file header, so any number of processes can append
 * concurrently (O_APPEND, one write(2) per record) without a
 * header-creation race; each frame is independently versioned and
 * CRC-protected. Reads go through a read-only shared mmap of the
 * file, validated frame-by-frame; decoded records live in the
 * in-memory index. Inserting a value whose time is not finite is
 * refused — a NaN-poisoned result (exhausted retries) can never
 * poison the store.
 *
 * Robustness properties (inherited from the journal/surface-cache
 * discipline):
 *  - Corruption (bad fourcc, version skew, oversized length, CRC
 *    mismatch, or a torn record found at open) quarantines the whole
 *    shard to `<shard>.corrupt` with a warning; in-memory records the
 *    process already validated are re-appended to a fresh file, so a
 *    warm run stays bit-identical while the evidence survives.
 *  - Size cap (`SAVE_CACHE_MAX_MB` / Options::maxBytes): global LRU
 *    eviction compacts shards via temp-file + rename once the record
 *    bytes exceed the cap (batched, with hysteresis).
 *  - Cross-process single-flight: beginFlight() takes an O_EXCL
 *    `fl-<key>.lock` file carrying the owner pid; losers wait on
 *    waitForResult(), which polls the shard for the owner's insert.
 *    While a flight is owned, a background heartbeat refreshes the
 *    lock's mtime, and the breaker fires only when the recorded pid
 *    is provably dead AND the mtime is stale — either signal alone
 *    is not enough (a recycled pid can look dead while its slow
 *    original owner still simulates, and a fixed age alone would
 *    break any sufficiently slow holder). A crashed owner stops
 *    heartbeating, so its lock goes stale and is broken; liveness
 *    also never depends on the breaker, because waitForResult()
 *    times out and lets the caller simulate the point itself.
 *
 * The store is best-effort and never throws: every I/O failure warns
 * and degrades to "no cache". Thread-safe.
 */

#ifndef SAVE_CACHE_RESULT_STORE_H
#define SAVE_CACHE_RESULT_STORE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/cas_key.h"
#include "stats/stats.h"

namespace save {

/** One cached simulation outcome. `stats` is sorted by name (the
 *  StatGroup iteration order) and round-trips raw f64 bits. */
struct CasValue
{
    double timeNs = 0;
    uint64_t cycles = 0;
    double coreGhz = 0;
    std::vector<std::pair<std::string, double>> stats;
};

class ResultStore
{
  public:
    /** Record-frame version; bumped on any payload layout change. */
    static constexpr uint32_t kVersion = 1;
    static constexpr int kShards = 16;

    struct Options
    {
        /** Resolved store directory; empty disables the store. */
        std::string dir;
        /** Record-byte cap triggering LRU eviction; 0 = unlimited. */
        uint64_t maxBytes = 0;
    };

    /** Resolve a --cache-dir style option: "none"/"-" force-disable,
     *  empty defers to SAVE_CACHE_DIR, anything else is the dir. */
    static std::string resolveDir(const std::string &opt);

    /** Resolve a --cache-max-mb style option: > 0 is a cap in MB,
     *  0 defers to SAVE_CACHE_MAX_MB, else unlimited. */
    static uint64_t resolveMaxBytes(int opt_mb);

    /** Opens (and parses) every existing shard under opt.dir. A
     *  disabled store (empty dir) accepts every call as a no-op. */
    explicit ResultStore(Options opt);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    bool enabled() const { return !opt_.dir.empty(); }
    const std::string &dir() const { return opt_.dir; }
    uint64_t maxBytes() const { return opt_.maxBytes; }

    /** Find a record. Counts a hit or a miss. */
    bool lookup(const CasKey &key, CasValue *out);

    /**
     * Append a record (no-op if the key is already present). Returns
     * false — without writing — when the store is disabled, the value
     * is non-finite (poisoned), or I/O fails.
     */
    bool insert(const CasKey &key, const CasValue &value);

    /** Re-parse shard tails appended by other processes since open. */
    void refresh();

    /**
     * Cross-process single-flight claim for one key. The owner is
     * expected to simulate, insert(), then release() (also done by
     * the destructor); losers should waitForResult(). A disabled
     * store hands every caller ownership.
     */
    class Flight
    {
      public:
        Flight() = default;
        Flight(Flight &&o) noexcept { *this = std::move(o); }
        Flight &
        operator=(Flight &&o) noexcept
        {
            release();
            path_ = std::move(o.path_);
            owner_ = o.owner_;
            store_ = o.store_;
            o.owner_ = false;
            o.store_ = nullptr;
            o.path_.clear();
            return *this;
        }
        ~Flight() { release(); }

        bool owner() const { return owner_; }
        /** Unlink the lock file and stop its heartbeat (owner only;
         *  idempotent). */
        void release();

      private:
        friend class ResultStore;
        std::string path_;
        bool owner_ = false;
        /** Owning store, for heartbeat deregistration; null for the
         *  disabled-store "everyone owns" flights. The store must
         *  outlive every Flight it hands out (as it already must for
         *  waitForResult/insert to make sense). */
        ResultStore *store_ = nullptr;
    };

    Flight beginFlight(const CasKey &key);

    /**
     * Wait (polling, with shard refresh) until another process
     * inserts `key` or `timeout_ms` expires. Returns early when the
     * flight lock disappears without a result (the owner died or gave
     * up) so the caller can simulate the point itself.
     */
    bool waitForResult(const CasKey &key, CasValue *out, int timeout_ms);

    uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    uint64_t inserts() const
    {
        return inserts_.load(std::memory_order_relaxed);
    }
    uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    uint64_t quarantines() const
    {
        return quarantines_.load(std::memory_order_relaxed);
    }
    /** Current on-disk record bytes across all shards. */
    uint64_t bytes() const;
    /** Records currently indexed (post-dedup). */
    uint64_t records() const;

    /** Counters as a StatGroup (exported via StatGroup::toJson). */
    StatGroup statsSnapshot() const;

    /** Shard file path (exposed for tests and tooling). */
    std::string shardPath(int shard) const;
    /** Flight lock-file path for a key (exposed for tests). */
    std::string flightPath(const CasKey &key) const;

    /** One heartbeat pass: refresh the mtime of every owned flight
     *  lock. Runs periodically on the heartbeat thread; public so
     *  tests can force a beat without waiting out the interval. */
    void touchActiveFlights();

  private:
    friend class Flight;

    struct Rec
    {
        CasValue val;
        uint32_t recBytes = 0; ///< frame header + payload on disk
        uint64_t lastUse = 0;
    };

    struct Shard
    {
        uint64_t parsed = 0;    ///< validated on-disk prefix bytes
        uint64_t diskBytes = 0; ///< record bytes incl. duplicates
        int appendFd = -1;
        std::map<CasKey, Rec> recs;
    };

    static int shardOf(const CasKey &key);

    /** Parse [shard.parsed, EOF) through a read-only mmap. Returns
     *  false when the shard was quarantined. */
    bool loadShardLocked(int shard, bool at_open);
    /** Move the shard file to .corrupt and re-append every record the
     *  process already validated to a fresh file. */
    void quarantineShardLocked(int shard, const std::string &why);
    bool appendRecordLocked(int shard, const CasKey &key, const Rec &r);
    int appendFdLocked(int shard);
    void evictLocked();
    uint64_t totalRecordBytesLocked() const;

    void registerFlight(const std::string &path);
    void unregisterFlight(const std::string &path);

    Options opt_;
    mutable std::mutex mu_;
    Shard shards_[kShards];
    uint64_t useClock_ = 0;
    bool warnedWriteFailure_ = false;

    /** Owned flight-lock paths + the lazily-started heartbeat that
     *  keeps their mtimes fresh while the holders simulate. */
    std::mutex flightMu_;
    std::vector<std::string> activeFlights_;
    std::thread heartbeat_;
    std::condition_variable heartbeatCv_;
    bool heartbeatStop_ = false;

    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> quarantines_{0};
};

} // namespace save

#endif // SAVE_CACHE_RESULT_STORE_H
