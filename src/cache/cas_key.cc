#include "cache/cas_key.h"

namespace save {

uint64_t
casHashConfig(const MachineConfig &m, const SaveConfig &s, uint64_t salt)
{
    CasHasher h;
    h.mix(salt);

    h.mix(m.cores);
    h.mix(m.freq2VpuGhz);
    h.mix(m.freq1VpuGhz);
    h.mix(m.uncoreGhz);
    h.mix(m.issueWidth);
    h.mix(m.commitWidth);
    h.mix(m.rsEntries);
    h.mix(m.robEntries);
    h.mix(m.prfExtraRegs);
    h.mix(m.numVpus);
    h.mix(m.fp32FmaLatency);
    h.mix(m.mpFmaLatency);
    h.mix(m.l1ReadPorts);
    h.mix(m.bcachePorts);
    h.mix(m.bcacheEntries);
    h.mix(m.l1SizeKb);
    h.mix(m.l1Ways);
    h.mix(m.l1LatCycles);
    h.mix(m.l2SizeKb);
    h.mix(m.l2Ways);
    h.mix(m.l2LatCycles);
    h.mix(m.l3SizeKbPerCore);
    h.mix(m.l3Ways);
    h.mix(m.l3LatNs);
    h.mix(m.nocHopCycles);
    h.mix(m.dramGBps);
    h.mix(m.dramChannels);
    h.mix(m.dramLatNs);
    h.mix(m.prefetchDegree);
    h.mix(m.exceptionServiceCycles);

    h.mix(s.enabled);
    h.mix(static_cast<uint8_t>(s.policy));
    h.mix(s.laneWiseDep);
    h.mix(s.bsSkip);
    h.mix(static_cast<uint8_t>(s.bcache));
    h.mix(s.mpCompress);
    h.mix(s.hcExtraLatency);
    h.mix(s.rotationStates);

    return h.value();
}

namespace {

/** Leading domain tag so the two workload serializations can never
 *  collide with each other, whatever their field values. */
enum class WorkloadDomain : uint8_t { Slice = 1, Gemm = 2 };

} // namespace

uint64_t
casSliceWorkload(const SliceKey &key)
{
    CasHasher h;
    h.mix(static_cast<uint8_t>(WorkloadDomain::Slice));
    h.mix(static_cast<uint64_t>(key.mr));
    h.mix(static_cast<uint64_t>(key.nr));
    h.mix(static_cast<uint64_t>(key.kSteps));
    h.mix(key.pattern);
    h.mix(key.precision);
    h.mix(key.saveOn);
    h.mix(key.vpus);
    h.mix(key.wBin);
    h.mix(key.aBin);
    return h.value();
}

uint64_t
casGemmWorkload(const GemmConfig &g, int cores, int vpus)
{
    CasHasher h;
    h.mix(static_cast<uint8_t>(WorkloadDomain::Gemm));
    h.mix(static_cast<uint64_t>(g.mr));
    h.mix(static_cast<uint64_t>(g.nrVecs));
    h.mix(static_cast<uint64_t>(g.kSteps));
    h.mix(static_cast<uint64_t>(g.tiles));
    h.mix(static_cast<uint8_t>(g.pattern));
    h.mix(static_cast<uint8_t>(g.precision));
    h.mix(static_cast<uint8_t>(g.aLayout));
    h.mix(g.bsSparsity);
    h.mix(g.nbsSparsity);
    h.mix(g.seed);
    h.mix(g.useWriteMask);
    h.mix(g.writeMask);
    h.mix(static_cast<uint64_t>(cores));
    h.mix(static_cast<uint64_t>(vpus));
    return h.value();
}

} // namespace save
