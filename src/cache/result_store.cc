#include "cache/result_store.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "trace/trace_format.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/posix_io.h"
#include "util/runtime_options.h"

namespace save {

namespace {

constexpr uint32_t kRecFourcc = traceFourcc('C', 'R', 'E', 'C');
/** A record larger than this is treated as corruption, not allocated. */
constexpr uint64_t kMaxPayload = 16ull << 20;
/** A flight lock is mtime-stale past this age. Live holders refresh
 *  the mtime every kFlightHeartbeatSec, so only a dead (or wholly
 *  wedged) holder ever lets a lock cross it. */
constexpr long kFlightStaleSec = 120;
/** Owner heartbeat period; far below kFlightStaleSec so one missed
 *  beat (scheduler hiccup) cannot make a live lock look stale. */
constexpr long kFlightHeartbeatSec = 15;
/** waitForResult poll period. */
constexpr int kWaitPollMs = 10;

std::vector<uint8_t>
encodePayload(const CasKey &key, const CasValue &v)
{
    std::vector<uint8_t> out;
    tracePutU64(out, key.cfg);
    tracePutU64(out, key.wl);
    tracePutF64(out, v.timeNs);
    tracePutU64(out, v.cycles);
    tracePutF64(out, v.coreGhz);
    tracePutU32(out, static_cast<uint32_t>(v.stats.size()));
    for (const auto &[name, value] : v.stats) {
        tracePutU32(out, static_cast<uint32_t>(name.size()));
        out.insert(out.end(), name.begin(), name.end());
        tracePutF64(out, value);
    }
    return out;
}

/** Throws TraceError on any malformed payload. */
void
decodePayload(const uint8_t *p, const uint8_t *end, CasKey &key,
              CasValue &v)
{
    key.cfg = traceGetU64(p, end);
    key.wl = traceGetU64(p, end);
    v.timeNs = traceGetF64(p, end);
    v.cycles = traceGetU64(p, end);
    v.coreGhz = traceGetF64(p, end);
    uint32_t n = traceGetU32(p, end);
    // Untrusted count: each stat needs >= 12 bytes, so bound it by the
    // remaining payload before reserving.
    if (n > static_cast<size_t>(end - p) / 12)
        throw TraceError("cas: stat count " + std::to_string(n) +
                         " exceeds remaining payload");
    v.stats.clear();
    v.stats.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t len = traceGetU32(p, end);
        if (static_cast<size_t>(end - p) < len)
            throw TraceError("cas: stat name runs past payload end");
        std::string name(reinterpret_cast<const char *>(p), len);
        p += len;
        double value = traceGetF64(p, end);
        v.stats.emplace_back(std::move(name), value);
    }
    if (p != end)
        throw TraceError("cas: trailing bytes after record payload");
}

std::vector<uint8_t>
encodeFrame(const CasKey &key, const CasValue &v)
{
    return frameEncode(kRecFourcc, ResultStore::kVersion,
                       encodePayload(key, v));
}

/** True when the pid recorded in a flight lock is definitely gone. */
bool
pidDead(pid_t pid)
{
    if (pid <= 0)
        return false; // unparseable: fall back to the mtime check
    return ::kill(pid, 0) != 0 && errno == ESRCH;
}

} // namespace

std::string
ResultStore::resolveDir(const std::string &opt)
{
    if (opt == "none" || opt == "-")
        return "";
    if (!opt.empty())
        return opt;
    return RuntimeOptions::fromEnv().cacheDir;
}

uint64_t
ResultStore::resolveMaxBytes(int opt_mb)
{
    if (opt_mb > 0)
        return static_cast<uint64_t>(opt_mb) << 20;
    if (opt_mb == 0)
        return RuntimeOptions::fromEnv().cacheMaxBytes();
    return 0;
}

int
ResultStore::shardOf(const CasKey &key)
{
    return static_cast<int>((key.cfg ^ key.wl) &
                            static_cast<uint64_t>(kShards - 1));
}

std::string
ResultStore::shardPath(int shard) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "cas-%02x.savecas", shard);
    return (std::filesystem::path(opt_.dir) / name).string();
}

std::string
ResultStore::flightPath(const CasKey &key) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "fl-%016llx%016llx.lock",
                  static_cast<unsigned long long>(key.cfg),
                  static_cast<unsigned long long>(key.wl));
    return (std::filesystem::path(opt_.dir) / name).string();
}

ResultStore::ResultStore(Options opt) : opt_(std::move(opt))
{
    if (!enabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(opt_.dir, ec);
    if (ec) {
        SAVE_WARN("cannot create cache dir ", opt_.dir, ": ",
                  ec.message(), "; result store disabled");
        opt_.dir.clear();
        return;
    }
    std::lock_guard<std::mutex> lk(mu_);
    for (int i = 0; i < kShards; ++i) {
        // Test hook: deterministic at-rest corruption of an existing
        // shard before it is parsed (SAVE_FAULT_INJECT cache-truncate/
        // cache-bitflip), exercising the quarantine path on warm runs.
        std::error_code sec;
        if (std::filesystem::exists(shardPath(i), sec))
            FaultInjector::global().maybeTamperCacheFile(
                shardPath(i), static_cast<uint64_t>(i));
        loadShardLocked(i, /*at_open=*/true);
    }
    if (opt_.maxBytes && totalRecordBytesLocked() > opt_.maxBytes)
        evictLocked();
}

ResultStore::~ResultStore()
{
    {
        std::lock_guard<std::mutex> lk(flightMu_);
        heartbeatStop_ = true;
    }
    heartbeatCv_.notify_all();
    if (heartbeat_.joinable())
        heartbeat_.join();
    std::lock_guard<std::mutex> lk(mu_);
    for (Shard &s : shards_)
        if (s.appendFd >= 0) {
            ::close(s.appendFd);
            s.appendFd = -1;
        }
}

bool
ResultStore::loadShardLocked(int shard, bool at_open)
{
    Shard &s = shards_[shard];
    const std::string path = shardPath(shard);

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return true; // nothing on disk yet
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return true;
    }
    const uint64_t size = static_cast<uint64_t>(st.st_size);
    if (size <= s.parsed) {
        ::close(fd);
        if (size < s.parsed) {
            // The file shrank under us (another process compacted or
            // an injected truncation): drop what we indexed from disk
            // and re-parse from scratch. In-memory values stay valid.
            s.parsed = 0;
            s.diskBytes = 0;
            if (s.appendFd >= 0) {
                ::close(s.appendFd);
                s.appendFd = -1;
            }
            return loadShardLocked(shard, at_open);
        }
        return true;
    }

    void *map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
        SAVE_WARN("cannot mmap cache shard ", path, ": ",
                  std::strerror(errno));
        return true;
    }
    const uint8_t *base = static_cast<const uint8_t *>(map);

    std::string why;
    bool corrupt = false;
    uint64_t off = s.parsed;
    while (off < size) {
        FrameView v;
        FrameParse parsed = frameParse(base, size, off, v, kMaxPayload,
                                       &why);
        if (parsed == FrameParse::Truncated) {
            // Mid-run: a concurrent append is still landing. At open
            // nothing can still be landing, so a torn tail is damage.
            corrupt = at_open;
            if (!at_open)
                why.clear();
            break;
        }
        if (parsed == FrameParse::Corrupt) {
            corrupt = true;
            break;
        }
        if (v.fourcc != kRecFourcc) {
            why = "bad record fourcc at offset " +
                  std::to_string(off - kFrameHeaderBytes - v.len);
            corrupt = true;
            break;
        }
        if (v.arg != kVersion) {
            why = "record version " + std::to_string(v.arg) +
                  " != expected " + std::to_string(kVersion);
            corrupt = true;
            break;
        }
        const uint8_t *payload = v.payload;
        const uint64_t len = v.len;
        CasKey key;
        CasValue val;
        try {
            decodePayload(payload, payload + len, key, val);
        } catch (const TraceError &e) {
            why = e.what();
            corrupt = true;
            break;
        }
        const uint32_t rec_bytes =
            static_cast<uint32_t>(kTraceChunkHeaderBytes + len);
        s.diskBytes += rec_bytes;
        // First record wins; a duplicate append (two processes racing
        // past each other's single-flight window) carries identical
        // bytes and is dropped at the next compaction.
        if (!s.recs.count(key)) {
            Rec r;
            r.val = std::move(val);
            r.recBytes = rec_bytes;
            r.lastUse = ++useClock_;
            s.recs.emplace(key, std::move(r));
        }
        // frameParse already advanced `off` past this record.
    }
    ::munmap(map, size);
    s.parsed = off;

    if (corrupt) {
        quarantineShardLocked(shard, why);
        return false;
    }
    return true;
}

void
ResultStore::quarantineShardLocked(int shard, const std::string &why)
{
    Shard &s = shards_[shard];
    const std::string path = shardPath(shard);
    if (s.appendFd >= 0) {
        ::close(s.appendFd);
        s.appendFd = -1;
    }
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec)
        std::filesystem::remove(path, ec);
    SAVE_WARN("quarantined corrupt cache shard ", path, " -> ", path,
              ".corrupt: ", why);
    quarantines_.fetch_add(1, std::memory_order_relaxed);

    // Records this process already validated are still good: re-append
    // them to a fresh file so a warm run loses nothing but the
    // corrupted bytes.
    s.parsed = 0;
    s.diskBytes = 0;
    for (auto &[key, rec] : s.recs)
        appendRecordLocked(shard, key, rec);
}

int
ResultStore::appendFdLocked(int shard)
{
    Shard &s = shards_[shard];
    if (s.appendFd < 0)
        s.appendFd = ::open(shardPath(shard).c_str(),
                            O_WRONLY | O_APPEND | O_CREAT, 0644);
    return s.appendFd;
}

bool
ResultStore::appendRecordLocked(int shard, const CasKey &key,
                                const Rec &r)
{
    Shard &s = shards_[shard];
    int fd = appendFdLocked(shard);
    if (fd < 0) {
        if (!warnedWriteFailure_) {
            warnedWriteFailure_ = true;
            SAVE_WARN("cannot open cache shard ", shardPath(shard),
                      " for append: ", std::strerror(errno),
                      "; persisting disabled for this run");
        }
        return false;
    }
    std::vector<uint8_t> frame = encodeFrame(key, r.val);
    if (writeFull(fd, frame.data(), frame.size()) !=
        static_cast<ssize_t>(frame.size())) {
        if (!warnedWriteFailure_) {
            warnedWriteFailure_ = true;
            SAVE_WARN("cannot append to cache shard ", shardPath(shard),
                      ": ", std::strerror(errno),
                      "; persisting disabled for this run");
        }
        return false;
    }
    s.parsed += frame.size();
    s.diskBytes += frame.size();
    return true;
}

bool
ResultStore::lookup(const CasKey &key, CasValue *out)
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lk(mu_);
    Shard &s = shards_[shardOf(key)];
    auto it = s.recs.find(key);
    if (it == s.recs.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    it->second.lastUse = ++useClock_;
    if (out)
        *out = it->second.val;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ResultStore::insert(const CasKey &key, const CasValue &value)
{
    if (!enabled())
        return false;
    if (!std::isfinite(value.timeNs))
        return false; // poisoned (exhausted-retry) results never persist
    std::lock_guard<std::mutex> lk(mu_);
    const int shard = shardOf(key);
    Shard &s = shards_[shard];
    if (s.recs.count(key))
        return true; // already present: results land once

    Rec r;
    r.val = value;
    r.recBytes = static_cast<uint32_t>(
        kTraceChunkHeaderBytes + encodePayload(key, value).size());
    r.lastUse = ++useClock_;
    if (!appendRecordLocked(shard, key, r))
        return false;
    s.recs.emplace(key, std::move(r));
    inserts_.fetch_add(1, std::memory_order_relaxed);

    // Test hook: deterministic corruption of the just-appended-to
    // shard (SAVE_FAULT_INJECT cache-truncate/cache-bitflip). The
    // in-memory index is unaffected; the next open detects and
    // quarantines.
    FaultInjector::global().maybeTamperCacheFile(shardPath(shard),
                                                key.cfg ^ key.wl);

    if (opt_.maxBytes && totalRecordBytesLocked() > opt_.maxBytes)
        evictLocked();
    return true;
}

void
ResultStore::refresh()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lk(mu_);
    for (int i = 0; i < kShards; ++i)
        loadShardLocked(i, /*at_open=*/false);
}

uint64_t
ResultStore::totalRecordBytesLocked() const
{
    uint64_t total = 0;
    for (const Shard &s : shards_)
        total += s.diskBytes;
    return total;
}

uint64_t
ResultStore::bytes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return totalRecordBytesLocked();
}

uint64_t
ResultStore::records() const
{
    std::lock_guard<std::mutex> lk(mu_);
    uint64_t n = 0;
    for (const Shard &s : shards_)
        n += s.recs.size();
    return n;
}

void
ResultStore::evictLocked()
{
    // Batched LRU with hysteresis: drop the least-recently-used
    // records until the live set fits in 3/4 of the cap, then compact
    // every shard that lost records (or carries duplicate bytes) via
    // temp-file + rename. The most recent record always survives,
    // even when it alone exceeds the cap.
    struct Victim
    {
        uint64_t lastUse;
        int shard;
        CasKey key;
        uint32_t recBytes;
    };
    std::vector<Victim> order;
    uint64_t live = 0;
    for (int i = 0; i < kShards; ++i)
        for (const auto &[key, rec] : shards_[i].recs) {
            order.push_back({rec.lastUse, i, key, rec.recBytes});
            live += rec.recBytes;
        }
    std::sort(order.begin(), order.end(),
              [](const Victim &a, const Victim &b) {
                  return a.lastUse < b.lastUse;
              });

    const uint64_t target = opt_.maxBytes - opt_.maxBytes / 4;
    bool rewrite[kShards] = {};
    size_t dropped = 0;
    for (const Victim &v : order) {
        if (live <= target || dropped + 1 >= order.size())
            break;
        shards_[v.shard].recs.erase(v.key);
        rewrite[v.shard] = true;
        live -= v.recBytes;
        ++dropped;
    }
    evictions_.fetch_add(dropped, std::memory_order_relaxed);

    static std::atomic<uint64_t> tmp_serial{0};
    for (int i = 0; i < kShards; ++i) {
        Shard &s = shards_[i];
        const uint64_t rec_total = [&] {
            uint64_t t = 0;
            for (const auto &[key, rec] : s.recs)
                t += rec.recBytes;
            return t;
        }();
        // Compact when records were dropped here or duplicate bytes
        // accumulated; untouched, duplicate-free shards keep their
        // file as-is.
        if (!rewrite[i] && s.diskBytes == rec_total)
            continue;
        const std::string path = shardPath(i);
        if (s.recs.empty()) {
            if (s.appendFd >= 0) {
                ::close(s.appendFd);
                s.appendFd = -1;
            }
            std::error_code ec;
            std::filesystem::remove(path, ec);
            s.parsed = 0;
            s.diskBytes = 0;
            continue;
        }
        std::vector<uint8_t> image;
        for (const auto &[key, rec] : s.recs) {
            std::vector<uint8_t> frame = encodeFrame(key, rec.val);
            image.insert(image.end(), frame.begin(), frame.end());
        }
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid()) + "." +
            std::to_string(tmp_serial.fetch_add(1));
        std::string why;
        if (!writeFileBytes(tmp, image.data(), image.size(), &why)) {
            SAVE_WARN("cache compaction: ", why);
            continue;
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            SAVE_WARN("cache compaction: cannot move ", tmp,
                      " into place: ", ec.message());
            std::filesystem::remove(tmp, ec);
            continue;
        }
        if (s.appendFd >= 0) {
            ::close(s.appendFd);
            s.appendFd = -1; // reopened lazily against the new inode
        }
        s.parsed = image.size();
        s.diskBytes = image.size();
    }
}

ResultStore::Flight
ResultStore::beginFlight(const CasKey &key)
{
    Flight f;
    if (!enabled()) {
        f.owner_ = true; // no store: every caller just computes
        return f;
    }
    const std::string path = flightPath(key);
    for (int attempt = 0; attempt < 3; ++attempt) {
        int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
        if (fd >= 0) {
            char buf[32];
            int n = std::snprintf(buf, sizeof(buf), "%ld\n",
                                  static_cast<long>(::getpid()));
            writeFull(fd, buf, static_cast<size_t>(n));
            ::close(fd);
            f.owner_ = true;
            f.path_ = path;
            f.store_ = this;
            registerFlight(path);
            return f;
        }
        if (errno != EEXIST)
            break; // unwritable dir etc.: degrade to owner-less wait

        // Someone else holds the flight. Break the lock ONLY when the
        // recorded pid is gone AND the heartbeat has stopped (stale
        // mtime). A dead-looking pid alone is not proof: after pid
        // reuse the slow original owner may still be simulating, and
        // breaking its lock would double-simulate the point. A stale
        // mtime alone is not proof either for a same-host holder whose
        // pid is provably alive. An unparseable pid (another host, or
        // a torn write) cannot vouch for liveness, so only the mtime
        // half protects it — which its heartbeat keeps fresh.
        std::string contents;
        bool pid_gone = true;
        if (readFileBytes(path, contents)) {
            pid_t pid =
                static_cast<pid_t>(std::strtol(contents.c_str(),
                                               nullptr, 10));
            if (pid > 0)
                pid_gone = pidDead(pid);
        } else {
            // Racing a release: the lock may already be gone. Retry
            // the open instead of guessing.
            continue;
        }
        bool mtime_stale = false;
        struct stat st;
        if (::stat(path.c_str(), &st) == 0)
            mtime_stale = ::time(nullptr) - st.st_mtime >
                          kFlightStaleSec;
        if (!(pid_gone && mtime_stale)) {
            f.path_ = path;
            return f; // follower: waitForResult
        }
        SAVE_WARN("breaking stale cache flight lock ", path,
                  " (owner dead, no heartbeat for >",
                  kFlightStaleSec, "s)");
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    f.path_ = path;
    return f;
}

void
ResultStore::registerFlight(const std::string &path)
{
    std::lock_guard<std::mutex> lk(flightMu_);
    activeFlights_.push_back(path);
    if (!heartbeat_.joinable() && !heartbeatStop_) {
        heartbeat_ = std::thread([this] {
            std::unique_lock<std::mutex> lk(flightMu_);
            while (!heartbeatStop_) {
                heartbeatCv_.wait_for(
                    lk, std::chrono::seconds(kFlightHeartbeatSec));
                if (heartbeatStop_)
                    break;
                lk.unlock();
                touchActiveFlights();
                lk.lock();
            }
        });
    }
}

void
ResultStore::unregisterFlight(const std::string &path)
{
    std::lock_guard<std::mutex> lk(flightMu_);
    auto it = std::find(activeFlights_.begin(), activeFlights_.end(),
                        path);
    if (it != activeFlights_.end())
        activeFlights_.erase(it);
}

void
ResultStore::touchActiveFlights()
{
    std::vector<std::string> paths;
    {
        std::lock_guard<std::mutex> lk(flightMu_);
        paths = activeFlights_;
    }
    for (const std::string &p : paths) {
        // Refresh both timestamps to "now"; a failure (the lock was
        // just released, or broken by a peer) is harmless.
        if (::utimensat(AT_FDCWD, p.c_str(), nullptr, 0) != 0 &&
            errno != ENOENT)
            SAVE_WARN("flight heartbeat: cannot touch ", p, ": ",
                      std::strerror(errno));
    }
}

void
ResultStore::Flight::release()
{
    if (!owner_ || path_.empty())
        return;
    if (store_ != nullptr)
        store_->unregisterFlight(path_);
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    owner_ = false;
    store_ = nullptr;
}

bool
ResultStore::waitForResult(const CasKey &key, CasValue *out,
                           int timeout_ms)
{
    if (!enabled())
        return false;
    const int shard = shardOf(key);
    const std::string lock = flightPath(key);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            loadShardLocked(shard, /*at_open=*/false);
            Shard &s = shards_[shard];
            auto it = s.recs.find(key);
            if (it != s.recs.end()) {
                it->second.lastUse = ++useClock_;
                if (out)
                    *out = it->second.val;
                hits_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        std::error_code ec;
        if (!std::filesystem::exists(lock, ec)) {
            // The owner released (or died) without landing a result:
            // one last refresh to close the release/insert race, then
            // let the caller simulate the point itself.
            std::lock_guard<std::mutex> lk(mu_);
            loadShardLocked(shard, /*at_open=*/false);
            Shard &s = shards_[shard];
            auto it = s.recs.find(key);
            if (it == s.recs.end())
                return false;
            it->second.lastUse = ++useClock_;
            if (out)
                *out = it->second.val;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kWaitPollMs));
    }
}

StatGroup
ResultStore::statsSnapshot() const
{
    StatGroup g;
    g.set("hits", static_cast<double>(hits()));
    g.set("misses", static_cast<double>(misses()));
    g.set("inserts", static_cast<double>(inserts()));
    g.set("evictions", static_cast<double>(evictions()));
    g.set("quarantines", static_cast<double>(quarantines()));
    g.set("bytes", static_cast<double>(bytes()));
    g.set("records", static_cast<double>(records()));
    return g;
}

} // namespace save
