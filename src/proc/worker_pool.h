/**
 * @file
 * Crash-containing pool of sandboxed slice worker processes.
 *
 * The pool owns a fixed set of Worker slots and hands slices to them
 * under a mutex/condvar checkout: a calling thread grabs a free slot,
 * waits out that slot's respawn backoff if one is pending, runs the
 * slice, and returns the slot. Policy layered on top of Worker:
 *
 *  - per-slot exponential backoff with jitter between respawns, so a
 *    worker crashing in a tight loop does not busy-spin fork();
 *  - bounded recycling: after `maxSlicesPerWorker` slices a child is
 *    drained (BYE) and the next slice gets a fresh process, putting a
 *    ceiling on leak accumulation;
 *  - graceful degradation: once the pool-wide process-failure count
 *    reaches `maxWorkerCrashes` the pool drains every child and
 *    refuses further slices with WorkerError; the estimator then falls
 *    back to in-process execution and keeps the sweep alive.
 *
 * Clean ERR frames (taxonomy errors raised inside a healthy worker)
 * pass through without touching the crash budget — only process-level
 * misbehavior (signals, deadline kills, OOM deaths, protocol
 * corruption, spawn failures) counts.
 */

#ifndef SAVE_PROC_WORKER_POOL_H
#define SAVE_PROC_WORKER_POOL_H

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "proc/worker.h"

namespace save {

/** Knobs for process-isolated slice execution. */
struct ProcOptions
{
    /** Worker process count; 0 means "match the simulation thread
     *  count" (filled in by the estimator). */
    int workers = 0;
    /** Per-slice wall-clock deadline; expiry SIGKILLs the worker. */
    int sliceTimeoutMs = 30000;
    /** Pool-wide process-failure budget before degrading to
     *  in-process execution. */
    int maxWorkerCrashes = 8;
    /** Recycle a worker after this many slices; 0 = never. */
    int maxSlicesPerWorker = 0;
    /** RLIMIT_AS cap applied inside each worker, MB; 0 = none. */
    int rssCapMb = 0;
    /** Respawn backoff: base doubles per consecutive crash, capped. */
    int backoffBaseMs = 50;
    int backoffMaxMs = 2000;
    /** Explicit worker binary; empty = resolveWorkerBin() search. */
    std::string workerBin;

    /** Throws ConfigError on out-of-range values. */
    void validate() const;
};

class WorkerPool
{
  public:
    /**
     * Resolves the worker binary eagerly (ConfigError if missing) and
     * ignores SIGPIPE process-wide so dead-pipe writes surface as
     * EPIPE. Children spawn lazily on first use of each slot.
     */
    WorkerPool(ProcOptions opts, WireSessionInit init);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run one slice in a worker process. Blocks while all slots are
     * busy or backing off. Throws the rethrown taxonomy error for
     * clean ERR frames (no crash charged), or WorkerError when the
     * process misbehaved (one crash charged; the slot backs off).
     * After degradation every call throws WorkerError immediately.
     */
    WireSliceResult runSlice(const SliceKey &key, uint64_t key_hash,
                             int attempt);

    /** True once the crash budget is spent and the pool has drained. */
    bool degraded() const;

    /** Drain all workers (BYE + bounded wait + SIGKILL). Idempotent. */
    void shutdown();

    int workerCount() const { return static_cast<int>(slots_.size()); }
    int crashes() const;
    uint64_t slicesRun() const;
    int respawns() const;

    /** Human-readable status block for failure reports. */
    std::string report() const;

  private:
    struct Slot
    {
        std::unique_ptr<Worker> worker;
        bool busy = false;
        /** Respawn backoff gate; checkout waits until it passes. */
        std::chrono::steady_clock::time_point notBefore =
            std::chrono::steady_clock::time_point::min();
    };

    /** Index of a checked-out slot; blocks on the condvar. */
    int checkout();
    void release(int idx, bool crashed);

    ProcOptions opts_;
    WireSessionInit init_;
    std::string bin_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Slot> slots_;
    bool degraded_ = false;
    bool shut_down_ = false;
    int crashes_ = 0;
    int respawns_ = 0;
    uint64_t slices_run_ = 0;
};

} // namespace save

#endif // SAVE_PROC_WORKER_POOL_H
