#include "proc/worker_pool.h"

#include <algorithm>
#include <csignal>
#include <sstream>

#include "util/error.h"
#include "util/logging.h"

namespace save {

namespace {

void
ignoreSigpipeOnce()
{
    static bool done = [] {
        std::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)done;
}

} // namespace

void
ProcOptions::validate() const
{
    if (workers < 0)
        throw ConfigError("--workers must be >= 0 (got " +
                          std::to_string(workers) + ")");
    if (sliceTimeoutMs <= 0)
        throw ConfigError("--worker-timeout-ms must be > 0 (got " +
                          std::to_string(sliceTimeoutMs) + ")");
    if (maxWorkerCrashes < 1)
        throw ConfigError("--max-worker-crashes must be >= 1 (got " +
                          std::to_string(maxWorkerCrashes) + ")");
    if (maxSlicesPerWorker < 0)
        throw ConfigError("--worker-max-slices must be >= 0 (got " +
                          std::to_string(maxSlicesPerWorker) + ")");
    if (rssCapMb < 0)
        throw ConfigError("--worker-rss-mb must be >= 0 (got " +
                          std::to_string(rssCapMb) + ")");
    if (backoffBaseMs <= 0 || backoffMaxMs < backoffBaseMs)
        throw ConfigError(
            "worker backoff must satisfy 0 < base <= max (got base " +
            std::to_string(backoffBaseMs) + ", max " +
            std::to_string(backoffMaxMs) + ")");
}

WorkerPool::WorkerPool(ProcOptions opts, WireSessionInit init)
    : opts_(opts), init_(init)
{
    opts_.validate();
    ignoreSigpipeOnce();
    bin_ = resolveWorkerBin(opts_.workerBin);
    init_.rssCapMb = opts_.rssCapMb;
    int n = std::max(1, opts_.workers);
    slots_.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        slots_[static_cast<size_t>(i)].worker =
            std::make_unique<Worker>(i, bin_, init_);
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

int
WorkerPool::checkout()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (degraded_ || shut_down_)
            throw WorkerError(
                WorkerError::Kind::Crash,
                "worker pool " +
                    std::string(degraded_ ? "degraded" : "shut down") +
                    " (" + std::to_string(crashes_) + " of " +
                    std::to_string(opts_.maxWorkerCrashes) +
                    " crash budget spent)");
        auto now = std::chrono::steady_clock::now();
        auto earliest = std::chrono::steady_clock::time_point::max();
        int pick = -1;
        for (size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].busy)
                continue;
            if (slots_[i].notBefore <= now) {
                pick = static_cast<int>(i);
                break;
            }
            earliest = std::min(earliest, slots_[i].notBefore);
        }
        if (pick >= 0) {
            slots_[static_cast<size_t>(pick)].busy = true;
            return pick;
        }
        // Either every slot is busy, or the free ones are all backing
        // off; sleep until something changes.
        if (earliest == std::chrono::steady_clock::time_point::max())
            cv_.wait(lk);
        else
            cv_.wait_until(lk, earliest);
    }
}

void
WorkerPool::release(int idx, bool crashed)
{
    Worker *recycle = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        Slot &slot = slots_[static_cast<size_t>(idx)];
        slot.busy = false;
        if (crashed) {
            ++crashes_;
            ++respawns_;
            // Exponential backoff with deterministic jitter: doubles
            // per consecutive crash of this slot, capped, plus up to
            // 25% skew so slots crashing in lockstep do not respawn
            // in lockstep.
            int streak =
                std::max(1, slot.worker->consecutiveCrashes());
            int64_t delay = opts_.backoffBaseMs;
            for (int i = 1;
                 i < streak && delay < opts_.backoffMaxMs; ++i)
                delay *= 2;
            delay = std::min<int64_t>(delay, opts_.backoffMaxMs);
            uint64_t mixed =
                (static_cast<uint64_t>(idx) * 0x9e3779b97f4a7c15ull) ^
                (static_cast<uint64_t>(crashes_) * 0xbf58476d1ce4e5b9ull);
            delay += static_cast<int64_t>(mixed % 1000) * delay / 4000;
            slot.notBefore = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(delay);
            if (crashes_ >= opts_.maxWorkerCrashes && !degraded_) {
                degraded_ = true;
                SAVE_WARN("worker pool: crash budget exhausted (",
                          crashes_, " process failures); draining and "
                          "degrading to in-process execution");
                // Busy slots are owned by the thread blocked inside
                // Worker::run(); kill()ing them here would close the
                // fds that thread is reading and reset its pid. Only
                // signal those children (interrupt) — the owner sees
                // EOF and closes/reaps in its own error path. Idle
                // slots are unowned and safe to reap in place.
                for (auto &s : slots_) {
                    if (!s.worker)
                        continue;
                    if (s.busy)
                        s.worker->interrupt();
                    else
                        s.worker->kill();
                }
            }
        } else {
            slot.notBefore =
                std::chrono::steady_clock::time_point::min();
            if (opts_.maxSlicesPerWorker > 0 && slot.worker->alive() &&
                slot.worker->slicesDone() >= opts_.maxSlicesPerWorker) {
                SAVE_INFORM("worker pool: recycling slot ", idx,
                            " after ", slot.worker->slicesDone(),
                            " slices");
                // Drain outside the lock: the BYE wait can block up
                // to 500 ms and must not stall every other thread's
                // checkout/release. Keep the slot checked out while
                // we drain so nobody else touches the Worker.
                slot.busy = true;
                recycle = slot.worker.get();
            }
        }
        cv_.notify_all();
    }
    if (recycle) {
        recycle->shutdown();
        std::lock_guard<std::mutex> lk(mu_);
        slots_[static_cast<size_t>(idx)].busy = false;
        ++respawns_;
        cv_.notify_all();
    }
}

WireSliceResult
WorkerPool::runSlice(const SliceKey &key, uint64_t key_hash,
                     int attempt)
{
    int idx = checkout();
    Worker &w = *slots_[static_cast<size_t>(idx)].worker;
    try {
        WireSliceResult res =
            w.run(key, key_hash, attempt, opts_.sliceTimeoutMs);
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++slices_run_;
        }
        release(idx, /*crashed=*/false);
        return res;
    } catch (const WorkerError &) {
        release(idx, /*crashed=*/true);
        throw;
    } catch (...) {
        // Clean ERR frame from a healthy worker: no crash charged.
        release(idx, /*crashed=*/false);
        throw;
    }
}

bool
WorkerPool::degraded() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return degraded_;
}

void
WorkerPool::shutdown()
{
    std::vector<Worker *> idle;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (shut_down_)
            return;
        shut_down_ = true;
        for (auto &s : slots_) {
            if (!s.worker)
                continue;
            // Same ownership rule as degradation: a busy slot's fds
            // belong to the thread that checked it out, so only
            // signal its child; that thread closes and reaps on EOF.
            if (s.busy)
                s.worker->interrupt();
            else
                idle.push_back(s.worker.get());
        }
        cv_.notify_all();
    }
    // shut_down_ makes checkout() throw, so the idle slots can no
    // longer be claimed: this thread owns them and can run the
    // blocking BYE drain without holding the pool lock.
    for (Worker *w : idle)
        w->shutdown();
}

int
WorkerPool::crashes() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return crashes_;
}

uint64_t
WorkerPool::slicesRun() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return slices_run_;
}

int
WorkerPool::respawns() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return respawns_;
}

std::string
WorkerPool::report() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::ostringstream os;
    os << "worker pool: " << slots_.size() << " worker(s), "
       << slices_run_ << " slice(s) out-of-process, " << crashes_
       << " process failure(s), " << respawns_ << " respawn(s)";
    if (degraded_)
        os << "; DEGRADED to in-process execution after exhausting the "
           << opts_.maxWorkerCrashes << "-crash budget";
    return os.str();
}

} // namespace save
