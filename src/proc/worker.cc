#include "proc/worker.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/error.h"
#include "util/logging.h"
#include "util/posix_io.h"
#include "util/runtime_options.h"

namespace save {

namespace {

/** Handshake allowance: generous, but bounded — a worker that cannot
 *  say HACK within this window is wedged or not our binary. */
constexpr int kHandshakeTimeoutMs = 15000;

bool
executable(const std::string &path)
{
    return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

std::string
selfExeDir()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return std::filesystem::path(buf).parent_path().string();
}

} // namespace

std::string
resolveWorkerBin(const std::string &explicit_path)
{
    if (!explicit_path.empty()) {
        if (!executable(explicit_path))
            throw ConfigError("worker binary '" + explicit_path +
                              "' does not exist or is not executable");
        return explicit_path;
    }
    const std::string env = RuntimeOptions::fromEnv().workerBin;
    if (!env.empty()) {
        if (!executable(env))
            throw ConfigError("SAVE_WORKER_BIN='" + env +
                              "' does not exist or is not executable");
        return env;
    }
    std::string dir = selfExeDir();
    if (!dir.empty()) {
        for (const char *rel : {"/save-worker", "/../bench/save-worker"}) {
            std::string cand = dir + rel;
            if (executable(cand))
                return cand;
        }
    }
    throw ConfigError(
        "cannot locate the save-worker binary: pass --worker-bin=PATH "
        "or set SAVE_WORKER_BIN (expected a sibling of " +
        (dir.empty() ? std::string("the running executable") : dir) +
        " or ../bench/save-worker)");
}

Worker::Worker(int id, std::string worker_bin, WireSessionInit init)
    : id_(id), bin_(std::move(worker_bin)), init_(init)
{
}

Worker::~Worker()
{
    shutdown();
}

void
Worker::spawn()
{
    // O_CLOEXEC: spawn() runs concurrently from several pool threads,
    // and a sibling slot forking between our pipe() and our
    // parent-side close would otherwise inherit from_child[1] across
    // its exec — keeping this worker's stdout pipe open so the parent
    // never sees EOF when the worker crashes, delaying crash
    // detection to the full slice deadline. dup2 in our own child
    // clears CLOEXEC on the stdin/stdout copies it needs.
    int to_child[2];   // parent writes -> child stdin
    int from_child[2]; // child stdout -> parent reads
    if (::pipe2(to_child, O_CLOEXEC) != 0)
        throw WorkerError(WorkerError::Kind::Spawn,
                          std::string("pipe: ") + std::strerror(errno));
    if (::pipe2(from_child, O_CLOEXEC) != 0) {
        ::close(to_child[0]);
        ::close(to_child[1]);
        throw WorkerError(WorkerError::Kind::Spawn,
                          std::string("pipe: ") + std::strerror(errno));
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]})
            ::close(fd);
        throw WorkerError(WorkerError::Kind::Spawn,
                          std::string("fork: ") + std::strerror(errno));
    }

    if (pid == 0) {
        // Child: requests on stdin, responses on stdout, logs on the
        // inherited stderr.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        for (int fd : {to_child[0], to_child[1], from_child[0],
                       from_child[1]})
            ::close(fd);
        ::execl(bin_.c_str(), bin_.c_str(), static_cast<char *>(nullptr));
        // exec failed: report on stderr and die with the shell's
        // convention for "command not runnable".
        std::fprintf(stderr, "save-worker: cannot exec %s: %s\n",
                     bin_.c_str(), std::strerror(errno));
        ::_exit(kWorkerExitExec);
    }

    // Parent.
    ::close(to_child[0]);
    ::close(from_child[1]);
    pid_ = pid;
    to_child_ = to_child[1];
    from_child_ = from_child[0];
    slices_done_ = 0;

    // Handshake: ship the session configuration, wait for the ack.
    try {
        if (!wireWrite(to_child_, kWireHello, 0,
                       wireEncodeSessionInit(init_)))
            throw triageDeath("rejected the session hello", false);
        WireFrame ack;
        WireRead st = wireRead(from_child_, ack, kHandshakeTimeoutMs);
        if (st == WireRead::Timeout) {
            kill();
            throw WorkerError(WorkerError::Kind::Spawn,
                              "worker did not acknowledge the session "
                              "hello within " +
                                  std::to_string(kHandshakeTimeoutMs) +
                                  " ms");
        }
        if (st == WireRead::Eof)
            throw triageDeath("died during the handshake", false);
        if (ack.fourcc == kWireError)
            wireThrowError(wireDecodeError(ack.payload));
        if (ack.fourcc != kWireHelloAck || ack.arg != kWireVersion) {
            kill();
            throw WorkerError(WorkerError::Kind::Spawn,
                              "unexpected handshake reply (protocol "
                              "mismatch?)");
        }
    } catch (const TraceError &e) {
        kill();
        throw WorkerError(WorkerError::Kind::Spawn,
                          std::string("handshake: ") + e.what());
    }
    SAVE_INFORM("worker slot ", id_, ": spawned pid ", pid, " (",
                bin_, ")");
}

WireSliceResult
Worker::run(const SliceKey &key, uint64_t key_hash, int attempt,
            int timeout_ms)
{
    if (!alive())
        spawn();

    WireSliceRequest req;
    req.key = key;
    req.keyHash = key_hash;
    if (!wireWrite(to_child_, kWireRequest,
                   static_cast<uint32_t>(attempt),
                   wireEncodeSliceRequest(req)))
        throw triageDeath("is gone (request write failed)", false);

    WireFrame frame;
    WireRead st;
    try {
        st = wireRead(from_child_, frame, timeout_ms);
    } catch (const TraceError &e) {
        // Corrupt frame: the stream is unusable; put the child down.
        kill();
        ++consecutive_crashes_;
        throw WorkerError(WorkerError::Kind::Protocol, e.what());
    }

    switch (st) {
    case WireRead::Timeout: {
        kill();
        ++consecutive_crashes_;
        throw WorkerError(
            WorkerError::Kind::Timeout,
            "slice exceeded its " + std::to_string(timeout_ms) +
                " ms deadline; SIGKILLed worker slot " +
                std::to_string(id_));
    }
    case WireRead::Eof:
        throw triageDeath("died mid-slice", false);
    case WireRead::Ok:
        break;
    }

    if (frame.fourcc == kWireError) {
        WireErrorInfo err;
        try {
            err = wireDecodeError(frame.payload);
        } catch (const TraceError &e) {
            // Malformed ERR payload is protocol corruption, not a
            // clean in-worker failure: same treatment as a corrupt
            // result frame.
            kill();
            ++consecutive_crashes_;
            throw WorkerError(WorkerError::Kind::Protocol, e.what());
        }
        // Clean in-worker failure: the child survives and keeps its
        // slot; rethrow with the original taxonomy type.
        ++slices_done_;
        consecutive_crashes_ = 0;
        wireThrowError(err);
    }
    if (frame.fourcc != kWireResult) {
        kill();
        ++consecutive_crashes_;
        throw WorkerError(WorkerError::Kind::Protocol,
                          "unexpected frame kind in response");
    }
    WireSliceResult res;
    try {
        res = wireDecodeSliceResult(frame.payload);
    } catch (const TraceError &e) {
        kill();
        ++consecutive_crashes_;
        throw WorkerError(WorkerError::Kind::Protocol, e.what());
    }
    ++slices_done_;
    consecutive_crashes_ = 0;
    return res;
}

WorkerError
Worker::triageDeath(const char *verb, bool killed_by_parent)
{
    pid_t pid = pid_;
    int status = 0;
    if (pid > 0)
        ::waitpid(pid, &status, 0);
    // Close our pipe ends and mark the slot dead.
    if (to_child_ >= 0)
        ::close(to_child_);
    if (from_child_ >= 0)
        ::close(from_child_);
    to_child_ = from_child_ = -1;
    pid_ = -1;
    ++consecutive_crashes_;

    std::string what = "worker slot " + std::to_string(id_) + " (pid " +
                       std::to_string(pid) + ") " + verb;
    WorkerError::Kind kind = WorkerError::Kind::Crash;
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        what += ": killed by signal " + std::to_string(sig) + " (" +
                ::strsignal(sig) + ")";
        if (sig == SIGKILL && !killed_by_parent)
            // We did not send it: the kernel OOM killer (or an
            // operator) did. Either way memory/external pressure, not
            // a simulator bug.
            kind = WorkerError::Kind::Oom;
    } else if (WIFEXITED(status)) {
        int code = WEXITSTATUS(status);
        what += ": exited with status " + std::to_string(code);
        if (code == kWorkerExitOom) {
            kind = WorkerError::Kind::Oom;
            what += " (out of memory)";
        } else if (code == kWorkerExitExec) {
            kind = WorkerError::Kind::Spawn;
            what += " (cannot exec the worker binary)";
        } else {
            kind = WorkerError::Kind::Exit;
        }
    }
    return WorkerError(kind, what);
}

void
Worker::kill()
{
    pid_t pid = pid_.load(std::memory_order_relaxed);
    if (pid <= 0)
        return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (to_child_ >= 0)
        ::close(to_child_);
    if (from_child_ >= 0)
        ::close(from_child_);
    to_child_ = from_child_ = -1;
    pid_ = -1;
}

void
Worker::interrupt()
{
    // Foreign-thread path (pool degradation/shutdown): signal only.
    // No fd close, no reap — the owning thread is blocked reading the
    // pipe, observes EOF once the child dies, and runs triageDeath to
    // close and reap in its own error path.
    pid_t pid = pid_.load(std::memory_order_relaxed);
    if (pid > 0)
        ::kill(pid, SIGKILL);
}

void
Worker::shutdown()
{
    pid_t pid = pid_.load(std::memory_order_relaxed);
    if (pid <= 0)
        return;
    // Graceful: ask, give it a moment, then insist.
    wireWrite(to_child_, kWireBye, 0, {});
    ::close(to_child_);
    to_child_ = -1;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(500);
    for (;;) {
        int status = 0;
        pid_t r = ::waitpid(pid, &status, WNOHANG);
        if (r == pid || (r < 0 && errno == ECHILD)) {
            pid_ = -1;
            break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, &status, 0);
            pid_ = -1;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (from_child_ >= 0)
        ::close(from_child_);
    from_child_ = -1;
}

} // namespace save
