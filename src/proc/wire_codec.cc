#include "proc/wire_codec.h"

#include <chrono>
#include <cstring>

#include "util/error.h"
#include "util/posix_io.h"

namespace save {

namespace {

bool
knownFourcc(uint32_t fourcc)
{
    return fourcc == kWireHello || fourcc == kWireHelloAck ||
           fourcc == kWireRequest || fourcc == kWireResult ||
           fourcc == kWireError || fourcc == kWireBye;
}

} // namespace

bool
wireWrite(int fd, uint32_t fourcc, uint32_t arg,
          const std::vector<uint8_t> &payload)
{
    return frameWriteFd(fd, fourcc, arg, payload);
}

WireRead
wireRead(int fd, WireFrame &frame, int timeout_ms)
{
    return frameReadFd(fd, frame, timeout_ms, knownFourcc,
                       kWireMaxPayload, "wire");
}

std::vector<uint8_t>
wireEncodeSessionInit(const WireSessionInit &s)
{
    std::vector<uint8_t> out;
    tracePutU32(out, kWireVersion);
    tracePutU64(out, s.configHash);
    framePutStruct(out, s.mcfg);
    framePutStruct(out, s.scfg);
    tracePutU32(out, static_cast<uint32_t>(s.tiles));
    tracePutU32(out, static_cast<uint32_t>(s.cores));
    tracePutU64(out, s.seed);
    tracePutU32(out, static_cast<uint32_t>(s.rssCapMb));
    framePutString(out, s.cacheDir);
    tracePutU64(out, s.cacheMaxBytes);
    return out;
}

WireSessionInit
wireDecodeSessionInit(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    uint32_t version = traceGetU32(p, end);
    if (version != kWireVersion)
        throw TraceError("wire: protocol version " +
                         std::to_string(version) + " != expected " +
                         std::to_string(kWireVersion));
    WireSessionInit s;
    s.configHash = traceGetU64(p, end);
    s.mcfg = frameGetStruct<MachineConfig>(p, end, "MachineConfig");
    s.scfg = frameGetStruct<SaveConfig>(p, end, "SaveConfig");
    s.tiles = static_cast<int>(traceGetU32(p, end));
    s.cores = static_cast<int>(traceGetU32(p, end));
    s.seed = traceGetU64(p, end);
    s.rssCapMb = static_cast<int>(traceGetU32(p, end));
    s.cacheDir = frameGetString(p, end);
    s.cacheMaxBytes = traceGetU64(p, end);
    if (p != end)
        throw TraceError("wire: trailing bytes after session init");
    return s;
}

std::vector<uint8_t>
wireEncodeSliceRequest(const WireSliceRequest &r)
{
    std::vector<uint8_t> out;
    framePutStruct(out, r.key);
    tracePutU64(out, r.keyHash);
    return out;
}

WireSliceRequest
wireDecodeSliceRequest(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    WireSliceRequest r;
    r.key = frameGetStruct<SliceKey>(p, end, "SliceKey");
    r.keyHash = traceGetU64(p, end);
    if (p != end)
        throw TraceError("wire: trailing bytes after slice request");
    return r;
}

std::vector<uint8_t>
wireEncodeSliceResult(const WireSliceResult &r)
{
    std::vector<uint8_t> out;
    tracePutF64(out, r.timeNs);
    tracePutU64(out, r.cycles);
    tracePutF64(out, r.coreGhz);
    tracePutU32(out, static_cast<uint32_t>(r.stats.size()));
    for (const auto &[name, value] : r.stats) {
        framePutString(out, name);
        tracePutF64(out, value);
    }
    return out;
}

WireSliceResult
wireDecodeSliceResult(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    WireSliceResult r;
    r.timeNs = traceGetF64(p, end);
    r.cycles = traceGetU64(p, end);
    r.coreGhz = traceGetF64(p, end);
    uint32_t n = traceGetU32(p, end);
    // n is untrusted: each entry needs at least a 4-byte name length
    // plus an 8-byte value, so bound it by the remaining payload
    // before reserving — a corrupt count must be a TraceError, not a
    // multi-GB allocation attempt in the parent.
    if (n > static_cast<size_t>(end - p) / 12)
        throw TraceError("wire: slice-result stat count " +
                         std::to_string(n) +
                         " exceeds remaining payload");
    r.stats.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::string name = frameGetString(p, end);
        double value = traceGetF64(p, end);
        r.stats.emplace_back(std::move(name), value);
    }
    if (p != end)
        throw TraceError("wire: trailing bytes after slice result");
    return r;
}

std::vector<uint8_t>
wireEncodeError(const WireErrorInfo &e)
{
    std::vector<uint8_t> out;
    out.push_back(static_cast<uint8_t>(e.kind));
    framePutString(out, e.what);
    return out;
}

WireErrorInfo
wireDecodeError(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    if (p == end)
        throw TraceError("wire: empty error payload");
    WireErrorInfo e;
    e.kind = static_cast<WireErrorKind>(*p++);
    e.what = frameGetString(p, end);
    if (p != end)
        throw TraceError("wire: trailing bytes after error frame");
    return e;
}

void
wireThrowError(const WireErrorInfo &e)
{
    switch (e.kind) {
    case WireErrorKind::Config:
        throw ConfigError(e.what);
    case WireErrorKind::Trace:
        throw TraceError(e.what);
    case WireErrorKind::Deadlock:
        throw DeadlockError(e.what, "");
    case WireErrorKind::Cache:
        throw CacheError(e.what, "");
    case WireErrorKind::Audit:
        throw AuditError(e.what, "");
    case WireErrorKind::Oom:
        throw WorkerError(WorkerError::Kind::Oom, e.what);
    case WireErrorKind::Generic:
        break;
    }
    throw SimError(e.what);
}

} // namespace save
