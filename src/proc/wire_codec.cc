#include "proc/wire_codec.h"

#include <chrono>
#include <cstring>

#include "util/error.h"
#include "util/posix_io.h"

namespace save {

namespace {

void
putBytes(std::vector<uint8_t> &out, const void *data, size_t n)
{
    if (n == 0)
        return;
    const uint8_t *p = static_cast<const uint8_t *>(data);
    out.insert(out.end(), p, p + n);
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    tracePutU32(out, static_cast<uint32_t>(s.size()));
    putBytes(out, s.data(), s.size());
}

std::string
getString(const uint8_t *&p, const uint8_t *end)
{
    uint32_t n = traceGetU32(p, end);
    if (static_cast<size_t>(end - p) < n)
        throw TraceError("wire: string runs past payload end");
    std::string s(reinterpret_cast<const char *>(p), n);
    p += n;
    return s;
}

/** Raw bytes of a trivially-copyable struct, guarded by its size. */
template <typename T>
void
putStruct(std::vector<uint8_t> &out, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire structs travel as raw bytes");
    tracePutU32(out, static_cast<uint32_t>(sizeof(T)));
    putBytes(out, &v, sizeof(T));
}

template <typename T>
T
getStruct(const uint8_t *&p, const uint8_t *end, const char *name)
{
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t n = traceGetU32(p, end);
    if (n != sizeof(T))
        throw TraceError(std::string("wire: ") + name + " size " +
                         std::to_string(n) + " != expected " +
                         std::to_string(sizeof(T)) +
                         " (parent/worker built from different trees?)");
    if (static_cast<size_t>(end - p) < n)
        throw TraceError(std::string("wire: ") + name +
                         " runs past payload end");
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += n;
    return v;
}

/** Absolute deadline helper: remaining ms, clamped to >= 0. */
int
remainingMs(std::chrono::steady_clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

/**
 * Read exactly n bytes before the deadline. Returns false on clean
 * EOF at offset 0 when eof_ok; throws TraceError on mid-buffer EOF or
 * a hard error; throws WireReadTimeout-by-return via the bool+status
 * plumbing of the caller (we signal timeout with a sentinel).
 */
enum class TimedRead
{
    Ok,
    Eof,
    Timeout
};

TimedRead
readTimed(int fd, void *buf, size_t n, bool infinite,
          std::chrono::steady_clock::time_point deadline, bool eof_ok)
{
    size_t done = 0;
    while (done < n) {
        int wait = infinite ? -1 : remainingMs(deadline);
        int ready = pollReadable(fd, wait);
        if (ready < 0)
            throw TraceError(std::string("wire: poll failed: ") +
                             std::strerror(errno));
        if (ready == 0)
            return TimedRead::Timeout;
        ssize_t r = ::read(fd, static_cast<char *>(buf) + done,
                           n - done);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw TraceError(std::string("wire: read failed: ") +
                             std::strerror(errno));
        }
        if (r == 0) {
            if (done == 0 && eof_ok)
                return TimedRead::Eof;
            throw TraceError("wire: EOF inside a frame (peer died "
                             "mid-message)");
        }
        done += static_cast<size_t>(r);
    }
    return TimedRead::Ok;
}

bool
knownFourcc(uint32_t fourcc)
{
    return fourcc == kWireHello || fourcc == kWireHelloAck ||
           fourcc == kWireRequest || fourcc == kWireResult ||
           fourcc == kWireError || fourcc == kWireBye;
}

} // namespace

bool
wireWrite(int fd, uint32_t fourcc, uint32_t arg,
          const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> buf;
    buf.reserve(kTraceChunkHeaderBytes + payload.size());
    tracePutU32(buf, fourcc);
    tracePutU32(buf, arg);
    tracePutU64(buf, payload.size());
    tracePutU32(buf, payload.empty()
                         ? traceCrc32(nullptr, 0)
                         : traceCrc32(payload.data(), payload.size()));
    putBytes(buf, payload.data(), payload.size());
    return writeFull(fd, buf.data(), buf.size()) ==
           static_cast<ssize_t>(buf.size());
}

WireRead
wireRead(int fd, WireFrame &frame, int timeout_ms)
{
    bool infinite = timeout_ms < 0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(infinite ? 0 : timeout_ms);

    uint8_t header[kTraceChunkHeaderBytes];
    switch (readTimed(fd, header, sizeof(header), infinite, deadline,
                      /*eof_ok=*/true)) {
    case TimedRead::Eof:
        return WireRead::Eof;
    case TimedRead::Timeout:
        return WireRead::Timeout;
    case TimedRead::Ok:
        break;
    }

    const uint8_t *p = header;
    const uint8_t *end = header + sizeof(header);
    frame.fourcc = traceGetU32(p, end);
    frame.arg = traceGetU32(p, end);
    uint64_t len = traceGetU64(p, end);
    uint32_t crc = traceGetU32(p, end);

    if (!knownFourcc(frame.fourcc))
        throw TraceError("wire: unknown frame fourcc 0x" +
                         [](uint32_t f) {
                             char b[16];
                             std::snprintf(b, sizeof(b), "%08x", f);
                             return std::string(b);
                         }(frame.fourcc) +
                         " (corrupt or misaligned stream)");
    if (len > kWireMaxPayload)
        throw TraceError("wire: frame payload length " +
                         std::to_string(len) + " exceeds the " +
                         std::to_string(kWireMaxPayload) +
                         "-byte cap (corrupt length field)");

    frame.payload.resize(len);
    if (len > 0) {
        switch (readTimed(fd, frame.payload.data(), len, infinite,
                          deadline, /*eof_ok=*/false)) {
        case TimedRead::Timeout:
            return WireRead::Timeout;
        default:
            break;
        }
    }
    uint32_t got = frame.payload.empty()
                       ? traceCrc32(nullptr, 0)
                       : traceCrc32(frame.payload.data(),
                                    frame.payload.size());
    if (got != crc)
        throw TraceError("wire: frame payload CRC mismatch (stored 0x" +
                         std::to_string(crc) + ", computed 0x" +
                         std::to_string(got) + ")");
    return WireRead::Ok;
}

std::vector<uint8_t>
wireEncodeSessionInit(const WireSessionInit &s)
{
    std::vector<uint8_t> out;
    tracePutU32(out, kWireVersion);
    tracePutU64(out, s.configHash);
    putStruct(out, s.mcfg);
    putStruct(out, s.scfg);
    tracePutU32(out, static_cast<uint32_t>(s.tiles));
    tracePutU32(out, static_cast<uint32_t>(s.cores));
    tracePutU64(out, s.seed);
    tracePutU32(out, static_cast<uint32_t>(s.rssCapMb));
    putString(out, s.cacheDir);
    tracePutU64(out, s.cacheMaxBytes);
    return out;
}

WireSessionInit
wireDecodeSessionInit(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    uint32_t version = traceGetU32(p, end);
    if (version != kWireVersion)
        throw TraceError("wire: protocol version " +
                         std::to_string(version) + " != expected " +
                         std::to_string(kWireVersion));
    WireSessionInit s;
    s.configHash = traceGetU64(p, end);
    s.mcfg = getStruct<MachineConfig>(p, end, "MachineConfig");
    s.scfg = getStruct<SaveConfig>(p, end, "SaveConfig");
    s.tiles = static_cast<int>(traceGetU32(p, end));
    s.cores = static_cast<int>(traceGetU32(p, end));
    s.seed = traceGetU64(p, end);
    s.rssCapMb = static_cast<int>(traceGetU32(p, end));
    s.cacheDir = getString(p, end);
    s.cacheMaxBytes = traceGetU64(p, end);
    if (p != end)
        throw TraceError("wire: trailing bytes after session init");
    return s;
}

std::vector<uint8_t>
wireEncodeSliceRequest(const WireSliceRequest &r)
{
    std::vector<uint8_t> out;
    putStruct(out, r.key);
    tracePutU64(out, r.keyHash);
    return out;
}

WireSliceRequest
wireDecodeSliceRequest(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    WireSliceRequest r;
    r.key = getStruct<SliceKey>(p, end, "SliceKey");
    r.keyHash = traceGetU64(p, end);
    if (p != end)
        throw TraceError("wire: trailing bytes after slice request");
    return r;
}

std::vector<uint8_t>
wireEncodeSliceResult(const WireSliceResult &r)
{
    std::vector<uint8_t> out;
    tracePutF64(out, r.timeNs);
    tracePutU64(out, r.cycles);
    tracePutF64(out, r.coreGhz);
    tracePutU32(out, static_cast<uint32_t>(r.stats.size()));
    for (const auto &[name, value] : r.stats) {
        putString(out, name);
        tracePutF64(out, value);
    }
    return out;
}

WireSliceResult
wireDecodeSliceResult(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    WireSliceResult r;
    r.timeNs = traceGetF64(p, end);
    r.cycles = traceGetU64(p, end);
    r.coreGhz = traceGetF64(p, end);
    uint32_t n = traceGetU32(p, end);
    // n is untrusted: each entry needs at least a 4-byte name length
    // plus an 8-byte value, so bound it by the remaining payload
    // before reserving — a corrupt count must be a TraceError, not a
    // multi-GB allocation attempt in the parent.
    if (n > static_cast<size_t>(end - p) / 12)
        throw TraceError("wire: slice-result stat count " +
                         std::to_string(n) +
                         " exceeds remaining payload");
    r.stats.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::string name = getString(p, end);
        double value = traceGetF64(p, end);
        r.stats.emplace_back(std::move(name), value);
    }
    if (p != end)
        throw TraceError("wire: trailing bytes after slice result");
    return r;
}

std::vector<uint8_t>
wireEncodeError(const WireErrorInfo &e)
{
    std::vector<uint8_t> out;
    out.push_back(static_cast<uint8_t>(e.kind));
    putString(out, e.what);
    return out;
}

WireErrorInfo
wireDecodeError(const std::vector<uint8_t> &payload)
{
    const uint8_t *p = payload.data();
    const uint8_t *end = p + payload.size();
    if (p == end)
        throw TraceError("wire: empty error payload");
    WireErrorInfo e;
    e.kind = static_cast<WireErrorKind>(*p++);
    e.what = getString(p, end);
    if (p != end)
        throw TraceError("wire: trailing bytes after error frame");
    return e;
}

void
wireThrowError(const WireErrorInfo &e)
{
    switch (e.kind) {
    case WireErrorKind::Config:
        throw ConfigError(e.what);
    case WireErrorKind::Trace:
        throw TraceError(e.what);
    case WireErrorKind::Deadlock:
        throw DeadlockError(e.what, "");
    case WireErrorKind::Cache:
        throw CacheError(e.what, "");
    case WireErrorKind::Audit:
        throw AuditError(e.what, "");
    case WireErrorKind::Oom:
        throw WorkerError(WorkerError::Kind::Oom, e.what);
    case WireErrorKind::Generic:
        break;
    }
    throw SimError(e.what);
}

} // namespace save
