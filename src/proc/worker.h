/**
 * @file
 * Parent-side handle for one sandboxed slice worker process.
 *
 * A Worker owns the lifecycle of one `save-worker` child: fork/exec
 * with request/response pipes on the child's stdin/stdout, the HELO
 * handshake that ships the simulation configuration, per-slice
 * request/response exchange with a parent-enforced wall-clock
 * deadline (SIGKILL on expiry — the only cure for a livelocked host
 * loop that the in-process retirement watchdog cannot see), and
 * exit-status triage when the child dies: clean error frames,
 * termination signals, deadline kills, and OOM-style deaths are told
 * apart and thrown as WorkerError with the matching kind.
 *
 * Workers spawn lazily and keep per-slot respawn state (consecutive
 * crash count) so the pool's exponential backoff is per-slot, not
 * global. See worker_pool.h for the pool policy on top.
 */

#ifndef SAVE_PROC_WORKER_H
#define SAVE_PROC_WORKER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <sys/types.h>

#include "proc/wire_codec.h"
#include "util/error.h"

namespace save {

/**
 * Resolve the save-worker binary path: `explicit_path` if non-empty,
 * else the SAVE_WORKER_BIN environment variable, else a `save-worker`
 * sibling of the running executable, else `../bench/save-worker`
 * relative to it (tests live in build/tests, the worker in
 * build/bench). Throws ConfigError when nothing executable is found.
 */
std::string resolveWorkerBin(const std::string &explicit_path);

/** One child process slot. Not thread-safe: the pool checks a Worker
 *  out to exactly one thread at a time. The single exception is
 *  interrupt(), which only signals the child and may be called from
 *  any thread (pool degradation/shutdown). */
class Worker
{
  public:
    /** `init` is the HELO session configuration every (re)spawn
     *  ships; `worker_bin` must already be resolved. */
    Worker(int id, std::string worker_bin, WireSessionInit init);
    ~Worker();

    Worker(const Worker &) = delete;
    Worker &operator=(const Worker &) = delete;

    /**
     * Run one slice, spawning (or respawning) the child first if
     * needed. `attempt` is the parent's 1-based retry attempt, which
     * workers feed to the stateless fault injector. Throws:
     *  - WorkerError (Crash/Timeout/Oom/Exit/Protocol/Spawn) when the
     *    process misbehaved — the caller should count it as a crash;
     *  - the rethrown taxonomy error when the worker sent a clean ERR
     *    frame (the child is still healthy and stays running).
     */
    WireSliceResult run(const SliceKey &key, uint64_t key_hash,
                        int attempt, int timeout_ms);

    /** True while a child is believed alive. */
    bool alive() const { return pid() > 0; }
    pid_t pid() const
    {
        return pid_.load(std::memory_order_relaxed);
    }
    int id() const { return id_; }

    /** Slices completed by the current child (recycling counter). */
    int slicesDone() const { return slices_done_; }

    /** Consecutive process-level failures; reset by any success. */
    int consecutiveCrashes() const { return consecutive_crashes_; }

    /** Ask a live child to drain: BYE, bounded wait, then SIGKILL. */
    void shutdown();

    /** SIGKILL + reap immediately (deadline expiry, pool drain).
     *  Owner-only: closes the pipe fds. */
    void kill();

    /**
     * SIGKILL the child without touching fds or reaping — the only
     * member safe to call from a thread that does NOT own this
     * Worker. The owning thread (blocked in run()) observes EOF on
     * the pipe and does the close/reap in its own error path.
     */
    void interrupt();

  private:
    /** Fork/exec + HELO/HACK handshake. Throws WorkerError(Spawn). */
    void spawn();

    /** Reap the child and build the triage message for `verb`. */
    WorkerError triageDeath(const char *verb, bool killed_by_parent);

    int id_;
    std::string bin_;
    WireSessionInit init_;

    /** Atomic so interrupt() can read it from a foreign thread while
     *  the owner respawns or reaps; all writes stay owner-only. */
    std::atomic<pid_t> pid_{-1};
    int to_child_ = -1;   ///< parent write end -> child stdin
    int from_child_ = -1; ///< parent read end <- child stdout
    int slices_done_ = 0;
    int consecutive_crashes_ = 0;
};

} // namespace save

#endif // SAVE_PROC_WORKER_H
