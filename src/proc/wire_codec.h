/**
 * @file
 * Length-prefixed, CRC-framed wire protocol between the sweep parent
 * and its sandboxed slice worker processes (DESIGN.md §12).
 *
 * Framing follows the `.savtrc` chunk conventions (src/trace/
 * trace_format.h): every frame is
 *
 *   u32 fourcc, u32 arg, u64 payloadBytes, u32 crc32(payload), payload
 *
 * all little-endian, with the same CRC-32 as the trace format. Any
 * header or payload corruption — truncated frame, flipped bit,
 * unknown fourcc, oversized length — surfaces as TraceError on the
 * reading side, never as a hang or a garbage decode: reads are
 * deadline-bounded (poll + EINTR-safe readFull) and every payload
 * byte is covered by the CRC.
 *
 * Session shape (the embryo of the save-serve RPC surface):
 *
 *   parent -> worker   HELO  (configs: machine, SAVE features,
 *                             estimator knobs, RSS cap)
 *   worker -> parent   HACK  (version + pid acknowledgment)
 *   parent -> worker   REQ   (slice key + key hash; arg = attempt)
 *   worker -> parent   RES   (time/cycles/frequency + full stat map)
 *                   or ERR   (SimError-taxonomy kind + message)
 *   parent -> worker   BYE   (graceful drain; worker exits 0)
 *
 * Config structs travel as raw bytes of the trivially-copyable
 * MachineConfig/SaveConfig/SliceKey, guarded by struct-size fields and
 * the protocol version: parent and worker are built from one source
 * tree, and a size or version mismatch is rejected cleanly instead of
 * being misinterpreted.
 */

#ifndef SAVE_PROC_WIRE_CODEC_H
#define SAVE_PROC_WIRE_CODEC_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dnn/slice_batch.h"
#include "sim/config.h"
#include "trace/trace_format.h"

namespace save {

/** Protocol version; bumped on any frame-layout change.
 *  v2: session init carries the result-store directory and size cap so
 *  workers persist their own results into the shared store. */
constexpr uint32_t kWireVersion = 2;

/** Frame kinds (fourcc, little-endian first byte first). */
constexpr uint32_t kWireHello = traceFourcc('H', 'E', 'L', 'O');
constexpr uint32_t kWireHelloAck = traceFourcc('H', 'A', 'C', 'K');
constexpr uint32_t kWireRequest = traceFourcc('R', 'E', 'Q', ' ');
constexpr uint32_t kWireResult = traceFourcc('R', 'E', 'S', ' ');
constexpr uint32_t kWireError = traceFourcc('E', 'R', 'R', ' ');
constexpr uint32_t kWireBye = traceFourcc('B', 'Y', 'E', ' ');

/** Upper bound on a frame payload; larger lengths are treated as
 *  corruption rather than allocated. */
constexpr uint64_t kWireMaxPayload = 64ull << 20;

/** Exit codes the worker uses for conditions it can still report. */
constexpr int kWorkerExitOk = 0;
constexpr int kWorkerExitConfig = 2;
constexpr int kWorkerExitOom = 24;
constexpr int kWorkerExitExec = 127;

/** One decoded frame (the shared util/frame.h record). */
using WireFrame = Frame;

/** Outcome of a deadline-bounded frame read: Ok, Eof (peer closed the
 *  pipe at a frame boundary), or Timeout. */
using WireRead = FrameRead;

/**
 * Write one frame. Returns false with errno preserved on any write
 * failure (EPIPE when the peer is dead and SIGPIPE is ignored).
 */
bool wireWrite(int fd, uint32_t fourcc, uint32_t arg,
               const std::vector<uint8_t> &payload);

/**
 * Read one frame within `timeout_ms` (< 0 waits forever). Returns
 * Ok/Eof/Timeout; throws TraceError on corruption: CRC mismatch,
 * unknown fourcc, payload length past kWireMaxPayload, EOF inside a
 * frame, or a hard read error.
 */
WireRead wireRead(int fd, WireFrame &frame, int timeout_ms);

/** HELO payload: everything a worker needs to simulate slices. */
struct WireSessionInit
{
    MachineConfig mcfg;
    SaveConfig scfg; ///< the SAVE-on feature set; workers derive
                     ///< SaveConfig::baseline() for saveOn == 0 keys
    int tiles = 1;
    int cores = 1;
    uint64_t seed = 0;
    /** RLIMIT_AS cap for the worker, MB; 0 = none. */
    int rssCapMb = 0;
    /** Parent's surface config hash, echoed for log correlation and
     *  used as the worker's CAS config digest. */
    uint64_t configHash = 0;
    /** Result-store directory the worker persists into; empty
     *  disables the worker-side store. */
    std::string cacheDir;
    /** Result-store size cap in bytes; 0 = unlimited. */
    uint64_t cacheMaxBytes = 0;
};

std::vector<uint8_t> wireEncodeSessionInit(const WireSessionInit &s);
/** Throws TraceError on malformed payload or an ABI/size mismatch. */
WireSessionInit wireDecodeSessionInit(const std::vector<uint8_t> &p);

/** REQ payload (the attempt number additionally rides in `arg`). */
struct WireSliceRequest
{
    SliceKey key{};
    /** Parent-computed stable hash: fault-injection site id shared by
     *  both sides, and the label benches report on. */
    uint64_t keyHash = 0;
};

std::vector<uint8_t> wireEncodeSliceRequest(const WireSliceRequest &r);
WireSliceRequest wireDecodeSliceRequest(const std::vector<uint8_t> &p);

/** RES payload: the full simulation outcome, stat map included. */
struct WireSliceResult
{
    double timeNs = 0;
    uint64_t cycles = 0;
    double coreGhz = 0;
    std::vector<std::pair<std::string, double>> stats;
};

std::vector<uint8_t> wireEncodeSliceResult(const WireSliceResult &r);
WireSliceResult wireDecodeSliceResult(const std::vector<uint8_t> &p);

/** ERR payload: a clean in-worker failure, mapped onto the SimError
 *  taxonomy so the parent can rethrow the matching type. */
enum class WireErrorKind : uint8_t
{
    Generic = 0,
    Config = 1,
    Trace = 2,
    Deadlock = 3,
    Cache = 4,
    Audit = 5,
    Oom = 6,
};

struct WireErrorInfo
{
    WireErrorKind kind = WireErrorKind::Generic;
    std::string what;
};

std::vector<uint8_t> wireEncodeError(const WireErrorInfo &e);
WireErrorInfo wireDecodeError(const std::vector<uint8_t> &p);

/** Rethrow a decoded worker error as its taxonomy type. */
[[noreturn]] void wireThrowError(const WireErrorInfo &e);

} // namespace save

#endif // SAVE_PROC_WIRE_CODEC_H
