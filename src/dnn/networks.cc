#include "dnn/networks.h"

#include "util/logging.h"

namespace save {

namespace {

ConvLayer
conv(std::string name, int in_c, int out_c, int k, int hw, int stride = 1)
{
    ConvLayer l;
    l.name = std::move(name);
    l.inC = in_c;
    l.outC = out_c;
    l.kh = k;
    l.kw = k;
    l.ih = hw;
    l.iw = hw;
    l.stride = stride;
    return l;
}

std::vector<ConvLayer>
vgg16Layers()
{
    return {
        conv("vgg1_1", 3, 64, 3, 224),    conv("vgg1_2", 64, 64, 3, 224),
        conv("vgg2_1", 64, 128, 3, 112),  conv("vgg2_2", 128, 128, 3, 112),
        conv("vgg3_1", 128, 256, 3, 56),  conv("vgg3_2", 256, 256, 3, 56),
        conv("vgg3_3", 256, 256, 3, 56),  conv("vgg4_1", 256, 512, 3, 28),
        conv("vgg4_2", 512, 512, 3, 28),  conv("vgg4_3", 512, 512, 3, 28),
        conv("vgg5_1", 512, 512, 3, 14),  conv("vgg5_2", 512, 512, 3, 14),
        conv("vgg5_3", 512, 512, 3, 14),
    };
}

/** One bottleneck block: 1x1 reduce, 3x3, 1x1 expand. */
void
addBottleneck(std::vector<ConvLayer> &out, const std::string &prefix,
              int in_c, int mid_c, int out_c, int hw, int stride,
              bool downsample)
{
    out.push_back(conv(prefix + "a", in_c, mid_c, 1, hw, stride));
    int hw2 = (hw - 1) / stride + 1;
    out.push_back(conv(prefix + "b", mid_c, mid_c, 3, hw2));
    out.push_back(conv(prefix + "c", mid_c, out_c, 1, hw2));
    if (downsample)
        out.push_back(conv(prefix + "ds", in_c, out_c, 1, hw, stride));
}

std::vector<ConvLayer>
resnet50Layers()
{
    std::vector<ConvLayer> out;
    out.push_back(conv("resnet1", 3, 64, 7, 224, 2));
    struct Stage { int blocks, mid, outc, hw, stride; };
    // conv2_x..conv5_x; conv2_1 downsamples channels only (stride 1).
    const Stage stages[] = {
        {3, 64, 256, 56, 1},
        {4, 128, 512, 56, 2},
        {6, 256, 1024, 28, 2},
        {3, 512, 2048, 14, 2},
    };
    int in_c = 64;
    int stage_no = 2;
    for (const Stage &s : stages) {
        int hw = s.hw;
        for (int b = 1; b <= s.blocks; ++b) {
            std::string prefix = "resnet" + std::to_string(stage_no) +
                                 "_" + std::to_string(b);
            int stride = b == 1 ? s.stride : 1;
            addBottleneck(out, prefix, in_c, s.mid, s.outc, hw, stride,
                          b == 1);
            if (b == 1)
                hw = (hw - 1) / stride + 1;
            in_c = s.outc;
        }
        ++stage_no;
    }
    SAVE_ASSERT(out.size() == 53, "ResNet-50 should have 53 conv "
                "layers, got ", out.size());
    return out;
}

std::vector<LstmCell>
gnmtCells()
{
    std::vector<LstmCell> cells;
    auto cell = [](std::string name, int input, int hidden) {
        LstmCell c;
        c.name = std::move(name);
        c.inputDim = input;
        c.hiddenDim = hidden;
        return c;
    };
    // Encoder: bidirectional bottom pair, then 7 unidirectional
    // layers (the first consumes the 2048-wide concatenation).
    cells.push_back(cell("gnmt_enc0_fwd", 1024, 1024));
    cells.push_back(cell("gnmt_enc0_bwd", 1024, 1024));
    cells.push_back(cell("gnmt_enc1", 2048, 1024));
    for (int i = 2; i <= 7; ++i)
        cells.push_back(cell("gnmt_enc" + std::to_string(i), 1024, 1024));
    // Decoder: 8 layers, each fed the attention context (1024) next to
    // the layer input.
    for (int i = 0; i < 8; ++i)
        cells.push_back(cell("gnmt_dec" + std::to_string(i), 2048, 1024));
    // Attention GEMMs (score projections and context combination),
    // modeled as cells with 1024-wide gates.
    cells.push_back(cell("gnmt_att_enc_proj", 1024, 256));
    cells.push_back(cell("gnmt_att_dec_proj", 1024, 256));
    cells.push_back(cell("gnmt_att_combine", 2048, 256));
    // Output projection to the 32K vocabulary, split into 7 N-slices
    // of 4096 logits each (modeled as 1024-hidden gate GEMMs).
    for (int i = 0; i < 7; ++i)
        cells.push_back(cell("gnmt_proj" + std::to_string(i), 1024,
                             1024));
    SAVE_ASSERT(cells.size() == 27, "GNMT should enumerate 27 cells, "
                "got ", cells.size());
    return cells;
}

} // namespace

NetworkModel
vgg16Dense()
{
    NetworkModel n;
    n.name = "VGG16";
    n.convLayers = vgg16Layers();
    n.profileKind = ActivationProfile::Kind::Vgg16;
    n.schedule = PruningSchedule::none(90);
    n.sparseGradients = true; // ReLU everywhere, no BatchNorm
    return n;
}

NetworkModel
resnet50Dense()
{
    NetworkModel n;
    n.name = "ResNet-50";
    n.convLayers = resnet50Layers();
    n.profileKind = ActivationProfile::Kind::Resnet50Dense;
    n.schedule = PruningSchedule::none(90);
    n.sparseGradients = false; // BatchNorm removes gradient sparsity
    return n;
}

NetworkModel
resnet50Pruned()
{
    NetworkModel n = resnet50Dense();
    n.name = "ResNet-50-pruned";
    n.pruned = true;
    n.profileKind = ActivationProfile::Kind::Resnet50Pruned;
    n.schedule = PruningSchedule::resnet50();
    return n;
}

NetworkModel
gnmtPruned()
{
    NetworkModel n;
    n.name = "GNMT-pruned";
    n.pruned = true;
    n.cells = gnmtCells();
    n.profileKind = ActivationProfile::Kind::Gnmt;
    n.schedule = PruningSchedule::gnmt();
    n.sparseGradients = true; // dropout mask applies on backward too
    return n;
}

const ConvLayer &
findConvLayer(const NetworkModel &net, const std::string &name)
{
    for (const ConvLayer &l : net.convLayers)
        if (l.name == name)
            return l;
    SAVE_FATAL("no conv layer named '", name, "' in ", net.name);
}

std::vector<KernelSpec>
allStudiedKernels(int batch)
{
    std::vector<KernelSpec> out;
    for (const auto &net : {vgg16Dense(), resnet50Dense()})
        for (const ConvLayer &l : net.convLayers)
            out.push_back(makeConvKernel(l, Phase::Forward, batch));
    for (const LstmCell &c : gnmtPruned().cells)
        out.push_back(makeLstmKernel(c, Phase::Forward));
    SAVE_ASSERT(out.size() == 93, "expected the paper's 93 kernels, "
                "got ", out.size());
    return out;
}

} // namespace save
