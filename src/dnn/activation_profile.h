/**
 * @file
 * Activation-sparsity profiles over training (paper Fig. 12).
 *
 * The paper profiles real training runs (or uses Rhu et al.'s
 * published progression for VGG16). Those traces are not available,
 * so we synthesize per-layer per-epoch curves with the same shape
 * (DESIGN.md substitution 3):
 *
 *  - VGG16: ReLU sparsity is high (45-90%), grows with depth, and
 *    rises over the first epochs before flattening.
 *  - ResNet-50: residual connections add positive bias before ReLU
 *    and BatchNorm recenters activations, so sparsity is lower
 *    (15-60%) and dips at block entries.
 *  - GNMT: no ReLU; dropout gives a constant 20%.
 *
 * at(layer, step) is the sparsity of the layer's INPUT activations;
 * layer 0 reads the raw image/embedding and is always dense.
 */

#ifndef SAVE_DNN_ACTIVATION_PROFILE_H
#define SAVE_DNN_ACTIVATION_PROFILE_H

#include <cstdint>

namespace save {

/** Synthetic activation-sparsity progression. */
class ActivationProfile
{
  public:
    enum class Kind { Vgg16, Resnet50Dense, Resnet50Pruned, Gnmt };

    ActivationProfile(Kind kind, int num_layers, int64_t num_steps);

    /** Input-activation sparsity of `layer` at training step `step`. */
    double at(int layer, int64_t step) const;

    /** Sparsity at the end of training (inference operating point). */
    double final_(int layer) const { return at(layer, steps_ - 1); }

    int layers() const { return layers_; }
    int64_t steps() const { return steps_; }

  private:
    Kind kind_;
    int layers_;
    int64_t steps_;
};

} // namespace save

#endif // SAVE_DNN_ACTIVATION_PROFILE_H
