#include "dnn/estimator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <set>
#include <sstream>

#include "dnn/surface.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/runtime_options.h"

namespace save {

namespace {

/** Estimator knobs that shift slice times but live outside the Key. */
uint64_t
optionSalt(const EstimatorOptions &opt)
{
    uint64_t salt = opt.seed;
    salt = salt * 1000003ull + static_cast<uint64_t>(opt.tiles);
    salt = salt * 1000003ull + static_cast<uint64_t>(opt.cores);
    return salt;
}

/** How long a single-flight follower waits for the owning process
 *  before giving up and simulating the point itself. */
constexpr int kFlightWaitMs = 60000;

CasValue
toCasValue(const KernelResult &kr)
{
    CasValue v;
    v.timeNs = kr.timeNs;
    v.cycles = kr.cycles;
    v.coreGhz = kr.coreGhz;
    for (const auto &[name, value] : kr.stats.all())
        v.stats.emplace_back(name, value);
    return v;
}

} // namespace

std::string
resolveIsolation(const std::string &opt)
{
    if (!opt.empty()) {
        RuntimeOptions o;
        o.isolation = opt;
        return o.resolveIsolation();
    }
    return RuntimeOptions::fromEnv().resolveIsolation();
}

void
EstimatorOptions::validate() const
{
    if (gridStep < 1 || gridStep > 9)
        throw ConfigError("EstimatorOptions.gridStep must be in [1, 9] "
                          "(got " + std::to_string(gridStep) + ")");
    if (threads < 0)
        throw ConfigError("EstimatorOptions.threads must be >= 0 "
                          "(got " + std::to_string(threads) + ")");
    if (kSteps < 1)
        throw ConfigError("EstimatorOptions.kSteps must be >= 1 "
                          "(got " + std::to_string(kSteps) + ")");
    if (tiles < 1)
        throw ConfigError("EstimatorOptions.tiles must be >= 1 "
                          "(got " + std::to_string(tiles) + ")");
    if (cores < 1)
        throw ConfigError("EstimatorOptions.cores must be >= 1 "
                          "(got " + std::to_string(cores) + ")");
    if (maxRetries < 0)
        throw ConfigError("EstimatorOptions.maxRetries must be >= 0 "
                          "(got " + std::to_string(maxRetries) + ")");
    resolveIsolation(isolation);
    proc.validate();
}

PhaseBreakdown &
PhaseBreakdown::operator+=(const PhaseBreakdown &o)
{
    firstLayer += o.firstLayer;
    forward += o.forward;
    bwdInput += o.bwdInput;
    bwdWeights += o.bwdWeights;
    return *this;
}

PhaseBreakdown &
PhaseBreakdown::operator*=(double f)
{
    firstLayer *= f;
    forward *= f;
    bwdInput *= f;
    bwdWeights *= f;
    return *this;
}

TrainingEstimator::TrainingEstimator(MachineConfig mcfg,
                                     SaveConfig save_features,
                                     EstimatorOptions opt)
    : TrainingEstimator(mcfg, save_features, std::move(opt), nullptr,
                        nullptr)
{
}

TrainingEstimator::TrainingEstimator(MachineConfig mcfg,
                                     SaveConfig save_features,
                                     EstimatorOptions opt,
                                     ThreadPool *shared_pool,
                                     ResultStore *shared_store)
    : mcfg_(mcfg), save_cfg_(save_features), opt_(opt)
{
    opt_.validate();
    mcfg_.validate();
    save_cfg_.validate();

    isolation_ = resolveIsolation(opt_.isolation);
    config_hash_ = casHashConfig(mcfg_, save_cfg_, optionSalt(opt_));

    // Process-level fault modes (crash/abort/hang/oom) are only
    // containable behind a process boundary: refuse to arm them where
    // a raised SIGSEGV would take the whole sweep down.
    {
        const FaultInjector &inj = FaultInjector::global();
        if (isolation_ != "process" && inj.enabled() &&
            inj.plan().anyProcessFaults())
            throw ConfigError(
                "SAVE_FAULT_INJECT crash/abort/hang/oom modes require "
                "--isolation=process (current isolation: " +
                isolation_ + ")");
    }

    uint64_t cache_max_bytes = 0;
    if (shared_store) {
        store_ = shared_store;
        cache_max_bytes = shared_store->maxBytes();
    } else {
        ResultStore::Options sopt;
        sopt.dir = ResultStore::resolveDir(opt_.cacheDir);
        sopt.maxBytes = ResultStore::resolveMaxBytes(opt_.cacheMaxMb);
        cache_max_bytes = sopt.maxBytes;
        owned_store_ = std::make_unique<ResultStore>(sopt);
        store_ = owned_store_.get();
    }

    // Migrate a v1 surface-cache file for this config into the store
    // (quarantine-on-mismatch semantics unchanged: a corrupt v1 file
    // is moved to .corrupt by load() exactly as before). Migrated
    // records carry the slice time only — the only field the
    // estimator consumes — and the source file is renamed aside so
    // migration happens once.
    if (store_->enabled()) {
        SurfaceCache legacy(store_->dir(), config_hash_);
        std::vector<SurfaceRecord> records;
        if (legacy.load(records)) {
            for (const SurfaceRecord &r : records) {
                Key k{r.mr, r.nr, r.kSteps, r.pattern, r.precision,
                      r.saveOn, r.vpus, r.wBin, r.aBin};
                CasValue v;
                v.timeNs = r.timeNs;
                store_->insert(casKey(k), v);
            }
            std::error_code ec;
            std::filesystem::rename(legacy.path(),
                                    legacy.path() + ".migrated", ec);
            SAVE_INFORM("migrated ", records.size(),
                        " v1 surface record(s) into the result store ",
                        store_->dir());
        }
    }

    if (isolation_ != "none") {
        if (shared_pool) {
            pool_ = shared_pool;
        } else if (opt_.threads >= 2) {
            owned_pool_ = std::make_unique<ThreadPool>(opt_.threads);
            pool_ = owned_pool_.get();
        } else if (opt_.threads == 0) {
            pool_ = &ThreadPool::global();
        } // threads == 1: pool_ stays null, strictly serial
    }     // isolation == none: strictly serial regardless of threads

    if (isolation_ == "process") {
        ProcOptions p = opt_.proc;
        if (p.workers == 0)
            p.workers = threads();
        WireSessionInit init;
        init.mcfg = mcfg_;
        init.scfg = save_cfg_;
        init.tiles = opt_.tiles;
        init.cores = opt_.cores;
        init.seed = opt_.seed;
        init.configHash = config_hash_;
        init.cacheDir = store_->dir();
        init.cacheMaxBytes = cache_max_bytes;
        proc_pool_ = std::make_unique<WorkerPool>(p, init);
    }
}

TrainingEstimator::~TrainingEstimator() = default;

int
TrainingEstimator::threads() const
{
    return pool_ ? pool_->size() : 1;
}

KernelResult
TrainingEstimator::simulateSliceKernel(const MachineConfig &mcfg,
                                       const SaveConfig &save_on_cfg,
                                       const SliceKey &key, int tiles,
                                       int cores, uint64_t seed)
{
    GemmConfig g;
    g.mr = key.mr;
    g.nrVecs = key.nr;
    g.kSteps = key.kSteps;
    g.tiles = tiles;
    g.pattern = static_cast<BroadcastPattern>(key.pattern);
    g.precision = static_cast<Precision>(key.precision);
    g.nbsSparsity = key.wBin * SparsitySurface::kStep;
    g.bsSparsity = key.aBin * SparsitySurface::kStep;
    g.seed = seed + key.wBin * 131 + key.aBin * 17;

    // Each worker simulates with its own short-lived Engine: there is
    // no shared simulator state between concurrent slice points.
    Engine eng(mcfg, key.saveOn ? save_on_cfg : SaveConfig::baseline());
    return eng.runGemm(g, cores, key.vpus);
}

KernelResult
TrainingEstimator::simulateSlice(const Key &key) const
{
    return simulateSliceKernel(mcfg_, save_cfg_, key, opt_.tiles,
                               opt_.cores, opt_.seed);
}

CasKey
TrainingEstimator::casKey(const Key &key) const
{
    return CasKey{config_hash_, casSliceWorkload(key)};
}

TrainingEstimator::SliceOutcome
TrainingEstimator::runSliceIsolated(const Key &key, int attempt)
{
    if (proc_pool_ && !proc_pool_->degraded()) {
        try {
            WireSliceResult wr =
                proc_pool_->runSlice(key, keyHash(key), attempt);
            SliceOutcome out;
            out.result.timeNs = wr.timeNs;
            out.result.cycles = wr.cycles;
            out.result.coreGhz = wr.coreGhz;
            for (const auto &[name, value] : wr.stats)
                out.result.stats.set(name, value);
            // The worker already persisted this result into the shared
            // store before replying; the parent must not append a
            // duplicate record.
            out.fromWorker = true;
            return out;
        } catch (const WorkerError &e) {
            if (proc_pool_->degraded()) {
                // The pool has drained past its crash budget: finish
                // the point in-process instead of failing it. This is
                // the graceful-degradation path, so it does not burn
                // one of the slice's own retries.
                SAVE_WARN("slice falling back in-process after pool "
                          "degradation: ", e.what());
                return SliceOutcome{simulateSlice(key), false};
            }
            throw;
        }
    }
    return SliceOutcome{simulateSlice(key), false};
}

uint64_t
TrainingEstimator::keyHash(const Key &key) const
{
    // FNV-1a over the key fields plus the option salt: stable across
    // runs, so seeded fault injection deterministically picks the same
    // surface points every time.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    mix(static_cast<uint64_t>(key.mr));
    mix(static_cast<uint64_t>(key.nr));
    mix(static_cast<uint64_t>(key.kSteps));
    mix(key.pattern);
    mix(key.precision);
    mix(key.saveOn);
    mix(key.vpus);
    mix(key.wBin);
    mix(key.aBin);
    mix(optionSalt(opt_));
    return h;
}

std::string
TrainingEstimator::keyLabel(const Key &key) const
{
    std::ostringstream os;
    os << "slice mr=" << key.mr << " nr=" << key.nr
       << " kSteps=" << key.kSteps
       << " pattern=" << static_cast<int>(key.pattern)
       << " precision=" << static_cast<int>(key.precision)
       << " save=" << static_cast<int>(key.saveOn)
       << " vpus=" << static_cast<int>(key.vpus)
       << " wBin=" << static_cast<int>(key.wBin)
       << " aBin=" << static_cast<int>(key.aBin);
    return os.str();
}

TrainingEstimator::SliceOutcome
TrainingEstimator::simulateWithRetry(const Key &key)
{
    const uint64_t site = keyHash(key);
    const int attempts = 1 + opt_.maxRetries;
    for (int a = 1;; ++a) {
        try {
            FaultInjector::global().maybeFailSlice(site);
            return runSliceIsolated(key, a);
        } catch (const std::exception &e) {
            if (a < attempts) {
                SAVE_WARN("retrying ", keyLabel(key), " after attempt ",
                          a, "/", attempts, " failed: ", e.what());
                continue;
            }
            if (opt_.failFast)
                throw;
            SliceFailure f;
            f.point = keyLabel(key);
            f.reason = e.what();
            f.attempts = attempts;
            {
                std::lock_guard<std::mutex> lk(failures_mu_);
                failures_.push_back(std::move(f));
            }
            SAVE_WARN(keyLabel(key), " failed permanently after ",
                      attempts, " attempts: ", e.what());
            SliceOutcome out;
            out.result.timeNs =
                std::numeric_limits<double>::quiet_NaN();
            return out;
        }
    }
}

double
TrainingEstimator::computeCold(const Key &key)
{
    if (store_ && store_->enabled()) {
        const CasKey ck = casKey(key);
        ResultStore::Flight flight = store_->beginFlight(ck);
        if (!flight.owner()) {
            // Another process is simulating this exact point. Wait for
            // its insert; on timeout (owner died mid-flight or is just
            // slow) fall through and simulate it ourselves — inserts
            // are idempotent, so a late duplicate is harmless.
            CasValue v;
            if (store_->waitForResult(ck, &v, kFlightWaitMs))
                return v.timeNs;
        }
        SliceOutcome out = simulateWithRetry(key);
        if (std::isfinite(out.result.timeNs)) {
            sims_.fetch_add(1, std::memory_order_relaxed);
            if (!out.fromWorker)
                store_->insert(ck, toCasValue(out.result));
        }
        return out.result.timeNs;
    }
    SliceOutcome out = simulateWithRetry(key);
    if (std::isfinite(out.result.timeNs))
        sims_.fetch_add(1, std::memory_order_relaxed);
    return out.result.timeNs;
}

double
TrainingEstimator::sliceTime(const Key &key)
{
    std::promise<double> promise;
    std::shared_future<double> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lk(cache_mu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            fut = it->second;
        } else {
            fut = promise.get_future().share();
            cache_.emplace(key, fut);
            owner = true;
        }
    }
    if (!owner)
        return fut.get(); // single-flight: wait for the simulating thread

    double t;
    try {
        CasValue v;
        if (store_ && store_->lookup(casKey(key), &v))
            t = v.timeNs; // persistent hit: no simulation at all
        else
            t = computeCold(key);
    } catch (...) {
        // failFast (or a non-isolatable error): fail every waiter too,
        // then let the sweep driver unwind.
        promise.set_exception(std::current_exception());
        throw;
    }
    // NaN (exhausted retries) is cached like any value: the point is
    // not re-attempted within this process, and waiters observe the
    // same poisoned result instead of a duplicate simulation.
    promise.set_value(t);
    return t;
}

std::vector<SliceFailure>
TrainingEstimator::failures() const
{
    std::lock_guard<std::mutex> lk(failures_mu_);
    return failures_;
}

std::string
TrainingEstimator::failureReport() const
{
    std::ostringstream os;
    {
        std::lock_guard<std::mutex> lk(failures_mu_);
        if (!failures_.empty()) {
            os << failures_.size()
               << " surface point(s) failed permanently:\n";
            for (const SliceFailure &f : failures_)
                os << "  " << f.point << ": " << f.reason << " ("
                   << f.attempts << " attempts)\n";
        }
    }
    if (proc_pool_ && proc_pool_->crashes() > 0)
        os << proc_pool_->report() << "\n";
    return os.str();
}

TrainingEstimator::BinWeights
TrainingEstimator::binWeights(double nbs, double bs) const
{
    const int step = opt_.gridStep;
    const int max_bin = ((SparsitySurface::kGrid - 1) / step) * step;
    auto bins = [&](double s, int &lo, int &hi, double &frac) {
        double b = std::clamp(s, 0.0, SparsitySurface::kMax) /
                   SparsitySurface::kStep;
        lo = std::min(static_cast<int>(b) / step * step, max_bin);
        hi = std::min(lo + step, max_bin);
        frac = hi > lo ? (b - lo) / (hi - lo) : 0.0;
        frac = std::clamp(frac, 0.0, 1.0);
    };
    BinWeights w{};
    bins(nbs, w.w0, w.w1, w.dw);
    bins(bs, w.a0, w.a1, w.da);
    return w;
}

double
TrainingEstimator::interpTime(Key key, double nbs, double bs)
{
    if (!key.saveOn) {
        // The baseline pipeline is data-oblivious: one sample serves
        // every sparsity point.
        key.wBin = key.aBin = 0;
        return sliceTime(key);
    }

    BinWeights w = binWeights(nbs, bs);
    auto at = [&](int wb, int ab) {
        Key k = key;
        k.wBin = static_cast<uint8_t>(wb);
        k.aBin = static_cast<uint8_t>(ab);
        return sliceTime(k);
    };
    double t00 = at(w.w0, w.a0), t01 = at(w.w0, w.a1);
    double t10 = at(w.w1, w.a0), t11 = at(w.w1, w.a1);
    return t00 * (1 - w.dw) * (1 - w.da) + t10 * w.dw * (1 - w.da) +
           t01 * (1 - w.dw) * w.da + t11 * w.dw * w.da;
}

TrainingEstimator::Key
TrainingEstimator::baseKey(const KernelSpec &spec, Precision precision,
                           double bs, double nbs, bool save_on,
                           int vpus) const
{
    GemmConfig slice = spec.slice(precision, bs, nbs, opt_.kSteps,
                                  opt_.seed);
    Key key{};
    key.mr = slice.mr;
    key.nr = slice.nrVecs;
    key.kSteps = slice.kSteps;
    key.pattern = static_cast<uint8_t>(slice.pattern);
    key.precision = static_cast<uint8_t>(precision);
    key.saveOn = save_on ? 1 : 0;
    key.vpus = static_cast<uint8_t>(vpus);
    return key;
}

double
TrainingEstimator::kernelTime(const KernelSpec &spec, Precision precision,
                              double bs, double nbs, bool save_on,
                              int vpus)
{
    GemmConfig slice = spec.slice(precision, bs, nbs, opt_.kSteps,
                                  opt_.seed);
    slice.tiles = opt_.tiles;

    Key key = baseKey(spec, precision, bs, nbs, save_on, vpus);
    double t_slice = interpTime(key, nbs, bs);
    return t_slice * spec.macScale(slice);
}

namespace {

/** Route a kernel's time into the right breakdown bucket. */
void
bucket(PhaseBreakdown &bd, Phase phase, bool first_layer, double t)
{
    if (first_layer)
        bd.firstLayer += t;
    else if (phase == Phase::Forward)
        bd.forward += t;
    else if (phase == Phase::BwdInput)
        bd.bwdInput += t;
    else
        bd.bwdWeights += t;
}

} // namespace

void
TrainingEstimator::forEachKernel(
    const NetworkModel &net, int64_t step, bool inference_only,
    const std::function<void(const KernelSpec &, double, double, bool,
                             double)> &fn) const
{
    ActivationProfile act = net.profile();
    double ws = net.schedule.sparsityAt(step);
    int n_kernels = net.numKernels();

    if (!net.isLstm()) {
        for (int i = 0; i < n_kernels; ++i) {
            const ConvLayer &layer =
                net.convLayers[static_cast<size_t>(i)];
            bool first = i == 0;
            double in_act = first ? 0.0 : act.at(i, step);
            // Output-gradient sparsity: the layer's own ReLU mask,
            // approximated by its output activation sparsity (the
            // next layer's input); zero under BatchNorm.
            double grad = net.sparseGradients
                ? act.at(std::min(i + 1, n_kernels - 1), step)
                : 0.0;

            fn(makeConvKernel(layer, Phase::Forward, net.batch),
               in_act, ws, first, 1.0);
            if (inference_only)
                continue;
            if (!first) {
                // dX = dY * W^T: dY broadcast (BS), W^T vector (NBS).
                fn(makeConvKernel(layer, Phase::BwdInput, net.batch),
                   grad, ws, false, 1.0);
            }
            // dW = X^T dY: X broadcast (BS), dY vector (NBS).
            fn(makeConvKernel(layer, Phase::BwdWeights, net.batch),
               in_act, net.sparseGradients ? grad : 0.0, first, 1.0);
        }
    } else {
        for (int i = 0; i < n_kernels; ++i) {
            const LstmCell &cell = net.cells[static_cast<size_t>(i)];
            double in_act = act.at(i, step);
            fn(makeLstmKernel(cell, Phase::Forward), in_act, ws, false,
               1.0);
            if (inference_only)
                continue;
            // The merged LSTM backward computes both dX and dW: twice
            // the forward GEMM work at gradient/weight sparsity.
            fn(makeLstmKernel(cell, Phase::BwdInput), in_act, ws, false,
               2.0);
        }
    }
}

void
TrainingEstimator::prefetch(const NetworkModel &net, Precision precision,
                            bool inference_only)
{
    // Enumerate every surface point the evaluation will touch, in the
    // deterministic order the serial walk would first request them.
    std::vector<Key> order;
    std::set<Key> seen;
    auto consider = [&](Key k) {
        if (seen.insert(k).second)
            order.push_back(k);
    };
    auto add_kernel = [&](const KernelSpec &spec, double bs, double nbs,
                          bool, double) {
        struct Cfg
        {
            bool saveOn;
            int vpus;
        };
        for (Cfg c : {Cfg{false, 2}, Cfg{true, 2}, Cfg{true, 1}}) {
            Key key = baseKey(spec, precision, bs, nbs, c.saveOn,
                              c.vpus);
            if (!c.saveOn) {
                key.wBin = key.aBin = 0;
                consider(key);
                continue;
            }
            BinWeights w = binWeights(nbs, bs);
            for (int wb : {w.w0, w.w1})
                for (int ab : {w.a0, w.a1}) {
                    Key k = key;
                    k.wBin = static_cast<uint8_t>(wb);
                    k.aBin = static_cast<uint8_t>(ab);
                    consider(k);
                }
        }
    };

    int64_t first_step = inference_only ? net.steps() - 1 : 0;
    for (int64_t e = first_step; e < net.steps(); ++e)
        forEachKernel(net, e, inference_only, add_kernel);

    // Claim every un-cached point up front: inserting the shared
    // future under the lock takes single-flight ownership, exactly as
    // sliceTime's owner path would, so a concurrent kernelTime that
    // races the prefetch waits on our batch instead of duplicating the
    // simulation. promises[] stays parallel to todo[].
    std::vector<Key> todo;
    std::vector<std::promise<double>> promises;
    {
        std::lock_guard<std::mutex> lk(cache_mu_);
        for (const Key &k : order) {
            if (cache_.count(k))
                continue;
            std::promise<double> p;
            cache_.emplace(k, p.get_future().share());
            todo.push_back(k);
            promises.push_back(std::move(p));
        }
    }
    if (todo.empty())
        return;

    // Serve persistent-store hits immediately: only the points the
    // store has never seen are batched and fanned out. coldPromise[]
    // maps a cold point back to its promise slot in the full claim.
    std::vector<Key> cold;
    std::vector<size_t> coldPromise;
    for (size_t i = 0; i < todo.size(); ++i) {
        CasValue v;
        if (store_ && store_->lookup(casKey(todo[i]), &v)) {
            promises[i].set_value(v.timeNs);
        } else {
            cold.push_back(todo[i]);
            coldPromise.push_back(i);
        }
    }
    if (cold.empty())
        return;

    // Batch the cold points by micro-kernel shape (SoA layout) and
    // fan out one pool task per batch. Each point still simulates with
    // its own seeded Engine, so the grouping only changes scheduling,
    // never values.
    std::vector<SliceBatch> batches = batchSlices(cold);
    auto run_batch = [&](SliceBatch &b) {
        for (size_t i = 0; i < b.size(); ++i) {
            double t;
            try {
                t = computeCold(b.keyAt(i));
            } catch (...) {
                // failFast: fail this point's waiters and everything
                // left in the batch, then let parallelFor rethrow.
                auto e = std::current_exception();
                for (size_t j = i; j < b.size(); ++j)
                    promises[coldPromise[b.srcIdx[j]]].set_exception(e);
                throw;
            }
            b.times[i] = t;
            promises[coldPromise[b.srcIdx[i]]].set_value(t);
        }
    };

    if (pool_ && batches.size() > 1) {
        pool_->parallelFor(
            static_cast<int64_t>(batches.size()),
            [&](int64_t i) { run_batch(batches[static_cast<size_t>(i)]); });
    } else {
        for (SliceBatch &b : batches)
            run_batch(b);
    }
}

void
TrainingEstimator::addEpoch(const NetworkModel &net, Precision precision,
                            int64_t step, bool inference_only,
                            NetResult &acc)
{
    PhaseBreakdown epoch2, epoch1; // for the per-epoch static choice

    forEachKernel(
        net, step, inference_only,
        [&](const KernelSpec &spec, double bs, double nbs,
            bool first_layer, double mac_factor) {
            double tb = mac_factor *
                        kernelTime(spec, precision, bs, nbs, false, 2);
            double t2 = mac_factor *
                        kernelTime(spec, precision, bs, nbs, true, 2);
            double t1 = mac_factor *
                        kernelTime(spec, precision, bs, nbs, true, 1);
            bucket(acc.baseline2, spec.phase, first_layer, tb);
            bucket(acc.save2, spec.phase, first_layer, t2);
            bucket(acc.save1, spec.phase, first_layer, t1);
            bucket(acc.saveDynamic, spec.phase, first_layer,
                   std::min(t2, t1));
            bucket(epoch2, spec.phase, first_layer, t2);
            bucket(epoch1, spec.phase, first_layer, t1);
        });

    // Static: the better fixed VPU count for this whole epoch.
    acc.saveStatic +=
        epoch2.total() <= epoch1.total() ? epoch2 : epoch1;
}

NetResult
TrainingEstimator::inference(const NetworkModel &net, Precision precision)
{
    prefetch(net, precision, true);
    NetResult r;
    addEpoch(net, precision, net.steps() - 1, true, r);
    // Inference has no epoch granularity: static == the better fixed
    // configuration == what addEpoch already computed.
    return r;
}

NetResult
TrainingEstimator::training(const NetworkModel &net, Precision precision)
{
    prefetch(net, precision, false);
    NetResult r;
    for (int64_t e = 0; e < net.steps(); ++e)
        addEpoch(net, precision, e, false, r);
    double inv = 1.0 / static_cast<double>(net.steps());
    r.baseline2 *= inv;
    r.save2 *= inv;
    r.save1 *= inv;
    r.saveStatic *= inv;
    r.saveDynamic *= inv;
    return r;
}

} // namespace save
