#include "dnn/estimator.h"

#include <algorithm>
#include <cmath>

#include "dnn/surface.h"
#include "util/logging.h"

namespace save {

PhaseBreakdown &
PhaseBreakdown::operator+=(const PhaseBreakdown &o)
{
    firstLayer += o.firstLayer;
    forward += o.forward;
    bwdInput += o.bwdInput;
    bwdWeights += o.bwdWeights;
    return *this;
}

PhaseBreakdown &
PhaseBreakdown::operator*=(double f)
{
    firstLayer *= f;
    forward *= f;
    bwdInput *= f;
    bwdWeights *= f;
    return *this;
}

TrainingEstimator::TrainingEstimator(MachineConfig mcfg,
                                     SaveConfig save_features,
                                     EstimatorOptions opt)
    : mcfg_(mcfg), save_cfg_(save_features), opt_(opt),
      base_engine_(mcfg, SaveConfig::baseline()),
      save_engine_(mcfg, save_features)
{
    SAVE_ASSERT(opt_.gridStep >= 1 && opt_.gridStep <= 9,
                "bad estimator grid step");
}

double
TrainingEstimator::sliceTime(const Key &key)
{
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    GemmConfig g;
    g.mr = key.mr;
    g.nrVecs = key.nr;
    g.kSteps = key.kSteps;
    g.tiles = opt_.tiles;
    g.pattern = static_cast<BroadcastPattern>(key.pattern);
    g.precision = static_cast<Precision>(key.precision);
    g.nbsSparsity = key.wBin * SparsitySurface::kStep;
    g.bsSparsity = key.aBin * SparsitySurface::kStep;
    g.seed = opt_.seed + key.wBin * 131 + key.aBin * 17;

    Engine &eng = key.saveOn ? save_engine_ : base_engine_;
    KernelResult r = eng.runGemm(g, opt_.cores, key.vpus);
    ++sims_;
    cache_.emplace(key, r.timeNs);
    return r.timeNs;
}

double
TrainingEstimator::interpTime(Key key, double nbs, double bs)
{
    if (!key.saveOn) {
        // The baseline pipeline is data-oblivious: one sample serves
        // every sparsity point.
        key.wBin = key.aBin = 0;
        return sliceTime(key);
    }

    const int step = opt_.gridStep;
    const int max_bin = ((SparsitySurface::kGrid - 1) / step) * step;
    auto bins = [&](double s, int &lo, int &hi, double &frac) {
        double b = std::clamp(s, 0.0, SparsitySurface::kMax) /
                   SparsitySurface::kStep;
        lo = std::min(static_cast<int>(b) / step * step, max_bin);
        hi = std::min(lo + step, max_bin);
        frac = hi > lo ? (b - lo) / (hi - lo) : 0.0;
        frac = std::clamp(frac, 0.0, 1.0);
    };
    int w0, w1, a0, a1;
    double dw, da;
    bins(nbs, w0, w1, dw);
    bins(bs, a0, a1, da);

    auto at = [&](int w, int a) {
        Key k = key;
        k.wBin = static_cast<uint8_t>(w);
        k.aBin = static_cast<uint8_t>(a);
        return sliceTime(k);
    };
    double t00 = at(w0, a0), t01 = at(w0, a1);
    double t10 = at(w1, a0), t11 = at(w1, a1);
    return t00 * (1 - dw) * (1 - da) + t10 * dw * (1 - da) +
           t01 * (1 - dw) * da + t11 * dw * da;
}

double
TrainingEstimator::kernelTime(const KernelSpec &spec, Precision precision,
                              double bs, double nbs, bool save_on,
                              int vpus)
{
    GemmConfig slice = spec.slice(precision, bs, nbs, opt_.kSteps,
                                  opt_.seed);
    slice.tiles = opt_.tiles;

    Key key{};
    key.mr = slice.mr;
    key.nr = slice.nrVecs;
    key.kSteps = slice.kSteps;
    key.pattern = static_cast<uint8_t>(slice.pattern);
    key.precision = static_cast<uint8_t>(precision);
    key.saveOn = save_on ? 1 : 0;
    key.vpus = static_cast<uint8_t>(vpus);

    double t_slice = interpTime(key, nbs, bs);
    return t_slice * spec.macScale(slice);
}

namespace {

/** Route a kernel's time into the right breakdown bucket. */
void
bucket(PhaseBreakdown &bd, Phase phase, bool first_layer, double t)
{
    if (first_layer)
        bd.firstLayer += t;
    else if (phase == Phase::Forward)
        bd.forward += t;
    else if (phase == Phase::BwdInput)
        bd.bwdInput += t;
    else
        bd.bwdWeights += t;
}

} // namespace

void
TrainingEstimator::addEpoch(const NetworkModel &net, Precision precision,
                            int64_t step, bool inference_only,
                            NetResult &acc)
{
    ActivationProfile act = net.profile();
    double ws = net.schedule.sparsityAt(step);
    int n_kernels = net.numKernels();

    PhaseBreakdown epoch2, epoch1; // for the per-epoch static choice

    auto add_kernel = [&](const KernelSpec &spec, double bs, double nbs,
                          bool first_layer, double mac_factor) {
        double tb = mac_factor *
                    kernelTime(spec, precision, bs, nbs, false, 2);
        double t2 = mac_factor *
                    kernelTime(spec, precision, bs, nbs, true, 2);
        double t1 = mac_factor *
                    kernelTime(spec, precision, bs, nbs, true, 1);
        bucket(acc.baseline2, spec.phase, first_layer, tb);
        bucket(acc.save2, spec.phase, first_layer, t2);
        bucket(acc.save1, spec.phase, first_layer, t1);
        bucket(acc.saveDynamic, spec.phase, first_layer,
               std::min(t2, t1));
        bucket(epoch2, spec.phase, first_layer, t2);
        bucket(epoch1, spec.phase, first_layer, t1);
    };

    if (!net.isLstm()) {
        for (int i = 0; i < n_kernels; ++i) {
            const ConvLayer &layer =
                net.convLayers[static_cast<size_t>(i)];
            bool first = i == 0;
            double in_act = first ? 0.0 : act.at(i, step);
            // Output-gradient sparsity: the layer's own ReLU mask,
            // approximated by its output activation sparsity (the
            // next layer's input); zero under BatchNorm.
            double grad = net.sparseGradients
                ? act.at(std::min(i + 1, n_kernels - 1), step)
                : 0.0;

            add_kernel(makeConvKernel(layer, Phase::Forward, net.batch),
                       in_act, ws, first, 1.0);
            if (inference_only)
                continue;
            if (!first) {
                // dX = dY * W^T: dY broadcast (BS), W^T vector (NBS).
                add_kernel(
                    makeConvKernel(layer, Phase::BwdInput, net.batch),
                    grad, ws, false, 1.0);
            }
            // dW = X^T dY: X broadcast (BS), dY vector (NBS).
            add_kernel(
                makeConvKernel(layer, Phase::BwdWeights, net.batch),
                in_act, net.sparseGradients ? grad : 0.0, first, 1.0);
        }
    } else {
        for (int i = 0; i < n_kernels; ++i) {
            const LstmCell &cell = net.cells[static_cast<size_t>(i)];
            double in_act = act.at(i, step);
            add_kernel(makeLstmKernel(cell, Phase::Forward), in_act, ws,
                       false, 1.0);
            if (inference_only)
                continue;
            // The merged LSTM backward computes both dX and dW: twice
            // the forward GEMM work at gradient/weight sparsity.
            add_kernel(makeLstmKernel(cell, Phase::BwdInput), in_act,
                       ws, false, 2.0);
        }
    }

    // Static: the better fixed VPU count for this whole epoch.
    acc.saveStatic +=
        epoch2.total() <= epoch1.total() ? epoch2 : epoch1;
}

NetResult
TrainingEstimator::inference(const NetworkModel &net, Precision precision)
{
    NetResult r;
    addEpoch(net, precision, net.steps() - 1, true, r);
    // Inference has no epoch granularity: static == the better fixed
    // configuration == what addEpoch already computed.
    return r;
}

NetResult
TrainingEstimator::training(const NetworkModel &net, Precision precision)
{
    NetResult r;
    for (int64_t e = 0; e < net.steps(); ++e)
        addEpoch(net, precision, e, false, r);
    double inv = 1.0 / static_cast<double>(net.steps());
    r.baseline2 *= inv;
    r.save2 *= inv;
    r.save1 *= inv;
    r.saveStatic *= inv;
    r.saveDynamic *= inv;
    return r;
}

} // namespace save
