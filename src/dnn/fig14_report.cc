#include "dnn/fig14_report.h"

#include <cstdarg>
#include <cstdio>

namespace save {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

void
printRow(std::string &out, const char *cfg, const PhaseBreakdown &bd,
         double base_total)
{
    appendf(out,
            "  %-9s %6.2fx  (1st %5.1f%%, fwd %5.1f%%, bwd-in "
            "%5.1f%%, bwd-w %5.1f%%)\n",
            cfg, base_total / bd.total(),
            100 * bd.firstLayer / bd.total(),
            100 * bd.forward / bd.total(),
            100 * bd.bwdInput / bd.total(),
            100 * bd.bwdWeights / bd.total());
}

void
printNet(std::string &out, const char *title, const NetResult &r,
         bool training)
{
    double base = r.baseline2.total();
    appendf(out, "%s  (baseline: %.3f ms)\n", title, base / 1e6);
    printRow(out, "baseline", r.baseline2, base);
    printRow(out, "2 VPUs", r.save2, base);
    printRow(out, "1 VPU", r.save1, base);
    if (training)
        printRow(out, "static", r.saveStatic, base);
    printRow(out, "dynamic", r.saveDynamic, base);
}

} // namespace

const std::vector<Fig14Entry> &
fig14CnnEntries()
{
    static const std::vector<Fig14Entry> entries = {
        {vgg16Dense(), Precision::Fp32, "VGG16 FP32 dense"},
        {resnet50Dense(), Precision::Fp32, "ResNet-50 FP32 dense"},
        {resnet50Pruned(), Precision::Fp32, "ResNet-50 FP32 pruned"},
        {vgg16Dense(), Precision::Bf16, "VGG16 MP dense"},
        {resnet50Dense(), Precision::Bf16, "ResNet-50 MP dense"},
        {resnet50Pruned(), Precision::Bf16, "ResNet-50 MP pruned"},
    };
    return entries;
}

const std::vector<Fig14Entry> &
fig14GnmtEntries()
{
    static const std::vector<Fig14Entry> entries = {
        {gnmtPruned(), Precision::Fp32, "GNMT FP32 pruned"},
        {gnmtPruned(), Precision::Bf16, "GNMT MP pruned"},
    };
    return entries;
}

int
fig14PointCount()
{
    return 2 * static_cast<int>(fig14CnnEntries().size() +
                                fig14GnmtEntries().size());
}

const std::vector<Fig14Point> &
fig14Points()
{
    static const std::vector<Fig14Point> points = [] {
        std::vector<Fig14Point> p;
        auto add = [&](const Fig14Entry &e, bool training) {
            std::string key =
                std::string(training ? "train/" : "infer/") + e.label;
            p.push_back({e, training, std::move(key)});
        };
        // Must mirror fig14Report's walk exactly: index == the order
        // the renderer asks for results.
        for (const Fig14Entry &e : fig14CnnEntries())
            add(e, false);
        for (const Fig14Entry &e : fig14GnmtEntries())
            add(e, false);
        for (const Fig14Entry &e : fig14CnnEntries())
            add(e, true);
        for (const Fig14Entry &e : fig14GnmtEntries())
            add(e, true);
        return p;
    }();
    return points;
}

std::string
fig14Report(const Fig14Eval &eval, const Fig14Progress &progress)
{
    std::string out;
    out.reserve(8192);
    const int total = fig14PointCount();
    int done = 0;

    auto run = [&](const Fig14Entry &e, bool training) {
        std::string key =
            std::string(training ? "train/" : "infer/") + e.label;
        NetResult r = eval(key, e, training);
        ++done;
        if (progress)
            progress(done, total, key);
        return r;
    };

    appendf(out, "=== Fig. 14a: CNN inference ===\n");
    for (const Fig14Entry &e : fig14CnnEntries())
        printNet(out, e.label, run(e, false), false);

    appendf(out, "\n=== Fig. 14b: GNMT inference ===\n");
    for (const Fig14Entry &e : fig14GnmtEntries())
        printNet(out, e.label, run(e, false), false);

    appendf(out, "\n=== Fig. 14c: CNN end-to-end training ===\n");
    for (const Fig14Entry &e : fig14CnnEntries())
        printNet(out, e.label, run(e, true), true);

    appendf(out, "\n=== Fig. 14d: GNMT end-to-end training ===\n");
    for (const Fig14Entry &e : fig14GnmtEntries())
        printNet(out, e.label, run(e, true), true);

    appendf(out,
            "\nPaper (dynamic, MP): inference 1.68x/1.37x/1.59x "
            "(VGG/ResNet/ResNet-pruned), 1.39x GNMT; training "
            "1.64x/1.29x/1.42x, 1.28x GNMT.\n");
    return out;
}

} // namespace save
