#include "dnn/slice_batch.h"

#include <map>
#include <tuple>

namespace save {

SliceKey
SliceBatch::keyAt(std::size_t i) const
{
    return SliceKey{mr,     nr,   kSteps,   pattern, precision,
                    saveOn, vpus, wBins[i], aBins[i]};
}

std::vector<SliceBatch>
batchSlices(const std::vector<SliceKey> &keys, std::size_t maxPoints)
{
    using Shape =
        std::tuple<int, int, int, uint8_t, uint8_t, uint8_t, uint8_t>;
    std::vector<SliceBatch> batches;
    // Shape -> index of that shape's currently-open batch.
    std::map<Shape, std::size_t> open;

    for (std::size_t i = 0; i < keys.size(); ++i) {
        const SliceKey &k = keys[i];
        Shape shape{k.mr,       k.nr,     k.kSteps, k.pattern,
                    k.precision, k.saveOn, k.vpus};
        auto it = open.find(shape);
        if (it == open.end() ||
            batches[it->second].size() >= maxPoints) {
            SliceBatch b;
            b.mr = k.mr;
            b.nr = k.nr;
            b.kSteps = k.kSteps;
            b.pattern = k.pattern;
            b.precision = k.precision;
            b.saveOn = k.saveOn;
            b.vpus = k.vpus;
            batches.push_back(std::move(b));
            open[shape] = batches.size() - 1;
            it = open.find(shape);
        }
        SliceBatch &b = batches[it->second];
        b.wBins.push_back(k.wBin);
        b.aBins.push_back(k.aBin);
        b.srcIdx.push_back(static_cast<uint32_t>(i));
        b.times.push_back(0.0);
    }
    return batches;
}

} // namespace save
