#include "dnn/surface.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace save {

void
SparsitySurface::set(int w_bin, int a_bin, double time_ns)
{
    SAVE_ASSERT(w_bin >= 0 && w_bin < kGrid && a_bin >= 0 &&
                a_bin < kGrid, "bad surface bin");
    t_[static_cast<size_t>(w_bin)][static_cast<size_t>(a_bin)] = time_ns;
    set_[static_cast<size_t>(w_bin)][static_cast<size_t>(a_bin)] = true;
}

double
SparsitySurface::at(int w_bin, int a_bin) const
{
    SAVE_ASSERT(set_[static_cast<size_t>(w_bin)]
                    [static_cast<size_t>(a_bin)],
                "surface bin not sampled");
    return t_[static_cast<size_t>(w_bin)][static_cast<size_t>(a_bin)];
}

double
SparsitySurface::timeAt(double ws, double as) const
{
    ws = std::clamp(ws, 0.0, kMax);
    as = std::clamp(as, 0.0, kMax);
    double wf = ws / kStep;
    double af = as / kStep;
    int w0 = std::min(static_cast<int>(wf), kGrid - 1);
    int a0 = std::min(static_cast<int>(af), kGrid - 1);
    int w1 = std::min(w0 + 1, kGrid - 1);
    int a1 = std::min(a0 + 1, kGrid - 1);
    double dw = wf - w0;
    double da = af - a0;
    double t00 = at(w0, a0), t01 = at(w0, a1);
    double t10 = at(w1, a0), t11 = at(w1, a1);
    return t00 * (1 - dw) * (1 - da) + t10 * dw * (1 - da) +
           t01 * (1 - dw) * da + t11 * dw * da;
}

bool
SparsitySurface::complete() const
{
    for (const auto &row : set_)
        for (bool b : row)
            if (!b)
                return false;
    return true;
}

SparsitySurface
buildSurface(const std::function<double(double, double)> &fn)
{
    SparsitySurface s;
    for (int w = 0; w < SparsitySurface::kGrid; ++w)
        for (int a = 0; a < SparsitySurface::kGrid; ++a)
            s.set(w, a, fn(w * SparsitySurface::kStep,
                           a * SparsitySurface::kStep));
    return s;
}

} // namespace save
