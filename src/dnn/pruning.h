/**
 * @file
 * Magnitude-pruning schedules (paper SecVI, Fig. 13).
 *
 * The paper prunes with the Zhu-Gupta gradual schedule [69]: weight
 * sparsity ramps from 0 to the target along a cubic curve between a
 * start and an end step, then holds. ResNet-50 prunes from epoch 32
 * to 80% at epoch 60 (training ends at 102); GNMT prunes from
 * iteration 40K to 90% at 190K (training ends at 340K).
 */

#ifndef SAVE_DNN_PRUNING_H
#define SAVE_DNN_PRUNING_H

#include <cstdint>

namespace save {

/** A gradual pruning schedule. */
struct PruningSchedule
{
    double targetSparsity = 0.0;
    int64_t startStep = 0;
    int64_t endStep = 0;
    int64_t totalSteps = 1;

    /** Weight sparsity at a training step (Zhu-Gupta cubic ramp). */
    double sparsityAt(int64_t step) const;

    /** Sparsity at the end of training (what inference sees). */
    double finalSparsity() const { return sparsityAt(totalSteps - 1); }

    bool prunes() const { return targetSparsity > 0.0; }

    /** Dense training: sparsity stays zero. */
    static PruningSchedule none(int64_t total_steps);

    /** Paper Fig. 13 top: ResNet-50, epochs 32->60, 80%, 102 epochs. */
    static PruningSchedule resnet50();

    /** Paper Fig. 13 bottom: GNMT, iters 40K->190K, 90%, 340K iters.
     *  Expressed in sampled units of 10K iterations. */
    static PruningSchedule gnmt();
};

} // namespace save

#endif // SAVE_DNN_PRUNING_H
