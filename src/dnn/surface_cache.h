/**
 * @file
 * Persistent on-disk cache for simulated slice-time surfaces — the
 * legacy v1 format.
 *
 * Superseded by the content-addressed result store (cache/
 * result_store.h): the estimator now persists through per-record CAS
 * appends instead of whole-file rewrites, and keeps this reader only
 * to migrate v1 files it finds in the cache directory (migrated files
 * are renamed to `<path>.migrated`). The writer remains for the v1
 * format's own tests.
 *
 * File format (little-endian, versioned):
 *   u64 magic  'SAVESRF\0'
 *   u32 version
 *   u64 configHash   -- hash of everything outside the record key that
 *                       affects slice times (MachineConfig, SaveConfig,
 *                       estimator tiles/cores/seed). A mismatch rejects
 *                       the whole file: stale caches are never mixed
 *                       with fresh simulations.
 *   u64 count
 *   count x SurfaceRecord (packed field-by-field, no struct padding)
 *
 * Writes go to a uniquely-named temp file in the same directory and
 * are renamed into place, so concurrent readers only ever see complete
 * files and concurrent writers never clobber each other's temp file.
 * A file that fails content validation on load (bad magic, version
 * skew, hash mismatch, truncation) is quarantined to `<path>.corrupt`
 * so the next run starts clean and the evidence survives for
 * inspection — corruption is reported, never silently retried.
 */

#ifndef SAVE_DNN_SURFACE_CACHE_H
#define SAVE_DNN_SURFACE_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"

namespace save {

/** One cached slice time: the estimator's surface-point key + value. */
struct SurfaceRecord
{
    int32_t mr = 0;
    int32_t nr = 0;
    int32_t kSteps = 0;
    uint8_t pattern = 0;
    uint8_t precision = 0;
    uint8_t saveOn = 0;
    uint8_t vpus = 0;
    uint8_t wBin = 0;
    uint8_t aBin = 0;
    double timeNs = 0.0;
};

/** Load/save surface records for one (machine, features) config. */
class SurfaceCache
{
  public:
    static constexpr uint32_t kVersion = 1;

    /** @param dir Cache directory (created on save if missing). Empty
     *             disables the cache: load() returns false, save() is
     *             a no-op.
     *  @param config_hash See hashConfig(). Also keys the file name,
     *             so different configurations never collide. */
    SurfaceCache(std::string dir, uint64_t config_hash);

    /** True when a directory was configured. */
    bool enabled() const { return !dir_.empty(); }

    /** The cache file this instance reads/writes. */
    std::string path() const;

    /** The configuration hash this cache is keyed by. */
    uint64_t configHash() const { return config_hash_; }

    /**
     * Read all records from path(). Returns false (and explains in
     * *why, when given) on a missing file, bad magic, version skew, or
     * config-hash mismatch; out is left empty in every failure case.
     * Corrupt content additionally quarantines the file to
     * `<path>.corrupt` (with a warning) so a rerun rebuilds it.
     */
    bool load(std::vector<SurfaceRecord> &out,
              std::string *why = nullptr) const;

    /** Atomically replace path() with the given records. Returns false
     *  (with a warning) on I/O failure; never throws. */
    bool save(const std::vector<SurfaceRecord> &records) const;

    /**
     * FNV-1a over every MachineConfig/SaveConfig field plus the extra
     * salt (estimator knobs that shift slice times), serialized
     * field-by-field so struct padding can never leak into the hash.
     */
    static uint64_t hashConfig(const MachineConfig &mcfg,
                               const SaveConfig &scfg, uint64_t salt);

  private:
    std::string dir_;
    uint64_t config_hash_;
};

} // namespace save

#endif // SAVE_DNN_SURFACE_CACHE_H
