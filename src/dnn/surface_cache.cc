#include "dnn/surface_cache.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include <unistd.h>

#include "cache/cas_key.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/posix_io.h"

namespace save {

namespace {

constexpr uint64_t kMagic = 0x0046525345564153ull; // "SAVESRF\0"

/** Buffer-backed put/get: the whole file is composed in memory and
 *  written (or read) in one EINTR-safe posix_io call. */
template <typename T>
void
put(std::string &buf, T value)
{
    buf.append(reinterpret_cast<const char *>(&value), sizeof(T));
}

/** In-memory cursor over a loaded file image. */
struct Cursor
{
    const char *p;
    const char *end;
};

template <typename T>
bool
get(Cursor &c, T &value)
{
    if (static_cast<size_t>(c.end - c.p) < sizeof(T))
        return false;
    std::memcpy(&value, c.p, sizeof(T));
    c.p += sizeof(T);
    return true;
}

void
putRecord(std::string &buf, const SurfaceRecord &r)
{
    put(buf, r.mr);
    put(buf, r.nr);
    put(buf, r.kSteps);
    put(buf, r.pattern);
    put(buf, r.precision);
    put(buf, r.saveOn);
    put(buf, r.vpus);
    put(buf, r.wBin);
    put(buf, r.aBin);
    put(buf, r.timeNs);
}

bool
getRecord(Cursor &c, SurfaceRecord &r)
{
    return get(c, r.mr) && get(c, r.nr) && get(c, r.kSteps) &&
           get(c, r.pattern) && get(c, r.precision) &&
           get(c, r.saveOn) && get(c, r.vpus) && get(c, r.wBin) &&
           get(c, r.aBin) && get(c, r.timeNs);
}

bool
fail(std::string *why, const std::string &msg)
{
    if (why)
        *why = msg;
    return false;
}

/** Move a content-corrupt cache file aside so the next run rebuilds
 *  it while the evidence survives for inspection. */
bool
quarantine(const std::string &path, std::string *why,
           const std::string &msg)
{
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec)
        std::filesystem::remove(path, ec);
    SAVE_WARN("quarantined corrupt cache file ", path, " -> ", path,
              ".corrupt: ", msg);
    return fail(why, msg);
}

} // namespace

SurfaceCache::SurfaceCache(std::string dir, uint64_t config_hash)
    : dir_(std::move(dir)), config_hash_(config_hash)
{
}

std::string
SurfaceCache::path() const
{
    if (dir_.empty())
        return "";
    char name[64];
    std::snprintf(name, sizeof(name), "surface-%016llx.savecache",
                  static_cast<unsigned long long>(config_hash_));
    return (std::filesystem::path(dir_) / name).string();
}

bool
SurfaceCache::load(std::vector<SurfaceRecord> &out, std::string *why) const
{
    out.clear();
    if (!enabled())
        return fail(why, "cache disabled (no directory configured)");

    std::string image;
    std::string io_why;
    if (!readFileBytes(path(), image, &io_why))
        return fail(why, "no cache file at " + path() + " (" + io_why +
                             ")");
    Cursor c{image.data(), image.data() + image.size()};

    uint64_t magic = 0;
    uint32_t version = 0;
    uint64_t hash = 0;
    uint64_t count = 0;
    if (!get(c, magic) || magic != kMagic)
        return quarantine(path(), why, "bad magic (not a surface cache)");
    if (!get(c, version) || version != kVersion)
        return quarantine(path(), why,
                          "version " + std::to_string(version) +
                              " != expected " + std::to_string(kVersion));
    if (!get(c, hash) || hash != config_hash_)
        return quarantine(path(), why,
                          "config-hash mismatch (machine/feature/"
                          "estimator configuration changed)");
    if (!get(c, count))
        return quarantine(path(), why, "truncated header");

    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        SurfaceRecord r;
        if (!getRecord(c, r)) {
            out.clear();
            return quarantine(path(), why,
                              "truncated record " + std::to_string(i));
        }
        out.push_back(r);
    }
    return true;
}

bool
SurfaceCache::save(const std::vector<SurfaceRecord> &records) const
{
    if (!enabled())
        return false;

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        SAVE_WARN("cannot create cache dir ", dir_, ": ", ec.message());
        return false;
    }

    // Unique temp name per writer: concurrent processes (or two
    // estimators in one process) flushing the same cache must never
    // interleave writes into a shared temp file.
    static std::atomic<uint64_t> tmp_serial{0};
    std::string final_path = path();
    std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(tmp_serial.fetch_add(1));
    std::string image;
    image.reserve(28 + records.size() * sizeof(SurfaceRecord));
    put(image, kMagic);
    put(image, kVersion);
    put(image, config_hash_);
    put(image, static_cast<uint64_t>(records.size()));
    for (const SurfaceRecord &r : records)
        putRecord(image, r);
    std::string io_why;
    if (!writeFileBytes(tmp_path, image.data(), image.size(),
                        &io_why)) {
        SAVE_WARN("cannot write cache file ", tmp_path, ": ", io_why);
        return false;
    }
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        SAVE_WARN("cannot move cache file into place: ", ec.message());
        std::filesystem::remove(tmp_path, ec);
        return false;
    }
    // Test hook: deterministic corruption of the just-written file
    // (SAVE_FAULT_INJECT cache-truncate/cache-bitflip).
    FaultInjector::global().maybeTamperCacheFile(final_path,
                                                config_hash_);
    return true;
}

uint64_t
SurfaceCache::hashConfig(const MachineConfig &m, const SaveConfig &s,
                         uint64_t salt)
{
    // One digest, one definition: the CAS key derivation owns the
    // field list (cache/cas_key.cc) so the v1 surface format and the
    // result store can never disagree about what "same config" means.
    return casHashConfig(m, s, salt);
}

} // namespace save
