/**
 * @file
 * Structure-of-arrays batching of independent estimator surface
 * points.
 *
 * The estimator's prefetch enumerates hundreds of slice simulations
 * whose keys differ only in their sparsity bins: layers sharing a
 * micro-kernel shape produce one point per (wBin, aBin) corner. The
 * old fan-out submitted one pool task per point, so the shape header
 * (mr/nr/kSteps/pattern/precision/saveOn/vpus) was re-carried — and a
 * full Key re-built — for every task. `batchSlices` groups the points
 * by shape instead: the header is stored once per batch, the per-point
 * bins and results live in parallel arrays (structure of arrays), and
 * the pool runs one task per batch. Grouping is purely a scheduling
 * change — every point still simulates with its own seeded Engine —
 * so results are bit-identical to the per-point fan-out.
 */

#ifndef SAVE_DNN_SLICE_BATCH_H
#define SAVE_DNN_SLICE_BATCH_H

#include <compare>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace save {

/** One surface point: micro-kernel shape plus binned sparsities.
 *  This is the estimator's cache key (TrainingEstimator::Key). */
struct SliceKey
{
    int mr, nr, kSteps;
    uint8_t pattern, precision, saveOn, vpus, wBin, aBin;
    auto operator<=>(const SliceKey &) const = default;
};

/** SoA batch of surface points sharing one micro-kernel shape. */
struct SliceBatch
{
    /** Shape header, identical across every point in the batch. */
    int mr = 0, nr = 0, kSteps = 0;
    uint8_t pattern = 0, precision = 0, saveOn = 0, vpus = 0;

    /** Per-point parallel arrays. `srcIdx` maps a point back to its
     *  slot in the caller's key list (and whatever the caller keeps
     *  parallel to it, e.g. the single-flight promises); `times` is
     *  sized by batchSlices and filled by the runner. */
    std::vector<uint8_t> wBins;
    std::vector<uint8_t> aBins;
    std::vector<uint32_t> srcIdx;
    std::vector<double> times;

    std::size_t size() const { return wBins.size(); }

    /** Reassemble the full key of point i from header + bins. */
    SliceKey keyAt(std::size_t i) const;
};

/**
 * Group keys into SoA batches by shape, preserving the first-request
 * order of the groups and of the members within each group. A group
 * that grows past maxPoints is split into successive batches so one
 * populous shape cannot serialize the whole fan-out onto a single
 * pool task.
 */
std::vector<SliceBatch> batchSlices(const std::vector<SliceKey> &keys,
                                    std::size_t maxPoints = 16);

} // namespace save

#endif // SAVE_DNN_SLICE_BATCH_H
