/**
 * @file
 * The evaluated networks (paper SecVI): VGG16 and ResNet-50 on
 * ImageNet, GNMT on WMT'16 EN-DE. Layer tables follow the published
 * architectures; GNMT is enumerated as 27 GEMM cells (8+1 encoder
 * LSTMs incl. the bidirectional bottom pair, 8 decoder LSTMs, 3
 * attention GEMMs, and the output projection split into 7 N-slices),
 * giving the paper's 93 studied kernels together with VGG16's 13 and
 * ResNet-50's 53 conv layers.
 */

#ifndef SAVE_DNN_NETWORKS_H
#define SAVE_DNN_NETWORKS_H

#include <string>
#include <vector>

#include "dnn/activation_profile.h"
#include "dnn/pruning.h"
#include "kernels/conv.h"
#include "kernels/lstm.h"

namespace save {

/** A network plus everything the estimator needs to evaluate it. */
struct NetworkModel
{
    std::string name;
    bool pruned = false;
    std::vector<ConvLayer> convLayers;
    std::vector<LstmCell> cells;
    ActivationProfile::Kind profileKind = ActivationProfile::Kind::Vgg16;
    PruningSchedule schedule;
    /** ReLU makes output gradients sparse (VGG16); BatchNorm removes
     *  that sparsity (ResNet-50, paper SecVI). */
    bool sparseGradients = false;
    int batch = 32;

    bool isLstm() const { return !cells.empty(); }
    int numKernels() const
    {
        return static_cast<int>(convLayers.size() + cells.size());
    }
    int64_t steps() const { return schedule.totalSteps; }

    ActivationProfile profile() const
    {
        return ActivationProfile(profileKind, numKernels(),
                                 schedule.totalSteps);
    }
};

/** VGG16 with dense weights (activation sparsity only). */
NetworkModel vgg16Dense();
/** ResNet-50 trained dense. */
NetworkModel resnet50Dense();
/** ResNet-50 with gradual magnitude pruning to 80%. */
NetworkModel resnet50Pruned();
/** GNMT with gradual magnitude pruning to 90%. */
NetworkModel gnmtPruned();

/** Find a conv layer by name; panics when missing. */
const ConvLayer &findConvLayer(const NetworkModel &net,
                               const std::string &name);

/** All 93 forward kernels across the three network families. */
std::vector<KernelSpec> allStudiedKernels(int batch = 32);

} // namespace save

#endif // SAVE_DNN_NETWORKS_H
