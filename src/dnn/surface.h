/**
 * @file
 * The 2D sparsity-to-time surface of the paper's sampling methodology
 * (SecVI): each kernel is simulated at weight (NBS) and activation
 * (BS) sparsities of 0%-90% in 10% steps, and realistic training
 * sparsities are mapped onto the surface by bilinear interpolation.
 */

#ifndef SAVE_DNN_SURFACE_H
#define SAVE_DNN_SURFACE_H

#include <array>
#include <functional>

namespace save {

/** A 10x10 grid of execution times indexed by sparsity bins. */
class SparsitySurface
{
  public:
    static constexpr int kGrid = 10;
    static constexpr double kStep = 0.1;
    static constexpr double kMax = 0.9;

    /** Set time at (weight_bin, act_bin); bins are 0..9 for 0%..90%. */
    void set(int w_bin, int a_bin, double time_ns);

    double at(int w_bin, int a_bin) const;

    /** Bilinear interpolation at arbitrary sparsities, clamped to the
     *  sampled [0, 0.9] range. */
    double timeAt(double weight_sparsity, double act_sparsity) const;

    bool complete() const;

  private:
    std::array<std::array<double, kGrid>, kGrid> t_{};
    std::array<std::array<bool, kGrid>, kGrid> set_{};
};

/** Build a full surface by sampling a time function on the grid. */
SparsitySurface
buildSurface(const std::function<double(double ws, double as)> &fn);

} // namespace save

#endif // SAVE_DNN_SURFACE_H
