#include "dnn/pruning.h"

#include "util/logging.h"

namespace save {

double
PruningSchedule::sparsityAt(int64_t step) const
{
    if (!prunes() || step < startStep)
        return 0.0;
    if (step >= endStep)
        return targetSparsity;
    double frac = static_cast<double>(step - startStep) /
                  static_cast<double>(endStep - startStep);
    double keep = 1.0 - frac;
    // Zhu & Gupta: s_t = s_f * (1 - (1 - t')^3).
    return targetSparsity * (1.0 - keep * keep * keep);
}

PruningSchedule
PruningSchedule::none(int64_t total_steps)
{
    PruningSchedule p;
    p.totalSteps = total_steps;
    return p;
}

PruningSchedule
PruningSchedule::resnet50()
{
    PruningSchedule p;
    p.targetSparsity = 0.80;
    p.startStep = 32;
    p.endStep = 60;
    p.totalSteps = 102;
    return p;
}

PruningSchedule
PruningSchedule::gnmt()
{
    PruningSchedule p;
    // Units of 10K iterations: 40K -> 190K out of 340K.
    p.targetSparsity = 0.90;
    p.startStep = 4;
    p.endStep = 19;
    p.totalSteps = 34;
    return p;
}

} // namespace save
