/**
 * @file
 * Whole-network inference/training time estimation — the paper's
 * sampling methodology (SecVI):
 *
 *  1. For every kernel (layer x phase), simulate a steady-state slice
 *     at sparsities on a 10% grid -> a 2D time surface.
 *  2. Map the profiled per-epoch weight/activation sparsities onto
 *     the surface by (bi)linear interpolation.
 *  3. Sum layers per epoch; average epochs for the mean training
 *     time; use final-epoch sparsity for inference.
 *
 * Surfaces are cached by micro-kernel shape: layers sharing a shape
 * share a slice surface and differ only by their MAC-count scale
 * (DESIGN.md substitution 5).
 *
 * Operating points (Fig. 14): the baseline machine (2 VPUs, 1.7GHz),
 * SAVE with 2 VPUs, SAVE with 1 VPU at 2.1GHz (SecIV-D), `static`
 * (best fixed VPU count per epoch), and `dynamic` (best per kernel).
 */

#ifndef SAVE_DNN_ESTIMATOR_H
#define SAVE_DNN_ESTIMATOR_H

#include <cstdint>
#include <map>
#include <string>

#include "dnn/networks.h"
#include "engine/engine.h"

namespace save {

/** Estimator tuning knobs. */
struct EstimatorOptions
{
    /** Slice length (K steps) and register-tile repetitions. Longer
     *  slices amortize prologue/drain and approach the steady-state
     *  cap; 192x6 reproduces the paper's speedup caps well. */
    int kSteps = 192;
    int tiles = 6;
    /** Active cores in each slice simulation (share of the machine). */
    int cores = 1;
    /** Sample every gridStep-th 10% bin (3 -> 0/30/60/90%); times in
     *  between are linearly interpolated. 1 reproduces the paper. */
    int gridStep = 1;
    uint64_t seed = 7;
};

/** Per-phase time breakdown (ns), Fig. 14 bar segments. */
struct PhaseBreakdown
{
    double firstLayer = 0;
    double forward = 0;
    double bwdInput = 0;
    double bwdWeights = 0;

    double
    total() const
    {
        return firstLayer + forward + bwdInput + bwdWeights;
    }

    PhaseBreakdown &operator+=(const PhaseBreakdown &o);
    PhaseBreakdown &operator*=(double f);
};

/** Times for all Fig. 14 operating points. */
struct NetResult
{
    PhaseBreakdown baseline2;
    PhaseBreakdown save2;
    PhaseBreakdown save1;
    PhaseBreakdown saveStatic;
    PhaseBreakdown saveDynamic;
};

/** Surface-cached whole-network estimator. */
class TrainingEstimator
{
  public:
    TrainingEstimator(MachineConfig mcfg, SaveConfig save_features,
                      EstimatorOptions opt);

    /** Forward pass at end-of-training sparsity. */
    NetResult inference(const NetworkModel &net, Precision precision);

    /** Mean per-epoch time across the whole training run. */
    NetResult training(const NetworkModel &net, Precision precision);

    /**
     * Time of one kernel at given sparsities (ns, full layer).
     * save_on selects the SAVE feature set vs the baseline pipeline.
     */
    double kernelTime(const KernelSpec &spec, Precision precision,
                      double bs, double nbs, bool save_on, int vpus);

    /** Slice simulations performed so far (cache misses). */
    uint64_t simulations() const { return sims_; }

  private:
    struct Key
    {
        int mr, nr, kSteps;
        uint8_t pattern, precision, saveOn, vpus, wBin, aBin;
        auto operator<=>(const Key &) const = default;
    };

    /** Simulated slice time in ns at binned sparsities. */
    double sliceTime(const Key &key);
    /** gridStep-aware bilinear interpolation over slice times. */
    double interpTime(Key key, double nbs, double bs);

    /** Accumulate one epoch of one network into the result. */
    void addEpoch(const NetworkModel &net, Precision precision,
                  int64_t step, bool inference_only, NetResult &acc);

    MachineConfig mcfg_;
    SaveConfig save_cfg_;
    EstimatorOptions opt_;
    Engine base_engine_;
    Engine save_engine_;
    std::map<Key, double> cache_;
    uint64_t sims_ = 0;
};

} // namespace save

#endif // SAVE_DNN_ESTIMATOR_H
