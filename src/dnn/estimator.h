/**
 * @file
 * Whole-network inference/training time estimation — the paper's
 * sampling methodology (SecVI):
 *
 *  1. For every kernel (layer x phase), simulate a steady-state slice
 *     at sparsities on a 10% grid -> a 2D time surface.
 *  2. Map the profiled per-epoch weight/activation sparsities onto
 *     the surface by (bi)linear interpolation.
 *  3. Sum layers per epoch; average epochs for the mean training
 *     time; use final-epoch sparsity for inference.
 *
 * Surfaces are cached by micro-kernel shape: layers sharing a shape
 * share a slice surface and differ only by their MAC-count scale
 * (DESIGN.md substitution 5).
 *
 * The surface points of a network are hundreds of *independent*,
 * seeded slice simulations, so the estimator enumerates them up front
 * (deterministically) and fans them out across a host thread pool;
 * the serial accumulation that follows reads only cached values, so
 * results are bit-identical for any thread count. With a cache
 * directory configured (SAVE_CACHE_DIR or EstimatorOptions::cacheDir)
 * surfaces persist across process runs. See DESIGN.md, "Parallel
 * estimator".
 *
 * Operating points (Fig. 14): the baseline machine (2 VPUs, 1.7GHz),
 * SAVE with 2 VPUs, SAVE with 1 VPU at 2.1GHz (SecIV-D), `static`
 * (best fixed VPU count per epoch), and `dynamic` (best per kernel).
 */

#ifndef SAVE_DNN_ESTIMATOR_H
#define SAVE_DNN_ESTIMATOR_H

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/result_store.h"
#include "dnn/networks.h"
#include "dnn/slice_batch.h"
#include "dnn/surface_cache.h"
#include "engine/engine.h"
#include "proc/worker_pool.h"
#include "util/thread_pool.h"

namespace save {

/**
 * Resolve the slice-execution isolation mode: `opt` if non-empty, else
 * the SAVE_ISOLATION environment variable, else "thread". Accepted
 * values: "none" (strictly serial, in-process), "thread" (in-process
 * thread-pool fan-out, the default), "process" (sandboxed worker
 * subprocesses, src/proc). Throws ConfigError on anything else.
 */
std::string resolveIsolation(const std::string &opt);

/** Estimator tuning knobs. */
struct EstimatorOptions
{
    /** Slice length (K steps) and register-tile repetitions. Longer
     *  slices amortize prologue/drain and approach the steady-state
     *  cap; 192x6 reproduces the paper's speedup caps well. */
    int kSteps = 192;
    int tiles = 6;
    /** Active cores in each slice simulation (share of the machine). */
    int cores = 1;
    /** Sample every gridStep-th 10% bin (3 -> 0/30/60/90%); times in
     *  between are linearly interpolated. 1 reproduces the paper. */
    int gridStep = 1;
    uint64_t seed = 7;
    /** Host threads for the slice-simulation fan-out: 0 shares the
     *  process-global pool (SAVE_THREADS or hardware concurrency),
     *  1 runs strictly serially, N >= 2 uses a dedicated N-thread
     *  pool. Results are identical for every setting. */
    int threads = 0;
    /** Persistent result-store directory. Empty defers to the
     *  SAVE_CACHE_DIR environment variable; "none" disables
     *  persistence even when the variable is set. */
    std::string cacheDir;
    /** Result-store size cap in MB; eviction compacts the least-
     *  recently-used records past it. 0 defers to SAVE_CACHE_MAX_MB
     *  (unlimited when that is unset too). */
    int cacheMaxMb = 0;
    /** Extra attempts after a slice simulation throws. Each retry
     *  rebuilds the Engine from scratch, so a transient fault (e.g.
     *  injected via SAVE_FAULT_INJECT) cannot poison later attempts. */
    int maxRetries = 2;
    /** Rethrow the first slice failure instead of recording it and
     *  continuing with the rest of the sweep. */
    bool failFast = false;
    /** Slice-execution isolation: ""/"none"/"thread"/"process"; empty
     *  defers to SAVE_ISOLATION, then "thread". Results are
     *  bit-identical across all modes. See resolveIsolation(). */
    std::string isolation;
    /** Worker-pool knobs; only consulted when isolation resolves to
     *  "process". proc.workers == 0 matches the thread count. */
    ProcOptions proc;

    /** Throws ConfigError on out-of-range knobs; the estimator ctor
     *  calls this. */
    void validate() const;
};

/** One permanently failed surface point (all retries exhausted). */
struct SliceFailure
{
    /** Human-readable point id, e.g. "slice mr=4 nr=6 ... wBin=3". */
    std::string point;
    /** what() of the final attempt's exception. */
    std::string reason;
    /** Attempts made (1 + retries). */
    int attempts = 0;
};

/** Per-phase time breakdown (ns), Fig. 14 bar segments. */
struct PhaseBreakdown
{
    double firstLayer = 0;
    double forward = 0;
    double bwdInput = 0;
    double bwdWeights = 0;

    double
    total() const
    {
        return firstLayer + forward + bwdInput + bwdWeights;
    }

    PhaseBreakdown &operator+=(const PhaseBreakdown &o);
    PhaseBreakdown &operator*=(double f);
};

/** Times for all Fig. 14 operating points. */
struct NetResult
{
    PhaseBreakdown baseline2;
    PhaseBreakdown save2;
    PhaseBreakdown save1;
    PhaseBreakdown saveStatic;
    PhaseBreakdown saveDynamic;
};

/**
 * sweepResultPoisoned: true when a sweep-point result carries the NaN
 * marker of a permanently failed slice. The journaled sweep driver
 * (bench/bench_util.h) consults this so poisoned results are never
 * journaled as successes and a resumed run re-attempts them instead
 * of replaying the failure forever.
 */
inline bool
sweepResultPoisoned(const PhaseBreakdown &b)
{
    return std::isnan(b.firstLayer) || std::isnan(b.forward) ||
           std::isnan(b.bwdInput) || std::isnan(b.bwdWeights);
}

inline bool
sweepResultPoisoned(const NetResult &r)
{
    return sweepResultPoisoned(r.baseline2) ||
           sweepResultPoisoned(r.save2) ||
           sweepResultPoisoned(r.save1) ||
           sweepResultPoisoned(r.saveStatic) ||
           sweepResultPoisoned(r.saveDynamic);
}

/** Surface-cached whole-network estimator. Thread-safe: concurrent
 *  kernelTime/inference/training calls share the single-flight surface
 *  cache. */
class TrainingEstimator
{
  public:
    TrainingEstimator(MachineConfig mcfg, SaveConfig save_features,
                      EstimatorOptions opt);

    /**
     * Reentrant-facade constructor: fan out over `shared_pool` and
     * consult `shared_store` instead of creating private ones. Either
     * may be null (falling back to the EstimatorOptions behavior).
     * Both handles must outlive the estimator; neither is owned. This
     * is how SimSession (src/serve) gives every daemon worker session
     * its own estimator while sharing one pool and one CAS store.
     */
    TrainingEstimator(MachineConfig mcfg, SaveConfig save_features,
                      EstimatorOptions opt, ThreadPool *shared_pool,
                      ResultStore *shared_store);

    ~TrainingEstimator();

    /** Forward pass at end-of-training sparsity. */
    NetResult inference(const NetworkModel &net, Precision precision);

    /** Mean per-epoch time across the whole training run. */
    NetResult training(const NetworkModel &net, Precision precision);

    /**
     * Simulate every surface point the given evaluation will touch,
     * fanned out across the thread pool. inference()/training() call
     * this themselves; it is public so callers can warm several
     * networks ahead of time.
     */
    void prefetch(const NetworkModel &net, Precision precision,
                  bool inference_only);

    /**
     * Time of one kernel at given sparsities (ns, full layer).
     * save_on selects the SAVE feature set vs the baseline pipeline.
     */
    double kernelTime(const KernelSpec &spec, Precision precision,
                      double bs, double nbs, bool save_on, int vpus);

    /** Slice simulations performed so far (persistent-store misses
     *  actually executed by this process). */
    uint64_t simulations() const
    {
        return sims_.load(std::memory_order_relaxed);
    }

    /** Surface points served from the persistent result store. */
    uint64_t persistentHits() const
    {
        return store_ ? store_->hits() : 0;
    }

    /** The persistent result store (disabled instance when no cache
     *  directory is configured). For counters/diagnostics. */
    const ResultStore *resultStore() const { return store_; }

    /** Worker threads the fan-out uses (1 = serial path). */
    int threads() const;

    /** Surface points that exhausted their retries. Their times are
     *  quiet NaN, which propagates through interpolation so callers
     *  can detect a poisoned result with std::isnan. */
    std::vector<SliceFailure> failures() const;

    /** Multi-line report of all failures; empty string when clean.
     *  Includes the worker-pool status once any worker crashed. */
    std::string failureReport() const;

    /** Resolved isolation mode: "none", "thread", or "process". */
    const std::string &isolation() const { return isolation_; }

    /** The worker pool; null unless isolation() == "process". */
    WorkerPool *processPool() { return proc_pool_.get(); }

    /**
     * One slice simulation with explicit inputs — the shared core of
     * in-process execution and the save-worker binary, so out-of-
     * process results are bit-identical by construction. `seed` is
     * EstimatorOptions::seed (the per-point offset is derived from the
     * key's sparsity bins internally).
     */
    static KernelResult simulateSliceKernel(const MachineConfig &mcfg,
                                            const SaveConfig &save_on_cfg,
                                            const SliceKey &key,
                                            int tiles, int cores,
                                            uint64_t seed);

  private:
    /** Surface-point cache key (shape + sparsity bins); shared with
     *  the SoA prefetch batching in dnn/slice_batch.h. */
    using Key = SliceKey;

    /** Sparsity-bin corners + interpolation weights for one lookup. */
    struct BinWeights
    {
        int w0, w1, a0, a1;
        double dw, da;
    };
    BinWeights binWeights(double nbs, double bs) const;

    /** One slice attempt plus where it ran: a slice that executed in
     *  a sandboxed worker was already persisted by that worker, so the
     *  parent must not append a duplicate record. */
    struct SliceOutcome
    {
        KernelResult result;
        bool fromWorker = false;
    };

    /** Run one slice simulation (pure: no estimator state touched;
     *  the worker builds its own short-lived Engine). */
    KernelResult simulateSlice(const Key &key) const;

    /** CAS identity of a surface point (config digest + workload). */
    CasKey casKey(const Key &key) const;

    /** Stable hash of a surface point (fault-injection site id and
     *  failure-report label share it). */
    uint64_t keyHash(const Key &key) const;
    std::string keyLabel(const Key &key) const;

    /** simulateSlice with the retry/fault-isolation policy applied.
     *  Returns a NaN-timed result after maxRetries + 1 failed attempts
     *  (recording a SliceFailure) unless failFast, which rethrows. */
    SliceOutcome simulateWithRetry(const Key &key);

    /** One attempt of one slice under the resolved isolation mode:
     *  dispatches to the worker pool (falling back in-process once it
     *  degrades) or runs simulateSlice directly. */
    SliceOutcome runSliceIsolated(const Key &key, int attempt);

    /**
     * Produce one point the persistent store does not have yet:
     * cross-process single-flight (losers wait for the owner's
     * insert), then simulate with the retry policy and persist the
     * finite result — from the parent in-process, or from the worker
     * that ran it. Returns the slice time (NaN = permanently failed).
     */
    double computeCold(const Key &key);

    /** Simulated slice time in ns at binned sparsities; single-flight
     *  cached so concurrent callers never duplicate a simulation. */
    double sliceTime(const Key &key);
    /** gridStep-aware bilinear interpolation over slice times. */
    double interpTime(Key key, double nbs, double bs);

    /** Key for one kernel invocation before sparsity binning. */
    Key baseKey(const KernelSpec &spec, Precision precision,
                double bs, double nbs, bool save_on, int vpus) const;

    /** Invoke fn for every kernel evaluation of one epoch, in the
     *  exact order addEpoch accumulates them. */
    void forEachKernel(
        const NetworkModel &net, int64_t step, bool inference_only,
        const std::function<void(const KernelSpec &, double bs,
                                 double nbs, bool first_layer,
                                 double mac_factor)> &fn) const;

    /** Accumulate one epoch of one network into the result. */
    void addEpoch(const NetworkModel &net, Precision precision,
                  int64_t step, bool inference_only, NetResult &acc);

    MachineConfig mcfg_;
    SaveConfig save_cfg_;
    EstimatorOptions opt_;

    std::string isolation_;

    /** Owned pool for threads >= 2; null for serial or global-pool
     *  mode (see EstimatorOptions::threads). */
    std::unique_ptr<ThreadPool> owned_pool_;
    ThreadPool *pool_ = nullptr;

    /** Sandboxed slice workers; non-null iff isolation_ == "process". */
    std::unique_ptr<WorkerPool> proc_pool_;

    /** Single-flight surface cache: the first thread to want a key
     *  simulates it, everyone else waits on the shared future. */
    std::mutex cache_mu_;
    std::map<Key, std::shared_future<double>> cache_;
    std::atomic<uint64_t> sims_{0};

    /** Persistent content-addressed store: owned_store_ is populated
     *  unless a shared store was injected; store_ always points at the
     *  live instance (disabled instance when no directory resolves). */
    std::unique_ptr<ResultStore> owned_store_;
    ResultStore *store_ = nullptr;
    uint64_t config_hash_ = 0;

    mutable std::mutex failures_mu_;
    std::vector<SliceFailure> failures_;
};

} // namespace save

#endif // SAVE_DNN_ESTIMATOR_H
