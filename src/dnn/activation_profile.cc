#include "dnn/activation_profile.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace save {

ActivationProfile::ActivationProfile(Kind kind, int num_layers,
                                     int64_t num_steps)
    : kind_(kind), layers_(num_layers), steps_(num_steps)
{
    SAVE_ASSERT(num_layers >= 1 && num_steps >= 1, "empty profile");
}

double
ActivationProfile::at(int layer, int64_t step) const
{
    SAVE_ASSERT(layer >= 0 && layer < layers_, "layer out of range");
    if (layer == 0)
        return 0.0; // raw input is dense

    double depth = layers_ > 1
        ? static_cast<double>(layer) / static_cast<double>(layers_ - 1)
        : 0.0;
    double t = steps_ > 1
        ? static_cast<double>(std::clamp<int64_t>(step, 0, steps_ - 1)) /
              static_cast<double>(steps_ - 1)
        : 1.0;
    // Sparsity settles during the first ~20% of training.
    double settle = 1.0 - std::exp(-t * 8.0);

    switch (kind_) {
      case Kind::Vgg16: {
        double base = 0.45 + 0.42 * depth;
        double s = base * (0.80 + 0.20 * settle);
        return std::clamp(s, 0.0, 0.93);
      }
      case Kind::Resnet50Dense:
      case Kind::Resnet50Pruned: {
        double base = 0.22 + 0.34 * depth;
        // Block-entry convs read the post-add activations, whose
        // positive residual bias lowers ReLU sparsity.
        if (layer % 3 == 1)
            base *= 0.55;
        double s = base * (0.75 + 0.25 * settle);
        if (kind_ == Kind::Resnet50Pruned)
            s += 0.04 * settle; // pruning slightly raises act sparsity
        return std::clamp(s, 0.0, 0.75);
      }
      case Kind::Gnmt:
        return 0.20; // dropout rate; constant (paper SecVI)
    }
    return 0.0;
}

} // namespace save
