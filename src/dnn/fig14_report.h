/**
 * @file
 * The Fig. 14 sweep — entry tables and report rendering — shared
 * between `bench_fig14` (prints to stdout) and the save-serve daemon
 * (streams the text back to `save-ctl`).
 *
 * The acceptance bar for the serving path is byte-identity: a served
 * default-config Fig. 14 sweep must match `bench_fig14` run in-process
 * to the byte. That only holds if both sides share ONE renderer, so
 * the network tables, the evaluation order, and every printf format
 * live here and nowhere else. Run-dependent counters (thread counts,
 * cache hits) never enter the report — they are the caller's business
 * and belong on stderr.
 */

#ifndef SAVE_DNN_FIG14_REPORT_H
#define SAVE_DNN_FIG14_REPORT_H

#include <functional>
#include <string>
#include <vector>

#include "dnn/estimator.h"
#include "dnn/networks.h"

namespace save {

/** One network x precision evaluation of the Fig. 14 sweep. */
struct Fig14Entry
{
    NetworkModel net;
    Precision prec;
    const char *label;
};

/** The CNN table: VGG16/ResNet-50 dense + pruned, FP32 and MP. */
const std::vector<Fig14Entry> &fig14CnnEntries();

/** The GNMT table: pruned, FP32 and MP. */
const std::vector<Fig14Entry> &fig14GnmtEntries();

/** Total network evaluations in one full sweep (inference+training). */
int fig14PointCount();

/**
 * One sweep point in the canonical evaluation order (CNN inference,
 * GNMT inference, CNN training, GNMT training — the order
 * fig14Report walks). `key` is the stable id ("infer/VGG16 FP32
 * dense"): journal key, progress label, and the shard protocol's
 * point name. Index into this vector IS the wire point index, so the
 * coordinator and every backend must agree on one build of it.
 */
struct Fig14Point
{
    Fig14Entry entry;
    bool training;
    std::string key;
};

const std::vector<Fig14Point> &fig14Points();

/**
 * Evaluate one entry. `key` is the stable sweep-point id
 * ("infer/VGG16 FP32 dense", "train/GNMT MP pruned"): journal key in
 * the bench, progress label in the daemon.
 */
using Fig14Eval = std::function<NetResult(
    const std::string &key, const Fig14Entry &e, bool training)>;

/**
 * Called after each completed evaluation with (done, total, key).
 * May throw to abort the sweep (the daemon does this on client
 * disconnect or a blown deadline); the exception propagates out of
 * fig14Report.
 */
using Fig14Progress =
    std::function<void(int done, int total, const std::string &key)>;

/**
 * Render the full Fig. 14 report. The returned text is exactly what
 * `bench_fig14` writes to stdout: four sections in evaluation order
 * (CNN inference, GNMT inference, CNN training, GNMT training) plus
 * the paper-reference line.
 */
std::string fig14Report(const Fig14Eval &eval,
                        const Fig14Progress &progress = nullptr);

} // namespace save

#endif // SAVE_DNN_FIG14_REPORT_H
