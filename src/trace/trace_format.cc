#include "trace/trace_format.h"

#include <cstring>

#include "util/error.h"

namespace save {

void
tracePutVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint64_t
traceGetVarint(const uint8_t *&p, const uint8_t *end)
{
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (p >= end)
            throw TraceError("varint runs past the end of its section");
        uint8_t b = *p++;
        v |= static_cast<uint64_t>(b & 0x7fu) << shift;
        if (!(b & 0x80u))
            return v;
    }
    throw TraceError("varint longer than 64 bits");
}

bool
traceUopHasAddr(Opcode op)
{
    switch (op) {
      case Opcode::VfmaPsBcast:
      case Opcode::Vdpbf16PsBcast:
      case Opcode::BroadcastLoad:
      case Opcode::LoadVec:
      case Opcode::StoreVec:
        return true;
      default:
        return false;
    }
}

namespace {

/** Operand-presence bitmap bits (byte 2 of an encoded uop). */
enum : uint8_t {
    kHasDst = 1u << 0,
    kHasSrcA = 1u << 1,
    kHasSrcB = 1u << 2,
    kHasSrcC = 1u << 3,
    kHasWmask = 1u << 4,
};

int8_t
decodeReg(const uint8_t *&p, const uint8_t *end, int limit,
          const char *what)
{
    if (p >= end)
        throw TraceError("uop stream truncated");
    uint8_t v = *p++;
    if (v >= static_cast<uint8_t>(limit))
        throw TraceError(std::string("uop ") + what + " register " +
                         std::to_string(v) + " out of range [0, " +
                         std::to_string(limit) + ")");
    return static_cast<int8_t>(v);
}

} // namespace

void
traceEncodeUop(const Uop &u, uint64_t &prev_addr,
               std::vector<uint8_t> &out)
{
    out.push_back(static_cast<uint8_t>(u.op));
    uint8_t present = 0;
    if (u.dst >= 0)
        present |= kHasDst;
    if (u.srcA >= 0)
        present |= kHasSrcA;
    if (u.srcB >= 0)
        present |= kHasSrcB;
    if (u.srcC >= 0)
        present |= kHasSrcC;
    if (u.wmask >= 0)
        present |= kHasWmask;
    out.push_back(present);
    if (u.dst >= 0)
        out.push_back(static_cast<uint8_t>(u.dst));
    if (u.srcA >= 0)
        out.push_back(static_cast<uint8_t>(u.srcA));
    if (u.srcB >= 0)
        out.push_back(static_cast<uint8_t>(u.srcB));
    if (u.srcC >= 0)
        out.push_back(static_cast<uint8_t>(u.srcC));
    if (u.wmask >= 0)
        out.push_back(static_cast<uint8_t>(u.wmask));
    if (traceUopHasAddr(u.op)) {
        // Wrapping unsigned difference, reinterpreted as signed for
        // zigzag. Signed subtraction would be UB for address jumps
        // wider than 63 bits (e.g. a squash-replayed stream revisiting
        // a low address after a high sentinel); two's-complement
        // wrap-around round-trips every (prev, addr) pair exactly.
        uint64_t diff = u.addr - prev_addr;
        tracePutVarint(out, traceZigzag(static_cast<int64_t>(diff)));
        prev_addr = u.addr;
    }
    if (u.op == Opcode::SetMask)
        tracePutVarint(out, u.maskImm);
}

Uop
traceDecodeUop(const uint8_t *&p, const uint8_t *end,
               uint64_t &prev_addr)
{
    if (end - p < 2)
        throw TraceError("uop stream truncated");
    uint8_t op_byte = *p++;
    if (op_byte > static_cast<uint8_t>(Opcode::SetMask))
        throw TraceError("unknown opcode " + std::to_string(op_byte) +
                         " in uop stream");
    Uop u;
    u.op = static_cast<Opcode>(op_byte);
    uint8_t present = *p++;
    if (present & kHasDst)
        u.dst = decodeReg(p, end, kLogicalVecRegs, "dst");
    if (present & kHasSrcA)
        u.srcA = decodeReg(p, end, kLogicalVecRegs, "srcA");
    if (present & kHasSrcB)
        u.srcB = decodeReg(p, end, kLogicalVecRegs, "srcB");
    if (present & kHasSrcC)
        u.srcC = decodeReg(p, end, kLogicalVecRegs, "srcC");
    if (present & kHasWmask)
        u.wmask = decodeReg(p, end, kLogicalMaskRegs, "wmask");
    if (traceUopHasAddr(u.op)) {
        // Mirror of the encoder: wrapping unsigned addition (signed
        // addition would be UB on the same wide deltas).
        int64_t delta = traceUnzigzag(traceGetVarint(p, end));
        u.addr = prev_addr + static_cast<uint64_t>(delta);
        prev_addr = u.addr;
    }
    if (u.op == Opcode::SetMask) {
        uint64_t imm = traceGetVarint(p, end);
        if (imm > 0xffffu)
            throw TraceError("SetMask immediate out of range");
        u.maskImm = static_cast<uint16_t>(imm);
    }
    return u;
}

} // namespace save
