#include "trace/trace_reader.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mem/memory_image.h"
#include "trace/trace_format.h"
#include "util/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define SAVE_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace save {

namespace {

[[noreturn]] void
bad(const std::string &path, const std::string &why)
{
    throw TraceError("bad trace file " + path + ": " + why);
}

} // namespace

TraceReader::TraceReader(const std::string &path) : path_(path)
{
#if SAVE_TRACE_HAVE_MMAP
    int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        throw TraceError("cannot open trace file: " + path_ + " (" +
                         std::strerror(errno) + ")");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw TraceError("cannot stat trace file: " + path_);
    }
    map_len_ = static_cast<size_t>(st.st_size);
    if (map_len_ > 0) {
        void *m = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (m != MAP_FAILED) {
            map_ = static_cast<const uint8_t *>(m);
            mmapped_ = true;
        }
    }
    ::close(fd);
    if (!mmapped_)
#endif
    {
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        if (!f)
            throw TraceError("cannot open trace file: " + path_);
        std::fseek(f, 0, SEEK_END);
        long len = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        buf_.resize(len > 0 ? static_cast<size_t>(len) : 0);
        if (!buf_.empty() &&
            std::fread(buf_.data(), 1, buf_.size(), f) != buf_.size()) {
            std::fclose(f);
            throw TraceError("cannot read trace file: " + path_);
        }
        std::fclose(f);
        map_ = buf_.data();
        map_len_ = buf_.size();
    }
    parseChunks();
    parseConfigText();
}

TraceReader::~TraceReader()
{
#if SAVE_TRACE_HAVE_MMAP
    if (mmapped_)
        ::munmap(const_cast<uint8_t *>(map_), map_len_);
#endif
}

void
TraceReader::parseChunks()
{
    if (map_len_ < kTraceHeaderBytes)
        bad(path_, "shorter than the fixed header");
    if (std::memcmp(map_, kTraceMagic, 8) != 0)
        bad(path_, "magic mismatch (not a SAVE uop trace)");
    const uint8_t *p = map_ + 8;
    const uint8_t *end = map_ + map_len_;
    version_ = traceGetU32(p, end);
    traceGetU32(p, end); // flags (reserved)
    config_hash_ = traceGetU64(p, end);
    uint32_t hdr_crc = traceGetU32(p, end);
    if (traceCrc32(map_, kTraceHeaderBytes - 4) != hdr_crc)
        bad(path_, "header CRC mismatch");
    if (version_ != kTraceVersion)
        bad(path_, "unsupported version " + std::to_string(version_) +
                       " (reader speaks " + std::to_string(kTraceVersion) +
                       ")");

    bool saw_end = false;
    bool saw_cfg = false;
    uint64_t off = static_cast<uint64_t>(p - map_);
    while (off < map_len_) {
        FrameView v;
        std::string why;
        switch (frameParse(map_, map_len_, off, v,
                           /*max_payload=*/UINT64_MAX, &why)) {
        case FrameParse::Truncated:
            bad(path_, why.find("header") != std::string::npos
                           ? "truncated chunk header"
                           : "chunk payload runs past end of file");
        case FrameParse::Corrupt:
            bad(path_, "chunk payload CRC mismatch");
        case FrameParse::Ok:
            break;
        }
        uint32_t fourcc = v.fourcc;
        Span s{v.arg, v.payload, static_cast<size_t>(v.len)};
        if (fourcc == kChunkEnd) {
            saw_end = true;
            break;
        } else if (fourcc == kChunkConfig) {
            config_text_.assign(reinterpret_cast<const char *>(s.p), s.n);
            saw_cfg = true;
        } else if (fourcc == kChunkMemRegion) {
            mem_regions_.push_back(s);
        } else if (fourcc == kChunkWarm) {
            warm_.push_back(s);
        } else if (fourcc == kChunkUops) {
            uops_.push_back(s);
        } else if (fourcc == kChunkElms) {
            elms_.push_back(s);
        } else if (fourcc == kChunkResult) {
            parseResult(s);
        }
        // Unknown fourccs skipped: forward compatibility.
    }
    if (!saw_end)
        bad(path_, "missing END chunk (file truncated mid-write)");
    if (!saw_cfg)
        bad(path_, "missing CFG chunk");
    if (uops_.empty())
        bad(path_, "no UOPS chunk (empty recording)");
}

void
TraceReader::parseConfigText()
{
    // Defaults come from the structs themselves; present keys
    // override, unknown keys are ignored (forward compatibility).
    size_t pos = 0;
    while (pos < config_text_.size()) {
        size_t eol = config_text_.find('\n', pos);
        if (eol == std::string::npos)
            eol = config_text_.size();
        std::string line = config_text_.substr(pos, eol - pos);
        pos = eol + 1;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        double d = std::strtod(val.c_str(), nullptr);
        int i = static_cast<int>(std::strtol(val.c_str(), nullptr, 10));
        if (key == "kernel")
            kernel_name_ = val;
        else if (key == "vpus")
            vpus_ = i;
        else if (key == "mc.cores")
            mcfg_.cores = i;
        else if (key == "mc.freq2VpuGhz")
            mcfg_.freq2VpuGhz = d;
        else if (key == "mc.freq1VpuGhz")
            mcfg_.freq1VpuGhz = d;
        else if (key == "mc.uncoreGhz")
            mcfg_.uncoreGhz = d;
        else if (key == "mc.issueWidth")
            mcfg_.issueWidth = i;
        else if (key == "mc.commitWidth")
            mcfg_.commitWidth = i;
        else if (key == "mc.rsEntries")
            mcfg_.rsEntries = i;
        else if (key == "mc.robEntries")
            mcfg_.robEntries = i;
        else if (key == "mc.prfExtraRegs")
            mcfg_.prfExtraRegs = i;
        else if (key == "mc.numVpus")
            mcfg_.numVpus = i;
        else if (key == "mc.fp32FmaLatency")
            mcfg_.fp32FmaLatency = i;
        else if (key == "mc.mpFmaLatency")
            mcfg_.mpFmaLatency = i;
        else if (key == "mc.l1ReadPorts")
            mcfg_.l1ReadPorts = i;
        else if (key == "mc.bcachePorts")
            mcfg_.bcachePorts = i;
        else if (key == "mc.bcacheEntries")
            mcfg_.bcacheEntries = i;
        else if (key == "mc.l1SizeKb")
            mcfg_.l1SizeKb = i;
        else if (key == "mc.l1Ways")
            mcfg_.l1Ways = i;
        else if (key == "mc.l1LatCycles")
            mcfg_.l1LatCycles = i;
        else if (key == "mc.l2SizeKb")
            mcfg_.l2SizeKb = i;
        else if (key == "mc.l2Ways")
            mcfg_.l2Ways = i;
        else if (key == "mc.l2LatCycles")
            mcfg_.l2LatCycles = i;
        else if (key == "mc.l3SizeKbPerCore")
            mcfg_.l3SizeKbPerCore = d;
        else if (key == "mc.l3Ways")
            mcfg_.l3Ways = i;
        else if (key == "mc.l3LatNs")
            mcfg_.l3LatNs = d;
        else if (key == "mc.nocHopCycles")
            mcfg_.nocHopCycles = i;
        else if (key == "mc.dramGBps")
            mcfg_.dramGBps = d;
        else if (key == "mc.dramChannels")
            mcfg_.dramChannels = i;
        else if (key == "mc.dramLatNs")
            mcfg_.dramLatNs = d;
        else if (key == "mc.prefetchDegree")
            mcfg_.prefetchDegree = i;
        else if (key == "mc.exceptionServiceCycles")
            mcfg_.exceptionServiceCycles = i;
        else if (key == "mc.watchdogCycles")
            mcfg_.watchdogCycles = i;
        else if (key == "sc.enabled")
            scfg_.enabled = i != 0;
        else if (key == "sc.policy")
            scfg_.policy = static_cast<SchedPolicy>(i);
        else if (key == "sc.laneWiseDep")
            scfg_.laneWiseDep = i != 0;
        else if (key == "sc.bsSkip")
            scfg_.bsSkip = i != 0;
        else if (key == "sc.bcache")
            scfg_.bcache = static_cast<BcastCacheKind>(i);
        else if (key == "sc.mpCompress")
            scfg_.mpCompress = i != 0;
        else if (key == "sc.hcExtraLatency")
            scfg_.hcExtraLatency = i;
        else if (key == "sc.rotationStates")
            scfg_.rotationStates = i;
    }
    mcfg_.validate();
    scfg_.validate();
    if (cores() != mcfg_.cores)
        bad(path_, "CFG says " + std::to_string(mcfg_.cores) +
                       " cores but file has " + std::to_string(cores()) +
                       " UOPS chunks");
}

void
TraceReader::parseResult(const Span &s)
{
    const uint8_t *p = s.p;
    const uint8_t *end = s.p + s.n;
    rec_cycles_ = traceGetVarint(p, end);
    rec_ghz_ = traceGetF64(p, end);
    uint64_t count = traceGetVarint(p, end);
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t len = traceGetVarint(p, end);
        if (len > static_cast<uint64_t>(end - p))
            bad(path_, "stat name runs past RES chunk");
        std::string name(reinterpret_cast<const char *>(p),
                         static_cast<size_t>(len));
        p += len;
        rec_stats_[name] = traceGetF64(p, end);
    }
    has_result_ = true;
}

const TraceReader::Span &
TraceReader::coreSpan(const std::vector<Span> &spans, int core,
                      const char *what) const
{
    for (const Span &s : spans)
        if (s.arg == static_cast<uint32_t>(core))
            return s;
    bad(path_, std::string("no ") + what + " chunk for core " +
                   std::to_string(core));
}

MemoryImage
TraceReader::buildImage() const
{
    MemoryImage image;
    for (const Span &s : mem_regions_) {
        const uint8_t *p = s.p;
        const uint8_t *end = s.p + s.n;
        uint64_t base = traceGetU64(p, end);
        uint64_t size = traceGetU64(p, end);
        image.addRegion(base, size);
        uint64_t off = 0;
        while (off < size) {
            uint64_t zero_run = traceGetVarint(p, end);
            uint64_t lit = traceGetVarint(p, end);
            if (zero_run > size - off || lit > size - off - zero_run)
                bad(path_, "memory-region RLE overruns the region");
            off += zero_run; // region memory starts zeroed
            if (lit > static_cast<uint64_t>(end - p))
                bad(path_, "memory-region literal runs past its chunk");
            if (lit > 0)
                image.writeBytes(base + off, p, lit);
            p += lit;
            off += lit;
        }
    }
    return image;
}

std::vector<std::pair<uint64_t, uint64_t>>
TraceReader::warmRanges(int core) const
{
    const Span &s = coreSpan(warm_, core, "WARM");
    const uint8_t *p = s.p;
    const uint8_t *end = s.p + s.n;
    uint64_t count = traceGetVarint(p, end);
    std::vector<std::pair<uint64_t, uint64_t>> out;
    out.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t base = traceGetU64(p, end);
        uint64_t bytes = traceGetVarint(p, end);
        out.emplace_back(base, bytes);
    }
    return out;
}

uint64_t
TraceReader::uopCount(int core) const
{
    const Span &s = coreSpan(uops_, core, "UOPS");
    const uint8_t *p = s.p;
    return traceGetVarint(p, s.p + s.n);
}

std::vector<Uop>
TraceReader::uops(int core) const
{
    TraceFileSource src(*this, core);
    std::vector<Uop> out;
    out.reserve(static_cast<size_t>(src.remaining()));
    Uop u;
    while (src.next(u))
        out.push_back(u);
    return out;
}

std::vector<uint32_t>
TraceReader::elms(int core) const
{
    const Span &s = coreSpan(elms_, core, "ELMS");
    const uint8_t *p = s.p;
    const uint8_t *end = s.p + s.n;
    uint64_t count = traceGetVarint(p, end);
    std::vector<uint32_t> out;
    out.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i)
        out.push_back(static_cast<uint32_t>(traceGetVarint(p, end)));
    return out;
}

TraceFileSource::TraceFileSource(const TraceReader &reader, int core)
{
    const TraceReader::Span &s =
        reader.coreSpan(reader.uops_, core, "UOPS");
    const uint8_t *p = s.p;
    end_ = s.p + s.n;
    total_ = traceGetVarint(p, end_);
    begin_ = p;
    p_ = p;
    remaining_ = total_;
}

bool
TraceFileSource::next(Uop &u)
{
    if (remaining_ == 0)
        return false;
    u = traceDecodeUop(p_, end_, prev_addr_);
    --remaining_;
    return true;
}

void
TraceFileSource::reset()
{
    p_ = begin_;
    remaining_ = total_;
    prev_addr_ = 0;
}

} // namespace save
