/**
 * @file
 * On-disk uop trace format (see DESIGN.md §9).
 *
 * A trace file is a fixed header followed by a sequence of
 * CRC-protected chunks and is fully self-describing: it carries the
 * effective machine/SAVE configuration, the initial memory image, the
 * cache warm-up protocol, the per-core dynamic uop streams, an
 * optional effectual-lane-mask sidecar, and (optionally) the recorded
 * run's cycle count and stat map for replay checking.
 *
 * Layout (all integers little-endian):
 *
 *   header   8B magic "SAVTRC01", u32 version, u32 flags,
 *            u64 configHash, u32 crc32(previous 24 bytes)
 *   chunk*   u32 fourcc, u32 arg, u64 payloadBytes,
 *            u32 crc32(payload), payload
 *   "END "   terminator chunk (empty payload); a file without it was
 *            truncated mid-write.
 *
 * Forward compatibility: readers skip chunks whose fourcc they do not
 * know, so new chunk kinds can be added without a version bump. Any
 * header or chunk corruption surfaces as TraceError (every byte is
 * covered by a CRC).
 *
 * Uop streams are delta/varint encoded: opcode byte, operand-presence
 * bitmap, one byte per present register, and — for memory uops — the
 * zigzag-varint delta of the operand address against the previous
 * memory uop's address (kernel address streams are strided, so deltas
 * stay tiny).
 */

#ifndef SAVE_TRACE_TRACE_FORMAT_H
#define SAVE_TRACE_TRACE_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/uop.h"
#include "util/frame.h"

namespace save {

/** File magic: "SAVTRC01". */
constexpr uint8_t kTraceMagic[8] = {'S', 'A', 'V', 'T', 'R', 'C',
                                    '0', '1'};
constexpr uint32_t kTraceVersion = 1;

/** Fixed header size in bytes (magic + version + flags + configHash +
 *  header CRC). */
constexpr size_t kTraceHeaderBytes = 8 + 4 + 4 + 8 + 4;

/** Chunk header size — a trace chunk is exactly a util/frame.h frame
 *  (fourcc + arg + payload length + payload CRC). */
constexpr size_t kTraceChunkHeaderBytes = kFrameHeaderBytes;

constexpr uint32_t
traceFourcc(char a, char b, char c, char d)
{
    return frameFourcc(a, b, c, d);
}

/** Chunk kinds. `arg` is the core id for per-core chunks, else 0. */
constexpr uint32_t kChunkConfig = traceFourcc('C', 'F', 'G', ' ');
constexpr uint32_t kChunkMemRegion = traceFourcc('M', 'E', 'M', 'R');
constexpr uint32_t kChunkWarm = traceFourcc('W', 'A', 'R', 'M');
constexpr uint32_t kChunkUops = traceFourcc('U', 'O', 'P', 'S');
constexpr uint32_t kChunkElms = traceFourcc('E', 'L', 'M', 'S');
constexpr uint32_t kChunkResult = traceFourcc('R', 'E', 'S', ' ');
constexpr uint32_t kChunkEnd = traceFourcc('E', 'N', 'D', ' ');

/** CRC-32 (IEEE 802.3, reflected) of n bytes, seedable for chaining. */
inline uint32_t
traceCrc32(const uint8_t *p, size_t n, uint32_t seed = 0)
{
    return frameCrc32(p, n, seed);
}

/** Append an LEB128 varint. */
void tracePutVarint(std::vector<uint8_t> &out, uint64_t v);

/** Parse an LEB128 varint; advances p. Throws TraceError when the
 *  encoding runs past end or overflows 64 bits. */
uint64_t traceGetVarint(const uint8_t *&p, const uint8_t *end);

/** Zigzag mapping for signed deltas. */
constexpr uint64_t
traceZigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

constexpr int64_t
traceUnzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

/** True when the opcode carries a memory operand address. */
bool traceUopHasAddr(Opcode op);

/** Append one uop; prev_addr carries the address-delta state of the
 *  stream and must start at 0. */
void traceEncodeUop(const Uop &u, uint64_t &prev_addr,
                    std::vector<uint8_t> &out);

/** Decode one uop; advances p. Throws TraceError on malformed input
 *  (unknown opcode, register id out of range, short buffer). */
Uop traceDecodeUop(const uint8_t *&p, const uint8_t *end,
                   uint64_t &prev_addr);

/** Little-endian scalar append/parse helpers (shared with every other
 *  framed codec via util/frame.h; kept under the trace names for the
 *  many existing call sites). */
inline void
tracePutU32(std::vector<uint8_t> &out, uint32_t v)
{
    framePutU32(out, v);
}

inline void
tracePutU64(std::vector<uint8_t> &out, uint64_t v)
{
    framePutU64(out, v);
}

inline void
tracePutF64(std::vector<uint8_t> &out, double v)
{
    framePutF64(out, v);
}

inline uint32_t
traceGetU32(const uint8_t *&p, const uint8_t *end)
{
    return frameGetU32(p, end);
}

inline uint64_t
traceGetU64(const uint8_t *&p, const uint8_t *end)
{
    return frameGetU64(p, end);
}

inline double
traceGetF64(const uint8_t *&p, const uint8_t *end)
{
    return frameGetF64(p, end);
}

} // namespace save

#endif // SAVE_TRACE_TRACE_FORMAT_H
