/**
 * @file
 * Binary uop trace writer (format: trace_format.h, DESIGN.md §9).
 *
 * A recording writes, in order: the CFG chunk (effective machine +
 * SAVE configuration as key=value text), one MEMR chunk per memory
 * region (zero-run-compressed initial contents — kernels are sparse,
 * so the image compresses well), per-core WARM and UOPS chunks, an
 * optional ELMS sidecar (the functional effectual-lane masks, for
 * inspect/stats without a pipeline run), an optional RES chunk (the
 * recorded run's cycles + full stat map, the `replay --check`
 * reference), and the END terminator.
 *
 * finish() runs the fault-injection cache-file tamper hook
 * (SAVE_FAULT_INJECT cache-bitflip/cache-truncate) so trace-file
 * corruption handling is testable on demand.
 */

#ifndef SAVE_TRACE_TRACE_WRITER_H
#define SAVE_TRACE_TRACE_WRITER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "isa/uop.h"
#include "sim/config.h"
#include "stats/stats.h"

namespace save {

class MemoryImage;

/** Streaming trace-file writer. Throws TraceError on I/O failure. */
class TraceWriter
{
  public:
    /** Opens `path` and writes the file header. config_hash is the
     *  SurfaceCache::hashConfig digest of the effective configs. */
    TraceWriter(std::string path, uint64_t config_hash);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** CFG chunk: key=value text (see traceConfigText). */
    void writeConfig(const std::string &text);

    /** One MEMR chunk per region of the (pre-run) image. */
    void writeImage(const MemoryImage &image);

    /** WARM chunk: ordered [base, bytes) line-warm ranges of a core. */
    void writeWarmRanges(
        int core,
        const std::vector<std::pair<uint64_t, uint64_t>> &ranges);

    /** UOPS chunk: the core's dynamic uop stream. */
    void writeUops(int core, const std::vector<Uop> &uops);

    /** ELMS sidecar: one effectual-lane mask per VFMA, in stream
     *  order (16-bit masks for FP32, 32-bit for mixed precision). */
    void writeElms(int core, const std::vector<uint32_t> &elms);

    /** RES chunk: the recorded run's outcome for `replay --check`. */
    void writeResult(uint64_t cycles, double core_ghz,
                     const StatGroup &stats);

    /** Write the END terminator and close the file. Must be the last
     *  call; a file missing it is rejected as truncated. */
    void finish();

    const std::string &path() const { return path_; }

  private:
    void writeChunk(uint32_t fourcc, uint32_t arg,
                    const std::vector<uint8_t> &payload);
    void put(const void *p, size_t n);

    std::string path_;
    uint64_t config_hash_;
    std::FILE *f_ = nullptr;
};

/** Serialize the effective configuration (plus kernel metadata) into
 *  CFG-chunk text. Doubles use %.17g and round-trip exactly. */
std::string traceConfigText(const MachineConfig &mcfg,
                            const SaveConfig &scfg, int vpus,
                            const std::string &kernel_name);

/**
 * Functional pre-pass producing the ELMS sidecar: executes the uop
 * stream in order on a copy of the initial image and records each
 * VFMA's effectual-lane mask exactly as the MGU would generate it.
 */
std::vector<uint32_t> computeElmSidecar(const std::vector<Uop> &uops,
                                        const MemoryImage &image);

} // namespace save

#endif // SAVE_TRACE_TRACE_WRITER_H
