#include "trace/event_trace.h"

#include <atomic>
#include <bit>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

#include "isa/vec.h"
#include "util/error.h"
#include "util/logging.h"

namespace save {

namespace {

/** Ring capacity per core; a full ring flushes synchronously, so no
 *  event is ever dropped. */
constexpr size_t kRingCap = 1u << 14;

/** Track (tid) layout inside a core's process. */
enum : int {
    kTidAlloc = 10,
    kTidMgu = 11,
    kTidPass = 12,
    kTidWriteback = 13,
    kTidSquash = 14,
    kTidIssueBase = 20,    // + vpu
    kTidCoalesceBase = 60, // + vpu
    kTidRobBase = 100,     // + (rob slot & 31)
};
constexpr int kRobTracks = 32;

const char *
opName(Opcode op)
{
    switch (op) {
      case Opcode::VfmaPs:
        return "vfma";
      case Opcode::VfmaPsBcast:
        return "vfma.b";
      case Opcode::Vdpbf16Ps:
        return "vdp";
      case Opcode::Vdpbf16PsBcast:
        return "vdp.b";
      case Opcode::BroadcastLoad:
        return "bcast";
      case Opcode::LoadVec:
        return "load";
      case Opcode::StoreVec:
        return "store";
      case Opcode::Alu:
        return "alu";
      case Opcode::SetMask:
        return "kmov";
    }
    return "?";
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

/* CoreEventTracer ----------------------------------------------------- */

CoreEventTracer::CoreEventTracer(EventTraceSession *session, int core_id)
    : session_(session), core_id_(core_id)
{
    ring_.reserve(kRingCap);

    // Process/track naming metadata so Perfetto shows readable lanes.
    std::string out;
    auto meta = [&](int tid, const char *name) {
        appendf(out,
                ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                core_id_, tid, name);
    };
    appendf(out,
            ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
            "\"args\":{\"name\":\"core %d\"}}",
            core_id_, core_id_);
    meta(kTidAlloc, "alloc/rename");
    meta(kTidMgu, "mgu elm");
    meta(kTidPass, "pass-through");
    meta(kTidWriteback, "writeback");
    meta(kTidSquash, "squash");
    for (int v = 0; v < 2; ++v) {
        char name[32];
        std::snprintf(name, sizeof(name), "vpu%d issue", v);
        meta(kTidIssueBase + v, name);
        std::snprintf(name, sizeof(name), "vpu%d coalesce", v);
        meta(kTidCoalesceBase + v, name);
    }
    for (int s = 0; s < kRobTracks; ++s) {
        char name[32];
        std::snprintf(name, sizeof(name), "uops.%02d", s);
        meta(kTidRobBase + s, name);
    }
    session_->emit(out);
}

void
CoreEventTracer::push(const Rec &r)
{
    ring_.push_back(r);
    if (ring_.size() >= kRingCap)
        flush();
}

void
CoreEventTracer::alloc(uint64_t cycle, uint64_t seq, const Uop &u,
                       int rob_idx)
{
    if (alloc_cycle_.size() <= static_cast<size_t>(rob_idx))
        alloc_cycle_.resize(static_cast<size_t>(rob_idx) + 1, 0);
    alloc_cycle_[static_cast<size_t>(rob_idx)] = cycle;
    push({cycle, seq, static_cast<uint32_t>(rob_idx), 0, 0, Kind::Alloc,
          static_cast<uint8_t>(u.op)});
}

void
CoreEventTracer::elm(uint64_t cycle, uint64_t seq, uint32_t elm,
                     int pending_al)
{
    push({cycle, seq, elm, static_cast<uint32_t>(pending_al), 0,
          Kind::Elm, 0});
}

void
CoreEventTracer::coalesceLane(uint64_t cycle, uint64_t seq, int src_lane,
                              int temp_lane, int vpu, bool hc)
{
    ++n_lane_moves_;
    push({cycle, seq, static_cast<uint32_t>(src_lane),
          static_cast<uint32_t>(temp_lane), static_cast<int16_t>(vpu),
          Kind::Coalesce, static_cast<uint8_t>(hc ? 1 : 0)});
}

void
CoreEventTracer::coalesceDense(uint64_t cycle, uint64_t seq, int vpu)
{
    ++n_dense_;
    push({cycle, seq, 0, 0, static_cast<int16_t>(vpu), Kind::Dense, 0});
}

void
CoreEventTracer::chainMl(uint64_t cycle, uint64_t seq, int al, int vpu,
                         int mls)
{
    n_chain_mls_ += static_cast<uint64_t>(mls);
    push({cycle, seq, static_cast<uint32_t>(al),
          static_cast<uint32_t>(mls), static_cast<int16_t>(vpu),
          Kind::ChainMl, 0});
}

void
CoreEventTracer::passLanes(uint64_t cycle, uint64_t seq, uint16_t lanes)
{
    n_pass_lanes_ += static_cast<uint64_t>(std::popcount(lanes));
    push({cycle, seq, lanes, 0, 0, Kind::Pass, 0});
}

void
CoreEventTracer::baselineIssue(uint64_t cycle, uint64_t seq, int vpu)
{
    ++n_baseline_;
    push({cycle, seq, 0, 0, static_cast<int16_t>(vpu), Kind::Baseline,
          0});
}

void
CoreEventTracer::tempIssue(uint64_t cycle, int vpu, int lanes, bool mp,
                           int lat, bool hc)
{
    ++n_vpu_ops_;
    fill_sum_ += static_cast<uint64_t>(lanes);
    slot_sum_ += static_cast<uint64_t>(kVecLanes);
    push({cycle, 0, static_cast<uint32_t>(lanes),
          static_cast<uint32_t>(lat), static_cast<int16_t>(vpu),
          Kind::TempIssue,
          static_cast<uint8_t>((mp ? 1 : 0) | (hc ? 2 : 0))});
}

void
CoreEventTracer::writeback(uint64_t cycle, uint64_t seq, int rob_idx)
{
    push({cycle, seq, static_cast<uint32_t>(rob_idx), 0, 0,
          Kind::Writeback, 0});
}

void
CoreEventTracer::retire(uint64_t cycle, uint64_t seq, const Uop &u,
                        int rob_idx)
{
    ++n_uops_;
    if (u.isVfma())
        ++n_vfmas_;
    uint64_t start = 0;
    if (static_cast<size_t>(rob_idx) < alloc_cycle_.size())
        start = alloc_cycle_[static_cast<size_t>(rob_idx)];
    // The duration is precomputed here: the ROB slot's alloc record
    // may be overwritten by a younger uop before the ring flushes.
    uint64_t dur = cycle >= start ? cycle - start : 0;
    push({cycle, seq, static_cast<uint32_t>(dur),
          static_cast<uint32_t>(rob_idx), 0, Kind::Retire,
          static_cast<uint8_t>(u.op)});
}

void
CoreEventTracer::squash(uint64_t cycle, uint64_t fault_seq, int count)
{
    n_squashed_ += static_cast<uint64_t>(count);
    push({cycle, fault_seq, static_cast<uint32_t>(count), 0, 0,
          Kind::Squash, 0});
}

void
CoreEventTracer::recordJson(const Rec &r, std::string &out) const
{
    const int pid = core_id_;
    auto instant = [&](int tid, const char *name, const char *args_fmt,
                       auto... args) {
        appendf(out,
                ",\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                "\"ts\":%llu,\"pid\":%d,\"tid\":%d,\"args\":{",
                name, static_cast<unsigned long long>(r.cycle), pid,
                tid);
        appendf(out, args_fmt, args...);
        out += "}}";
    };
    unsigned long long seq = static_cast<unsigned long long>(r.seq);
    switch (r.kind) {
      case Kind::Alloc:
        instant(kTidAlloc, opName(static_cast<Opcode>(r.op)),
                "\"seq\":%llu,\"rob\":%u", seq, r.a);
        break;
      case Kind::Elm:
        instant(kTidMgu, "elm", "\"seq\":%llu,\"elm\":\"0x%x\",\"pendingAl\":%u",
                seq, r.a, r.b);
        break;
      case Kind::Coalesce:
        instant(kTidCoalesceBase + r.c, r.op ? "hc-lane" : "lane",
                "\"seq\":%llu,\"srcLane\":%u,\"slot\":%u", seq, r.a,
                r.b);
        break;
      case Kind::Dense:
        instant(kTidCoalesceBase + r.c, "dense", "\"seq\":%llu", seq);
        break;
      case Kind::ChainMl:
        instant(kTidCoalesceBase + r.c, "chain",
                "\"seq\":%llu,\"al\":%u,\"mls\":%u", seq, r.a, r.b);
        break;
      case Kind::Pass:
        instant(kTidPass, "pass", "\"seq\":%llu,\"lanes\":\"0x%x\"",
                seq, r.a);
        break;
      case Kind::Baseline:
        instant(kTidIssueBase + r.c, "issue", "\"seq\":%llu", seq);
        break;
      case Kind::TempIssue:
        appendf(out,
                ",\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                "\"dur\":%u,\"pid\":%d,\"tid\":%d,"
                "\"args\":{\"lanes\":%u}}",
                (r.op & 2) ? "hc-op" : (r.op & 1) ? "mp-op" : "fp32-op",
                static_cast<unsigned long long>(r.cycle), r.b, pid,
                kTidIssueBase + r.c, r.a);
        break;
      case Kind::Writeback:
        instant(kTidWriteback, "wb", "\"seq\":%llu,\"rob\":%u", seq,
                r.a);
        break;
      case Kind::Retire: {
        uint64_t dur = r.a ? r.a : 1;
        appendf(out,
                ",\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                "\"dur\":%llu,\"pid\":%d,\"tid\":%d,"
                "\"args\":{\"seq\":%llu}}",
                opName(static_cast<Opcode>(r.op)),
                static_cast<unsigned long long>(r.cycle - dur),
                static_cast<unsigned long long>(dur), pid,
                kTidRobBase + static_cast<int>(r.b) % kRobTracks, seq);
        break;
      }
      case Kind::Squash:
        instant(kTidSquash, "squash", "\"faultSeq\":%llu,\"count\":%u",
                seq, r.a);
        break;
    }
}

void
CoreEventTracer::flush()
{
    if (ring_.empty())
        return;
    std::string out;
    out.reserve(ring_.size() * 96);
    for (const Rec &r : ring_)
        recordJson(r, out);
    ring_.clear();
    session_->emit(out);
}

/* EventTraceSession --------------------------------------------------- */

EventTraceSession::EventTraceSession(const std::string &path)
    : path_(path)
{
    f_ = std::fopen(path_.c_str(), "wb");
    if (!f_)
        throw TraceError("cannot open event-trace file for writing: " +
                         path_);
    std::fputs("{\"traceEvents\":[", f_);
}

EventTraceSession::~EventTraceSession()
{
    finalize();
}

std::unique_ptr<EventTraceSession>
EventTraceSession::fromEnv()
{
    const char *env = std::getenv("SAVE_TRACE_EVENTS");
    if (!env || !*env)
        return nullptr;
    static std::atomic<int> instance{0};
    int n = ++instance;
    std::string path = env;
    if (n > 1) {
        path += '.';
        path += std::to_string(n);
    }
    return std::make_unique<EventTraceSession>(path);
}

CoreEventTracer *
EventTraceSession::tracer(int core_id)
{
    tracers_.push_back(
        std::make_unique<CoreEventTracer>(this, core_id));
    return tracers_.back().get();
}

void
EventTraceSession::emit(const std::string &json)
{
    // Every record string starts with ",\n"; the very first one in the
    // file drops the comma.
    std::lock_guard<std::mutex> lk(mu_);
    if (json.empty() || !f_)
        return;
    const char *p = json.c_str();
    size_t n = json.size();
    if (first_event_ && n > 1) {
        ++p;
        --n;
        first_event_ = false;
    }
    if (std::fwrite(p, 1, n, f_) != n)
        throw TraceError("short write to event-trace file: " + path_);
}

void
EventTraceSession::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    uint64_t uops = 0, vfmas = 0, vpu_ops = 0, fill = 0, slots = 0;
    uint64_t dense = 0, moves = 0, pass = 0, base = 0, chain = 0;
    uint64_t squashed = 0;
    for (auto &t : tracers_) {
        t->flush();
        uops += t->n_uops_;
        vfmas += t->n_vfmas_;
        vpu_ops += t->n_vpu_ops_;
        fill += t->fill_sum_;
        slots += t->slot_sum_;
        dense += t->n_dense_;
        moves += t->n_lane_moves_;
        pass += t->n_pass_lanes_;
        base += t->n_baseline_;
        chain += t->n_chain_mls_;
        squashed += t->n_squashed_;
    }
    double eff =
        slots ? 100.0 * static_cast<double>(fill) /
                    static_cast<double>(slots)
              : 0.0;
    summary_.set("uops_retired", static_cast<double>(uops));
    summary_.set("vfmas_retired", static_cast<double>(vfmas));
    summary_.set("vpu_ops_issued", static_cast<double>(vpu_ops));
    summary_.set("effectual_lanes_issued", static_cast<double>(fill));
    summary_.set("vpu_lane_slots", static_cast<double>(slots));
    summary_.set("coalescing_efficiency_pct", eff);
    summary_.set("dense_fastpath_issues", static_cast<double>(dense));
    summary_.set("coalesced_lane_moves", static_cast<double>(moves));
    summary_.set("passthrough_lanes", static_cast<double>(pass));
    summary_.set("baseline_issues", static_cast<double>(base));
    summary_.set("mp_chain_mls", static_cast<double>(chain));
    summary_.set("squashed_uops", static_cast<double>(squashed));

    std::lock_guard<std::mutex> lk(mu_);
    if (!f_)
        return;
    std::string footer = "\n],\"displayTimeUnit\":\"ms\","
                         "\"otherData\":{\"summary\":";
    footer += summary_.toJson();
    footer += "}}\n";
    std::fputs(footer.c_str(), f_);
    std::fclose(f_);
    f_ = nullptr;
    SAVE_INFORM("event trace: ", path_, " (", uops, " uops, ", vpu_ops,
                " VPU ops, coalescing efficiency ", eff, "%)");
}

} // namespace save
