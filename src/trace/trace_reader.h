/**
 * @file
 * Trace-file reader (format: trace_format.h, DESIGN.md §9).
 *
 * The file is mapped read-only (mmap, with a buffered-read fallback)
 * and validated up front: magic, version, header CRC, and every
 * chunk's bounds and payload CRC, plus the END terminator. Any
 * corruption — including a single flipped bit anywhere in the file —
 * surfaces as TraceError at open time. Chunk kinds the reader does not
 * know are skipped (forward compatibility).
 *
 * Payload decoding is lazy: uop streams decode on demand, either in
 * bulk (uops()) or incrementally through TraceFileSource, which
 * implements the core's TraceSource interface straight off the
 * mapping.
 */

#ifndef SAVE_TRACE_TRACE_READER_H
#define SAVE_TRACE_TRACE_READER_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/core.h"

namespace save {

class MemoryImage;

/** Validated, mmap-backed trace file. Throws TraceError on any
 *  malformed input. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const std::string &path() const { return path_; }
    uint32_t version() const { return version_; }
    uint64_t configHash() const { return config_hash_; }

    /** CFG chunk ---------------------------------------------------- */

    const std::string &configText() const { return config_text_; }
    const std::string &kernelName() const { return kernel_name_; }
    const MachineConfig &machineConfig() const { return mcfg_; }
    const SaveConfig &saveConfig() const { return scfg_; }
    /** Active VPUs per core the recording ran with. */
    int vpus() const { return vpus_; }

    /** Cores recorded (number of UOPS chunks). */
    int cores() const { return static_cast<int>(uops_.size()); }

    /** MEMR chunks: reconstruct the initial memory image. */
    MemoryImage buildImage() const;

    /** WARM chunk: the core's ordered [base, bytes) warm ranges. */
    std::vector<std::pair<uint64_t, uint64_t>>
    warmRanges(int core) const;

    /** UOPS chunk accessors. */
    uint64_t uopCount(int core) const;
    std::vector<Uop> uops(int core) const;

    /** ELMS sidecar (absent on minimal recordings). */
    bool hasElms() const { return !elms_.empty(); }
    std::vector<uint32_t> elms(int core) const;

    /** RES chunk: the recorded run's outcome. */
    bool hasResult() const { return has_result_; }
    uint64_t recordedCycles() const { return rec_cycles_; }
    double recordedCoreGhz() const { return rec_ghz_; }
    const std::map<std::string, double> &recordedStats() const
    {
        return rec_stats_;
    }

  private:
    friend class TraceFileSource;

    struct Span
    {
        uint32_t arg;
        const uint8_t *p;
        size_t n;
    };

    const Span &coreSpan(const std::vector<Span> &spans, int core,
                         const char *what) const;
    void parseChunks();
    void parseConfigText();
    void parseResult(const Span &s);

    std::string path_;
    const uint8_t *map_ = nullptr;
    size_t map_len_ = 0;
    bool mmapped_ = false;
    std::vector<uint8_t> buf_; // fallback when mmap is unavailable

    uint32_t version_ = 0;
    uint64_t config_hash_ = 0;
    std::string config_text_;
    std::string kernel_name_;
    MachineConfig mcfg_;
    SaveConfig scfg_;
    int vpus_ = 2;

    std::vector<Span> mem_regions_;
    std::vector<Span> warm_;
    std::vector<Span> uops_;
    std::vector<Span> elms_;
    bool has_result_ = false;
    uint64_t rec_cycles_ = 0;
    double rec_ghz_ = 0.0;
    std::map<std::string, double> rec_stats_;
};

/**
 * Streaming TraceSource decoding one core's UOPS chunk directly off
 * the reader's mapping — the frontend the OoO core replays from. The
 * reader must outlive the source.
 */
class TraceFileSource : public TraceSource
{
  public:
    TraceFileSource(const TraceReader &reader, int core);

    bool next(Uop &u) override;

    uint64_t remaining() const { return remaining_; }
    void reset();

  private:
    const uint8_t *begin_;
    const uint8_t *p_;
    const uint8_t *end_;
    uint64_t total_;
    uint64_t remaining_;
    uint64_t prev_addr_ = 0;
};

} // namespace save

#endif // SAVE_TRACE_TRACE_READER_H
