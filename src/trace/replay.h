/**
 * @file
 * Trace replay: rebuild the recorded machine and run the recorded uop
 * streams through the OoO pipeline.
 *
 * A replay is bit-identical to the live run that produced the trace:
 * the CFG chunk restores the effective machine/SAVE configuration, the
 * MEMR chunks restore the initial memory image, the WARM chunks repeat
 * the kernel's cache warm-up line-for-line, and each core's UOPS chunk
 * feeds the pipeline through TraceFileSource. replayCheck() then
 * compares cycles and the full stat map against the RES chunk.
 */

#ifndef SAVE_TRACE_REPLAY_H
#define SAVE_TRACE_REPLAY_H

#include <cstdint>
#include <map>
#include <string>

#include "stats/stats.h"

namespace save {

class EventTraceSession;
class MemoryImage;
class TraceReader;

/** Result of replaying one trace file. */
struct ReplayOutcome
{
    /** Kernel name recorded in the CFG chunk. */
    std::string name;
    uint64_t cycles = 0;
    double timeNs = 0.0;
    double coreGhz = 0.0;
    StatGroup stats;

    /** RES chunk of the trace, when present. */
    bool hasRecorded = false;
    uint64_t recordedCycles = 0;
    std::map<std::string, double> recordedStats;
};

/**
 * Replay an open trace through a freshly built machine.
 * @param etrace     Optional pipeline event-trace session to attach.
 * @param finalImage Optional out-param receiving the post-run memory
 *                   image (for functional checks against reference).
 */
ReplayOutcome replayTrace(const TraceReader &reader,
                          EventTraceSession *etrace = nullptr,
                          MemoryImage *finalImage = nullptr);

/** Convenience overload opening `path` first. */
ReplayOutcome replayTrace(const std::string &path,
                          EventTraceSession *etrace = nullptr,
                          MemoryImage *finalImage = nullptr);

/**
 * Compare the replay against the trace's recorded outcome. Returns ""
 * when cycles and the full stat map match bit-identically, else a
 * human-readable description of the first few mismatches. A trace
 * without a RES chunk reports one mismatch ("no recorded result").
 */
std::string replayCheck(const ReplayOutcome &out);

} // namespace save

#endif // SAVE_TRACE_REPLAY_H
