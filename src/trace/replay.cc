#include "trace/replay.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "mem/memory_image.h"
#include "sim/multicore.h"
#include "trace/trace_reader.h"

namespace save {

ReplayOutcome
replayTrace(const TraceReader &reader, EventTraceSession *etrace,
            MemoryImage *finalImage)
{
    const MachineConfig &mc = reader.machineConfig();
    MemoryImage image = reader.buildImage();

    Multicore machine(mc, reader.saveConfig(), reader.vpus(), &image);
    if (etrace)
        machine.attachEventTrace(etrace);

    // Repeat the recorded warm-up line-for-line before binding any
    // uops, exactly as the live kernel runs warmup() before run().
    for (int c = 0; c < reader.cores(); ++c) {
        for (const auto &range : reader.warmRanges(c)) {
            for (uint64_t off = 0; off < range.second; off += kLineBytes)
                machine.hierarchy().warmL3(range.first + off);
        }
    }

    std::vector<std::unique_ptr<TraceFileSource>> sources;
    std::vector<TraceSource *> srcs;
    for (int c = 0; c < reader.cores(); ++c) {
        sources.push_back(std::make_unique<TraceFileSource>(reader, c));
        srcs.push_back(sources.back().get());
    }
    machine.bindTraces(srcs);

    ReplayOutcome out;
    out.name = reader.kernelName();
    out.cycles = machine.run();
    out.coreGhz = mc.coreFreqGhz(reader.vpus());
    out.timeNs = static_cast<double>(out.cycles) / out.coreGhz;
    out.stats = machine.aggregateStats();

    out.hasRecorded = reader.hasResult();
    if (out.hasRecorded) {
        out.recordedCycles = reader.recordedCycles();
        out.recordedStats = reader.recordedStats();
    }
    if (finalImage)
        *finalImage = std::move(image);
    return out;
}

ReplayOutcome
replayTrace(const std::string &path, EventTraceSession *etrace,
            MemoryImage *finalImage)
{
    TraceReader reader(path);
    return replayTrace(reader, etrace, finalImage);
}

std::string
replayCheck(const ReplayOutcome &out)
{
    if (!out.hasRecorded)
        return "trace has no recorded result (RES chunk) to check "
               "against";

    std::string diff;
    int mismatches = 0;
    auto report = [&](const std::string &line) {
        if (++mismatches <= 8)
            diff += (diff.empty() ? "" : "\n") + line;
    };

    if (out.cycles != out.recordedCycles) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "cycles: replay %llu != recorded %llu",
                      static_cast<unsigned long long>(out.cycles),
                      static_cast<unsigned long long>(out.recordedCycles));
        report(buf);
    }

    const auto &got = out.stats.all();
    const auto &want = out.recordedStats;
    for (const auto &kv : want) {
        auto it = got.find(kv.first);
        if (it == got.end()) {
            report("stat " + kv.first + ": missing from replay");
        } else if (it->second != kv.second) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), ": replay %.17g != recorded %.17g",
                          it->second, kv.second);
            report("stat " + kv.first + buf);
        }
    }
    for (const auto &kv : got) {
        if (!want.count(kv.first))
            report("stat " + kv.first + ": missing from recording");
    }

    if (mismatches > 8)
        diff += "\n... and " + std::to_string(mismatches - 8) +
                " more mismatches";
    return diff;
}

} // namespace save
