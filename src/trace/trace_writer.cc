#include "trace/trace_writer.h"

#include <array>
#include <cstdarg>
#include <cstring>

#include "mem/memory_image.h"
#include "sim/mgu.h"
#include "sim/reference.h"
#include "trace/trace_format.h"
#include "util/error.h"
#include "util/fault_injection.h"

namespace save {

namespace {

/** Literal runs are broken only by zero runs at least this long, so
 *  short zero gaps inside dense data stay in one literal record. */
constexpr size_t kMinZeroRun = 16;

void
appendKv(std::string &out, const char *key, const char *fmt, ...)
{
    char buf[128];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out += key;
    out += '=';
    out += buf;
    out += '\n';
}

} // namespace

TraceWriter::TraceWriter(std::string path, uint64_t config_hash)
    : path_(std::move(path)), config_hash_(config_hash)
{
    f_ = std::fopen(path_.c_str(), "wb");
    if (!f_)
        throw TraceError("cannot open trace file for writing: " + path_);
    std::array<uint8_t, kTraceHeaderBytes> hdr;
    std::memcpy(hdr.data(), kTraceMagic, 8);
    std::vector<uint8_t> tail;
    tracePutU32(tail, kTraceVersion);
    tracePutU32(tail, 0); // flags
    tracePutU64(tail, config_hash_);
    std::memcpy(hdr.data() + 8, tail.data(), tail.size());
    uint32_t crc = traceCrc32(hdr.data(), kTraceHeaderBytes - 4);
    tail.clear();
    tracePutU32(tail, crc);
    std::memcpy(hdr.data() + kTraceHeaderBytes - 4, tail.data(), 4);
    put(hdr.data(), hdr.size());
}

TraceWriter::~TraceWriter()
{
    // Abandoned writer (exception path): close without the END chunk;
    // readers reject the file as truncated.
    if (f_)
        std::fclose(f_);
}

void
TraceWriter::put(const void *p, size_t n)
{
    if (std::fwrite(p, 1, n, f_) != n)
        throw TraceError("short write to trace file: " + path_);
}

void
TraceWriter::writeChunk(uint32_t fourcc, uint32_t arg,
                        const std::vector<uint8_t> &payload)
{
    if (!f_)
        throw TraceError("trace writer already finished: " + path_);
    std::vector<uint8_t> hdr;
    hdr.reserve(kTraceChunkHeaderBytes);
    frameAppendHeader(hdr, fourcc, arg, payload.data(), payload.size());
    put(hdr.data(), hdr.size());
    if (!payload.empty())
        put(payload.data(), payload.size());
}

void
TraceWriter::writeConfig(const std::string &text)
{
    std::vector<uint8_t> payload(text.begin(), text.end());
    writeChunk(kChunkConfig, 0, payload);
}

void
TraceWriter::writeImage(const MemoryImage &image)
{
    for (size_t r = 0; r < image.numRegions(); ++r) {
        const std::vector<uint8_t> &data = image.regionData(r);
        std::vector<uint8_t> payload;
        payload.reserve(64 + data.size() / 4);
        tracePutU64(payload, image.regionBase(r));
        tracePutU64(payload, data.size());
        // Alternating records: varint zero-run, varint literal length,
        // literal bytes — until the region is covered.
        size_t i = 0;
        const size_t n = data.size();
        while (i < n) {
            size_t z = i;
            while (z < n && data[z] == 0)
                ++z;
            tracePutVarint(payload, z - i);
            i = z;
            size_t l = i;
            size_t zeros = 0;
            while (l < n) {
                if (data[l] == 0) {
                    if (++zeros >= kMinZeroRun) {
                        ++l;
                        break;
                    }
                } else {
                    zeros = 0;
                }
                ++l;
            }
            size_t lit_end = (zeros >= kMinZeroRun) ? l - kMinZeroRun : l;
            tracePutVarint(payload, lit_end - i);
            payload.insert(payload.end(), data.begin() + i,
                           data.begin() + lit_end);
            i = lit_end;
        }
        writeChunk(kChunkMemRegion, static_cast<uint32_t>(r), payload);
    }
}

void
TraceWriter::writeWarmRanges(
    int core, const std::vector<std::pair<uint64_t, uint64_t>> &ranges)
{
    std::vector<uint8_t> payload;
    tracePutVarint(payload, ranges.size());
    for (const auto &[base, bytes] : ranges) {
        tracePutU64(payload, base);
        tracePutVarint(payload, bytes);
    }
    writeChunk(kChunkWarm, static_cast<uint32_t>(core), payload);
}

void
TraceWriter::writeUops(int core, const std::vector<Uop> &uops)
{
    std::vector<uint8_t> payload;
    payload.reserve(4 * uops.size());
    tracePutVarint(payload, uops.size());
    uint64_t prev_addr = 0;
    for (const Uop &u : uops)
        traceEncodeUop(u, prev_addr, payload);
    writeChunk(kChunkUops, static_cast<uint32_t>(core), payload);
}

void
TraceWriter::writeElms(int core, const std::vector<uint32_t> &elms)
{
    std::vector<uint8_t> payload;
    tracePutVarint(payload, elms.size());
    for (uint32_t m : elms)
        tracePutVarint(payload, m);
    writeChunk(kChunkElms, static_cast<uint32_t>(core), payload);
}

void
TraceWriter::writeResult(uint64_t cycles, double core_ghz,
                         const StatGroup &stats)
{
    std::vector<uint8_t> payload;
    tracePutVarint(payload, cycles);
    tracePutF64(payload, core_ghz);
    const auto &all = stats.all();
    tracePutVarint(payload, all.size());
    for (const auto &[name, value] : all) {
        tracePutVarint(payload, name.size());
        payload.insert(payload.end(), name.begin(), name.end());
        tracePutF64(payload, value);
    }
    writeChunk(kChunkResult, 0, payload);
}

void
TraceWriter::finish()
{
    writeChunk(kChunkEnd, 0, {});
    int rc = std::fclose(f_);
    f_ = nullptr;
    if (rc != 0)
        throw TraceError("cannot close trace file: " + path_);
    FaultInjector::global().maybeTamperCacheFile(path_, config_hash_);
}

std::string
traceConfigText(const MachineConfig &m, const SaveConfig &s, int vpus,
                const std::string &kernel_name)
{
    std::string out;
    out.reserve(1024);
    appendKv(out, "kernel", "%s", kernel_name.c_str());
    appendKv(out, "vpus", "%d", vpus);

    appendKv(out, "mc.cores", "%d", m.cores);
    appendKv(out, "mc.freq2VpuGhz", "%.17g", m.freq2VpuGhz);
    appendKv(out, "mc.freq1VpuGhz", "%.17g", m.freq1VpuGhz);
    appendKv(out, "mc.uncoreGhz", "%.17g", m.uncoreGhz);
    appendKv(out, "mc.issueWidth", "%d", m.issueWidth);
    appendKv(out, "mc.commitWidth", "%d", m.commitWidth);
    appendKv(out, "mc.rsEntries", "%d", m.rsEntries);
    appendKv(out, "mc.robEntries", "%d", m.robEntries);
    appendKv(out, "mc.prfExtraRegs", "%d", m.prfExtraRegs);
    appendKv(out, "mc.numVpus", "%d", m.numVpus);
    appendKv(out, "mc.fp32FmaLatency", "%d", m.fp32FmaLatency);
    appendKv(out, "mc.mpFmaLatency", "%d", m.mpFmaLatency);
    appendKv(out, "mc.l1ReadPorts", "%d", m.l1ReadPorts);
    appendKv(out, "mc.bcachePorts", "%d", m.bcachePorts);
    appendKv(out, "mc.bcacheEntries", "%d", m.bcacheEntries);
    appendKv(out, "mc.l1SizeKb", "%d", m.l1SizeKb);
    appendKv(out, "mc.l1Ways", "%d", m.l1Ways);
    appendKv(out, "mc.l1LatCycles", "%d", m.l1LatCycles);
    appendKv(out, "mc.l2SizeKb", "%d", m.l2SizeKb);
    appendKv(out, "mc.l2Ways", "%d", m.l2Ways);
    appendKv(out, "mc.l2LatCycles", "%d", m.l2LatCycles);
    appendKv(out, "mc.l3SizeKbPerCore", "%.17g", m.l3SizeKbPerCore);
    appendKv(out, "mc.l3Ways", "%d", m.l3Ways);
    appendKv(out, "mc.l3LatNs", "%.17g", m.l3LatNs);
    appendKv(out, "mc.nocHopCycles", "%d", m.nocHopCycles);
    appendKv(out, "mc.dramGBps", "%.17g", m.dramGBps);
    appendKv(out, "mc.dramChannels", "%d", m.dramChannels);
    appendKv(out, "mc.dramLatNs", "%.17g", m.dramLatNs);
    appendKv(out, "mc.prefetchDegree", "%d", m.prefetchDegree);
    appendKv(out, "mc.exceptionServiceCycles", "%d",
             m.exceptionServiceCycles);
    appendKv(out, "mc.watchdogCycles", "%d", m.watchdogCycles);

    appendKv(out, "sc.enabled", "%d", s.enabled ? 1 : 0);
    appendKv(out, "sc.policy", "%d", static_cast<int>(s.policy));
    appendKv(out, "sc.laneWiseDep", "%d", s.laneWiseDep ? 1 : 0);
    appendKv(out, "sc.bsSkip", "%d", s.bsSkip ? 1 : 0);
    appendKv(out, "sc.bcache", "%d", static_cast<int>(s.bcache));
    appendKv(out, "sc.mpCompress", "%d", s.mpCompress ? 1 : 0);
    appendKv(out, "sc.hcExtraLatency", "%d", s.hcExtraLatency);
    appendKv(out, "sc.rotationStates", "%d", s.rotationStates);
    return out;
}

std::vector<uint32_t>
computeElmSidecar(const std::vector<Uop> &uops, const MemoryImage &image)
{
    MemoryImage img = image; // exec mutates memory via stores
    ArchExecutor ex(&img);
    // ArchExecutor keeps its mask file private; shadow it here — the
    // trace stream carries every SetMask, so the shadow stays exact.
    std::array<uint16_t, kLogicalMaskRegs> masks;
    masks.fill(0xffffu);
    std::vector<uint32_t> elms;
    for (const Uop &u : uops) {
        if (u.op == Opcode::SetMask)
            masks[static_cast<size_t>(u.wmask)] = u.maskImm;
        if (u.isVfma()) {
            VecReg a = u.hasEmbeddedBroadcast()
                           ? VecReg::broadcastWord(img.readU32(u.addr))
                           : ex.reg(u.srcA);
            const VecReg &b = ex.reg(u.srcB);
            uint16_t wm =
                u.wmask >= 0 ? masks[static_cast<size_t>(u.wmask)]
                             : 0xffffu;
            elms.push_back(u.isMixedPrecision() ? elmMp(a, b, wm)
                                                : elmF32(a, b, wm));
        }
        ex.exec(u);
    }
    return elms;
}

} // namespace save
