/**
 * @file
 * Cycle-level pipeline event tracer (Chrome-trace/Perfetto JSON).
 *
 * Always compiled in, ~zero cost when off: every hook in the core and
 * scheduler is guarded by a single null-pointer test on the core's
 * tracer, and no tracer exists unless one was attached — either
 * programmatically (Multicore::attachEventTrace) or via the
 * SAVE_TRACE_EVENTS=<path.json> environment variable (the bench
 * binaries map --trace-events= onto it).
 *
 * Each core buffers fixed-size records in a ring and converts them to
 * JSON text only when the ring fills (and at finalize), so the hot
 * path is a struct store. The output loads directly in Perfetto /
 * chrome://tracing: one process per core; tracks for allocation, the
 * MGU, lane coalescing per VPU, VPU issue (duration = op latency),
 * writeback, squashes; and per-ROB-slot "X" spans covering each uop
 * from allocation to retirement. Timestamps are core cycles (1 cycle
 * rendered as 1 us).
 *
 * finalize() appends a per-kernel coalescing-efficiency summary
 * (effectual lanes issued / VPU-op lane slots) to the JSON footer and
 * logs it through util/logging.
 */

#ifndef SAVE_TRACE_EVENT_TRACE_H
#define SAVE_TRACE_EVENT_TRACE_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "isa/uop.h"
#include "stats/stats.h"

namespace save {

class EventTraceSession;

/** Per-core ring-buffered event recorder. Single-threaded (a core is
 *  stepped by one thread); flushes serialize on the session. */
class CoreEventTracer
{
  public:
    CoreEventTracer(EventTraceSession *session, int core_id);

    /** Pipeline hooks (call sites in src/sim and src/save) ---------- */

    void alloc(uint64_t cycle, uint64_t seq, const Uop &u, int rob_idx);
    void elm(uint64_t cycle, uint64_t seq, uint32_t elm, int pending_al);
    void coalesceLane(uint64_t cycle, uint64_t seq, int src_lane,
                      int temp_lane, int vpu, bool hc);
    void coalesceDense(uint64_t cycle, uint64_t seq, int vpu);
    void chainMl(uint64_t cycle, uint64_t seq, int al, int vpu, int mls);
    void passLanes(uint64_t cycle, uint64_t seq, uint16_t lanes);
    void baselineIssue(uint64_t cycle, uint64_t seq, int vpu);
    void tempIssue(uint64_t cycle, int vpu, int lanes, bool mp, int lat,
                   bool hc);
    void writeback(uint64_t cycle, uint64_t seq, int rob_idx);
    void retire(uint64_t cycle, uint64_t seq, const Uop &u, int rob_idx);
    void squash(uint64_t cycle, uint64_t fault_seq, int count);

    /** Convert buffered records to JSON and hand them to the session.
     *  Called automatically when the ring fills and at finalize. */
    void flush();

    int coreId() const { return core_id_; }

  private:
    friend class EventTraceSession;

    enum class Kind : uint8_t {
        Alloc,
        Elm,
        Coalesce,
        Dense,
        ChainMl,
        Pass,
        Baseline,
        TempIssue,
        Writeback,
        Retire,
        Squash,
    };

    /** One buffered event; meaning of a/b/c depends on kind. */
    struct Rec
    {
        uint64_t cycle;
        uint64_t seq;
        uint32_t a;
        uint32_t b;
        int16_t c;
        Kind kind;
        uint8_t op;
    };

    void push(const Rec &r);
    void recordJson(const Rec &r, std::string &out) const;

    EventTraceSession *session_;
    int core_id_;
    std::vector<Rec> ring_;
    /** Allocation cycle per ROB slot (read back at retire to emit the
     *  uop's alloc→retire span; grows on demand). */
    std::vector<uint64_t> alloc_cycle_;

    /** Summary counters (exact, independent of ring flushes). */
    uint64_t n_uops_ = 0;
    uint64_t n_vfmas_ = 0;
    uint64_t n_vpu_ops_ = 0;
    uint64_t fill_sum_ = 0;
    uint64_t slot_sum_ = 0;
    uint64_t n_dense_ = 0;
    uint64_t n_lane_moves_ = 0;
    uint64_t n_pass_lanes_ = 0;
    uint64_t n_baseline_ = 0;
    uint64_t n_chain_mls_ = 0;
    uint64_t n_squashed_ = 0;
};

/**
 * One event-trace output file shared by every core of a machine.
 * Owns the per-core tracers; thread-safe appends.
 */
class EventTraceSession
{
  public:
    explicit EventTraceSession(const std::string &path);
    ~EventTraceSession();

    EventTraceSession(const EventTraceSession &) = delete;
    EventTraceSession &operator=(const EventTraceSession &) = delete;

    /**
     * Session for SAVE_TRACE_EVENTS, or nullptr when the variable is
     * unset/empty. Each call returns a fresh session; after the first,
     * the path gains a ".2", ".3", ... suffix so one process running
     * several machines does not overwrite its own output.
     */
    static std::unique_ptr<EventTraceSession> fromEnv();

    /** Tracer for a core (created on first use; owned by the session). */
    CoreEventTracer *tracer(int core_id);

    /** Flush every tracer, write the JSON footer (with the summary),
     *  close the file, and log the coalescing efficiency. Idempotent;
     *  the destructor calls it. */
    void finalize();

    /** Summary across all cores; complete only after finalize(). */
    const StatGroup &summary() const { return summary_; }

    const std::string &path() const { return path_; }

  private:
    friend class CoreEventTracer;

    /** Append one JSON event object (comma handling internal). */
    void emit(const std::string &json);

    std::string path_;
    std::FILE *f_ = nullptr;
    std::mutex mu_;
    bool first_event_ = true;
    bool finalized_ = false;
    std::vector<std::unique_ptr<CoreEventTracer>> tracers_;
    StatGroup summary_;
};

} // namespace save

#endif // SAVE_TRACE_EVENT_TRACE_H
