#include "sim/fuzz.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "isa/bf16.h"
#include "mem/memory_image.h"
#include "sim/multicore.h"
#include "sim/reference.h"
#include "trace/trace_writer.h"
#include "util/error.h"
#include "util/random.h"

namespace save {

namespace {

/* ------------------------------------------------------------------ */
/* Generation                                                          */
/* ------------------------------------------------------------------ */

/** One 32-bit memory word under the profile's sparsity. FP32 view:
 *  the word is a float; BF16 view: each half is a multiplicand lane.
 *  Drawing both shapes keeps the same region interesting for every
 *  precision the stream mixes. */
uint32_t
drawWord(Rng &rng, double sparsity, bool bf16Shape)
{
    if (!bf16Shape) {
        if (rng.chance(sparsity))
            return 0;
        float v = rng.nonZeroValue();
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        return bits;
    }
    uint32_t lo = rng.chance(sparsity)
                      ? 0
                      : f32ToBf16(rng.nonZeroValue());
    uint32_t hi = rng.chance(sparsity)
                      ? 0
                      : f32ToBf16(rng.nonZeroValue());
    return (hi << 16) | lo;
}

} // namespace

FuzzProgram
fuzzGenerate(uint64_t seed)
{
    // Decorrelate consecutive seeds (mt19937_64 seeded with n and n+1
    // starts out similar); splitmix64 finalizer.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    Rng rng(z ^ (z >> 31));

    FuzzProgram p;
    p.base = 0x10000;
    p.bytes = 4096;

    // --- profile draws -------------------------------------------------
    const double sparsities[] = {0.0, 0.5, 0.9, 0.97};
    double sparsity = sparsities[rng.range(0, 3)];
    // 0 = fp32 only, 1 = bf16 only, 2 = per-uop mix.
    int precMode = static_cast<int>(rng.range(0, 2));
    // 0 = unmasked, 1 = random sparse masks, 2 = degenerate
    // (0x0000/0xffff/one-hot), 3 = masks re-written mid-stream.
    int maskMode = static_cast<int>(rng.range(0, 3));
    int len = static_cast<int>(rng.range(16, 160));
    bool squashy = rng.chance(0.6);

    // --- initial memory ------------------------------------------------
    p.words.resize(p.bytes / 4);
    for (uint32_t &w : p.words)
        w = drawWord(rng, sparsity, precMode == 1 || rng.chance(0.5));

    // --- register roles ------------------------------------------------
    int nAcc = 1 + static_cast<int>(rng.range(0, 5)); // regs 0..nAcc-1
    int nMul = 2 + static_cast<int>(rng.range(0, 5)); // regs 8..8+nMul-1

    auto anyAddr = [&](uint64_t align) {
        uint64_t off = rng.range(0, p.bytes / align - 1) * align;
        return p.base + off;
    };
    // A small pool of lines shared by stores and loads so in-flight
    // store→load ordering gets exercised constantly.
    std::vector<uint64_t> hotLines;
    for (int i = 0; i < 8; ++i)
        hotLines.push_back(anyAddr(64));
    auto hotLine = [&] { return hotLines[rng.range(0, 7)]; };

    auto maskFor = [&]() -> int {
        switch (maskMode) {
          case 0:
            return -1;
          default:
            return rng.chance(0.5) ? -1
                                   : static_cast<int>(rng.range(1, 3));
        }
    };
    auto setMaskUop = [&](int kreg) {
        uint16_t imm;
        if (maskMode == 2) {
            const uint16_t degenerate[] = {
                0x0000, 0xffff, 0x0001, 0x8000,
                static_cast<uint16_t>(1u << rng.range(0, 15))};
            imm = degenerate[rng.range(0, 4)];
        } else {
            imm = static_cast<uint16_t>(rng.range(0, 0xffff));
        }
        return Uop::setMask(kreg, imm);
    };

    // --- prologue: seed the mask registers and multiplicands ----------
    if (maskMode != 0)
        for (int k = 1; k <= 3; ++k)
            p.uops.push_back(setMaskUop(k));
    for (int i = 0; i < nMul; ++i)
        p.uops.push_back(Uop::loadVec(8 + i, anyAddr(64)));

    // --- body ----------------------------------------------------------
    for (int i = 0; i < len; ++i) {
        double r = rng.uniform();
        bool mp = precMode == 1 || (precMode == 2 && rng.chance(0.5));
        int dst = static_cast<int>(rng.range(0, nAcc - 1));
        int b = 8 + static_cast<int>(rng.range(0, nMul - 1));
        if (r < 0.55) {
            // The FMA workhorse; register-sourced or embedded bcast.
            if (rng.chance(0.5)) {
                int a = rng.chance(0.85)
                            ? 8 + static_cast<int>(rng.range(0, nMul - 1))
                            : static_cast<int>(rng.range(0, nAcc - 1));
                p.uops.push_back(mp ? Uop::vdp(dst, a, b, maskFor())
                                    : Uop::vfma(dst, a, b, maskFor()));
            } else {
                uint64_t addr = anyAddr(4);
                p.uops.push_back(
                    mp ? Uop::vdpBcast(dst, addr, b, maskFor())
                       : Uop::vfmaBcast(dst, addr, b, maskFor()));
            }
        } else if (r < 0.70) {
            // Reload a multiplicand — half the time from a hot line a
            // store may still have in flight.
            uint64_t addr = rng.chance(0.5) ? hotLine() : anyAddr(64);
            p.uops.push_back(Uop::loadVec(b, addr));
        } else if (r < 0.78) {
            p.uops.push_back(Uop::broadcastLoad(b, anyAddr(4)));
        } else if (r < 0.88) {
            p.uops.push_back(Uop::storeVec(
                static_cast<int>(rng.range(0, nAcc - 1)), hotLine()));
        } else if (r < 0.93 && maskMode == 3) {
            p.uops.push_back(
                setMaskUop(static_cast<int>(rng.range(1, 3))));
        } else {
            p.uops.push_back(Uop::alu());
        }
    }

    // --- epilogue: make every accumulator architecturally visible -----
    for (int i = 0; i < nAcc; ++i)
        p.uops.push_back(
            Uop::storeVec(i, p.base + p.bytes - 64 * (i + 1)));

    if (squashy)
        p.faultIndex = static_cast<int64_t>(
            rng.range(0, p.uops.size() - 1));
    return p;
}

/* ------------------------------------------------------------------ */
/* Differential check                                                  */
/* ------------------------------------------------------------------ */

namespace {

MemoryImage
buildImage(const FuzzProgram &p)
{
    MemoryImage image;
    image.addRegion(p.base, p.bytes);
    for (size_t i = 0; i < p.words.size(); ++i)
        if (p.words[i])
            image.writeU32(p.base + 4 * i, p.words[i]);
    return image;
}

struct DiffCase
{
    const char *name;
    SaveConfig scfg;
};

std::vector<DiffCase>
diffCases()
{
    std::vector<DiffCase> cases;
    cases.push_back({"baseline", SaveConfig::baseline()});
    SaveConfig vc;
    vc.policy = SchedPolicy::VC;
    cases.push_back({"vc", vc});
    cases.push_back({"rvc", SaveConfig{}});
    SaveConfig hc;
    hc.policy = SchedPolicy::HC;
    cases.push_back({"hc", hc});
    SaveConfig nompc;
    nompc.mpCompress = false;
    cases.push_back({"rvc_nompc", nompc});
    return cases;
}

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

/** RAII save/restore of SAVE_FASTFORWARD so the checker composes with
 *  ambient environment configuration (tests toggle it too). */
class FfEnvGuard
{
  public:
    FfEnvGuard()
    {
        const char *v = std::getenv("SAVE_FASTFORWARD");
        had_ = v != nullptr;
        if (v)
            saved_ = v;
    }
    ~FfEnvGuard()
    {
        if (had_)
            setenv("SAVE_FASTFORWARD", saved_.c_str(), 1);
        else
            unsetenv("SAVE_FASTFORWARD");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

struct CaseRun
{
    uint64_t cycles = 0;
    std::map<std::string, double> stats;
    std::string failure; // non-empty = this case already failed
};

CaseRun
runCase(const FuzzProgram &p, const DiffCase &dc, bool ff,
        const MemoryImage &ref_image, const ArchExecutor &ref)
{
    std::string tag = std::string(dc.name) + (ff ? "/ff=1" : "/ff=0");
    CaseRun r;
    setenv("SAVE_FASTFORWARD", ff ? "1" : "0", 1);
    try {
        MemoryImage image = buildImage(p);
        MachineConfig m;
        m.cores = 1;
        Multicore mc(m, dc.scfg, 2, &image);
        if (p.faultIndex >= 0)
            mc.core(0).injectFaultAtSeq(
                static_cast<uint64_t>(p.faultIndex));
        VectorTrace t(p.uops);
        mc.bindTraces({&t});
        r.cycles = mc.run(5'000'000);
        r.stats = mc.aggregateStats().all();

        Core &c = mc.core(0);
        // 1. Architectural registers vs the in-order oracle.
        for (int l = 0; l < kLogicalVecRegs; ++l) {
            const VecReg &got = c.renamer().archValue(l);
            const VecReg &want = ref.reg(l);
            for (int w = 0; w < kVecLanes; ++w)
                if (got.word(w) != want.word(w)) {
                    r.failure = tag + ": zmm" + std::to_string(l) +
                                " word " + std::to_string(w) + " = " +
                                hex32(got.word(w)) + ", oracle " +
                                hex32(want.word(w));
                    return r;
                }
        }
        // 2. Memory vs the oracle's image.
        for (uint64_t off = 0; off < p.bytes; off += 4)
            if (image.readU32(p.base + off) !=
                ref_image.readU32(p.base + off)) {
                r.failure =
                    tag + ": mem[0x" + std::to_string(p.base + off) +
                    "] = " + hex32(image.readU32(p.base + off)) +
                    ", oracle " +
                    hex32(ref_image.readU32(p.base + off));
                return r;
            }
        // 3. Leaked pipeline resources after drain.
        if (c.prf.numFree() != c.prf.numRegs() - kLogicalVecRegs)
            r.failure = tag + ": leaked physical registers (" +
                        std::to_string(c.prf.numFree()) + " free of " +
                        std::to_string(c.prf.numRegs()) + ")";
        else if (!c.rob.empty())
            r.failure = tag + ": ROB not empty after drain";
        else if (c.rs.size() != 0)
            r.failure = tag + ": RS not empty after drain";
    } catch (const std::exception &e) {
        r.failure = tag + ": " + e.what();
    }
    return r;
}

} // namespace

std::string
fuzzCheck(const FuzzProgram &p)
{
    // In-order oracle, once per program.
    MemoryImage ref_image = buildImage(p);
    ArchExecutor ref(&ref_image);
    ref.run(p.uops);

    FfEnvGuard guard;
    for (const DiffCase &dc : diffCases()) {
        CaseRun off = runCase(p, dc, false, ref_image, ref);
        if (!off.failure.empty())
            return off.failure;
        CaseRun on = runCase(p, dc, true, ref_image, ref);
        if (!on.failure.empty())
            return on.failure;
        // Fast-forward must be a pure host-time optimization.
        if (off.cycles != on.cycles)
            return std::string(dc.name) + ": ff=0 ran " +
                   std::to_string(off.cycles) + " cycles, ff=1 ran " +
                   std::to_string(on.cycles);
        if (off.stats != on.stats) {
            for (const auto &[k, v] : off.stats) {
                auto it = on.stats.find(k);
                if (it == on.stats.end() || it->second != v)
                    return std::string(dc.name) + ": stat '" + k +
                           "' diverges between ff modes";
            }
            return std::string(dc.name) +
                   ": ff=1 stat map has extra keys";
        }
    }
    return "";
}

/* ------------------------------------------------------------------ */
/* Shrinking                                                           */
/* ------------------------------------------------------------------ */

namespace {

/** Remove uops [start, start+n) and remap the fault index; returns
 *  false when the candidate would be empty. */
bool
removeRange(const FuzzProgram &p, size_t start, size_t n,
            FuzzProgram &out)
{
    if (n >= p.uops.size())
        return false;
    out = p;
    out.uops.erase(out.uops.begin() + static_cast<int64_t>(start),
                   out.uops.begin() + static_cast<int64_t>(start + n));
    if (p.faultIndex >= 0) {
        auto f = static_cast<size_t>(p.faultIndex);
        if (f >= start + n)
            out.faultIndex -= static_cast<int64_t>(n);
        else if (f >= start)
            out.faultIndex = -1; // fault uop removed; try faultless
    }
    return true;
}

} // namespace

FuzzProgram
fuzzShrink(const FuzzProgram &p, int budget)
{
    FuzzProgram best = p;
    // Drop the fault first — a repro that fails without a squash is
    // strictly simpler to debug.
    if (best.faultIndex >= 0 && budget > 0) {
        FuzzProgram cand = best;
        cand.faultIndex = -1;
        --budget;
        if (!fuzzCheck(cand).empty())
            best = cand;
    }
    for (size_t chunk = std::max<size_t>(1, best.uops.size() / 2);
         chunk >= 1; chunk = chunk / 2) {
        bool progress = true;
        while (progress && budget > 0) {
            progress = false;
            for (size_t start = 0;
                 start < best.uops.size() && budget > 0;
                 start += chunk) {
                size_t n =
                    std::min(chunk, best.uops.size() - start);
                FuzzProgram cand;
                if (!removeRange(best, start, n, cand))
                    continue;
                --budget;
                if (!fuzzCheck(cand).empty()) {
                    best = cand;
                    progress = true;
                }
            }
        }
        if (chunk == 1)
            break;
    }
    return best;
}

/* ------------------------------------------------------------------ */
/* Corpus serialization                                                */
/* ------------------------------------------------------------------ */

std::string
fuzzSerialize(const FuzzProgram &p)
{
    std::ostringstream os;
    os << "savefuzz v1\n";
    os << "base " << p.base << "\n";
    os << "bytes " << p.bytes << "\n";
    os << "fault " << p.faultIndex << "\n";
    for (size_t i = 0; i < p.words.size(); ++i)
        if (p.words[i])
            os << "word " << i << " " << hex32(p.words[i]) << "\n";
    for (const Uop &u : p.uops)
        os << "uop " << static_cast<int>(u.op) << " "
           << static_cast<int>(u.dst) << " "
           << static_cast<int>(u.srcA) << " "
           << static_cast<int>(u.srcB) << " "
           << static_cast<int>(u.srcC) << " "
           << static_cast<int>(u.wmask) << " " << u.addr << " "
           << u.maskImm << "\n";
    os << "end\n";
    return os.str();
}

FuzzProgram
fuzzParse(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, version;
    is >> magic >> version;
    if (magic != "savefuzz" || version != "v1")
        throw TraceError("fuzz corpus entry: bad magic '" + magic +
                         " " + version + "'");
    FuzzProgram p;
    p.words.clear();
    bool ended = false;
    std::string key;
    while (is >> key) {
        if (key == "base") {
            is >> p.base;
        } else if (key == "bytes") {
            is >> p.bytes;
            p.words.assign(p.bytes / 4, 0);
        } else if (key == "fault") {
            is >> p.faultIndex;
        } else if (key == "word") {
            size_t idx;
            std::string hex;
            is >> idx >> hex;
            if (idx >= p.words.size())
                throw TraceError(
                    "fuzz corpus entry: word index " +
                    std::to_string(idx) + " out of range");
            p.words[idx] = static_cast<uint32_t>(
                std::stoul(hex, nullptr, 16));
        } else if (key == "uop") {
            int op, dst, a, b, c, wmask;
            uint64_t addr;
            int imm;
            is >> op >> dst >> a >> b >> c >> wmask >> addr >> imm;
            if (op < 0 || op > static_cast<int>(Opcode::SetMask))
                throw TraceError("fuzz corpus entry: bad opcode " +
                                 std::to_string(op));
            Uop u;
            u.op = static_cast<Opcode>(op);
            u.dst = static_cast<int8_t>(dst);
            u.srcA = static_cast<int8_t>(a);
            u.srcB = static_cast<int8_t>(b);
            u.srcC = static_cast<int8_t>(c);
            u.wmask = static_cast<int8_t>(wmask);
            u.addr = addr;
            u.maskImm = static_cast<uint16_t>(imm);
            p.uops.push_back(u);
        } else if (key == "end") {
            ended = true;
            break;
        } else {
            throw TraceError("fuzz corpus entry: unknown key '" + key +
                             "'");
        }
        if (!is)
            throw TraceError("fuzz corpus entry: truncated after '" +
                             key + "'");
    }
    if (!ended)
        throw TraceError("fuzz corpus entry: missing 'end'");
    return p;
}

void
fuzzWriteTrace(const FuzzProgram &p, const std::string &path,
               const std::string &name)
{
    MemoryImage image = buildImage(p);
    TraceWriter w(path, 0);
    MachineConfig m;
    m.cores = 1;
    w.writeConfig(traceConfigText(m, SaveConfig{}, 2, name));
    w.writeImage(image);
    w.writeUops(0, p.uops);
    w.finish();
}

} // namespace save
