/**
 * @file
 * Lock-step multicore driver: N cores sharing one memory hierarchy.
 * Cores interact only through the shared L3/NoC/DRAM timing model, so
 * stepping them round-robin each cycle is exact enough for the
 * bandwidth/latency contention the paper models.
 */

#ifndef SAVE_SIM_MULTICORE_H
#define SAVE_SIM_MULTICORE_H

#include <memory>
#include <vector>

#include "mem/hierarchy.h"
#include "mem/memory_image.h"
#include "sim/config.h"
#include "sim/core.h"

namespace save {

class EventTraceSession;

/** A whole simulated machine. */
class Multicore
{
  public:
    /** If SAVE_TRACE_EVENTS=<path.json> is set, a pipeline event trace
     *  covering this machine's run is written there automatically. */
    Multicore(const MachineConfig &mcfg, const SaveConfig &scfg,
              int active_vpus, MemoryImage *image);
    ~Multicore();

    Core &core(int i) { return *cores_[static_cast<size_t>(i)]; }
    int numCores() const { return static_cast<int>(cores_.size()); }
    MemHierarchy &hierarchy() { return *mem_; }

    /** Route every core's pipeline events into `session` (non-owning;
     *  must outlive the machine). nullptr detaches. Replaces any
     *  SAVE_TRACE_EVENTS session. */
    void attachEventTrace(EventTraceSession *session);

    /** Bind one trace per core (vector length must equal core count;
     *  nullptr entries leave a core idle). */
    void bindTraces(const std::vector<TraceSource *> &traces);

    /** Run all cores to completion; returns the max cycle count. */
    uint64_t run(uint64_t max_cycles = ~0ull);

    /** Sum of per-core stat groups plus hierarchy stats. */
    StatGroup aggregateStats() const;

  private:
    /** Panic (naming the core) if any core passed max_cycles. */
    void checkCycleLimit(uint64_t max_cycles) const;

    MachineConfig mcfg_;
    std::unique_ptr<MemHierarchy> mem_;
    std::vector<std::unique_ptr<Core>> cores_;
    /** SAVE_TRACE_EVENTS auto-attached session (finalized on
     *  destruction; declared last so it flushes before the cores go). */
    std::unique_ptr<EventTraceSession> env_etrace_;
};

} // namespace save

#endif // SAVE_SIM_MULTICORE_H
