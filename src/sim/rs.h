/**
 * @file
 * Reservation stations. Entries carry the SAVE per-instruction state:
 * the Effectual Lane Mask (ELM), pending/pass-through lane sets, the
 * rotational state (R-state), and the mixed-precision chain link.
 *
 * Age order is maintained explicitly so the select logic can implement
 * the paper's oldest-first priority (Algorithm 1, lines 3-9). The
 * order lives in intrusive doubly-linked lists over the slot array, so
 * push, release, and iteration are allocation-free and O(1) per entry
 * (the seed implementation kept a side vector and paid an O(n)
 * std::find per release).
 *
 * Besides the full age list, every entry sits on exactly one of two
 * age-ordered scheduler sublists:
 *
 *   pending  -- no ELM yet; what the MGU stage scans.
 *   issuable -- ELM generated; what select/pass-through/combination-
 *               window logic scans. (Under the baseline policy no ELM
 *               is ever generated, so the baseline select simply scans
 *               the pending list — which is then the full age order.)
 *
 * promote() moves an entry from pending to issuable with an
 * age-ordered insertion, so both sublists stay oldest-first even when
 * a late operand makes an old entry's ELM arrive after a younger
 * one's.
 */

#ifndef SAVE_SIM_RS_H
#define SAVE_SIM_RS_H

#include <cstdint>
#include <vector>

#include "isa/uop.h"
#include "isa/vec.h"
#include "sim/regfile.h"

namespace save {

/** One reservation-station entry. */
struct RsEntry
{
    bool valid = false;
    Uop uop;
    uint64_t seq = 0;
    int robIdx = -1;

    /** Renamed sources; pa == kNoReg for embedded-broadcast operands. */
    int pa = kNoReg;
    int pb = kNoReg;
    int pc = kNoReg;
    int dstPhys = kNoReg;

    /** Vector-wise readiness of the multiplicands. Maintained by
     *  register-writeback wakeup (Core::wakeWaiters), not polling. */
    bool aReady = false;
    bool bReady = false;
    /** Accumulator fully ready. Only maintained under the baseline
     *  select (which needs the whole register at once); the positional
     *  policies consume per-lane PRF ready masks directly. */
    bool cReady = false;
    /** Value delivered by an embedded-broadcast memory operand. */
    VecReg bcastVal;
    /** Write mask captured at allocation (0xffff when unmasked). */
    uint16_t wm = 0xffffu;

    /** SAVE state ---------------------------------------------------- */
    bool elmValid = false;
    /** Effectual lanes: bit per AL for FP32, bit per ML for MP. */
    uint32_t elm = 0;
    /** MP only: multiplicand lanes not yet issued. */
    uint32_t pendingMl = 0;
    /** Accumulator lanes with unissued effectual work. */
    uint16_t pendingAl = 0;
    /** Accumulator lanes that pass C through, not yet published. */
    uint16_t passPending = 0;
    /** MP compression: ALs whose final result has been scheduled for
     *  writeback. Unscheduled partially-consumed ALs are *partial
     *  results*: discarded and recomputed on an exception (SecV-B). */
    uint16_t alScheduled = 0;
    /** Rotational state: lane shift in {-1, 0, +1} (SecIV-B). */
    int8_t rot = 0;
    /** Mixed-precision accumulator chain id, -1 if none. */
    int chainId = -1;
    /** Baseline/load path: the op has been issued whole. */
    bool issued = false;
};

/** Fixed-capacity RS with intrusive age-ordered lists. */
class Rs
{
  public:
    /** End-of-list sentinel for the first/next iteration methods. */
    static constexpr int kEnd = -1;

    explicit Rs(int entries);

    bool full() const { return size_ == capacity_; }
    int size() const { return size_; }
    int capacity() const { return capacity_; }

    /** Insert at the tail of the age order (and of the pending
     *  sublist). Throws ConfigError if the RS is full — overflow means
     *  the allocator's rs.full() back-pressure check was bypassed. */
    int push(RsEntry e);

    /** Allocate a cleared entry at the age/pending tail for in-place
     *  construction (hot path: avoids copying an RsEntry through the
     *  call). Same overflow contract as push. */
    int allocEntry();

    /** Free a slot: O(1) unlink from the age order and its sublist. */
    void release(int idx);

    /** Move an entry from the pending to the issuable sublist (MGU
     *  handoff), inserting by seq so the sublist stays age-ordered. */
    void promote(int idx);

    RsEntry &at(int idx) { return slots_[static_cast<size_t>(idx)]; }
    const RsEntry &at(int idx) const
    {
        return slots_[static_cast<size_t>(idx)];
    }

    /** Full age-order iteration (oldest first). Capture next(idx)
     *  before releasing idx inside a loop. */
    int first() const { return age_head_; }
    int next(int idx) const
    {
        return nodes_[static_cast<size_t>(idx)].anext;
    }

    /** Pending (pre-ELM) sublist, oldest first. */
    int firstPending() const { return head_[0]; }
    /** Issuable (post-ELM) sublist, oldest first. */
    int firstIssuable() const { return head_[1]; }
    int nextInList(int idx) const
    {
        return nodes_[static_cast<size_t>(idx)].snext;
    }
    int issuableCount() const { return list_size_[1]; }
    int pendingCount() const { return list_size_[0]; }

    /** Valid slot indices, oldest first — materialized copy for cold
     *  paths (snapshots, squash rebuild) and tests. */
    std::vector<int> order() const;

  private:
    struct Node
    {
        int aprev = kEnd;
        int anext = kEnd;
        int sprev = kEnd;
        int snext = kEnd;
        /** Which sublist the slot is on: 0 pending, 1 issuable. */
        uint8_t list = 0;
    };

    void listUnlink(int idx);
    void listPushBack(int idx, int list);

    int capacity_;
    int size_ = 0;
    std::vector<RsEntry> slots_;
    std::vector<Node> nodes_;
    std::vector<int> free_;
    int age_head_ = kEnd;
    int age_tail_ = kEnd;
    int head_[2] = {kEnd, kEnd};
    int tail_[2] = {kEnd, kEnd};
    int list_size_[2] = {0, 0};
};

} // namespace save

#endif // SAVE_SIM_RS_H
