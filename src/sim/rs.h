/**
 * @file
 * Reservation stations. Entries carry the SAVE per-instruction state:
 * the Effectual Lane Mask (ELM), pending/pass-through lane sets, the
 * rotational state (R-state), and the mixed-precision chain link.
 *
 * Age order is maintained explicitly so the select logic can implement
 * the paper's oldest-first priority (Algorithm 1, lines 3-9).
 */

#ifndef SAVE_SIM_RS_H
#define SAVE_SIM_RS_H

#include <cstdint>
#include <vector>

#include "isa/uop.h"
#include "isa/vec.h"
#include "sim/regfile.h"

namespace save {

/** One reservation-station entry. */
struct RsEntry
{
    bool valid = false;
    Uop uop;
    uint64_t seq = 0;
    int robIdx = -1;

    /** Renamed sources; pa == kNoReg for embedded-broadcast operands. */
    int pa = kNoReg;
    int pb = kNoReg;
    int pc = kNoReg;
    int dstPhys = kNoReg;

    /** Vector-wise readiness of the multiplicands. */
    bool aReady = false;
    bool bReady = false;
    /** Value delivered by an embedded-broadcast memory operand. */
    VecReg bcastVal;
    /** Write mask captured at allocation (0xffff when unmasked). */
    uint16_t wm = 0xffffu;

    /** SAVE state ---------------------------------------------------- */
    bool elmValid = false;
    /** Effectual lanes: bit per AL for FP32, bit per ML for MP. */
    uint32_t elm = 0;
    /** MP only: multiplicand lanes not yet issued. */
    uint32_t pendingMl = 0;
    /** Accumulator lanes with unissued effectual work. */
    uint16_t pendingAl = 0;
    /** Accumulator lanes that pass C through, not yet published. */
    uint16_t passPending = 0;
    /** MP compression: ALs whose final result has been scheduled for
     *  writeback. Unscheduled partially-consumed ALs are *partial
     *  results*: discarded and recomputed on an exception (SecV-B). */
    uint16_t alScheduled = 0;
    /** Rotational state: lane shift in {-1, 0, +1} (SecIV-B). */
    int8_t rot = 0;
    /** Mixed-precision accumulator chain id, -1 if none. */
    int chainId = -1;
    /** Baseline/load path: the op has been issued whole. */
    bool issued = false;
};

/** Fixed-capacity RS with an age-ordered index list. */
class Rs
{
  public:
    explicit Rs(int entries);

    bool full() const { return free_.empty(); }
    int size() const { return static_cast<int>(order_.size()); }
    int capacity() const { return capacity_; }

    /** Insert; RS must not be full. Returns the slot index. */
    int push(RsEntry e);

    /** Free a slot and drop it from the age order. */
    void release(int idx);

    RsEntry &at(int idx) { return slots_[static_cast<size_t>(idx)]; }
    const RsEntry &at(int idx) const
    {
        return slots_[static_cast<size_t>(idx)];
    }

    /** Valid slot indices, oldest first. */
    const std::vector<int> &order() const { return order_; }

  private:
    int capacity_;
    std::vector<RsEntry> slots_;
    std::vector<int> order_;
    std::vector<int> free_;
};

} // namespace save

#endif // SAVE_SIM_RS_H
