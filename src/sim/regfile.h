/**
 * @file
 * Physical vector register file with per-lane access.
 *
 * SAVE adopts a vector RF design where each lane of a register can be
 * read/written independently (paper SecIII, last paragraph): a V-lane
 * vector RF functions like V independent scalar RFs. We model that
 * with a per-lane ready mask per physical register, which is also what
 * lane-wise dependence (SecIV-C) consumes.
 */

#ifndef SAVE_SIM_REGFILE_H
#define SAVE_SIM_REGFILE_H

#include <cstdint>
#include <vector>

#include "isa/vec.h"
#include "stats/stats.h"

namespace save {

/** Invalid physical register index. */
constexpr int kNoReg = -1;

/** Physical register file with a free list. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(int num_regs);

    /** Allocate a register (lanes not ready). Returns kNoReg if full. */
    int alloc();

    /** Return a register to the free list. */
    void release(int idx);

    int numFree() const { return static_cast<int>(free_.size()); }
    int numRegs() const { return num_regs_; }

    /** The free list itself (invariant auditing: a register must never
     *  be simultaneously free and referenced by live pipeline state). */
    const std::vector<int> &freeList() const { return free_; }

    const VecReg &value(int idx) const;
    VecReg &value(int idx);

    /** Ready mask over FP32/accumulator lanes. */
    uint16_t laneReady(int idx) const;
    bool laneIsReady(int idx, int lane) const;
    bool fullyReady(int idx) const;

    /** Returns true if this call made the register fully ready (the
     *  0->0xffff transition), i.e. RS waiters should be woken. */
    bool setLaneReady(int idx, int lane);
    bool setAllReady(int idx);
    /** Write one FP32 lane and mark it ready. */
    bool publishLane(int idx, int lane, float v);
    /** Write the whole register and mark every lane ready. */
    bool publishAll(int idx, const VecReg &v);

  private:
    struct Entry
    {
        VecReg value;
        uint16_t ready = 0;
    };

    int num_regs_;
    std::vector<Entry> regs_;
    std::vector<int> free_;
};

} // namespace save

#endif // SAVE_SIM_REGFILE_H
