#include "sim/reference.h"

#include "isa/bf16.h"
#include "mem/memory_image.h"
#include "util/logging.h"
#include "util/simd.h"

namespace save {

void
ArchExecutor::run(const std::vector<Uop> &uops)
{
    for (const Uop &u : uops)
        exec(u);
}

void
ArchExecutor::exec(const Uop &u)
{
    switch (u.op) {
      case Opcode::Alu:
        return;
      case Opcode::SetMask:
        masks_[static_cast<size_t>(u.wmask)] = u.maskImm;
        return;
      case Opcode::BroadcastLoad:
        regs_[static_cast<size_t>(u.dst)] =
            VecReg::broadcastWord(image_->readU32(u.addr));
        return;
      case Opcode::LoadVec:
        regs_[static_cast<size_t>(u.dst)] = image_->readLine(u.addr);
        return;
      case Opcode::StoreVec:
        image_->writeLine(u.addr, regs_[static_cast<size_t>(u.srcC)]);
        return;
      default:
        break;
    }

    SAVE_ASSERT(u.isVfma(), "unhandled opcode in reference executor");
    VecReg a = u.hasEmbeddedBroadcast()
                   ? VecReg::broadcastWord(image_->readU32(u.addr))
                   : regs_[static_cast<size_t>(u.srcA)];
    const VecReg &b = regs_[static_cast<size_t>(u.srcB)];
    VecReg &c = regs_[static_cast<size_t>(u.dst)];
    uint16_t wm =
        u.wmask >= 0 ? masks_[static_cast<size_t>(u.wmask)] : 0xffffu;

    // Whole-register MAC through the host-SIMD backend; masked lanes
    // keep the accumulator value bit-exactly, and the zero-skip
    // semantics are identical to the MGU's (bf16.h / util/simd.h).
    if (u.isMixedPrecision())
        c = simd::ops().bf16MacSkipVec(a, b, c,
                                       simd::expandMask16to32(wm));
    else
        c = simd::ops().macSkipF32Vec(a, b, c, wm);
}

} // namespace save
