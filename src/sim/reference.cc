#include "sim/reference.h"

#include "isa/bf16.h"
#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

void
ArchExecutor::run(const std::vector<Uop> &uops)
{
    for (const Uop &u : uops)
        exec(u);
}

void
ArchExecutor::exec(const Uop &u)
{
    switch (u.op) {
      case Opcode::Alu:
        return;
      case Opcode::SetMask:
        masks_[static_cast<size_t>(u.wmask)] = u.maskImm;
        return;
      case Opcode::BroadcastLoad:
        regs_[static_cast<size_t>(u.dst)] =
            VecReg::broadcastWord(image_->readU32(u.addr));
        return;
      case Opcode::LoadVec:
        regs_[static_cast<size_t>(u.dst)] = image_->readLine(u.addr);
        return;
      case Opcode::StoreVec:
        image_->writeLine(u.addr, regs_[static_cast<size_t>(u.srcC)]);
        return;
      default:
        break;
    }

    SAVE_ASSERT(u.isVfma(), "unhandled opcode in reference executor");
    VecReg a = u.hasEmbeddedBroadcast()
                   ? VecReg::broadcastWord(image_->readU32(u.addr))
                   : regs_[static_cast<size_t>(u.srcA)];
    const VecReg &b = regs_[static_cast<size_t>(u.srcB)];
    VecReg &c = regs_[static_cast<size_t>(u.dst)];
    uint16_t wm =
        u.wmask >= 0 ? masks_[static_cast<size_t>(u.wmask)] : 0xffffu;

    for (int lane = 0; lane < kVecLanes; ++lane) {
        if (!((wm >> lane) & 1))
            continue; // masked lanes keep the accumulator value
        float r = c.f32(lane);
        if (u.isMixedPrecision()) {
            for (int s = 0; s < kMlPerAl; ++s) {
                int ml = kMlPerAl * lane + s;
                Bf16 av = a.bf16(ml);
                Bf16 bv = b.bf16(ml);
                // Zero-skip semantics identical to the MGU: a zero
                // multiplicand contributes nothing.
                if (!bf16IsZero(av) && !bf16IsZero(bv))
                    r = bf16Mac(r, av, bv);
            }
        } else {
            float av = a.f32(lane);
            float bv = b.f32(lane);
            if (av != 0.0f && bv != 0.0f)
                r = r + av * bv;
        }
        c.setF32(lane, r);
    }
}

} // namespace save
