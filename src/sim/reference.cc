#include "sim/reference.h"

#include "isa/bf16.h"
#include "mem/memory_image.h"
#include "util/logging.h"

namespace save {

void
ArchExecutor::run(const std::vector<Uop> &uops)
{
    for (const Uop &u : uops)
        exec(u);
}

void
ArchExecutor::exec(const Uop &u)
{
    switch (u.op) {
      case Opcode::Alu:
        return;
      case Opcode::SetMask:
        masks_[static_cast<size_t>(u.wmask)] = u.maskImm;
        return;
      case Opcode::BroadcastLoad:
        regs_[static_cast<size_t>(u.dst)] =
            VecReg::broadcastWord(image_->readU32(u.addr));
        return;
      case Opcode::LoadVec:
        regs_[static_cast<size_t>(u.dst)] = image_->readLine(u.addr);
        return;
      case Opcode::StoreVec:
        image_->writeLine(u.addr, regs_[static_cast<size_t>(u.srcC)]);
        return;
      default:
        break;
    }

    SAVE_ASSERT(u.isVfma(), "unhandled opcode in reference executor");
    VecReg a = u.hasEmbeddedBroadcast()
                   ? VecReg::broadcastWord(image_->readU32(u.addr))
                   : regs_[static_cast<size_t>(u.srcA)];
    const VecReg &b = regs_[static_cast<size_t>(u.srcB)];
    VecReg &c = regs_[static_cast<size_t>(u.dst)];
    uint16_t wm =
        u.wmask >= 0 ? masks_[static_cast<size_t>(u.wmask)] : 0xffffu;

    for (int lane = 0; lane < kVecLanes; ++lane) {
        if (!((wm >> lane) & 1))
            continue; // masked lanes keep the accumulator value
        float r = c.f32(lane);
        if (u.isMixedPrecision()) {
            // Zero-skip semantics identical to the MGU: a zero
            // multiplicand contributes nothing (bf16.h).
            for (int s = 0; s < kMlPerAl; ++s) {
                int ml = kMlPerAl * lane + s;
                r = bf16MacSkip(r, a.bf16(ml), b.bf16(ml));
            }
        } else {
            r = macSkipF32(r, a.f32(lane), b.f32(lane));
        }
        c.setF32(lane, r);
    }
}

} // namespace save
