#include "sim/core.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "save/scheduler.h"
#include "sim/auditor.h"
#include "sim/mgu.h"
#include "trace/event_trace.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace save {

namespace {

constexpr uint64_t kDefaultWatchdogCycles = 200'000;

/** SAVE_WATCHDOG_CYCLES environment override, parsed once. */
uint64_t
envWatchdogCycles()
{
    static const uint64_t cycles = [] {
        const char *env = std::getenv("SAVE_WATCHDOG_CYCLES");
        if (!env || !*env)
            return kDefaultWatchdogCycles;
        char *end = nullptr;
        long long v = std::strtoll(env, &end, 10);
        if (end == env || *end != '\0' || v <= 0) {
            SAVE_WARN("ignoring SAVE_WATCHDOG_CYCLES='", env,
                      "' (expected a positive integer); using ",
                      kDefaultWatchdogCycles);
            return kDefaultWatchdogCycles;
        }
        return static_cast<uint64_t>(v);
    }();
    return cycles;
}

/** SAVE_FASTFORWARD: default on; "0"/"off"/"false" disables. Read per
 *  core construction (not cached) so tests can toggle it. */
bool
envFastForward()
{
    const char *env = std::getenv("SAVE_FASTFORWARD");
    if (!env || !*env)
        return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
}

#ifdef SAVE_AUDIT_ENABLED
/** SAVE_AUDIT: default on when compiled in; "0"/"off"/"false"
 *  disables at run time. Read per core construction so tests can
 *  exercise both modes in one process. */
bool
envAuditEnabled()
{
    const char *env = std::getenv("SAVE_AUDIT");
    if (!env || !*env)
        return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
}
#endif

} // namespace

Core::Core(const MachineConfig &machine_cfg, const SaveConfig &save_cfg,
           int core_id, int active_vpus, MemHierarchy *mem,
           MemoryImage *image)
    : mcfg(machine_cfg), scfg(save_cfg), activeVpus(active_vpus),
      rs(machine_cfg.rsEntries), rob(machine_cfg.robEntries),
      prf(machine_cfg.prfExtraRegs + kLogicalVecRegs),
      vpus(static_cast<size_t>(active_vpus)),
      core_id_(core_id), freq_ghz_(machine_cfg.coreFreqGhz(active_vpus)),
      mem_(mem), image_(image), renamer_(&prf),
      st_committed_(&stats_, "committed"), st_uops_(&stats_, "uops"),
      st_vfmas_(&stats_, "vfmas"),
      st_loads_issued_(&stats_, "loads_issued"),
      st_elms_generated_(&stats_, "elms_generated"),
      st_bs_skipped_(&stats_, "bs_skipped_vfmas"),
      st_rotated_copies_(&stats_, "rotated_copies"),
      st_stall_rob_(&stats_, "stall_rob_full"),
      st_stall_rs_(&stats_, "stall_rs_full"),
      st_stall_prf_(&stats_, "stall_prf"),
      st_bcast_l1_reads_(&stats_, "bcast_l1_reads"),
      st_bcast_bc_served_(&stats_, "bcast_bc_served"),
      st_cw_sum_(&stats_, "cw_sum"), st_cw_cycles_(&stats_, "cw_cycles")
{
    if (active_vpus < 1 || active_vpus > machine_cfg.numVpus)
        throw ConfigError("active VPU count must be in [1, " +
                          std::to_string(machine_cfg.numVpus) +
                          "] (got " + std::to_string(active_vpus) +
                          ")");
    watchdog_cycles_ = machine_cfg.watchdogCycles > 0
        ? static_cast<uint64_t>(machine_cfg.watchdogCycles)
        : envWatchdogCycles();
    forced_watchdog_cycle_ =
        FaultInjector::global().watchdogFireCycle(core_id);
    fastforward_ = envFastForward();
    if (scfg.enabled && scfg.bcache != BcastCacheKind::None) {
        bcache_ = std::make_unique<BroadcastCache>(
            scfg.bcache, mcfg.bcacheEntries, image_);
        mem_->setL1EvictListener(core_id_, [this](uint64_t line) {
            bcache_->invalidate(line);
        });
    }
    sched_ = std::make_unique<VectorScheduler>(*this);
#ifdef SAVE_AUDIT_ENABLED
    if (envAuditEnabled())
        auditor_ = std::make_unique<Auditor>(*this);
#endif

    reg_waiters_.resize(static_cast<size_t>(prf.numRegs()));
    vfma_dst_to_rs_.assign(static_cast<size_t>(prf.numRegs()), -1);
    rotated_copies_.assign(static_cast<size_t>(prf.numRegs()), 0);
    baseline_select_ =
        !scfg.enabled || scfg.policy == SchedPolicy::Baseline;
    baseline_ready_.reserve(static_cast<size_t>(rs.capacity()));
    wb_scratch_.reserve(4 * kVecLanes);
    wb_vec_scratch_.reserve(4);
    squashed_rob_.assign(static_cast<size_t>(rob.capacity()), 0);
    {
        // Pre-size the event heap's backing store.
        std::vector<Event> backing;
        backing.reserve(256);
        events_ = decltype(events_)(std::greater<>(),
                                    std::move(backing));
    }
}

Core::~Core() = default;

void
Core::bindTrace(TraceSource *trace)
{
    trace_ = trace;
    trace_done_ = false;
    have_peek_ = false;
}

int
Core::fmaLatency(bool mixed_precision) const
{
    return mixed_precision ? mcfg.mpFmaLatency : mcfg.fp32FmaLatency;
}

const VecReg &
Core::operandA(const RsEntry &e) const
{
    return e.pa == kNoReg ? e.bcastVal : prf.value(e.pa);
}

const VecReg &
Core::operandB(const RsEntry &e) const
{
    return prf.value(e.pb);
}

void
Core::pushEvent(Event ev)
{
    ev.order = event_order_++;
    events_.push(ev);
    activity_ = true;
}

void
Core::schedulePublish(int phys, int lane, float value, int robIdx,
                      uint64_t at_cycle)
{
    SAVE_ASSERT(at_cycle > cycle_, "publish must be in the future");
    if (at_cycle - cycle_ < kPubRingSlots) {
        pub_ring_[at_cycle % kPubRingSlots].push_back(
            {phys, static_cast<int16_t>(lane), value, robIdx});
        ++pub_count_;
        activity_ = true;
        return;
    }
    Event ev{};
    ev.cycle = at_cycle;
    ev.kind = Event::Publish;
    ev.phys = phys;
    ev.lane = lane;
    ev.value = value;
    ev.robIdx = robIdx;
    pushEvent(ev);
}

void
Core::releaseEntry(int rs_idx)
{
    const RsEntry &e = rs.at(rs_idx);
    if (e.dstPhys != kNoReg)
        vfma_dst_to_rs_[static_cast<size_t>(e.dstPhys)] = -1;
    sched_->onEntryReleased(rs_idx);
    rs.release(rs_idx);
}

void
Core::wakeWaiters(int phys)
{
    std::vector<RegWaiter> &ws =
        reg_waiters_[static_cast<size_t>(phys)];
    if (ws.empty())
        return;
    for (const RegWaiter &w : ws) {
        RsEntry &e = rs.at(w.rsIdx);
        if (!e.valid || e.seq != w.seq)
            continue; // slot reused since enlisting
        switch (w.src) {
          case RegWaiter::Src::A: e.aReady = true; break;
          case RegWaiter::Src::B: e.bReady = true; break;
          case RegWaiter::Src::C: e.cReady = true; break;
        }
        onOperandReady(w.rsIdx, e);
    }
    ws.clear();
}

void
Core::addWaiters(int rs_idx, const RsEntry &e)
{
    if (!e.aReady && e.pa != kNoReg)
        reg_waiters_[static_cast<size_t>(e.pa)].push_back(
            {rs_idx, e.seq, RegWaiter::Src::A});
    if (!e.bReady && e.pb != kNoReg)
        reg_waiters_[static_cast<size_t>(e.pb)].push_back(
            {rs_idx, e.seq, RegWaiter::Src::B});
    if (baseline_select_ && !e.cReady && e.pc != kNoReg)
        reg_waiters_[static_cast<size_t>(e.pc)].push_back(
            {rs_idx, e.seq, RegWaiter::Src::C});
}

void
Core::onOperandReady(int rs_idx, const RsEntry &e)
{
    if (!baseline_select_ || !e.aReady || !e.bReady || !e.cReady)
        return;
    // Readiness flags each transition exactly once per entry, so the
    // wake that completes the set enqueues the entry exactly once.
    // Wakes arrive in no particular age order: insert by seq (the
    // suffix that moves is almost always empty).
    auto it = baseline_ready_.end();
    while (it != baseline_ready_.begin() && (it - 1)->first > e.seq)
        --it;
    baseline_ready_.insert(it, {e.seq, rs_idx});
}

bool
Core::drained() const
{
    if (have_peek_ || !trace_done_ || !rob.empty() || !replay_.empty())
        return false;
    if (!load_queue_.empty() || !events_.empty() || pub_count_ != 0 ||
        load_ring_count_ != 0)
        return false;
    for (const auto &v : vpus)
        if (!v.idle())
            return false;
    return true;
}

uint64_t
Core::run(uint64_t max_cycles)
{
    while (!drained()) {
        step();
        if (cycle_ >= max_cycles)
            fireWatchdog("cycle budget exceeded");
        if (fastforward_ && !activity_) {
            uint64_t h = std::min(wakeHorizon(), max_cycles);
            if (h != kNeverCycle && h > cycle_) {
                fastForwardTo(h);
                if (cycle_ >= max_cycles)
                    fireWatchdog("cycle budget exceeded");
            }
        }
    }
    finalizeStats();
    return cycle_;
}

uint64_t
Core::wakeHorizon() const
{
    uint64_t h = kNeverCycle;
    if (!events_.empty())
        h = std::min(h, events_.top().cycle);
    if (pub_count_ != 0) {
        // cycle_ was advanced at the end of the probe step, so the
        // bucket for the *current* cycle_ has not been drained yet: a
        // publish scheduled for exactly this cycle must keep the
        // horizon here (the d=0 probe; run() then steps normally
        // instead of jumping). Starting the scan at d=1 skipped such a
        // publish and let fast-forward jump past it — the bucket then
        // drained at the wrong cycle (or, if nothing else woke the
        // core, never), diverging from the per-cycle loop.
        for (uint64_t d = 0; d < kPubRingSlots; ++d) {
            if (!pub_ring_[(cycle_ + d) % kPubRingSlots].empty()) {
                h = std::min(h, cycle_ + d);
                break;
            }
        }
    }
    if (load_ring_count_ != 0) {
        // Same d=0 rationale as the publish ring above.
        for (uint64_t d = 0; d < kPubRingSlots; ++d) {
            if (!load_ring_[(cycle_ + d) % kPubRingSlots].empty()) {
                h = std::min(h, cycle_ + d);
                break;
            }
        }
    }
    for (const auto &v : vpus)
        h = std::min(h, v.nextCompletion());
    // <= not <: a throttle that expires exactly at the current (not yet
    // executed) cycle_ must keep the horizon here so allocation resumes
    // on schedule instead of being jumped past.
    if (cycle_ <= resume_alloc_cycle_)
        h = std::min(h, resume_alloc_cycle_);
    h = std::min(h, sched_->nextTimeWake(cycle_));
    if (!rob.empty())
        h = std::min(h, last_progress_cycle_ + watchdog_cycles_);
    h = std::min(h, forced_watchdog_cycle_);
    return h;
}

void
Core::fastForwardTo(uint64_t target)
{
    SAVE_PROF_SCOPE(prof_, FastFwd);
    SAVE_ASSERT(target >= cycle_, "fast-forward must move forward");
    uint64_t skipped = target - cycle_;
    if (skipped == 0)
        return;
    // Each skipped cycle is a state-identical repeat of the probe
    // cycle, so the per-cycle counters it fired must fire once per
    // skipped cycle too. Everything else is untouched by construction.
    if (fx_stall_)
        fx_stall_->add(static_cast<double>(skipped));
    if (fx_cw_ > 0) {
        st_cw_sum_.add(static_cast<double>(skipped) * fx_cw_);
        st_cw_cycles_.add(static_cast<double>(skipped));
    }
    cycle_ = target;
    ++ff_jumps_;
    ff_cycles_skipped_ += skipped;
    checkWatchdogs();
}

void
Core::finalizeStats()
{
    stats_.set("cycles", static_cast<double>(cycle_));
    stats_.set("vpu_ops", 0);
    stats_.set("vpu_lanes", 0);
    for (size_t v = 0; v < vpus.size(); ++v) {
        stats_.add("vpu_ops", static_cast<double>(vpus[v].opsIssued()));
        stats_.add("vpu_lanes",
                   static_cast<double>(vpus[v].lanesIssued()));
    }
    if (bcache_)
        stats_.set("bcache_hit_rate", bcache_->hitRate());
    SAVE_PROF_REPORT(prof_, core_id_, cycle_);
}

bool
Core::step()
{
    activity_ = false;
    fx_stall_ = nullptr;
    fx_cw_ = 0;

    for (auto &v : vpus)
        v.tick();

    {
        SAVE_PROF_SCOPE(prof_, Writeback);
        processWriteback();
    }
    {
        SAVE_PROF_SCOPE(prof_, Events);
        processEvents();
    }
    {
        SAVE_PROF_SCOPE(prof_, Commit);
        commit();
        storeWakeup();
    }
    {
        SAVE_PROF_SCOPE(prof_, Issue);
        sched_->step();
    }
    {
        SAVE_PROF_SCOPE(prof_, Mem);
        issueLoads();
    }
    {
        SAVE_PROF_SCOPE(prof_, Dispatch);
        mguStage();
    }
    {
        SAVE_PROF_SCOPE(prof_, Rename);
        allocate();
    }

    ++cycle_;
    checkWatchdogs();
#ifdef SAVE_AUDIT_ENABLED
    if (auditor_ && auditor_->due(cycle_))
        auditor_->check("cycle");
#endif
    return !drained();
}

void
Core::processWriteback()
{
    for (auto &v : vpus) {
        wb_scratch_.clear();
        wb_vec_scratch_.clear();
        if (v.drainCompleted(cycle_, wb_scratch_, wb_vec_scratch_) > 0)
            activity_ = true;
        for (const LaneWrite &w : wb_scratch_) {
            if (prf.publishLane(w.dstPhys, w.lane, w.value))
                wakeWaiters(w.dstPhys);
            if (rob.laneDone(w.robIdx) && etrace_)
                etrace_->writeback(cycle_, rob.at(w.robIdx).seq,
                                   w.robIdx);
        }
        // Whole-register results: one publish + one ROB update instead
        // of sixteen per-lane rounds (baseline/dense fast path).
        for (const VecWrite &w : wb_vec_scratch_) {
            if (prf.publishAll(w.dstPhys, w.value))
                wakeWaiters(w.dstPhys);
            if (rob.lanesDone(w.robIdx, kVecLanes) && etrace_)
                etrace_->writeback(cycle_, rob.at(w.robIdx).seq,
                                   w.robIdx);
        }
    }
}

void
Core::processEvents()
{
    std::vector<PendingPublish> &bucket =
        pub_ring_[cycle_ % kPubRingSlots];
    if (!bucket.empty()) {
        activity_ = true;
        for (const PendingPublish &p : bucket) {
            if (prf.publishLane(p.phys, p.lane, p.value))
                wakeWaiters(p.phys);
            if (rob.laneDone(p.robIdx) && etrace_)
                etrace_->writeback(cycle_, rob.at(p.robIdx).seq,
                                   p.robIdx);
        }
        pub_count_ -= bucket.size();
        bucket.clear();
    }
    auto completeLoad = [this](const LoadReq &req) {
        if (req.toRs) {
            RsEntry &e = rs.at(req.rsIdx);
            SAVE_ASSERT(e.valid && e.seq == req.seq,
                        "stale embedded-broadcast completion");
            e.bcastVal = VecReg::broadcastWord(image_->readU32(req.addr));
            e.aReady = true;
            onOperandReady(req.rsIdx, e);
        } else {
            VecReg v = req.op == Opcode::BroadcastLoad
                           ? VecReg::broadcastWord(
                                 image_->readU32(req.addr))
                           : image_->readLine(req.addr);
            if (prf.publishAll(req.dstPhys, v))
                wakeWaiters(req.dstPhys);
            if (rob.markDone(req.robIdx) && etrace_)
                etrace_->writeback(cycle_, rob.at(req.robIdx).seq,
                                   req.robIdx);
        }
    };
    std::vector<LoadReq> &lbucket = load_ring_[cycle_ % kPubRingSlots];
    if (!lbucket.empty()) {
        activity_ = true;
        for (const LoadReq &req : lbucket)
            completeLoad(req);
        load_ring_count_ -= lbucket.size();
        lbucket.clear();
    }
    while (!events_.empty() && events_.top().cycle <= cycle_) {
        Event ev = events_.top();
        events_.pop();
        activity_ = true;
        if (ev.kind == Event::Publish) {
            if (prf.publishLane(ev.phys, ev.lane, ev.value))
                wakeWaiters(ev.phys);
            if (rob.laneDone(ev.robIdx) && etrace_)
                etrace_->writeback(cycle_, rob.at(ev.robIdx).seq,
                                   ev.robIdx);
            continue;
        }
        completeLoad(ev.load);
    }
}

void
Core::injectFaultAtSeq(uint64_t seq)
{
    fault_armed_ = true;
    fault_seq_ = seq;
}

void
Core::commit()
{
    for (int i = 0; i < mcfg.commitWidth; ++i) {
        if (rob.empty())
            break;
        if (fault_armed_ && rob.at(rob.head()).seq == fault_seq_) {
            // The faulting instruction reached the precise point:
            // everything older has committed; squash it and every
            // younger instruction, then replay after the handler.
            squash();
            fault_armed_ = false;
            resume_alloc_cycle_ =
                cycle_ + static_cast<uint64_t>(
                             mcfg.exceptionServiceCycles);
            stats_.add("exceptions_serviced");
            activity_ = true;
            return;
        }
        if (!rob.at(rob.head()).done)
            break;
        int head_idx = rob.head();
        const RobEntry &e = rob.at(head_idx);
        last_progress_cycle_ = cycle_;
        activity_ = true;
        if (e.oldPhys != kNoReg) {
            prf.release(e.oldPhys);
            rotated_copies_[static_cast<size_t>(e.oldPhys)] = 0;
        }
        if (e.isStore) {
            image_->writeLine(e.storeAddr, prf.value(e.storeSrcPhys));
            mem_->store(core_id_, e.storeAddr, nowNs(), freq_ghz_);
            std::erase_if(inflight_store_lines_,
                          [&](const InflightStore &s) {
                              return s.seq == e.seq;
                          });
        }
        st_committed_.add();
        if (etrace_)
            etrace_->retire(cycle_, e.seq, e.uop, head_idx);
        rob.popHead();
    }
}

void
Core::squash()
{
    // 1. Walk the ROB youngest-first down to the faulting entry,
    //    undoing renaming and collecting the uops for replay.
    int total = rob.size();
    int squash_count = 0;
    squash_uops_.clear();
    std::fill(squashed_rob_.begin(), squashed_rob_.end(), 0);
    for (int i = total - 1; i >= 0; --i) {
        int idx = rob.indexFromHead(i);
        RobEntry &e = rob.at(idx);
        if (e.seq < fault_seq_)
            break;
        ++squash_count;
        squashed_rob_[static_cast<size_t>(idx)] = 1;
        squash_uops_.push_back(e.uop);
        if (e.dstPhys != kNoReg) {
            renamer_.restoreMapping(e.uop.dst, e.oldPhys);
            prf.release(e.dstPhys);
            vfma_dst_to_rs_[static_cast<size_t>(e.dstPhys)] = -1;
            // The released register may be re-allocated immediately by
            // the replay; stale rotated-copy seen-bits keyed on it
            // would then suppress the copies the re-executed VFMAs
            // must make (SecIV-B undercount). Commit clears oldPhys
            // for the same reason.
            rotated_copies_[static_cast<size_t>(e.dstPhys)] = 0;
        }
        if (e.op == Opcode::SetMask)
            renamer_.setMask(e.uop.wmask, e.prevMask);
        if (e.isStore) {
            std::erase_if(pending_stores_, [idx](const PendingStore &s) {
                return s.robIdx == idx;
            });
        }
    }
    rob.squashYoungest(squash_count);

    // 2. Drop squashed reservation-station entries.
    for (int idx = rs.first(); idx != Rs::kEnd;) {
        int nxt = rs.next(idx);
        if (rs.at(idx).seq >= fault_seq_)
            rs.release(idx);
        idx = nxt;
    }

    // 3. Drop in-flight work belonging to squashed instructions:
    //    queued loads, completion events, and VPU lane writes.
    std::erase_if(load_queue_, [this](const LoadReq &req) {
        return req.seq >= fault_seq_;
    });
    std::erase_if(inflight_store_lines_, [this](const InflightStore &s) {
        return s.seq >= fault_seq_;
    });
    // Squashed RS entries leave register-wakeup waiters behind; the
    // seq check in wakeWaiters would skip them, but the replay reuses
    // the freed RS slots, so the lists would accumulate one stale
    // record per squashed source operand. Purge them so the strong
    // invariant holds: every waiter references a live entry.
    for (auto &ws : reg_waiters_) {
        std::erase_if(ws, [this](const RegWaiter &w) {
            return w.seq >= fault_seq_;
        });
    }
    std::erase_if(baseline_ready_, [this](const auto &r) {
        return r.first >= fault_seq_;
    });
    {
        kept_events_.clear();
        while (!events_.empty()) {
            const Event &ev = events_.top();
            bool drop;
            if (ev.kind == Event::Publish) {
                drop = squashed_rob_[static_cast<size_t>(ev.robIdx)] != 0;
            } else {
                drop = ev.load.seq >= fault_seq_;
            }
            if (!drop)
                kept_events_.push_back(ev);
            events_.pop();
        }
        for (Event &ev : kept_events_)
            events_.push(std::move(ev));
    }
    for (auto &bucket : pub_ring_) {
        size_t before = bucket.size();
        std::erase_if(bucket, [this](const PendingPublish &p) {
            return squashed_rob_[static_cast<size_t>(p.robIdx)] != 0;
        });
        pub_count_ -= before - bucket.size();
    }
    for (auto &bucket : load_ring_) {
        size_t before = bucket.size();
        std::erase_if(bucket, [this](const LoadReq &req) {
            return req.seq >= fault_seq_;
        });
        load_ring_count_ -= before - bucket.size();
    }
    for (auto &vpu : vpus) {
        vpu.discardIf([&](const LaneWrite &w) {
            return squashed_rob_[static_cast<size_t>(w.robIdx)] != 0;
        });
    }

    // 4. Discard partial mixed-precision results of the survivors and
    //    rebuild the chain bookkeeping (paper SecV-B).
    sched_->rebuildAfterSquash();

    // 5. Queue the squashed instructions for re-execution, oldest
    //    first, ahead of the not-yet-fetched remainder of the trace.
    for (auto it = squash_uops_.rbegin(); it != squash_uops_.rend(); ++it)
        replay_.push_back(*it);
    if (have_peek_) {
        replay_.push_back(peek_);
        have_peek_ = false;
    }
    stats_.add("uops_squashed", squash_count);
    if (etrace_)
        etrace_->squash(cycle_, fault_seq_, squash_count);
#ifdef SAVE_AUDIT_ENABLED
    if (auditor_)
        auditor_->checkAfterSquash(fault_seq_);
#endif
}

void
Core::storeWakeup()
{
    for (size_t i = 0; i < pending_stores_.size();) {
        const PendingStore &s = pending_stores_[i];
        if (prf.fullyReady(s.srcPhys)) {
            if (rob.markDone(s.robIdx) && etrace_)
                etrace_->writeback(cycle_, rob.at(s.robIdx).seq,
                                   s.robIdx);
            activity_ = true;
            pending_stores_[i] = pending_stores_.back();
            pending_stores_.pop_back();
        } else {
            ++i;
        }
    }
}

void
Core::issueLoads()
{
    int l1_ports = mcfg.l1ReadPorts;
    int bc_ports = mcfg.bcachePorts;

    while (!load_queue_.empty() && (l1_ports > 0 || bc_ports > 0)) {
        const LoadReq &req = load_queue_.front();
        // Loads sample the memory image when their event completes,
        // but stores only update it at commit. Hold a load at the
        // queue head until every older store to the same line has
        // committed, or the load reads stale data the architectural
        // order already overwrote. The queue is seq-ascending and the
        // store's operand producers are older than the load, so their
        // own loads are already past this point: no deadlock.
        if (!inflight_store_lines_.empty()) {
            uint64_t line = lineOf(req.addr);
            bool blocked = false;
            for (const InflightStore &s : inflight_store_lines_) {
                if (s.seq < req.seq && s.line == line) {
                    blocked = true;
                    break;
                }
            }
            if (blocked)
                break;
        }
        bool is_bcast = req.op == Opcode::BroadcastLoad ||
                        req.op == Opcode::VfmaPsBcast ||
                        req.op == Opcode::Vdpbf16PsBcast;
        bool use_bc = bcache_ && is_bcast;

        uint64_t done_cycle;
        if (use_bc) {
            if (bc_ports == 0)
                break;
            BcastResult peek = bcache_->probeOnly(req.addr);
            if (peek.needsL1 && l1_ports == 0)
                break;
            BcastResult res = bcache_->access(req.addr);
            --bc_ports;
            if (res.needsL1) {
                --l1_ports;
                double done_ns =
                    mem_->load(core_id_, req.addr, nowNs(), freq_ghz_);
                done_cycle = static_cast<uint64_t>(
                    std::ceil(done_ns * freq_ghz_));
                st_bcast_l1_reads_.add();
            } else {
                done_cycle = cycle_ +
                             static_cast<uint64_t>(mcfg.l1LatCycles);
                st_bcast_bc_served_.add();
            }
        } else {
            if (l1_ports == 0)
                break;
            --l1_ports;
            double done_ns =
                mem_->load(core_id_, req.addr, nowNs(), freq_ghz_);
            done_cycle =
                static_cast<uint64_t>(std::ceil(done_ns * freq_ghz_));
        }
        if (done_cycle <= cycle_)
            done_cycle = cycle_ + 1;

        if (done_cycle - cycle_ < kPubRingSlots) {
            load_ring_[done_cycle % kPubRingSlots].push_back(req);
            ++load_ring_count_;
            // Issuing a load is progress (the next queued load may be
            // waiting on this cycle's port budget): never fast-forward
            // over it, exactly like the heap path's pushEvent.
            activity_ = true;
        } else {
            Event ev{};
            ev.cycle = done_cycle;
            ev.kind = Event::LoadDone;
            ev.load = req;
            pushEvent(ev);
        }
        st_loads_issued_.add();
        load_queue_.pop_front();
    }
}

void
Core::refreshReadiness(RsEntry &e)
{
    if (!e.aReady && e.pa != kNoReg)
        e.aReady = prf.fullyReady(e.pa);
    if (!e.bReady && e.pb != kNoReg)
        e.bReady = prf.fullyReady(e.pb);
}

void
Core::mguStage()
{
    if (!scfg.enabled || scfg.policy == SchedPolicy::Baseline)
        return;
    int budget = mcfg.issueWidth; // one MGU per allocation slot
    // The pending sublist holds exactly the VFMAs without an ELM yet;
    // readiness flags are maintained by writeback wakeup.
    for (int idx = rs.firstPending(); idx != Rs::kEnd && budget != 0;) {
        int nxt = rs.nextInList(idx);
        RsEntry &e = rs.at(idx);
        if (!e.aReady || !e.bReady) {
            idx = nxt;
            continue;
        }

        const VecReg &a = operandA(e);
        const VecReg &b = operandB(e);
        if (e.uop.isMixedPrecision()) {
            uint32_t m = elmMp(a, b, e.wm);
            if (m == 0 && !scfg.bsSkip) {
                // Ablation: do not skip fully-ineffectual VFMAs.
                for (int lane = 0; lane < kVecLanes; ++lane)
                    if ((e.wm >> lane) & 1)
                        m |= 0x3u << (kMlPerAl * lane);
            }
            e.elm = m;
            e.pendingMl = m;
            e.pendingAl = mpAlMask(m);
        } else {
            uint16_t m = elmF32(a, b, e.wm);
            if (m == 0 && !scfg.bsSkip)
                m = e.wm;
            e.elm = m;
            e.pendingAl = m;
        }
        e.passPending = static_cast<uint16_t>(~e.pendingAl);
        e.elmValid = true;
        rs.promote(idx);
        activity_ = true;
        if (etrace_)
            etrace_->elm(cycle_, e.seq, e.elm, e.pendingAl);
        if (e.pendingAl == 0)
            st_bs_skipped_.add();
        --budget;
        st_elms_generated_.add();
        idx = nxt;
    }
}

void
Core::allocateVfma(const Uop &u)
{
    int rs_idx = rs.allocEntry();
    RsEntry &e = rs.at(rs_idx);
    e.uop = u;
    e.seq = seq_;
    e.pa = u.srcA >= 0 ? renamer_.mapOf(u.srcA) : kNoReg;
    e.pb = renamer_.mapOf(u.srcB);
    e.pc = renamer_.mapOf(u.srcC);
    e.wm = u.wmask >= 0 ? renamer_.mask(u.wmask) : 0xffffu;

    auto renamed = renamer_.renameDst(u.dst);
    SAVE_ASSERT(renamed.newPhys != kNoReg, "caller checked PRF space");
    e.dstPhys = renamed.newPhys;

    // R-state from the accumulator's logical register number; with
    // the paper's 3 states this yields shifts in {-1, 0, +1}
    // (SecIV-B). More states (ablation) widen the shift range.
    bool rotate = scfg.enabled && scfg.policy == SchedPolicy::RVC &&
                  scfg.rotationStates > 1;
    e.rot = rotate
        ? static_cast<int8_t>(u.dst % scfg.rotationStates -
                              scfg.rotationStates / 2)
        : 0;

    int rob_idx = rob.allocEntry();
    RobEntry &re = rob.at(rob_idx);
    re.seq = seq_;
    re.op = u.op;
    re.uop = u;
    re.dstPhys = renamed.newPhys;
    re.oldPhys = renamed.oldPhys;
    re.lanesPending = kVecLanes;
    e.robIdx = rob_idx;

    if (e.rot != 0 && e.pb != kNoReg) {
        // A rotated copy of the non-broadcast multiplicand is needed
        // once per (register, R-state) pair (SecIV-B); the broadcast
        // operand and the accumulator never need copies.
        uint8_t bit = static_cast<uint8_t>(
            1u << (e.rot - (-scfg.rotationStates / 2)));
        uint8_t &seen = rotated_copies_[static_cast<size_t>(e.pb)];
        if (!(seen & bit)) {
            seen |= static_cast<uint8_t>(bit);
            st_rotated_copies_.add();
        }
    }

    refreshReadiness(e);
    if (baseline_select_)
        e.cReady = e.pc == kNoReg || prf.fullyReady(e.pc);
    addWaiters(rs_idx, e);
    onOperandReady(rs_idx, e);
    if (u.op == Opcode::Vdpbf16Ps || u.op == Opcode::Vdpbf16PsBcast)
        vfma_dst_to_rs_[static_cast<size_t>(renamed.newPhys)] = rs_idx;

    if (u.hasEmbeddedBroadcast()) {
        LoadReq req;
        req.toRs = true;
        req.rsIdx = rs_idx;
        req.seq = seq_;
        req.addr = u.addr;
        req.op = u.op;
        load_queue_.push_back(req);
    }

    sched_->onVfmaAllocated(rs_idx);
    st_vfmas_.add();
}

bool
Core::nextUop(Uop &u)
{
    if (!replay_.empty()) {
        u = replay_.front();
        replay_.pop_front();
        return true;
    }
    if (trace_done_ || !trace_)
        return false;
    if (!trace_->next(u)) {
        trace_done_ = true;
        return false;
    }
    return true;
}

void
Core::allocate()
{
    if (cycle_ < resume_alloc_cycle_)
        return; // exception handler running
    for (int slot = 0; slot < mcfg.issueWidth; ++slot) {
        if (!have_peek_) {
            if (!nextUop(peek_))
                return;
            have_peek_ = true;
        }
        const Uop &u = peek_;
        if (rob.full()) {
            st_stall_rob_.add();
            fx_stall_ = &st_stall_rob_;
            return;
        }

        switch (u.op) {
          case Opcode::Alu: {
            RobEntry &re = rob.at(rob.allocEntry());
            re.seq = seq_;
            re.op = u.op;
            re.uop = u;
            re.done = true;
            break;
          }
          case Opcode::SetMask: {
            RobEntry &re = rob.at(rob.allocEntry());
            re.seq = seq_;
            re.op = u.op;
            re.uop = u;
            re.prevMask = renamer_.mask(u.wmask);
            re.done = true;
            renamer_.setMask(u.wmask, u.maskImm);
            break;
          }
          case Opcode::BroadcastLoad:
          case Opcode::LoadVec: {
            auto renamed = renamer_.renameDst(u.dst);
            if (renamed.newPhys == kNoReg) {
                st_stall_prf_.add();
                fx_stall_ = &st_stall_prf_;
                return; // PRF pressure: stall allocation
            }
            int rob_idx = rob.allocEntry();
            RobEntry &re = rob.at(rob_idx);
            re.seq = seq_;
            re.op = u.op;
            re.uop = u;
            re.dstPhys = renamed.newPhys;
            re.oldPhys = renamed.oldPhys;

            LoadReq req;
            req.toRs = false;
            req.seq = seq_;
            req.dstPhys = renamed.newPhys;
            req.robIdx = rob_idx;
            req.addr = u.addr;
            req.op = u.op;
            load_queue_.push_back(req);
            break;
          }
          case Opcode::StoreVec: {
            int rob_idx = rob.allocEntry();
            RobEntry &re = rob.at(rob_idx);
            re.seq = seq_;
            re.op = u.op;
            re.uop = u;
            re.isStore = true;
            re.storeAddr = u.addr;
            re.storeSrcPhys = renamer_.mapOf(u.srcC);
            pending_stores_.push_back({rob_idx, re.storeSrcPhys});
            inflight_store_lines_.push_back({seq_, lineOf(u.addr)});
            break;
          }
          default: {
            SAVE_ASSERT(u.isVfma(), "unhandled opcode");
            if (rs.full()) {
                st_stall_rs_.add();
                fx_stall_ = &st_stall_rs_;
                return;
            }
            if (prf.numFree() == 0) {
                st_stall_prf_.add();
                fx_stall_ = &st_stall_prf_;
                return;
            }
            allocateVfma(u);
            break;
          }
        }
        if (etrace_)
            etrace_->alloc(cycle_, seq_, u,
                           rob.indexFromHead(rob.size() - 1));
        ++seq_;
        have_peek_ = false;
        st_uops_.add();
        activity_ = true;
    }
}

std::string
Core::pipelineSnapshot() const
{
    std::ostringstream os;
    os << "core " << core_id_ << " @ cycle " << cycle_
       << " (last commit @ " << last_progress_cycle_ << ")\n";

    os << "  rob: " << rob.size() << "/" << rob.capacity();
    if (!rob.empty()) {
        const RobEntry &h = rob.at(rob.head());
        os << ", head seq " << h.seq << " " << h.uop.toString()
           << (h.done ? " [done]" : " [pending]")
           << ", lanesPending=" << h.lanesPending;
    }
    os << "\n";

    int elm_valid = 0, issued = 0;
    for (int idx : rs.order()) {
        const RsEntry &e = rs.at(idx);
        if (e.elmValid)
            ++elm_valid;
        if (e.issued)
            ++issued;
    }
    os << "  rs: " << rs.size() << "/" << rs.capacity()
       << " (mgu elmValid=" << elm_valid << ", issued=" << issued
       << ")\n";

    os << "  mem: load_queue=" << load_queue_.size()
       << ", events=" << events_.size() + pub_count_
       << ", pending_stores=" << pending_stores_.size()
       << ", replay=" << replay_.size() << "\n";

    for (size_t v = 0; v < vpus.size(); ++v)
        os << "  vpu" << v << ": "
           << (vpus[v].idle() ? "idle" : "busy")
           << ", ops=" << vpus[v].opsIssued() << "\n";

    if (bcache_)
        os << "  bcache hit rate: " << bcache_->hitRate() << "\n";
    return os.str();
}

void
Core::checkWatchdogs() const
{
    if (!rob.empty() && cycle_ - last_progress_cycle_ >= watchdog_cycles_)
        fireWatchdog("no uop committed within the watchdog window");
    if (cycle_ >= forced_watchdog_cycle_)
        fireWatchdog("fault injection forced the watchdog");
}

void
Core::fireWatchdog(const char *why) const
{
    SimError::Context ctx;
    ctx.coreId = core_id_;
    ctx.cycle = static_cast<int64_t>(cycle_);
    if (!rob.empty())
        ctx.uopSeq = static_cast<int64_t>(rob.at(rob.head()).seq);
    throw DeadlockError(why, pipelineSnapshot(), ctx);
}

} // namespace save
