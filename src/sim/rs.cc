#include "sim/rs.h"

#include <algorithm>

#include "util/logging.h"

namespace save {

Rs::Rs(int entries) : capacity_(entries)
{
    slots_.resize(static_cast<size_t>(entries));
    free_.reserve(static_cast<size_t>(entries));
    for (int i = entries - 1; i >= 0; --i)
        free_.push_back(i);
    order_.reserve(static_cast<size_t>(entries));
}

int
Rs::push(RsEntry e)
{
    SAVE_ASSERT(!free_.empty(), "RS overflow");
    int idx = free_.back();
    free_.pop_back();
    e.valid = true;
    slots_[static_cast<size_t>(idx)] = e;
    order_.push_back(idx);
    return idx;
}

void
Rs::release(int idx)
{
    SAVE_ASSERT(slots_[static_cast<size_t>(idx)].valid,
                "releasing an invalid RS slot");
    slots_[static_cast<size_t>(idx)].valid = false;
    auto it = std::find(order_.begin(), order_.end(), idx);
    SAVE_ASSERT(it != order_.end(), "RS order list corrupt");
    order_.erase(it);
    free_.push_back(idx);
}

} // namespace save
