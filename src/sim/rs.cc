#include "sim/rs.h"

#include "util/error.h"
#include "util/logging.h"

namespace save {

Rs::Rs(int entries) : capacity_(entries)
{
    slots_.resize(static_cast<size_t>(entries));
    nodes_.resize(static_cast<size_t>(entries));
    free_.reserve(static_cast<size_t>(entries));
    for (int i = entries - 1; i >= 0; --i)
        free_.push_back(i);
}

int
Rs::push(RsEntry e)
{
    int idx = allocEntry();
    e.valid = true;
    slots_[static_cast<size_t>(idx)] = e;
    return idx;
}

int
Rs::allocEntry()
{
    if (free_.empty())
        throw ConfigError("RS overflow: push into a full " +
                          std::to_string(capacity_) +
                          "-entry RS (allocator back-pressure bypassed)");
    int idx = free_.back();
    free_.pop_back();
    RsEntry &e = slots_[static_cast<size_t>(idx)];
    e = RsEntry{};
    e.valid = true;

    Node &n = nodes_[static_cast<size_t>(idx)];
    n.aprev = age_tail_;
    n.anext = kEnd;
    if (age_tail_ != kEnd)
        nodes_[static_cast<size_t>(age_tail_)].anext = idx;
    else
        age_head_ = idx;
    age_tail_ = idx;

    listPushBack(idx, 0);
    ++size_;
    return idx;
}

void
Rs::release(int idx)
{
    SAVE_ASSERT(slots_[static_cast<size_t>(idx)].valid,
                "releasing an invalid RS slot");
    slots_[static_cast<size_t>(idx)].valid = false;

    Node &n = nodes_[static_cast<size_t>(idx)];
    if (n.aprev != kEnd)
        nodes_[static_cast<size_t>(n.aprev)].anext = n.anext;
    else
        age_head_ = n.anext;
    if (n.anext != kEnd)
        nodes_[static_cast<size_t>(n.anext)].aprev = n.aprev;
    else
        age_tail_ = n.aprev;
    n.aprev = n.anext = kEnd;

    listUnlink(idx);
    free_.push_back(idx);
    --size_;
}

void
Rs::promote(int idx)
{
    Node &n = nodes_[static_cast<size_t>(idx)];
    SAVE_ASSERT(n.list == 0, "promoting an already-issuable RS entry");
    listUnlink(idx);

    // Age-ordered insert: walk back from the tail. ELMs usually arrive
    // in rough age order, so the walk is short in practice.
    const uint64_t seq = slots_[static_cast<size_t>(idx)].seq;
    int after = tail_[1];
    while (after != kEnd && slots_[static_cast<size_t>(after)].seq > seq)
        after = nodes_[static_cast<size_t>(after)].sprev;

    n.list = 1;
    n.sprev = after;
    if (after == kEnd) {
        n.snext = head_[1];
        if (head_[1] != kEnd)
            nodes_[static_cast<size_t>(head_[1])].sprev = idx;
        else
            tail_[1] = idx;
        head_[1] = idx;
    } else {
        Node &a = nodes_[static_cast<size_t>(after)];
        n.snext = a.snext;
        if (a.snext != kEnd)
            nodes_[static_cast<size_t>(a.snext)].sprev = idx;
        else
            tail_[1] = idx;
        a.snext = idx;
    }
    ++list_size_[1];
}

std::vector<int>
Rs::order() const
{
    std::vector<int> out;
    out.reserve(static_cast<size_t>(size_));
    for (int i = age_head_; i != kEnd;
         i = nodes_[static_cast<size_t>(i)].anext)
        out.push_back(i);
    return out;
}

void
Rs::listUnlink(int idx)
{
    Node &n = nodes_[static_cast<size_t>(idx)];
    int l = n.list;
    if (n.sprev != kEnd)
        nodes_[static_cast<size_t>(n.sprev)].snext = n.snext;
    else
        head_[l] = n.snext;
    if (n.snext != kEnd)
        nodes_[static_cast<size_t>(n.snext)].sprev = n.sprev;
    else
        tail_[l] = n.sprev;
    n.sprev = n.snext = kEnd;
    --list_size_[l];
}

void
Rs::listPushBack(int idx, int list)
{
    Node &n = nodes_[static_cast<size_t>(idx)];
    n.list = static_cast<uint8_t>(list);
    n.sprev = tail_[list];
    n.snext = kEnd;
    if (tail_[list] != kEnd)
        nodes_[static_cast<size_t>(tail_[list])].snext = idx;
    else
        head_[list] = idx;
    tail_[list] = idx;
    ++list_size_[list];
}

} // namespace save
