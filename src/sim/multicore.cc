#include "sim/multicore.h"

#include <algorithm>
#include <string>

#include "trace/event_trace.h"
#include "util/error.h"
#include "util/logging.h"

namespace save {

Multicore::Multicore(const MachineConfig &mcfg, const SaveConfig &scfg,
                     int active_vpus, MemoryImage *image)
    : mcfg_(mcfg), mem_(std::make_unique<MemHierarchy>(mcfg))
{
    for (int c = 0; c < mcfg.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(
            mcfg, scfg, c, active_vpus, mem_.get(), image));
    }
    if (auto session = EventTraceSession::fromEnv()) {
        env_etrace_ = std::move(session);
        attachEventTrace(env_etrace_.get());
    }
}

// Out of line: EventTraceSession is incomplete in the header.
Multicore::~Multicore() = default;

void
Multicore::attachEventTrace(EventTraceSession *session)
{
    if (session != env_etrace_.get())
        env_etrace_.reset();
    for (size_t c = 0; c < cores_.size(); ++c)
        cores_[c]->setEventTracer(
            session ? session->tracer(static_cast<int>(c)) : nullptr);
}

void
Multicore::bindTraces(const std::vector<TraceSource *> &traces)
{
    if (traces.size() != cores_.size())
        throw TraceError("need one trace slot per core (got " +
                         std::to_string(traces.size()) + " traces for " +
                         std::to_string(cores_.size()) + " cores)");
    for (size_t c = 0; c < cores_.size(); ++c)
        if (traces[c])
            cores_[c]->bindTrace(traces[c]);
}

uint64_t
Multicore::run(uint64_t max_cycles)
{
    // The cycle-limit check is hoisted out of the per-core hot loop:
    // every kCheckInterval lock-step rounds is cheap and still bounds
    // a runaway simulation to max_cycles + kCheckInterval cycles.
    constexpr uint64_t kCheckInterval = 1024;
    static_assert((kCheckInterval & (kCheckInterval - 1)) == 0,
                  "check interval must be a power of two");
    const bool ff = !cores_.empty() && cores_[0]->fastForwardEnabled();
    uint64_t rounds = 0;
    bool any = true;
    while (any) {
        any = false;
        bool quiescent = true;
        for (auto &core : cores_) {
            if (!core->drained()) {
                core->step();
                any = true;
                if (core->lastStepActive())
                    quiescent = false;
            }
        }
        if (ff && any && quiescent) {
            // Every undrained core just ran a state-identical cycle:
            // jump all of them to the earliest cycle anything can
            // happen on any core. Cores never touch shared memory in
            // a quiescent cycle, so the hierarchy sees the identical
            // request sequence as the per-cycle loop.
            uint64_t h = max_cycles;
            for (auto &core : cores_) {
                if (!core->drained())
                    h = std::min(h, core->wakeHorizon());
            }
            for (auto &core : cores_) {
                if (!core->drained() && h > core->cycle())
                    core->fastForwardTo(h);
            }
        }
        if ((++rounds & (kCheckInterval - 1)) == 0)
            checkCycleLimit(max_cycles);
    }
    uint64_t max = 0;
    for (auto &core : cores_) {
        core->finalizeStats();
        max = std::max(max, core->cycle());
    }
    return max;
}

void
Multicore::checkCycleLimit(uint64_t max_cycles) const
{
    for (size_t c = 0; c < cores_.size(); ++c) {
        if (cores_[c]->cycle() >= max_cycles) {
            SimError::Context ctx;
            ctx.coreId = static_cast<int>(c);
            ctx.cycle = static_cast<int64_t>(cores_[c]->cycle());
            throw DeadlockError("multicore simulation exceeded " +
                                    std::to_string(max_cycles) +
                                    " cycles",
                                cores_[c]->pipelineSnapshot(), ctx);
        }
    }
}

StatGroup
Multicore::aggregateStats() const
{
    StatGroup g;
    for (const auto &core : cores_)
        g.merge(core->stats());
    g.merge(mem_->stats());
    return g;
}

} // namespace save
