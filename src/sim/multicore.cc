#include "sim/multicore.h"

#include <algorithm>

#include "util/logging.h"

namespace save {

Multicore::Multicore(const MachineConfig &mcfg, const SaveConfig &scfg,
                     int active_vpus, MemoryImage *image)
    : mcfg_(mcfg), mem_(std::make_unique<MemHierarchy>(mcfg))
{
    for (int c = 0; c < mcfg.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(
            mcfg, scfg, c, active_vpus, mem_.get(), image));
    }
}

void
Multicore::bindTraces(const std::vector<TraceSource *> &traces)
{
    SAVE_ASSERT(traces.size() == cores_.size(),
                "need one trace slot per core");
    for (size_t c = 0; c < cores_.size(); ++c)
        if (traces[c])
            cores_[c]->bindTrace(traces[c]);
}

uint64_t
Multicore::run(uint64_t max_cycles)
{
    bool any = true;
    while (any) {
        any = false;
        for (auto &core : cores_) {
            if (!core->drained()) {
                core->step();
                any = true;
                SAVE_ASSERT(core->cycle() < max_cycles,
                            "multicore simulation exceeded ", max_cycles,
                            " cycles");
            }
        }
    }
    uint64_t max = 0;
    for (auto &core : cores_) {
        core->finalizeStats();
        max = std::max(max, core->cycle());
    }
    return max;
}

StatGroup
Multicore::aggregateStats() const
{
    StatGroup g;
    for (const auto &core : cores_)
        g.merge(const_cast<Core &>(*core).stats());
    g.merge(const_cast<MemHierarchy &>(*mem_).stats());
    return g;
}

} // namespace save
