/**
 * @file
 * Register renamer: logical vector registers to physical registers,
 * plus the in-order architectural view of the AVX-512 mask registers.
 *
 * Mask registers are read at allocation time (allocation is in order,
 * so capturing the current mask value into the RS entry is exact) —
 * this sidesteps full mask-register renaming without changing
 * semantics for in-order mask updates.
 */

#ifndef SAVE_SIM_RENAMER_H
#define SAVE_SIM_RENAMER_H

#include <array>
#include <cstdint>

#include "isa/uop.h"
#include "sim/regfile.h"

namespace save {

/** Renamer state. */
class Renamer
{
  public:
    /** Binds to a PRF and maps every logical register to a fresh,
     *  fully-ready physical register holding zero. */
    explicit Renamer(PhysRegFile *prf);

    /** Current mapping of a logical register. */
    int mapOf(int lreg) const;

    /**
     * Rename a destination: allocates a new physical register and
     * returns {new_phys, old_phys}. old_phys is freed when the
     * renaming instruction commits. Returns {kNoReg, kNoReg} when the
     * PRF is exhausted (the caller stalls allocation).
     */
    struct Renamed { int newPhys; int oldPhys; };
    Renamed renameDst(int lreg);

    /** Roll a logical register's mapping back to an older physical
     *  register (squash path; the walk must be youngest-first). */
    void
    restoreMapping(int lreg, int phys)
    {
        map_[static_cast<size_t>(lreg)] = phys;
    }

    /** Architecturally write a logical register before a trace runs. */
    void setArchValue(int lreg, const VecReg &v);

    /** Architectural read (e.g., for post-run result checking). */
    const VecReg &archValue(int lreg) const;

    /** Mask register access (in-order view). */
    uint16_t mask(int kreg) const;
    void setMask(int kreg, uint16_t v);

  private:
    PhysRegFile *prf_;
    std::array<int, kLogicalVecRegs> map_;
    std::array<uint16_t, kLogicalMaskRegs> masks_;
};

} // namespace save

#endif // SAVE_SIM_RENAMER_H
