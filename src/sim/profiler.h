/**
 * @file
 * Compile-time-optional per-stage self-profiler.
 *
 * Built only when the build defines SAVE_PROFILE=1 (CMake option
 * -DSAVE_PROFILE=ON); the default build compiles every probe away to
 * nothing, so the cycle loop carries zero profiling cost. When built
 * in, each pipeline stage's wall time and visit count are accumulated
 * per core and a table is printed to stderr at sim end
 * (Core::finalizeStats), e.g.:
 *
 *   -- SAVE_PROFILE core 0 (123456 cycles) --
 *   stage          visits        ns/visit     total ms   share
 *   writeback      123456            41.2          5.1   12.3%
 *   ...
 *
 * Timing uses the steady clock per stage visit; the profiler is for
 * relative attribution (which stage eats the wall time), not absolute
 * nanosecond accuracy.
 */

#ifndef SAVE_SIM_PROFILER_H
#define SAVE_SIM_PROFILER_H

#include <cstdint>

#if SAVE_PROFILE
#include <array>
#include <chrono>
#include <cstdio>
#include <string>

#include "util/logging.h"
#endif

namespace save {

/** Pipeline stages attributed by the self-profiler. */
enum class ProfStage : uint8_t {
    Writeback,  // VPU drain + register publish
    Events,     // completion event queue
    Commit,     // in-order retire + store drain
    Issue,      // vector scheduler select/issue (incl. pass-through)
    Mem,        // load-port issue into the hierarchy
    Dispatch,   // MGU / ELM generation
    Rename,     // allocate/rename front end
    FastFwd,    // stall fast-forward bookkeeping
    kCount,
};

#if SAVE_PROFILE

/** Per-core stage accounting (only compiled under SAVE_PROFILE=1). */
class StageProfiler
{
  public:
    class Scope
    {
      public:
        Scope(StageProfiler &p, ProfStage s)
            : p_(p), s_(s), t0_(std::chrono::steady_clock::now())
        {
        }

        ~Scope()
        {
            auto dt = std::chrono::steady_clock::now() - t0_;
            auto &b = p_.buckets_[static_cast<size_t>(s_)];
            b.ns += static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                    .count());
            ++b.visits;
        }

      private:
        StageProfiler &p_;
        ProfStage s_;
        std::chrono::steady_clock::time_point t0_;
    };

    void
    report(int core_id, uint64_t cycles) const
    {
        static const char *names[] = {
            "writeback", "events", "commit",   "issue",
            "mem",       "dispatch", "rename", "fastfwd",
        };
        uint64_t total = 0;
        for (const auto &b : buckets_)
            total += b.ns;
        if (total == 0)
            return;
        // Emit through util/logging as one message so the table is not
        // interleaved with trace/CLI output from other threads.
        std::string table;
        char line[128];
        std::snprintf(line, sizeof(line),
                      "-- SAVE_PROFILE core %d (%llu cycles) --\n"
                      "%-10s %12s %12s %10s %7s\n",
                      core_id, static_cast<unsigned long long>(cycles),
                      "stage", "visits", "ns/visit", "total ms",
                      "share");
        table += line;
        for (size_t i = 0; i < buckets_.size(); ++i) {
            const Bucket &b = buckets_[i];
            if (b.visits == 0)
                continue;
            std::snprintf(
                line, sizeof(line), "%-10s %12llu %12.1f %10.2f %6.1f%%\n",
                names[i], static_cast<unsigned long long>(b.visits),
                static_cast<double>(b.ns) / static_cast<double>(b.visits),
                static_cast<double>(b.ns) / 1e6,
                100.0 * static_cast<double>(b.ns) /
                    static_cast<double>(total));
            table += line;
        }
        if (!table.empty() && table.back() == '\n')
            table.pop_back();
        SAVE_INFORM(table);
    }

  private:
    struct Bucket
    {
        uint64_t ns = 0;
        uint64_t visits = 0;
    };

    std::array<Bucket, static_cast<size_t>(ProfStage::kCount)> buckets_{};
};

#define SAVE_PROF_SCOPE(prof, stage)                                        \
    ::save::StageProfiler::Scope save_prof_scope_##__LINE__(                \
        prof, ::save::ProfStage::stage)
#define SAVE_PROF_REPORT(prof, core, cycles) (prof).report(core, cycles)

#else // !SAVE_PROFILE

/** No-op stand-in so call sites compile away in default builds. */
class StageProfiler
{
};

#define SAVE_PROF_SCOPE(prof, stage)                                        \
    do {                                                                    \
    } while (0)
#define SAVE_PROF_REPORT(prof, core, cycles)                                \
    do {                                                                    \
    } while (0)

#endif // SAVE_PROFILE

} // namespace save

#endif // SAVE_SIM_PROFILER_H
