/**
 * @file
 * One simulated out-of-order core: 5-wide in-order allocate/rename,
 * unified reservation stations, ROB, load ports, broadcast cache, and
 * N VPU pipelines driven by a pluggable vector scheduler (baseline or
 * SAVE). Functional and timing simulation are combined: every uop
 * carries real data, so sparsity decisions (ELMs) come from actual
 * operand values and final register/memory state can be checked
 * against an architectural reference.
 *
 * Stage order within a cycle (writeback before select, select before
 * allocate) models a forwarding network: a result written back in
 * cycle t can feed an operation selected in cycle t.
 *
 * The cycle loop is event-assisted: RS readiness is maintained by
 * register-writeback wakeup (not per-cycle polling), and when a cycle
 * makes no progress at all the core fast-forwards the clock to the
 * next cycle anything can happen (the wake horizon: pending events,
 * VPU completions, chain forwards, the exception-resume cycle, the
 * watchdogs). Fast-forward is strictly observational — stall-cycle
 * counters that would have repeated in the skipped cycles are
 * compensated exactly, so all stats are bit-identical with the
 * per-cycle loop (SAVE_FASTFORWARD=0).
 */

#ifndef SAVE_SIM_CORE_H
#define SAVE_SIM_CORE_H

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "isa/uop.h"
#include "mem/broadcast_cache.h"
#include "mem/hierarchy.h"
#include "mem/memory_image.h"
#include "sim/config.h"
#include "sim/profiler.h"
#include "sim/regfile.h"
#include "sim/renamer.h"
#include "sim/rob.h"
#include "sim/rs.h"
#include "sim/vpu.h"
#include "stats/stats.h"

namespace save {

class VectorScheduler;
class CoreEventTracer;
class Auditor;

/** Abstract uop stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** Produce the next uop; false when the trace is exhausted. */
    virtual bool next(Uop &u) = 0;
};

/** TraceSource over a pre-built uop vector. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<Uop> uops) : uops_(std::move(uops)) {}

    bool
    next(Uop &u) override
    {
        if (pos_ >= uops_.size())
            return false;
        u = uops_[pos_++];
        return true;
    }

    void reset() { pos_ = 0; }
    size_t size() const { return uops_.size(); }

  private:
    std::vector<Uop> uops_;
    size_t pos_ = 0;
};

/** One out-of-order core. */
class Core
{
  public:
    /**
     * @param active_vpus 1 or 2; selects the core frequency per the
     *        paper's licensing model (SecIV-D).
     */
    Core(const MachineConfig &mcfg, const SaveConfig &scfg, int core_id,
         int active_vpus, MemHierarchy *mem, MemoryImage *image);
    ~Core();

    void bindTrace(TraceSource *trace);

    /** Run until drained; returns elapsed cycles. */
    uint64_t run(uint64_t max_cycles = ~0ull);

    /** Advance one cycle; false once fully drained. */
    bool step();

    bool drained() const;

    /** Fold end-of-run derived values (VPU ops, B$ hit rate) into the
     *  stat group. Called by run(); Multicore calls it after stepping
     *  cores manually. */
    void finalizeStats();

    /** Stall fast-forward (SAVE_FASTFORWARD, default on) ------------- */

    /** True if the last step() changed any simulator state. A false
     *  return means the next cycles are state-identical repeats until
     *  the wake horizon. */
    bool lastStepActive() const { return activity_; }

    /** SAVE_FASTFORWARD=0 disables stall fast-forward (debug). */
    bool fastForwardEnabled() const { return fastforward_; }

    /**
     * Earliest future cycle at which anything can happen, given the
     * last step was quiescent: pending completion events, VPU
     * completions, mixed-precision chain forwards, the exception
     * handler's resume cycle, and the (forced) watchdog fire cycles.
     * kNeverCycle if nothing is pending.
     */
    uint64_t wakeHorizon() const;

    /**
     * Jump the clock to target (>= current cycle), compensating the
     * stall/combination-window counters the skipped cycles would have
     * repeated, then run the same watchdog checks a stepped cycle
     * runs. Only meaningful right after a quiescent step().
     */
    void fastForwardTo(uint64_t target);

    uint64_t ffJumps() const { return ff_jumps_; }
    uint64_t ffCyclesSkipped() const { return ff_cycles_skipped_; }

    /**
     * Precise-exception support: arm a fault on the uop with the
     * given sequence number. When it reaches the ROB head, everything
     * from it (inclusive) onward is squashed — rename map rolled
     * back, in-flight lane writes and partial mixed-precision results
     * discarded (paper SecV-B) — the handler latency elapses, and the
     * squashed instructions re-execute. Architectural state must be
     * indistinguishable from an uninterrupted run.
     */
    void injectFaultAtSeq(uint64_t seq);

    /**
     * Human-readable dump of the pipeline state: ROB head and
     * occupancy, scheduler/MGU state, outstanding loads and events,
     * VPU status. Attached to DeadlockError when the retirement
     * watchdog fires; also useful from a debugger.
     */
    std::string pipelineSnapshot() const;

    uint64_t cycle() const { return cycle_; }
    double freqGhz() const { return freq_ghz_; }
    double nowNs() const
    {
        return static_cast<double>(cycle_) / freq_ghz_;
    }
    int coreId() const { return core_id_; }

    /** Attach a pipeline event tracer (src/trace/event_trace.h);
     *  nullptr detaches. Timing is unaffected either way — every hook
     *  is a null test when no tracer is attached. */
    void setEventTracer(CoreEventTracer *t) { etrace_ = t; }

    Renamer &renamer() { return renamer_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    BroadcastCache *bcache() { return bcache_.get(); }

    /** Shared with the scheduler ------------------------------------ */

    const MachineConfig mcfg;
    const SaveConfig scfg;
    const int activeVpus;

    Rs rs;
    Rob rob;
    PhysRegFile prf;
    std::vector<VpuPipeline> vpus;

    /** Multiplicand A of an RS entry (register or loaded broadcast). */
    const VecReg &operandA(const RsEntry &e) const;
    const VecReg &operandB(const RsEntry &e) const;

    /** Schedule a future single-lane register write. */
    void schedulePublish(int phys, int lane, float value, int robIdx,
                         uint64_t at_cycle);

    /** Free an RS slot whose issue obligations are done. */
    void releaseEntry(int rs_idx);

    /** VPU op latency in cycles for the given precision. */
    int fmaLatency(bool mixed_precision) const;

    uint64_t now() const { return cycle_; }

  private:
    struct LoadReq
    {
        bool toRs;      // embedded-broadcast operand vs register load
        int rsIdx = -1;
        uint64_t seq = 0;
        int dstPhys = kNoReg;
        int robIdx = -1;
        uint64_t addr = 0;
        Opcode op = Opcode::LoadVec;
    };

    struct Event
    {
        uint64_t cycle;
        uint64_t order;
        enum Kind { LoadDone, Publish } kind;
        LoadReq load;          // LoadDone payload
        int phys = kNoReg;     // Publish payload
        int lane = 0;
        float value = 0.0f;
        int robIdx = -1;

        bool
        operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle : order > o.order;
        }
    };

    /** Event heap with a read-only view of its backing store (the
     *  auditor must enumerate pending events; std::priority_queue
     *  itself hides them). */
    struct EventHeap
        : std::priority_queue<Event, std::vector<Event>, std::greater<>>
    {
        using priority_queue::priority_queue;
        const std::vector<Event> &container() const { return c; }
    };

    /** RS entry waiting for a source register to become fully ready;
     *  validated by seq at wake time (slots are reused). */
    struct RegWaiter
    {
        enum class Src : uint8_t { A, B, C };
        int rsIdx;
        uint64_t seq;
        Src src;
    };

    /** A scheduled single-lane register write. Publishes are by far
     *  the most frequent event and always land within a few cycles
     *  (FMA latency + crossbar extras), so they live in a calendar
     *  ring of per-cycle buckets instead of the event heap; only
     *  far-future events (load completions) pay the heap. */
    struct PendingPublish
    {
        int phys;
        int16_t lane;
        float value;
        int robIdx;
    };
    static constexpr uint64_t kPubRingSlots = 64;

    void processEvents();
    void processWriteback();
    void commit();
    /** Squash every in-flight uop with seq >= fault_seq_. */
    void squash();
    /** Next uop from the replay queue or the trace. */
    bool nextUop(Uop &u);
    void storeWakeup();
    void issueLoads();
    void mguStage();
    void allocate();
    void refreshReadiness(RsEntry &e);
    void allocateVfma(const Uop &u);

    /** Register-writeback wakeup: phys became fully ready. */
    void wakeWaiters(int phys);
    /** Enlist a just-allocated RS entry on its not-ready sources. */
    void addWaiters(int rs_idx, const RsEntry &e);
    /** A readiness flag of the entry just turned on: under the
     *  baseline select, enqueue it once all three operands are in. */
    void onOperandReady(int rs_idx, const RsEntry &e);

    void pushEvent(Event ev);

    /** Retirement + fault-injection watchdogs (run after every cycle
     *  advance, stepped or fast-forwarded). */
    void checkWatchdogs() const;

    /** Throw DeadlockError carrying pipelineSnapshot(). */
    [[noreturn]] void fireWatchdog(const char *why) const;

    int core_id_;
    double freq_ghz_;
    MemHierarchy *mem_;
    MemoryImage *image_;
    std::unique_ptr<BroadcastCache> bcache_;
    Renamer renamer_;
    std::unique_ptr<VectorScheduler> sched_;

    CoreEventTracer *etrace_ = nullptr;

    TraceSource *trace_ = nullptr;
    bool trace_done_ = false;
    bool have_peek_ = false;
    Uop peek_;
    /** Squashed uops awaiting re-execution (oldest first). */
    std::deque<Uop> replay_;
    bool fault_armed_ = false;
    uint64_t fault_seq_ = 0;
    uint64_t resume_alloc_cycle_ = 0;

    uint64_t cycle_ = 0;
    uint64_t seq_ = 0;
    uint64_t event_order_ = 0;
    uint64_t last_progress_cycle_ = 0;
    /** Retirement-watchdog threshold (see MachineConfig::watchdogCycles
     *  and SAVE_WATCHDOG_CYCLES). */
    uint64_t watchdog_cycles_ = 0;
    /** Cycle at which fault injection force-fires the watchdog. */
    uint64_t forced_watchdog_cycle_ = ~0ull;

    /** Fast-forward state ------------------------------------------- */
    bool fastforward_ = true;
    bool activity_ = false;
    /** The stall counter allocate() bumped this cycle, if any; it
     *  would fire again in every skipped state-identical cycle. */
    StatRef *fx_stall_ = nullptr;
    /** Combination-window size the scheduler measured this cycle (it
     *  repeats while the window is blocked on chain forwards). */
    int fx_cw_ = 0;
    uint64_t ff_jumps_ = 0;
    uint64_t ff_cycles_skipped_ = 0;

    std::deque<LoadReq> load_queue_;
    EventHeap events_;
    /** Calendar ring for near-future lane publishes; bucket for cycle
     *  c is pub_ring_[c % kPubRingSlots] (drained every cycle, so the
     *  mapping is unambiguous). Bucket vectors keep their capacity. */
    std::array<std::vector<PendingPublish>, kPubRingSlots> pub_ring_;
    size_t pub_count_ = 0;
    /** Calendar ring for near-future load completions (L1 and
     *  broadcast-cache hits land a few cycles out); only far-future
     *  completions (L2/L3/DRAM) pay the event heap. */
    std::array<std::vector<LoadReq>, kPubRingSlots> load_ring_;
    size_t load_ring_count_ = 0;
    struct PendingStore { int robIdx; int srcPhys; };
    std::vector<PendingStore> pending_stores_;
    /** Cache lines with an in-flight (allocated, not yet committed)
     *  store, in program order. A younger load to one of these lines
     *  must not issue until the older store commits — loads read the
     *  functional image at completion, stores write it at commit, so
     *  issuing past an older same-line store would return data the
     *  architectural order has not produced yet. */
    struct InflightStore { uint64_t seq; uint64_t line; };
    std::vector<InflightStore> inflight_store_lines_;
    /** Per-phys-reg RS wakeup lists (consumed when the reg becomes
     *  fully ready; stale entries are filtered by seq). */
    std::vector<std::vector<RegWaiter>> reg_waiters_;
    /** True when the baseline whole-instruction select is in use
     *  (SAVE disabled or policy Baseline): entries then carry cReady
     *  and fully-ready VFMAs queue on baseline_ready_. */
    bool baseline_select_ = false;
    /** Age-ordered (seq, RS index) queue of fully-ready unissued
     *  VFMAs, maintained event-driven by the readiness wakeups so the
     *  baseline select never rescans the whole RS. */
    std::vector<std::pair<uint64_t, int>> baseline_ready_;
    /** In-flight VFMA dst phys -> RS slot (mixed-precision chains);
     *  indexed by physical register, -1 when none. */
    std::vector<int> vfma_dst_to_rs_;
    /** Rotated-copy accounting (SecIV-B): per live non-broadcast
     *  multiplicand physical register, which R-states were used.
     *  Indexed by physical register. */
    std::vector<uint8_t> rotated_copies_;

    /** Reusable per-cycle scratch (never shrinks). */
    std::vector<LaneWrite> wb_scratch_;
    std::vector<VecWrite> wb_vec_scratch_;
    std::vector<Uop> squash_uops_;
    std::vector<char> squashed_rob_;
    std::vector<Event> kept_events_;

    StatGroup stats_;
    StatRef st_committed_;
    StatRef st_uops_;
    StatRef st_vfmas_;
    StatRef st_loads_issued_;
    StatRef st_elms_generated_;
    StatRef st_bs_skipped_;
    StatRef st_rotated_copies_;
    StatRef st_stall_rob_;
    StatRef st_stall_rs_;
    StatRef st_stall_prf_;
    StatRef st_bcast_l1_reads_;
    StatRef st_bcast_bc_served_;
    StatRef st_cw_sum_;
    StatRef st_cw_cycles_;

    StageProfiler prof_;

#ifdef SAVE_AUDIT_ENABLED
    /** Cycle-granular invariant checker (src/sim/auditor.h). Present
     *  only when compiled with -DSAVE_AUDIT=ON and not disabled via
     *  SAVE_AUDIT=0; every hook below is compiled out otherwise. */
    std::unique_ptr<Auditor> auditor_;
#endif

    friend class VectorScheduler;
    friend class Auditor;
};

} // namespace save

#endif // SAVE_SIM_CORE_H
