#include "sim/rob.h"

#include "util/logging.h"

namespace save {

Rob::Rob(int entries) : capacity_(entries)
{
    buf_.resize(static_cast<size_t>(entries));
}

int
Rob::push(RobEntry e)
{
    SAVE_ASSERT(!full(), "ROB overflow");
    int idx = tail_;
    e.valid = true;
    buf_[static_cast<size_t>(idx)] = e;
    tail_ = (tail_ + 1) % capacity_;
    ++count_;
    return idx;
}

int
Rob::allocEntry()
{
    SAVE_ASSERT(!full(), "ROB overflow");
    int idx = tail_;
    RobEntry &e = buf_[static_cast<size_t>(idx)];
    e = RobEntry{};
    e.valid = true;
    tail_ = (tail_ + 1) % capacity_;
    ++count_;
    return idx;
}

RobEntry
Rob::pop()
{
    SAVE_ASSERT(!empty(), "ROB underflow");
    RobEntry e = buf_[static_cast<size_t>(head_)];
    SAVE_ASSERT(e.done, "committing an incomplete entry");
    buf_[static_cast<size_t>(head_)].valid = false;
    head_ = (head_ + 1) % capacity_;
    --count_;
    return e;
}

void
Rob::popHead()
{
    SAVE_ASSERT(!empty(), "ROB underflow");
    RobEntry &e = buf_[static_cast<size_t>(head_)];
    SAVE_ASSERT(e.done, "committing an incomplete entry");
    e.valid = false;
    head_ = (head_ + 1) % capacity_;
    --count_;
}

bool
Rob::laneDone(int idx)
{
    RobEntry &e = buf_[static_cast<size_t>(idx)];
    SAVE_ASSERT(e.valid && e.lanesPending > 0,
                "lane writeback on a finished entry");
    if (--e.lanesPending == 0) {
        e.done = true;
        return true;
    }
    return false;
}

bool
Rob::lanesDone(int idx, int n)
{
    RobEntry &e = buf_[static_cast<size_t>(idx)];
    SAVE_ASSERT(e.valid && e.lanesPending >= n,
                "lane writeback on a finished entry");
    e.lanesPending -= n;
    if (e.lanesPending == 0) {
        e.done = true;
        return true;
    }
    return false;
}

void
Rob::squashYoungest(int n)
{
    SAVE_ASSERT(n >= 0 && n <= count_, "squashing more than the ROB "
                "holds");
    for (int i = 0; i < n; ++i) {
        tail_ = (tail_ + capacity_ - 1) % capacity_;
        buf_[static_cast<size_t>(tail_)].valid = false;
        --count_;
    }
}

bool
Rob::markDone(int idx)
{
    RobEntry &e = buf_[static_cast<size_t>(idx)];
    SAVE_ASSERT(e.valid, "completing an invalid entry");
    bool was_done = e.done;
    e.done = true;
    return !was_done;
}

} // namespace save
