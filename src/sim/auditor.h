/**
 * @file
 * Cycle-granular pipeline invariant auditor (built with
 * -DSAVE_AUDIT=ON; the core's hooks compile away entirely otherwise).
 *
 * After every stepped cycle (and after every squash) the auditor
 * cross-checks the core's redundant structures against each other:
 * ROB/RS/free-list/rename-map consistency, the intrusive RS age and
 * scheduler sublists, every in-flight writeback target (publish ring,
 * event heap, VPU pipelines, load queue), the register-wakeup waiter
 * lists, and the SAVE-specific state — ELM effectualness against the
 * actual operand values (paper SecIII), the pending/pass/scheduled
 * lane-set algebra, lane-wise dependence order (SecIV-C / Alg. 1), and
 * the mixed-precision accumulator chains (SecV). A violation throws
 * AuditError carrying the same pipeline snapshot the deadlock watchdog
 * produces, so a failing fuzz case or test names the broken invariant
 * and the state it broke in.
 *
 * Runtime control:
 *   SAVE_AUDIT=0         disable entirely (no Auditor is constructed).
 *   SAVE_AUDIT_STRIDE=n  audit every n-th cycle only (squash checks
 *                        always run); default 1.
 */

#ifndef SAVE_SIM_AUDITOR_H
#define SAVE_SIM_AUDITOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace save {

class Core;

/** Invariant checker bound to one core (friend of Core and
 *  VectorScheduler; strictly read-only). */
class Auditor
{
  public:
    explicit Auditor(Core &core);

    /** Full invariant sweep; throws AuditError on the first violation.
     *  `when` tags the failure message ("cycle", "post-squash", ...). */
    void check(const char *when) const;

    /** Squash-specific sweep: nothing live may reference a sequence
     *  number at or above the squashed range, then a full check. */
    void checkAfterSquash(uint64_t fault_seq) const;

    /** Stride gate (SAVE_AUDIT_STRIDE). */
    bool
    due(uint64_t cycle) const
    {
        return stride_ <= 1 || cycle % stride_ == 0;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const;

    void checkRob() const;
    void checkRsLists() const;
    void checkRobRsLink() const;
    void checkPrf() const;
    void checkWaiters() const;
    void checkBaselineReady() const;
    void checkEventTargets() const;
    void checkSaveState() const;
    void checkLaneOrder() const;
    void checkChains() const;

    Core &c_;
    uint64_t stride_ = 1;
    mutable const char *when_ = "audit";

    /** Reusable scratch (the auditor runs every cycle in Debug; no
     *  steady-state allocation). */
    mutable std::vector<uint8_t> free_bm_;   // per phys reg: on free list
    mutable std::vector<uint8_t> map_bm_;    // per phys reg: reachable
    mutable std::vector<uint8_t> rs_mark_;   // per RS slot
    mutable std::vector<uint8_t> lane_bm_;   // per (robIdx, lane)
    mutable std::vector<int> lane_count_;    // in-flight writes per robIdx
};

} // namespace save

#endif // SAVE_SIM_AUDITOR_H
