/**
 * @file
 * Vector processing unit pipeline. Fully pipelined: one operation may
 * issue per cycle; results appear after the op latency. SAVE keeps
 * per-lane bookkeeping (which RS entry each temp lane came from) so
 * each lane result is written back to its own destination — modeled
 * here by carrying precomputed lane writes through the pipeline.
 */

#ifndef SAVE_SIM_VPU_H
#define SAVE_SIM_VPU_H

#include <cstdint>
#include <deque>
#include <vector>

namespace save {

/** One lane result traveling down a VPU pipeline. */
struct LaneWrite
{
    int dstPhys;
    int8_t lane;
    float value;
    int robIdx;
};

/** A single VPU pipeline. */
class VpuPipeline
{
  public:
    /** True if an op was already issued this cycle. */
    bool busy() const { return busy_; }

    /** Issue one compacted operation completing at done_cycle. */
    void issue(std::vector<LaneWrite> &&writes, uint64_t done_cycle);

    /** Pop all ops completing at or before now. */
    std::vector<LaneWrite> drainCompleted(uint64_t now);

    /** Drop in-flight lane writes matching the predicate (squash). */
    template <typename Pred>
    void
    discardIf(Pred pred)
    {
        for (Op &op : q_) {
            std::erase_if(op.writes, [&](const LaneWrite &w) {
                return pred(w);
            });
        }
    }

    /** Per-cycle housekeeping: clears the issue slot. */
    void tick() { busy_ = false; }

    bool idle() const { return q_.empty(); }
    uint64_t opsIssued() const { return ops_; }
    uint64_t lanesIssued() const { return lanes_; }

  private:
    struct Op
    {
        uint64_t doneCycle;
        std::vector<LaneWrite> writes;
    };

    std::deque<Op> q_;
    bool busy_ = false;
    uint64_t ops_ = 0;
    uint64_t lanes_ = 0;
};

} // namespace save

#endif // SAVE_SIM_VPU_H
