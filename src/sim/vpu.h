/**
 * @file
 * Vector processing unit pipeline. Fully pipelined: one operation may
 * issue per cycle; results appear after the op latency. SAVE keeps
 * per-lane bookkeeping (which RS entry each temp lane came from) so
 * each lane result is written back to its own destination — modeled
 * here by carrying precomputed lane writes through the pipeline.
 *
 * The in-flight queue is a ring buffer of fixed-capacity ops, so the
 * steady-state issue/drain path never touches the heap (at most
 * latency+1 ops are ever in flight per pipeline).
 */

#ifndef SAVE_SIM_VPU_H
#define SAVE_SIM_VPU_H

#include <cstdint>
#include <vector>

#include "isa/vec.h"
#include "util/inline_vec.h"

namespace save {

/** Sentinel cycle for "no pending event" (compares greater than any
 *  real cycle). */
inline constexpr uint64_t kNeverCycle = ~0ull;

/** One lane result traveling down a VPU pipeline. */
struct LaneWrite
{
    int dstPhys;
    int8_t lane;
    float value;
    int robIdx;
};

/** Lane writes of one compacted op (at most one write per AL). */
using LaneWriteVec = InlineVec<LaneWrite, kVecLanes>;

/** A whole-register result traveling down a VPU pipeline: all sixteen
 *  lanes of one destination, written back in a single publish. Used
 *  when an op's sixteen lane writes all target the same register (the
 *  baseline select and the dense coalescing fast path), which keeps
 *  the writeback stage off the per-lane bookkeeping. */
struct VecWrite
{
    int dstPhys = -1;
    int robIdx = -1;
    VecReg value;
};

/** A single VPU pipeline. */
class VpuPipeline
{
  public:
    /** True if an op was already issued this cycle. */
    bool busy() const { return busy_; }

    /** Issue one compacted operation completing at done_cycle. */
    void issue(const LaneWrite *writes, size_t n, uint64_t done_cycle);

    void
    issue(const LaneWriteVec &writes, uint64_t done_cycle)
    {
        issue(writes.data(), writes.size(), done_cycle);
    }

    void
    issue(std::initializer_list<LaneWrite> writes, uint64_t done_cycle)
    {
        issue(writes.begin(), writes.size(), done_cycle);
    }

    /** Issue one whole-register operation completing at done_cycle. */
    void issueVec(const VecWrite &write, uint64_t done_cycle);

    /**
     * Pop all ops completing at or before now, appending their lane
     * writes to out and whole-register writes to vec_out. Returns the
     * number of *ops* popped — an op whose writes were all squashed
     * still counts (it changes idle()).
     */
    int drainCompleted(uint64_t now, std::vector<LaneWrite> &out,
                       std::vector<VecWrite> &vec_out);

    /** Lane-only overload (tests / cold paths): whole-register writes
     *  are expanded into sixteen per-lane writes. */
    int drainCompleted(uint64_t now, std::vector<LaneWrite> &out);

    /** Convenience overload (tests / cold paths): fresh vector. */
    std::vector<LaneWrite>
    drainCompleted(uint64_t now)
    {
        std::vector<LaneWrite> out;
        drainCompleted(now, out);
        return out;
    }

    /** Completion cycle of the oldest in-flight op; kNeverCycle if the
     *  pipeline is empty. */
    uint64_t
    nextCompletion() const
    {
        return count_ == 0 ? kNeverCycle : q_[head_].doneCycle;
    }

    /** Drop in-flight lane writes matching the predicate (squash). A
     *  whole-register write is probed once with a synthetic lane of -1
     *  (predicates inspect dstPhys/robIdx) and dropped whole. */
    template <typename Pred>
    void
    discardIf(Pred pred)
    {
        for (size_t i = 0; i < count_; ++i) {
            Op &op = q_[(head_ + i) % q_.size()];
            op.writes.eraseIf(
                [&](const LaneWrite &w) { return pred(w); });
            if (op.hasVec &&
                pred(LaneWrite{op.vec.dstPhys, -1, 0.0f,
                               op.vec.robIdx}))
                op.hasVec = false;
        }
    }

    /** Visit every in-flight lane write, oldest op first, as
     *  fn(write, done_cycle). Whole-register writes are expanded into
     *  their sixteen lanes. Read-only (invariant auditing). */
    template <typename Fn>
    void
    forEachInFlight(Fn fn) const
    {
        for (size_t i = 0; i < count_; ++i) {
            const Op &op = q_[(head_ + i) % q_.size()];
            for (const LaneWrite &w : op.writes)
                fn(w, op.doneCycle);
            if (op.hasVec) {
                for (int lane = 0; lane < kVecLanes; ++lane)
                    fn(LaneWrite{op.vec.dstPhys,
                                 static_cast<int8_t>(lane),
                                 op.vec.value.f32(lane),
                                 op.vec.robIdx},
                       op.doneCycle);
            }
        }
    }

    /** Per-cycle housekeeping: clears the issue slot. */
    void tick() { busy_ = false; }

    bool idle() const { return count_ == 0; }
    uint64_t opsIssued() const { return ops_; }
    uint64_t lanesIssued() const { return lanes_; }

  private:
    struct Op
    {
        uint64_t doneCycle;
        LaneWriteVec writes;
        /** Whole-register payload (baseline/dense fast path). */
        VecWrite vec;
        bool hasVec = false;
    };

    /** Ring insert sorted by completion cycle; returns the fresh op. */
    Op &insertOp(uint64_t done_cycle);

    /** Ring buffer; sized for latency+issue-slot, grows only if a
     *  config exceeds that. */
    std::vector<Op> q_ = std::vector<Op>(16);
    size_t head_ = 0;
    size_t count_ = 0;
    bool busy_ = false;
    uint64_t ops_ = 0;
    uint64_t lanes_ = 0;
};

} // namespace save

#endif // SAVE_SIM_VPU_H
