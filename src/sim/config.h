/**
 * @file
 * Machine and SAVE-policy configuration.
 *
 * Defaults model the paper's Table I: a 28-core Skylake-like Xeon 8180
 * with a 5-wide Sunny-Cove-style allocation stage, 97-entry RS,
 * 224-entry ROB, and either 2 VPUs at 1.7 GHz or 1 VPU at 2.1 GHz.
 * Core frequency scales the core, L1 and L2; L3, NoC and DRAM live in
 * a fixed uncore clock domain (paper SecVI).
 */

#ifndef SAVE_SIM_CONFIG_H
#define SAVE_SIM_CONFIG_H

#include <cstdint>

namespace save {

/** Lane-combination policy for the vector scheduler. */
enum class SchedPolicy : uint8_t {
    /** Conventional scheduler; every VFMA costs one full VPU op. */
    Baseline,
    /** Vertical coalescing (paper SecIII, Algorithm 1). */
    VC,
    /** Rotate-vertical coalescing (paper SecIV-B). */
    RVC,
    /** Horizontal compression reference design (impractical; SecIII). */
    HC,
};

/** Broadcast-cache design (paper SecIV-A). */
enum class BcastCacheKind : uint8_t { None, Mask, Data };

/** SAVE feature knobs. */
struct SaveConfig
{
    /** Master switch; false gives the unmodified baseline pipeline. */
    bool enabled = true;
    SchedPolicy policy = SchedPolicy::RVC;
    /** Lane-wise dependence tracking (paper SecIV-C). */
    bool laneWiseDep = true;
    /** Skip fully-ineffectual VFMAs (broadcasted sparsity). */
    bool bsSkip = true;
    BcastCacheKind bcache = BcastCacheKind::Data;
    /** Mixed-precision multiplicand-lane compression (paper SecV). */
    bool mpCompress = true;
    /** Extra VFMA latency charged to the HC reference design. */
    int hcExtraLatency = 6;
    /** Number of rotational states for RVC. */
    int rotationStates = 3;

    /**
     * Check every field for sanity; throws ConfigError naming the
     * offending field, its value, and the accepted range. Call before
     * building machines from user-supplied configuration.
     */
    void validate() const;

    /** A fully-disabled configuration (the paper's baseline). */
    static SaveConfig
    baseline()
    {
        SaveConfig c;
        c.enabled = false;
        c.policy = SchedPolicy::Baseline;
        c.laneWiseDep = false;
        c.bsSkip = false;
        c.bcache = BcastCacheKind::None;
        c.mpCompress = false;
        return c;
    }
};

/** Machine parameters (paper Table I). */
struct MachineConfig
{
    int cores = 28;

    /** Core clock with two active VPUs (AVX-512 license). */
    double freq2VpuGhz = 1.7;
    /** Boosted core clock when one VPU is disabled (paper SecIV-D). */
    double freq1VpuGhz = 2.1;
    /** Uncore (L3/NoC) clock; does not scale with the core. */
    double uncoreGhz = 2.4;

    int issueWidth = 5;
    int commitWidth = 5;
    int rsEntries = 97;
    int robEntries = 224;
    /** Physical vector registers beyond the architectural 32
     *  (Skylake-like: 168 renameable). */
    int prfExtraRegs = 168;
    int numVpus = 2;
    /** VPU pipeline depth == latency (fully pipelined). */
    int fp32FmaLatency = 4;
    int mpFmaLatency = 6;
    /** L1-D read ports (64B each per cycle). */
    int l1ReadPorts = 2;
    /** Broadcast-cache read ports. */
    int bcachePorts = 4;
    /** Broadcast-cache entries (direct-mapped). */
    int bcacheEntries = 32;

    /** Cache geometry. */
    int l1SizeKb = 32;
    int l1Ways = 8;
    int l1LatCycles = 4;
    int l2SizeKb = 1024;
    int l2Ways = 16;
    int l2LatCycles = 14;
    /** Paper models the 1.375MB/core non-inclusive L3 as 2.375MB/core
     *  inclusive because Sniper lacks non-inclusive caches. */
    double l3SizeKbPerCore = 2432.0; // 2.375 MB
    int l3Ways = 19;
    double l3LatNs = 12.0;

    /** 2D-mesh NoC, XY routing, 2-cycle hops (uncore domain). */
    int nocHopCycles = 2;

    double dramGBps = 119.2;
    int dramChannels = 6;
    double dramLatNs = 50.0;

    /** Hardware stream prefetcher degree (lines ahead on an L2 miss). */
    int prefetchDegree = 4;

    /** Cycles the front-end stalls to service an injected exception. */
    int exceptionServiceCycles = 50;

    /**
     * Retirement-watchdog threshold: a core that commits nothing for
     * this many cycles raises DeadlockError with a pipeline snapshot.
     * 0 defers to the SAVE_WATCHDOG_CYCLES environment variable (or
     * the built-in 200k-cycle default). Timing-neutral: not part of
     * the surface-cache config hash.
     */
    int watchdogCycles = 0;

    /** See SaveConfig::validate(). */
    void validate() const;

    /** Active core frequency for a given VPU count. */
    double
    coreFreqGhz(int vpus) const
    {
        return vpus >= 2 ? freq2VpuGhz : freq1VpuGhz;
    }
};

} // namespace save

#endif // SAVE_SIM_CONFIG_H
