/**
 * @file
 * Re-order buffer: in-order allocation and commit, out-of-order
 * completion. VFMA entries complete lane-by-lane (SAVE writes each
 * coalesced lane result back to its own destination position), so an
 * entry tracks a pending-lane count rather than a single done bit.
 */

#ifndef SAVE_SIM_ROB_H
#define SAVE_SIM_ROB_H

#include <cstdint>
#include <vector>

#include "isa/uop.h"
#include "sim/regfile.h"

namespace save {

/** One ROB entry. */
struct RobEntry
{
    bool valid = false;
    uint64_t seq = 0;
    Opcode op = Opcode::Alu;
    /** The instruction itself (kept for squash-and-replay). */
    Uop uop;
    /** Physical destination, kNoReg if none. */
    int dstPhys = kNoReg;
    /** Previous mapping of the destination; freed at commit. */
    int oldPhys = kNoReg;
    /** Mask value overwritten by a SetMask (restored on squash). */
    uint16_t prevMask = 0;
    /** Lanes not yet written back (16 for a VFMA, else 0/1 pseudo). */
    int lanesPending = 0;
    bool done = false;
    /** Store bookkeeping. */
    bool isStore = false;
    uint64_t storeAddr = 0;
    int storeSrcPhys = kNoReg;
};

/** Circular re-order buffer. */
class Rob
{
  public:
    explicit Rob(int entries);

    bool full() const { return count_ == capacity_; }
    bool empty() const { return count_ == 0; }
    int size() const { return count_; }
    int capacity() const { return capacity_; }

    /** Allocate at the tail; ROB must not be full. */
    int push(RobEntry e);

    /** Allocate a cleared entry at the tail for in-place construction
     *  (hot path: avoids copying a RobEntry through the call). */
    int allocEntry();

    RobEntry &at(int idx) { return buf_[static_cast<size_t>(idx)]; }
    const RobEntry &at(int idx) const
    {
        return buf_[static_cast<size_t>(idx)];
    }

    /** Head index (oldest), -1 when empty. */
    int head() const { return empty() ? -1 : head_; }

    /** Pop the head; it must be done. */
    RobEntry pop();

    /** Invalidate and advance past the head without copying it out
     *  (hot path: read via at(head()) first). The head must be done. */
    void popHead();

    /** Mark one lane of a VFMA entry written back; true when this was
     *  the last pending lane (the entry just completed). */
    bool laneDone(int idx);

    /** Mark `n` lanes of a VFMA entry written back at once (whole-
     *  register writeback); true when the entry just completed. */
    bool lanesDone(int idx, int n);

    /** Mark a non-lane entry complete; true when it was not already. */
    bool markDone(int idx);

    /** Physical slot index of the i-th oldest entry (0 == head). */
    int
    indexFromHead(int i) const
    {
        return (head_ + i) % capacity_;
    }

    /** Drop the `n` youngest entries (squash). */
    void squashYoungest(int n);

  private:
    int capacity_;
    int head_ = 0;
    int tail_ = 0;
    int count_ = 0;
    std::vector<RobEntry> buf_;
};

} // namespace save

#endif // SAVE_SIM_ROB_H
