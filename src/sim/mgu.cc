#include "sim/mgu.h"

#include "isa/bf16.h"

namespace save {

uint16_t
elmF32(const VecReg &a, const VecReg &b, uint16_t wm)
{
    // Branchless so the compiler can vectorize the 16 compares; +-0.0
    // both count as zero (the product is exactly zero and the
    // accumulation is ineffectual), which != handles.
    uint16_t elm = 0;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        unsigned eff = static_cast<unsigned>(a.f32(lane) != 0.0f) &
                       static_cast<unsigned>(b.f32(lane) != 0.0f);
        elm |= static_cast<uint16_t>(eff << lane);
    }
    return elm & wm;
}

uint32_t
elmMp(const VecReg &a, const VecReg &b, uint16_t wm)
{
    uint32_t elm = 0;
    for (int ml = 0; ml < kMlLanes; ++ml) {
        if (!((wm >> (ml / kMlPerAl)) & 1))
            continue;
        if (!bf16IsZero(a.bf16(ml)) && !bf16IsZero(b.bf16(ml)))
            elm |= 1u << ml;
    }
    return elm;
}

uint16_t
mpAlMask(uint32_t ml_mask)
{
    uint16_t al = 0;
    for (int lane = 0; lane < kVecLanes; ++lane) {
        if ((ml_mask >> (kMlPerAl * lane)) & 0x3u)
            al |= static_cast<uint16_t>(1u << lane);
    }
    return al;
}

} // namespace save
